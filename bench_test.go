// Benchmarks, one family per experiment of DESIGN.md's index (E1–E10).
// The corresponding parameter-sweep tables are produced by cmd/lbbench;
// these testing.B entry points measure the steady-state cost of each
// mechanism in isolation.
package histanon

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"histanon/internal/baseline"
	"histanon/internal/deploy"
	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/lbqid"
	"histanon/internal/link"
	"histanon/internal/mine"
	"histanon/internal/mobility"
	"histanon/internal/phl"
	"histanon/internal/sim"
	"histanon/internal/sp"
	"histanon/internal/stindex"
	"histanon/internal/tgran"
	"histanon/internal/ts"
	"histanon/internal/wire"
)

func fillIndex(idx stindex.Index, n, users int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		idx.Insert(phl.UserID(rng.Intn(users)), geo.STPoint{
			P: geo.Point{X: rng.Float64() * 8000, Y: rng.Float64() * 8000},
			T: int64(rng.Intn(14 * 24 * 3600)),
		})
	}
}

func randQuery(rng *rand.Rand) geo.STPoint {
	return geo.STPoint{
		P: geo.Point{X: rng.Float64() * 8000, Y: rng.Float64() * 8000},
		T: int64(rng.Intn(14 * 24 * 3600)),
	}
}

// BenchmarkE1_FirstElementQuery measures the Algorithm-1 line-5 query
// ("smallest box around q crossed by k user trajectories") per index.
func BenchmarkE1_FirstElementQuery(b *testing.B) {
	m := geo.STMetric{TimeScale: 1}
	for _, n := range []int{10000, 50000} {
		indexes := map[string]stindex.Index{
			"brute": stindex.NewBrute(),
			"grid":  stindex.NewGrid(500, 1800),
			"kd":    stindex.NewKDTree(),
			"rtree": stindex.NewRTree(),
		}
		for _, idx := range indexes {
			fillIndex(idx, n, n/50, 42)
		}
		for _, k := range []int{2, 10} {
			for name, idx := range indexes {
				b.Run(fmt.Sprintf("idx=%s/n=%d/k=%d", name, n, k), func(b *testing.B) {
					rng := rand.New(rand.NewSource(7))
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						stindex.SmallestEnclosingBox(idx, randQuery(rng), k, m, nil)
					}
				})
			}
		}
	}
}

// benchGeneralizer builds a populated generalizer for the session
// benches.
func benchGeneralizer(users int) (*generalize.Generalizer, []geo.STPoint) {
	cfg := mobility.DefaultConfig()
	cfg.Users = users
	cfg.Days = 5
	world := mobility.Generate(cfg)
	store := phl.NewStore()
	idx := stindex.NewGrid(500, 1800)
	for _, ev := range world.Events {
		store.Record(ev.User, ev.Point)
		idx.Insert(ev.User, ev.Point)
	}
	var trace []geo.STPoint
	for _, ev := range world.Requests() {
		if ev.User == world.Agents[0].User {
			trace = append(trace, ev.Point)
		}
	}
	return &generalize.Generalizer{Index: idx, Store: store, Metric: geo.STMetric{TimeScale: 1}}, trace
}

// BenchmarkE2_GeneralizeFirstElement is the per-request cost of
// Algorithm 1's initial-element branch at several k.
func BenchmarkE2_GeneralizeFirstElement(b *testing.B) {
	g, trace := benchGeneralizer(150)
	if len(trace) == 0 {
		b.Fatal("no trace")
	}
	for _, k := range []int{2, 5, 10, 20} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := trace[i%len(trace)]
				if _, ok := g.FirstElement(q, 0, k, generalize.Unlimited); !ok {
					b.Fatal("generalization failed")
				}
			}
		})
	}
}

// BenchmarkE3_SessionTrace runs whole trace sessions under the two
// witness strategies of §6.2.
func BenchmarkE3_SessionTrace(b *testing.B) {
	g, trace := benchGeneralizer(150)
	if len(trace) < 8 {
		b.Fatal("trace too short")
	}
	for _, strat := range []struct {
		name  string
		sched generalize.DecaySchedule
	}{
		{"fixed-k", generalize.DecaySchedule{Target: 5}},
		{"decay", generalize.DecaySchedule{Target: 5, Initial: 10, Step: 1}},
	} {
		b.Run(strat.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sess := generalize.NewSession(g, 0, strat.sched)
				for _, q := range trace[:8] {
					sess.Generalize(q, generalize.Unlimited)
				}
			}
		})
	}
}

// benchServer builds a TS preloaded with crowd trajectories and an
// LBQID for user 0.
func benchServer(tol generalize.Tolerance) *ts.Server {
	server := ts.New(ts.Config{
		DefaultPolicy: ts.Policy{K: 5},
		Services: map[string]ts.ServiceSpec{
			"navigation": {Name: "navigation", Tolerance: tol},
		},
	}, ts.OutboxFunc(func(*wire.Request) {}))
	err := server.AddLBQIDSpec(0, `
lbqid "commute" {
    element area [0,400]x[0,400] time [06:00,10:00]
    recurrence 1.Days
}`)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(9))
	for u := phl.UserID(1); u <= 60; u++ {
		for d := int64(0); d < 5; d++ {
			server.RecordLocation(u, geo.STPoint{
				P: geo.Point{X: rng.Float64() * 400, Y: rng.Float64() * 400},
				T: d*tgran.Day + 7*tgran.Hour + int64(rng.Intn(7200)),
			})
		}
	}
	return server
}

// BenchmarkE4_RequestPath measures the full TS request pipeline
// (matching + generalization + forwarding) for matching and
// non-matching requests.
func BenchmarkE4_RequestPath(b *testing.B) {
	b.Run("matching", func(b *testing.B) {
		server := benchServer(generalize.Unlimited)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := int64(i%5)*tgran.Day + 7*tgran.Hour + int64(i%3600)
			server.Request(0, geo.STPoint{P: geo.Point{X: 200, Y: 200}, T: t}, "navigation", nil)
		}
	})
	b.Run("non-matching", func(b *testing.B) {
		server := benchServer(generalize.Unlimited)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := int64(i%5)*tgran.Day + 14*tgran.Hour + int64(i%3600)
			server.Request(0, geo.STPoint{P: geo.Point{X: 5000, Y: 5000}, T: t}, "navigation", nil)
		}
	})
}

// BenchmarkE5_UnlinkPath measures the failure path: tight tolerance
// forcing generalization failure and an unlinking attempt per request.
func BenchmarkE5_UnlinkPath(b *testing.B) {
	const resetEvery = 20000
	server := benchServer(generalize.Tolerance{MaxWidth: 5, MaxHeight: 5, MaxDuration: 5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%resetEvery == 0 && i > 0 {
			b.StopTimer()
			server = benchServer(generalize.Tolerance{MaxWidth: 5, MaxHeight: 5, MaxDuration: 5})
			b.StartTimer()
		}
		j := i % resetEvery
		t := int64(j/3600)*tgran.Day + 7*tgran.Hour + int64(j%3600)
		server.Request(0, geo.STPoint{P: geo.Point{X: 200, Y: 200}, T: t}, "navigation", nil)
	}
}

// BenchmarkE6_AttackSeries measures the adversary's LT-consistency
// intersection over a growing series.
func BenchmarkE6_AttackSeries(b *testing.B) {
	store := phl.NewStore()
	rng := rand.New(rand.NewSource(3))
	for u := phl.UserID(0); u < 200; u++ {
		for i := 0; i < 50; i++ {
			store.Record(u, geo.STPoint{
				P: geo.Point{X: rng.Float64() * 8000, Y: rng.Float64() * 8000},
				T: int64(rng.Intn(14 * 24 * 3600)),
			})
		}
	}
	attacker := &sp.Attacker{Knowledge: store}
	for _, series := range []int{4, 16, 64} {
		reqs := make([]*wire.Request, series)
		for i := range reqs {
			c := geo.Point{X: rng.Float64() * 8000, Y: rng.Float64() * 8000}
			ct := int64(rng.Intn(14 * 24 * 3600))
			reqs[i] = &wire.Request{
				Pseudonym: "p",
				Context: geo.STBox{
					Area: geo.Rect{MinX: c.X - 1000, MinY: c.Y - 1000, MaxX: c.X + 1000, MaxY: c.Y + 1000},
					Time: geo.Interval{Start: ct - 1800, End: ct + 1800},
				},
			}
		}
		b.Run(fmt.Sprintf("series=%d", series), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				attacker.AttackSeries(reqs)
			}
		})
	}
}

// BenchmarkE7_Baselines measures the per-request cloaking cost of every
// baseline on an identical batch.
func BenchmarkE7_Baselines(b *testing.B) {
	cfg := mobility.DefaultConfig()
	cfg.Users = 100
	cfg.Days = 3
	world := mobility.Generate(cfg)
	store := phl.NewStore()
	for _, ev := range world.Events {
		store.Record(ev.User, ev.Point)
	}
	var reqs []baseline.Request
	for _, ev := range world.Requests() {
		reqs = append(reqs, baseline.Request{User: ev.User, Point: ev.Point})
		if len(reqs) == 500 {
			break
		}
	}
	city := geo.Rect{MinX: 0, MinY: 0, MaxX: cfg.Width, MaxY: cfg.Height}
	for _, a := range []baseline.Anonymizer{
		baseline.NoOp{},
		baseline.FixedGrid{Cell: 1000, Window: 900},
		baseline.GruteserGrunwald{Store: store, City: city, Window: 450},
		baseline.GedikLiu{MaxRadius: 1500, MaxDefer: 900},
	} {
		b.Run(a.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.CloakAll(reqs, 5)
			}
		})
	}
}

// BenchmarkE8_TrackingLikelihood measures the tracking linker and the
// link-connected component computation.
func BenchmarkE8_TrackingLikelihood(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	mk := func(n int) []*wire.Request {
		out := make([]*wire.Request, n)
		for i := range out {
			out[i] = &wire.Request{
				Pseudonym: wire.Pseudonym(fmt.Sprintf("p%d", i%10)),
				Context: geo.STBox{
					Area: geo.RectAround(geo.Point{X: rng.Float64() * 5000, Y: rng.Float64() * 5000}),
					Time: geo.IntervalAround(int64(rng.Intn(86400))),
				},
			}
		}
		return out
	}
	tr := link.Tracking{MaxSpeed: 17, HalfLife: 900}
	b.Run("likelihood", func(b *testing.B) {
		reqs := mk(2)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Likelihood(reqs[0], reqs[1])
		}
	})
	b.Run("components-200", func(b *testing.B) {
		reqs := mk(200)
		f := link.Max{link.Pseudonym{}, tr}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			link.Components(reqs, f, 0.6)
		}
	})
}

// BenchmarkE9_MatcherOffer measures the continuous LBQID monitoring
// cost per request.
func BenchmarkE9_MatcherOffer(b *testing.B) {
	def := `
lbqid "p%d" {
    element area [%d,%d]x[0,200] time [06:30,09:00]
    element area [%d,%d]x[0,200] time [15:30,19:00]
    recurrence 3.Weekdays * 2.Weeks
}`
	for _, n := range []int{1, 8, 32} {
		var matchers []*lbqid.Matcher
		for i := 0; i < n; i++ {
			q, err := lbqid.ParseOne(fmt.Sprintf(def, i, i*300, i*300+200, i*300+2000, i*300+2200))
			if err != nil {
				b.Fatal(err)
			}
			matchers = append(matchers, lbqid.NewMatcher(q))
		}
		b.Run(fmt.Sprintf("patterns=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := geo.STPoint{
					P: geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 200},
					T: int64(i) * 60,
				}
				for _, m := range matchers {
					m.Offer(lbqid.RequestID(i), p)
				}
			}
		})
	}
}

// BenchmarkE10_IndexQueries is the index ablation on both primitives.
func BenchmarkE10_IndexQueries(b *testing.B) {
	const n = 50000
	m := geo.STMetric{TimeScale: 1}
	indexes := map[string]stindex.Index{
		"brute": stindex.NewBrute(),
		"grid":  stindex.NewGrid(500, 1800),
		"kd":    stindex.NewKDTree(),
		"rtree": stindex.NewRTree(),
	}
	for _, idx := range indexes {
		fillIndex(idx, n, 1000, 11)
	}
	for name, idx := range indexes {
		b.Run("box/"+name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := geo.Point{X: rng.Float64() * 8000, Y: rng.Float64() * 8000}
				ct := int64(rng.Intn(14 * 24 * 3600))
				idx.UsersInBox(geo.STBox{
					Area: geo.Rect{MinX: c.X - 500, MinY: c.Y - 500, MaxX: c.X + 500, MaxY: c.Y + 500},
					Time: geo.Interval{Start: ct - 1800, End: ct + 1800},
				})
			}
		})
		b.Run("knn/"+name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				idx.KNearestUsers(randQuery(rng), 5, m, nil)
			}
		})
	}
}

// BenchmarkE11_ConcurrentThroughput measures whole-server Request
// throughput (monitor → generalize → forward, all on the matching path)
// at 1, 4 and 8 client goroutines, each goroutine issuing as a distinct
// user. With the per-user session locks and the sharded index this
// should scale with cores; the single-global-mutex design it replaced
// was flat.
func BenchmarkE11_ConcurrentThroughput(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", workers), func(b *testing.B) {
			server := sim.NewThroughputServer(sim.ThroughputClients)
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					per := b.N / workers
					if w < b.N%workers {
						per++
					}
					u := phl.UserID(w % sim.ThroughputClients)
					for i := 0; i < per; i++ {
						sim.ThroughputRequest(server, u, i)
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkEObs_Overhead measures the instrumented request pipeline at
// each span-sampling setting (EXPERIMENTS.md E-obs; `lbbench -obsbench`
// emits the machine-readable record).
func BenchmarkEObs_Overhead(b *testing.B) {
	for _, c := range []struct {
		name   string
		sample float64
	}{
		{"sampling=off", 0},
		{"sampling=1pct", 0.01},
		{"sampling=100pct", 1},
	} {
		b.Run(c.name, func(b *testing.B) { sim.BenchObsSample(b, c.sample) })
	}
}

// BenchmarkE11_DeployAnalyze measures the deployment-area analyzer on a
// mid-size city.
func BenchmarkE11_DeployAnalyze(b *testing.B) {
	cfg := mobility.DefaultConfig()
	cfg.Users = 80
	cfg.Days = 3
	world := mobility.Generate(cfg)
	store := phl.NewStore()
	for _, ev := range world.Events {
		store.Record(ev.User, ev.Point)
	}
	idx := deploy.BuildIndex(store)
	in := deploy.Input{
		Store: store, Index: idx, Metric: geo.STMetric{TimeScale: 1},
		K: 5, Tolerance: generalize.Tolerance{MaxWidth: 1000, MaxHeight: 1000, MaxDuration: 900},
		SampleEvery: 200,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := deploy.Analyze(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12_Perturb measures the randomization defense per box.
func BenchmarkE12_Perturb(b *testing.B) {
	r := generalize.NewRandomizer(7)
	box := geo.STBox{
		Area: geo.Rect{MinX: 0, MinY: 0, MaxX: 1500, MaxY: 900},
		Time: geo.Interval{Start: 1000, End: 2200},
	}
	tol := generalize.Tolerance{MaxWidth: 4000, MaxHeight: 4000, MaxDuration: 3600}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Perturb(box, tol)
	}
}

// BenchmarkE13_GedikLiuEngine measures the online deferral engine per
// submitted request.
func BenchmarkE13_GedikLiuEngine(b *testing.B) {
	cfg := mobility.DefaultConfig()
	cfg.Users = 80
	cfg.Days = 2
	stream := mobility.Generate(cfg).Requests()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := baseline.NewGedikLiuEngine(5, 1500, 900)
		for _, ev := range stream {
			e.Submit(baseline.Request{User: ev.User, Point: ev.Point})
		}
		e.Flush()
	}
}

// BenchmarkMine measures LBQID derivation over a two-week city.
func BenchmarkMine(b *testing.B) {
	cfg := mobility.DefaultConfig()
	cfg.Users = 60
	cfg.Days = 14
	world := mobility.Generate(cfg)
	store := phl.NewStore()
	for _, ev := range world.Events {
		store.Record(ev.User, ev.Point)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mine.Mine(store, mine.Config{WeekdaysOnly: true})
	}
}

// BenchmarkHauntLinker measures profile building and pairwise queries.
func BenchmarkHauntLinker(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var reqs []*wire.Request
	for i := 0; i < 5000; i++ {
		reqs = append(reqs, &wire.Request{
			Pseudonym: wire.Pseudonym(fmt.Sprintf("p%d", i%50)),
			Context: geo.STBox{
				Area: geo.RectAround(geo.Point{X: rng.Float64() * 8000, Y: rng.Float64() * 8000}).Expand(200),
				Time: geo.IntervalAround(int64(rng.Intn(14 * 86400))),
			},
		})
	}
	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			link.NewHaunt(reqs, 750, 7200, 2)
		}
	})
	b.Run("likelihood", func(b *testing.B) {
		h := link.NewHaunt(reqs, 750, 7200, 2)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Likelihood(reqs[i%len(reqs)], reqs[(i*7+1)%len(reqs)])
		}
	})
}
