// Package histanon is a Go implementation of the location-privacy
// framework of Bettini, Wang and Jajodia, "Protecting Privacy Against
// Location-based Personal Identification" (Secure Data Management
// workshop at VLDB, 2005): location-based quasi-identifiers (LBQIDs),
// historical k-anonymity, spatio-temporal generalization (the paper's
// Algorithm 1), and unlinking through mix zones.
//
// # Model
//
// Users invoke location-based services through a Trusted Server (TS).
// The TS knows each user's exact positions over time (the Personal
// History of Locations) and forwards requests to service providers in
// the generalized form
//
//	(msgid, UserPseudonym, Area, TimeInterval, Data)
//
// A request stream becomes dangerous when it matches one of the user's
// LBQIDs — recurring spatio-temporal patterns such as "home [7am,8am] →
// office [8am,9am] → office [4pm,6pm] → home [5pm,7pm], 3 weekdays a
// week for 2 weeks" — because an attacker with external knowledge can
// map the pattern back to an identity. The TS therefore generalizes
// every request matching an LBQID element so that at least k−1 other
// users' histories remain consistent with the whole forwarded series
// (historical k-anonymity), and rotates pseudonyms inside mix zones when
// generalization can no longer keep up.
//
// # Quick start
//
//	provider := histanon.NewProvider()                    // a recording SP
//	server := histanon.NewTrustedServer(histanon.Config{}, provider)
//	server.RegisterUser(1, histanon.PolicyForLevel(histanon.Medium))
//	err := server.AddLBQIDSpec(1, `
//	lbqid "commute" {
//	    element "Home"   area [0,200]x[0,200]     time [07:00,08:00]
//	    element "Office" area [1800,2200]x[0,200] time [08:00,09:00]
//	    recurrence 3.Weekdays * 2.Weeks
//	}`)
//	// feed location updates and requests:
//	server.RecordLocation(1, histanon.STPoint{P: histanon.Point{X: 10, Y: 10}, T: 0})
//	dec := server.Request(1, histanon.STPoint{P: histanon.Point{X: 12, Y: 9}, T: 25500}, "navigation", nil)
//	_ = dec.HKAnonymity
//	_ = err
//
// The runnable programs under examples/ and cmd/ exercise the full
// pipeline, including the adversarial service provider and the
// experiment suite of EXPERIMENTS.md.
//
// # Observability
//
// The trusted server carries a built-in observability layer
// (internal/obs): Prometheus metrics, sampled request spans, and a
// JSON-lines privacy audit log, all documented in OBSERVABILITY.md.
// The daemon form exposes them directly:
//
//	lbserve -trace-sample 0.01 -audit audit.jsonl
//	curl -s localhost:7408/metrics   # achieved-k distribution, stage latencies, …
//	curl -s localhost:7408/v1/spans  # recent sampled spans
//
// An embedded server offers the same data programmatically — the
// privacy histograms are always on, and the audit log replays into
// exactly the live distributions:
//
//	f, _ := os.Create("audit.jsonl")
//	server.Obs.SetAudit(histanon.NewAuditLog(f))
//	server.Obs.Tracer.SetSampleRate(0.01)
//	// … serve traffic …
//	server.Obs.AuditSink().Flush()
//	server.MetricsRegistry().WritePrometheus(os.Stdout)
//	log, _ := os.Open("audit.jsonl")
//	h, _ := histanon.ReplayAchievedK(log)   // equals server.Obs.AchievedK
//
// # Package layout
//
// The root package is a facade over the internal engine:
//
//   - internal/geo, internal/tgran — spatio-temporal and time-granularity
//     primitives
//   - internal/lbqid — LBQID model, parser, timed-automaton matcher
//   - internal/phl, internal/stindex — location histories and indexes
//   - internal/anon, internal/link — historical k-anonymity, linkability
//   - internal/generalize — Algorithm 1 and the k′-decay strategy
//   - internal/mixzone, internal/pseudonym — unlinking machinery
//   - internal/ts, internal/sp — trusted server and (adversarial) provider
//   - internal/obs, internal/metrics — request tracing, privacy audit
//     log, Prometheus metrics (see OBSERVABILITY.md)
//   - internal/mobility, internal/baseline, internal/sim — synthetic
//     workloads, prior-art cloaking baselines, experiment harness
//
// internal/mobility also hosts the streaming workload engine
// (million-agent scenarios derived on demand from (seed, agent id))
// and the scenario registry behind the comparative benchmark of
// EXPERIMENTS.md §E-comp; DESIGN.md §11 is the catalog of scenario
// shapes and compared approaches.
package histanon
