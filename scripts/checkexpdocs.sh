#!/usr/bin/env bash
# Asserts EXPERIMENTS.md covers the measurable surface (the E-doc
# analogue of checkobsdocs.sh):
#   - every experiment id the lbbench registry can render (`lbbench
#     -list`) has its own `##`/`###` heading;
#   - every checked-in BENCH_*.json record is mentioned by filename, so
#     a new machine-readable record cannot land without prose saying
#     what it measures and how to regenerate it;
#   - the scenario registry (internal/mobility/scenarios.go), the
#     BENCH_comp.json record and the §E-comp section agree on scenario
#     names, in both directions.
# CI runs it in the docs job.
set -euo pipefail
cd "$(dirname "$0")/.."

doc=EXPERIMENTS.md
[ -f "$doc" ] || { echo "$doc missing" >&2; exit 1; }
fail=0

for id in $(go run ./cmd/lbbench -list | awk '{print $1}'); do
    if ! grep -Eq "^##+ ${id}([^a-zA-Z0-9-]|$)" "$doc"; then
        echo "experiment $id has no section heading in $doc" >&2
        fail=1
    fi
done

for rec in BENCH_*.json; do
    [ -e "$rec" ] || continue
    if ! grep -q "$rec" "$doc"; then
        echo "bench record $rec not mentioned in $doc" >&2
        fail=1
    fi
done

scenarios=$(sed -n '/^func Scenarios/,/^}/p' internal/mobility/scenarios.go |
            grep -o 'Name:[[:space:]]*"[a-z-]*"' | sed 's/.*"\(.*\)"/\1/' | sort -u)
if [ -z "$scenarios" ]; then
    echo "no scenario names found in internal/mobility/scenarios.go" >&2
    fail=1
fi

# The §E-comp section: from its heading to the next top-level section.
ecomp=$(awk '/^## E-comp/{on=1} on && /^## [^E]/{on=0} on' "$doc")
if [ -z "$ecomp" ]; then
    echo "$doc has no §E-comp section" >&2
    fail=1
fi

for name in $scenarios; do
    if [ -f BENCH_comp.json ] && ! grep -q "\"scenario\": \"$name\"" BENCH_comp.json; then
        echo "scenario $name (registry) missing from BENCH_comp.json" >&2
        fail=1
    fi
    if ! printf '%s\n' "$ecomp" | grep -q "$name"; then
        echo "scenario $name (registry) not described in $doc §E-comp" >&2
        fail=1
    fi
done

if [ -f BENCH_comp.json ]; then
    for name in $(grep -o '"scenario": "[a-z-]*"' BENCH_comp.json |
                  sed 's/.*"\([a-z-]*\)"$/\1/' | sort -u); do
        if ! printf '%s\n' "$scenarios" | grep -qx "$name"; then
            echo "scenario $name (BENCH_comp.json) not in the registry" >&2
            fail=1
        fi
    done
fi

if [ "$fail" = 0 ]; then
    echo "checkexpdocs: $doc covers all experiment ids, bench records and scenario names"
fi
exit "$fail"
