#!/usr/bin/env bash
# Asserts every non-test package carries a package doc comment
# ("// Package <name> …" for libraries, "// Command <name> …" for
# binaries). Run from anywhere; CI runs it in the docs job.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while read -r dir name; do
    found=0
    for f in "$dir"/*.go; do
        case "$f" in *_test.go) continue ;; esac
        if [ "$name" = main ]; then
            # A main package is documented when a comment block is
            # attached to its package clause (godoc's rule).
            if grep -B1 "^package main" "$f" | head -1 | grep -q '^//'; then
                found=1
                break
            fi
        elif grep -q "^// Package $name\b" "$f"; then
            found=1
            break
        fi
    done
    if [ "$found" = 0 ]; then
        echo "missing package doc comment: $dir (package $name)" >&2
        fail=1
    fi
done < <(go list -f '{{.Dir}} {{.Name}}' ./...)

if [ "$fail" = 0 ]; then
    echo "checkdocs: every package has a doc comment"
fi
exit "$fail"
