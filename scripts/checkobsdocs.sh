#!/usr/bin/env bash
# Asserts OBSERVABILITY.md documents the full observability surface:
# every histanon_* metric family declared in internal/obs/obs.go
# (including the histanon_slo_* SLO families), every audit Event wire
# field declared in internal/obs/audit.go (including the kind="slo"
# fields), every span stage name, every span JSON field, and every
# tail-sampling keep reason declared in internal/obs/trace.go — plus
# the privacy-SLO surface: every /v1/slo and /healthz-SLO JSON field
# declared in internal/httpapi/slo.go and every canary probe field
# declared in internal/slo/canary.go. CI runs it in the docs job, so
# adding a metric or field without documenting it fails the build.
set -euo pipefail
cd "$(dirname "$0")/.."

doc=OBSERVABILITY.md
[ -f "$doc" ] || { echo "$doc missing" >&2; exit 1; }
fail=0

for name in $(grep -o '"histanon_[a-z0-9_]*"' internal/obs/obs.go | tr -d '"' | sort -u); do
    if ! grep -q "$name" "$doc"; then
        echo "metric family $name undocumented in $doc" >&2
        fail=1
    fi
done

for field in $(grep -o 'json:"[a-z0-9_]*' internal/obs/audit.go | sed 's/json:"//' | sort -u); do
    if ! grep -q "\`$field\`" "$doc"; then
        echo "audit field $field undocumented in $doc" >&2
        fail=1
    fi
done

for stage in $(sed -n '/^func (s Stage) String/,/^}/p' internal/obs/trace.go |
               grep -o 'return "[a-z_]*"' | sed 's/return "//;s/"//' | sort -u); do
    [ "$stage" = unknown ] && continue
    if ! grep -q "\`$stage\`" "$doc"; then
        echo "span stage $stage undocumented in $doc" >&2
        fail=1
    fi
done

for field in $(grep -o 'json:"[a-zA-Z0-9_]*' internal/obs/trace.go | sed 's/json:"//' | sort -u); do
    if ! grep -q "\`$field\`" "$doc"; then
        echo "span field $field undocumented in $doc" >&2
        fail=1
    fi
done

for reason in $(sed -n '/Tail-sampling keep reasons/,/^)/p' internal/obs/trace.go |
                grep -o '= "[a-z_]*"' | sed 's/= "//;s/"//' | sort -u); do
    if ! grep -q "\`$reason\`" "$doc"; then
        echo "keep reason $reason undocumented in $doc" >&2
        fail=1
    fi
done

# The SLO endpoint surface: /v1/slo response fields and the /healthz
# SLO section (internal/httpapi/slo.go), and the canary probe result
# fields (internal/slo/canary.go). "-" tags (excluded from the wire)
# are skipped.
for field in $(grep -o 'json:"[a-zA-Z0-9_]*' internal/httpapi/slo.go internal/slo/canary.go |
               sed 's/.*json:"//' | sort -u); do
    if ! grep -q "\`$field\`" "$doc"; then
        echo "SLO field $field undocumented in $doc" >&2
        fail=1
    fi
done

# The burn-rate state machine's degraded reasons and audit kind must
# keep their documented names.
for token in 'slo_warning:' 'slo_page:' 'canary_stale' 'kind="slo"'; do
    if ! grep -qF "$token" "$doc"; then
        echo "SLO token $token undocumented in $doc" >&2
        fail=1
    fi
done

if [ "$fail" = 0 ]; then
    echo "checkobsdocs: $doc covers all metrics, audit fields, stages, span fields, keep reasons and the SLO surface"
fi
exit "$fail"
