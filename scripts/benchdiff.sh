#!/usr/bin/env bash
# Prints the repository's performance trajectory: every checked-in
# BENCH_*.json record (E11 concurrency, E-obs overhead, E-wire codec,
# E-comp streaming, E-slo engine overhead, and future records)
# aggregated into one aligned
# table. CI runs this so a PR's review page shows the perf history
# next to the code change.
set -euo pipefail
cd "$(dirname "$0")/.."
exec go run ./cmd/lbbench -benchdiff
