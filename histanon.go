package histanon

import (
	"io"

	"histanon/internal/deploy"
	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/httpapi"
	"histanon/internal/lbqid"
	"histanon/internal/metrics"
	"histanon/internal/mine"
	"histanon/internal/mixzone"
	"histanon/internal/mobility"
	"histanon/internal/obs"
	"histanon/internal/phl"
	"histanon/internal/policy"
	"histanon/internal/sp"
	"histanon/internal/tgran"
	"histanon/internal/ts"
	"histanon/internal/wire"
)

// Spatio-temporal primitives.
type (
	// Point is a planar position in meters.
	Point = geo.Point
	// Rect is an axis-aligned area.
	Rect = geo.Rect
	// Interval is an anchored time interval in engine seconds.
	Interval = geo.Interval
	// STPoint is a position at an instant.
	STPoint = geo.STPoint
	// STBox is a generalized request context ⟨Area, TimeInterval⟩.
	STBox = geo.STBox
	// STMetric is the 3D metric used by Algorithm 1.
	STMetric = geo.STMetric
)

// Identity and wire types.
type (
	// UserID identifies a user inside the trusted server.
	UserID = phl.UserID
	// Pseudonym identifies a user toward service providers.
	Pseudonym = wire.Pseudonym
	// Request is the TS→SP wire format of the paper's §3.
	Request = wire.Request
	// Response is the SP→device answer, routed by msgid.
	Response = wire.Response
)

// Quasi-identifier types.
type (
	// LBQID is a location-based quasi-identifier (paper Def. 1).
	LBQID = lbqid.LBQID
	// LBQIDElement is one ⟨Area, U-TimeInterval⟩ step of a pattern.
	LBQIDElement = lbqid.Element
	// Matcher incrementally matches a request stream against an LBQID.
	Matcher = lbqid.Matcher
)

// Trusted-server types.
type (
	// Config assembles a trusted server.
	Config = ts.Config
	// TrustedServer is the paper's TS with the §6.1 strategy.
	TrustedServer = ts.Server
	// Decision reports what the TS did with one request.
	Decision = ts.Decision
	// Policy is a user's quantitative privacy preference.
	Policy = ts.Policy
	// Level is the qualitative privacy degree (Low/Medium/High).
	Level = ts.Level
	// ServiceSpec declares a service's tolerance constraints.
	ServiceSpec = ts.ServiceSpec
	// Inbox receives service responses on a user's device.
	Inbox = ts.Inbox
	// InboxFunc adapts a function to Inbox.
	InboxFunc = ts.InboxFunc
	// Notifier observes at-risk and unlinking events.
	Notifier = ts.Notifier
	// Tolerance is the coarsest useful resolution of a service.
	Tolerance = generalize.Tolerance
	// DecaySchedule is the §6.2 witness over-provisioning strategy.
	DecaySchedule = generalize.DecaySchedule
	// MixZone is a static mix zone.
	MixZone = mixzone.Zone
	// OnDemandMix configures on-demand mix-zone planning.
	OnDemandMix = mixzone.OnDemand
)

// Adversary types.
type (
	// Provider is a recording service provider.
	Provider = sp.Provider
	// Attacker re-identifies users from a provider's log.
	Attacker = sp.Attacker
	// AttackReport aggregates an attack.
	AttackReport = sp.Report
	// ServiceLogic computes an SP-side answer from a generalized request.
	ServiceLogic = sp.Logic
	// ServiceLogicFunc adapts a function to ServiceLogic.
	ServiceLogicFunc = sp.LogicFunc
)

// Workload types.
type (
	// MobilityConfig parameterizes the synthetic city generator.
	MobilityConfig = mobility.Config
	// MobilityWorld is a generated scenario.
	MobilityWorld = mobility.World
	// MobilityEvent is one location update (possibly carrying a request).
	MobilityEvent = mobility.Event
)

// The qualitative privacy levels of the paper's user interface.
const (
	Low    = ts.Low
	Medium = ts.Medium
	High   = ts.High
)

// NewTrustedServer returns a trusted server forwarding to out (commonly
// a *Provider).
func NewTrustedServer(cfg Config, out ts.Outbox) *TrustedServer {
	return ts.New(cfg, out)
}

// NewProvider returns a recording service provider.
func NewProvider() *Provider { return sp.NewProvider() }

// PolicyForLevel translates a qualitative level into concrete
// parameters (k, Θ, decay schedule).
func PolicyForLevel(l Level) Policy { return ts.PolicyForLevel(l) }

// ParseLBQIDs reads quasi-identifier definitions in the block format of
// the lbqid package (see the package example in doc.go).
func ParseLBQIDs(r io.Reader) ([]*LBQID, error) { return lbqid.Parse(r) }

// ParseLBQID parses a definition holding exactly one pattern.
func ParseLBQID(s string) (*LBQID, error) { return lbqid.ParseOne(s) }

// NewMatcher returns a continuous matcher for q.
func NewMatcher(q *LBQID) *Matcher { return lbqid.NewMatcher(q) }

// GenerateMobility builds a synthetic city workload.
func GenerateMobility(cfg MobilityConfig) *MobilityWorld { return mobility.Generate(cfg) }

// DefaultMobilityConfig is a mid-sized synthetic city.
func DefaultMobilityConfig() MobilityConfig { return mobility.DefaultConfig() }

// Calendar constants of the engine's time scale (seconds).
const (
	Second = tgran.Second
	Minute = tgran.Minute
	Hour   = tgran.Hour
	Day    = tgran.Day
	Week   = tgran.Week
)

// Extension subsystems (the paper's §7 open issues).
type (
	// PolicySet is an ordered rule-based policy specification.
	PolicySet = policy.Set
	// DeployInput is a deployment-area feasibility question.
	DeployInput = deploy.Input
	// DeployReport is the feasibility analyzer's answer.
	DeployReport = deploy.Report
	// MinedCandidate is an LBQID derived from historical movement data.
	MinedCandidate = mine.Candidate
	// MineConfig tunes the LBQID miner.
	MineConfig = mine.Config
	// APIHandler serves the trusted server over HTTP/JSON.
	APIHandler = httpapi.Handler
	// APIClient is the matching Go client.
	APIClient = httpapi.Client
	// ServiceRequestJSON is the wire form of a device's service request.
	ServiceRequestJSON = httpapi.ServiceRequest
	// DecisionJSON is the wire form of the TS decision.
	DecisionJSON = httpapi.DecisionResponse
)

// ParsePolicies reads a rule-based policy specification (§3): ordered
// "rule ... when ... then ..." lines plus a default level.
func ParsePolicies(r io.Reader) (*PolicySet, error) { return policy.Parse(r) }

// AnalyzeDeployment answers the §7 deployment question: is a service
// with the given tolerance and anonymity demand deployable in an area,
// given representative movement data?
func AnalyzeDeployment(in DeployInput) (DeployReport, error) { return deploy.Analyze(in) }

// MineLBQIDs derives distinctive recurring patterns — candidate
// quasi-identifiers — from a location store (§4's sketched derivation
// process).
func MineLBQIDs(store phl.Storer, cfg MineConfig) []MinedCandidate {
	return mine.Mine(store, cfg)
}

// Observability types (see OBSERVABILITY.md for the full reference).
type (
	// Observer bundles request tracing, the privacy histograms and the
	// audit sink; every TrustedServer carries one as its Obs field.
	Observer = obs.Observer
	// AuditLog records privacy-relevant decisions as JSON lines.
	AuditLog = obs.AuditLog
	// AuditEvent is one audit record.
	AuditEvent = obs.Event
	// Span is one sampled request's per-stage timing and outcome.
	Span = obs.Span
	// Histogram is a fixed-bucket, wait-free histogram.
	Histogram = metrics.Histogram
)

// NewAuditLog returns an audit sink writing JSON lines to w; install it
// with server.Obs.SetAudit.
func NewAuditLog(w io.Writer) *AuditLog { return obs.NewAuditLog(w) }

// ReadAuditEvents parses a JSON-lines audit stream back into events.
func ReadAuditEvents(r io.Reader) ([]AuditEvent, error) { return obs.ReadEvents(r) }

// ReplayAchievedK rebuilds the achieved-k histogram from an audit
// stream; it equals the live server.Obs.AchievedK distribution.
func ReplayAchievedK(r io.Reader) (*Histogram, error) { return obs.ReplayAchievedK(r) }

// NewAPIHandler exposes a trusted server over HTTP/JSON.
func NewAPIHandler(srv *TrustedServer) *APIHandler { return httpapi.New(srv) }

// NewAPIClient returns a client for a histanon HTTP endpoint.
func NewAPIClient(baseURL string) *APIClient { return httpapi.NewClient(baseURL) }
