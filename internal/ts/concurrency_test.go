package ts

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/tgran"
	"histanon/internal/wire"
)

// concurrentServer builds a TS with a 60-user crowd and one commute
// LBQID per client user, so concurrent requests exercise the full
// monitor → generalize → forward pipeline, not just the fast path.
func concurrentServer(t testing.TB, clients int) *Server {
	server := New(Config{
		DefaultPolicy: Policy{K: 5},
		RandomizeSeed: 11, // exercise the shared randomizer too
	}, OutboxFunc(func(*wire.Request) {}))
	for c := 0; c < clients; c++ {
		u := phl.UserID(c)
		err := server.AddLBQIDSpec(u, fmt.Sprintf(`
lbqid "commute%d" {
    element area [0,400]x[0,400] time [06:00,10:00]
    recurrence 1.Days
}`, c))
		if err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(23))
	for u := phl.UserID(1000); u < 1060; u++ {
		for d := int64(0); d < 5; d++ {
			server.RecordLocation(u, geo.STPoint{
				P: geo.Point{X: rng.Float64() * 400, Y: rng.Float64() * 400},
				T: d*tgran.Day + 7*tgran.Hour + int64(rng.Intn(7200)),
			})
		}
	}
	return server
}

// TestConcurrentRequests race-stresses the whole request pipeline:
// several users issue matching (generalized) and non-matching requests
// at once, interleaved with location updates, response deliveries and
// at-risk probes. Counters must balance exactly afterwards.
func TestConcurrentRequests(t *testing.T) {
	const (
		clients    = 8
		perClient  = 40
		extraReads = 20
	)
	server := concurrentServer(t, clients)

	var forwardedIDs sync.Map
	var delivered atomic.Int64
	server.SetInbox(0, InboxFunc(func(*wire.Response) { delivered.Add(1) }))

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			u := phl.UserID(c)
			rng := rand.New(rand.NewSource(int64(300 + c)))
			for i := 0; i < perClient; i++ {
				var p geo.STPoint
				if i%2 == 0 {
					// Matching window and area: generalization path.
					p = pt(200, 200, int64(i%5)*tgran.Day+7*tgran.Hour+int64(rng.Intn(3600)))
				} else {
					p = pt(5000, 5000, int64(i%5)*tgran.Day+14*tgran.Hour+int64(rng.Intn(3600)))
				}
				dec := server.Request(u, p, "navigation", nil)
				if dec.Forwarded {
					if dec.Request == nil {
						t.Error("forwarded decision without request")
						return
					}
					if _, dup := forwardedIDs.LoadOrStore(dec.Request.ID, true); dup {
						t.Errorf("duplicate msgid %d issued", dec.Request.ID)
						return
					}
				}
				server.RecordLocation(u, p)
				server.AtRisk(u)
			}
		}(c)
	}
	// A reader goroutine exercising registry and snapshot paths during
	// traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < extraReads; i++ {
			server.Store().NumSamples()
			server.Rotations(0)
		}
	}()
	wg.Wait()

	total := int64(clients * perClient)
	if got := server.Counters.Get("requests"); got != total {
		t.Fatalf("requests counter = %d, want %d", got, total)
	}
	var nForwarded int64
	forwardedIDs.Range(func(_, _ interface{}) bool { nForwarded++; return true })
	if got := server.Counters.Get("forwarded"); got != nForwarded {
		t.Fatalf("forwarded counter = %d, but %d unique requests delivered", got, nForwarded)
	}
	if got := server.Counters.Get("generalized"); got == 0 {
		t.Fatal("no request took the generalization path; test lost its teeth")
	}
}

// TestConcurrentSameUser hammers one user from many goroutines: the
// per-user lock must serialize the session so matcher and session state
// stay consistent (the race detector checks the rest).
func TestConcurrentSameUser(t *testing.T) {
	server := concurrentServer(t, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				tm := int64(i%5)*tgran.Day + 7*tgran.Hour + int64(g*60+i)
				server.Request(0, pt(200, 200, tm), "navigation", nil)
			}
		}(g)
	}
	wg.Wait()
	if got := server.Counters.Get("requests"); got != 200 {
		t.Fatalf("requests counter = %d, want 200", got)
	}
}

// TestConcurrentResponses routes SP responses back while requests are
// still being issued.
func TestConcurrentResponses(t *testing.T) {
	var mu sync.Mutex
	var pending []*wire.Request
	server := New(Config{DefaultPolicy: Policy{K: 2}}, OutboxFunc(func(r *wire.Request) {
		mu.Lock()
		pending = append(pending, r)
		mu.Unlock()
	}))
	var received atomic.Int64
	for u := phl.UserID(0); u < 4; u++ {
		server.SetInbox(u, InboxFunc(func(*wire.Response) { received.Add(1) }))
	}
	var wg sync.WaitGroup
	for u := phl.UserID(0); u < 4; u++ {
		wg.Add(1)
		go func(u phl.UserID) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				server.Request(u, pt(float64(i), float64(i), int64(i)), "svc", nil)
			}
		}(u)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		seen := 0
		for seen < 200 {
			mu.Lock()
			batch := pending
			pending = nil
			mu.Unlock()
			for _, r := range batch {
				server.DeliverResponse(&wire.Response{ID: r.ID})
				seen++
			}
		}
	}()
	wg.Wait()
	if got := received.Load(); got != 200 {
		t.Fatalf("received %d responses, want 200", got)
	}
	if got := server.Counters.Get("responses_unroutable"); got != 0 {
		t.Fatalf("%d unroutable responses", got)
	}
}
