package ts

import (
	"bytes"
	"testing"

	"histanon/internal/anon"
	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/lbqid"
	"histanon/internal/link"
	"histanon/internal/mixzone"
	"histanon/internal/phl"
	"histanon/internal/sp"
	"histanon/internal/tgran"
	"histanon/internal/wire"
)

func pt(x, y float64, t int64) geo.STPoint {
	return geo.STPoint{P: geo.Point{X: x, Y: y}, T: t}
}

const commuteLBQID = `
lbqid "commute" {
    element "Home"   area [0,200]x[0,200]       time [06:30,09:00]
    element "Office" area [1800,2200]x[0,200]   time [07:00,11:00]
    element "Office" area [1800,2200]x[0,200]   time [15:30,19:00]
    element "Home"   area [0,200]x[0,200]       time [16:00,21:00]
    recurrence 3.Weekdays * 2.Weeks
}`

// at builds an instant from day index and second-of-day.
func at(day, sod int64) int64 { return day*tgran.Day + sod }

// seedCrowd records idle-and-commuting neighbors so anonymity sets are
// non-trivial: users 1..n-1 mirror the issuer's home/office pattern with
// spatial jitter; the issuer is user 0.
func seedCrowd(s *Server, n int, days int64) {
	for day := int64(0); day < days; day++ {
		if day%7 >= 5 {
			continue
		}
		for u := 1; u < n; u++ {
			dx := float64(u * 7)
			dy := float64(u * 5)
			s.RecordLocation(phl.UserID(u), pt(50+dx, 50+dy, at(day, 7*tgran.Hour+int64(u)*30)))
			s.RecordLocation(phl.UserID(u), pt(2000+dx, 50+dy, at(day, 8*tgran.Hour+int64(u)*30)))
			s.RecordLocation(phl.UserID(u), pt(2000+dx, 50+dy, at(day, 17*tgran.Hour+int64(u)*30)))
			s.RecordLocation(phl.UserID(u), pt(50+dx, 50+dy, at(day, 18*tgran.Hour+int64(u)*30)))
		}
	}
}

// issuerDay sends the four commute requests of one weekday and returns
// the decisions.
func issuerDay(s *Server, day int64) []Decision {
	points := []geo.STPoint{
		pt(50, 50, at(day, 7*tgran.Hour+600)),
		pt(2000, 50, at(day, 8*tgran.Hour+600)),
		pt(2000, 50, at(day, 17*tgran.Hour)),
		pt(50, 50, at(day, 18*tgran.Hour)),
	}
	var out []Decision
	for _, p := range points {
		out = append(out, s.Request(0, p, "navigation", nil))
	}
	return out
}

func newServer(t *testing.T, cfg Config) (*Server, *sp.Provider) {
	t.Helper()
	provider := sp.NewProvider()
	s := New(cfg, provider)
	return s, provider
}

func TestNonMatchingRequestForwardedExact(t *testing.T) {
	s, provider := newServer(t, Config{})
	dec := s.Request(0, pt(100, 100, 1000), "weather", map[string]string{"q": "today"})
	if !dec.Forwarded || dec.Generalized || dec.MatchedLBQID != "" {
		t.Fatalf("decision: %+v", dec)
	}
	reqs := provider.Requests()
	if len(reqs) != 1 {
		t.Fatalf("forwarded %d requests", len(reqs))
	}
	r := reqs[0]
	if r.Context.Area.Area() != 0 || r.Context.Time.Duration() != 0 {
		t.Fatalf("non-QI request must keep exact context: %v", r.Context)
	}
	if r.Service != "weather" || r.Data["q"] != "today" {
		t.Fatalf("payload lost: %+v", r)
	}
	if r.Pseudonym == "" {
		t.Fatal("pseudonym missing")
	}
}

func TestMatchingRequestGeneralized(t *testing.T) {
	s, provider := newServer(t, Config{DefaultPolicy: Policy{K: 3}})
	if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	seedCrowd(s, 8, 1)
	dec := s.Request(0, pt(50, 50, at(0, 7*tgran.Hour+600)), "navigation", nil)
	if !dec.Forwarded || !dec.Generalized || dec.MatchedLBQID != "commute" {
		t.Fatalf("decision: %+v", dec)
	}
	if !dec.HKAnonymity {
		t.Fatal("crowded home area must preserve anonymity")
	}
	r := provider.Requests()[0]
	if r.Context.Area.Area() <= 0 {
		t.Fatalf("generalized context must have positive area: %v", r.Context)
	}
	// The box must cover at least K users in the store.
	if got := s.Store().CountUsersIn(r.Context); got < 3 {
		t.Fatalf("context covers %d users, want >=3", got)
	}
}

func TestFullExposureKeepsHistoricalK(t *testing.T) {
	const k = 3
	s, provider := newServer(t, Config{DefaultPolicy: Policy{K: k}})
	if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	seedCrowd(s, 10, 14)

	exposed := false
	for day := int64(0); day < 14; day++ {
		if day%7 >= 5 {
			continue
		}
		for _, dec := range issuerDay(s, day) {
			if !dec.HKAnonymity {
				t.Fatalf("day %d: generalization failed: %+v", day, dec)
			}
			exposed = exposed || dec.QIDExposed
		}
	}
	if !exposed {
		t.Fatal("ten commuting weekdays must expose the LBQID")
	}
	// Theorem 1 check: the SP-visible request series satisfies
	// historical k-anonymity against the true PHL database.
	var boxes []geo.STBox
	for _, r := range provider.Requests() {
		boxes = append(boxes, r.Context)
	}
	if !anon.SatisfiesHistoricalK(s.Store(), 0, boxes, k) {
		t.Fatalf("historical %d-anonymity violated (level=%d)",
			k, anon.HistoricalLevel(s.Store(), 0, boxes))
	}
}

func TestToleranceFailureTriggersUnlink(t *testing.T) {
	// Tight tolerance and far-apart neighbors: generalization must fail
	// and the TS must rotate the pseudonym via an on-demand mix zone.
	cfg := Config{
		DefaultPolicy: Policy{K: 3},
		Services: map[string]ServiceSpec{
			"navigation": {Name: "navigation", Tolerance: generalize.Tolerance{
				MaxWidth: 10, MaxHeight: 10, MaxDuration: 10,
			}},
		},
		OnDemand: mixzone.OnDemand{Quiet: 300, Divergence: mixzone.Divergence{MinAngle: 0.3}},
	}
	s, provider := newServer(t, cfg)
	if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	// Neighbors whose home samples are ~500 m away: any enclosing box
	// busts the 10 m tolerance. Give them diverging onward paths so the
	// on-demand zone can form.
	base := at(0, 7*tgran.Hour)
	dirs := [][2]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	for u := 1; u <= 4; u++ {
		d := dirs[u-1]
		// Trajectories extend past the request time plus the divergence
		// horizon so onward headings are measurable.
		for step := int64(0); step <= 12; step++ {
			s.RecordLocation(phl.UserID(u),
				pt(500*d[0]+float64(step)*120*d[0], 500*d[1]+float64(step)*120*d[1], base+step*120))
		}
	}
	dec := s.Request(0, pt(50, 50, base+600), "navigation", nil)
	if dec.HKAnonymity {
		t.Fatalf("10m tolerance must break anonymity: %+v", dec)
	}
	if !dec.Unlinked {
		t.Fatalf("expected an unlinking action: %+v", dec)
	}
	if s.Rotations(0) != 1 {
		t.Fatalf("rotations=%d", s.Rotations(0))
	}
	// The forwarded request still respects the tolerance.
	r := provider.Requests()[0]
	if r.Context.Area.Width() > 10 || r.Context.Time.Duration() > 10 {
		t.Fatalf("clamped context exceeded tolerance: %v", r.Context)
	}
	// Requests inside the suppression window+area are withheld.
	dec = s.Request(0, pt(55, 50, base+700), "navigation", nil)
	if !dec.Suppressed {
		t.Fatalf("expected suppression inside the on-demand zone: %+v", dec)
	}
	if got := s.Counters.Get("suppressed"); got != 1 {
		t.Fatalf("suppressed counter=%d", got)
	}
}

func TestUnlinkResetsExposure(t *testing.T) {
	cfg := Config{
		DefaultPolicy: Policy{K: 3},
		Services: map[string]ServiceSpec{
			"navigation": {Tolerance: generalize.Tolerance{MaxWidth: 5, MaxHeight: 5, MaxDuration: 5}},
		},
		StaticZones: mixzone.NewRegistry(mixzone.Zone{
			Name: "plaza", Area: geo.Rect{MinX: 0, MinY: 0, MaxX: 3000, MaxY: 3000},
		}),
	}
	s, _ := newServer(t, cfg)
	if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	seedCrowd(s, 6, 1)
	// Prior movement crosses the static zone, so rotation is available.
	s.RecordLocation(0, pt(100, 100, at(0, 6*tgran.Hour)))

	p1 := s.Pseudonyms().Current(0)
	dec := s.Request(0, pt(50, 50, at(0, 7*tgran.Hour+600)), "navigation", nil)
	if dec.HKAnonymity || !dec.Unlinked {
		t.Fatalf("decision: %+v", dec)
	}
	p2 := s.Pseudonyms().Current(0)
	if p1 == p2 {
		t.Fatal("pseudonym must have rotated")
	}
	// After reset, the next matching request starts a fresh exposure
	// (element 0 again), under the new pseudonym.
	dec = s.Request(0, pt(60, 50, at(0, 7*tgran.Hour+900)), "weather", nil)
	if dec.MatchedLBQID != "commute" || !dec.Generalized {
		t.Fatalf("fresh exposure expected: %+v", dec)
	}
	if dec.Request.Pseudonym != p2 {
		t.Fatal("request must carry the new pseudonym")
	}
}

func TestAtRiskWhenUnlinkImpossible(t *testing.T) {
	// No crowd at all: generalization fails outright and no diverging
	// users exist, so the user must be flagged at risk; with a
	// suppressing policy, service stops.
	cfg := Config{DefaultPolicy: Policy{K: 5, SuppressAtRisk: true}}
	s, provider := newServer(t, cfg)
	if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	dec := s.Request(0, pt(50, 50, at(0, 7*tgran.Hour+600)), "navigation", nil)
	if !dec.AtRisk || !dec.Suppressed || dec.Forwarded {
		t.Fatalf("decision: %+v", dec)
	}
	if !s.AtRisk(0) {
		t.Fatal("user must be flagged at risk")
	}
	if len(provider.Requests()) != 0 {
		t.Fatal("suppressed request must not reach the SP")
	}
	if s.Counters.Get("at_risk") != 1 {
		t.Fatalf("counters: %s", s.Counters)
	}
}

func TestAtRiskNotifyOnlyStillForwards(t *testing.T) {
	cfg := Config{DefaultPolicy: Policy{K: 5, SuppressAtRisk: false}}
	s, provider := newServer(t, cfg)
	if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	dec := s.Request(0, pt(50, 50, at(0, 7*tgran.Hour+600)), "navigation", nil)
	if !dec.AtRisk || !dec.Forwarded {
		t.Fatalf("decision: %+v", dec)
	}
	if len(provider.Requests()) != 1 {
		t.Fatal("notify-only policy must still forward")
	}
}

func TestPolicyForLevel(t *testing.T) {
	low, med, high := PolicyForLevel(Low), PolicyForLevel(Medium), PolicyForLevel(High)
	if !(low.K < med.K && med.K < high.K) {
		t.Fatalf("K must grow with the level: %d %d %d", low.K, med.K, high.K)
	}
	if !(low.Theta > med.Theta && med.Theta > high.Theta) {
		t.Fatal("Theta must shrink with the level")
	}
	if !high.SuppressAtRisk {
		t.Fatal("high level must suppress at risk")
	}
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" {
		t.Fatal("level names wrong")
	}
	if Level(9).String() == "" {
		t.Fatal("unknown level must still render")
	}
}

func TestAddLBQIDValidation(t *testing.T) {
	s, _ := newServer(t, Config{})
	if err := s.AddLBQID(0, &lbqid.LBQID{Name: "empty"}); err == nil {
		t.Fatal("invalid LBQID must be rejected")
	}
	if err := s.AddLBQIDSpec(0, "garbage"); err == nil {
		t.Fatal("unparsable spec must be rejected")
	}
}

func TestRecordLocationFeedsStore(t *testing.T) {
	s, _ := newServer(t, Config{})
	s.RecordLocation(7, pt(1, 2, 3))
	h := s.Store().History(7)
	if h == nil || h.Len() != 1 {
		t.Fatal("location update must land in the PHL store")
	}
}

func TestCountersProgress(t *testing.T) {
	s, _ := newServer(t, Config{DefaultPolicy: Policy{K: 2}})
	if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	seedCrowd(s, 5, 1)
	issuerDay(s, 0)
	if s.Counters.Get("requests") != 4 {
		t.Fatalf("requests=%d", s.Counters.Get("requests"))
	}
	if s.Counters.Get("generalized") != 4 {
		t.Fatalf("generalized=%d", s.Counters.Get("generalized"))
	}
	if s.AreaM2.N() != 4 {
		t.Fatalf("area samples=%d", s.AreaM2.N())
	}
}

func TestOutboxFunc(t *testing.T) {
	var got *wire.Request
	f := OutboxFunc(func(r *wire.Request) { got = r })
	s := New(Config{}, f)
	s.Request(0, pt(0, 0, 0), "svc", nil)
	if got == nil || got.Service != "svc" {
		t.Fatalf("OutboxFunc not invoked: %+v", got)
	}
}

func TestMultipleLBQIDsUnionContext(t *testing.T) {
	s, provider := newServer(t, Config{DefaultPolicy: Policy{K: 3}})
	// Two patterns whose first elements both cover the home area.
	if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	if err := s.AddLBQIDSpec(0, `
lbqid "morning-errand" {
    element "Home" area [0,300]x[0,300] time [06:00,10:00]
    element "Shop" area [900,1100]x[900,1100] time [08:00,12:00]
    recurrence 2.Days
}`); err != nil {
		t.Fatal(err)
	}
	seedCrowd(s, 8, 1)
	dec := s.Request(0, pt(50, 50, at(0, 7*tgran.Hour+600)), "navigation", nil)
	if dec.MatchedLBQID != "commute,morning-errand" {
		t.Fatalf("MatchedLBQID=%q", dec.MatchedLBQID)
	}
	if !dec.Generalized || !dec.HKAnonymity {
		t.Fatalf("decision: %+v", dec)
	}
	// The forwarded context must certify both sessions: it covers at
	// least K users.
	r := provider.Requests()[0]
	if got := s.Store().CountUsersIn(r.Context); got < 3 {
		t.Fatalf("union context covers %d users", got)
	}
}

func TestMultipleLBQIDsUnionToleranceClamp(t *testing.T) {
	cfg := Config{
		DefaultPolicy: Policy{K: 2},
		Services: map[string]ServiceSpec{
			"navigation": {Tolerance: generalize.Tolerance{MaxWidth: 120, MaxHeight: 120, MaxDuration: 600}},
		},
	}
	s, provider := newServer(t, cfg)
	// Two single-element patterns pulling witnesses from opposite sides:
	// each box fits 120 m, the union does not.
	for _, def := range []string{`
lbqid "a" {
    element area [0,400]x[0,400] time [06:00,10:00]
    recurrence 1.Days
}`, `
lbqid "b" {
    element area [0,400]x[0,400] time [06:00,10:00]
    recurrence 1.Days
}`} {
		if err := s.AddLBQIDSpec(0, def); err != nil {
			t.Fatal(err)
		}
	}
	s.RecordLocation(1, pt(150, 50, at(0, 7*tgran.Hour)))
	s.RecordLocation(2, pt(-40, 50, at(0, 7*tgran.Hour)))
	dec := s.Request(0, pt(50, 50, at(0, 7*tgran.Hour+300)), "navigation", nil)
	if !dec.Forwarded {
		t.Fatalf("decision: %+v", dec)
	}
	r := provider.Requests()[0]
	if r.Context.Area.Width() > 120 || r.Context.Time.Duration() > 600 {
		t.Fatalf("union context exceeds tolerance: %v", r.Context)
	}
	if !r.Context.Area.Contains(geo.Point{X: 50, Y: 50}) {
		t.Fatalf("clamped union lost the request point: %v", r.Context)
	}
}

func TestRandomizeSeedPadsContexts(t *testing.T) {
	mk := func(seed int64) geo.STBox {
		s, provider := newServer(t, Config{DefaultPolicy: Policy{K: 3}, RandomizeSeed: seed})
		if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
			t.Fatal(err)
		}
		seedCrowd(s, 8, 1)
		s.Request(0, pt(50, 50, at(0, 7*tgran.Hour+600)), "navigation", nil)
		return provider.Requests()[0].Context
	}
	bare := mk(0)
	padded := mk(99)
	if !padded.ContainsBox(bare) && padded.Area.Area() <= bare.Area.Area() {
		t.Fatalf("randomized context should be padded: bare=%v padded=%v", bare, padded)
	}
	if padded == bare {
		t.Fatal("randomization had no effect")
	}
	// Determinism: same seed, same context.
	if again := mk(99); again != padded {
		t.Fatalf("same seed differs: %v vs %v", again, padded)
	}
}

func TestQuietForTheta(t *testing.T) {
	tr := link.Tracking{HalfLife: 900}
	if got := quietForTheta(1, tr); got != 0 {
		t.Fatalf("theta=1: %d", got)
	}
	// theta=0.5: exactly one half-life.
	if got := quietForTheta(0.5, tr); got != 900 {
		t.Fatalf("theta=0.5: %d", got)
	}
	// theta=0.25: two half-lives.
	if got := quietForTheta(0.25, tr); got != 1800 {
		t.Fatalf("theta=0.25: %d", got)
	}
	// theta=0: capped.
	if got := quietForTheta(0, tr); got != 4*3600 {
		t.Fatalf("theta=0: %d", got)
	}
	// Lower theta means longer quiet.
	if quietForTheta(0.1, tr) <= quietForTheta(0.5, tr) {
		t.Fatal("quiet must grow as theta shrinks")
	}
	// Defaults apply with the zero tracker.
	if got := quietForTheta(0.5, link.Tracking{}); got != int64(link.DefaultHalfLife) {
		t.Fatalf("default half-life: %d", got)
	}
}

func TestThetaExtendsQuietWindow(t *testing.T) {
	run := func(theta float64) int64 {
		cfg := Config{
			DefaultPolicy: Policy{K: 3, Theta: theta},
			Services: map[string]ServiceSpec{
				"navigation": {Tolerance: generalize.Tolerance{MaxWidth: 10, MaxHeight: 10, MaxDuration: 10}},
			},
			OnDemand: mixzone.OnDemand{Quiet: 60, FallbackRadius: 500,
				Divergence: mixzone.Divergence{MinAngle: 3}},
			Tracker: link.Tracking{HalfLife: 600},
		}
		s, _ := newServer(t, cfg)
		if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
			t.Fatal(err)
		}
		// A distant crowd: generalization fails, the fallback zone forms.
		for u := 1; u <= 3; u++ {
			s.RecordLocation(phl.UserID(u), pt(float64(400*u), 0, at(0, 7*tgran.Hour)))
		}
		dec := s.Request(0, pt(50, 50, at(0, 7*tgran.Hour+600)), "navigation", nil)
		if !dec.Unlinked {
			t.Fatalf("theta=%g: expected unlink: %+v", theta, dec)
		}
		// Probe when service resumes at the same spot.
		resume := int64(-1)
		for dt := int64(0); dt < 5*3600; dt += 60 {
			d := s.Request(0, pt(51, 50, at(0, 7*tgran.Hour+700)+dt), "weather", nil)
			if !d.Suppressed {
				resume = dt
				break
			}
		}
		return resume
	}
	strict := run(0.2) // needs ~600*log2(5) ≈ 1394 s
	loose := run(0.9)  // needs ~600*log2(1.11) ≈ 92 s
	if strict <= loose {
		t.Fatalf("stricter theta must suppress longer: strict=%d loose=%d", strict, loose)
	}
	if loose < 0 || strict < 0 {
		t.Fatalf("service never resumed: strict=%d loose=%d", strict, loose)
	}
}

func TestPHLSnapshotRoundTripThroughServer(t *testing.T) {
	s1, _ := newServer(t, Config{})
	seedCrowd(s1, 6, 2)
	var buf bytes.Buffer
	if err := s1.WritePHLSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s2, _ := newServer(t, Config{DefaultPolicy: Policy{K: 3}})
	if err := s2.RestorePHL(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Store().NumSamples() != s1.Store().NumSamples() {
		t.Fatalf("samples: %d vs %d", s2.Store().NumSamples(), s1.Store().NumSamples())
	}
	// The rebuilt index serves generalization immediately.
	if err := s2.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	dec := s2.Request(0, pt(50, 50, at(0, 7*tgran.Hour+600)), "navigation", nil)
	if !dec.Generalized || !dec.HKAnonymity {
		t.Fatalf("restored server must generalize: %+v", dec)
	}
	// Corrupt restore is rejected.
	if err := s2.RestorePHL(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	// Fig. 1's full loop: device -> TS -> SP -> TS -> device, with the
	// SP addressing the answer only by msgid.
	provider := sp.NewProvider()
	s := New(Config{}, provider)
	provider.Respond(map[string]sp.Logic{
		"echo": sp.LogicFunc(func(req *wire.Request) map[string]string {
			return map[string]string{
				"echoed": req.Data["q"],
				"area":   req.Context.Area.String(),
			}
		}),
	}, s.DeliverResponse)

	var got []*wire.Response
	s.SetInbox(1, InboxFunc(func(r *wire.Response) { got = append(got, r) }))

	dec := s.Request(1, pt(10, 10, 100), "echo", map[string]string{"q": "hello"})
	if !dec.Forwarded {
		t.Fatalf("decision: %+v", dec)
	}
	if len(got) != 1 {
		t.Fatalf("device received %d responses", len(got))
	}
	if got[0].ID != dec.Request.ID || got[0].Payload["echoed"] != "hello" {
		t.Fatalf("response: %+v", got[0])
	}
	if s.Counters.Get("responses") != 1 || s.Counters.Get("responses_unroutable") != 0 {
		t.Fatalf("counters: %s", s.Counters)
	}

	// A reused or bogus msgid is unroutable (each msgid routes once).
	s.DeliverResponse(&wire.Response{ID: dec.Request.ID})
	s.DeliverResponse(&wire.Response{ID: 99999})
	if s.Counters.Get("responses_unroutable") != 2 {
		t.Fatalf("unroutable accounting: %s", s.Counters)
	}
	if len(got) != 1 {
		t.Fatal("stale msgid must not reach the device")
	}
}

func TestResponseWithoutInboxIsDropped(t *testing.T) {
	provider := sp.NewProvider()
	s := New(Config{}, provider)
	provider.Respond(map[string]sp.Logic{
		"svc": sp.LogicFunc(func(*wire.Request) map[string]string { return nil }),
	}, s.DeliverResponse)
	dec := s.Request(2, pt(0, 0, 0), "svc", nil)
	if !dec.Forwarded {
		t.Fatal("not forwarded")
	}
	// No inbox registered: the response is counted but goes nowhere.
	if s.Counters.Get("responses") != 1 {
		t.Fatalf("counters: %s", s.Counters)
	}
}

type recordingNotifier struct {
	atRisk   []phl.UserID
	unlinked []phl.UserID
}

func (n *recordingNotifier) AtRisk(u phl.UserID, _ string) { n.atRisk = append(n.atRisk, u) }
func (n *recordingNotifier) Unlinked(u phl.UserID, _, _ wire.Pseudonym) {
	n.unlinked = append(n.unlinked, u)
}

func TestNotifierEvents(t *testing.T) {
	// No crowd: generalization fails and unlinking is impossible -> the
	// at-risk notification fires exactly once.
	s, _ := newServer(t, Config{DefaultPolicy: Policy{K: 5}})
	n := &recordingNotifier{}
	s.SetNotifier(n)
	if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	s.Request(0, pt(50, 50, at(0, 7*tgran.Hour+600)), "navigation", nil)
	s.Request(0, pt(55, 50, at(0, 7*tgran.Hour+700)), "navigation", nil)
	if len(n.atRisk) != 1 || n.atRisk[0] != 0 {
		t.Fatalf("atRisk notifications: %v", n.atRisk)
	}

	// With a fallback zone available, the unlinked notification fires.
	cfg := Config{
		DefaultPolicy: Policy{K: 3},
		Services: map[string]ServiceSpec{
			"navigation": {Tolerance: generalize.Tolerance{MaxWidth: 5, MaxHeight: 5, MaxDuration: 5}},
		},
		OnDemand: mixzone.OnDemand{Quiet: 60, FallbackRadius: 300, Divergence: mixzone.Divergence{MinAngle: 3}},
	}
	s2, _ := newServer(t, cfg)
	n2 := &recordingNotifier{}
	s2.SetNotifier(n2)
	if err := s2.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 2; u++ {
		s2.RecordLocation(phl.UserID(u), pt(float64(300*u), 0, at(0, 7*tgran.Hour)))
	}
	dec := s2.Request(0, pt(50, 50, at(0, 7*tgran.Hour+600)), "navigation", nil)
	if !dec.Unlinked {
		t.Fatalf("expected unlink: %+v", dec)
	}
	if len(n2.unlinked) != 1 || n2.unlinked[0] != 0 {
		t.Fatalf("unlinked notifications: %v", n2.unlinked)
	}
}

func TestWitnessSamplesConfig(t *testing.T) {
	// WitnessSamples grows the forwarded box to include several samples
	// per witness.
	mk := func(ws int) float64 {
		s, provider := newServer(t, Config{DefaultPolicy: Policy{K: 3}, WitnessSamples: ws})
		if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
			t.Fatal(err)
		}
		// Each neighbor has a burst of home samples.
		for u := 1; u <= 3; u++ {
			for i := int64(0); i < 6; i++ {
				s.RecordLocation(phl.UserID(u),
					pt(float64(30*u)+float64(i)*15, float64(i)*10, at(0, 7*tgran.Hour+i*60)))
			}
		}
		s.Request(0, pt(50, 50, at(0, 7*tgran.Hour+600)), "navigation", nil)
		return provider.Requests()[0].Context.Area.Area()
	}
	plain := mk(0)
	balanced := mk(4)
	if balanced <= plain {
		t.Fatalf("balanced box must be larger: %g vs %g", balanced, plain)
	}
}

func TestPerServiceTolerance(t *testing.T) {
	cfg := Config{
		DefaultPolicy: Policy{K: 2},
		Services: map[string]ServiceSpec{
			"strict": {Tolerance: generalize.Tolerance{MaxWidth: 10, MaxHeight: 10, MaxDuration: 10}},
			"loose":  {Tolerance: generalize.Unlimited},
		},
	}
	s, provider := newServer(t, cfg)
	if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	s.RecordLocation(1, pt(180, 180, at(0, 7*tgran.Hour)))
	// The same matching position under two services: the strict one is
	// clamped, the loose one is not.
	d1 := s.Request(0, pt(50, 50, at(0, 7*tgran.Hour+300)), "strict", nil)
	d2 := s.Request(0, pt(50, 50, at(0, 7*tgran.Hour+400)), "loose", nil)
	if d1.HKAnonymity {
		t.Fatalf("strict service must fail anonymity: %+v", d1)
	}
	if !d2.HKAnonymity {
		t.Fatalf("loose service must preserve anonymity: %+v", d2)
	}
	reqs := provider.Requests()
	if reqs[0].Context.Area.Width() > 10 {
		t.Fatalf("strict context too wide: %v", reqs[0].Context)
	}
	if reqs[1].Context.Area.Width() <= 10 {
		t.Fatalf("loose context unexpectedly clamped: %v", reqs[1].Context)
	}
}
