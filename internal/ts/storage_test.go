package ts

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/storage"
	"histanon/internal/wire"
)

// tieredServer builds a server on a TieredStore over a crash-simulating
// MemFS with aggressive demotion, so requests exercise the cold path.
func tieredServer(t *testing.T, fsys *storage.MemFS) (*Server, *storage.TieredStore) {
	t.Helper()
	st, _, err := storage.Open(storage.Options{
		Dir:              "store",
		FS:               fsys,
		SnapshotEvery:    32,
		HotWindow:        60,
		MaxDeltas:        3,
		ColdCacheEntries: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		DefaultPolicy: Policy{K: 2},
		Store:         st,
	}, OutboxFunc(func(*wire.Request) {}))
	return s, st
}

func storagePopulate(s *Server, rng *rand.Rand, n, users int) {
	t := int64(0)
	for i := 0; i < n; i++ {
		t += int64(rng.Intn(5))
		u := phl.UserID(rng.Intn(users))
		s.RecordLocation(u, geo.STPoint{
			P: geo.Point{X: rng.Float64() * 2e3, Y: rng.Float64() * 2e3},
			T: t,
		})
	}
}

// A server on a tiered store with most of the PHL demoted must keep
// serving requests normally: the cold tier is invisible to Algorithm 1.
func TestServerOnTieredStoreServes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fsys := storage.NewMemFS()
	s, st := tieredServer(t, fsys)
	defer st.Close()
	storagePopulate(s, rng, 2000, 20)
	if st.Stats().DemotedSamples == 0 {
		t.Fatal("nothing demoted; the test is vacuous")
	}
	served := 0
	for i := 0; i < 50; i++ {
		u := phl.UserID(rng.Intn(20))
		dec := s.Request(u, geo.STPoint{
			P: geo.Point{X: rng.Float64() * 2e3, Y: rng.Float64() * 2e3},
			T: 2000 + int64(i),
		}, "svc", nil)
		if dec.Degraded {
			t.Fatalf("request %d degraded on a healthy store: %s", i, dec.DegradedReason)
		}
		if !dec.Suppressed {
			served++
		}
	}
	if served == 0 {
		t.Fatal("no request was served")
	}
}

// A cold read failure during a request must degrade that request to
// audited suppression — never an answer over a partial PHL.
func TestServerSuppressesOnColdReadFault(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fsys := storage.NewMemFS()
	s, st := tieredServer(t, fsys)
	defer st.Close()
	storagePopulate(s, rng, 2000, 20)
	if st.Stats().DemotedSamples == 0 {
		t.Fatal("nothing demoted")
	}

	fsys.FailReads = errors.New("injected cold-read error")
	degraded := false
	for i := 0; i < 50 && !degraded; i++ {
		u := phl.UserID(rng.Intn(20))
		dec := s.Request(u, geo.STPoint{
			P: geo.Point{X: rng.Float64() * 2e3, Y: rng.Float64() * 2e3},
			T: 2000 + int64(i),
		}, "svc", nil)
		if dec.Degraded {
			if !dec.Suppressed || dec.DegradedReason != "storage_cold_read" {
				t.Fatalf("degraded decision = %+v", dec)
			}
			degraded = true
		}
	}
	if !degraded {
		t.Fatal("no request hit the injected cold-read fault (cache too effective?)")
	}
	fsys.FailReads = nil

	// Healed disk: requests serve again (the fault counter is monotone
	// but only movement during a request suppresses).
	healthy := false
	for i := 0; i < 50 && !healthy; i++ {
		u := phl.UserID(rng.Intn(20))
		dec := s.Request(u, geo.STPoint{
			P: geo.Point{X: rng.Float64() * 2e3, Y: rng.Float64() * 2e3},
			T: 2100 + int64(i),
		}, "svc", nil)
		healthy = !dec.Degraded
	}
	if !healthy {
		t.Fatal("requests still degraded after the disk healed")
	}
}

// A WAL failure is fail-stop: every subsequent request is suppressed
// with storage_wal_failed, even after the disk heals.
func TestServerSuppressesAfterWALFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fsys := storage.NewMemFS()
	s, st := tieredServer(t, fsys)
	defer st.Close()
	storagePopulate(s, rng, 200, 10)

	fsys.FailSyncs = errors.New("injected fsync error")
	s.RecordLocation(1, geo.STPoint{P: geo.Point{X: 1, Y: 1}, T: 3000})
	fsys.FailSyncs = nil
	if !st.StorageFailed() {
		t.Fatal("fsync error did not latch")
	}
	for i := 0; i < 5; i++ {
		dec := s.Request(phl.UserID(i), geo.STPoint{
			P: geo.Point{X: rng.Float64() * 2e3, Y: rng.Float64() * 2e3},
			T: 3100 + int64(i),
		}, "svc", nil)
		if !dec.Suppressed || dec.DegradedReason != "storage_wal_failed" {
			t.Fatalf("request %d after WAL failure = %+v", i, dec)
		}
	}
}

// The storage metric families must be present on every server: live on
// a tiered store, zero placeholders on the default in-memory store.
func TestStorageMetricFamiliesAlwaysExposed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fsys := storage.NewMemFS()
	tiered, st := tieredServer(t, fsys)
	defer st.Close()
	storagePopulate(tiered, rng, 500, 10)
	plain := New(Config{DefaultPolicy: Policy{K: 2}}, OutboxFunc(func(*wire.Request) {}))

	for name, s := range map[string]*Server{"tiered": tiered, "plain": plain} {
		var sb strings.Builder
		s.MetricsRegistry().WritePrometheus(&sb)
		text := sb.String()
		for _, family := range []string{
			"histanon_storage_wal_appends_total",
			"histanon_storage_wal_fsyncs_total",
			"histanon_storage_cold_reads_total",
			"histanon_storage_hot_samples",
			"histanon_storage_failed",
		} {
			if !strings.Contains(text, family) {
				t.Fatalf("%s server: family %s missing from exposition", name, family)
			}
		}
	}
	var sb strings.Builder
	tiered.MetricsRegistry().WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `histanon_storage_wal_appends_total 500`) {
		t.Fatal("tiered server exposes placeholder storage counters, not live ones")
	}
}

// The tiered store doubles as the server's spatio-temporal index when
// none is configured; a server restarted on the same directory must
// serve the same PHL.
func TestServerTieredRestartKeepsPHL(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fsys := storage.NewMemFS()
	s, st := tieredServer(t, fsys)
	storagePopulate(s, rng, 1000, 15)
	users, samples := st.NumUsers(), st.NumSamples()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	s2, st2 := tieredServer(t, fsys)
	defer st2.Close()
	if st2.NumUsers() != users || st2.NumSamples() != samples {
		t.Fatalf("restart lost PHL: %d/%d users, %d/%d samples",
			st2.NumUsers(), users, st2.NumSamples(), samples)
	}
	dec := s2.Request(1, geo.STPoint{P: geo.Point{X: 100, Y: 100}, T: 5000}, "svc", nil)
	if dec.Degraded {
		t.Fatalf("request degraded after clean restart: %s", dec.DegradedReason)
	}
}
