package ts

import (
	"bytes"
	"strings"
	"testing"

	"histanon/internal/obs"
)

// TestAuditReplayMatchesLiveAchievedK pins the observability layer's
// core consistency property: replaying the audit log rebuilds exactly
// the achieved-k histogram the live /metrics endpoint reported.
func TestAuditReplayMatchesLiveAchievedK(t *testing.T) {
	s, _ := newServer(t, Config{DefaultPolicy: Policy{K: 3}})
	var buf bytes.Buffer
	s.Obs.SetAudit(obs.NewAuditLog(&buf))
	s.Obs.Tracer.SetSampleRate(1)

	if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	seedCrowd(s, 8, 5)
	for day := int64(0); day < 5; day++ {
		issuerDay(s, day)
	}
	if err := s.Obs.AuditSink().Flush(); err != nil {
		t.Fatal(err)
	}

	live := s.Obs.AchievedK
	if live.Count() == 0 {
		t.Fatal("workload produced no generalized requests")
	}
	replayed, err := obs.ReplayAchievedK(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReplayAchievedK: %v", err)
	}
	if replayed.Count() != live.Count() {
		t.Fatalf("replayed %d observations, live %d", replayed.Count(), live.Count())
	}
	lc, rc := live.BucketCounts(), replayed.BucketCounts()
	for i := range lc {
		if lc[i] != rc[i] {
			t.Fatalf("bucket %d: live %d, replayed %d\nlive %v\nreplayed %v",
				i, lc[i], rc[i], lc, rc)
		}
	}
}

func TestAuditRotationEvents(t *testing.T) {
	s, _ := newServer(t, Config{DefaultPolicy: Policy{K: 2}})
	var buf bytes.Buffer
	s.Obs.SetAudit(obs.NewAuditLog(&buf))

	if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	seedCrowd(s, 8, 10)
	for day := int64(0); day < 10; day++ {
		issuerDay(s, day)
	}
	s.Obs.AuditSink().Flush()

	events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rotations := 0
	for _, e := range events {
		if e.Kind != obs.KindRotation {
			continue
		}
		rotations++
		if e.OldPseudonym == "" || e.NewPseudonym == "" || e.OldPseudonym == e.NewPseudonym {
			t.Fatalf("rotation event lacks a real pseudonym change: %+v", e)
		}
		if e.Zone == "" {
			t.Fatalf("rotation event lacks a zone: %+v", e)
		}
	}
	if got := s.Pseudonyms().TotalRotations(); int(got) != rotations {
		t.Fatalf("manager counted %d rotations, audit log has %d", got, rotations)
	}
}

// TestMetricsRegistryExposition checks that the server's registry emits
// every documented metric family and that sampled spans feed the
// per-stage latency histograms.
func TestMetricsRegistryExposition(t *testing.T) {
	s, _ := newServer(t, Config{DefaultPolicy: Policy{K: 3}})
	s.Obs.Tracer.SetSampleRate(1)
	if err := s.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	seedCrowd(s, 8, 1)
	issuerDay(s, 0)

	var b strings.Builder
	if err := s.MetricsRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range obs.MetricNames() {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Fatalf("exposition lacks family %s:\n%s", name, out)
		}
	}
	// Sampled requests must have produced span and stage-latency data.
	if s.Obs.Tracer.Sampled() == 0 {
		t.Fatal("no spans sampled at rate 1")
	}
	if !strings.Contains(out, `histanon_stage_duration_seconds_bucket{le="1e-06",stage="lbqid_match"}`) {
		t.Fatalf("per-stage histogram series missing:\n%s", out)
	}
	if !strings.Contains(out, `histanon_ts_events_total{event="requests"} 4`) {
		t.Fatalf("requests counter missing or wrong:\n%s", out)
	}
	// Registering is idempotent: a second call returns the same registry.
	if s.MetricsRegistry() != s.MetricsRegistry() {
		t.Fatal("MetricsRegistry must be a singleton")
	}
}
