// Package ts implements the Trusted Server of the paper's service model
// (§3) and its privacy-preservation strategy (§6.1):
//
//  1. Every incoming request is monitored against the user's LBQIDs.
//     Requests that match the first element of a pattern, or extend a
//     partially matched one, are generalized with Algorithm 1 before
//     being forwarded (package generalize).
//  2. When generalization fails — historical k-anonymity can no longer
//     be preserved within the service's tolerance constraints — the TS
//     tries to unlink future requests from past ones by rotating the
//     user's pseudonym inside a mix zone (package mixzone), resetting
//     all partially matched patterns. If unlinking is impossible the
//     user is flagged "at risk" and, per policy, notified or cut off.
//
// Witness persistence: Definition 8 quantifies over *all* requests of
// the user matching an LBQID, across recurrence rounds. The TS therefore
// keeps one generalization session per (user, LBQID) exposure: the
// witness set is chosen at the first matched element and only narrowed
// afterwards, so every forwarded box of the exposure is LT-consistent
// with each surviving witness. The session dies with the exposure (on
// pseudonym rotation).
//
// # Concurrency model
//
// The server is safe for concurrent use and scales with cores: there is
// no global request lock. Each user's session state (matchers,
// generalization sessions, mix-zone plan, at-risk flag) is guarded by a
// per-user mutex, so requests from independent users monitor, generalize
// and forward fully in parallel; two concurrent requests from the same
// user serialize on that user's lock. Cross-user state is confined to
// components with their own narrow synchronization: the PHL store and
// the spatio-temporal index (internally concurrency-safe), the
// pseudonym manager, the metrics counters/summaries, the atomic message
// counter, and the generalizer's mutex-guarded randomizer. The user
// registry itself sits behind a short RWMutex taken only to look up or
// create a user's state.
//
// Lock ordering: a request holds only its user's lock while running;
// the registry lock and component-internal locks nest strictly inside
// it and are never held across a call back into the server.
package ts

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/lbqid"
	"histanon/internal/link"
	"histanon/internal/metrics"
	"histanon/internal/mixzone"
	"histanon/internal/obs"
	"histanon/internal/phl"
	"histanon/internal/pseudonym"
	"histanon/internal/slo"
	"histanon/internal/stindex"
	"histanon/internal/wire"
)

// Level is the qualitative privacy degree of the paper's simplified user
// interface: "low, medium, high".
type Level int

// The qualitative privacy levels.
const (
	Low Level = iota
	Medium
	High
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Policy is the quantitative translation of a user's privacy
// preferences: the anonymity value k, the linkability threshold Θ and
// the k′-decay schedule of §6.2.
type Policy struct {
	// K is the historical anonymity value to preserve.
	K int
	// Theta is the linkability likelihood above which two requests are
	// considered linked by an attacker.
	Theta float64
	// Decay over-provisions witnesses at the start of a trace; zero
	// values mean no over-provisioning.
	Decay generalize.DecaySchedule
	// SuppressAtRisk cuts service off (rather than merely flagging) when
	// the user is at risk of identification.
	SuppressAtRisk bool
}

// PolicyForLevel translates the qualitative degrees of concern into
// concrete parameters (the TS performs this translation in §3).
func PolicyForLevel(l Level) Policy {
	switch l {
	case Low:
		return Policy{K: 2, Theta: 0.8}
	case Medium:
		return Policy{K: 5, Theta: 0.5,
			Decay: generalize.DecaySchedule{Target: 5, Initial: 8, Step: 1}}
	default: // High
		return Policy{K: 10, Theta: 0.3,
			Decay:          generalize.DecaySchedule{Target: 10, Initial: 16, Step: 2},
			SuppressAtRisk: true}
	}
}

// ServiceSpec describes one location-based service's tolerance
// constraints (§6.1): the coarsest resolution at which it is still
// useful.
type ServiceSpec struct {
	Name      string
	Tolerance generalize.Tolerance
}

// Outbox receives the requests the TS forwards; in experiments it is the
// (possibly adversarial) service provider.
type Outbox interface {
	Deliver(req *wire.Request)
}

// FallibleOutbox is an Outbox whose admission can fail synchronously —
// the contract of the resilience layer's bounded delivery queue
// (internal/resilience). When the configured outbox implements it, the
// server calls TryDeliver instead of Deliver and degrades a refused
// request to suppression: the fail-closed outcome, in which a request
// is withheld rather than forwarded without its delivery guarantees.
// TryDeliver returning nil means the request was (or will be) handed to
// the service provider; an error means it never will be.
type FallibleOutbox interface {
	Outbox
	TryDeliver(req *wire.Request) error
}

// TracedOutbox is a FallibleOutbox that can carry a request's trace
// context through its asynchronous delivery path, so the queue wait and
// every delivery attempt become spans of the same trace
// (internal/resilience implements it). When the configured outbox is
// traced and the request carries a valid context, the server calls
// TryDeliverTraced; otherwise it falls back to TryDeliver.
type TracedOutbox interface {
	FallibleOutbox
	TryDeliverTraced(req *wire.Request, tc obs.TraceContext) error
}

// MetricsSource is implemented by outboxes that expose their own metric
// families (internal/resilience's Outbox does): MetricsRegistry invites
// the outbox to register live series instead of the zero-valued
// placeholders a plain outbox gets.
type MetricsSource interface {
	RegisterMetrics(r *metrics.Registry)
}

// FaultyStorage is implemented by PHL stores whose reads or writes can
// fail (internal/storage's tiered store: cold-tier reads hit disk, and
// the WAL can lose its backing device). The server resolves it once at
// construction; every request samples the fault counter before touching
// the store and again before forwarding, and any movement — or a
// permanently failed store — degrades the request to audited
// suppression, never to an answer computed over a partial PHL.
type FaultyStorage interface {
	// StorageFaults returns a monotone count of storage faults (cold
	// read errors, WAL append/sync errors) observed so far.
	StorageFaults() int64
	// StorageFailed reports whether the store's durable write path is
	// down for good (a WAL error is fail-stop). While true, every
	// request is suppressed.
	StorageFailed() bool
}

// PolicyResolver chooses a per-request policy from the request context —
// the "more involved rule-based policy specifications" of §3. The
// internal/policy package provides a rule-language implementation.
type PolicyResolver interface {
	Resolve(service string, p geo.STPoint) Policy
}

// OutboxFunc adapts a function to the Outbox interface.
type OutboxFunc func(req *wire.Request)

// Deliver implements Outbox.
func (f OutboxFunc) Deliver(req *wire.Request) { f(req) }

// Config assembles a trusted server.
type Config struct {
	// Metric is the 3D metric of Algorithm 1.
	Metric geo.STMetric
	// GridCell and GridBucket size the spatio-temporal index
	// (meters / seconds). Zero means 500 m / 900 s.
	GridCell   float64
	GridBucket int64
	// Services maps service names to their tolerance constraints.
	// Unknown services get unlimited tolerance.
	Services map[string]ServiceSpec
	// StaticZones are the deployment area's natural mix zones.
	StaticZones *mixzone.Registry
	// OnDemand configures on-demand mix-zone planning.
	OnDemand mixzone.OnDemand
	// DefaultPolicy applies to users registered without an explicit
	// policy. Zero means PolicyForLevel(Medium).
	DefaultPolicy Policy
	// Policies, when non-nil, overrides the per-user policy on every
	// request (rule-based policies). A user's registered policy remains
	// the fallback for resolvers returning a zero policy.
	Policies PolicyResolver
	// RandomizeSeed, when non-zero, enables the §7 randomization defense:
	// every generalized box is padded by bounded random amounts so its
	// edges do not betray exact sample positions. The seed makes runs
	// reproducible.
	RandomizeSeed int64
	// Tracker is the replicated attacker model (§5.2: "we assume the TS
	// can replicate the techniques used by a possible attacker") used to
	// size quiet windows against the policy's Θ. The zero value uses the
	// tracking defaults.
	Tracker link.Tracking
	// WitnessSamples > 1 hardens boxes against density-weighted
	// (Bayesian) attackers: every witness contributes that many samples
	// to each box instead of one. See generalize.Generalizer and
	// experiment E14.
	WitnessSamples int
	// Index, when non-nil, replaces the default grid spatio-temporal
	// index — the hook the chaos harness uses to inject slow-store
	// faults, and deployments use to pick another stindex
	// implementation. The index must be empty at configuration time.
	Index stindex.Index
	// Store, when non-nil, replaces the default in-memory PHL store —
	// the hook the durable tiered store (internal/storage) plugs into.
	// When the store also implements stindex.Index and Index is nil, it
	// doubles as the spatio-temporal index so hot/cold demotion stays
	// transparent to Algorithm 1. The store must be empty or restored
	// from its own durable state at configuration time.
	Store phl.Storer
	// SLO configures the privacy-SLO engine (windows, objectives, burn
	// thresholds). The zero value gets the engine defaults; the engine
	// starts disabled either way — enable with Server.SLO.SetEnabled.
	SLO slo.Options
}

// Decision reports what the TS did with one request.
type Decision struct {
	// Forwarded is true when the request reached the service provider.
	Forwarded bool
	// Request is the forwarded form (nil when suppressed).
	Request *wire.Request
	// MatchedLBQID names the pattern the request matched, if any.
	MatchedLBQID string
	// Generalized is true when Algorithm 1 ran on this request.
	Generalized bool
	// HKAnonymity is Algorithm 1's verdict (true also for requests that
	// needed no generalization).
	HKAnonymity bool
	// Unlinked is true when this request triggered a pseudonym rotation.
	Unlinked bool
	// AtRisk is true when generalization failed and unlinking was not
	// possible: the user should be warned (paper §6.1 step 2).
	AtRisk bool
	// Suppressed is true when the request was withheld (inside an active
	// on-demand mix zone, at-risk under a suppressing policy, or
	// degraded by the delivery layer).
	Suppressed bool
	// Degraded is true when the request was suppressed not by policy but
	// by the fail-closed delivery layer: the outbox refused admission
	// (queue full or circuit breaker open), so the TS withheld the
	// request rather than risk an unprotected forward.
	Degraded bool
	// DegradedReason names the admission failure ("queue_full",
	// "breaker_open", "outbox_closed") when Degraded is true.
	DegradedReason string
	// QIDExposed is true when a full LBQID (sequence and recurrence) has
	// been matched under the current pseudonym: the quasi-identifier has
	// been released to the SP.
	QIDExposed bool
	// Trace is the request's W3C trace context when the request was
	// traced (the zero value for untraced requests). The TraceID and
	// Traceparent methods render the hex forms on demand, so decisions
	// whose trace identity is never read cost no allocations.
	Trace obs.TraceContext
}

// TraceID returns the request's W3C trace id (lowercase hex) — the key
// for /v1/spans?trace= and the audit log's trace_id field — or "" for
// untraced requests. Rendered on demand from the binary Trace context.
func (d *Decision) TraceID() string {
	if !d.Trace.Valid() {
		return ""
	}
	return d.Trace.TraceIDString()
}

// Traceparent returns the W3C traceparent header value identifying the
// request span, for callers that propagate the trace downstream, or ""
// for untraced requests.
func (d *Decision) Traceparent() string {
	if !d.Trace.Valid() {
		return ""
	}
	return d.Trace.Traceparent()
}

// userState is the per-user bookkeeping. Its mutex serializes the
// requests of one user; requests of different users run in parallel.
type userState struct {
	mu       sync.Mutex
	policy   Policy
	patterns []*lbqid.LBQID
	matchers []*lbqid.Matcher
	sessions map[int]*generalize.Session // by pattern index
	plan     *mixzone.Plan               // active on-demand zone, if any
	atRisk   bool
	lastSeen geo.STPoint
}

// Server is the trusted server. It is safe for concurrent use; see the
// package comment for the locking model.
type Server struct {
	cfg Config
	out Outbox
	// fallible is out's fail-closed admission interface, when it has one
	// (resolved once at construction so the hot path pays no assertion);
	// traced additionally carries trace contexts into the delivery queue.
	fallible FallibleOutbox
	traced   TracedOutbox
	store    phl.Storer
	index    stindex.Index
	// faulty is store's fault-reporting interface, when it has one
	// (resolved once at construction so the hot path pays no assertion).
	// A durable store reports cold-read and WAL failures through it;
	// requests observing a fault degrade to audited suppression.
	faulty FaultyStorage
	pseud  *pseudonym.Manager
	// gen is shared by all generalization sessions; its components
	// (index, store, randomizer) each carry their own synchronization.
	gen *generalize.Generalizer

	// stateMu guards only the user registry and the notifier pointer —
	// never an individual user's state, and never a whole request.
	stateMu  sync.RWMutex
	users    map[phl.UserID]*userState
	notifier Notifier

	// nextID is the TS↔SP message counter.
	nextID atomic.Int64

	// Response routing has its own lock: the SP may call DeliverResponse
	// synchronously from inside Deliver, i.e. while Request still holds
	// mu.
	respMu  sync.Mutex
	routes  map[wire.MsgID]phl.UserID
	inboxes map[phl.UserID]Inbox

	// Counters: requests, forwarded, generalized, hk_failures,
	// unlinkings, at_risk, suppressed, exposures.
	Counters *metrics.Counters
	// AreaM2 and IntervalS summarize the resolution of forwarded
	// generalized requests.
	AreaM2    *metrics.Summary
	IntervalS *metrics.Summary

	// Obs is the observability layer: span tracer (sampling off by
	// default), privacy histograms and the optional audit sink. See
	// OBSERVABILITY.md for the operator-facing reference.
	Obs *obs.Observer

	// SLO is the privacy-SLO engine: windowed achieved-k aggregates,
	// burn-rate objectives and the optional re-identification canary.
	// Disabled by default (one atomic load per request); state
	// transitions audit through Obs as KindSLO records.
	SLO *slo.Engine

	// Wire counts binary wire-protocol activity on the batch ingest
	// channel. The counters live here (not in httpapi) so the wire
	// families are always registered, whether or not /v1/batch is
	// mounted — the same zero-placeholder discipline as the resilience
	// families.
	Wire *WireStats

	// regOnce/registry lazily build the Prometheus registry.
	regOnce  sync.Once
	registry *metrics.Registry

	// Hooks feeding the always-registered resilience families for the
	// layers above the TS: httpapi installs the admission-control
	// sources (SetHTTPMetrics), lbserve the snapshot-durability ones
	// (SetSnapshotMetrics). Unset hooks read as zero (age as -1).
	httpShed     atomic.Pointer[func() int64]
	httpInFlight atomic.Pointer[func() float64]
	snapAge      atomic.Pointer[func() float64]
	snapErrors   atomic.Pointer[func() int64]
}

// SetHTTPMetrics installs the admission-control metric sources: the
// shed-request counter and the in-flight gauge exposed as
// histanon_http_shed_total / histanon_http_inflight.
func (s *Server) SetHTTPMetrics(shed func() int64, inflight func() float64) {
	s.httpShed.Store(&shed)
	s.httpInFlight.Store(&inflight)
}

// SetSnapshotMetrics installs the snapshot-durability metric sources:
// seconds since the last successful snapshot (-1 = never) and the
// snapshot error counter.
func (s *Server) SetSnapshotMetrics(age func() float64, errs func() int64) {
	s.snapAge.Store(&age)
	s.snapErrors.Store(&errs)
}

// New returns a trusted server delivering to out.
func New(cfg Config, out Outbox) *Server {
	if cfg.GridCell == 0 {
		cfg.GridCell = 500
	}
	if cfg.GridBucket == 0 {
		cfg.GridBucket = 900
	}
	if cfg.DefaultPolicy.K == 0 {
		cfg.DefaultPolicy = PolicyForLevel(Medium)
	}
	if cfg.StaticZones == nil {
		cfg.StaticZones = mixzone.NewRegistry()
	}
	store := cfg.Store
	if store == nil {
		store = phl.NewStore()
	}
	index := cfg.Index
	if index == nil {
		// A store that is also an stindex.Index (the tiered store)
		// serves both roles, so demoted samples stay queryable.
		if idx, ok := store.(stindex.Index); ok {
			index = idx
		} else {
			index = stindex.NewGrid(cfg.GridCell, cfg.GridBucket)
		}
	}
	s := &Server{
		cfg:       cfg,
		out:       out,
		store:     store,
		index:     index,
		pseud:     pseudonym.NewManager(),
		users:     make(map[phl.UserID]*userState),
		routes:    make(map[wire.MsgID]phl.UserID),
		inboxes:   make(map[phl.UserID]Inbox),
		Counters:  metrics.NewCounters(),
		AreaM2:    &metrics.Summary{},
		IntervalS: &metrics.Summary{},
		Obs:       obs.New(),
		SLO:       slo.New(cfg.SLO),
		Wire:      NewWireStats(),
	}
	// SLO state transitions audit through the observer's sink, so they
	// land in the same log as the decisions that caused the burn.
	s.SLO.SetAudit(func(e obs.Event) { s.Obs.Audit(e) })
	s.fallible, _ = out.(FallibleOutbox)
	s.traced, _ = out.(TracedOutbox)
	s.faulty, _ = store.(FaultyStorage)
	s.gen = &generalize.Generalizer{
		Index:  s.index,
		Store:  s.store,
		Metric: cfg.Metric,
	}
	if cfg.RandomizeSeed != 0 {
		s.gen.Randomize = generalize.NewRandomizer(cfg.RandomizeSeed)
	}
	s.gen.WitnessSamples = cfg.WitnessSamples
	return s
}

// Store exposes the PHL database (read-only use expected).
func (s *Server) Store() phl.Storer { return s.store }

// Pseudonyms exposes the pseudonym manager, which only the TS holds
// (experiments use it as the re-identification ground truth).
func (s *Server) Pseudonyms() *pseudonym.Manager { return s.pseud }

// counterEvents is the closed set of event counter names the server
// increments; each becomes one series of the histanon_ts_events_total
// family. OBSERVABILITY.md documents their meanings.
var counterEvents = []string{
	"requests", "forwarded", "generalized", "hk_failures", "unlinkings",
	"at_risk", "suppressed", "degraded", "exposures", "ondemand_zones",
	"unlink_failures", "responses", "responses_unroutable",
}

// MetricsRegistry returns the server's Prometheus registry, building it
// on first use. internal/httpapi serves it at GET /metrics; every
// family it registers is documented in OBSERVABILITY.md.
func (s *Server) MetricsRegistry() *metrics.Registry {
	s.regOnce.Do(func() {
		r := metrics.NewRegistry()
		for _, name := range counterEvents {
			name := name
			r.RegisterCounterFunc(obs.MetricEvents,
				"Trusted-server pipeline events by type.",
				metrics.Labels{"event": name},
				func() int64 { return s.Counters.Get(name) })
		}
		for _, stage := range obs.Stages() {
			r.RegisterHistogram(obs.MetricStageSeconds,
				"Per-stage request latency (sampled spans only).",
				metrics.Labels{"stage": stage.String()}, s.Obs.StageSeconds[stage])
		}
		r.RegisterHistogram(obs.MetricAchievedK,
			"Achieved anonymity (witnesses+1) per generalized request.",
			nil, s.Obs.AchievedK)
		r.RegisterHistogram(obs.MetricGenArea,
			"Forwarded generalized context area in square meters.",
			nil, s.Obs.GenAreaM2)
		r.RegisterHistogram(obs.MetricGenInterval,
			"Forwarded generalized context time interval in seconds.",
			nil, s.Obs.GenIntervalS)
		r.RegisterCounterFunc(obs.MetricGenFailures,
			"Requests whose generalization could not preserve historical k-anonymity.",
			nil, func() int64 { return s.Counters.Get("hk_failures") })
		r.RegisterCounterFunc(obs.MetricRotations,
			"Pseudonym rotations (unlinking actions) across all users.",
			nil, s.pseud.TotalRotations)
		r.RegisterGaugeFunc(obs.MetricPHLUsers,
			"Users with at least one PHL sample.",
			nil, func() float64 { return float64(s.store.NumUsers()) })
		r.RegisterGaugeFunc(obs.MetricPHLSamples,
			"Location samples in the PHL store.",
			nil, func() float64 { return float64(s.store.NumSamples()) })
		r.RegisterCounterFunc(obs.MetricSpansSampled,
			"Request spans captured by the tracer.",
			nil, s.Obs.Tracer.Sampled)
		r.RegisterCounterVec(obs.MetricTailKept,
			"Spans retained by the tail sampler, by keep reason.",
			nil, s.Obs.Tracer.KeptCounters())
		r.RegisterCounterFunc(obs.MetricAuditEvents,
			"Audit records written successfully.",
			nil, func() int64 { return s.Obs.AuditSink().Events() })
		r.RegisterCounterFunc(obs.MetricAuditErrors,
			"Audit records dropped on encoding or flush errors.",
			nil, func() int64 { return s.Obs.AuditSink().Errors() })
		// The resilience families are always present so the exposition
		// surface doesn't depend on deployment wiring: a resilience-aware
		// outbox registers its live series, anything else gets zero
		// placeholders; the admission-control and snapshot sources are
		// installed by the layers that own them (SetHTTPMetrics /
		// SetSnapshotMetrics) and read as zero until then.
		if src, ok := s.out.(MetricsSource); ok {
			src.RegisterMetrics(r)
		} else {
			r.RegisterCounterVec(obs.MetricResilienceEvents,
				"Async SP delivery pipeline events by type.",
				nil, metrics.NewCounterVec("event"))
			r.RegisterGaugeFunc(obs.MetricResilienceQueueDepth,
				"Requests waiting in the async SP delivery queue.",
				nil, func() float64 { return 0 })
			r.RegisterGaugeFunc(obs.MetricResilienceBreakerOpen,
				"Per-service circuit breakers currently open.",
				nil, func() float64 { return 0 })
		}
		r.RegisterCounterFunc(obs.MetricHTTPShed,
			"HTTP requests shed by admission control with a 503.",
			nil, func() int64 {
				if fn := s.httpShed.Load(); fn != nil {
					return (*fn)()
				}
				return 0
			})
		r.RegisterGaugeFunc(obs.MetricHTTPInFlight,
			"HTTP requests currently being served.",
			nil, func() float64 {
				if fn := s.httpInFlight.Load(); fn != nil {
					return (*fn)()
				}
				return 0
			})
		r.RegisterGaugeFunc(obs.MetricSnapshotAge,
			"Seconds since the last successful PHL snapshot (-1 = never).",
			nil, func() float64 {
				if fn := s.snapAge.Load(); fn != nil {
					return (*fn)()
				}
				return -1
			})
		r.RegisterCounterFunc(obs.MetricSnapshotErrors,
			"PHL snapshot attempts that failed.",
			nil, func() int64 {
				if fn := s.snapErrors.Load(); fn != nil {
					return (*fn)()
				}
				return 0
			})
		// The storage families mirror the same pattern: a durable tiered
		// store registers live series, the default in-memory store gets
		// zero placeholders.
		if src, ok := s.store.(MetricsSource); ok {
			src.RegisterMetrics(r)
		} else {
			for _, name := range []string{
				obs.MetricStorageWALAppends, obs.MetricStorageWALFsyncs,
				obs.MetricStorageWALBytes, obs.MetricStorageWALErrors,
				obs.MetricStorageSnapshotErrors, obs.MetricStorageDemotions,
				obs.MetricStorageDemotedSamples,
			} {
				r.RegisterCounterFunc(name,
					"Durable tiered-storage counter (zero: in-memory store).",
					nil, func() int64 { return 0 })
			}
			for _, kind := range []string{"full", "delta"} {
				r.RegisterCounterFunc(obs.MetricStorageSnapshots,
					"Snapshot files written, by kind.",
					metrics.Labels{"kind": kind}, func() int64 { return 0 })
			}
			for _, result := range []string{"hit", "miss", "error"} {
				r.RegisterCounterFunc(obs.MetricStorageColdReads,
					"Cold-tier run reads, by result.",
					metrics.Labels{"result": result}, func() int64 { return 0 })
			}
			for _, name := range []string{
				obs.MetricStorageWALLag, obs.MetricStorageHotSamples,
				obs.MetricStorageColdSamples, obs.MetricStorageChainFiles,
				obs.MetricStorageRecoverySeconds, obs.MetricStorageRecoveryRecords,
				obs.MetricStorageFailed,
			} {
				r.RegisterGaugeFunc(name,
					"Durable tiered-storage gauge (zero: in-memory store).",
					nil, func() float64 { return 0 })
			}
		}
		s.Wire.register(r)
		// The SLO families follow the same always-present discipline: a
		// disabled engine exposes zeros, and the canary gauges read
		// through the engine's canary pointer at scrape time so wiring a
		// canary later (lbserve does) needs no re-registration.
		s.SLO.RegisterMetrics(r)
		s.registry = r
	})
	return s.registry
}

// RegisterUser sets the user's privacy policy. Users not registered get
// the default policy on first contact.
func (s *Server) RegisterUser(u phl.UserID, p Policy) {
	st := s.state(u)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.policy = p
}

// AddLBQID attaches a quasi-identifier specification to the user. The TS
// "has access to the location-based quasi-identifier specifications"
// (§3); deriving them is outside the paper's (and this library's) scope.
func (s *Server) AddLBQID(u phl.UserID, q *lbqid.LBQID) error {
	if err := q.Validate(); err != nil {
		return err
	}
	st := s.state(u)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.patterns = append(st.patterns, q)
	st.matchers = append(st.matchers, lbqid.NewMatcher(q))
	return nil
}

// AddLBQIDSpec parses a definition in the lbqid block format and
// attaches every pattern it contains.
func (s *Server) AddLBQIDSpec(u phl.UserID, def string) error {
	qs, err := lbqid.ParseString(def)
	if err != nil {
		return err
	}
	for _, q := range qs {
		if err := s.AddLBQID(u, q); err != nil {
			return err
		}
	}
	return nil
}

// RecordLocation ingests a location update that carries no service
// request (the PHL holds those too — Def. 6 explicitly includes them).
func (s *Server) RecordLocation(u phl.UserID, p geo.STPoint) {
	s.store.Record(u, p)
	s.index.Insert(u, p)
	st := s.state(u)
	st.mu.Lock()
	st.lastSeen = p
	st.mu.Unlock()
}

// state returns (creating if needed) the user's bookkeeping. It takes
// only the registry lock; callers lock the returned state themselves.
func (s *Server) state(u phl.UserID) *userState {
	s.stateMu.RLock()
	st := s.users[u]
	s.stateMu.RUnlock()
	if st != nil {
		return st
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if st := s.users[u]; st != nil {
		return st
	}
	st = &userState{
		policy:   s.cfg.DefaultPolicy,
		sessions: make(map[int]*generalize.Session),
	}
	s.users[u] = st
	return st
}

// getNotifier reads the registered notifier under the registry lock.
func (s *Server) getNotifier() Notifier {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	return s.notifier
}

// tolerance returns the service's constraints.
func (s *Server) tolerance(service string) generalize.Tolerance {
	if spec, ok := s.cfg.Services[service]; ok {
		return spec.Tolerance
	}
	return generalize.Unlimited
}

// Request processes one service request issued by user u from the exact
// position/instant p (§3: the TS knows the exact point and time).
// Requests from different users run concurrently; requests from the
// same user serialize on the user's session lock.
func (s *Server) Request(u phl.UserID, p geo.STPoint, service string, data map[string]string) Decision {
	return s.RequestTraced(u, p, service, data, obs.TraceContext{})
}

// timingsPool recycles the per-request Algorithm 1 timing arenas, so a
// traced request pays no allocation for stage timing. An arena is
// acquired only when a span is collected and returned when the request
// finishes.
var timingsPool = sync.Pool{New: func() any { return new(generalize.Timings) }}

// RequestTraced is Request under an upstream trace context (parsed from
// a traceparent header by internal/httpapi). A valid parent puts this
// request's span in the caller's trace — and, when the parent is
// sampled, forces collection and retention regardless of the local
// sampling rate. A zero parent behaves exactly like Request.
func (s *Server) RequestTraced(u phl.UserID, p geo.STPoint, service string, data map[string]string, parent obs.TraceContext) Decision {
	// Span sampling decides up front whether this request pays for
	// timing: one atomic load when tracing is off and no parent forces
	// it. collect means the request gathers a span (so the tail sampler
	// has something to keep); head means unconditional retention.
	var sp *obs.Span
	var tc obs.TraceContext
	var collect, head bool
	if parent.Valid() {
		collect, head = s.Obs.Tracer.SampleWithParent(parent.Sampled())
		// The child identity exists even when nothing is collected, so
		// the response header still joins the caller's trace.
		tc = parent.Child().WithSampled(head)
	} else {
		collect, head = s.Obs.Tracer.Sample()
		if collect {
			tc = obs.MintTraceContext(head)
		}
	}
	if collect {
		// The span comes from the pool and carries its identity in
		// binary form; hex ids are rendered only if the tail sampler
		// keeps it. RecordSpan (via finishRequest) recycles it.
		sp = obs.NewSpan()
		sp.SetIdentity(tc, parent)
		sp.Kind = obs.SpanKindRequest
		sp.User = int64(u)
		sp.Service = service
		sp.Begin()
	}
	// Two collection tiers: every collected span gets identity, start,
	// outcome, events and total duration — enough for the tail sampler
	// to rescue it and for slow/degraded spans to be diagnosable. Only
	// head-retained spans (the every-Nth detail tier) additionally pay
	// for per-stage lap timestamps and feed the stage latency
	// histograms, so the collect-and-discard majority costs two clock
	// reads (Begin and finish), not ten.
	detail := collect && head

	// The request is also a location update. Store and index carry their
	// own synchronization, so ingestion happens outside any session lock.
	// faults0 is sampled before the write so a WAL failure during this
	// very update already counts against forwarding it.
	var faults0 int64
	if s.faulty != nil {
		faults0 = s.faulty.StorageFaults()
	}
	s.store.Record(u, p)
	s.index.Insert(u, p)

	st := s.state(u)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.lastSeen = p
	s.Counters.Inc("requests")
	// Assign the pseudonym up front: an unlinking action during this
	// request must retire the pseudonym the SP has already seen (or
	// would see).
	s.pseud.Current(u)

	// An active on-demand mix zone suppresses service inside its window.
	if st.plan != nil {
		if st.plan.Suppresses(p.P, p.T) {
			s.Counters.Inc("suppressed")
			dec := Decision{Suppressed: true}
			s.finishRequest(collect, head, sp, tc, u, p, service, &dec,
				0, 0, 0, generalize.Unlimited, geo.STBox{}, "ondemand")
			return dec
		}
		if p.T > st.plan.Window.End {
			st.plan = nil
		}
	}

	id := wire.MsgID(s.nextID.Add(1))
	dec := Decision{HKAnonymity: true}

	// Effective policy for this request: the rule resolver, when
	// configured, overrides the user's registered policy.
	pol := st.policy
	if s.cfg.Policies != nil {
		if resolved := s.cfg.Policies.Resolve(service, p); resolved.K > 0 {
			pol = resolved
		}
	}

	// Step 1 of §6.1: monitor all incoming requests for LBQID exposure.
	// A request may match several patterns (the paper notes Algorithm 1
	// "can be easily extended to consider multiple LBQIDs"): every
	// matched pattern's session advances and the forwarded context is
	// the union of their boxes. The union contains each session's box,
	// so every session's witnesses remain LT-consistent with it.
	if detail {
		sp.Sync()
	}
	var matched []int
	for i, m := range st.matchers {
		out := m.Offer(lbqid.RequestID(id), p)
		if out.Matched {
			matched = append(matched, i)
			if dec.MatchedLBQID != "" {
				dec.MatchedLBQID += ","
			}
			dec.MatchedLBQID += st.patterns[i].Name
		}
		if out.Satisfied {
			dec.QIDExposed = true
		}
	}
	if detail {
		sp.Mark(obs.StageMatch)
	}

	// tm collects Algorithm 1's per-phase time across all matched
	// patterns' sessions; nil (no timing) unless this span is in the
	// detail tier. The arena is pooled: its laps are folded into the
	// span right after the Generalize loop, so recycling at return is
	// safe even though sess.Trace still points at it — every Generalize
	// call is preceded by a fresh sess.Trace assignment, so the stale
	// pointer is never dereferenced.
	var tm *generalize.Timings
	if detail {
		tm = timingsPool.Get().(*generalize.Timings)
		*tm = generalize.Timings{}
		defer timingsPool.Put(tm)
	}
	achievedK := 0 // witnesses+1, minimum over matched patterns
	tol := generalize.Unlimited
	zone := ""

	ctx := geo.STBoxAround(p) // exact context unless generalized
	if len(matched) > 0 {
		dec.Generalized = true
		s.Counters.Inc("generalized")
		tol = s.tolerance(service)
		achievedK = int(^uint(0) >> 1)
		for _, pi := range matched {
			sess, ok := st.sessions[pi]
			if !ok {
				sess = generalize.NewSession(s.gen, u, s.decayFor(pol))
				st.sessions[pi] = sess
			}
			sess.Trace = tm
			res, found := sess.Generalize(p, tol)
			if !found {
				dec.HKAnonymity = false
				achievedK = 1 // only the issuer's own history fits
				continue
			}
			if got := len(res.Users) + 1; got < achievedK {
				achievedK = got
			}
			ctx = ctx.Union(res.Box)
			dec.HKAnonymity = dec.HKAnonymity && res.HKAnonymity
		}
		// The union of several within-tolerance boxes can itself exceed
		// the tolerance.
		if !tol.Allows(ctx) {
			dec.HKAnonymity = false
			ctx = geo.STBox{
				Area: ctx.Area.ShrinkToward(p.P, tolMaxW(tol, ctx), tolMaxH(tol, ctx)),
				Time: ctx.Time.ShrinkToward(p.T, tolMaxD(tol, ctx)),
			}
		}
		if detail {
			sp.AddStage(obs.StageKNN, tm.KNNNanos)
			sp.AddStage(obs.StageBox, tm.BoxNanos)
			sp.AddStage(obs.StageTolerance, tm.ToleranceNanos)
		}
		s.Obs.AchievedK.Observe(float64(achievedK))
		if !dec.HKAnonymity {
			s.Counters.Inc("hk_failures")
			// Step 2 of §6.1: try to unlink future requests.
			if detail {
				sp.Sync()
			}
			zone = s.unlink(u, st, pol, p, &dec, tc)
			if detail {
				sp.Mark(obs.StageUnlink)
			}
		}
	}

	if st.atRisk {
		dec.AtRisk = true
		if pol.SuppressAtRisk {
			s.Counters.Inc("suppressed")
			dec.Suppressed = true
			s.finishRequest(collect, head, sp, tc, u, p, service, &dec,
				id, pol.K, achievedK, tol, ctx, zone)
			return dec
		}
	}

	// Fail closed on storage faults: if the durable store lost its write
	// path, or any cold read failed while this request's anonymity sets
	// were computed, the boxes above may describe a partial PHL — the
	// achieved k could be weaker than reported. Suppress and audit
	// rather than forward. (Concurrent requests may observe each other's
	// faults and over-suppress; that errs in the conservative
	// direction.)
	if s.faulty != nil {
		var reason string
		switch {
		case s.faulty.StorageFailed():
			reason = "storage_wal_failed"
		case s.faulty.StorageFaults() != faults0:
			reason = "storage_cold_read"
		}
		if reason != "" {
			dec.Suppressed = true
			dec.Degraded = true
			dec.DegradedReason = reason
			if collect {
				sp.Event("shed_" + reason)
			}
			s.Counters.Inc("suppressed")
			s.Counters.Inc("degraded")
			s.finishRequest(collect, head, sp, tc, u, p, service, &dec,
				id, pol.K, achievedK, tol, ctx, zone)
			return dec
		}
	}

	req := &wire.Request{
		ID:        id,
		Pseudonym: s.pseud.Current(u),
		Context:   ctx,
		Service:   service,
		Data:      data,
	}
	s.respMu.Lock()
	s.routes[id] = u
	s.respMu.Unlock()
	if detail {
		sp.Sync()
	}
	var deliverErr error
	switch {
	case s.traced != nil && tc.Valid():
		deliverErr = s.traced.TryDeliverTraced(req, tc)
	case s.fallible != nil:
		deliverErr = s.fallible.TryDeliver(req)
	default:
		s.out.Deliver(req)
	}
	if deliverErr != nil {
		// Fail closed: the delivery layer refused admission (queue
		// full, breaker open, shutdown), so the request is withheld —
		// degraded to suppression, never forwarded with weaker
		// guarantees. The route can never be answered; reclaim it.
		s.respMu.Lock()
		delete(s.routes, id)
		s.respMu.Unlock()
		dec.Suppressed = true
		dec.Degraded = true
		dec.DegradedReason = degradeReason(deliverErr)
		if collect {
			// The shed event names the admission failure; a
			// "shed_breaker_open" event also trips the tail sampler's
			// breaker keep rule. Events belong to the collect tier —
			// they are exactly what tail-rescued spans are kept for.
			sp.Event("shed_" + dec.DegradedReason)
		}
		if detail {
			sp.Mark(obs.StageForward)
		}
		s.Counters.Inc("suppressed")
		s.Counters.Inc("degraded")
		s.finishRequest(collect, head, sp, tc, u, p, service, &dec, id, pol.K, achievedK, tol, ctx, zone)
		return dec
	}
	if detail {
		sp.Mark(obs.StageForward)
	}
	dec.Forwarded = true
	dec.Request = req
	s.Counters.Inc("forwarded")
	if dec.QIDExposed {
		s.Counters.Inc("exposures")
	}
	if dec.Generalized {
		s.AreaM2.Add(ctx.Area.Area())
		s.IntervalS.Add(float64(ctx.Time.Duration()))
		s.Obs.GenAreaM2.Observe(ctx.Area.Area())
		s.Obs.GenIntervalS.Observe(float64(ctx.Time.Duration()))
	}
	s.finishRequest(collect, head, sp, tc, u, p, service, &dec, id, pol.K, achievedK, tol, ctx, zone)
	return dec
}

// finishRequest closes out one request's observability: it records the
// collected span (the tail sampler decides retention when the head
// sampler didn't), stamps the decision's trace identity, and, when the
// decision is privacy-relevant (the request matched an LBQID, was
// suppressed, triggered an unlinking, or found the user at risk),
// appends the audit record. Plain pass-through requests produce
// neither.
func (s *Server) finishRequest(collect, head bool, sp *obs.Span, tc obs.TraceContext,
	u phl.UserID, p geo.STPoint, service string, dec *Decision, id wire.MsgID,
	requestedK, achievedK int, tol generalize.Tolerance, ctx geo.STBox, zone string) {

	// Every return path funnels through here, so this is the SLO feed
	// point: one atomic load when the engine is off.
	if s.SLO.Enabled() {
		sd := slo.Decision{
			T:           p.T,
			RequestedK:  requestedK,
			AchievedK:   achievedK,
			Generalized: dec.Generalized,
			Forwarded:   dec.Forwarded,
			Suppressed:  dec.Suppressed,
			Degraded:    dec.Degraded,
			User:        int64(u),
		}
		if dec.Request != nil {
			sd.Pseudonym = string(dec.Request.Pseudonym)
			sd.Box = ctx
		}
		s.SLO.Observe(sd)
	}

	outcome := obs.OutcomeForwarded
	if dec.Suppressed {
		outcome = obs.OutcomeSuppressed
	}
	if dec.Degraded {
		outcome = obs.OutcomeDegraded
	}
	// The binary context is stored as-is; Decision.TraceID/Traceparent
	// render hex on demand, so callers that never look pay nothing.
	dec.Trace = tc
	if collect {
		sp.MsgID = int64(id)
		sp.Generalized = dec.Generalized
		sp.Unlinked = dec.Unlinked
		sp.AtRisk = dec.AtRisk
		sp.Outcome = outcome
		// RecordSpan recycles the pooled span; sp must not be touched
		// after this call.
		s.Obs.RecordSpan(sp, head)
	}
	if !dec.Generalized && !dec.Suppressed && !dec.Unlinked && !dec.AtRisk {
		return
	}
	a := s.Obs.AuditSink()
	if a == nil {
		return
	}
	e := obs.Event{
		T:           p.T,
		Kind:        obs.KindRequest,
		TraceID:     dec.TraceID(),
		User:        int64(u),
		MsgID:       int64(id),
		Service:     service,
		Matched:     dec.MatchedLBQID,
		RequestedK:  requestedK,
		AchievedK:   achievedK,
		HKAnonymity: dec.HKAnonymity,
		Outcome:     outcome,
		Reason:      dec.DegradedReason,
		Unlinked:    dec.Unlinked,
		AtRisk:      dec.AtRisk,
		Zone:        zone,
	}
	if dec.Forwarded && dec.Generalized {
		e.AreaM2 = ctx.Area.Area()
		e.IntervalS = ctx.Time.Duration()
		if tol.MaxWidth > 0 && tol.MaxHeight > 0 {
			e.AreaTolFrac = e.AreaM2 / (tol.MaxWidth * tol.MaxHeight)
		}
		if tol.MaxDuration > 0 {
			e.TimeTolFrac = float64(e.IntervalS) / float64(tol.MaxDuration)
		}
	}
	a.Log(e)
}

// degradeReason turns an admission error into its audit reason label.
// Errors carrying a Reason method (internal/resilience's admission
// errors do) name themselves; anything else is a generic refusal.
func degradeReason(err error) string {
	if r, ok := err.(interface{ Reason() string }); ok {
		return r.Reason()
	}
	return "delivery_refused"
}

// decayFor turns the policy into a concrete schedule.
func (s *Server) decayFor(p Policy) generalize.DecaySchedule {
	d := p.Decay
	if d.Target == 0 {
		d.Target = p.K
	}
	if d.Target < p.K {
		d.Target = p.K
	}
	return d
}

// unlink performs the §6.1 step-2 action: rotate the pseudonym — inside
// a static mix zone the user recently crossed, or inside a freshly
// planned on-demand zone — and reset all partially matched patterns. On
// failure the user is flagged at risk. It returns the audit label of
// the zone that enabled the rotation ("" when none did); tc is the
// triggering request's trace context for the rotation audit record.
// Callers hold st.mu.
func (s *Server) unlink(u phl.UserID, st *userState, pol Policy, p geo.STPoint, dec *Decision, tc obs.TraceContext) string {
	// A recent static-zone crossing makes rotation safe immediately.
	lookback := p.T - 4*3600
	if z, crossed := s.cfg.StaticZones.CrossedZone(s.store.History(u), lookback, p.T); crossed {
		zone := z.Name
		if zone == "" {
			zone = "static"
		}
		s.rotate(u, st, p.T, zone, tc)
		dec.Unlinked = true
		return zone
	}
	// Otherwise plan an on-demand mix zone around the user.
	plan, ok := s.cfg.OnDemand.Plan(s.index, s.store, u, p.P, p.T, pol.K-1, s.cfg.Metric)
	if ok {
		// The Unlinking action is parameterized by Θ (§6.3): the TS
		// replicates the attacker's tracking linker (§5.2) and sizes the
		// quiet window so that tracking confidence across the rotation
		// decays below the policy's threshold before service resumes.
		if minQuiet := quietForTheta(pol.Theta, s.cfg.Tracker); plan.Window.Duration() < minQuiet {
			plan.Window.End = plan.Window.Start + minQuiet
		}
		st.plan = &plan
		zone := "ondemand"
		if plan.Fallback {
			zone = "ondemand_fallback"
		}
		s.rotate(u, st, p.T, zone, tc)
		dec.Unlinked = true
		s.Counters.Inc("ondemand_zones")
		return zone
	}
	s.Counters.Inc("unlink_failures")
	if !st.atRisk {
		st.atRisk = true
		s.Counters.Inc("at_risk")
		if n := s.getNotifier(); n != nil {
			n.AtRisk(u, "generalization failed and no unlinking opportunity")
		}
	}
	return ""
}

// rotate changes the pseudonym and resets all exposure evidence tied to
// the old one; t and zone label the rotation's audit record, tc links
// it to the triggering request's trace. Callers hold st.mu.
func (s *Server) rotate(u phl.UserID, st *userState, t int64, zone string, tc obs.TraceContext) {
	old, fresh := s.pseud.Rotate(u)
	if n := s.getNotifier(); n != nil {
		n.Unlinked(u, old, fresh)
	}
	for _, m := range st.matchers {
		m.Reset()
	}
	st.sessions = make(map[int]*generalize.Session)
	st.atRisk = false
	s.Counters.Inc("unlinkings")
	// Rotations are rare, so rendering the trace id here (rather than on
	// the request hot path) costs nothing per request.
	var tid string
	if tc.Valid() {
		tid = tc.TraceIDString()
	}
	s.Obs.Audit(obs.Event{
		T:            t,
		Kind:         obs.KindRotation,
		TraceID:      tid,
		User:         int64(u),
		Zone:         zone,
		OldPseudonym: string(old),
		NewPseudonym: string(fresh),
	})
}

// Rotations reports how many times the user's pseudonym was rotated — a
// proxy for service discontinuity.
func (s *Server) Rotations(u phl.UserID) int { return s.pseud.Rotations(u) }

// AtRisk reports whether the user is currently flagged at risk of
// identification.
func (s *Server) AtRisk(u phl.UserID) bool {
	st := s.state(u)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.atRisk
}

// tolMaxW/H/D resolve a tolerance bound, leaving the dimension
// unchanged when unconstrained.
func tolMaxW(t generalize.Tolerance, b geo.STBox) float64 {
	if t.MaxWidth > 0 {
		return t.MaxWidth
	}
	return b.Area.Width()
}

func tolMaxH(t generalize.Tolerance, b geo.STBox) float64 {
	if t.MaxHeight > 0 {
		return t.MaxHeight
	}
	return b.Area.Height()
}

func tolMaxD(t generalize.Tolerance, b geo.STBox) int64 {
	if t.MaxDuration > 0 {
		return t.MaxDuration
	}
	return b.Time.Duration()
}

// quietForTheta returns the quiet-window length after which the
// replicated tracking attacker's confidence across a pseudonym change
// drops below theta: confidence decays as 2^(−gap/halfLife), so the gap
// must exceed halfLife·log2(1/theta). Theta 0 (never linkable) is
// capped at four hours; theta >= 1 needs no quiet time.
func quietForTheta(theta float64, tr link.Tracking) int64 {
	const cap = int64(4 * 3600)
	if theta >= 1 {
		return 0
	}
	halfLife := tr.HalfLife
	if halfLife == 0 {
		halfLife = link.DefaultHalfLife
	}
	if theta <= 0 {
		return cap
	}
	quiet := int64(math.Ceil(halfLife * math.Log2(1/theta)))
	if quiet > cap {
		return cap
	}
	return quiet
}

// WritePHLSnapshot persists the location database (see phl.WriteSnapshot).
// LBQID registrations, pseudonyms and in-flight matcher state are not
// part of the snapshot: patterns are re-registered at boot from their
// specifications, and exposure state deliberately starts fresh (a
// restart is an unlinking opportunity, not a liability).
func (s *Server) WritePHLSnapshot(w io.Writer) error {
	sw, ok := s.store.(interface{ WriteSnapshot(w io.Writer) error })
	if !ok {
		return fmt.Errorf("ts: store %T does not support full snapshots", s.store)
	}
	return sw.WriteSnapshot(w)
}

// RestorePHL loads a snapshot written by WritePHLSnapshot into the
// server, rebuilding the spatio-temporal index. It must be called
// before traffic starts; concurrent requests during a restore see a
// partially loaded database.
func (s *Server) RestorePHL(r io.Reader) error {
	loaded, err := phl.ReadSnapshot(r)
	if err != nil {
		return err
	}
	for _, u := range loaded.Users() {
		for _, p := range loaded.History(u).Points() {
			s.store.Record(u, p)
			s.index.Insert(u, p)
		}
	}
	return nil
}

// Inbox receives service responses on a user's device.
type Inbox interface {
	Receive(resp *wire.Response)
}

// InboxFunc adapts a function to the Inbox interface.
type InboxFunc func(resp *wire.Response)

// Receive implements Inbox.
func (f InboxFunc) Receive(resp *wire.Response) { f(resp) }

// Notifier observes the privacy-relevant events of §6.1/§7: the
// at-risk warning (the paper suggests an open/closed-lock style UI) and
// unlinking actions. Methods are called with the affected user's
// session lock held (possibly from many goroutines at once, for
// different users); implementations must be safe for concurrent use and
// must not call back into the server.
type Notifier interface {
	AtRisk(u phl.UserID, reason string)
	Unlinked(u phl.UserID, oldPseudonym, newPseudonym wire.Pseudonym)
}

// SetInbox registers the user's device callback for service responses.
func (s *Server) SetInbox(u phl.UserID, in Inbox) {
	s.respMu.Lock()
	defer s.respMu.Unlock()
	s.inboxes[u] = in
}

// SetNotifier registers the privacy-event observer.
func (s *Server) SetNotifier(n Notifier) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.notifier = n
}

// DeliverResponse routes a service provider's answer back to the
// issuing user's device (Fig. 1's return path). The msgid is the only
// addressing information the SP holds. Unknown or expired msgids are
// counted and dropped.
func (s *Server) DeliverResponse(resp *wire.Response) {
	s.respMu.Lock()
	u, ok := s.routes[resp.ID]
	if ok {
		delete(s.routes, resp.ID)
	}
	var inbox Inbox
	if ok {
		inbox = s.inboxes[u]
	}
	s.respMu.Unlock()
	s.Counters.Inc("responses")
	if !ok {
		s.Counters.Inc("responses_unroutable")
	}
	// Deliver outside the lock: inboxes are user code.
	if inbox != nil {
		inbox.Receive(resp)
	}
}
