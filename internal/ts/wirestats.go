package ts

import (
	"sync/atomic"

	"histanon/internal/metrics"
	"histanon/internal/obs"
)

// WireStats counts binary wire-protocol activity on the batch ingest
// channel (internal/wire via httpapi's /v1/batch). The per-type frame
// counters are plain atomics rather than a CounterVec: the ingest path
// bumps one per frame at millions of frames per second, and a vector
// lookup would rebuild its label key on every increment.
type WireStats struct {
	// Batches counts batch frames decoded successfully.
	Batches atomic.Int64
	// Bytes counts wire bytes ingested, well-formed or not.
	Bytes atomic.Int64
	// DecodeErrors counts batches (or frames within them) rejected as
	// malformed.
	DecodeErrors atomic.Int64
	// Locations / ServiceCalls / Requests count well-formed inner
	// frames by type; Other counts types the batch endpoint does not
	// accept.
	Locations    atomic.Int64
	ServiceCalls atomic.Int64
	Requests     atomic.Int64
	Other        atomic.Int64
	// BatchFrames observes the inner-frame count per decoded batch —
	// the batching efficiency the client-side Batcher policy achieves.
	BatchFrames *metrics.Histogram
}

// NewWireStats returns zeroed wire counters. The frames-per-batch
// histogram spans 1..4096 in powers of four.
func NewWireStats() *WireStats {
	return &WireStats{BatchFrames: metrics.NewHistogram(metrics.ExponentialBuckets(1, 4, 7))}
}

// register adds the always-present wire families to the registry.
func (w *WireStats) register(r *metrics.Registry) {
	for _, ft := range []struct {
		label string
		src   *atomic.Int64
	}{
		{"location", &w.Locations},
		{"service_call", &w.ServiceCalls},
		{"request", &w.Requests},
		{"other", &w.Other},
	} {
		src := ft.src
		r.RegisterCounterFunc(obs.MetricWireFrames,
			"Well-formed binary frames ingested via /v1/batch, by frame type.",
			metrics.Labels{"type": ft.label},
			func() int64 { return src.Load() })
	}
	r.RegisterCounterFunc(obs.MetricWireBatches,
		"Binary batch frames decoded successfully.",
		nil, w.Batches.Load)
	r.RegisterCounterFunc(obs.MetricWireBytes,
		"Binary wire bytes ingested via /v1/batch.",
		nil, w.Bytes.Load)
	r.RegisterCounterFunc(obs.MetricWireDecodeErrors,
		"Binary batches rejected as malformed.",
		nil, w.DecodeErrors.Load)
	r.RegisterHistogram(obs.MetricWireBatchFrames,
		"Inner frames per decoded batch.",
		nil, w.BatchFrames)
}
