// Durable state: periodic crash-safe snapshots. A trusted-server
// restart that loses the PHL loses the witness histories Def. 8
// quantifies over, silently weakening every subsequent generalization;
// the Snapshotter bounds that loss to one interval and makes the bound
// observable (/healthz reports the snapshot age).

package resilience

import (
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Snapshotter periodically persists state produced by a writer callback
// to a file, atomically: the snapshot is written to a temporary file in
// the same directory, fsynced, then renamed over the target, so a crash
// at any instant leaves either the old snapshot or the new one — never
// a torn file. Safe for concurrent use; Save may be called directly
// (e.g. from a SIGTERM handler) while the periodic loop runs.
type Snapshotter struct {
	path     string
	interval time.Duration
	write    func(io.Writer) error

	lastNano atomic.Int64 // unix nanos of the last successful Save
	errs     atomic.Int64

	mu      sync.Mutex // serializes concurrent Saves
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewSnapshotter returns a snapshotter writing write's output to path
// every interval (intervals below one second are raised to one second).
// It does not start the periodic loop; call Start.
func NewSnapshotter(path string, interval time.Duration, write func(io.Writer) error) *Snapshotter {
	if interval < time.Second {
		interval = time.Second
	}
	return &Snapshotter{
		path:     path,
		interval: interval,
		write:    write,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Save writes one snapshot now, atomically. On error the previous
// snapshot file is left untouched and the error counter is bumped.
func (s *Snapshotter) Save() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.save()
	if err != nil {
		s.errs.Add(1)
		return err
	}
	s.lastNano.Store(time.Now().UnixNano())
	return nil
}

// save performs the atomic temp-file + fsync + rename dance. Callers
// hold s.mu.
func (s *Snapshotter) save() error {
	tmp := s.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return err
	}
	// The rename is not durable until the parent directory's entry
	// table reaches disk: without this fsync a crash can resurface the
	// old snapshot — or, for a first snapshot, no file at all — even
	// though Save already returned success.
	return syncDir(filepath.Dir(s.path))
}

// syncDir fsyncs a directory; a package-level hook so tests can observe
// and fail it.
var syncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// Start launches the periodic snapshot loop. Call Stop to end it.
func (s *Snapshotter) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				// Errors are counted and visible via Errors()/healthz;
				// the loop keeps trying.
				_ = s.Save()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop ends the periodic loop (it does not write a final snapshot; a
// shutdown path that wants one calls Save itself).
func (s *Snapshotter) Stop() {
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if !started {
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// AgeSeconds returns the seconds since the last successful Save, or -1
// when none has succeeded yet.
func (s *Snapshotter) AgeSeconds() float64 {
	last := s.lastNano.Load()
	if last == 0 {
		return -1
	}
	return time.Since(time.Unix(0, last)).Seconds()
}

// Interval returns the configured snapshot period.
func (s *Snapshotter) Interval() time.Duration { return s.interval }

// Errors returns how many Saves have failed.
func (s *Snapshotter) Errors() int64 { return s.errs.Load() }
