package resilience

import (
	"testing"
	"time"
)

// TestBackoffDeterministicSchedule pins the exact jittered schedule for
// a fixed seed: the jitter is a pure function of (seed, attempt), so
// this table only changes if the generator changes — which would break
// fault-schedule replay everywhere.
func TestBackoffDeterministicSchedule(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Factor: 2, Jitter: 0.5}
	const seed = 42
	var got [6]time.Duration
	for i := range got {
		got[i] = b.Delay(i+1, seed)
	}
	for i := range got {
		again := b.Delay(i+1, seed)
		if again != got[i] {
			t.Fatalf("Delay(%d, %d) not stable: %v then %v", i+1, seed, got[i], again)
		}
	}
	// Structural properties of the schedule.
	nominal := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second,
	}
	for i, d := range got {
		lo := nominal[i] / 2
		if d < lo || d > nominal[i] {
			t.Fatalf("Delay(%d) = %v outside jitter band [%v,%v]", i+1, d, lo, nominal[i])
		}
	}
	// Different seeds must decorrelate: at least one attempt differs.
	same := true
	for i := 0; i < 6; i++ {
		if b.Delay(i+1, seed) != b.Delay(i+1, seed+1) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules: jitter is not seeded")
	}
}

func TestBackoffNoJitterIsNominal(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i+1, 7); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffDefaultsAndFloors(t *testing.T) {
	var b Backoff // zero value: 10ms base, 2s max, factor 2, jitter 0.5
	if d := b.Delay(1, 1); d < 5*time.Millisecond || d > 10*time.Millisecond {
		t.Fatalf("default Delay(1) = %v, want within [5ms,10ms]", d)
	}
	if d := b.Delay(0, 1); d != b.Delay(1, 1) {
		t.Fatalf("attempt 0 must clamp to 1: %v vs %v", d, b.Delay(1, 1))
	}
	if d := b.Delay(60, 1); d > 2*time.Second {
		t.Fatalf("Delay(60) = %v exceeds the cap", d)
	}
	// A pathological tiny base with full jitter must never return a
	// zero (busy-loop) sleep.
	tiny := Backoff{Base: 1, Jitter: 1}
	for a := 1; a < 10; a++ {
		for s := uint64(0); s < 50; s++ {
			if tiny.Delay(a, s) < 1 {
				t.Fatalf("Delay(%d,%d) below 1ns", a, s)
			}
		}
	}
}

// TestJitterFracUniformish sanity-checks the mixer: mean near 0.5 over
// a modest sample, all values in [0,1).
func TestJitterFracUniformish(t *testing.T) {
	var sum float64
	const n = 4096
	for i := uint64(0); i < n; i++ {
		f := jitterFrac(i, 1)
		if f < 0 || f >= 1 {
			t.Fatalf("jitterFrac out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("jitterFrac mean = %v, want ~0.5", mean)
	}
}
