package resilience

import (
	"sync"
	"testing"
	"time"

	"histanon/internal/obs"
)

// spanSink collects the delivery spans the outbox records.
type spanSink struct {
	mu    sync.Mutex
	spans []obs.Span
	heads []bool
}

func (s *spanSink) RecordSpan(sp *obs.Span, head bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Delivery spans arrive with binary-only identity; the real recorder
	// (the tracer) renders the hex ids at keep time, so a test sink does
	// it here.
	sp.MaterializeIDs()
	s.spans = append(s.spans, *sp)
	s.heads = append(s.heads, head)
	return true
}

func (s *spanSink) all() []obs.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.Span(nil), s.spans...)
}

func TestDeliverySpanSuccess(t *testing.T) {
	sink := &countingSink{}
	rec := &spanSink{}
	o := NewOutbox(sink, Options{QueueSize: 4, Workers: 1, Clock: &vclock{}})
	o.SetSpanSink(rec)

	tc := obs.MintTraceContext(true)
	if err := o.TryDeliverTraced(req(7), tc); err != nil {
		t.Fatal(err)
	}
	o.Close()

	spans := rec.all()
	if len(spans) != 1 {
		t.Fatalf("recorded %d delivery spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Kind != obs.SpanKindDelivery || sp.Outcome != obs.OutcomeDelivered {
		t.Fatalf("span kind=%q outcome=%q", sp.Kind, sp.Outcome)
	}
	if sp.TraceID != tc.TraceIDString() {
		t.Fatalf("span trace id %q, want %q", sp.TraceID, tc.TraceIDString())
	}
	if sp.ParentSpanID != tc.SpanIDString() {
		t.Fatalf("span parent %q, want the request span %q", sp.ParentSpanID, tc.SpanIDString())
	}
	if sp.SpanID == tc.SpanIDString() || sp.SpanID == "" {
		t.Fatalf("delivery span must have its own id, got %q", sp.SpanID)
	}
	if len(sp.AttemptNs) != 1 {
		t.Fatalf("attempts = %v, want one entry", sp.AttemptNs)
	}
	if sp.QueueNs < 0 || sp.TotalNs < sp.QueueNs {
		t.Fatalf("queue=%d total=%d", sp.QueueNs, sp.TotalNs)
	}
	if sp.MsgID != 7 || sp.Service != "svc" {
		t.Fatalf("span identity: %+v", sp)
	}
	if !rec.heads[0] {
		t.Fatal("a sampled parent must mark the delivery span head-retained")
	}
}

func TestDeliverySpanRetriesThenDrop(t *testing.T) {
	sink := &countingSink{failN: 1 << 30}
	rec := &spanSink{}
	clock := &vclock{}
	o := NewOutbox(sink, Options{
		QueueSize: 4, Workers: 1, MaxAttempts: 3, Clock: clock,
		Deadline: time.Hour,
		Breaker:  BreakerConfig{FailureThreshold: 100},
	})
	o.SetSpanSink(rec)

	tc := obs.MintTraceContext(false)
	if err := o.TryDeliverTraced(req(9), tc); err != nil {
		t.Fatal(err)
	}
	o.Close()

	spans := rec.all()
	if len(spans) != 1 {
		t.Fatalf("recorded %d delivery spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Outcome != obs.OutcomeDropped || sp.Reason != "retries_exhausted" {
		t.Fatalf("outcome=%q reason=%q", sp.Outcome, sp.Reason)
	}
	if len(sp.AttemptNs) != 3 {
		t.Fatalf("attempts = %v, want 3 entries", sp.AttemptNs)
	}
	retries := 0
	for _, e := range sp.Events {
		if e.Name == "retry" {
			retries++
			if e.AtNs < 0 {
				t.Fatalf("retry event offset %d", e.AtNs)
			}
		}
	}
	if retries != 2 {
		t.Fatalf("retry events = %d, want 2", retries)
	}
	if rec.heads[0] {
		t.Fatal("an unsampled parent must leave the keep decision to the tail")
	}
}

func TestDeliverySpanBreakerEvent(t *testing.T) {
	sink := &countingSink{failN: 1 << 30}
	rec := &spanSink{}
	o := NewOutbox(sink, Options{
		QueueSize: 16, Workers: 1, MaxAttempts: 1, Clock: &vclock{},
		Deadline: time.Hour,
		Breaker:  BreakerConfig{FailureThreshold: 1, OpenFor: time.Hour},
	})
	o.SetSpanSink(rec)

	// First request trips the breaker (one failed attempt at threshold
	// 1); the second is admitted before the failure lands but meets an
	// open breaker mid-flight. Enqueue both up front on one worker so
	// ordering is deterministic.
	if err := o.TryDeliverTraced(req(1), obs.MintTraceContext(true)); err != nil {
		t.Fatal(err)
	}
	if err := o.TryDeliverTraced(req(2), obs.MintTraceContext(true)); err != nil {
		t.Fatal(err)
	}
	o.Close()

	spans := rec.all()
	if len(spans) != 2 {
		t.Fatalf("recorded %d delivery spans, want 2", len(spans))
	}
	second := spans[1]
	if second.Outcome != obs.OutcomeDropped || second.Reason != "breaker_open" {
		t.Fatalf("second span outcome=%q reason=%q", second.Outcome, second.Reason)
	}
	found := false
	for _, e := range second.Events {
		if e.Name == "breaker_open" {
			found = true
		}
	}
	if !found {
		t.Fatalf("second span lacks the breaker_open event: %+v", second.Events)
	}
	if len(second.AttemptNs) != 0 {
		t.Fatalf("breaker-blocked request made %d attempts", len(second.AttemptNs))
	}
}

func TestUntracedRequestsRecordNoSpans(t *testing.T) {
	sink := &countingSink{}
	rec := &spanSink{}
	o := NewOutbox(sink, Options{QueueSize: 4, Workers: 1, Clock: &vclock{}})
	o.SetSpanSink(rec)
	if err := o.TryDeliver(req(1)); err != nil {
		t.Fatal(err)
	}
	if err := o.TryDeliverTraced(req(2), obs.TraceContext{}); err != nil {
		t.Fatal(err)
	}
	o.Close()
	if got := len(rec.all()); got != 0 {
		t.Fatalf("untraced requests recorded %d spans", got)
	}
}

func TestDroppedAuditCarriesTraceID(t *testing.T) {
	var mu sync.Mutex
	var audited []obs.Event
	sink := &countingSink{failN: 1 << 30}
	o := NewOutbox(sink, Options{
		QueueSize: 4, Workers: 1, MaxAttempts: 1, Clock: &vclock{},
		Deadline: time.Hour,
		Breaker:  BreakerConfig{FailureThreshold: 100},
		Audit: func(e obs.Event) {
			mu.Lock()
			audited = append(audited, e)
			mu.Unlock()
		},
	})
	tc := obs.MintTraceContext(true)
	if err := o.TryDeliverTraced(req(3), tc); err != nil {
		t.Fatal(err)
	}
	o.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(audited) != 1 {
		t.Fatalf("audited %d events", len(audited))
	}
	if audited[0].TraceID != tc.TraceIDString() {
		t.Fatalf("audit trace_id = %q, want %q", audited[0].TraceID, tc.TraceIDString())
	}
}
