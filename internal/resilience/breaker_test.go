package resilience

import (
	"sync/atomic"
	"testing"
	"time"
)

// tick is a manually advanced clock for breaker tests.
type tick struct{ nanos atomic.Int64 }

func (c *tick) now() time.Time          { return time.Unix(0, c.nanos.Load()) }
func (c *tick) advance(d time.Duration) { c.nanos.Add(int64(d)) }

func TestBreakerOpensAfterThreshold(t *testing.T) {
	c := &tick{}
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: 5 * time.Second}, c.now)
	if b.State() != BreakerClosed || !b.Allow() || b.Rejects() {
		t.Fatal("fresh breaker must be closed and admitting")
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("breaker tripped below the threshold")
	}
	// A success resets the consecutive-failure run.
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset the failure run")
	}
	b.Failure()
	if b.State() != BreakerOpen || !b.Rejects() || b.Allow() {
		t.Fatal("threshold reached: breaker must be open and rejecting")
	}
}

func TestBreakerHalfOpenProbeAndClose(t *testing.T) {
	c := &tick{}
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: 5 * time.Second, HalfOpenProbes: 2}, c.now)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker must open on the first failure")
	}
	c.advance(4 * time.Second)
	if b.State() != BreakerOpen {
		t.Fatal("breaker half-opened before OpenFor elapsed")
	}
	c.advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatal("breaker must half-open after OpenFor")
	}
	if b.Rejects() {
		t.Fatal("half-open must not shed synchronously (probes must run)")
	}
	// Only HalfOpenProbes probes are admitted per round.
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open must admit the configured probes")
	}
	if b.Allow() {
		t.Fatal("half-open admitted more than HalfOpenProbes")
	}
	// Both probes succeed: the breaker closes.
	b.Success()
	if b.State() != BreakerHalfOpen {
		t.Fatal("breaker closed after a partial probe round")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("breaker must close after HalfOpenProbes successes")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	c := &tick{}
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Second}, c.now)
	b.Failure()
	c.advance(2 * time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatal("expected half-open")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("a half-open probe failure must re-open the breaker")
	}
	// The open window restarts from the re-open instant.
	c.advance(900 * time.Millisecond)
	if b.State() != BreakerOpen {
		t.Fatal("re-opened breaker expired early")
	}
	c.advance(200 * time.Millisecond)
	if b.State() != BreakerHalfOpen {
		t.Fatal("re-opened breaker never half-opened again")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half_open",
		BreakerState(9): "unknown",
	} {
		if got := state.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", state, got, want)
		}
	}
}
