package resilience

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestSnapshotterAtomicSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	payload := "v1"
	var mu sync.Mutex
	s := NewSnapshotter(path, time.Hour, func(w io.Writer) error {
		mu.Lock()
		defer mu.Unlock()
		_, err := io.WriteString(w, payload)
		return err
	})
	if age := s.AgeSeconds(); age != -1 {
		t.Fatalf("fresh snapshotter age = %v, want -1", age)
	}
	if err := s.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("snapshot content = %q", b)
	}
	if age := s.AgeSeconds(); age < 0 || age > 60 {
		t.Fatalf("age after save = %v", age)
	}
	// A failing write must leave the previous snapshot intact.
	mu.Lock()
	payload = ""
	mu.Unlock()
	fail := errors.New("write failed")
	s.write = func(io.Writer) error { return fail }
	if err := s.Save(); !errors.Is(err, fail) {
		t.Fatalf("Save error = %v", err)
	}
	if s.Errors() != 1 {
		t.Fatalf("Errors = %d", s.Errors())
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("failed save clobbered the snapshot: %q", b)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after a failed save")
	}
}

func TestSnapshotterPeriodicLoop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	var saves sync.WaitGroup
	saves.Add(2)
	var once sync.Once
	var second sync.Once
	n := 0
	s := NewSnapshotter(path, time.Second, func(w io.Writer) error {
		n++
		if n == 1 {
			once.Do(saves.Done)
		}
		if n == 2 {
			second.Do(saves.Done)
		}
		_, err := io.WriteString(w, "x")
		return err
	})
	s.Start()
	s.Start() // idempotent
	done := make(chan struct{})
	go func() { saves.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("periodic loop never saved twice")
	}
	s.Stop()
	s.Stop() // idempotent
	if s.AgeSeconds() < 0 {
		t.Fatal("age unset after periodic saves")
	}
}

// Save must fsync the parent directory after the rename: on a real
// filesystem a crash can otherwise undo the rename and resurface the
// old snapshot after Save already reported success.
func TestSnapshotterSaveSyncsParentDir(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	s := NewSnapshotter(path, time.Hour, func(w io.Writer) error {
		_, err := io.WriteString(w, "v1")
		return err
	})

	orig := syncDir
	defer func() { syncDir = orig }()
	var synced []string
	syncDir = func(d string) error {
		synced = append(synced, d)
		return orig(d)
	}
	if err := s.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("parent dir fsyncs = %v, want exactly [%s] after the rename", synced, dir)
	}

	// A failing directory fsync means the rename may not survive a
	// crash: Save must report it, not swallow it.
	fail := errors.New("dir fsync failed")
	syncDir = func(string) error { return fail }
	if err := s.Save(); !errors.Is(err, fail) {
		t.Fatalf("Save with failing dir fsync = %v, want %v", err, fail)
	}
	if s.Errors() != 1 {
		t.Fatalf("Errors = %d, want 1", s.Errors())
	}
}

func TestSnapshotterIntervalFloor(t *testing.T) {
	s := NewSnapshotter("x", 10*time.Millisecond, func(io.Writer) error { return nil })
	if s.Interval() != time.Second {
		t.Fatalf("Interval = %v, want the 1s floor", s.Interval())
	}
}
