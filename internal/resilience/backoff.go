// Exponential backoff with deterministic jitter. Retry storms against a
// struggling service provider are the classic anonymizer failure mode
// (synchronized retries arrive as a thundering herd exactly when the SP
// is least able to serve them); jitter decorrelates the retries. The
// jitter here is a pure function of (seed, attempt), not of a shared
// random source, so a fault schedule replays bit-for-bit in tests.

package resilience

import "time"

// Backoff computes the delay before retry number attempt (1-based: the
// delay after the first failed attempt is Delay(1, seed)). The zero
// value gets safe defaults.
type Backoff struct {
	// Base is the nominal delay after the first failure (default 10ms).
	Base time.Duration
	// Max caps the nominal delay (default 2s).
	Max time.Duration
	// Factor multiplies the nominal delay per attempt (default 2).
	Factor float64
	// Jitter is the fraction of the nominal delay that is randomized
	// downward: the delay is uniform in [d·(1−Jitter), d]. Zero means
	// the default 0.5; negative disables jitter entirely.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 10 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Factor <= 1 {
		b.Factor = 2
	}
	if b.Jitter == 0 {
		b.Jitter = 0.5
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	if b.Jitter > 1 {
		b.Jitter = 1
	}
	return b
}

// Delay returns the backoff before the attempt-th retry, jittered
// deterministically by seed. attempt values below 1 are treated as 1.
func (b Backoff) Delay(attempt int, seed uint64) time.Duration {
	b = b.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		frac := jitterFrac(seed, uint64(attempt))
		d *= 1 - b.Jitter*frac
	}
	if d < 1 {
		d = 1 // never a zero sleep: a zero delay is a tight retry loop
	}
	return time.Duration(d)
}

// jitterFrac hashes (seed, attempt) into [0,1) with splitmix64 — a
// stateless generator, so concurrent retries never contend on a shared
// rand source and a schedule is reproducible from the seed alone.
func jitterFrac(seed, attempt uint64) float64 {
	x := seed + attempt*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
