package resilience

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"histanon/internal/obs"
	"histanon/internal/wire"
)

// vclock advances virtual time instantly on Sleep, so retry schedules
// replay in microseconds.
type vclock struct{ nanos atomic.Int64 }

func (c *vclock) Now() time.Time { return time.Unix(0, c.nanos.Load()) }
func (c *vclock) Sleep(d time.Duration) {
	if d > 0 {
		c.nanos.Add(int64(d))
	}
}

// countingSink fails the first failN deliveries, then succeeds.
type countingSink struct {
	mu        sync.Mutex
	failN     int
	calls     int
	delivered []*wire.Request
}

func (s *countingSink) Deliver(req *wire.Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.calls <= s.failN {
		return errors.New("sink: injected failure")
	}
	s.delivered = append(s.delivered, req)
	return nil
}

func (s *countingSink) deliveredCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.delivered)
}

func req(id int64) *wire.Request {
	return &wire.Request{ID: wire.MsgID(id), Service: "svc", Pseudonym: "p"}
}

func TestOutboxDeliversAndCounts(t *testing.T) {
	sink := &countingSink{}
	o := NewOutbox(sink, Options{QueueSize: 8, Workers: 2, Clock: &vclock{}})
	for i := 0; i < 5; i++ {
		if err := o.TryDeliver(req(int64(i))); err != nil {
			t.Fatalf("TryDeliver(%d): %v", i, err)
		}
	}
	o.Close()
	if got := sink.deliveredCount(); got != 5 {
		t.Fatalf("delivered %d, want 5", got)
	}
	if o.Events.Get(EventEnqueued) != 5 || o.Events.Get(EventDelivered) != 5 {
		t.Fatalf("events: enqueued=%d delivered=%d",
			o.Events.Get(EventEnqueued), o.Events.Get(EventDelivered))
	}
	if o.Dropped() != 0 || o.QueueDepth() != 0 {
		t.Fatalf("dropped=%d depth=%d", o.Dropped(), o.QueueDepth())
	}
}

func TestOutboxRetriesThenSucceeds(t *testing.T) {
	sink := &countingSink{failN: 2}
	o := NewOutbox(sink, Options{
		QueueSize: 4, Workers: 1, MaxAttempts: 4, Clock: &vclock{},
		Deadline: time.Minute,
		Breaker:  BreakerConfig{FailureThreshold: 10},
	})
	if err := o.TryDeliver(req(1)); err != nil {
		t.Fatal(err)
	}
	o.Close()
	if sink.deliveredCount() != 1 {
		t.Fatalf("delivered %d, want 1 after retries", sink.deliveredCount())
	}
	if o.Events.Get(EventRetries) != 2 {
		t.Fatalf("retries = %d, want 2", o.Events.Get(EventRetries))
	}
}

func TestOutboxRetriesExhaustedAudited(t *testing.T) {
	var mu sync.Mutex
	var audited []obs.Event
	sink := &countingSink{failN: 1 << 30}
	o := NewOutbox(sink, Options{
		QueueSize: 4, Workers: 1, MaxAttempts: 3, Clock: &vclock{},
		Deadline: time.Hour,
		Breaker:  BreakerConfig{FailureThreshold: 100},
		Audit: func(e obs.Event) {
			mu.Lock()
			audited = append(audited, e)
			mu.Unlock()
		},
	})
	if err := o.TryDeliver(req(9)); err != nil {
		t.Fatal(err)
	}
	o.Close()
	if o.Events.Get(EventDroppedSPError) != 1 || o.Dropped() != 1 {
		t.Fatalf("drop events: sp_error=%d dropped=%d",
			o.Events.Get(EventDroppedSPError), o.Dropped())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(audited) != 1 {
		t.Fatalf("audited %d events, want 1", len(audited))
	}
	e := audited[0]
	if e.Kind != obs.KindDelivery || e.Outcome != obs.OutcomeDropped ||
		e.Reason != "retries_exhausted" || e.MsgID != 9 || e.Attempts != 3 {
		t.Fatalf("audit event: %+v", e)
	}
}

func TestOutboxQueueFullSheds(t *testing.T) {
	block := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	var once sync.Once
	sink := DeliveryFunc(func(*wire.Request) error {
		once.Do(started.Done)
		<-block
		return nil
	})
	o := NewOutbox(sink, Options{QueueSize: 2, Workers: 1, Clock: &vclock{}})
	// First request occupies the worker; two more fill the queue.
	if err := o.TryDeliver(req(1)); err != nil {
		t.Fatal(err)
	}
	started.Wait() // the worker holds request 1, the queue is empty
	if err := o.TryDeliver(req(2)); err != nil {
		t.Fatal(err)
	}
	if err := o.TryDeliver(req(3)); err != nil {
		t.Fatal(err)
	}
	err := o.TryDeliver(req(4))
	if err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	var r interface{ Reason() string }
	if !errors.As(err, &r) || r.Reason() != "queue_full" {
		t.Fatalf("queue-full error lacks the audit reason: %v", err)
	}
	if o.Events.Get(EventShedQueueFull) != 1 {
		t.Fatal("shed event not counted")
	}
	close(block)
	o.Close()
}

func TestOutboxBreakerOpenShedsSynchronously(t *testing.T) {
	clock := &vclock{}
	sink := &countingSink{failN: 1 << 30}
	o := NewOutbox(sink, Options{
		QueueSize: 16, Workers: 1, MaxAttempts: 1, Clock: clock,
		Deadline: time.Hour,
		Breaker:  BreakerConfig{FailureThreshold: 2, OpenFor: time.Hour},
	})
	o.TryDeliver(req(1))
	o.TryDeliver(req(2))
	// Wait for both to fail and trip the breaker.
	deadline := time.Now().Add(5 * time.Second)
	for o.Dropped() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := o.TryDeliver(req(3)); err != ErrBreakerOpen {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if o.Events.Get(EventShedBreakerOpen) != 1 {
		t.Fatal("breaker shed not counted")
	}
	if states := o.BreakerStates(); states["svc"] != "open" {
		t.Fatalf("BreakerStates = %v", states)
	}
	if o.OpenBreakers() != 1 {
		t.Fatalf("OpenBreakers = %d", o.OpenBreakers())
	}
	o.Close()
}

func TestOutboxClosedRefuses(t *testing.T) {
	o := NewOutbox(&countingSink{}, Options{QueueSize: 2, Workers: 1, Clock: &vclock{}})
	o.Close()
	o.Close() // idempotent
	if err := o.TryDeliver(req(1)); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestOutboxConcurrentStress hammers TryDeliver from many goroutines
// against a flaky sink while the queue is tiny, then checks
// conservation: every admitted request is delivered or dropped, never
// lost. Run under -race this also proves the admission/Close/worker
// paths share no unsynchronized state.
func TestOutboxConcurrentStress(t *testing.T) {
	var calls atomic.Int64
	sink := DeliveryFunc(func(*wire.Request) error {
		if calls.Add(1)%7 == 0 {
			return errors.New("flaky")
		}
		return nil
	})
	clock := &vclock{}
	o := NewOutbox(sink, Options{
		QueueSize: 8, Workers: 4, MaxAttempts: 3, Clock: clock,
		Deadline: time.Hour,
		Breaker:  BreakerConfig{FailureThreshold: 1 << 30},
	})
	const (
		producers = 8
		perProd   = 200
	)
	var admitted, refused atomic.Int64
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		p := p
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				if err := o.TryDeliver(req(int64(p*perProd + i))); err == nil {
					admitted.Add(1)
				} else {
					refused.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	o.Close()
	enq := o.Events.Get(EventEnqueued)
	if enq != admitted.Load() {
		t.Fatalf("enqueued %d, admitted %d", enq, admitted.Load())
	}
	if got := o.Events.Get(EventDelivered) + o.Dropped(); got != enq {
		t.Fatalf("conservation violated: enqueued=%d delivered+dropped=%d", enq, got)
	}
	if refused.Load()+admitted.Load() != producers*perProd {
		t.Fatalf("requests unaccounted for: admitted=%d refused=%d",
			admitted.Load(), refused.Load())
	}
	if o.QueueDepth() != 0 {
		t.Fatalf("queue not drained: depth=%d", o.QueueDepth())
	}
}

func TestOutboxRegisterMetricsDefaults(t *testing.T) {
	o := NewOutbox(&countingSink{}, Options{QueueSize: 3, Workers: 1, Clock: &vclock{}})
	defer o.Close()
	if o.QueueCapacity() != 3 {
		t.Fatalf("QueueCapacity = %d", o.QueueCapacity())
	}
}
