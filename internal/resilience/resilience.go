// Package resilience makes the trusted server fail closed under the
// faults a deployed anonymizer actually meets: service-provider stalls,
// service-provider outages, overload, and its own restarts. The paper's
// privacy guarantee (§3, Fig. 1) depends on the TS sitting between
// users and service providers; this package guarantees that when the SP
// side misbehaves, the system degrades toward *less* exposure — a
// request is suppressed rather than forwarded less generalized, and the
// anonymity state (the PHL the Def. 8 witnesses are drawn from)
// survives a crash.
//
// Components:
//
//   - Outbox (this file) — a bounded asynchronous delivery queue in
//     front of the service provider, with per-request deadlines,
//     exponential backoff + deterministic jitter retries (backoff.go)
//     and a per-service circuit breaker (breaker.go). Admission is
//     fail-closed: when the queue is full or the breaker is open,
//     TryDeliver refuses synchronously and the trusted server records
//     the request as suppressed (degraded), never forwarded.
//   - Snapshotter (snapshot.go) — periodic crash-safe PHL snapshots
//     (atomic temp-file + rename) with a staleness probe for /healthz.
//
// Every fault outcome is observable: the Outbox feeds the
// histanon_resilience_* metric families and writes KindDelivery audit
// events for asynchronous drops, so a suppressed or dropped request is
// never silent. OBSERVABILITY.md documents the full surface, and
// internal/chaos injects faults to prove the privacy invariants hold
// under them.
package resilience

import (
	"sync"
	"sync/atomic"
	"time"

	"histanon/internal/metrics"
	"histanon/internal/obs"
	"histanon/internal/wire"
)

// Delivery is a fallible service-provider channel: the transport the
// Outbox retries over. Implementations must be safe for concurrent use.
type Delivery interface {
	Deliver(req *wire.Request) error
}

// DeliveryFunc adapts a function to the Delivery interface.
type DeliveryFunc func(req *wire.Request) error

// Deliver implements Delivery.
func (f DeliveryFunc) Deliver(req *wire.Request) error { return f(req) }

// Clock abstracts time for deterministic fault-injection tests
// (internal/chaos provides a virtual implementation with skew hooks).
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// AdmissionError is a synchronous TryDeliver refusal. Why is the audit
// reason label the trusted server records on the degraded decision
// (Decision.DegradedReason / the audit `reason` field).
type AdmissionError struct {
	Msg string
	Why string
}

// Error implements error.
func (e *AdmissionError) Error() string { return e.Msg }

// Reason returns the audit reason label.
func (e *AdmissionError) Reason() string { return e.Why }

// Admission errors returned by TryDeliver. The trusted server maps each
// to a suppressed (degraded) decision — the fail-closed outcome.
var (
	// ErrQueueFull reports that the outbox queue is saturated.
	ErrQueueFull = &AdmissionError{"resilience: outbox queue full", "queue_full"}
	// ErrBreakerOpen reports that the service's circuit breaker is open.
	ErrBreakerOpen = &AdmissionError{"resilience: circuit breaker open", "breaker_open"}
	// ErrClosed reports that the outbox has been shut down.
	ErrClosed = &AdmissionError{"resilience: outbox closed", "outbox_closed"}
)

// Outbox event counter values (the "event" label of
// histanon_resilience_events_total). OBSERVABILITY.md documents each.
const (
	EventEnqueued           = "enqueued"
	EventDelivered          = "delivered"
	EventRetries            = "retries"
	EventShedQueueFull      = "shed_queue_full"
	EventShedBreakerOpen    = "shed_breaker_open"
	EventDropped            = "dropped"
	EventDroppedDeadline    = "dropped_deadline"
	EventDroppedBreakerOpen = "dropped_breaker_open"
	EventDroppedSPError     = "dropped_sp_error"
	EventDroppedClosed      = "dropped_closed"
)

// Options configures an Outbox. The zero value gets safe defaults.
type Options struct {
	// QueueSize bounds the number of requests awaiting delivery
	// (default 1024). A full queue sheds new requests synchronously.
	QueueSize int
	// Workers is the number of concurrent delivery goroutines
	// (default 4).
	Workers int
	// Deadline is the end-to-end budget of one request, from enqueue to
	// last retry (default 5s). Expired requests are dropped, not
	// delivered late.
	Deadline time.Duration
	// MaxAttempts bounds delivery attempts per request (default 4).
	MaxAttempts int
	// Backoff schedules the delay before each retry.
	Backoff Backoff
	// Breaker configures the per-service circuit breakers.
	Breaker BreakerConfig
	// Seed makes the retry jitter deterministic across runs (default 1).
	Seed int64
	// Clock substitutes time for tests; nil means the real clock.
	Clock Clock
	// Audit, when non-nil, receives one obs.Event per asynchronous
	// delivery failure (KindDelivery), so dropped requests appear in the
	// privacy audit trail. It must be safe for concurrent use.
	Audit func(e obs.Event)
}

func (o Options) withDefaults() Options {
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Deadline <= 0 {
		o.Deadline = 5 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clock == nil {
		o.Clock = realClock{}
	}
	return o
}

// pending is one queued request with its admission timestamp and, when
// the request was traced, the request span's trace context (the parent
// of the delivery span the worker will record).
type pending struct {
	req      *wire.Request
	deadline time.Time
	tc       obs.TraceContext
	enq      time.Time
}

// Outbox is the bounded asynchronous delivery pipeline between the
// trusted server and a service provider. It implements ts.Outbox (the
// infallible Deliver) and the fail-closed TryDeliver the trusted server
// prefers when present. Safe for concurrent use.
type Outbox struct {
	opts   Options
	target Delivery
	queue  chan pending

	// Events counts every pipeline outcome by event name; exposed as
	// histanon_resilience_events_total.
	Events *metrics.CounterVec

	mu       sync.Mutex
	breakers map[string]*Breaker

	// closeMu serializes admission against Close: the queue channel may
	// only be closed while no TryDeliver holds the read side.
	closeMu sync.RWMutex
	closed  bool

	depth atomic.Int64 // current queue depth
	wg    sync.WaitGroup

	// sink receives the delivery spans of traced requests (SetSpanSink);
	// nil means delivery tracing is off.
	sink atomic.Pointer[SpanRecorder]
}

// SpanRecorder receives completed delivery spans — the contract
// obs.Observer satisfies. head reports an upstream head-sampling
// decision (the request span's sampled flag); the recorder's tail
// sampler may retain non-head spans it finds interesting.
type SpanRecorder interface {
	RecordSpan(sp *obs.Span, head bool) bool
}

// SetSpanSink installs (or, with nil, removes) the recorder that
// receives one delivery span per traced request the queue processes.
// Safe to call while deliveries are in flight.
func (o *Outbox) SetSpanSink(r SpanRecorder) {
	if r == nil {
		o.sink.Store(nil)
		return
	}
	o.sink.Store(&r)
}

// NewOutbox starts an outbox delivering to target. Call Close to drain
// and stop the workers.
func NewOutbox(target Delivery, opts Options) *Outbox {
	opts = opts.withDefaults()
	o := &Outbox{
		opts:     opts,
		target:   target,
		queue:    make(chan pending, opts.QueueSize),
		Events:   metrics.NewCounterVec("event"),
		breakers: make(map[string]*Breaker),
	}
	o.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go o.worker()
	}
	return o
}

// breaker returns (creating if needed) the service's circuit breaker.
func (o *Outbox) breaker(service string) *Breaker {
	o.mu.Lock()
	defer o.mu.Unlock()
	b := o.breakers[service]
	if b == nil {
		b = NewBreaker(o.opts.Breaker, o.opts.Clock.Now)
		o.breakers[service] = b
	}
	return b
}

// TryDeliver admits a request into the delivery queue, or refuses
// synchronously — the fail-closed path. It returns ErrQueueFull when
// the queue is saturated, ErrBreakerOpen when the service's breaker is
// open, and ErrClosed after shutdown; on any error the request has NOT
// been and will never be forwarded.
func (o *Outbox) TryDeliver(req *wire.Request) error {
	return o.TryDeliverTraced(req, obs.TraceContext{})
}

// TryDeliverTraced is TryDeliver carrying the request span's trace
// context into the queue: the worker records a delivery span (child of
// tc) covering the queue wait and every delivery attempt. A zero tc
// behaves exactly like TryDeliver.
func (o *Outbox) TryDeliverTraced(req *wire.Request, tc obs.TraceContext) error {
	if o.breaker(req.Service).Rejects() {
		o.Events.Inc(EventShedBreakerOpen)
		return ErrBreakerOpen
	}
	now := o.opts.Clock.Now()
	p := pending{req: req, deadline: now.Add(o.opts.Deadline), tc: tc, enq: now}
	o.closeMu.RLock()
	defer o.closeMu.RUnlock()
	if o.closed {
		o.Events.Inc(EventDroppedClosed)
		return ErrClosed
	}
	select {
	case o.queue <- p:
		o.depth.Add(1)
		o.Events.Inc(EventEnqueued)
		return nil
	default:
		o.Events.Inc(EventShedQueueFull)
		return ErrQueueFull
	}
}

// Deliver implements ts.Outbox for callers that cannot observe
// admission failures; refused requests are already counted and audited
// by TryDeliver's failure path, so the error is deliberately dropped.
func (o *Outbox) Deliver(req *wire.Request) { _ = o.TryDeliver(req) }

// worker drains the queue until it is closed.
func (o *Outbox) worker() {
	defer o.wg.Done()
	for p := range o.queue {
		o.depth.Add(-1)
		o.attempt(p)
	}
}

// attempt runs the retry loop for one queued request. When the request
// carries a trace context and a span sink is installed, the whole loop
// is recorded as one delivery span: queue wait, per-attempt timings,
// retry and breaker events — all measured on the outbox clock, so
// virtual-time chaos schedules produce faithful spans.
func (o *Outbox) attempt(p pending) {
	clock := o.opts.Clock
	br := o.breaker(p.req.Service)
	seed := uint64(o.opts.Seed) ^ uint64(p.req.ID)

	var dsp *obs.Span
	if sink := o.sink.Load(); sink != nil && p.tc.Valid() {
		// The span is pooled and carries its identity in binary form;
		// the recorder renders hex ids only if the span is kept, and
		// recycles the span either way.
		dsp = obs.NewSpan()
		dsp.SetIdentity(p.tc.Child(), p.tc)
		dsp.Kind = obs.SpanKindDelivery
		dsp.MsgID = int64(p.req.ID)
		dsp.Service = p.req.Service
		dsp.Start = p.enq.UnixNano()
		dsp.QueueNs = clock.Now().Sub(p.enq).Nanoseconds()
		defer func() {
			// Start/TotalNs are stamped here on the outbox clock; the
			// recorder's finish() leaves them alone (began is zero).
			dsp.TotalNs = clock.Now().Sub(p.enq).Nanoseconds()
			(*sink).RecordSpan(dsp, p.tc.Sampled())
		}()
	}
	elapsed := func() int64 { return clock.Now().Sub(p.enq).Nanoseconds() }

	for attempt := 1; ; attempt++ {
		if !clock.Now().Before(p.deadline) {
			o.drop(p.req, p.tc, dsp, EventDroppedDeadline, "deadline_exceeded", attempt-1)
			return
		}
		if !br.Allow() {
			if dsp != nil {
				dsp.AddEvent("breaker_open", elapsed())
			}
			o.drop(p.req, p.tc, dsp, EventDroppedBreakerOpen, "breaker_open", attempt-1)
			return
		}
		t0 := clock.Now()
		err := o.target.Deliver(p.req)
		if dsp != nil {
			dsp.AttemptNs = append(dsp.AttemptNs, clock.Now().Sub(t0).Nanoseconds())
		}
		if err == nil {
			br.Success()
			o.Events.Inc(EventDelivered)
			if dsp != nil {
				dsp.Outcome = obs.OutcomeDelivered
			}
			return
		}
		br.Failure()
		if attempt >= o.opts.MaxAttempts {
			o.drop(p.req, p.tc, dsp, EventDroppedSPError, "retries_exhausted", attempt)
			return
		}
		o.Events.Inc(EventRetries)
		if dsp != nil {
			dsp.AddEvent("retry", elapsed())
		}
		delay := o.opts.Backoff.Delay(attempt, seed)
		if remain := p.deadline.Sub(clock.Now()); delay > remain {
			// Sleeping past the deadline cannot help; charge the failed
			// attempts and drop now.
			o.drop(p.req, p.tc, dsp, EventDroppedDeadline, "deadline_exceeded", attempt)
			return
		}
		clock.Sleep(delay)
	}
}

// drop records an asynchronous delivery failure: the request was
// admitted but never reached the service provider. Counted, audited
// when an audit hook is installed, and stamped on the delivery span
// when one is being recorded — a dropped request is never silent.
func (o *Outbox) drop(req *wire.Request, tc obs.TraceContext, dsp *obs.Span, event, reason string, attempts int) {
	o.Events.Inc(event)
	o.Events.Inc(EventDropped)
	if dsp != nil {
		dsp.Outcome = obs.OutcomeDropped
		dsp.Reason = reason
	}
	if o.opts.Audit != nil {
		e := obs.Event{
			Kind:     obs.KindDelivery,
			MsgID:    int64(req.ID),
			Service:  req.Service,
			Outcome:  obs.OutcomeDropped,
			Reason:   reason,
			Attempts: attempts,
		}
		if tc.Valid() {
			e.TraceID = tc.TraceIDString()
		}
		o.opts.Audit(e)
	}
}

// QueueDepth returns the number of requests currently awaiting
// delivery.
func (o *Outbox) QueueDepth() int { return int(o.depth.Load()) }

// QueueCapacity returns the queue bound.
func (o *Outbox) QueueCapacity() int { return o.opts.QueueSize }

// Dropped returns the number of admitted requests that were never
// delivered (deadline, breaker, SP error, shutdown).
func (o *Outbox) Dropped() int64 { return o.Events.Get(EventDropped) }

// BreakerStates returns the current state of every per-service breaker,
// keyed by service name.
func (o *Outbox) BreakerStates() map[string]string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]string, len(o.breakers))
	for svc, b := range o.breakers {
		out[svc] = b.State().String()
	}
	return out
}

// OpenBreakers returns how many per-service breakers are currently
// open — the /healthz and metrics degradation signal.
func (o *Outbox) OpenBreakers() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, b := range o.breakers {
		if b.State() == BreakerOpen {
			n++
		}
	}
	return n
}

// RegisterMetrics exposes the outbox on a Prometheus registry:
// histanon_resilience_events_total{event}, the queue-depth gauge and
// the open-breaker count.
func (o *Outbox) RegisterMetrics(r *metrics.Registry) {
	r.RegisterCounterVec(obs.MetricResilienceEvents,
		"Asynchronous SP delivery pipeline events by type.",
		nil, o.Events)
	r.RegisterGaugeFunc(obs.MetricResilienceQueueDepth,
		"Requests currently queued for SP delivery.",
		nil, func() float64 { return float64(o.QueueDepth()) })
	r.RegisterGaugeFunc(obs.MetricResilienceBreakerOpen,
		"Per-service circuit breakers currently open.",
		nil, func() float64 { return float64(o.OpenBreakers()) })
}

// Close stops admission, drains the already-admitted queue and waits
// for the workers to finish. Safe to call more than once.
func (o *Outbox) Close() {
	o.closeMu.Lock()
	if !o.closed {
		o.closed = true
		close(o.queue)
	}
	o.closeMu.Unlock()
	o.wg.Wait()
}
