// Per-service circuit breaker. When a service provider fails
// persistently, continuing to queue requests for it only delays the
// inevitable drop and holds queue slots hostage; the breaker converts
// persistent failure into immediate, synchronous shedding — which the
// trusted server surfaces as a suppressed (degraded) decision, the
// fail-closed outcome.

package resilience

import (
	"sync"
	"time"
)

// BreakerState is the classic three-state breaker automaton.
type BreakerState int32

// The breaker states: Closed admits everything, Open rejects
// everything until the reset window elapses, HalfOpen admits a bounded
// number of probe deliveries to test recovery.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String returns the state name used in /healthz and audit records.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes one breaker. The zero value gets safe defaults.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive delivery failures
	// that trips the breaker open (default 5).
	FailureThreshold int
	// OpenFor is how long an open breaker rejects before moving to
	// half-open (default 5s).
	OpenFor time.Duration
	// HalfOpenProbes is how many consecutive probe successes close a
	// half-open breaker (default 1). A probe failure re-opens it.
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// Breaker is one service's circuit breaker. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	probes    int // probes admitted this half-open round
	openedAt  time.Time
}

// NewBreaker returns a closed breaker reading time from now (nil means
// the real clock).
func NewBreaker(cfg BreakerConfig, now func() time.Time) *Breaker {
	if now == nil {
		now = time.Now
	}
	return &Breaker{cfg: cfg.withDefaults(), now: now}
}

// State returns the current state, applying the open→half-open timer.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	return b.state
}

// maybeHalfOpen moves an expired open breaker to half-open. Callers
// hold b.mu.
func (b *Breaker) maybeHalfOpen() {
	if b.state == BreakerOpen && !b.now().Before(b.openedAt.Add(b.cfg.OpenFor)) {
		b.state = BreakerHalfOpen
		b.successes = 0
		b.probes = 0
	}
}

// Rejects reports whether new work for the service should be shed
// synchronously: true only while the breaker is open (half-open work is
// admitted so probes can run).
func (b *Breaker) Rejects() bool { return b.State() == BreakerOpen }

// Allow reports whether one delivery attempt may proceed now. In
// half-open state it admits at most HalfOpenProbes in-flight probes.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return true
		}
		return false
	default:
		return false
	}
}

// Success records a successful delivery: it resets a closed breaker's
// failure run and counts a half-open probe toward closing.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			b.state = BreakerClosed
			b.failures = 0
		}
	}
}

// Failure records a failed delivery: it trips a closed breaker after
// FailureThreshold consecutive failures and re-opens a half-open one
// immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.trip()
	}
}

// trip opens the breaker. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.successes = 0
	b.probes = 0
}
