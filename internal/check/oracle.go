package check

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/stindex"
)

// distEps is the tolerance for comparing metric distances. All index
// implementations call geo.STMetric.Dist on identical float64 inputs, so
// matching results agree bit-for-bit; the epsilon only forgives future
// implementations that reassociate the arithmetic.
const distEps = 1e-9

// RunDifferential builds every index, applies the workload's inserts,
// runs every query against every implementation, and returns all
// divergences from the brute-force baseline. An empty slice means full
// agreement.
func RunDifferential(w *Workload) []Divergence {
	indexes := buildAll(w)
	return diffAll(w, indexes, ownership(w))
}

// RunConcurrent replays the workload with writers goroutines inserting
// while two reader goroutines issue the query mix against the live
// index. During mutation only structural invariants are checked (exact
// agreement is unobservable mid-insert); after all writers join, the
// quiescent indexes must agree with brute force exactly. Run under
// -race: the interleaving itself is the point.
func RunConcurrent(w *Workload, writers int) []Divergence {
	if writers < 1 {
		writers = 1
	}
	owners := ownership(w)
	var (
		mu   sync.Mutex
		divs []Divergence
	)
	report := func(d Divergence) {
		mu.Lock()
		divs = append(divs, d)
		mu.Unlock()
	}

	indexes := map[string]stindex.Index{}
	for name, mk := range Indexes(w.Cfg) {
		indexes[name] = mk()
	}
	var wg sync.WaitGroup
	for name, idx := range indexes {
		name, idx := name, idx
		for wr := 0; wr < writers; wr++ {
			wg.Add(1)
			go func(wr int) {
				defer wg.Done()
				for i := wr; i < len(w.Inserts); i += writers {
					idx.Insert(w.Inserts[i].User, w.Inserts[i].Point)
				}
			}(wr)
		}
		// Two readers: one sweeps box queries, one KNN queries, both
		// racing the writers.
		wg.Add(2)
		go func() {
			defer wg.Done()
			for qi, box := range w.Boxes {
				users := idx.UsersInBox(box)
				for _, d := range checkBoxStructure(name, qi, box, users, owners) {
					report(d)
				}
				idx.CountUsersInBox(box)
			}
		}()
		go func() {
			defer wg.Done()
			for qi, q := range w.KNNs {
				got := idx.KNearestUsers(q.Q, q.K, w.Metric, q.Exclude)
				for _, d := range checkKNNStructure(name, qi, q, got, w.Metric, owners) {
					report(d)
				}
			}
		}()
	}
	wg.Wait()

	// Quiescent phase: with every insert published, all implementations
	// must agree with brute force exactly.
	divs = append(divs, diffAll(w, indexes, owners)...)
	return divs
}

// buildAll constructs and fully populates every index sequentially.
func buildAll(w *Workload) map[string]stindex.Index {
	indexes := map[string]stindex.Index{}
	for name, mk := range Indexes(w.Cfg) {
		idx := mk()
		for _, in := range w.Inserts {
			idx.Insert(in.User, in.Point)
		}
		indexes[name] = idx
	}
	return indexes
}

// ownership maps each user to the set of samples inserted for them, so
// structural checks can verify that query results only ever surface
// points that were actually inserted for the claimed user.
func ownership(w *Workload) map[phl.UserID]map[geo.STPoint]bool {
	owners := map[phl.UserID]map[geo.STPoint]bool{}
	for _, in := range w.Inserts {
		set := owners[in.User]
		if set == nil {
			set = map[geo.STPoint]bool{}
			owners[in.User] = set
		}
		set[in.Point] = true
	}
	return owners
}

// diffAll compares every non-brute index against brute on every query.
func diffAll(w *Workload, indexes map[string]stindex.Index, owners map[phl.UserID]map[geo.STPoint]bool) []Divergence {
	var divs []Divergence
	brute := indexes["brute"]
	names := make([]string, 0, len(indexes))
	for name := range indexes {
		if name != "brute" {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	if want := len(w.Inserts); brute.Len() != want {
		divs = append(divs, Divergence{Index: "brute", Kind: "len", Query: -1,
			Detail: fmt.Sprintf("Len=%d want %d", brute.Len(), want)})
	}
	for _, name := range names {
		if got, want := indexes[name].Len(), brute.Len(); got != want {
			divs = append(divs, Divergence{Index: name, Kind: "len", Query: -1,
				Detail: fmt.Sprintf("Len=%d brute has %d", got, want)})
		}
	}

	for qi, box := range w.Boxes {
		want := userSet(brute.UsersInBox(box))
		divs = append(divs, checkBoxStructure("brute", qi, box, brute.UsersInBox(box), owners)...)
		for _, name := range names {
			idx := indexes[name]
			got := idx.UsersInBox(box)
			divs = append(divs, checkBoxStructure(name, qi, box, got, owners)...)
			if !equalSets(want, userSet(got)) {
				divs = append(divs, Divergence{Index: name, Kind: "box-users", Query: qi,
					Detail: fmt.Sprintf("box %v: got %v want %v", box, sorted(userSet(got)), sorted(want))})
			}
			if n := idx.CountUsersInBox(box); n != len(want) {
				divs = append(divs, Divergence{Index: name, Kind: "box-count", Query: qi,
					Detail: fmt.Sprintf("box %v: count %d want %d", box, n, len(want))})
			}
		}
	}

	for qi, q := range w.KNNs {
		want := brute.KNearestUsers(q.Q, q.K, w.Metric, q.Exclude)
		divs = append(divs, checkKNNStructure("brute", qi, q, want, w.Metric, owners)...)
		for _, name := range names {
			got := indexes[name].KNearestUsers(q.Q, q.K, w.Metric, q.Exclude)
			divs = append(divs, checkKNNStructure(name, qi, q, got, w.Metric, owners)...)
			if len(got) != len(want) {
				divs = append(divs, Divergence{Index: name, Kind: "knn-len", Query: qi,
					Detail: fmt.Sprintf("k=%d: %d results, brute has %d", q.K, len(got), len(want))})
				continue
			}
			// Distances must agree pointwise. User identities may differ
			// only where distances tie, so the i-th distance — and in
			// particular the k-th distance bound — is the oracle.
			for i := range got {
				gd := w.Metric.Dist(got[i].Point, q.Q)
				wd := w.Metric.Dist(want[i].Point, q.Q)
				if math.Abs(gd-wd) > distEps {
					divs = append(divs, Divergence{Index: name, Kind: "knn-dist", Query: qi,
						Detail: fmt.Sprintf("k=%d result %d: dist %g, brute %g", q.K, i, gd, wd)})
					break
				}
			}
		}
	}
	return divs
}

// checkBoxStructure verifies implementation-independent facts about one
// box-query result: distinct users, and every reported user really has
// an inserted sample inside the box.
func checkBoxStructure(name string, qi int, box geo.STBox, users []phl.UserID, owners map[phl.UserID]map[geo.STPoint]bool) []Divergence {
	var divs []Divergence
	seen := map[phl.UserID]bool{}
	for _, u := range users {
		if seen[u] {
			divs = append(divs, Divergence{Index: name, Kind: "box-dup", Query: qi,
				Detail: fmt.Sprintf("user %v listed twice", u)})
		}
		seen[u] = true
		found := false
		for p := range owners[u] {
			if box.Contains(p) {
				found = true
				break
			}
		}
		if !found {
			divs = append(divs, Divergence{Index: name, Kind: "box-member", Query: qi,
				Detail: fmt.Sprintf("user %v has no inserted sample in %v", u, box)})
		}
	}
	return divs
}

// checkKNNStructure verifies implementation-independent facts about one
// KNN result: at most k entries, distinct users, excluded users absent,
// non-decreasing distances, and points that belong to the claimed user.
func checkKNNStructure(name string, qi int, q KNNQuery, got []stindex.UserPoint, m geo.STMetric, owners map[phl.UserID]map[geo.STPoint]bool) []Divergence {
	var divs []Divergence
	if len(got) > q.K {
		divs = append(divs, Divergence{Index: name, Kind: "knn-over", Query: qi,
			Detail: fmt.Sprintf("%d results for k=%d", len(got), q.K)})
	}
	seen := map[phl.UserID]bool{}
	prev := math.Inf(-1)
	for i, e := range got {
		if seen[e.User] {
			divs = append(divs, Divergence{Index: name, Kind: "knn-dup", Query: qi,
				Detail: fmt.Sprintf("user %v appears twice", e.User)})
		}
		seen[e.User] = true
		if q.Exclude[e.User] {
			divs = append(divs, Divergence{Index: name, Kind: "knn-excluded", Query: qi,
				Detail: fmt.Sprintf("excluded user %v returned", e.User)})
		}
		d := m.Dist(e.Point, q.Q)
		if d < prev-distEps {
			divs = append(divs, Divergence{Index: name, Kind: "knn-order", Query: qi,
				Detail: fmt.Sprintf("result %d dist %g < previous %g", i, d, prev)})
		}
		prev = d
		if !owners[e.User][e.Point] {
			divs = append(divs, Divergence{Index: name, Kind: "knn-member", Query: qi,
				Detail: fmt.Sprintf("point %v was never inserted for user %v", e.Point, e.User)})
		}
	}
	return divs
}

func userSet(ids []phl.UserID) map[phl.UserID]bool {
	s := make(map[phl.UserID]bool, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

func equalSets(a, b map[phl.UserID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func sorted(s map[phl.UserID]bool) []phl.UserID {
	out := make([]phl.UserID, 0, len(s))
	for u := range s {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
