// Package check is the repository's correctness harness: machine-checked
// oracles for the properties the rest of the system silently relies on.
// It exists so that performance work (sharding, caching, new index
// structures) cannot drift away from the paper's semantics without a
// test failing.
//
// Three layers:
//
//   - A deterministic randomized-workload generator (workload.go):
//     seeded users with trajectory-shaped location histories plus a mix
//     of box and k-nearest queries, reproducible from a single seed.
//
//   - A differential oracle (oracle.go): every workload runs against all
//     stindex implementations and any divergence from the brute-force
//     baseline — different user sets for a box query, a different k-th
//     distance bound for a KNN query — is reported as a Divergence.
//     RunConcurrent additionally interleaves inserts with queries from
//     several goroutines (structural invariants only, since exact
//     agreement is unobservable mid-mutation) and then re-checks full
//     agreement at quiescence; run it under -race.
//
//   - Privacy-layer invariant checkers (invariants.go): Algorithm 1
//     output boxes must enclose the original request point, respect the
//     service tolerance (or report HKAnonymity=false), and certify
//     anon.HistoricalLevel ≥ k; generalization must be monotone in k;
//     pseudonym rotation must never reuse a retired pseudonym; mix-zone
//     plans must cover the request point and exclude the issuer.
//
// The package-level functions return error/Divergence values instead of
// taking *testing.T, so the same checkers back ordinary property tests,
// native fuzz targets, and (if ever needed) a standalone soak binary.
//
// To extend the harness when adding a new index implementation, add a
// constructor to Indexes. To add an invariant for a new generalizer,
// follow CheckFirstElement: run the component, then assert the paper
// property against the PHL store directly — never against the component's
// own bookkeeping. See DESIGN.md §8.
package check

import (
	"fmt"

	"histanon/internal/stindex"
)

// Divergence is one observed disagreement between an index under test
// and the brute-force baseline, or a violated structural invariant.
type Divergence struct {
	// Index names the implementation that diverged.
	Index string
	// Kind classifies the failure (e.g. "box-users", "knn-dist").
	Kind string
	// Query is the index of the failing query within its workload slice
	// (-1 when the failure is not tied to one query).
	Query int
	// Detail is a human-readable description of the disagreement.
	Detail string
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s/%s query %d: %s", d.Index, d.Kind, d.Query, d.Detail)
}

// Indexes returns constructors for every index implementation under
// test, keyed by name. The workload's extent and time span size the grid
// variants; two grid granularities are exercised because cell geometry
// is where grid bugs hide (shell pruning, clamping, negative cells).
func Indexes(cfg WorkloadConfig) map[string]func() stindex.Index {
	cfg = cfg.withDefaults()
	coarseCell := cfg.Extent / 4
	fineCell := cfg.Extent / 32
	bucket := cfg.TimeSpan / 8
	if bucket < 1 {
		bucket = 1
	}
	return map[string]func() stindex.Index{
		"brute":       func() stindex.Index { return stindex.NewBrute() },
		"grid-coarse": func() stindex.Index { return stindex.NewGrid(coarseCell, bucket) },
		"grid-fine":   func() stindex.Index { return stindex.NewGrid(fineCell, bucket) },
		"kdtree":      func() stindex.Index { return stindex.NewKDTree() },
		"rtree":       func() stindex.Index { return stindex.NewRTree() },
	}
}
