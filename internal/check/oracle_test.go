package check

import (
	"testing"
)

// TestDifferentialOracle runs the full index-agreement oracle over 200
// seeded workloads (the CI acceptance floor). Every box query must
// return the same user set on all four index families and every KNN
// query the same distance profile as brute force.
func TestDifferentialOracle(t *testing.T) {
	const workloads = 200
	queriesRun := 0
	for seed := int64(1); seed <= workloads; seed++ {
		w := NewWorkload(WorkloadConfig{
			Seed:       seed,
			Users:      8 + int(seed%40),
			Samples:    120 + int(seed%5)*80,
			BoxQueries: 10,
			KNNQueries: 10,
			TimeScale:  0.25 * float64(1+seed%4),
		})
		if divs := RunDifferential(w); len(divs) > 0 {
			for _, d := range divs {
				t.Errorf("seed %d: %s", seed, d)
			}
			t.Fatalf("seed %d: %d divergences", seed, len(divs))
		}
		queriesRun += len(w.Boxes) + len(w.KNNs)
	}
	if queriesRun < workloads*20 {
		t.Fatalf("only %d queries generated; the oracle lost its teeth", queriesRun)
	}
}

// TestDifferentialOracleTinyPopulations hits the degenerate corner the
// big sweep rarely reaches: single-user stores, single samples, k far
// above the population.
func TestDifferentialOracleTinyPopulations(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		w := NewWorkload(WorkloadConfig{
			Seed:       seed,
			Users:      1 + int(seed%3),
			Samples:    1 + int(seed%7),
			BoxQueries: 4,
			KNNQueries: 6,
			MaxK:       5,
		})
		if divs := RunDifferential(w); len(divs) > 0 {
			for _, d := range divs {
				t.Errorf("seed %d: %s", seed, d)
			}
			t.Fatalf("seed %d: tiny-population divergence", seed)
		}
	}
}

// TestConcurrentOracle interleaves inserts with queries from several
// goroutines (structural invariants live), then requires exact
// brute-force agreement at quiescence. Run under -race this is the
// concurrent insert/query schedule of the acceptance criteria.
func TestConcurrentOracle(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		w := NewWorkload(WorkloadConfig{
			Seed:       1000 + seed,
			Users:      24,
			Samples:    600,
			BoxQueries: 8,
			KNNQueries: 8,
		})
		if divs := RunConcurrent(w, 4); len(divs) > 0 {
			for _, d := range divs {
				t.Errorf("seed %d: %s", seed, d)
			}
			t.Fatalf("seed %d: concurrent schedule diverged", seed)
		}
	}
}

// TestWorkloadDeterminism guards the harness itself: the same seed must
// reproduce the same workload bit for bit, or pinned regression seeds
// stop meaning anything.
func TestWorkloadDeterminism(t *testing.T) {
	a := NewWorkload(WorkloadConfig{Seed: 42})
	b := NewWorkload(WorkloadConfig{Seed: 42})
	if len(a.Inserts) != len(b.Inserts) || len(a.Boxes) != len(b.Boxes) || len(a.KNNs) != len(b.KNNs) {
		t.Fatal("same seed produced different workload shapes")
	}
	for i := range a.Inserts {
		if a.Inserts[i] != b.Inserts[i] {
			t.Fatalf("insert %d differs between identically seeded workloads", i)
		}
	}
	for i := range a.Boxes {
		if a.Boxes[i] != b.Boxes[i] {
			t.Fatalf("box query %d differs between identically seeded workloads", i)
		}
	}
	for i := range a.KNNs {
		if a.KNNs[i].Q != b.KNNs[i].Q || a.KNNs[i].K != b.KNNs[i].K {
			t.Fatalf("knn query %d differs between identically seeded workloads", i)
		}
	}
	c := NewWorkload(WorkloadConfig{Seed: 43})
	same := len(a.Inserts) == len(c.Inserts)
	if same {
		for i := range a.Inserts {
			if a.Inserts[i] != c.Inserts[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

// TestOracleDetectsDivergence feeds the oracle a deliberately broken
// index and requires it to notice — the harness must be falsifiable.
func TestOracleDetectsDivergence(t *testing.T) {
	w := NewWorkload(WorkloadConfig{Seed: 7, Users: 16, Samples: 200, BoxQueries: 8, KNNQueries: 8})
	indexes := buildAll(w)
	// Sabotage one implementation by dropping every third insert.
	broken := Indexes(w.Cfg)["kdtree"]()
	for i, in := range w.Inserts {
		if i%3 != 0 {
			broken.Insert(in.User, in.Point)
		}
	}
	indexes["kdtree"] = broken
	if divs := diffAll(w, indexes, ownership(w)); len(divs) == 0 {
		t.Fatal("oracle failed to flag an index missing a third of the data")
	}
}
