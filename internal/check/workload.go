package check

import (
	"math"
	"math/rand"

	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/stindex"
)

// WorkloadConfig parameterizes one randomized workload. The zero value
// of any field selects a sensible default, so a workload is fully
// reproducible from {Seed} alone.
type WorkloadConfig struct {
	// Seed drives every random choice in the workload.
	Seed int64
	// Users is the number of distinct users.
	Users int
	// Samples is the total number of location samples across users.
	Samples int
	// Extent is the side (meters) of the square the trajectories roam;
	// walks are centered on the origin so negative coordinates occur.
	Extent float64
	// TimeSpan is the trajectory duration in seconds.
	TimeSpan int64
	// BoxQueries and KNNQueries size the query mix.
	BoxQueries int
	KNNQueries int
	// MaxK bounds the k of KNN queries; some queries deliberately exceed
	// the user count to exercise the k >= population paths.
	MaxK int
	// TimeScale is the metric's seconds-to-meters factor.
	TimeScale float64
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Users <= 0 {
		c.Users = 32
	}
	if c.Samples <= 0 {
		c.Samples = 400
	}
	if c.Extent <= 0 {
		c.Extent = 2000
	}
	if c.TimeSpan <= 0 {
		c.TimeSpan = 7200
	}
	if c.BoxQueries < 0 {
		c.BoxQueries = 0
	}
	if c.KNNQueries < 0 {
		c.KNNQueries = 0
	}
	if c.MaxK <= 0 {
		c.MaxK = 12
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 0.5
	}
	return c
}

// KNNQuery is one k-nearest-users query of a workload.
type KNNQuery struct {
	Q       geo.STPoint
	K       int
	Exclude map[phl.UserID]bool
}

// Workload is a reproducible insert-and-query schedule. Inserts are
// interleaved across users in trajectory (time) order, so a prefix of
// the insert list is itself a meaningful smaller workload and concurrent
// writers each replay a coherent slice.
type Workload struct {
	Cfg     WorkloadConfig
	Metric  geo.STMetric
	Inserts []stindex.UserPoint
	Boxes   []geo.STBox
	KNNs    []KNNQuery
}

// NewWorkload generates the workload determined by cfg.
func NewWorkload(cfg WorkloadConfig) *Workload {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{Cfg: cfg, Metric: geo.STMetric{TimeScale: cfg.TimeScale}}

	w.Inserts = genTrajectories(rng, cfg)
	for i := 0; i < cfg.BoxQueries; i++ {
		w.Boxes = append(w.Boxes, genBox(rng, cfg, w.Inserts))
	}
	for i := 0; i < cfg.KNNQueries; i++ {
		w.KNNs = append(w.KNNs, genKNN(rng, cfg))
	}
	return w
}

// genTrajectories random-walks every user through the extent and
// interleaves the samples in time order. A fraction of samples is
// snapped to a coarse lattice so exact duplicates, shared positions
// across users, and boundary-exact query hits all occur.
func genTrajectories(rng *rand.Rand, cfg WorkloadConfig) []stindex.UserPoint {
	half := cfg.Extent / 2
	step := cfg.Extent / 20
	pos := make([]geo.Point, cfg.Users)
	for u := range pos {
		pos[u] = geo.Point{X: rng.Float64()*cfg.Extent - half, Y: rng.Float64()*cfg.Extent - half}
	}
	out := make([]stindex.UserPoint, 0, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		u := i % cfg.Users
		p := pos[u]
		p.X = clamp(p.X+rng.NormFloat64()*step, -half, half)
		p.Y = clamp(p.Y+rng.NormFloat64()*step, -half, half)
		pos[u] = p
		t := int64(float64(cfg.TimeSpan) * float64(i) / float64(cfg.Samples))
		t += int64(rng.Intn(7)) - 3 // jitter so per-user times are not perfectly regular
		sample := geo.STPoint{P: p, T: t}
		if rng.Intn(8) == 0 {
			// Lattice-snapped sample: collides with other snapped samples
			// and with lattice-aligned query-box edges.
			sample.P.X = math.Round(sample.P.X/step) * step
			sample.P.Y = math.Round(sample.P.Y/step) * step
			sample.T = t - t%60
		}
		out = append(out, stindex.UserPoint{User: phl.UserID(u), Point: sample})
		if rng.Intn(32) == 0 && len(out) > 1 {
			// Exact duplicate of an earlier sample, possibly re-attributed
			// to a different user: distance ties and multi-owner points.
			dup := out[rng.Intn(len(out)-1)]
			if rng.Intn(2) == 0 {
				dup.User = phl.UserID(rng.Intn(cfg.Users))
			}
			out = append(out, dup)
		}
	}
	return out
}

// genBox produces a box query: usually centered on an inserted sample
// (so it is non-empty), sometimes degenerate (zero width or duration),
// sometimes disjoint from the data, sometimes covering everything.
func genBox(rng *rand.Rand, cfg WorkloadConfig, ins []stindex.UserPoint) geo.STBox {
	switch rng.Intn(10) {
	case 0: // whole-world box
		return geo.STBox{
			Area: geo.Rect{MinX: -2 * cfg.Extent, MinY: -2 * cfg.Extent, MaxX: 2 * cfg.Extent, MaxY: 2 * cfg.Extent},
			Time: geo.Interval{Start: -cfg.TimeSpan, End: 2 * cfg.TimeSpan},
		}
	case 1: // far outside the populated region
		return geo.STBox{
			Area: geo.Rect{MinX: 10 * cfg.Extent, MinY: 10 * cfg.Extent, MaxX: 11 * cfg.Extent, MaxY: 11 * cfg.Extent},
			Time: geo.Interval{Start: 0, End: cfg.TimeSpan},
		}
	case 2: // degenerate: exactly one inserted point
		p := ins[rng.Intn(len(ins))].Point
		return geo.STBoxAround(p)
	}
	c := ins[rng.Intn(len(ins))].Point
	w := rng.Float64() * cfg.Extent / 4
	h := rng.Float64() * cfg.Extent / 4
	dt := int64(rng.Intn(int(cfg.TimeSpan/4) + 1))
	if rng.Intn(6) == 0 {
		w = 0 // zero-width slab
	}
	if rng.Intn(6) == 0 {
		dt = 0 // single-instant slab
	}
	return geo.STBox{
		Area: geo.Rect{MinX: c.P.X - w, MinY: c.P.Y - h, MaxX: c.P.X + w, MaxY: c.P.Y + h},
		Time: geo.Interval{Start: c.T - dt, End: c.T + dt},
	}
}

// genKNN produces a k-nearest query with varied k (including k greater
// than the population) and exclusion sets of size 0..3.
func genKNN(rng *rand.Rand, cfg WorkloadConfig) KNNQuery {
	half := cfg.Extent / 2
	q := geo.STPoint{
		P: geo.Point{X: rng.Float64()*cfg.Extent*1.5 - half*1.5, Y: rng.Float64()*cfg.Extent*1.5 - half*1.5},
		T: int64(rng.Float64() * float64(cfg.TimeSpan)),
	}
	k := 1 + rng.Intn(cfg.MaxK)
	if rng.Intn(8) == 0 {
		k = cfg.Users + rng.Intn(4) // k >= population: no-prune path
	}
	var exclude map[phl.UserID]bool
	if n := rng.Intn(4); n > 0 {
		exclude = make(map[phl.UserID]bool, n)
		for i := 0; i < n; i++ {
			exclude[phl.UserID(rng.Intn(cfg.Users))] = true
		}
	}
	return KNNQuery{Q: q, K: k, Exclude: exclude}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
