package check

import (
	"fmt"
	"math/rand"
	"sync"

	"histanon/internal/anon"
	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/mixzone"
	"histanon/internal/phl"
	"histanon/internal/pseudonym"
	"histanon/internal/stindex"
	"histanon/internal/wire"
)

// tolEps forgives the one float multiplication of Rect.ShrinkToward: a
// clamped width is maxW up to rounding, never meaningfully more.
const tolEps = 1e-6

// PopulationConfig parameterizes a random PHL population for the
// privacy-layer checkers. Coordinates are continuous (no lattice
// snapping), so distance ties have probability zero and the
// k-monotonicity property is well defined.
type PopulationConfig struct {
	Seed           int64
	Users          int
	SamplesPerUser int
	Extent         float64
	TimeSpan       int64
	TimeScale      float64
}

func (c PopulationConfig) withDefaults() PopulationConfig {
	if c.Users <= 0 {
		c.Users = 24
	}
	if c.SamplesPerUser <= 0 {
		c.SamplesPerUser = 8
	}
	if c.Extent <= 0 {
		c.Extent = 2000
	}
	if c.TimeSpan <= 0 {
		c.TimeSpan = 7200
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 0.5
	}
	return c
}

// Population is a PHL store and a spatio-temporal index holding the
// same samples — the two views Algorithm 1 requires to agree.
type Population struct {
	Cfg    PopulationConfig
	Store  phl.Storer
	Index  stindex.Index
	Metric geo.STMetric
	// Rng continues the generator stream past population building, so
	// query points are derived from the same single seed.
	Rng *rand.Rand
}

// NewPopulation builds a population with user trajectories random-walked
// over the extent. mk constructs the index (nil means brute force).
func NewPopulation(cfg PopulationConfig, mk func() stindex.Index) *Population {
	cfg = cfg.withDefaults()
	if mk == nil {
		mk = func() stindex.Index { return stindex.NewBrute() }
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Population{
		Cfg:    cfg,
		Store:  phl.NewStore(),
		Index:  mk(),
		Metric: geo.STMetric{TimeScale: cfg.TimeScale},
		Rng:    rng,
	}
	half := cfg.Extent / 2
	step := cfg.Extent / 20
	for u := 0; u < cfg.Users; u++ {
		pos := geo.Point{X: rng.Float64()*cfg.Extent - half, Y: rng.Float64()*cfg.Extent - half}
		for i := 0; i < cfg.SamplesPerUser; i++ {
			pos.X = clamp(pos.X+rng.NormFloat64()*step, -half, half)
			pos.Y = clamp(pos.Y+rng.NormFloat64()*step, -half, half)
			sample := geo.STPoint{P: pos, T: int64(float64(cfg.TimeSpan) * (float64(i) + rng.Float64()) / float64(cfg.SamplesPerUser))}
			p.Record(phl.UserID(u), sample)
		}
	}
	return p
}

// Record adds a sample to both views.
func (p *Population) Record(u phl.UserID, pt geo.STPoint) {
	p.Store.Record(u, pt)
	p.Index.Insert(u, pt)
}

// Generalizer returns an Algorithm 1 runner over the population.
// randomizeSeed != 0 enables the §7 box randomizer.
func (p *Population) Generalizer(randomizeSeed int64) *generalize.Generalizer {
	g := &generalize.Generalizer{Index: p.Index, Store: p.Store, Metric: p.Metric}
	if randomizeSeed != 0 {
		g.Randomize = generalize.NewRandomizer(randomizeSeed)
	}
	return g
}

// RandomQuery returns a query point inside the populated region.
func (p *Population) RandomQuery() geo.STPoint {
	half := p.Cfg.Extent / 2
	return geo.STPoint{
		P: geo.Point{X: p.Rng.Float64()*p.Cfg.Extent - half, Y: p.Rng.Float64()*p.Cfg.Extent - half},
		T: int64(p.Rng.Float64() * float64(p.Cfg.TimeSpan)),
	}
}

// allowsWithin is Tolerance.Allows with rounding slack on the spatial
// axes (temporal clamping is exact integer arithmetic).
func allowsWithin(tol generalize.Tolerance, b geo.STBox) bool {
	if tol.MaxWidth > 0 && b.Area.Width() > tol.MaxWidth*(1+tolEps) {
		return false
	}
	if tol.MaxHeight > 0 && b.Area.Height() > tol.MaxHeight*(1+tolEps) {
		return false
	}
	if tol.MaxDuration > 0 && b.Time.Duration() > tol.MaxDuration {
		return false
	}
	return true
}

// CheckFirstElement runs Algorithm 1's first-element branch and verifies
// its contract (paper Algorithm 1 lines 5–13 and Def. 8):
//
//   - ok is true exactly when k-1 other users exist;
//   - the output box is valid and encloses the exact request point, even
//     after tolerance clamping and randomization;
//   - exactly k-1 distinct witnesses are selected, never the issuer;
//   - the box satisfies the tolerance (clamping guarantees this whether
//     or not anonymity survived);
//   - when HKAnonymity is reported, the box encloses every witness
//     sample and the achieved historical level is at least k.
func CheckFirstElement(p *Population, g *generalize.Generalizer, q geo.STPoint, issuer phl.UserID, k int, tol generalize.Tolerance) error {
	res, ok := g.FirstElement(q, issuer, k, tol)
	others := p.Store.NumUsers()
	for _, u := range p.Store.Users() {
		if u == issuer {
			others--
		}
	}
	if wantOK := k >= 1 && others >= k-1; ok != wantOK {
		return fmt.Errorf("FirstElement ok=%v, want %v (k=%d, %d other users)", ok, wantOK, k, others)
	}
	if !ok {
		return nil
	}
	if !res.Box.Valid() {
		return fmt.Errorf("invalid box %v", res.Box)
	}
	if !res.Box.Contains(q) {
		return fmt.Errorf("box %v does not enclose the request point %v", res.Box, q)
	}
	if len(res.Users) != k-1 {
		return fmt.Errorf("%d witnesses selected, want k-1=%d", len(res.Users), k-1)
	}
	seen := map[phl.UserID]bool{}
	for _, u := range res.Users {
		if u == issuer {
			return fmt.Errorf("issuer %v selected as their own witness", issuer)
		}
		if seen[u] {
			return fmt.Errorf("witness %v selected twice", u)
		}
		seen[u] = true
	}
	if !allowsWithin(tol, res.Box) {
		return fmt.Errorf("box %v violates tolerance %v (HKAnonymity=%v)", res.Box, tol, res.HKAnonymity)
	}
	if res.HKAnonymity {
		for i, pt := range res.Points {
			if !res.Box.Contains(pt) {
				return fmt.Errorf("HK-anonymous box %v misses witness sample %v (user %v)", res.Box, pt, res.Users[i])
			}
		}
		if lvl := anon.HistoricalLevel(p.Store, issuer, []geo.STBox{res.Box}); lvl < k {
			return fmt.Errorf("HistoricalLevel=%d < k=%d for HK-anonymous box %v", lvl, k, res.Box)
		}
	}
	return nil
}

// CheckSession drives a whole generalization session over a trace and
// verifies the trace-level contract:
//
//   - every produced box encloses its request point and respects the
//     tolerance;
//   - the witness candidate set never grows along the trace;
//   - Def. 8 end to end: when every step reported HKAnonymity, the
//     issuer's request series achieves HistoricalLevel ≥ k against the
//     PHL database, and anon.SatisfiesHistoricalK concurs.
func CheckSession(p *Population, g *generalize.Generalizer, issuer phl.UserID, trace []geo.STPoint, sched generalize.DecaySchedule, tol generalize.Tolerance) error {
	if sched.Target < 1 {
		sched.Target = 1
	}
	sess := generalize.NewSession(g, issuer, sched)
	var boxes []geo.STBox
	allHK := true
	prev := map[phl.UserID]bool{}
	for step, q := range trace {
		res, ok := sess.Generalize(q, tol)
		if !ok {
			if step != 0 {
				return fmt.Errorf("step %d: Generalize failed after a successful first element", step)
			}
			return nil // not enough users: nothing further to check
		}
		if !res.Box.Valid() || !res.Box.Contains(q) {
			return fmt.Errorf("step %d: box %v does not enclose request point %v", step, res.Box, q)
		}
		if !allowsWithin(tol, res.Box) {
			return fmt.Errorf("step %d: box %v violates tolerance %v", step, res.Box, tol)
		}
		if step > 0 {
			for _, u := range res.Users {
				if !prev[u] {
					return fmt.Errorf("step %d: witness %v appeared mid-trace", step, u)
				}
			}
		}
		prev = userSet(res.Users)
		allHK = allHK && res.HKAnonymity
		boxes = append(boxes, res.Box)
	}
	if allHK && len(boxes) > 0 {
		lvl := anon.HistoricalLevel(p.Store, issuer, boxes)
		if lvl < sched.Target {
			return fmt.Errorf("HistoricalLevel=%d < k=%d over %d HK-anonymous boxes", lvl, sched.Target, len(boxes))
		}
		if !anon.SatisfiesHistoricalK(p.Store, issuer, boxes, sched.Target) {
			return fmt.Errorf("SatisfiesHistoricalK=false with HistoricalLevel=%d >= k=%d", lvl, sched.Target)
		}
	}
	return nil
}

// CheckKMonotone verifies that generalization is monotone in k under an
// unlimited tolerance: a larger k yields a (weakly) larger box and never
// a smaller anonymity set. g must have no randomizer (padding is
// deliberately non-monotone). Ties in witness distance could break
// monotonicity legitimately, but continuous populations make them a
// probability-zero event.
func CheckKMonotone(p *Population, q geo.STPoint, issuer phl.UserID, maxK int) error {
	g := p.Generalizer(0)
	prevCount := -1
	var prevBox geo.STBox
	havePrev := false
	failed := false
	for k := 1; k <= maxK; k++ {
		res, ok := g.FirstElement(q, issuer, k, generalize.Unlimited)
		if !ok {
			failed = true
			continue
		}
		if failed {
			return fmt.Errorf("k=%d succeeded after a smaller k failed", k)
		}
		count := len(anon.AnonymitySet(p.Store, res.Box))
		if count < prevCount {
			return fmt.Errorf("anonymity set shrank from %d to %d when k grew to %d", prevCount, count, k)
		}
		if havePrev && !res.Box.ContainsBox(prevBox) {
			return fmt.Errorf("box for k=%d does not contain the box for k=%d", k, k-1)
		}
		prevCount, prevBox, havePrev = count, res.Box, true
	}
	return nil
}

// CheckPseudonymRotation hammers one pseudonym manager from workers
// goroutines (disjoint user ranges, shared manager state) and verifies
// the unlinking contract of §6.3: a retired pseudonym is never reused —
// every pseudonym ever issued is globally unique — and the TS-side
// owner mapping keeps resolving retired pseudonyms to their user.
func CheckPseudonymRotation(users, rotations, workers int) error {
	if workers < 1 {
		workers = 1
	}
	m := pseudonym.NewManager()
	type mint struct {
		u phl.UserID
		p wire.Pseudonym
	}
	minted := make([][]mint, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for u := w; u < users; u += workers {
				id := phl.UserID(u)
				minted[w] = append(minted[w], mint{id, m.Current(id)})
				for r := 0; r < rotations; r++ {
					old, fresh := m.Rotate(id)
					if old == fresh {
						errs[w] = fmt.Errorf("Rotate(%v) returned the retired pseudonym %q as fresh", id, fresh)
						return
					}
					minted[w] = append(minted[w], mint{id, fresh})
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	owners := map[wire.Pseudonym]phl.UserID{}
	for _, batch := range minted {
		for _, mt := range batch {
			if prev, dup := owners[mt.p]; dup {
				return fmt.Errorf("pseudonym %q issued to both %v and %v", mt.p, prev, mt.u)
			}
			owners[mt.p] = mt.u
			got, ok := m.Owner(mt.p)
			if !ok || got != mt.u {
				return fmt.Errorf("Owner(%q) = %v,%v want %v (retired pseudonyms must stay resolvable)", mt.p, got, ok, mt.u)
			}
		}
	}
	for u := 0; u < users; u++ {
		if got := m.Rotations(phl.UserID(u)); got != rotations {
			return fmt.Errorf("Rotations(%d) = %d want %d", u, got, rotations)
		}
	}
	return nil
}

// CheckMixZonePlan verifies the on-demand mix-zone contract: a plan
// suppresses service exactly over [t, t+quiet], covers the request
// point, and mixes only distinct non-issuer participants.
func CheckMixZonePlan(p *Population, issuer phl.UserID, pt geo.Point, t int64, k int, od mixzone.OnDemand) error {
	plan, ok := od.Plan(p.Index, p.Store, issuer, pt, t, k, p.Metric)
	if !ok {
		if od.FallbackRadius > 0 {
			return fmt.Errorf("plan failed although the temporal-only fallback was enabled")
		}
		return nil
	}
	quiet := od.Quiet
	if quiet == 0 {
		quiet = mixzone.DefaultHorizon
	}
	if plan.Window.Start != t || plan.Window.End != t+quiet {
		return fmt.Errorf("window %v, want [%d,%d]", plan.Window, t, t+quiet)
	}
	if !plan.Area.Contains(pt) {
		return fmt.Errorf("zone %v does not cover the request point %v", plan.Area, pt)
	}
	if !plan.Suppresses(pt, t) {
		return fmt.Errorf("plan does not suppress the request that triggered it")
	}
	seen := map[phl.UserID]bool{}
	for _, u := range plan.Participants {
		if u == issuer {
			return fmt.Errorf("issuer %v listed as mix participant", issuer)
		}
		if seen[u] {
			return fmt.Errorf("participant %v listed twice", u)
		}
		seen[u] = true
	}
	return nil
}
