package check

import (
	"errors"
	"math/rand"
	"testing"

	"histanon/internal/anon"
	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/storage"
	"histanon/internal/ts"
	"histanon/internal/wire"
)

// TestStorageDifferentialOracle is the headline differential: 120
// random continuous-coordinate populations, each ingested into an
// all-hot store and a TieredStore with aggressive demotion (restarted
// from disk mid-workload), then cross-examined on histories, box and
// KNN queries, LT-consistency, HistoricalLevel and whole Algorithm 1
// generalizations. Any divergence fails the seed.
func TestStorageDifferentialOracle(t *testing.T) {
	for seed := int64(1); seed <= 120; seed++ {
		cfg := PopulationConfig{
			Seed:           seed,
			Users:          6 + int(seed%20),
			SamplesPerUser: 8 + int(seed%9),
		}
		divs, err := RunStorageDifferential(cfg, 24)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(divs) != 0 {
			for _, d := range divs {
				t.Errorf("seed %d: [%s/%s q=%d] %s", seed, d.Index, d.Kind, d.Query, d.Detail)
			}
			t.Fatalf("seed %d: %d divergences", seed, len(divs))
		}
	}
}

// TestStorageOracleFalsifiable proves the oracle can actually fail: a
// single sample recorded into only one view must surface as at least
// one divergence.
func TestStorageOracleFalsifiable(t *testing.T) {
	o, err := NewStorageOracle(PopulationConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if divs := o.Check(16); len(divs) != 0 {
		t.Fatalf("clean run diverged: %v", divs)
	}
	// The injected divergence: the tiered view gains a sample the
	// baseline never saw.
	o.Tiered.Record(0, geo.STPoint{P: geo.Point{X: 1, Y: 2}, T: o.Cfg.TimeSpan / 2})
	if divs := o.Check(16); len(divs) == 0 {
		t.Fatal("oracle missed an injected one-sample divergence")
	}
}

// TestStorageOracleColdFault checks the degradation direction under
// injected cold-read failures: a faulty tiered store may shrink the
// anonymity evidence it reports (suppressing is the server's job) but
// must never inflate it — HistoricalLevel and witness counts can only
// move down, and the fault counter must record every miss.
func TestStorageOracleColdFault(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		o, err := NewStorageOracle(PopulationConfig{Seed: 100 + seed})
		if err != nil {
			t.Fatal(err)
		}
		if o.Store().Stats().DemotedSamples == 0 {
			t.Fatalf("seed %d: nothing demoted; fault leg is vacuous", seed)
		}
		o.FS.FailReads = errors.New("injected cold-read fault")
		faults0 := o.Store().StorageFaults()
		sawFault := false
		for qi := 0; qi < 40; qi++ {
			issuer := phl.UserID(o.rng.Intn(o.Cfg.Users))
			boxes := []geo.STBox{o.randomBox()}
			h := anon.HistoricalLevel(o.Hot.Store, issuer, boxes)
			f := anon.HistoricalLevel(o.Tiered.Store, issuer, boxes)
			if f > h {
				t.Fatalf("seed %d q %d: faulty store inflated HistoricalLevel: %d > %d", seed, qi, f, h)
			}
			if c, hc := o.Tiered.Store.CountUsersIn(boxes[0]), o.Hot.Store.CountUsersIn(boxes[0]); c > hc {
				t.Fatalf("seed %d q %d: faulty store inflated CountUsersIn: %d > %d", seed, qi, c, hc)
			}
			if f != h || o.Store().StorageFaults() > faults0 {
				sawFault = true
			}
		}
		if moved := o.Store().StorageFaults() - faults0; moved == 0 && sawFault {
			t.Fatalf("seed %d: answers shrank but no fault was counted", seed)
		}
		// Healed disk: the views must reconverge exactly.
		o.FS.FailReads = nil
		if divs := o.Check(16); len(divs) != 0 {
			t.Fatalf("seed %d: views did not reconverge after heal: %v", seed, divs)
		}
		o.Close()
	}
}

// storageDecisionLeg runs one trusted-server leg of the decision
// differential: records and requests from a fixed schedule, returning
// the decision fingerprints.
func storageDecisionLeg(t *testing.T, seed int64, store *storage.TieredStore) []string {
	t.Helper()
	cfg := ts.Config{
		Metric:        geo.STMetric{TimeScale: 0.5},
		DefaultPolicy: ts.Policy{K: 3},
		RandomizeSeed: seed,
	}
	if store != nil {
		cfg.Store = store
	}
	srv := ts.New(cfg, ts.OutboxFunc(func(*wire.Request) {}))

	rng := rand.New(rand.NewSource(seed))
	var fps []string
	now := int64(0)
	for i := 0; i < 1200; i++ {
		now += int64(rng.Intn(4))
		u := phl.UserID(rng.Intn(16))
		pt := geo.STPoint{
			P: geo.Point{X: rng.Float64()*2000 - 1000, Y: rng.Float64()*2000 - 1000},
			T: now,
		}
		if i%6 == 5 {
			d := srv.Request(u, pt, "svc", nil)
			fps = append(fps, fingerprint(len(fps), d))
		} else {
			srv.RecordLocation(u, pt)
		}
	}
	return fps
}

// TestStorageOracleServerDecisions is the end-to-end decision leg: the
// same seeded request schedule against a server on the default in-
// memory store and a server on a TieredStore doubling as the index,
// with most of the PHL demoted to disk. Every decision fingerprint —
// outcome, generalized context, pseudonym, trace — must be
// byte-identical.
func TestStorageOracleServerDecisions(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		fsys := storage.NewMemFS()
		st, _, err := storage.Open(storage.Options{
			Dir:              "oracle",
			FS:               fsys,
			SnapshotEvery:    48,
			HotWindow:        400,
			MaxDeltas:        3,
			ColdCacheEntries: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		hot := storageDecisionLeg(t, seed, nil)
		tiered := storageDecisionLeg(t, seed, st)
		if st.Stats().DemotedSamples == 0 {
			t.Fatalf("seed %d: nothing demoted; decision leg is vacuous", seed)
		}
		if len(hot) != len(tiered) {
			t.Fatalf("seed %d: %d hot decisions, %d tiered", seed, len(hot), len(tiered))
		}
		for i := range hot {
			if hot[i] != tiered[i] {
				t.Fatalf("seed %d decision %d diverged:\n  hot:    %s\n  tiered: %s",
					seed, i, hot[i], tiered[i])
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
