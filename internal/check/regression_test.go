package check

import "testing"

// Pinned regression seeds. The first full oracle run (200 sweep
// workloads, 40 tiny populations, 6 concurrent schedules) surfaced no
// index disagreement, so per policy the passing run is frozen here as
// explicit WorkloadConfig literals. These must never be regenerated or
// renumbered: if an index change makes one diverge, that seed is the
// reproducer. New divergences found later get appended, not merged into
// the sweeps.
var pinnedWorkloads = []WorkloadConfig{
	// Extremes of the passing sweep in TestDifferentialOracle.
	{Seed: 1, Users: 9, Samples: 200, BoxQueries: 10, KNNQueries: 10, TimeScale: 0.5},
	{Seed: 64, Users: 32, Samples: 440, BoxQueries: 10, KNNQueries: 10, TimeScale: 0.25},
	{Seed: 199, Users: 47, Samples: 440, BoxQueries: 10, KNNQueries: 10, TimeScale: 1.0},
	// Tiny-population corner from TestDifferentialOracleTinyPopulations.
	{Seed: 3, Users: 1, Samples: 4, BoxQueries: 4, KNNQueries: 6, MaxK: 5},
	{Seed: 38, Users: 3, Samples: 4, BoxQueries: 4, KNNQueries: 6, MaxK: 5},
	// Concurrent-schedule seeds from TestConcurrentOracle (replayed
	// sequentially here; TestConcurrentOracle keeps the racing replay).
	{Seed: 1001, Users: 24, Samples: 600, BoxQueries: 8, KNNQueries: 8},
	{Seed: 1006, Users: 24, Samples: 600, BoxQueries: 8, KNNQueries: 8},
}

func TestPinnedRegressionSeeds(t *testing.T) {
	for _, cfg := range pinnedWorkloads {
		if divs := RunDifferential(NewWorkload(cfg)); len(divs) > 0 {
			for _, d := range divs {
				t.Errorf("pinned cfg %+v: %s", cfg, d)
			}
			t.Fatalf("pinned regression seed %d diverged", cfg.Seed)
		}
	}
}
