package check

import (
	"fmt"
	"math/rand"
	"sort"

	"histanon/internal/anon"
	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/stindex"
	"histanon/internal/storage"
)

// StorageOracle drives one seeded workload through two PHL views that
// Algorithm 1 must not be able to tell apart: an all-hot in-memory
// store paired with a grid index, and a durable TieredStore over a
// crash-simulating MemFS with demotion tuned so most of the history
// lives in cold on-disk runs. Midway through ingestion the tiered
// store is closed and recovered from its snapshot chain and WAL tail,
// so every oracle run also certifies that recovery is observationally
// lossless. Check then cross-examines the two views: per-user
// histories, box and KNN queries, LT-consistency, HistoricalLevel and
// whole Algorithm 1 generalizations must agree byte for byte.
type StorageOracle struct {
	Cfg PopulationConfig
	// Hot is the baseline view: phl.Store plus stindex grid.
	Hot *Population
	// Tiered is the view under test; Store and Index are both the
	// TieredStore (the ts.Server wiring when Config.Index is nil).
	Tiered *Population
	// FS is the simulated disk under the tiered store.
	FS *storage.MemFS

	store *storage.TieredStore
	rng   *rand.Rand
	divs  []Divergence
}

// storageOracleOptions returns the aggressive demotion configuration:
// frequent snapshots, a hot window far shorter than the workload's
// time span, a short compaction chain and a cold cache small enough to
// miss. The grid parameters match the ts.Server defaults so decision
// legs compare like with like.
func storageOracleOptions(fsys storage.FS, span int64) storage.Options {
	return storage.Options{
		Dir:              "oracle",
		FS:               fsys,
		SnapshotEvery:    24,
		HotWindow:        span / 16,
		MaxDeltas:        3,
		ColdCacheEntries: 4,
		GridCell:         500,
		GridBucket:       900,
	}
}

// NewStorageOracle builds both views from cfg's seed and ingests the
// same interleaved workload into each, restarting the tiered store
// from disk halfway through. Trajectories are the same random walks
// NewPopulation uses, but records are replayed in global time order so
// the demotion watermark sweeps past every user's early samples.
func NewStorageOracle(cfg PopulationConfig) (*StorageOracle, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	type rec struct {
		u phl.UserID
		p geo.STPoint
	}
	var recs []rec
	half := cfg.Extent / 2
	step := cfg.Extent / 20
	for u := 0; u < cfg.Users; u++ {
		pos := geo.Point{X: rng.Float64()*cfg.Extent - half, Y: rng.Float64()*cfg.Extent - half}
		for i := 0; i < cfg.SamplesPerUser; i++ {
			pos.X = clamp(pos.X+rng.NormFloat64()*step, -half, half)
			pos.Y = clamp(pos.Y+rng.NormFloat64()*step, -half, half)
			t := int64(float64(cfg.TimeSpan) * (float64(i) + rng.Float64()) / float64(cfg.SamplesPerUser))
			recs = append(recs, rec{u: phl.UserID(u), p: geo.STPoint{P: pos, T: t}})
		}
	}
	// Stable by time: per-user order (already time-sorted) survives,
	// the global stream becomes time-monotone.
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].p.T < recs[j].p.T })

	metric := geo.STMetric{TimeScale: cfg.TimeScale}
	o := &StorageOracle{
		Cfg: cfg,
		Hot: &Population{
			Cfg:    cfg,
			Store:  phl.NewStore(),
			Index:  stindex.NewGrid(500, 900),
			Metric: metric,
			Rng:    rng,
		},
		FS:  storage.NewMemFS(),
		rng: rng,
	}
	opts := storageOracleOptions(o.FS, cfg.TimeSpan)
	st, _, err := storage.Open(opts)
	if err != nil {
		return nil, fmt.Errorf("open tiered store: %w", err)
	}
	o.store = st
	o.Tiered = &Population{Cfg: cfg, Store: st, Index: st, Metric: metric, Rng: rng}

	for i, r := range recs {
		o.Hot.Record(r.u, r.p)
		o.Tiered.Record(r.u, r.p)
		if i == len(recs)/2 {
			// Clean restart mid-workload: recovery must hand back the
			// exact same observable PHL before ingestion continues.
			if err := o.store.Close(); err != nil {
				return nil, fmt.Errorf("close tiered store: %w", err)
			}
			st, _, err := storage.Open(opts)
			if err != nil {
				return nil, fmt.Errorf("recover tiered store: %w", err)
			}
			o.store = st
			o.Tiered.Store, o.Tiered.Index = st, st
		}
	}
	return o, nil
}

// Store returns the live TieredStore under test (it changes identity
// across the mid-workload restart).
func (o *StorageOracle) Store() *storage.TieredStore { return o.store }

// Close releases the tiered store's file handles.
func (o *StorageOracle) Close() error { return o.store.Close() }

func (o *StorageOracle) fail(kind string, q int, format string, args ...any) {
	o.divs = append(o.divs, Divergence{Index: "tiered", Kind: kind, Query: q,
		Detail: fmt.Sprintf(format, args...)})
}

// randomBox derives a random spatio-temporal box over the populated
// region; roughly half the boxes are narrow enough to be selective.
func (o *StorageOracle) randomBox() geo.STBox {
	half := o.Cfg.Extent / 2
	w := o.Cfg.Extent * (0.05 + 0.45*o.rng.Float64())
	h := o.Cfg.Extent * (0.05 + 0.45*o.rng.Float64())
	cx := o.rng.Float64()*o.Cfg.Extent - half
	cy := o.rng.Float64()*o.Cfg.Extent - half
	t0 := int64(o.rng.Float64() * float64(o.Cfg.TimeSpan))
	dt := 1 + int64(o.rng.Float64()*float64(o.Cfg.TimeSpan)/4)
	return geo.STBox{
		Area: geo.Rect{MinX: cx - w/2, MinY: cy - h/2, MaxX: cx + w/2, MaxY: cy + h/2},
		Time: geo.Interval{Start: t0, End: t0 + dt},
	}
}

func sortedUsers(ids []phl.UserID) []phl.UserID {
	out := append([]phl.UserID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalUsers(a, b []phl.UserID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalPoints(a, b []geo.STPoint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Check runs every cross-examination and returns the divergences; an
// empty slice means the tiered store is observationally identical to
// the all-hot baseline. queries sizes the randomized probe mix.
func (o *StorageOracle) Check(queries int) []Divergence {
	o.divs = nil
	faults0 := o.store.StorageFaults()
	o.checkVacuity()
	o.checkHistories()
	for qi := 0; qi < queries; qi++ {
		o.checkBoxQuery(qi)
		o.checkKNNQuery(qi)
		o.checkHistoricalLevel(qi)
	}
	o.checkGeneralizations(queries)
	// The probes above all ran against a healthy disk: any fault
	// counted during them is a cold-path defect, not an injection.
	if moved := o.store.StorageFaults() - faults0; moved != 0 {
		o.fail("faults", -1, "healthy probes counted %d storage faults", moved)
	}
	return o.divs
}

// checkVacuity guards the oracle itself: if demotion never happened
// the run compared an all-hot store against an all-hot store and
// proved nothing.
func (o *StorageOracle) checkVacuity() {
	st := o.store.Stats()
	if st.DemotedSamples == 0 || st.ColdSamples == 0 {
		o.fail("vacuous", -1,
			"no samples demoted (demoted=%d cold=%d): the oracle run exercises no cold path",
			st.DemotedSamples, st.ColdSamples)
	}
}

// checkHistories compares the full PHL: user enumeration order and
// every sample of every per-user history, byte for byte.
func (o *StorageOracle) checkHistories() {
	hu, tu := o.Hot.Store.Users(), o.Tiered.Store.Users()
	if !equalUsers(hu, tu) {
		o.fail("users", -1, "user enumeration differs: hot %v, tiered %v", hu, tu)
		return
	}
	if h, t := o.Hot.Store.NumSamples(), o.Tiered.Store.NumSamples(); h != t {
		o.fail("samples", -1, "NumSamples: hot %d, tiered %d", h, t)
	}
	for _, u := range hu {
		hp := o.Hot.Store.History(u).Points()
		tp := o.Tiered.Store.History(u).Points()
		if !equalPoints(hp, tp) {
			o.fail("history", -1, "history of %v differs: hot %d pts %v, tiered %d pts %v",
				u, len(hp), hp, len(tp), tp)
		}
	}
}

// checkBoxQuery compares the store-level and index-level box queries
// plus LT-consistency over a random box chain.
func (o *StorageOracle) checkBoxQuery(qi int) {
	b := o.randomBox()
	if h, t := sortedUsers(o.Hot.Store.UsersIn(b)), sortedUsers(o.Tiered.Store.UsersIn(b)); !equalUsers(h, t) {
		o.fail("box-users", qi, "UsersIn(%v): hot %v, tiered %v", b, h, t)
	}
	if h, t := o.Hot.Store.CountUsersIn(b), o.Tiered.Store.CountUsersIn(b); h != t {
		o.fail("box-count", qi, "CountUsersIn(%v): hot %d, tiered %d", b, h, t)
	}
	if h, t := sortedUsers(o.Hot.Index.UsersInBox(b)), sortedUsers(o.Tiered.Index.UsersInBox(b)); !equalUsers(h, t) {
		o.fail("index-box-users", qi, "UsersInBox(%v): hot %v, tiered %v", b, h, t)
	}
	if h, t := o.Hot.Index.CountUsersInBox(b), o.Tiered.Index.CountUsersInBox(b); h != t {
		o.fail("index-box-count", qi, "CountUsersInBox(%v): hot %d, tiered %d", b, h, t)
	}
	chain := []geo.STBox{b}
	for o.rng.Intn(2) == 0 && len(chain) < 4 {
		chain = append(chain, o.randomBox())
	}
	h := sortedUsers(o.Hot.Store.LTConsistentUsers(chain))
	t := sortedUsers(o.Tiered.Store.LTConsistentUsers(chain))
	if !equalUsers(h, t) {
		o.fail("lt-consistent", qi, "LTConsistentUsers(%d boxes): hot %v, tiered %v", len(chain), h, t)
	}
}

// checkKNNQuery compares KNearestUsers answers — user identity, the
// witness sample and its distance. Coordinates are continuous, so
// exact distance ties (the one case the tiered KNN may legitimately
// reorder) have probability zero.
func (o *StorageOracle) checkKNNQuery(qi int) {
	q := o.Hot.RandomQuery()
	k := 1 + o.rng.Intn(o.Cfg.Users+1)
	var exclude map[phl.UserID]bool
	if o.rng.Intn(2) == 0 {
		exclude = map[phl.UserID]bool{phl.UserID(o.rng.Intn(o.Cfg.Users)): true}
	}
	h := o.Hot.Index.KNearestUsers(q, k, o.Hot.Metric, exclude)
	t := o.Tiered.Index.KNearestUsers(q, k, o.Tiered.Metric, exclude)
	if len(h) != len(t) {
		o.fail("knn-len", qi, "KNearestUsers(%v, k=%d): hot %d results, tiered %d", q, k, len(h), len(t))
		return
	}
	for i := range h {
		if h[i].User != t[i].User || h[i].Point != t[i].Point {
			o.fail("knn", qi, "KNearestUsers(%v, k=%d)[%d]: hot %v@%v, tiered %v@%v",
				q, k, i, h[i].User, h[i].Point, t[i].User, t[i].Point)
		}
	}
}

// checkHistoricalLevel compares Def. 8's level for a random issuer
// over a random request-context chain — the quantity the tiered
// store's cold tier must never inflate or deflate.
func (o *StorageOracle) checkHistoricalLevel(qi int) {
	issuer := phl.UserID(o.rng.Intn(o.Cfg.Users))
	boxes := []geo.STBox{o.randomBox()}
	for o.rng.Intn(2) == 0 && len(boxes) < 4 {
		boxes = append(boxes, o.randomBox())
	}
	h := anon.HistoricalLevel(o.Hot.Store, issuer, boxes)
	t := anon.HistoricalLevel(o.Tiered.Store, issuer, boxes)
	if h != t {
		o.fail("historical-level", qi,
			"HistoricalLevel(%v, %d boxes): hot %d, tiered %d", issuer, len(boxes), h, t)
	}
}

// checkGeneralizations runs whole Algorithm 1 invocations against both
// views — same query, issuer, k, tolerance and randomizer stream — and
// demands identical Results: box, witnesses, witness samples and the
// HK-anonymity verdict.
func (o *StorageOracle) checkGeneralizations(n int) {
	// Identical non-zero seeds: both randomizers advance in lockstep.
	rseed := o.Cfg.Seed*2 + 1
	gh := o.Hot.Generalizer(rseed)
	gt := o.Tiered.Generalizer(rseed)
	for qi := 0; qi < n; qi++ {
		q := o.Hot.RandomQuery()
		issuer := phl.UserID(o.rng.Intn(o.Cfg.Users))
		k := 1 + o.rng.Intn(o.Cfg.Users+1)
		tol := generalize.Unlimited
		if o.rng.Intn(3) == 0 {
			tol = generalize.Tolerance{
				MaxWidth:    o.Cfg.Extent / 4,
				MaxHeight:   o.Cfg.Extent / 4,
				MaxDuration: o.Cfg.TimeSpan / 4,
			}
		}
		rh, okh := gh.FirstElement(q, issuer, k, tol)
		rt, okt := gt.FirstElement(q, issuer, k, tol)
		if okh != okt {
			o.fail("gen-ok", qi, "FirstElement(%v, k=%d) ok: hot %v, tiered %v", q, k, okh, okt)
			continue
		}
		if !okh {
			continue
		}
		if rh.Box != rt.Box {
			o.fail("gen-box", qi, "FirstElement(%v, k=%d) box: hot %v, tiered %v", q, k, rh.Box, rt.Box)
		}
		if rh.HKAnonymity != rt.HKAnonymity {
			o.fail("gen-hk", qi, "FirstElement(%v, k=%d) HKAnonymity: hot %v, tiered %v",
				q, k, rh.HKAnonymity, rt.HKAnonymity)
		}
		if !equalUsers(rh.Users, rt.Users) {
			o.fail("gen-witnesses", qi, "FirstElement(%v, k=%d) witnesses: hot %v, tiered %v",
				q, k, rh.Users, rt.Users)
		}
		if !equalPoints(rh.Points, rt.Points) {
			o.fail("gen-points", qi, "FirstElement(%v, k=%d) witness samples: hot %v, tiered %v",
				q, k, rh.Points, rt.Points)
		}
	}
}

// RunStorageDifferential is the one-call form: build the twin views
// for cfg, cross-examine them with the given number of randomized
// probes, and return all divergences. An empty slice means the tiered
// store — including its mid-workload crash recovery — answered every
// probe exactly like the all-hot baseline.
func RunStorageDifferential(cfg PopulationConfig, queries int) ([]Divergence, error) {
	o, err := NewStorageOracle(cfg)
	if err != nil {
		return nil, err
	}
	defer o.Close()
	return o.Check(queries), nil
}
