package check

import (
	"strings"
	"testing"
)

// TestCodecDifferential sweeps 200 seeded workloads through both codec
// legs. Every leg pair must agree byte for byte on decisions, forwarded
// requests, responses, audit logs (trace_ids included), achieved-k
// buckets and counters — no seed may be skipped.
func TestCodecDifferential(t *testing.T) {
	const workloads = 200
	forwarded, responses := 0, 0
	for seed := int64(1); seed <= workloads; seed++ {
		w := NewCodecWorkload(CodecWorkloadConfig{
			Seed:      seed,
			Users:     8 + int(seed%24),
			Locations: 120 + int(seed%5)*40,
			Calls:     20 + int(seed%3)*10,
			TimeScale: 0.25 * float64(1+seed%4),
		})
		text := runTextLeg(w, false)
		bin := runBinaryLeg(w, false)
		if divs := diffCodecRuns(text, bin); len(divs) > 0 {
			for _, d := range divs[:min(len(divs), 10)] {
				t.Errorf("seed %d: %s/%s query %d: %s", seed, d.Index, d.Kind, d.Query, d.Detail)
			}
			t.Fatalf("seed %d: %d codec divergences", seed, len(divs))
		}
		forwarded += len(text.requests)
		responses += len(text.responses)
		if calls := len(filterCalls(w.Ops)); len(text.decisions) != calls {
			t.Fatalf("seed %d: %d decisions for %d calls", seed, len(text.decisions), calls)
		}
	}
	// Teeth check: a sweep where nothing is ever forwarded (or answered)
	// would pass vacuously.
	if forwarded == 0 || responses == 0 {
		t.Fatalf("sweep forwarded %d requests, delivered %d responses — workloads are toothless", forwarded, responses)
	}
	t.Logf("200 seeds: %d forwarded requests, %d responses compared", forwarded, responses)
}

func filterCalls(ops []CodecOp) []CodecOp {
	var out []CodecOp
	for _, op := range ops {
		if op.Call {
			out = append(out, op)
		}
	}
	return out
}

// TestCodecConcurrent replays workloads with concurrent crowd ingest:
// the text leg dispatches per-user goroutines directly while the binary
// leg pushes each user's stream through its own wire.Batcher into batch
// decoding. Run under -race, the batcher interleaving is the test.
func TestCodecConcurrent(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= seeds; seed++ {
		w := NewCodecWorkload(CodecWorkloadConfig{
			Seed:      1000 + seed,
			Users:     12 + int(seed%8),
			Locations: 240,
			Calls:     24,
		})
		if divs := diffCodecRuns(runTextLeg(w, true), runBinaryLeg(w, true)); len(divs) > 0 {
			for _, d := range divs[:min(len(divs), 10)] {
				t.Errorf("seed %d: %s/%s query %d: %s", seed, d.Index, d.Kind, d.Query, d.Detail)
			}
			t.Fatalf("seed %d: %d divergences under concurrent ingest", seed, len(divs))
		}
	}
}

// TestCodecOracleDetectsDivergence proves the comparison has teeth:
// every observable channel, when perturbed, must be flagged.
func TestCodecOracleDetectsDivergence(t *testing.T) {
	w := NewCodecWorkload(CodecWorkloadConfig{Seed: 7})
	text := runTextLeg(w, false)
	if len(text.decisions) == 0 || len(text.requests) == 0 ||
		len(text.traceIDs) == 0 || len(text.responses) == 0 {
		t.Fatalf("baseline run is empty: %d decisions %d requests %d trace ids %d responses",
			len(text.decisions), len(text.requests), len(text.traceIDs), len(text.responses))
	}

	sabotage := []struct {
		kind string
		mut  func(r *codecRun)
	}{
		{"decision", func(r *codecRun) { r.decisions[0] += " tampered" }},
		{"request", func(r *codecRun) { r.requests[len(r.requests)-1] = "req 0" }},
		{"response", func(r *codecRun) { r.responses[0] = strings.ToUpper(r.responses[0]) }},
		{"audit", func(r *codecRun) { r.audit = strings.Replace(r.audit, `"kind"`, `"KIND"`, 1) }},
		{"audit-trace-id", func(r *codecRun) { r.traceIDs[0] = "deadbeef" }},
		{"achieved-k", func(r *codecRun) { r.achievedK[0]++ }},
		{"counters", func(r *codecRun) { r.counters += " bogus=1" }},
	}
	for _, s := range sabotage {
		bad := *text
		bad.decisions = append([]string(nil), text.decisions...)
		bad.requests = append([]string(nil), text.requests...)
		bad.responses = append([]string(nil), text.responses...)
		bad.traceIDs = append([]string(nil), text.traceIDs...)
		bad.achievedK = append([]int64(nil), text.achievedK...)
		s.mut(&bad)
		divs := diffCodecRuns(text, &bad)
		found := false
		for _, d := range divs {
			if d.Kind == s.kind {
				found = true
			}
		}
		if !found {
			t.Errorf("sabotaged %s went undetected (got %v)", s.kind, divs)
		}
	}

	// And an honest self-comparison is clean.
	if divs := diffCodecRuns(text, runTextLeg(w, false)); len(divs) != 0 {
		t.Fatalf("text leg does not agree with itself: %v", divs)
	}
}

// TestCodecWorkloadDeterminism pins that a workload is a pure function
// of its config — the property every comparison above leans on.
func TestCodecWorkloadDeterminism(t *testing.T) {
	a := NewCodecWorkload(CodecWorkloadConfig{Seed: 42})
	b := NewCodecWorkload(CodecWorkloadConfig{Seed: 42})
	if len(a.Locs) != len(b.Locs) || len(a.Ops) != len(b.Ops) {
		t.Fatalf("lengths differ: %d/%d vs %d/%d", len(a.Locs), len(a.Ops), len(b.Locs), len(b.Ops))
	}
	for i := range a.Ops {
		x, y := a.Ops[i], b.Ops[i]
		if x.Call != y.Call || x.User != y.User || x.P != y.P || x.Service != y.Service ||
			x.Parent != y.Parent {
			t.Fatalf("op %d differs: %+v vs %+v", i, x, y)
		}
	}
	c := NewCodecWorkload(CodecWorkloadConfig{Seed: 43})
	same := len(a.Ops) == len(c.Ops)
	if same {
		for i := range a.Ops {
			if a.Ops[i].P != c.Ops[i].P {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 generated identical schedules")
	}
}
