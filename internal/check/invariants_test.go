package check

import (
	"math/rand"
	"testing"

	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/mixzone"
	"histanon/internal/phl"
	"histanon/internal/stindex"
)

// scenarioTolerance derives a tolerance for a scenario: unlimited for a
// third of the seeds, tight for a third, loose otherwise — the checkers
// must hold on every branch of Algorithm 1's lines 8–13.
func scenarioTolerance(rng *rand.Rand, extent float64, span int64) generalize.Tolerance {
	switch rng.Intn(3) {
	case 0:
		return generalize.Unlimited
	case 1:
		return generalize.Tolerance{
			MaxWidth:    extent / 8,
			MaxHeight:   extent / 8,
			MaxDuration: span / 8,
		}
	default:
		return generalize.Tolerance{
			MaxWidth:    extent * 2,
			MaxHeight:   extent * 2,
			MaxDuration: span * 2,
		}
	}
}

// TestAlgorithm1FirstElementProperties checks the Algorithm 1 contract
// (box-enclosure, tolerance compliance, HistoricalLevel >= k) across
// 120 random scenarios, with and without the §7 randomizer, on both a
// brute-force and a grid index.
func TestAlgorithm1FirstElementProperties(t *testing.T) {
	mkGrid := func() stindex.Index { return stindex.NewGrid(250, 900) }
	for seed := int64(1); seed <= 120; seed++ {
		mk := func() stindex.Index { return stindex.NewBrute() }
		if seed%2 == 0 {
			mk = mkGrid
		}
		pop := NewPopulation(PopulationConfig{Seed: seed, Users: 4 + int(seed%30)}, mk)
		g := pop.Generalizer(seed % 3) // seed%3==0: no randomizer
		tol := scenarioTolerance(pop.Rng, pop.Cfg.Extent, pop.Cfg.TimeSpan)
		k := 1 + pop.Rng.Intn(pop.Cfg.Users+2) // sometimes unsatisfiable
		issuer := phl.UserID(pop.Rng.Intn(pop.Cfg.Users))
		for trial := 0; trial < 4; trial++ {
			if err := CheckFirstElement(pop, g, pop.RandomQuery(), issuer, k, tol); err != nil {
				t.Fatalf("seed %d trial %d (k=%d, tol=%v): %v", seed, trial, k, tol, err)
			}
		}
	}
}

// TestAlgorithm1SessionProperties drives whole traces through the §6.2
// session layer and checks Def. 8 end to end: all-HK traces must
// actually achieve historical k-anonymity against the PHL store.
func TestAlgorithm1SessionProperties(t *testing.T) {
	for seed := int64(1); seed <= 100; seed++ {
		pop := NewPopulation(PopulationConfig{Seed: 500 + seed, Users: 6 + int(seed%24)}, nil)
		g := pop.Generalizer(seed % 2)
		target := 2 + pop.Rng.Intn(6)
		sched := generalize.DecaySchedule{
			Target:  target,
			Initial: target + pop.Rng.Intn(4),
			Step:    pop.Rng.Intn(2),
		}
		tol := scenarioTolerance(pop.Rng, pop.Cfg.Extent, pop.Cfg.TimeSpan)
		issuer := phl.UserID(pop.Rng.Intn(pop.Cfg.Users))
		trace := make([]geo.STPoint, 1+pop.Rng.Intn(5))
		for i := range trace {
			trace[i] = pop.RandomQuery()
		}
		if err := CheckSession(pop, g, issuer, trace, sched, tol); err != nil {
			t.Fatalf("seed %d (target=%d, tol=%v, trace=%d): %v", seed, target, tol, len(trace), err)
		}
	}
}

// TestGeneralizationKMonotone checks that a larger k never yields a
// smaller box or anonymity set, across 100 scenarios and both index
// families feeding Algorithm 1.
func TestGeneralizationKMonotone(t *testing.T) {
	for seed := int64(1); seed <= 100; seed++ {
		mk := func() stindex.Index { return stindex.NewBrute() }
		if seed%2 == 0 {
			mk = func() stindex.Index { return stindex.NewGrid(300, 1200) }
		}
		pop := NewPopulation(PopulationConfig{Seed: 9000 + seed, Users: 5 + int(seed%20)}, mk)
		issuer := phl.UserID(pop.Rng.Intn(pop.Cfg.Users))
		for trial := 0; trial < 3; trial++ {
			if err := CheckKMonotone(pop, pop.RandomQuery(), issuer, pop.Cfg.Users+2); err != nil {
				t.Fatalf("seed %d trial %d: %v", seed, trial, err)
			}
		}
	}
}

// TestPseudonymNeverReused is the §6.3 unlinking property: across many
// users, rotations and concurrent workers, no pseudonym is ever issued
// twice and retired pseudonyms stay resolvable to their owner.
func TestPseudonymNeverReused(t *testing.T) {
	if err := CheckPseudonymRotation(60, 12, 6); err != nil {
		t.Fatal(err)
	}
	if err := CheckPseudonymRotation(1, 200, 1); err != nil {
		t.Fatal(err)
	}
}

// TestMixZonePlanInvariants checks on-demand mix-zone plans over random
// populations: suppression windows anchored at the request, zones
// covering the request point, distinct non-issuer participants.
func TestMixZonePlanInvariants(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		pop := NewPopulation(PopulationConfig{Seed: 70000 + seed, Users: 4 + int(seed%16)}, nil)
		od := mixzone.OnDemand{
			Quiet:  pop.Rng.Int63n(900),
			Margin: pop.Rng.Float64() * 100,
		}
		if seed%2 == 0 {
			od.FallbackRadius = 200
		}
		q := pop.RandomQuery()
		issuer := phl.UserID(pop.Rng.Intn(pop.Cfg.Users))
		k := 1 + pop.Rng.Intn(6)
		if err := CheckMixZonePlan(pop, issuer, q.P, q.T, k, od); err != nil {
			t.Fatalf("seed %d (k=%d): %v", seed, k, err)
		}
	}
}
