package check

import (
	"encoding/binary"
	"testing"

	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/phl"
)

// fuzzBytes pads data so shape bytes always exist; the first 8 bytes
// seed the workload RNG, the rest select sizes. Fuzzed inputs therefore
// explore both the RNG stream and the workload geometry.
func fuzzBytes(data []byte) []byte {
	for len(data) < 16 {
		data = append(data, 0)
	}
	return data
}

// FuzzIndexAgreement is the differential oracle as a native fuzz
// target: any input on which a non-brute index disagrees with brute
// force becomes a crasher and, once fixed, a regression corpus entry.
func FuzzIndexAgreement(f *testing.F) {
	f.Add([]byte("index-agreement"))
	f.Add([]byte("degenerate boxes + knn over population"))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		data = fuzzBytes(data)
		cfg := WorkloadConfig{
			Seed:       int64(binary.LittleEndian.Uint64(data[:8])),
			Users:      1 + int(data[8]%32),
			Samples:    10 + int(data[9]),
			BoxQueries: 1 + int(data[10]%6),
			KNNQueries: 1 + int(data[11]%6),
			MaxK:       1 + int(data[12]%16),
			TimeScale:  0.25 * float64(1+data[13]%8),
		}
		w := NewWorkload(cfg)
		for _, d := range RunDifferential(w) {
			t.Errorf("%s", d)
		}
	})
}

// FuzzAlgorithm1Invariants fuzzes the privacy layer end to end: random
// populations, k values, tolerances and traces, all checked against the
// Algorithm 1 / Def. 8 contract.
func FuzzAlgorithm1Invariants(f *testing.F) {
	f.Add([]byte("algorithm-one"))
	f.Add([]byte("tight tolerance tiny population"))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 200, 3, 64, 5, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		data = fuzzBytes(data)
		pop := NewPopulation(PopulationConfig{
			Seed:           int64(binary.LittleEndian.Uint64(data[:8])),
			Users:          1 + int(data[8]%32),
			SamplesPerUser: 1 + int(data[9]%10),
		}, nil)
		k := 1 + int(data[10]%36) // may exceed the population
		issuer := phl.UserID(int(data[11]) % pop.Cfg.Users)
		var tol generalize.Tolerance
		if data[12]%2 == 1 {
			tol = generalize.Tolerance{
				MaxWidth:    float64(1+data[13]) * 4,
				MaxHeight:   float64(1+data[14]) * 4,
				MaxDuration: int64(1+data[15]) * 8,
			}
		}
		g := pop.Generalizer(int64(data[12] % 3))
		if err := CheckFirstElement(pop, g, pop.RandomQuery(), issuer, k, tol); err != nil {
			t.Fatal(err)
		}
		trace := make([]geo.STPoint, 1+int(data[14]%4))
		for i := range trace {
			trace[i] = pop.RandomQuery()
		}
		sched := generalize.DecaySchedule{Target: 1 + int(data[10]%6), Initial: 1 + int(data[13]%8)}
		if err := CheckSession(pop, g, issuer, trace, sched, tol); err != nil {
			t.Fatal(err)
		}
		if err := CheckKMonotone(pop, pop.RandomQuery(), issuer, 1+int(data[15]%10)); err != nil {
			t.Fatal(err)
		}
	})
}
