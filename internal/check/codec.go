package check

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"histanon/internal/geo"
	"histanon/internal/obs"
	"histanon/internal/phl"
	"histanon/internal/tgran"
	"histanon/internal/ts"
	"histanon/internal/wire"
)

// Codec differential oracle: one seeded workload of location updates and
// service calls is run twice against two identically configured trusted
// servers. The text leg dispatches ops directly and round-trips every
// TS→SP request and SP→TS response through the text codec
// (wire.EncodeRequest / wire.ParseRequest); the binary leg pushes the
// same ops through binary frames, batch framing and the pooled binary
// parser, and round-trips the TS↔SP traffic through the binary codec.
// The two legs must be observationally identical: byte-identical
// decisions, forwarded requests, responses, audit logs (including
// trace_ids) and achieved-k histograms. Any difference is a codec bug —
// the binary wire format silently altering what the privacy pipeline
// sees or says.
//
// Determinism notes (why byte-identical comparison is sound):
//   - pseudonym.Manager mints sequence-numbered pseudonyms, so equal
//     rotation histories yield equal pseudonyms;
//   - every service call carries a seeded parent trace context, and the
//     audit log records the parent's trace id, so trace_ids match even
//     though span ids are freshly minted;
//   - trajectories are continuous random walks with no duplicated or
//     lattice-snapped samples, so k-nearest distances are distinct and
//     query results do not depend on index insertion order — which is
//     what makes the concurrent-ingest schedule comparable at all.

// CodecWorkloadConfig parameterizes one codec workload. The zero value
// of any field selects a default, so {Seed} alone is reproducible.
type CodecWorkloadConfig struct {
	// Seed drives every random choice.
	Seed int64
	// Users is the population size.
	Users int
	// Locations is the number of plain location updates.
	Locations int
	// Calls is the number of service calls issued after the crowd forms.
	Calls int
	// Extent is the side (meters) of the roamed square.
	Extent float64
	// TimeSpan is the schedule duration in seconds.
	TimeSpan int64
	// TimeScale is the metric's seconds-to-meters factor.
	TimeScale float64
}

func (c CodecWorkloadConfig) withDefaults() CodecWorkloadConfig {
	if c.Users <= 0 {
		c.Users = 16
	}
	if c.Locations <= 0 {
		c.Locations = 200
	}
	if c.Calls <= 0 {
		c.Calls = 40
	}
	if c.Extent <= 0 {
		c.Extent = 1500
	}
	if c.TimeSpan <= 0 {
		c.TimeSpan = 3600
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 0.5
	}
	return c
}

// CodecOp is one scheduled operation: a location update (Call == false)
// or a service call.
type CodecOp struct {
	Call    bool
	User    phl.UserID
	P       geo.STPoint
	Service string
	Data    map[string]string
	// Parent is the call's deterministic upstream trace context (calls
	// only; its trace id is what audit records must agree on).
	Parent obs.TraceContext
}

// CodecWorkload is a reproducible op schedule: Locations location
// updates (the crowd), then Calls service calls interleaved with more
// movement. The location prefix is partitionable by user — per-user
// order is trajectory order — which the concurrent schedule exploits.
type CodecWorkload struct {
	Cfg  CodecWorkloadConfig
	Locs []CodecOp // phase 1: crowd formation, partitionable by user
	Ops  []CodecOp // phase 2: service calls (and their movement), in order
}

var codecServices = []string{"navigation", "weather", "poi"}

// codecLBQIDSpec is the pattern some users carry; the schedule's
// timestamps start at 06:00 so calls land inside the element window.
const codecLBQIDSpec = `
lbqid "hotspot" {
    element area [0,400]x[0,400] time [06:00,10:00]
    recurrence 1.Days
}`

// NewCodecWorkload generates the schedule determined by cfg. All
// coordinates are continuous (never snapped, never duplicated) so
// nearest-neighbor distances are tie-free.
func NewCodecWorkload(cfg CodecWorkloadConfig) *CodecWorkload {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &CodecWorkload{Cfg: cfg}

	base := 6 * tgran.Hour // calls fall inside the LBQID element window
	half := cfg.Extent / 2
	step := cfg.Extent / 25
	pos := make([]geo.Point, cfg.Users)
	for u := range pos {
		pos[u] = geo.Point{X: rng.Float64()*cfg.Extent - half, Y: rng.Float64()*cfg.Extent - half}
	}
	tick := float64(cfg.TimeSpan) / float64(cfg.Locations+cfg.Calls)
	now := 0
	move := func(u int) geo.STPoint {
		p := pos[u]
		p.X = clamp(p.X+rng.NormFloat64()*step, -half, half)
		p.Y = clamp(p.Y+rng.NormFloat64()*step, -half, half)
		pos[u] = p
		now++
		return geo.STPoint{P: p, T: base + int64(float64(now)*tick)}
	}

	for i := 0; i < cfg.Locations; i++ {
		u := i % cfg.Users
		w.Locs = append(w.Locs, CodecOp{User: phl.UserID(u), P: move(u)})
	}
	for i := 0; i < cfg.Calls; i++ {
		u := rng.Intn(cfg.Users)
		op := CodecOp{
			Call:    true,
			User:    phl.UserID(u),
			P:       move(u),
			Service: codecServices[rng.Intn(len(codecServices))],
			Parent:  mintCodecParent(rng),
		}
		// Occasionally steer a call into the LBQID element so pattern
		// matching, session generalization and exposure all fire.
		if rng.Intn(3) == 0 {
			op.P.P = geo.Point{X: rng.Float64() * 400, Y: rng.Float64() * 400}
		}
		switch rng.Intn(4) {
		case 0: // no data
		case 1:
			op.Data = map[string]string{"q": "café & bar"}
		default:
			op.Data = map[string]string{
				"dest": fmt.Sprintf("poi-%d", rng.Intn(100)),
				"lang": "en",
			}
		}
		w.Ops = append(w.Ops, op)
		// Movement by other users between calls keeps the index evolving
		// mid-phase, so later calls see state earlier calls did not.
		for j := 0; j < 2; j++ {
			v := rng.Intn(cfg.Users)
			w.Ops = append(w.Ops, CodecOp{User: phl.UserID(v), P: move(v)})
		}
	}
	return w
}

// mintCodecParent draws a deterministic sampled-or-not trace context.
func mintCodecParent(rng *rand.Rand) obs.TraceContext {
	var tc obs.TraceContext
	for tc.TraceID == [16]byte{} {
		rng.Read(tc.TraceID[:])
	}
	for tc.SpanID == [8]byte{} {
		rng.Read(tc.SpanID[:])
	}
	if rng.Intn(2) == 0 {
		tc.Flags = obs.FlagSampled
	}
	return tc
}

// codecRun is one leg's complete observable behavior.
type codecRun struct {
	leg       string
	decisions []string // one fingerprint per call, in schedule order
	requests  []string // canonical text encoding of each forwarded request
	responses []string // canonical text encoding of each inbox delivery
	audit     string   // raw audit JSONL bytes
	traceIDs  []string // trace_id per audit event, in log order
	achievedK []int64  // obs.Observer.AchievedK bucket counts
	counters  string   // ts.Server.Counters in canonical render
	divs      []Divergence
}

func (r *codecRun) fail(kind string, q int, format string, args ...any) {
	r.divs = append(r.divs, Divergence{Index: r.leg, Kind: kind, Query: q,
		Detail: fmt.Sprintf(format, args...)})
}

// newCodecServer builds one leg's trusted server with the shared
// deterministic configuration and an audit sink into buf. The outbox
// round-trips every forwarded request and its deterministic SP response
// through roundReq/roundResp — the leg's codec under test.
func newCodecServer(w *CodecWorkload, run *codecRun, buf *bytes.Buffer,
	roundReq func(*wire.Request) (*wire.Request, error),
	roundResp func(*wire.Response) (*wire.Response, error)) *ts.Server {

	var srv *ts.Server
	out := ts.OutboxFunc(func(req *wire.Request) {
		rt, err := roundReq(req)
		if err != nil {
			run.fail("request-codec", len(run.requests), "round-trip: %v", err)
			return
		}
		text, err := wire.EncodeRequest(rt)
		if err != nil {
			run.fail("request-codec", len(run.requests), "canonical render: %v", err)
			return
		}
		run.requests = append(run.requests, text)
		resp := &wire.Response{ID: rt.ID, Service: rt.Service, Payload: map[string]string{
			"status": "ok",
			"echo":   fmt.Sprintf("%s#%d", rt.Service, rt.ID),
		}}
		back, err := roundResp(resp)
		if err != nil {
			run.fail("response-codec", len(run.responses), "round-trip: %v", err)
			return
		}
		srv.DeliverResponse(back)
	})
	srv = ts.New(ts.Config{
		Metric:        geo.STMetric{TimeScale: w.Cfg.TimeScale},
		DefaultPolicy: ts.Policy{K: 3},
	}, out)
	srv.Obs.SetAudit(obs.NewAuditLog(buf))

	levels := []ts.Level{ts.Low, ts.Medium, ts.High}
	for u := 0; u < w.Cfg.Users; u++ {
		id := phl.UserID(u)
		srv.RegisterUser(id, ts.PolicyForLevel(levels[u%len(levels)]))
		if u%4 == 0 {
			if err := srv.AddLBQIDSpec(id, codecLBQIDSpec); err != nil {
				run.fail("setup", -1, "lbqid spec: %v", err)
			}
		}
		srv.SetInbox(id, ts.InboxFunc(func(resp *wire.Response) {
			text, err := wire.EncodeResponse(resp)
			if err != nil {
				run.fail("response-codec", len(run.responses), "canonical render: %v", err)
				return
			}
			run.responses = append(run.responses, text)
		}))
	}
	return srv
}

// finish captures the post-run observable state.
func (r *codecRun) finish(srv *ts.Server, buf *bytes.Buffer) {
	if err := srv.Obs.AuditSink().Flush(); err != nil {
		r.fail("audit", -1, "flush: %v", err)
	}
	r.audit = buf.String()
	events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		r.fail("audit", -1, "read back: %v", err)
	}
	for _, e := range events {
		r.traceIDs = append(r.traceIDs, e.TraceID)
	}
	r.achievedK = srv.Obs.AchievedK.BucketCounts()
	r.counters = srv.Counters.String()
}

// fingerprint renders everything a decision tells the caller; the
// forwarded request (pseudonym, msgid, generalized context, data) is
// folded in via its canonical text encoding.
func fingerprint(i int, d ts.Decision) string {
	req := "-"
	if d.Request != nil {
		if s, err := wire.EncodeRequest(d.Request); err == nil {
			req = s
		} else {
			req = "unencodable: " + err.Error()
		}
	}
	return fmt.Sprintf("call %d fwd=%t gen=%t hk=%t lbqid=%q unlink=%t risk=%t sup=%t deg=%t(%s) qid=%t trace=%s req=%s",
		i, d.Forwarded, d.Generalized, d.HKAnonymity, d.MatchedLBQID,
		d.Unlinked, d.AtRisk, d.Suppressed, d.Degraded, d.DegradedReason,
		d.QIDExposed, d.TraceID(), req)
}

// runTextLeg executes the schedule with direct dispatch and text-codec
// round-trips of the TS↔SP traffic. When concurrent is true the
// location prefix is ingested by one goroutine per user.
func runTextLeg(w *CodecWorkload, concurrent bool) *codecRun {
	run := &codecRun{leg: "text"}
	var buf bytes.Buffer
	srv := newCodecServer(w, run, &buf,
		func(r *wire.Request) (*wire.Request, error) {
			s, err := wire.EncodeRequest(r)
			if err != nil {
				return nil, err
			}
			return wire.ParseRequest(s)
		},
		func(r *wire.Response) (*wire.Response, error) {
			s, err := wire.EncodeResponse(r)
			if err != nil {
				return nil, err
			}
			return wire.ParseResponse(s)
		})

	ingest := func(op CodecOp) {
		if !op.Call {
			srv.RecordLocation(op.User, op.P)
			return
		}
		d := srv.RequestTraced(op.User, op.P, op.Service, op.Data, op.Parent)
		run.decisions = append(run.decisions, fingerprint(len(run.decisions), d))
	}
	forEachUserStream(w.Locs, w.Cfg.Users, concurrent, ingest)
	for _, op := range w.Ops {
		ingest(op)
	}
	run.finish(srv, &buf)
	return run
}

// runBinaryLeg executes the same schedule through the binary wire
// format: ops become frames, frames flow through a wire.Batcher into
// batch decoding (the same dispatch shape as POST /v1/batch), and the
// TS↔SP traffic round-trips through the binary request/response codec
// — including the pooled zero-copy parser.
func runBinaryLeg(w *CodecWorkload, concurrent bool) *codecRun {
	run := &codecRun{leg: "binary"}
	var buf bytes.Buffer
	srv := newCodecServer(w, run, &buf,
		func(r *wire.Request) (*wire.Request, error) {
			frame, err := wire.EncodeBinaryRequest(r)
			if err != nil {
				return nil, err
			}
			// Parse twice: the plain parser feeds the comparison, the
			// pooled parser must agree with it exactly.
			plain, err := wire.ParseBinaryRequest(frame)
			if err != nil {
				return nil, err
			}
			pooled := wire.AcquireBinaryRequest()
			defer pooled.Release()
			if err := pooled.ParseFrame(frame); err != nil {
				return nil, fmt.Errorf("pooled parse disagrees: %v", err)
			}
			a, _ := wire.EncodeRequest(plain)
			b, _ := wire.EncodeRequest(&pooled.Request)
			if a != b {
				return nil, fmt.Errorf("pooled parse drift: %q vs %q", b, a)
			}
			return plain, nil
		},
		func(r *wire.Response) (*wire.Response, error) {
			frame, err := wire.EncodeBinaryResponse(r)
			if err != nil {
				return nil, err
			}
			return wire.ParseBinaryResponse(frame)
		})

	// dispatch mirrors httpapi.handleBatch's decode loop.
	dispatch := func(batch []byte, n int) error {
		dec, err := wire.NewBatchDecoder(batch)
		if err != nil {
			return err
		}
		for dec.Next() {
			switch dec.Type() {
			case wire.FrameLocation:
				l, err := wire.ParseLocationPayload(dec.Flags(), dec.Payload())
				if err != nil {
					return err
				}
				srv.RecordLocation(phl.UserID(l.User), l.Point())
			case wire.FrameServiceCall:
				c, err := wire.ParseServiceCallPayload(dec.Flags(), dec.Payload())
				if err != nil {
					return err
				}
				var parent obs.TraceContext
				if c.Traceparent != "" {
					if tc, perr := obs.ParseTraceparent(c.Traceparent); perr == nil {
						parent = tc
					}
				}
				d := srv.RequestTraced(phl.UserID(c.User), geo.STPoint{
					P: geo.Point{X: c.X, Y: c.Y}, T: c.T,
				}, c.Service, c.Data, parent)
				run.decisions = append(run.decisions, fingerprint(len(run.decisions), d))
			default:
				return fmt.Errorf("unexpected %s frame", dec.Type())
			}
		}
		return dec.Err()
	}

	encodeOp := func(dst []byte, op CodecOp) ([]byte, error) {
		if !op.Call {
			return wire.AppendLocation(dst, wire.LocationUpdate{
				User: int64(op.User), X: op.P.P.X, Y: op.P.P.Y, T: op.P.T,
			}), nil
		}
		return wire.AppendServiceCall(dst, wire.ServiceCall{
			User: int64(op.User), X: op.P.P.X, Y: op.P.P.Y, T: op.P.T,
			Service:     op.Service,
			Traceparent: op.Parent.Traceparent(),
			Data:        op.Data,
		})
	}

	// Phase 1: the location prefix flows through Batchers — one per user
	// stream — whose size/deadline policy produces multi-frame batches.
	ingestStream := func(ops []CodecOp) {
		// An hour-long deadline keeps the timer out of the deterministic
		// schedule: flushes happen on size or Close only.
		b, err := wire.NewBatcher(wire.BatcherConfig{
			MaxBytes: 512, MaxDelay: time.Hour, Flush: dispatch,
		})
		if err != nil {
			run.fail("batcher", -1, "construct: %v", err)
			return
		}
		for _, op := range ops {
			frame, err := encodeOp(nil, op)
			if err != nil {
				run.fail("encode", -1, "location frame: %v", err)
				continue
			}
			if err := b.Add(frame); err != nil {
				run.fail("batcher", -1, "add: %v", err)
			}
		}
		if err := b.Close(); err != nil {
			run.fail("batcher", -1, "close: %v", err)
		}
		st := b.Stats()
		if st.Added != st.Flushed || st.Dropped != 0 || st.Pending != 0 {
			run.fail("batcher", -1, "conservation: %+v", st)
		}
	}
	if concurrent {
		streams := partitionByUser(w.Locs, w.Cfg.Users)
		var wg sync.WaitGroup
		for _, ops := range streams {
			wg.Add(1)
			go func(ops []CodecOp) {
				defer wg.Done()
				ingestStream(ops)
			}(ops)
		}
		wg.Wait()
	} else {
		ingestStream(w.Locs)
	}

	// Phase 2: calls and their interleaved movement go one batch per op
	// so each decision lands in schedule order, as on /v1/batch.
	for _, op := range w.Ops {
		frame, err := encodeOp(nil, op)
		if err != nil {
			run.fail("encode", len(run.decisions), "op frame: %v", err)
			continue
		}
		batch, err := wire.AppendBatch(nil, 1, frame)
		if err != nil {
			run.fail("encode", len(run.decisions), "batch frame: %v", err)
			continue
		}
		if err := dispatch(batch, 1); err != nil {
			run.fail("decode", len(run.decisions), "dispatch: %v", err)
		}
	}
	run.finish(srv, &buf)
	return run
}

// forEachUserStream applies ops either in schedule order (sequential)
// or as one goroutine per user stream (concurrent), preserving per-user
// order either way.
func forEachUserStream(ops []CodecOp, users int, concurrent bool, f func(CodecOp)) {
	if !concurrent {
		for _, op := range ops {
			f(op)
		}
		return
	}
	var wg sync.WaitGroup
	for _, stream := range partitionByUser(ops, users) {
		wg.Add(1)
		go func(stream []CodecOp) {
			defer wg.Done()
			for _, op := range stream {
				f(op)
			}
		}(stream)
	}
	wg.Wait()
}

// partitionByUser splits ops into per-user streams, preserving order.
func partitionByUser(ops []CodecOp, users int) [][]CodecOp {
	streams := make([][]CodecOp, users)
	for _, op := range ops {
		streams[op.User] = append(streams[op.User], op)
	}
	var out [][]CodecOp
	for _, s := range streams {
		if len(s) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// diffCodecRuns compares the binary leg's observable behavior against
// the text leg's, byte for byte.
func diffCodecRuns(text, bin *codecRun) []Divergence {
	divs := append(append([]Divergence{}, text.divs...), bin.divs...)
	divs = append(divs, diffStrings("decision", text.decisions, bin.decisions)...)
	divs = append(divs, diffStrings("request", text.requests, bin.requests)...)
	divs = append(divs, diffStrings("response", text.responses, bin.responses)...)
	divs = append(divs, diffStrings("audit-trace-id", text.traceIDs, bin.traceIDs)...)
	if text.audit != bin.audit {
		divs = append(divs, Divergence{Index: "binary", Kind: "audit", Query: -1,
			Detail: fmt.Sprintf("audit logs differ (%d vs %d bytes): %s",
				len(text.audit), len(bin.audit), firstDiffLine(text.audit, bin.audit))})
	}
	if len(text.achievedK) != len(bin.achievedK) {
		divs = append(divs, Divergence{Index: "binary", Kind: "achieved-k", Query: -1,
			Detail: fmt.Sprintf("bucket count %d vs %d", len(bin.achievedK), len(text.achievedK))})
	} else {
		for i := range text.achievedK {
			if text.achievedK[i] != bin.achievedK[i] {
				divs = append(divs, Divergence{Index: "binary", Kind: "achieved-k", Query: i,
					Detail: fmt.Sprintf("bucket %d: %d vs text %d", i, bin.achievedK[i], text.achievedK[i])})
			}
		}
	}
	if text.counters != bin.counters {
		divs = append(divs, Divergence{Index: "binary", Kind: "counters", Query: -1,
			Detail: fmt.Sprintf("binary %q vs text %q", bin.counters, text.counters)})
	}
	return divs
}

// diffStrings compares two ordered observation sequences.
func diffStrings(kind string, want, got []string) []Divergence {
	var divs []Divergence
	if len(want) != len(got) {
		divs = append(divs, Divergence{Index: "binary", Kind: kind, Query: -1,
			Detail: fmt.Sprintf("%d observations vs text %d", len(got), len(want))})
	}
	for i := 0; i < len(want) && i < len(got); i++ {
		if want[i] != got[i] {
			divs = append(divs, Divergence{Index: "binary", Kind: kind, Query: i,
				Detail: fmt.Sprintf("binary %q vs text %q", got[i], want[i])})
		}
	}
	return divs
}

// firstDiffLine locates the first differing JSONL line for diagnostics.
func firstDiffLine(a, b string) string {
	al, bl := splitLines(a), splitLines(b)
	for i := 0; i < len(al) || i < len(bl); i++ {
		av, bv := "<missing>", "<missing>"
		if i < len(al) {
			av = al[i]
		}
		if i < len(bl) {
			bv = bl[i]
		}
		if av != bv {
			return fmt.Sprintf("line %d: text %s binary %s", i, av, bv)
		}
	}
	return "identical lines, length mismatch"
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := bytes.IndexByte([]byte(s), '\n')
		if i < 0 {
			out = append(out, s)
			break
		}
		out = append(out, s[:i])
		s = s[i+1:]
	}
	return out
}

// RunCodecDifferential runs one workload through both codecs
// sequentially and returns every observable divergence. Empty slice
// means the binary wire format is indistinguishable from the text one.
func RunCodecDifferential(w *CodecWorkload) []Divergence {
	return diffCodecRuns(runTextLeg(w, false), runBinaryLeg(w, false))
}

// RunCodecConcurrent replays the workload with the crowd-formation
// prefix ingested by one goroutine per user — through per-stream
// wire.Batchers on the binary leg — then the call phase sequentially.
// Per-user order is preserved, and tie-free trajectories make the final
// state independent of cross-user interleaving, so the two legs must
// still agree byte for byte. Run under -race: the batcher/decoder
// interleaving is part of what is being tested.
func RunCodecConcurrent(w *CodecWorkload) []Divergence {
	return diffCodecRuns(runTextLeg(w, true), runBinaryLeg(w, true))
}
