package baseline

import (
	"testing"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

func pt(x, y float64, t int64) geo.STPoint {
	return geo.STPoint{P: geo.Point{X: x, Y: y}, T: t}
}

func req(u int64, x, y float64, t int64) Request {
	return Request{User: phl.UserID(u), Point: pt(x, y, t)}
}

func TestNoOp(t *testing.T) {
	out := NoOp{}.CloakAll([]Request{req(1, 10, 20, 30)}, 5)
	if len(out) != 1 || !out[0].OK {
		t.Fatalf("out=%v", out)
	}
	if out[0].Box.Area.Area() != 0 || out[0].Box.Time.Duration() != 0 {
		t.Fatalf("noop must keep exact context: %v", out[0].Box)
	}
	if (NoOp{}).Name() != "noop" {
		t.Fatal("name")
	}
}

func TestFixedGrid(t *testing.T) {
	g := FixedGrid{Cell: 100, Window: 60}
	out := g.CloakAll([]Request{req(1, 150, 250, 75), req(2, 199, 299, 119)}, 5)
	if !out[0].OK || !out[1].OK {
		t.Fatal("fixed grid never fails")
	}
	want := geo.STBox{
		Area: geo.Rect{MinX: 100, MinY: 200, MaxX: 200, MaxY: 300},
		Time: geo.Interval{Start: 60, End: 119},
	}
	if out[0].Box != want || out[1].Box != want {
		t.Fatalf("boxes: %v / %v want %v", out[0].Box, out[1].Box, want)
	}
	if !out[0].Box.Contains(pt(150, 250, 75)) {
		t.Fatal("cell must contain the request point")
	}
	// Negative coordinates snap downward.
	out = g.CloakAll([]Request{req(1, -50, -50, -30)}, 5)
	if !out[0].Box.Contains(pt(-50, -50, -30)) {
		t.Fatalf("negative snap wrong: %v", out[0].Box)
	}
	// Defaults kick in.
	out = FixedGrid{}.CloakAll([]Request{req(1, 10, 10, 10)}, 5)
	if out[0].Box.Area.Width() != 500 {
		t.Fatalf("default cell: %v", out[0].Box)
	}
}

func ggStore() *phl.Store {
	s := phl.NewStore()
	// A dense cluster in the SW corner of a 1000x1000 city and one
	// isolated user in the NE.
	for i := 0; i < 8; i++ {
		s.Record(phl.UserID(i), pt(50+float64(i)*10, 50, 100))
	}
	s.Record(99, pt(900, 900, 100))
	return s
}

func TestGruteserGrunwaldDescends(t *testing.T) {
	g := GruteserGrunwald{
		Store:  ggStore(),
		City:   geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000},
		Window: 50,
	}
	out := g.CloakAll([]Request{req(0, 60, 50, 100)}, 4)
	if !out[0].OK {
		t.Fatal("dense corner must cloak")
	}
	box := out[0].Box
	if !box.Area.Contains(geo.Point{X: 60, Y: 50}) {
		t.Fatalf("box %v misses requester", box)
	}
	if box.Area.Width() >= 1000 {
		t.Fatalf("must descend below the city root: %v", box)
	}
	if g.Store.CountUsersIn(box) < 4 {
		t.Fatalf("cloak covers %d users", g.Store.CountUsersIn(box))
	}
}

func TestGruteserGrunwaldIsolatedUserGetsBigBox(t *testing.T) {
	g := GruteserGrunwald{
		Store:  ggStore(),
		City:   geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000},
		Window: 50,
	}
	dense := g.CloakAll([]Request{req(0, 60, 50, 100)}, 4)[0]
	lonely := g.CloakAll([]Request{req(99, 900, 900, 100)}, 4)[0]
	if !lonely.OK {
		t.Fatal("whole city covers 9 users; k=4 must succeed at the root")
	}
	if lonely.Box.Area.Area() <= dense.Box.Area.Area() {
		t.Fatalf("isolated user must get a larger cloak: %v vs %v",
			lonely.Box.Area, dense.Box.Area)
	}
}

func TestGruteserGrunwaldFailures(t *testing.T) {
	g := GruteserGrunwald{
		Store: ggStore(),
		City:  geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000},
	}
	// k exceeds the whole population in the window.
	if out := g.CloakAll([]Request{req(0, 60, 50, 100)}, 50); out[0].OK {
		t.Fatal("k=50 with 9 users must fail")
	}
	// Request outside the city.
	if out := g.CloakAll([]Request{req(0, -10, -10, 100)}, 2); out[0].OK {
		t.Fatal("outside the city must fail")
	}
}

func TestGedikLiuNeedsActualSenders(t *testing.T) {
	g := GedikLiu{MaxRadius: 500, MaxDefer: 300}
	// Three users requesting near each other in time and space, one far.
	reqs := []Request{
		req(1, 0, 0, 0),
		req(2, 100, 0, 60),
		req(3, 0, 100, 120),
		req(4, 5000, 5000, 60),
	}
	out := g.CloakAll(reqs, 3)
	for i := 0; i < 3; i++ {
		if !out[i].OK {
			t.Fatalf("request %d must cloak: %v", i, out[i])
		}
		if !out[i].Box.Contains(reqs[i].Point) {
			t.Fatalf("request %d box misses its point", i)
		}
	}
	if out[3].OK {
		t.Fatal("isolated requester must be dropped")
	}
	// With k=4, nobody has enough companions.
	out = g.CloakAll(reqs, 4)
	for i, c := range out {
		if c.OK {
			t.Fatalf("request %d must fail at k=4", i)
		}
	}
}

func TestGedikLiuSameUserRequestsDontCount(t *testing.T) {
	g := GedikLiu{MaxRadius: 500, MaxDefer: 300}
	reqs := []Request{
		req(1, 0, 0, 0),
		req(1, 10, 0, 30), // same user again
		req(2, 20, 0, 60),
	}
	out := g.CloakAll(reqs, 3)
	if out[0].OK {
		t.Fatal("two distinct users only; k=3 must fail")
	}
	out = g.CloakAll(reqs, 2)
	if !out[0].OK {
		t.Fatal("k=2 must succeed")
	}
}

func TestAnonymizerNames(t *testing.T) {
	for _, a := range []Anonymizer{NoOp{}, FixedGrid{}, GruteserGrunwald{}, GedikLiu{}} {
		if a.Name() == "" {
			t.Fatalf("%T has no name", a)
		}
	}
}

func TestGruteserGrunwaldTemporalCloaking(t *testing.T) {
	// Users visit the area at spread-out times: the 50s window covers too
	// few, but widening (temporal cloaking) finds them.
	s := phl.NewStore()
	for i := 0; i < 5; i++ {
		s.Record(phl.UserID(i), pt(100, 100, int64(i)*1000))
	}
	g := GruteserGrunwald{
		Store:  s,
		City:   geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000},
		Window: 50,
	}
	// Without adaptation: fail.
	out := g.CloakAll([]Request{req(0, 100, 100, 0)}, 4)
	if out[0].OK {
		t.Fatal("narrow window must fail without MaxWindow")
	}
	// With adaptation: the window doubles until it covers 4 users.
	g.MaxWindow = 10000
	out = g.CloakAll([]Request{req(0, 100, 100, 0)}, 4)
	if !out[0].OK {
		t.Fatal("temporal cloaking must succeed")
	}
	if d := out[0].Box.Time.Duration(); d < 3000 {
		t.Fatalf("window too small to cover 4 users: %d", d)
	}
	if n := s.CountUsersIn(out[0].Box); n < 4 {
		t.Fatalf("cloak covers %d users", n)
	}
	// A bound below what is needed still fails.
	g.MaxWindow = 500
	out = g.CloakAll([]Request{req(0, 100, 100, 0)}, 4)
	if out[0].OK {
		t.Fatal("MaxWindow=500 cannot reach users 3000s away")
	}
}
