package baseline

import (
	"sort"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// GedikLiuEngine is the online form of the Gedik–Liu model (paper
// ref. [9]): requests are *deferred* while the engine waits for k−1
// companion requests from other users in the spatio-temporal vicinity.
// When a clique forms, all its members are released together under one
// cloak; a request whose deadline passes without a clique is dropped.
// (The batch GedikLiu type answers the same question retrospectively;
// the engine reproduces the deferral dynamics — latency and drops — of
// the real middleware.)
//
// The engine is event-time driven: Submit buffers a request, Advance
// moves the clock forward and returns everything that resolved. It is
// not safe for concurrent use.
type GedikLiuEngine struct {
	// MaxRadius bounds the spatial distance between clique members.
	// Zero means 1000 m.
	MaxRadius float64
	// MaxDefer is each request's deadline after its issue time.
	// Zero means 600 s.
	MaxDefer int64
	// K is the required clique size (distinct users).
	K int

	pending []*pendingReq
	nextSeq int64
}

type pendingReq struct {
	seq      int64
	req      Request
	deadline int64
}

// Outcome is one resolved request.
type Outcome struct {
	// Request is the original request.
	Request Request
	// Cloaked is true when a clique formed; Box is then the clique's
	// joint cloak. False means the deadline passed: the message is
	// dropped.
	Cloaked bool
	Box     geo.STBox
	// Deferral is how long the request waited (seconds).
	Deferral int64
}

// NewGedikLiuEngine returns an engine requiring cliques of k users.
func NewGedikLiuEngine(k int, maxRadius float64, maxDefer int64) *GedikLiuEngine {
	return &GedikLiuEngine{K: k, MaxRadius: maxRadius, MaxDefer: maxDefer}
}

func (e *GedikLiuEngine) maxRadius() float64 {
	if e.MaxRadius <= 0 {
		return 1000
	}
	return e.MaxRadius
}

func (e *GedikLiuEngine) maxDefer() int64 {
	if e.MaxDefer <= 0 {
		return 600
	}
	return e.MaxDefer
}

// Pending returns how many requests are currently deferred.
func (e *GedikLiuEngine) Pending() int { return len(e.pending) }

// Submit buffers a request and returns any outcomes it resolves
// immediately (it may complete a clique). Submissions must be in
// non-decreasing time order; Advance(r.Point.T) is applied first, so
// overdue older requests resolve before the new one is considered.
func (e *GedikLiuEngine) Submit(r Request) []Outcome {
	out := e.Advance(r.Point.T)
	e.nextSeq++
	e.pending = append(e.pending, &pendingReq{
		seq:      e.nextSeq,
		req:      r,
		deadline: r.Point.T + e.maxDefer(),
	})
	if res := e.tryClique(r.Point.T); res != nil {
		out = append(out, res...)
	}
	return out
}

// Advance moves event time forward, dropping every pending request
// whose deadline passed.
func (e *GedikLiuEngine) Advance(now int64) []Outcome {
	var out []Outcome
	keep := e.pending[:0]
	for _, p := range e.pending {
		if p.deadline < now {
			out = append(out, Outcome{
				Request:  p.req,
				Cloaked:  false,
				Deferral: p.deadline - p.req.Point.T,
			})
		} else {
			keep = append(keep, p)
		}
	}
	e.pending = keep
	return out
}

// Flush drops everything still pending (end of stream).
func (e *GedikLiuEngine) Flush() []Outcome {
	var out []Outcome
	for _, p := range e.pending {
		out = append(out, Outcome{Request: p.req, Cloaked: false, Deferral: e.maxDefer()})
	}
	e.pending = nil
	return out
}

// tryClique searches for a clique of K distinct users around the newest
// request and, when found, releases all its members together.
func (e *GedikLiuEngine) tryClique(now int64) []Outcome {
	if e.K < 1 || len(e.pending) == 0 {
		return nil
	}
	newest := e.pending[len(e.pending)-1]
	// Candidates: pending requests of distinct users within the radius
	// of the newest one (a star-shaped approximation of CliqueCloak's
	// clique detection, standard in reimplementations).
	byUser := map[phl.UserID]*pendingReq{}
	byUser[newest.req.User] = newest
	for _, p := range e.pending {
		if p == newest {
			continue
		}
		if _, dup := byUser[p.req.User]; dup {
			continue
		}
		if p.req.Point.P.Dist(newest.req.Point.P) <= e.maxRadius() {
			byUser[p.req.User] = p
		}
	}
	if len(byUser) < e.K {
		return nil
	}
	// Prefer the oldest waiting members (closest deadlines first).
	members := make([]*pendingReq, 0, len(byUser))
	for _, p := range byUser {
		members = append(members, p)
	}
	sort.Slice(members, func(i, j int) bool { return members[i].seq < members[j].seq })
	members = members[:e.K]
	// The clique must include the newest request to justify releasing
	// now; if it is not among the K oldest, swap it in for the youngest.
	hasNewest := false
	for _, m := range members {
		if m == newest {
			hasNewest = true
			break
		}
	}
	if !hasNewest {
		members[len(members)-1] = newest
	}

	box := geo.STBoxAround(members[0].req.Point)
	for _, m := range members[1:] {
		box = box.Extend(m.req.Point)
	}
	inClique := map[*pendingReq]bool{}
	for _, m := range members {
		inClique[m] = true
	}
	keep := e.pending[:0]
	var out []Outcome
	for _, p := range e.pending {
		if inClique[p] {
			out = append(out, Outcome{
				Request:  p.req,
				Cloaked:  true,
				Box:      box,
				Deferral: now - p.req.Point.T,
			})
		} else {
			keep = append(keep, p)
		}
	}
	e.pending = keep
	return out
}
