// Package baseline implements the anonymizers the paper positions
// itself against, so experiments can compare historical k-anonymity with
// per-request approaches:
//
//   - NoOp: forward exact coordinates (no privacy).
//   - FixedGrid: snap every request to a fixed spatio-temporal cell.
//   - GruteserGrunwald: the adaptive quadtree interval cloaking of
//     "Anonymous Usage of Location-Based Services Through Spatial and
//     Temporal Cloaking" (paper ref. [11]) — the box is the smallest
//     quadrant, around the requester, still containing at least k
//     *potential* senders.
//   - GedikLiu: the stricter model of "A Customizable k-Anonymity Model
//     for Protecting Location Privacy" (paper ref. [9]) — a request is
//     k-anonymous only when k−1 *other requests* fall in the same
//     spatio-temporal vicinity; otherwise it is dropped.
//
// All baselines cloak each request independently: none of them defends
// the *history* of a pseudonym, which is exactly the gap historical
// k-anonymity closes (experiment E7).
package baseline

import (
	"math"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// Request is an exact service request to be cloaked.
type Request struct {
	User  phl.UserID
	Point geo.STPoint
}

// Cloaked is the anonymizer's output for one request. OK is false when
// the anonymizer had to withhold the request.
type Cloaked struct {
	Box geo.STBox
	OK  bool
}

// Anonymizer generalizes a batch of requests to a target anonymity k.
// Batch form lets message-based schemes (Gedik–Liu) see the whole
// request stream.
type Anonymizer interface {
	Name() string
	CloakAll(reqs []Request, k int) []Cloaked
}

// NoOp forwards exact coordinates.
type NoOp struct{}

// Name implements Anonymizer.
func (NoOp) Name() string { return "noop" }

// CloakAll implements Anonymizer.
func (NoOp) CloakAll(reqs []Request, _ int) []Cloaked {
	out := make([]Cloaked, len(reqs))
	for i, r := range reqs {
		out[i] = Cloaked{Box: geo.STBoxAround(r.Point), OK: true}
	}
	return out
}

// FixedGrid snaps requests to Cell×Cell meter, Window-second tiles.
type FixedGrid struct {
	Cell   float64
	Window int64
}

// Name implements Anonymizer.
func (FixedGrid) Name() string { return "fixed-grid" }

// CloakAll implements Anonymizer.
func (g FixedGrid) CloakAll(reqs []Request, _ int) []Cloaked {
	cell := g.Cell
	if cell <= 0 {
		cell = 500
	}
	win := g.Window
	if win <= 0 {
		win = 300
	}
	out := make([]Cloaked, len(reqs))
	for i, r := range reqs {
		cx := math.Floor(r.Point.P.X/cell) * cell
		cy := math.Floor(r.Point.P.Y/cell) * cell
		ct := (r.Point.T / win) * win
		if r.Point.T < 0 && r.Point.T%win != 0 {
			ct -= win
		}
		out[i] = Cloaked{
			Box: geo.STBox{
				Area: geo.Rect{MinX: cx, MinY: cy, MaxX: cx + cell, MaxY: cy + cell},
				Time: geo.Interval{Start: ct, End: ct + win - 1},
			},
			OK: true,
		}
	}
	return out
}

// GruteserGrunwald is adaptive quadtree cloaking over a known city
// extent: starting from the whole city, it repeatedly descends into the
// quadrant containing the requester while that quadrant still covers at
// least k potential senders (users with a location sample in the
// quadrant during the request's time window).
type GruteserGrunwald struct {
	// Store is the location database used to count potential senders.
	Store phl.Storer
	// City is the quadtree root.
	City geo.Rect
	// Window is the half-width (seconds) of the temporal cloak around
	// the request instant. Zero means 150 (a five-minute interval).
	Window int64
	// MaxDepth bounds the descent. Zero means 12.
	MaxDepth int
	// MaxWindow enables the temporal-cloaking half of ref. [11]: when
	// even the whole city lacks k potential senders in the base window,
	// the window doubles (the request is "delayed") until it covers k
	// users or exceeds MaxWindow. Zero disables temporal adaptation.
	MaxWindow int64
}

// Name implements Anonymizer.
func (GruteserGrunwald) Name() string { return "gruteser-grunwald" }

// CloakAll implements Anonymizer.
func (g GruteserGrunwald) CloakAll(reqs []Request, k int) []Cloaked {
	out := make([]Cloaked, len(reqs))
	for i, r := range reqs {
		out[i] = g.cloakOne(r, k)
	}
	return out
}

func (g GruteserGrunwald) cloakOne(r Request, k int) Cloaked {
	window := g.Window
	if window == 0 {
		window = 150
	}
	maxDepth := g.MaxDepth
	if maxDepth == 0 {
		maxDepth = 12
	}
	t := geo.Interval{Start: r.Point.T - window, End: r.Point.T + window}
	cur := g.City
	if !cur.Contains(r.Point.P) {
		return Cloaked{}
	}
	for g.count(cur, t) < k {
		// Temporal cloaking: widen the interval before giving up.
		window *= 2
		if g.MaxWindow <= 0 || window > g.MaxWindow {
			return Cloaked{} // even the whole city is too empty
		}
		t = geo.Interval{Start: r.Point.T - window, End: r.Point.T + window}
	}
	for depth := 0; depth < maxDepth; depth++ {
		q := quadrantContaining(cur, r.Point.P)
		if g.count(q, t) < k {
			break
		}
		cur = q
	}
	return Cloaked{Box: geo.STBox{Area: cur, Time: t}, OK: true}
}

func (g GruteserGrunwald) count(a geo.Rect, t geo.Interval) int {
	return g.Store.CountUsersIn(geo.STBox{Area: a, Time: t})
}

// quadrantContaining returns the quadrant of r that contains p.
func quadrantContaining(r geo.Rect, p geo.Point) geo.Rect {
	cx, cy := (r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2
	out := r
	if p.X <= cx {
		out.MaxX = cx
	} else {
		out.MinX = cx
	}
	if p.Y <= cy {
		out.MaxY = cy
	} else {
		out.MinY = cy
	}
	return out
}

// GedikLiu cloaks under the stricter reading the paper discusses in §2:
// a request is k-anonymous only if k−1 *other users' requests* occur in
// the same spatio-temporal vicinity. A request finds its companions
// within MaxRadius meters and MaxDefer seconds; failing that, it is
// withheld (the engine "drops the message", as CliqueCloak does on
// deadline expiry).
type GedikLiu struct {
	// MaxRadius bounds the spatial search for companion requests.
	// Zero means 1000 m.
	MaxRadius float64
	// MaxDefer bounds the temporal search. Zero means 600 s.
	MaxDefer int64
}

// Name implements Anonymizer.
func (GedikLiu) Name() string { return "gedik-liu" }

// CloakAll implements Anonymizer.
func (g GedikLiu) CloakAll(reqs []Request, k int) []Cloaked {
	radius := g.MaxRadius
	if radius <= 0 {
		radius = 1000
	}
	deferS := g.MaxDefer
	if deferS <= 0 {
		deferS = 600
	}
	out := make([]Cloaked, len(reqs))
	for i, r := range reqs {
		// Companions: requests by other users within the vicinity.
		box := geo.STBoxAround(r.Point)
		users := map[phl.UserID]bool{r.User: true}
		for j, o := range reqs {
			if j == i || users[o.User] {
				continue
			}
			if math.Abs(float64(o.Point.T-r.Point.T)) > float64(deferS) {
				continue
			}
			if o.Point.P.Dist(r.Point.P) > radius {
				continue
			}
			users[o.User] = true
			box = box.Extend(o.Point)
			if len(users) == k {
				break
			}
		}
		if len(users) >= k {
			out[i] = Cloaked{Box: box, OK: true}
		}
	}
	return out
}
