package baseline

import (
	"testing"

	"histanon/internal/mobility"
	"histanon/internal/phl"
)

func TestEngineCliqueForms(t *testing.T) {
	e := NewGedikLiuEngine(3, 500, 300)
	if out := e.Submit(req(1, 0, 0, 0)); len(out) != 0 {
		t.Fatalf("first request resolved early: %v", out)
	}
	if out := e.Submit(req(2, 100, 0, 60)); len(out) != 0 {
		t.Fatalf("second request resolved early: %v", out)
	}
	out := e.Submit(req(3, 0, 100, 120))
	if len(out) != 3 {
		t.Fatalf("clique of 3 expected, got %d outcomes", len(out))
	}
	var box = out[0].Box
	for _, o := range out {
		if !o.Cloaked {
			t.Fatalf("clique member dropped: %+v", o)
		}
		if o.Box != box {
			t.Fatal("clique members must share one cloak")
		}
		if !o.Box.Contains(o.Request.Point) {
			t.Fatal("cloak must contain each member")
		}
	}
	// The first member waited 120 s.
	var oldest *Outcome
	for i := range out {
		if out[i].Request.User == 1 {
			oldest = &out[i]
		}
	}
	if oldest == nil || oldest.Deferral != 120 {
		t.Fatalf("oldest deferral: %+v", oldest)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending=%d after release", e.Pending())
	}
}

func TestEngineDeadlineDrops(t *testing.T) {
	e := NewGedikLiuEngine(3, 500, 300)
	e.Submit(req(1, 0, 0, 0))
	// Time passes beyond the deadline before companions appear.
	out := e.Advance(400)
	if len(out) != 1 || out[0].Cloaked {
		t.Fatalf("expected one drop: %v", out)
	}
	if e.Pending() != 0 {
		t.Fatal("dropped request still pending")
	}
	// Submission also advances time: a too-late companion triggers the
	// drop of an expired one.
	e.Submit(req(2, 0, 0, 0))
	out = e.Submit(req(3, 10, 0, 1000))
	if len(out) != 1 || out[0].Request.User != 2 || out[0].Cloaked {
		t.Fatalf("expired request must drop on submit: %v", out)
	}
}

func TestEngineDistantRequestsDontClique(t *testing.T) {
	e := NewGedikLiuEngine(2, 100, 300)
	e.Submit(req(1, 0, 0, 0))
	if out := e.Submit(req(2, 5000, 0, 10)); len(out) != 0 {
		t.Fatalf("distant requests must not clique: %v", out)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending=%d", e.Pending())
	}
}

func TestEngineSameUserNoClique(t *testing.T) {
	e := NewGedikLiuEngine(2, 500, 300)
	e.Submit(req(1, 0, 0, 0))
	if out := e.Submit(req(1, 10, 0, 10)); len(out) != 0 {
		t.Fatalf("same-user requests must not clique: %v", out)
	}
}

func TestEngineFlush(t *testing.T) {
	e := NewGedikLiuEngine(5, 500, 300)
	e.Submit(req(1, 0, 0, 0))
	e.Submit(req(2, 10, 0, 10))
	out := e.Flush()
	if len(out) != 2 || out[0].Cloaked || out[1].Cloaked {
		t.Fatalf("flush must drop the stragglers: %v", out)
	}
	if e.Pending() != 0 {
		t.Fatal("pending after flush")
	}
}

// TestEngineOnSyntheticStream drives the engine with a real request
// stream and checks the release/drop accounting plus the k-anonymity of
// every released cloak (k distinct users inside by construction).
func TestEngineOnSyntheticStream(t *testing.T) {
	cfg := mobility.DefaultConfig()
	cfg.Users = 80
	cfg.Days = 2
	world := mobility.Generate(cfg)

	const k = 3
	e := NewGedikLiuEngine(k, 1500, 900)
	cloaked, dropped := 0, 0
	users := map[phl.UserID]bool{}
	var outs []Outcome
	for _, ev := range world.Requests() {
		outs = append(outs, e.Submit(Request{User: ev.User, Point: ev.Point})...)
	}
	outs = append(outs, e.Flush()...)
	for _, o := range outs {
		users[o.Request.User] = true
		if o.Cloaked {
			cloaked++
			if o.Deferral < 0 || o.Deferral > 900 {
				t.Fatalf("deferral out of range: %+v", o)
			}
		} else {
			dropped++
		}
	}
	total := cloaked + dropped
	if total != len(world.Requests()) {
		t.Fatalf("accounting: %d outcomes for %d requests", total, len(world.Requests()))
	}
	if cloaked == 0 || dropped == 0 {
		t.Fatalf("expected both outcomes in a city stream: cloaked=%d dropped=%d", cloaked, dropped)
	}
	// Every released group has exactly k members sharing a box: verify
	// via box identity counting.
	byBox := map[string]map[phl.UserID]bool{}
	for _, o := range outs {
		if !o.Cloaked {
			continue
		}
		key := o.Box.String()
		if byBox[key] == nil {
			byBox[key] = map[phl.UserID]bool{}
		}
		byBox[key][o.Request.User] = true
	}
	for key, members := range byBox {
		if len(members) < k {
			t.Fatalf("cloak %s has %d distinct users, want >= %d", key, len(members), k)
		}
	}
}
