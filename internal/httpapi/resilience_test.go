// Tests for the admission-control, body-bound and health-reporting
// surface added by the resilience layer: overload sheds with 503,
// oversized bodies get 413, and every degraded condition is visible on
// /healthz and /metrics.

package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"histanon/internal/obs"
	"histanon/internal/resilience"
	"histanon/internal/ts"
	"histanon/internal/wire"
)

func TestMaxBodyBytes413(t *testing.T) {
	provider := newTestProvider()
	srv := ts.New(ts.Config{DefaultPolicy: ts.Policy{K: 3}}, provider)
	h := New(srv)
	h.SetMaxBodyBytes(64)
	hts := httptest.NewServer(h)
	defer hts.Close()

	big := `{"user":1,"x":1,"y":1,"t":1000,"service":"` + strings.Repeat("a", 200) + `"}`
	resp, err := http.Post(hts.URL+"/v1/request", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("413 body not an error response: %v %+v", err, e)
	}

	// A small request on the same handler still works.
	ok, err := http.Post(hts.URL+"/v1/request", "application/json",
		strings.NewReader(`{"user":1,"x":1,"y":1,"t":1000,"service":"s"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("small request status = %d", ok.StatusCode)
	}
}

// newTestProvider is a minimal infallible outbox for handler tests.
func newTestProvider() ts.OutboxFunc {
	return func(*wire.Request) {}
}

func TestAdmissionControlSheds503(t *testing.T) {
	release := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	var once sync.Once
	blocking := ts.OutboxFunc(func(*wire.Request) {
		once.Do(entered.Done)
		<-release
	})
	srv := ts.New(ts.Config{DefaultPolicy: ts.Policy{K: 3}}, blocking)
	h := New(srv)
	h.SetMaxInFlight(1)
	hts := httptest.NewServer(h)
	defer hts.Close()
	defer close(release)

	// Occupy the single slot with a request stuck in the outbox.
	go http.Post(hts.URL+"/v1/request", "application/json",
		strings.NewReader(`{"user":1,"x":1,"y":1,"t":1000,"service":"s"}`))
	entered.Wait()

	resp, err := http.Post(hts.URL+"/v1/request", "application/json",
		strings.NewReader(`{"user":2,"x":1,"y":1,"t":1000,"service":"s"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}

	// The exempt endpoints still answer while saturated, and /healthz
	// reports the saturation.
	hz, err := http.Get(hts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d while saturated", hz.StatusCode)
	}
	var health HealthResponse
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Fatalf("healthz status = %q, want degraded: %+v", health.Status, health)
	}
	found := false
	for _, d := range health.Degraded {
		if d == "admission_saturated" {
			found = true
		}
	}
	if !found {
		t.Fatalf("degraded reasons %v lack admission_saturated", health.Degraded)
	}
	if health.ShedTotal < 1 {
		t.Fatalf("ShedTotal = %d", health.ShedTotal)
	}

	// The shed is visible on the metrics exposition too.
	mr, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	body, _ := io.ReadAll(mr.Body)
	if !strings.Contains(string(body), obs.MetricHTTPShed+" 1") {
		t.Fatalf("exposition lacks the shed counter:\n%s", body)
	}
}

// failingDelivery always errors, for breaker-driven healthz states.
type failingDelivery struct{}

func (failingDelivery) Deliver(*wire.Request) error { return errors.New("down") }

func TestHealthzReportsOutboxAndSnapshot(t *testing.T) {
	outbox := resilience.NewOutbox(failingDelivery{}, resilience.Options{
		QueueSize: 2, Workers: 1, MaxAttempts: 1,
		Breaker: resilience.BreakerConfig{FailureThreshold: 1, OpenFor: time.Hour},
	})
	defer outbox.Close()
	srv := ts.New(ts.Config{DefaultPolicy: ts.Policy{K: 3}}, outbox)
	h := New(srv)
	h.SetOutbox(outbox)
	var ageMu sync.Mutex
	age := -1.0
	h.SetSnapshotAge(func() float64 {
		ageMu.Lock()
		defer ageMu.Unlock()
		return age
	}, 60)
	hts := httptest.NewServer(h)
	defer hts.Close()

	// Trip the breaker with one doomed request.
	post := func() *http.Response {
		resp, err := http.Post(hts.URL+"/v1/request", "application/json",
			strings.NewReader(`{"user":1,"x":1,"y":1,"t":1000,"service":"nav"}`))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	post().Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for outbox.OpenBreakers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if outbox.OpenBreakers() == 0 {
		t.Fatal("breaker never opened")
	}

	hz, err := http.Get(hts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var health HealthResponse
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Fatalf("status = %q: %+v", health.Status, health)
	}
	wantBreaker, wantSnap := false, false
	for _, d := range health.Degraded {
		if d == "breaker_open:nav" {
			wantBreaker = true
		}
		if d == "snapshot_stale" {
			wantSnap = true
		}
	}
	if !wantBreaker || !wantSnap {
		t.Fatalf("degraded reasons %v lack breaker_open:nav / snapshot_stale", health.Degraded)
	}
	if health.Outbox == nil || health.Outbox.Breakers["nav"] != "open" {
		t.Fatalf("outbox health: %+v", health.Outbox)
	}
	if health.SnapshotAgeSeconds == nil || *health.SnapshotAgeSeconds != -1 {
		t.Fatalf("snapshot age: %+v", health.SnapshotAgeSeconds)
	}

	// A fresh snapshot clears that degradation (the breaker stays).
	ageMu.Lock()
	age = 5
	ageMu.Unlock()
	hz2, err := http.Get(hts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz2.Body.Close()
	var h2 HealthResponse
	if err := json.NewDecoder(hz2.Body).Decode(&h2); err != nil {
		t.Fatal(err)
	}
	for _, d := range h2.Degraded {
		if d == "snapshot_stale" {
			t.Fatalf("snapshot_stale persists after a fresh snapshot: %v", h2.Degraded)
		}
	}

	// A degraded request decision is visible on the wire.
	resp := post()
	defer resp.Body.Close()
	var dec DecisionResponse
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	if !dec.Degraded || !dec.Suppressed || dec.DegradedReason == "" {
		t.Fatalf("wire decision not degraded: %+v", dec)
	}
}

// TestFullExpositionWithResilienceWired proves every documented metric
// family appears on /metrics when the resilience stack is attached —
// the deployment-shaped counterpart of the bare-server exposition test
// in internal/ts.
func TestFullExpositionWithResilienceWired(t *testing.T) {
	outbox := resilience.NewOutbox(
		resilience.DeliveryFunc(func(*wire.Request) error { return nil }),
		resilience.Options{QueueSize: 4, Workers: 1})
	defer outbox.Close()
	srv := ts.New(ts.Config{DefaultPolicy: ts.Policy{K: 3}}, outbox)
	h := New(srv)
	h.SetMaxInFlight(4)
	h.SetOutbox(outbox)
	srv.SetSnapshotMetrics(func() float64 { return 12 }, func() int64 { return 0 })
	hts := httptest.NewServer(h)
	defer hts.Close()

	resp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range obs.MetricNames() {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Fatalf("exposition lacks family %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, obs.MetricSnapshotAge+" 12") {
		t.Fatalf("snapshot age source not wired:\n%s", out)
	}
}
