package httpapi

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"

	"histanon/internal/wire"
)

// Client-side batching: a wire.Batcher whose flushes POST binary
// batches to /v1/batch. A device SDK records locations and issues
// service calls through the BatchSender; the Batcher's size/deadline
// policy decides when bytes actually move.

// BatchSender batches binary frames toward one server. Safe for
// concurrent use. Service-call decisions come back asynchronously
// through the OnDecision callback (batching trades per-call latency
// for throughput, so a synchronous decision API would defeat it).
type BatchSender struct {
	c *Client
	b *wire.Batcher
	// onDecision, when set, receives every decision frame of every
	// flushed batch, in batch order.
	onDecision func(wire.DecisionFrame)
}

// BatchSenderConfig configures NewBatchSender.
type BatchSenderConfig struct {
	// MaxBytes and MaxDelay are the wire.Batcher flush policy (zero
	// values: 64 KiB, 25 ms).
	MaxBytes int
	MaxDelay time.Duration
	// OnDecision, when non-nil, receives each service-call decision as
	// its batch's response arrives.
	OnDecision func(wire.DecisionFrame)
}

// NewBatchSender returns a sender flushing into POST /v1/batch.
func (c *Client) NewBatchSender(cfg BatchSenderConfig) (*BatchSender, error) {
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = 25 * time.Millisecond
	}
	s := &BatchSender{c: c, onDecision: cfg.OnDecision}
	b, err := wire.NewBatcher(wire.BatcherConfig{
		MaxBytes: cfg.MaxBytes,
		MaxDelay: cfg.MaxDelay,
		Flush:    s.ship,
	})
	if err != nil {
		return nil, err
	}
	s.b = b
	return s, nil
}

// RecordLocation queues one position sample.
func (s *BatchSender) RecordLocation(user int64, x, y float64, t int64) error {
	frame := wire.AppendLocation(nil, wire.LocationUpdate{User: user, X: x, Y: y, T: t})
	return s.b.Add(frame)
}

// Request queues one service call. The decision arrives via OnDecision
// after the batch carrying the call flushes.
func (s *BatchSender) Request(call wire.ServiceCall) error {
	frame, err := wire.AppendServiceCall(nil, call)
	if err != nil {
		return err
	}
	return s.b.Add(frame)
}

// Flush ships any pending frames now.
func (s *BatchSender) Flush() error { return s.b.Flush() }

// Close flushes and shuts the sender down.
func (s *BatchSender) Close() error { return s.b.Close() }

// Stats exposes the underlying Batcher's conservation-law counters.
func (s *BatchSender) Stats() wire.BatcherStats { return s.b.Stats() }

// ship is the Batcher's flush callback: one POST per batch.
func (s *BatchSender) ship(batch []byte, n int) error {
	req, err := http.NewRequest(http.MethodPost, s.c.BaseURL+"/v1/batch", bytes.NewReader(batch))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", WireContentType)
	req.Header.Set("Accept", WireContentType)
	resp, err := s.c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if s.onDecision == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	dec, err := wire.NewBatchDecoder(body)
	if err != nil {
		return err
	}
	for dec.Next() {
		if dec.Type() != wire.FrameDecision {
			return fmt.Errorf("httpapi: unexpected %s frame in batch response", dec.Type())
		}
		d, err := wire.ParseDecisionPayload(dec.Flags(), dec.Payload())
		if err != nil {
			return err
		}
		s.onDecision(d)
	}
	return dec.Err()
}
