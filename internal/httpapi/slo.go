// GET /v1/slo: the privacy-SLO engine's live view — window aggregates,
// objective burn rates and states, and the re-identification canary —
// plus the SLO section of /healthz. Every JSON field here is documented
// in OBSERVABILITY.md (checkobsdocs.sh gates the two against each
// other). The endpoint is admission-exempt like /metrics: a privacy
// burn during overload is exactly when an operator needs to read it.

package httpapi

import (
	"net/http"

	"histanon/internal/slo"
)

// SLOResponse is the body of GET /v1/slo.
type SLOResponse struct {
	// Enabled reports whether the engine is recording; all other fields
	// read zero while disabled.
	Enabled bool `json:"enabled"`
	// T is the engine's logical clock: the newest decision timestamp
	// observed (-1 before any decision).
	T int64 `json:"t"`
	// DecisionsTotal / BelowKTotal are lifetime counts.
	DecisionsTotal int64 `json:"decisionsTotal"`
	BelowKTotal    int64 `json:"belowKTotal"`
	// Windows holds per-window privacy aggregates, shortest first.
	Windows []SLOWindowJSON `json:"windows"`
	// Objectives holds per-objective burn rates and alert states.
	Objectives []SLOObjectiveJSON `json:"objectives"`
	// Canary describes the re-identification canary, when one is wired.
	Canary *SLOCanaryJSON `json:"canary,omitempty"`
}

// SLOWindowJSON is one sliding window's aggregate.
type SLOWindowJSON struct {
	// Window is the window name ("1m"); Seconds its span.
	Window  string `json:"window"`
	Seconds int64  `json:"seconds"`
	// Decisions is how many decisions the window holds; BelowK how many
	// achieved less than the requested k.
	Decisions int64 `json:"decisions"`
	BelowK    int64 `json:"belowK"`
	// BelowKRatio / SuppressionRatio / DegradedRatio are fractions of
	// Decisions (0 when the window is empty).
	BelowKRatio      float64 `json:"belowKRatio"`
	SuppressionRatio float64 `json:"suppressionRatio"`
	DegradedRatio    float64 `json:"degradedRatio"`
	// KP5 / KP50 are achieved-k quantiles over the window's generalized
	// decisions (0 when none).
	KP5  float64 `json:"kP5"`
	KP50 float64 `json:"kP50"`
}

// SLOObjectiveJSON is one objective's burn-rate evaluation.
type SLOObjectiveJSON struct {
	// Objective is the bounded signal ("below_k"); Spec the full
	// objective in spec syntax.
	Objective string `json:"objective"`
	Spec      string `json:"spec"`
	// BudgetPct is the error budget in percent.
	BudgetPct float64 `json:"budgetPct"`
	// State is "ok", "warning" or "page"; Since the logical time the
	// objective entered it.
	State string `json:"state"`
	Since int64  `json:"since"`
	// Burns holds the per-window burn rates behind the state.
	Burns []SLOBurnJSON `json:"burns"`
}

// SLOBurnJSON is one window's burn measurement for one objective.
type SLOBurnJSON struct {
	Window    string `json:"window"`
	Decisions int64  `json:"decisions"`
	// Ratio is the observed bad-decision fraction; Burn is Ratio over
	// the objective's budget (1.0 = spending exactly the budget).
	Ratio float64 `json:"ratio"`
	Burn  float64 `json:"burn"`
}

// SLOCanaryJSON is the canary section of /v1/slo.
type SLOCanaryJSON struct {
	// Captured is how many forwarded generalized requests the capture
	// ring currently holds; Probes how many attack rounds have run.
	Captured int   `json:"captured"`
	Probes   int64 `json:"probes"`
	// AgeSeconds is the wall age of the last probe (-1 before the
	// first); Stale is true when the canary has work but hasn't probed
	// within three intervals (pressure or failure starvation).
	AgeSeconds float64 `json:"ageSeconds"`
	Stale      bool    `json:"stale"`
	// Last is the most recent probe result (see slo.CanaryResult).
	Last *slo.CanaryResult `json:"last,omitempty"`
}

// handleSLO serves GET /v1/slo. It runs a fresh burn-rate evaluation at
// the engine's logical now, so the response always reflects the current
// windows (and any due state transition is taken, audited and counted
// before it is reported).
func (h *Handler) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	e := h.srv.SLO
	resp := SLOResponse{
		Enabled:        e.Enabled(),
		T:              e.Now(),
		DecisionsTotal: e.DecisionsTotal(),
		BelowKTotal:    e.BelowKTotal(),
	}
	for _, s := range e.Snapshots(resp.T) {
		resp.Windows = append(resp.Windows, SLOWindowJSON{
			Window:           s.Name,
			Seconds:          s.Seconds,
			Decisions:        s.Decisions,
			BelowK:           s.BelowK,
			BelowKRatio:      s.BelowKRatio(),
			SuppressionRatio: s.SuppressionRatio(),
			DegradedRatio:    s.DegradedRatio(),
			KP5:              s.KQuantile(0.05),
			KP50:             s.KQuantile(0.50),
		})
	}
	for _, os := range e.Evaluate(resp.T).Objectives {
		oj := SLOObjectiveJSON{
			Objective: os.Objective.Signal,
			Spec:      os.Objective.Spec(),
			BudgetPct: os.Objective.Budget * 100,
			State:     os.State.String(),
			Since:     os.Since,
		}
		for _, b := range os.Burns {
			oj.Burns = append(oj.Burns, SLOBurnJSON{
				Window: b.Window, Decisions: b.Decisions,
				Ratio: b.Ratio, Burn: b.Burn,
			})
		}
		resp.Objectives = append(resp.Objectives, oj)
	}
	if c := e.CanaryAttached(); c != nil {
		cj := &SLOCanaryJSON{
			Captured:   c.Captured(),
			Probes:     c.Probes(),
			AgeSeconds: c.AgeSeconds(),
			Stale:      c.Stale(),
		}
		if last, ok := c.Last(); ok {
			cj.Last = &last
		}
		resp.Canary = cj
	}
	writeJSON(w, http.StatusOK, resp)
}

// SLOHealth is the privacy-SLO section of /healthz: present whenever
// the engine is enabled, so a liveness probe also answers "is the
// privacy budget burning".
type SLOHealth struct {
	// State is the worst objective state ("ok", "warning", "page").
	State string `json:"state"`
	// Objectives maps each objective's signal to its state.
	Objectives map[string]string `json:"objectives,omitempty"`
	// CanaryAgeSeconds / CanaryStale mirror the canary's staleness
	// (omitted when no canary is wired).
	CanaryAgeSeconds *float64 `json:"canaryAgeSeconds,omitempty"`
	CanaryStale      bool     `json:"canaryStale,omitempty"`
}

// sloHealth builds the /healthz SLO section and appends any degraded
// reasons (slo_warning:<objective>, slo_page:<objective>, canary_stale).
// Returns nil while the engine is disabled.
func (h *Handler) sloHealth(degraded *[]string) *SLOHealth {
	e := h.srv.SLO
	if !e.Enabled() {
		return nil
	}
	sh := &SLOHealth{
		State:      e.WorstState().String(),
		Objectives: map[string]string{},
	}
	for _, o := range e.Objectives() {
		st, _ := e.State(o.Signal)
		sh.Objectives[o.Signal] = st.String()
		switch st {
		case slo.StateWarning:
			*degraded = append(*degraded, "slo_warning:"+o.Signal)
		case slo.StatePage:
			*degraded = append(*degraded, "slo_page:"+o.Signal)
		}
	}
	if c := e.CanaryAttached(); c != nil {
		age := c.AgeSeconds()
		sh.CanaryAgeSeconds = &age
		sh.CanaryStale = c.Stale()
		if sh.CanaryStale {
			*degraded = append(*degraded, "canary_stale")
		}
	}
	return sh
}

// UnderPressure reports whether admission control is saturated — the
// canary's pressure hook: probes defer to user traffic while shedding.
func (h *Handler) UnderPressure() bool {
	return h.maxInFlight > 0 && h.inflight.Load() >= h.maxInFlight
}
