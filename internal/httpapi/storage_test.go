package httpapi

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/sp"
	"histanon/internal/storage"
	"histanon/internal/ts"
)

// newTieredTestServer builds the HTTP layer over a trusted server
// whose PHL lives in a durable tiered store on a crash-simulating
// MemFS, with /healthz wired to the store.
func newTieredTestServer(t *testing.T) (*httptest.Server, *ts.Server, *storage.MemFS, *storage.TieredStore) {
	t.Helper()
	fsys := storage.NewMemFS()
	st, _, err := storage.Open(storage.Options{
		Dir:              "store",
		FS:               fsys,
		SnapshotEvery:    32,
		HotWindow:        60,
		MaxDeltas:        3,
		ColdCacheEntries: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := ts.New(ts.Config{DefaultPolicy: ts.Policy{K: 2}, Store: st}, sp.NewProvider())
	h := New(srv)
	h.SetStorage(st)
	hts := httptest.NewServer(h)
	t.Cleanup(hts.Close)
	return hts, srv, fsys, st
}

func getHealth(t *testing.T, url string) HealthResponse {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	return hr
}

// /healthz must report the tiered store's real state: demoted samples
// on a healthy server, then storage_wal_failed once the WAL dies.
func TestHealthzStorageSection(t *testing.T) {
	hts, srv, fsys, st := newTieredTestServer(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1500; i++ {
		srv.RecordLocation(phl.UserID(rng.Intn(20)), geo.STPoint{
			P: geo.Point{X: rng.Float64() * 2e3, Y: rng.Float64() * 2e3},
			T: int64(i),
		})
	}

	hr := getHealth(t, hts.URL)
	if hr.Status != "ok" {
		t.Fatalf("healthy tiered server reports %q (%v)", hr.Status, hr.Degraded)
	}
	sh := hr.Storage
	if sh == nil {
		t.Fatal("healthz has no storage section despite SetStorage")
	}
	if sh.Failed {
		t.Fatal("healthy store reported failed")
	}
	if sh.ColdSamples == 0 || sh.HotSamples == 0 {
		t.Fatalf("tier occupancy not reported: hot=%d cold=%d", sh.HotSamples, sh.ColdSamples)
	}
	if sh.HotSamples+sh.ColdSamples != st.NumSamples() {
		t.Fatalf("hot %d + cold %d != %d samples", sh.HotSamples, sh.ColdSamples, st.NumSamples())
	}

	// Kill the WAL: the next record latches fail-stop, and /healthz
	// must flip to degraded with the storage reason.
	fsys.FailSyncs = errors.New("injected fsync failure")
	srv.RecordLocation(1, geo.STPoint{P: geo.Point{X: 1, Y: 1}, T: 9000})
	fsys.FailSyncs = nil
	if !st.StorageFailed() {
		t.Fatal("fsync failure did not latch")
	}
	hr = getHealth(t, hts.URL)
	if hr.Status != "degraded" {
		t.Fatalf("failed store reports status %q", hr.Status)
	}
	if hr.Storage == nil || !hr.Storage.Failed {
		t.Fatalf("storage section does not report the failure: %+v", hr.Storage)
	}
	found := false
	for _, reason := range hr.Degraded {
		if reason == "storage_wal_failed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("degraded reasons %v missing storage_wal_failed", hr.Degraded)
	}
}

// A server without a tiered store must keep /healthz free of the
// storage section.
func TestHealthzNoStorageSection(t *testing.T) {
	hts, _, _ := newTestServer(t)
	if hr := getHealth(t, hts.URL); hr.Storage != nil {
		t.Fatalf("unexpected storage section: %+v", hr.Storage)
	}
}
