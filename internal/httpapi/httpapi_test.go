package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"histanon/internal/sp"
	"histanon/internal/tgran"
	"histanon/internal/ts"
)

func newTestServer(t *testing.T) (*httptest.Server, *ts.Server, *sp.Provider) {
	t.Helper()
	provider := sp.NewProvider()
	srv := ts.New(ts.Config{DefaultPolicy: ts.Policy{K: 3}}, provider)
	hts := httptest.NewServer(New(srv))
	t.Cleanup(hts.Close)
	return hts, srv, provider
}

const commuteSpec = `
lbqid "commute" {
    element area [0,400]x[0,400] time [06:00,10:00]
    recurrence 1.Days
}`

func TestHealthz(t *testing.T) {
	hts, _, _ := newTestServer(t)
	resp, err := http.Get(hts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
}

func TestEndToEndFlow(t *testing.T) {
	hts, srv, provider := newTestServer(t)
	c := NewClient(hts.URL)

	if err := c.SetPolicyLevel(1, "medium"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLBQID(1, commuteSpec); err != nil {
		t.Fatal(err)
	}
	// Crowd so that generalization can succeed (k=5 for medium).
	for u := int64(2); u <= 9; u++ {
		if err := c.RecordLocation(u, float64(u*20), float64(u*15), 7*tgran.Hour+u*30); err != nil {
			t.Fatal(err)
		}
	}

	dec, err := c.Request(ServiceRequest{
		User: 1, X: 100, Y: 100, T: 7*tgran.Hour + 600,
		Service: "navigation", Data: map[string]string{"dest": "office"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Forwarded || !dec.Generalized || dec.MatchedLBQID != "commute" {
		t.Fatalf("decision: %+v", dec)
	}
	if !dec.HKAnonymity {
		t.Fatalf("crowded area must preserve anonymity: %+v", dec)
	}
	if dec.Context == nil || dec.Context.MaxX <= dec.Context.MinX {
		t.Fatalf("context missing or degenerate: %+v", dec.Context)
	}
	if dec.Pseudonym == "" {
		t.Fatal("pseudonym missing")
	}

	// The SP got the same generalized request.
	reqs := provider.Requests()
	if len(reqs) != 1 || reqs[0].Service != "navigation" || reqs[0].Data["dest"] != "office" {
		t.Fatalf("provider log: %+v", reqs)
	}

	// Stats reflect the traffic.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counters["requests"] != 1 || stats.Counters["forwarded"] != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.TrackedUsers != srv.Store().NumUsers() {
		t.Fatalf("tracked users: %+v", stats)
	}
	if stats.GenSamples != 1 || stats.GenAreaMean <= 0 {
		t.Fatalf("generalization stats: %+v", stats)
	}
}

func TestBadRequests(t *testing.T) {
	hts, _, _ := newTestServer(t)
	cases := []struct {
		path, body string
	}{
		{"/v1/location", `{"user": "not-a-number"}`},
		{"/v1/location", `{"unknown": 1}`},
		{"/v1/request", `{"user":1}`},                // missing service
		{"/v1/lbqid", `{"user":1,"spec":"garbage"}`}, // unparsable spec
		{"/v1/policy", `{"user":1}`},                 // neither level nor k
		{"/v1/policy", `{"user":1,"level":"extreme"}`},
	}
	for _, c := range cases {
		resp, err := http.Post(hts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s with %q: status=%d want 400", c.path, c.body, resp.StatusCode)
		}
	}
}

func TestMethodEnforcement(t *testing.T) {
	hts, _, _ := newTestServer(t)
	resp, err := http.Get(hts.URL + "/v1/request")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/request: status=%d", resp.StatusCode)
	}
	resp, err = http.Post(hts.URL+"/v1/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats: status=%d", resp.StatusCode)
	}
}

func TestClientErrorSurfaced(t *testing.T) {
	hts, _, _ := newTestServer(t)
	c := NewClient(hts.URL)
	if err := c.AddLBQID(1, "garbage"); err == nil {
		t.Fatal("client must surface server-side validation errors")
	} else if !strings.Contains(err.Error(), "httpapi:") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if err := c.SetPolicyLevel(1, "extreme"); err == nil {
		t.Fatal("unknown level must fail")
	}
}

func TestExplicitPolicy(t *testing.T) {
	hts, _, _ := newTestServer(t)
	c := NewClient(hts.URL)
	if err := c.SetPolicy(1, 7, 0.4, true); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClients(t *testing.T) {
	hts, srv, _ := newTestServer(t)
	c := NewClient(hts.URL)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 50 && err == nil; i++ {
				err = c.RecordLocation(int64(g), float64(i), float64(i), int64(i)*60)
				if err == nil && i%10 == 0 {
					_, err = c.Request(ServiceRequest{
						User: int64(g), X: float64(i), Y: float64(i), T: int64(i)*60 + 1,
						Service: "weather",
					})
				}
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if srv.Store().NumUsers() != 8 {
		t.Fatalf("users=%d", srv.Store().NumUsers())
	}
}

func TestMineEndpoint(t *testing.T) {
	hts, _, _ := newTestServer(t)
	c := NewClient(hts.URL)
	// Feed a recurring weekday pattern for user 7.
	for d := int64(0); d < 10; d++ {
		if d%7 >= 5 {
			continue
		}
		if err := c.RecordLocation(7, 100, 100, d*tgran.Day+8*tgran.Hour); err != nil {
			t.Fatal(err)
		}
		if err := c.RecordLocation(7, 3000, 100, d*tgran.Day+9*tgran.Hour); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(hts.URL+"/v1/mine", "application/json",
		strings.NewReader(`{"weekdaysOnly":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var cands []MinedCandidateJSON
	if err := json.NewDecoder(resp.Body).Decode(&cands); err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].User != 7 || cands[0].Elements < 2 {
		t.Fatalf("candidates: %+v", cands)
	}
	if !strings.Contains(cands[0].Spec, "lbqid") {
		t.Fatalf("spec not in block format: %q", cands[0].Spec)
	}
}

func TestDeployEndpoint(t *testing.T) {
	hts, _, _ := newTestServer(t)
	c := NewClient(hts.URL)
	for u := int64(0); u < 6; u++ {
		for i := int64(0); i < 5; i++ {
			if err := c.RecordLocation(u, float64(u*30), float64(i*20), i*600); err != nil {
				t.Fatal(err)
			}
		}
	}
	resp, err := http.Post(hts.URL+"/v1/deploy", "application/json",
		strings.NewReader(`{"k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var rep DeployReportJSON
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Samples == 0 || rep.Verdict == "" {
		t.Fatalf("report: %+v", rep)
	}
	// Invalid k surfaces as 400.
	resp, err = http.Post(hts.URL+"/v1/deploy", "application/json",
		strings.NewReader(`{"k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=1 status=%d", resp.StatusCode)
	}
}
