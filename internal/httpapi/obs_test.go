package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"histanon/internal/obs"
	"histanon/internal/sp"
	"histanon/internal/tgran"
	"histanon/internal/ts"
)

func TestMetricsEndpoint(t *testing.T) {
	hts, _, _ := newTestServer(t)
	c := NewClient(hts.URL)
	if err := c.RecordLocation(1, 100, 100, 7*tgran.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request(ServiceRequest{
		User: 1, X: 100, Y: 100, T: 7*tgran.Hour + 600, Service: "weather",
	}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type=%q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, name := range obs.MetricNames() {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Fatalf("/metrics lacks family %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, `histanon_ts_events_total{event="requests"} 1`) {
		t.Fatalf("requests counter missing:\n%s", out)
	}
	if !strings.Contains(out, "histanon_phl_users 1") {
		t.Fatalf("PHL gauge missing:\n%s", out)
	}

	// Only GET is a scrape.
	postResp, err := http.Post(hts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status=%d", postResp.StatusCode)
	}
}

func TestSpansEndpoint(t *testing.T) {
	hts, srv, _ := newTestServer(t)
	srv.Obs.Tracer.SetSampleRate(1)
	c := NewClient(hts.URL)
	if _, err := c.Request(ServiceRequest{
		User: 1, X: 50, Y: 50, T: 1000, Service: "weather",
	}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hts.URL + "/v1/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var spans []obs.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	sp := spans[0]
	if sp.User != 1 || sp.Service != "weather" || sp.Outcome != obs.OutcomeForwarded {
		t.Fatalf("span = %+v", sp)
	}
	if sp.TotalNs <= 0 {
		t.Fatalf("span lacks a total duration: %+v", sp)
	}
}

func TestPprofOptIn(t *testing.T) {
	hts, _, _ := newTestServer(t)
	// Off by default.
	resp, err := http.Get(hts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof must be off by default, status=%d", resp.StatusCode)
	}
}

func TestPprofEnabled(t *testing.T) {
	h := New(ts.New(ts.Config{}, sp.NewProvider()))
	h.EnablePprof()
	hts := httptest.NewServer(h)
	t.Cleanup(hts.Close)
	resp, err := http.Get(hts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "pprof") {
		t.Fatal("pprof index not served")
	}
}
