package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"histanon/internal/obs"
	"histanon/internal/sp"
	"histanon/internal/tgran"
	"histanon/internal/ts"
)

func TestMetricsEndpoint(t *testing.T) {
	hts, _, _ := newTestServer(t)
	c := NewClient(hts.URL)
	if err := c.RecordLocation(1, 100, 100, 7*tgran.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request(ServiceRequest{
		User: 1, X: 100, Y: 100, T: 7*tgran.Hour + 600, Service: "weather",
	}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type=%q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, name := range obs.MetricNames() {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Fatalf("/metrics lacks family %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, `histanon_ts_events_total{event="requests"} 1`) {
		t.Fatalf("requests counter missing:\n%s", out)
	}
	if !strings.Contains(out, "histanon_phl_users 1") {
		t.Fatalf("PHL gauge missing:\n%s", out)
	}

	// Only GET is a scrape.
	postResp, err := http.Post(hts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status=%d", postResp.StatusCode)
	}
}

func TestSpansEndpoint(t *testing.T) {
	hts, srv, _ := newTestServer(t)
	srv.Obs.Tracer.SetSampleRate(1)
	c := NewClient(hts.URL)
	if _, err := c.Request(ServiceRequest{
		User: 1, X: 50, Y: 50, T: 1000, Service: "weather",
	}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hts.URL + "/v1/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var spans []obs.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	sp := spans[0]
	if sp.User != 1 || sp.Service != "weather" || sp.Outcome != obs.OutcomeForwarded {
		t.Fatalf("span = %+v", sp)
	}
	if sp.TotalNs <= 0 {
		t.Fatalf("span lacks a total duration: %+v", sp)
	}
}

func TestTraceparentPropagation(t *testing.T) {
	hts, srv, _ := newTestServer(t)
	// Local tracing off: only the upstream sampled parent forces
	// collection and retention.
	srv.Obs.Tracer.SetSampleRate(0)
	parent := obs.MintTraceContext(true)

	body := strings.NewReader(`{"user":1,"x":50,"y":50,"t":1000,"service":"weather"}`)
	req, err := http.NewRequest(http.MethodPost, hts.URL+"/v1/request", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", parent.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}

	// The response rejoins the caller's trace: same trace id, a fresh
	// server-side span id, the sampled bit intact.
	hdr := resp.Header.Get("traceparent")
	tc, err := obs.ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", hdr, err)
	}
	if tc.TraceIDString() != parent.TraceIDString() {
		t.Fatalf("response left the trace: %q vs %q", tc.TraceIDString(), parent.TraceIDString())
	}
	if tc.SpanIDString() == parent.SpanIDString() {
		t.Fatal("server must mint its own span id")
	}
	if !tc.Sampled() {
		t.Fatal("sampled bit must survive propagation")
	}
	var dec DecisionResponse
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	if dec.TraceID != parent.TraceIDString() {
		t.Fatalf("decision trace id = %q", dec.TraceID)
	}

	// The sampled parent forced retention despite the 0 rate, and the
	// retained span is linked to the caller's span.
	spans := srv.Obs.Tracer.SpansByTrace(parent.TraceIDString())
	if len(spans) != 1 {
		t.Fatalf("retained %d spans for the trace, want 1", len(spans))
	}
	if spans[0].ParentSpanID != parent.SpanIDString() {
		t.Fatalf("span parent = %q, want %q", spans[0].ParentSpanID, parent.SpanIDString())
	}
	if spans[0].KeepReason != obs.KeepHead {
		t.Fatalf("keep reason = %q", spans[0].KeepReason)
	}
}

func TestMalformedTraceparentIgnored(t *testing.T) {
	hts, srv, _ := newTestServer(t)
	srv.Obs.Tracer.SetSampleRate(0)
	c := NewClient(hts.URL)
	dec, err := c.RequestTraced(ServiceRequest{
		User: 1, X: 50, Y: 50, T: 1000, Service: "weather",
	}, "ff-not-a-real-header-01")
	if err != nil {
		t.Fatal(err)
	}
	if dec.TraceID != "" {
		t.Fatalf("malformed parent minted trace %q with tracing off", dec.TraceID)
	}
	if got := srv.Obs.Tracer.Sampled(); got != 0 {
		t.Fatalf("malformed parent retained %d spans", got)
	}
}

func TestSpansFilterByTrace(t *testing.T) {
	hts, srv, _ := newTestServer(t)
	srv.Obs.Tracer.SetSampleRate(1)
	c := NewClient(hts.URL)
	var want string
	for i := 0; i < 3; i++ {
		dec, err := c.Request(ServiceRequest{
			User: 1, X: 50, Y: 50, T: int64(1000 + i), Service: "weather",
		})
		if err != nil {
			t.Fatal(err)
		}
		if dec.TraceID == "" {
			t.Fatal("traced request lacks a trace id")
		}
		want = dec.TraceID
	}

	resp, err := http.Get(hts.URL + "/v1/spans?trace=" + want)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spans []obs.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("filter returned %d spans, want 1", len(spans))
	}
	if spans[0].TraceID != want {
		t.Fatalf("filtered span belongs to %q, want %q", spans[0].TraceID, want)
	}
}

func TestSpansSummaryEndpoint(t *testing.T) {
	hts, srv, _ := newTestServer(t)
	srv.Obs.Tracer.SetSampleRate(1)
	c := NewClient(hts.URL)
	for i := 0; i < 4; i++ {
		if _, err := c.Request(ServiceRequest{
			User: 1, X: 50, Y: 50, T: int64(1000 + i), Service: "weather",
		}); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(hts.URL + "/v1/spans/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var sum SpanSummaryResponse
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Spans != 4 {
		t.Fatalf("summary covers %d spans, want 4", sum.Spans)
	}
	if sum.ByOutcome[obs.OutcomeForwarded] != 4 {
		t.Fatalf("by-outcome = %v", sum.ByOutcome)
	}
	if sum.ByKeepReason[obs.KeepHead] != 4 {
		t.Fatalf("by-keep-reason = %v", sum.ByKeepReason)
	}
	if len(sum.Stages) == 0 {
		t.Fatal("summary has no stage rows")
	}
	for _, st := range sum.Stages {
		if st.Count <= 0 || st.Stage == "" {
			t.Fatalf("malformed stage row: %+v", st)
		}
		if st.MaxUs < st.MeanUs {
			t.Fatalf("stage %s: max %gus < mean %gus", st.Stage, st.MaxUs, st.MeanUs)
		}
	}

	// POST is not a query.
	post, err := http.Post(hts.URL+"/v1/spans/summary", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/spans/summary status=%d", post.StatusCode)
	}
}

func TestExemplarResolvesToRetainedTrace(t *testing.T) {
	// The full operator loop: a traced request lands in a histogram
	// bucket with an exemplar, and that exemplar's trace id resolves to
	// the retained span via /v1/spans?trace=.
	hts, srv, _ := newTestServer(t)
	srv.Obs.Tracer.SetSampleRate(1)
	srv.Obs.SetExemplars(true)
	srv.MetricsRegistry().SetExemplars(true)
	c := NewClient(hts.URL)
	dec, err := c.Request(ServiceRequest{
		User: 1, X: 50, Y: 50, T: 1000, Service: "weather",
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`# \{trace_id="([0-9a-f]{32})"\}`).FindStringSubmatch(string(body))
	if m == nil {
		t.Fatalf("/metrics carries no exemplar annotation:\n%s", body)
	}
	if m[1] != dec.TraceID {
		t.Fatalf("exemplar trace %q, decision trace %q", m[1], dec.TraceID)
	}

	lookup, err := http.Get(hts.URL + "/v1/spans?trace=" + m[1])
	if err != nil {
		t.Fatal(err)
	}
	defer lookup.Body.Close()
	var spans []obs.Span
	if err := json.NewDecoder(lookup.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatalf("exemplar trace %s does not resolve to a retained span", m[1])
	}
	if spans[0].TraceID != m[1] {
		t.Fatalf("resolved span belongs to %q", spans[0].TraceID)
	}
}

func TestPprofOptIn(t *testing.T) {
	hts, _, _ := newTestServer(t)
	// Off by default.
	resp, err := http.Get(hts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof must be off by default, status=%d", resp.StatusCode)
	}
}

func TestPprofEnabled(t *testing.T) {
	h := New(ts.New(ts.Config{}, sp.NewProvider()))
	h.EnablePprof()
	hts := httptest.NewServer(h)
	t.Cleanup(hts.Close)
	resp, err := http.Get(hts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "pprof") {
		t.Fatal("pprof index not served")
	}
}
