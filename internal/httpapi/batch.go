package httpapi

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"

	"histanon/internal/geo"
	"histanon/internal/obs"
	"histanon/internal/phl"
	"histanon/internal/ts"
	"histanon/internal/wire"
)

// POST /v1/batch: the binary wire-protocol ingest channel. The body is
// one wire batch frame (internal/wire) of location updates and service
// calls; the text/JSON API stays the debug surface, this endpoint is
// the hot path a device SDK's wire.Batcher flushes into.
//
// Content negotiation: the request Content-Type must be WireContentType
// or the endpoint answers 415 — the JSON API never arrives here by
// accident, and a binary body never hits the JSON decoder. The Accept
// header picks the response encoding: WireContentType returns a batch
// frame of decision frames (one per service call, in order); anything
// else returns the BatchResponse JSON mirror.
//
// Location frames feed ts.Server.RecordLocation straight off the
// request buffer (the parse is zero-copy and zero-alloc); service-call
// frames go through the same traced request pipeline as POST
// /v1/request, including per-frame traceparent propagation.

// WireContentType is the media type of the binary wire framing.
const WireContentType = "application/x-histanon-wire"

// BatchResponse is the JSON body of POST /v1/batch when the caller does
// not accept the binary framing.
type BatchResponse struct {
	// Frames is how many inner frames the batch carried.
	Frames int `json:"frames"`
	// Locations is how many of them were location updates.
	Locations int `json:"locations"`
	// Decisions are the service-call verdicts, in batch order.
	Decisions []DecisionResponse `json:"decisions,omitempty"`
}

// batchBufPool recycles body-read and response-build buffers across
// batch requests, keeping the per-batch allocation cost flat regardless
// of batch size.
var batchBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

// SetWireBatch enables or disables the binary /v1/batch endpoint.
// Disabled, the route answers 404 and the JSON API remains the only
// ingest surface. Configure before serving traffic.
func (h *Handler) SetWireBatch(enabled bool) { h.wireBatchOff = !enabled }

// SetWireBatchMaxBodyBytes bounds /v1/batch bodies separately from the
// JSON endpoints (binary batches are legitimately larger than any JSON
// body); n <= 0 falls back to the general body bound. Configure before
// serving traffic.
func (h *Handler) SetWireBatchMaxBodyBytes(n int64) {
	if n < 0 {
		n = 0
	}
	h.batchMaxBody = n
}

// handleBatch serves POST /v1/batch.
func (h *Handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	if h.wireBatchOff {
		http.NotFound(w, r)
		return
	}
	maxBody := h.batchMaxBody
	if maxBody <= 0 {
		maxBody = h.maxBody
	}
	ws := h.srv.Wire
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, WireContentType) {
		writeJSON(w, http.StatusUnsupportedMediaType,
			errorResponse{Error: "Content-Type must be " + WireContentType})
		return
	}
	bufp := batchBufPool.Get().(*[]byte)
	defer func() {
		batchBufPool.Put(bufp)
	}()
	body, err := readAllInto((*bufp)[:0], http.MaxBytesReader(w, r.Body, maxBody))
	*bufp = body
	ws.Bytes.Add(int64(len(body)))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			ws.DecodeErrors.Add(1)
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: "batch exceeds body limit"})
			return
		}
		ws.DecodeErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "short body: " + err.Error()})
		return
	}

	dec, err := wire.NewBatchDecoder(body)
	if err != nil {
		ws.DecodeErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	binaryResp := strings.HasPrefix(r.Header.Get("Accept"), WireContentType)
	respp := batchBufPool.Get().(*[]byte)
	defer batchBufPool.Put(respp)
	decFrames := (*respp)[:0]
	defer func() { *respp = decFrames }()

	var jsonResp BatchResponse
	frames, locations, calls := 0, 0, 0
	for dec.Next() {
		frames++
		switch dec.Type() {
		case wire.FrameLocation:
			l, err := wire.ParseLocationPayload(dec.Flags(), dec.Payload())
			if err != nil {
				ws.DecodeErrors.Add(1)
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
				return
			}
			h.srv.RecordLocation(phl.UserID(l.User), l.Point())
			locations++
		case wire.FrameServiceCall:
			c, err := wire.ParseServiceCallPayload(dec.Flags(), dec.Payload())
			if err != nil {
				ws.DecodeErrors.Add(1)
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
				return
			}
			calls++
			var parent obs.TraceContext
			if c.Traceparent != "" {
				// Malformed traceparents are ignored, as on /v1/request.
				if tc, err := obs.ParseTraceparent(c.Traceparent); err == nil {
					parent = tc
				}
			}
			d := h.srv.RequestTraced(phl.UserID(c.User), geo.STPoint{
				P: geo.Point{X: c.X, Y: c.Y}, T: c.T,
			}, c.Service, c.Data, parent)
			if binaryResp {
				decFrames = wire.AppendDecision(decFrames, decisionFrame(d))
			} else {
				jsonResp.Decisions = append(jsonResp.Decisions, decisionJSON(d))
			}
		default:
			if dec.Type() == wire.FrameRequest {
				ws.Requests.Add(1)
			} else {
				ws.Other.Add(1)
			}
			ws.DecodeErrors.Add(1)
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: "batch ingest accepts location and service_call frames, got " + dec.Type().String()})
			return
		}
	}
	if err := dec.Err(); err != nil {
		ws.DecodeErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ws.Batches.Add(1)
	ws.BatchFrames.Observe(float64(frames))
	ws.Locations.Add(int64(locations))
	ws.ServiceCalls.Add(int64(calls))

	if binaryResp {
		inner := len(decFrames)
		batch, err := wire.AppendBatch(decFrames, calls, decFrames[:inner])
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
		w.Header().Set("Content-Type", WireContentType)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(batch[inner:])
		decFrames = batch[:0]
		return
	}
	jsonResp.Frames = frames
	jsonResp.Locations = locations
	writeJSON(w, http.StatusOK, jsonResp)
}

// decisionFrame projects a ts.Decision onto the binary wire, field for
// field the same subset DecisionResponse exposes as JSON.
func decisionFrame(d ts.Decision) wire.DecisionFrame {
	f := wire.DecisionFrame{
		Forwarded:      d.Forwarded,
		Generalized:    d.Generalized,
		HKAnonymity:    d.HKAnonymity,
		Unlinked:       d.Unlinked,
		AtRisk:         d.AtRisk,
		Suppressed:     d.Suppressed,
		Degraded:       d.Degraded,
		QIDExposed:     d.QIDExposed,
		MatchedLBQID:   d.MatchedLBQID,
		DegradedReason: d.DegradedReason,
		TraceID:        d.TraceID(),
	}
	if d.Request != nil {
		f.Pseudonym = string(d.Request.Pseudonym)
		f.HasContext = true
		f.Context = d.Request.Context
	}
	return f
}

// decisionJSON projects a ts.Decision onto the JSON wire; shared by
// /v1/request and the JSON flavor of /v1/batch.
func decisionJSON(d ts.Decision) DecisionResponse {
	resp := DecisionResponse{
		Forwarded:      d.Forwarded,
		Generalized:    d.Generalized,
		HKAnonymity:    d.HKAnonymity,
		MatchedLBQID:   d.MatchedLBQID,
		Unlinked:       d.Unlinked,
		AtRisk:         d.AtRisk,
		Suppressed:     d.Suppressed,
		Degraded:       d.Degraded,
		DegradedReason: d.DegradedReason,
		QIDExposed:     d.QIDExposed,
		TraceID:        d.TraceID(),
	}
	if d.Request != nil {
		resp.Pseudonym = string(d.Request.Pseudonym)
		resp.Context = &ContextJSON{
			MinX: d.Request.Context.Area.MinX, MinY: d.Request.Context.Area.MinY,
			MaxX: d.Request.Context.Area.MaxX, MaxY: d.Request.Context.Area.MaxY,
			Start: d.Request.Context.Time.Start, End: d.Request.Context.Time.End,
		}
	}
	return resp
}

// readAllInto is io.ReadAll into a reused buffer: it appends to buf and
// returns the extended slice, allocating only when the body outgrows
// the buffer's capacity.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}
