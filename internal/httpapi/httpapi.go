// Package httpapi exposes the trusted server over HTTP/JSON — the
// deployable form of the paper's Fig. 1, where mobile devices talk to
// the TS over the network and only the TS talks to service providers.
//
// Endpoints (JSON unless noted):
//
//	POST /v1/location   {"user":1,"x":10,"y":20,"t":25500}
//	POST /v1/request    {"user":1,"x":10,"y":20,"t":25500,
//	                     "service":"navigation","data":{"dest":"office"}}
//	POST /v1/batch      binary wire batch of location/service-call frames
//	                    (Content-Type application/x-histanon-wire; see
//	                    internal/wire and DESIGN.md §10)
//	POST /v1/lbqid      {"user":1,"spec":"lbqid \"commute\" { ... }"}
//	POST /v1/policy     {"user":1,"level":"high"}  or  {"user":1,"k":7,"theta":0.4}
//	POST /v1/mine       {"weekdaysOnly":true}            -> mined candidate LBQIDs
//	POST /v1/deploy     {"k":5,"maxWidth":1000,...}      -> feasibility verdict
//	GET  /v1/stats
//	GET  /v1/spans          -> recent retained spans; ?trace=<id> filters one trace
//	GET  /v1/spans/summary  -> span counts and per-stage latency breakdown
//	GET  /metrics           -> Prometheus text exposition (OBSERVABILITY.md)
//	GET  /healthz
//
// POST /v1/request participates in W3C Trace Context: a valid incoming
// `traceparent` header puts the request's span in the caller's trace
// (a sampled parent forces retention), and the response carries the
// request span's own traceparent so callers can correlate. Malformed
// headers are ignored, as the spec directs.
//
// Handler.EnablePprof additionally mounts net/http/pprof under
// /debug/pprof/ (opt-in; lbserve exposes it behind the -pprof flag).
// The matching Client lives in the same package.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"

	"histanon/internal/deploy"
	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/mine"
	"histanon/internal/obs"
	"histanon/internal/phl"
	"histanon/internal/resilience"
	"histanon/internal/storage"
	"histanon/internal/ts"
)

// LocationRequest is the body of POST /v1/location.
type LocationRequest struct {
	User int64   `json:"user"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	T    int64   `json:"t"`
}

// ServiceRequest is the body of POST /v1/request.
type ServiceRequest struct {
	User    int64             `json:"user"`
	X       float64           `json:"x"`
	Y       float64           `json:"y"`
	T       int64             `json:"t"`
	Service string            `json:"service"`
	Data    map[string]string `json:"data,omitempty"`
}

// DecisionResponse mirrors ts.Decision on the wire.
type DecisionResponse struct {
	Forwarded    bool   `json:"forwarded"`
	Generalized  bool   `json:"generalized"`
	HKAnonymity  bool   `json:"hkAnonymity"`
	MatchedLBQID string `json:"matchedLbqid,omitempty"`
	Unlinked     bool   `json:"unlinked"`
	AtRisk       bool   `json:"atRisk"`
	Suppressed   bool   `json:"suppressed"`
	// Degraded marks a fail-closed suppression by the delivery layer
	// (queue full or circuit breaker open); DegradedReason names it.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degradedReason,omitempty"`
	QIDExposed     bool   `json:"qidExposed"`
	// TraceID is the request's trace id when the request was traced; the
	// key for GET /v1/spans?trace=.
	TraceID string `json:"traceId,omitempty"`
	// Context is the forwarded ⟨Area, TimeInterval⟩ when forwarded.
	Context *ContextJSON `json:"context,omitempty"`
	// Pseudonym is the pseudonym used toward the SP when forwarded.
	Pseudonym string `json:"pseudonym,omitempty"`
}

// ContextJSON is the generalized request context on the wire.
type ContextJSON struct {
	MinX  float64 `json:"minX"`
	MinY  float64 `json:"minY"`
	MaxX  float64 `json:"maxX"`
	MaxY  float64 `json:"maxY"`
	Start int64   `json:"start"`
	End   int64   `json:"end"`
}

// LBQIDRequest is the body of POST /v1/lbqid.
type LBQIDRequest struct {
	User int64  `json:"user"`
	Spec string `json:"spec"`
}

// PolicyRequest is the body of POST /v1/policy. Either Level or the
// explicit parameters must be set.
type PolicyRequest struct {
	User     int64   `json:"user"`
	Level    string  `json:"level,omitempty"`
	K        int     `json:"k,omitempty"`
	Theta    float64 `json:"theta,omitempty"`
	Suppress bool    `json:"suppress,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Counters     map[string]int64 `json:"counters"`
	GenAreaMean  float64          `json:"genAreaMean"`
	GenAreaP95   float64          `json:"genAreaP95"`
	GenWindow    float64          `json:"genWindowMean"`
	GenSamples   int              `json:"genSamples"`
	TrackedUsers int              `json:"trackedUsers"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// DefaultMaxBodyBytes bounds request bodies (1 MiB): no legitimate API
// body comes close, and an unbounded decoder is a memory-exhaustion
// vector.
const DefaultMaxBodyBytes = 1 << 20

// Handler serves the API over a trusted server.
type Handler struct {
	srv *ts.Server
	mux *http.ServeMux

	// maxBody bounds request bodies; overflowing requests get 413.
	maxBody int64
	// batchMaxBody, when > 0, bounds /v1/batch bodies separately from
	// maxBody (binary batches are legitimately larger than JSON bodies).
	batchMaxBody int64
	// wireBatchOff disables the binary /v1/batch endpoint (404).
	wireBatchOff bool
	// maxInFlight bounds concurrently served requests (0 = unlimited);
	// excess load is shed with 503 + Retry-After. /healthz and /metrics
	// are exempt so operators can observe an overloaded server.
	maxInFlight int64
	inflight    atomic.Int64
	shed        atomic.Int64

	// outbox, when set, contributes delivery-queue and breaker state to
	// /healthz.
	outbox *resilience.Outbox
	// snapshotAge reports seconds since the last durable snapshot (-1 =
	// never); snapshotStaleAfter is the age beyond which /healthz turns
	// degraded. Zero-valued when snapshotting is off.
	snapshotAge        func() float64
	snapshotStaleAfter float64

	// storage, when set, contributes the durable tiered store's WAL,
	// tier and recovery state to /healthz.
	storage *storage.TieredStore
}

// New returns an http.Handler exposing srv with the default body bound
// and no admission limit; see SetMaxInFlight, SetMaxBodyBytes,
// SetOutbox and SetSnapshotAge for the production knobs.
func New(srv *ts.Server) *Handler {
	h := &Handler{srv: srv, mux: http.NewServeMux(), maxBody: DefaultMaxBodyBytes}
	h.mux.HandleFunc("/v1/location", h.postOnly(h.handleLocation))
	h.mux.HandleFunc("/v1/request", h.postOnly(h.handleRequest))
	h.mux.HandleFunc("/v1/batch", h.postOnly(h.handleBatch))
	h.mux.HandleFunc("/v1/lbqid", h.postOnly(h.handleLBQID))
	h.mux.HandleFunc("/v1/policy", h.postOnly(h.handlePolicy))
	h.mux.HandleFunc("/v1/mine", h.postOnly(h.handleMine))
	h.mux.HandleFunc("/v1/deploy", h.postOnly(h.handleDeploy))
	h.mux.HandleFunc("/v1/stats", h.handleStats)
	h.mux.HandleFunc("/v1/spans", h.handleSpans)
	h.mux.HandleFunc("/v1/spans/summary", h.handleSpansSummary)
	h.mux.HandleFunc("/v1/slo", h.handleSLO)
	h.mux.HandleFunc("/metrics", h.handleMetrics)
	h.mux.HandleFunc("/healthz", h.handleHealthz)
	return h
}

// SetMaxInFlight bounds concurrently served requests; n <= 0 removes
// the bound. Configure before serving traffic. The shed counter and the
// in-flight gauge feed the server's histanon_http_* metric families.
func (h *Handler) SetMaxInFlight(n int) {
	h.maxInFlight = int64(n)
	if n > 0 {
		h.srv.SetHTTPMetrics(h.shed.Load,
			func() float64 { return float64(h.inflight.Load()) })
	}
}

// SetMaxBodyBytes bounds request bodies; n <= 0 restores the default.
func (h *Handler) SetMaxBodyBytes(n int64) {
	if n <= 0 {
		n = DefaultMaxBodyBytes
	}
	h.maxBody = n
}

// SetOutbox wires the resilience delivery queue into /healthz (queue
// depth, drops, per-service breaker states). Configure before serving
// traffic.
func (h *Handler) SetOutbox(o *resilience.Outbox) { h.outbox = o }

// SetSnapshotAge wires snapshot durability into /healthz: age reports
// seconds since the last successful snapshot (-1 = never), and ages
// beyond staleAfter mark the server degraded. Configure before serving
// traffic.
func (h *Handler) SetSnapshotAge(age func() float64, staleAfter float64) {
	h.snapshotAge = age
	h.snapshotStaleAfter = staleAfter
}

// SetStorage wires the durable tiered PHL store into /healthz: WAL
// health (a failed WAL suppresses every request and marks the server
// degraded), hot/cold tier occupancy, cold-read errors and what the
// last crash recovery replayed. Configure before serving traffic.
func (h *Handler) SetStorage(st *storage.TieredStore) { h.storage = st }

// EnablePprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/. Call it only on operator-facing listeners: profiles
// expose internals (goroutine dumps, heap contents) that must never be
// reachable from the public device API.
func (h *Handler) EnablePprof() {
	h.mux.HandleFunc("/debug/pprof/", pprof.Index)
	h.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	h.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	h.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	h.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// handleMetrics serves the Prometheus text exposition.
func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Errors past the first byte surface as a truncated scrape.
	_ = h.srv.MetricsRegistry().WritePrometheus(w)
}

// handleSpans returns the tracer's buffered spans, oldest first. An
// operator turns sampling on (lbserve -trace-sample) and reads recent
// per-stage timings here without attaching a profiler. ?trace=<id>
// restricts the output to one trace — the lookup a /metrics exemplar's
// trace_id resolves through.
func (h *Handler) handleSpans(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	if trace := r.URL.Query().Get("trace"); trace != "" {
		writeJSON(w, http.StatusOK, h.srv.Obs.Tracer.SpansByTrace(trace))
		return
	}
	writeJSON(w, http.StatusOK, h.srv.Obs.Tracer.Spans())
}

// SpanSummaryResponse is the body of GET /v1/spans/summary: the
// retained spans aggregated by outcome, keep reason and pipeline stage.
type SpanSummaryResponse struct {
	// Spans is how many spans the ring currently holds.
	Spans int `json:"spans"`
	// ByOutcome and ByKeepReason count the buffered spans by their
	// outcome and tail-sampling keep reason.
	ByOutcome    map[string]int `json:"byOutcome"`
	ByKeepReason map[string]int `json:"byKeepReason"`
	// Stages is the per-stage latency breakdown over the buffered spans,
	// in pipeline order; stages no span reached are omitted.
	Stages []StageSummary `json:"stages"`
}

// StageSummary aggregates one pipeline stage's latency over the
// buffered spans that reached it.
type StageSummary struct {
	Stage   string  `json:"stage"`
	Count   int     `json:"count"`
	TotalMs float64 `json:"totalMs"`
	MeanUs  float64 `json:"meanUs"`
	MaxUs   float64 `json:"maxUs"`
}

// handleSpansSummary aggregates the span ring into the stage-latency
// breakdown an operator reads before diving into individual traces.
func (h *Handler) handleSpansSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	spans := h.srv.Obs.Tracer.Spans()
	resp := SpanSummaryResponse{
		Spans:        len(spans),
		ByOutcome:    map[string]int{},
		ByKeepReason: map[string]int{},
	}
	var count [obs.NumStages]int
	var total, max [obs.NumStages]int64
	for i := range spans {
		sp := &spans[i]
		if sp.Outcome != "" {
			resp.ByOutcome[sp.Outcome]++
		}
		if sp.KeepReason != "" {
			resp.ByKeepReason[sp.KeepReason]++
		}
		for s, ns := range sp.StageNs {
			if ns > 0 {
				count[s]++
				total[s] += ns
				if ns > max[s] {
					max[s] = ns
				}
			}
		}
	}
	for _, stage := range obs.Stages() {
		if count[stage] == 0 {
			continue
		}
		resp.Stages = append(resp.Stages, StageSummary{
			Stage:   stage.String(),
			Count:   count[stage],
			TotalMs: float64(total[stage]) / 1e6,
			MeanUs:  float64(total[stage]) / float64(count[stage]) / 1e3,
			MaxUs:   float64(max[stage]) / 1e3,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ServeHTTP implements http.Handler. When an admission limit is set,
// requests beyond it are shed with 503 + Retry-After instead of queuing
// without bound; /healthz, /metrics and /v1/slo bypass the limit so the
// overload — and any privacy burn it causes — stays observable.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.maxInFlight > 0 && r.URL.Path != "/healthz" && r.URL.Path != "/metrics" &&
		r.URL.Path != "/v1/slo" {
		if h.inflight.Add(1) > h.maxInFlight {
			h.inflight.Add(-1)
			h.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable,
				errorResponse{Error: "server overloaded, retry later"})
			return
		}
		defer h.inflight.Add(-1)
	}
	h.mux.ServeHTTP(w, r)
}

// HealthResponse is the body of GET /healthz: the server's real
// operational state, not a bare liveness ping. Status is "ok" or
// "degraded"; Degraded lists the reasons (open breakers, saturated
// delivery queue, saturated admission, stale snapshot).
type HealthResponse struct {
	Status   string   `json:"status"`
	Degraded []string `json:"degraded,omitempty"`
	// InFlight / MaxInFlight / ShedTotal describe admission control
	// (MaxInFlight 0 = unlimited).
	InFlight    int64 `json:"inFlight"`
	MaxInFlight int64 `json:"maxInFlight,omitempty"`
	ShedTotal   int64 `json:"shedTotal,omitempty"`
	// Outbox describes the async SP delivery queue, when one is wired.
	Outbox *OutboxHealth `json:"outbox,omitempty"`
	// SnapshotAgeSeconds is the age of the last durable PHL snapshot
	// (-1 = none yet); omitted when snapshotting is off.
	SnapshotAgeSeconds *float64 `json:"snapshotAgeSeconds,omitempty"`
	// Storage describes the durable tiered PHL store, when one is wired.
	Storage *StorageHealth `json:"storage,omitempty"`
	// SLO summarizes the privacy-SLO engine (objective states and canary
	// staleness) when the engine is enabled.
	SLO *SLOHealth `json:"slo,omitempty"`
}

// StorageHealth is the durable-storage section of /healthz: the state
// an operator needs to tell "suppressing because the WAL died" from
// "serving normally with most of the PHL demoted to disk".
type StorageHealth struct {
	// Failed is true once a WAL write or fsync has failed; the store is
	// fail-stop and every request is suppressed until a restart.
	Failed bool `json:"failed"`
	// WALLagRecords counts appended records not yet covered by an fsync.
	WALLagRecords int64 `json:"walLagRecords"`
	// WALErrors / ColdReadErrors / SnapshotErrors are cumulative.
	WALErrors      int64 `json:"walErrors"`
	ColdReadErrors int64 `json:"coldReadErrors"`
	SnapshotErrors int64 `json:"snapshotErrors"`
	// HotSamples / ColdSamples split the PHL between memory and disk;
	// ChainFiles is the snapshot chain length (compaction bounds it).
	HotSamples  int `json:"hotSamples"`
	ColdSamples int `json:"coldSamples"`
	ChainFiles  int `json:"chainFiles"`
	// RecoverySeconds / RecoveryReplayed describe the last boot: wall
	// time to recover and WAL records replayed past the snapshot chain.
	RecoverySeconds  float64 `json:"recoverySeconds"`
	RecoveryReplayed int     `json:"recoveryReplayed"`
}

// OutboxHealth is the delivery-queue section of /healthz.
type OutboxHealth struct {
	QueueDepth    int               `json:"queueDepth"`
	QueueCapacity int               `json:"queueCapacity"`
	Dropped       int64             `json:"dropped"`
	Breakers      map[string]string `json:"breakers,omitempty"`
}

func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	resp := HealthResponse{
		Status:      "ok",
		InFlight:    h.inflight.Load(),
		MaxInFlight: h.maxInFlight,
		ShedTotal:   h.shed.Load(),
	}
	if h.maxInFlight > 0 && resp.InFlight >= h.maxInFlight {
		resp.Degraded = append(resp.Degraded, "admission_saturated")
	}
	if o := h.outbox; o != nil {
		oh := &OutboxHealth{
			QueueDepth:    o.QueueDepth(),
			QueueCapacity: o.QueueCapacity(),
			Dropped:       o.Dropped(),
			Breakers:      o.BreakerStates(),
		}
		resp.Outbox = oh
		if oh.QueueDepth >= oh.QueueCapacity {
			resp.Degraded = append(resp.Degraded, "outbox_queue_full")
		}
		for svc, state := range oh.Breakers {
			if state == resilience.BreakerOpen.String() {
				resp.Degraded = append(resp.Degraded, "breaker_open:"+svc)
			}
		}
	}
	if h.snapshotAge != nil {
		age := h.snapshotAge()
		resp.SnapshotAgeSeconds = &age
		if h.snapshotStaleAfter > 0 && (age < 0 || age > h.snapshotStaleAfter) {
			resp.Degraded = append(resp.Degraded, "snapshot_stale")
		}
	}
	if st := h.storage; st != nil {
		stats := st.Stats()
		rec := st.Recovery()
		resp.Storage = &StorageHealth{
			Failed:           stats.Failed,
			WALLagRecords:    stats.WALLag,
			WALErrors:        stats.WALErrors,
			ColdReadErrors:   stats.ColdErrors,
			SnapshotErrors:   stats.SnapshotErrors,
			HotSamples:       stats.HotSamples,
			ColdSamples:      stats.ColdSamples,
			ChainFiles:       stats.ChainFiles,
			RecoverySeconds:  rec.Duration.Seconds(),
			RecoveryReplayed: rec.Replayed,
		}
		if stats.Failed {
			resp.Degraded = append(resp.Degraded, "storage_wal_failed")
		}
	}
	resp.SLO = h.sloHealth(&resp.Degraded)
	if len(resp.Degraded) > 0 {
		resp.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) postOnly(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
			return
		}
		fn(w, r)
	}
}

func (h *Handler) handleLocation(w http.ResponseWriter, r *http.Request) {
	var req LocationRequest
	if !h.decode(w, r, &req) {
		return
	}
	h.srv.RecordLocation(phl.UserID(req.User), geo.STPoint{
		P: geo.Point{X: req.X, Y: req.Y}, T: req.T,
	})
	writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
}

func (h *Handler) handleRequest(w http.ResponseWriter, r *http.Request) {
	var req ServiceRequest
	if !h.decode(w, r, &req) {
		return
	}
	if req.Service == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "service is required"})
		return
	}
	// A malformed traceparent is ignored (the W3C spec's directive):
	// parent stays zero and the request is traced — or not — locally.
	var parent obs.TraceContext
	if tp := r.Header.Get("traceparent"); tp != "" {
		if tc, err := obs.ParseTraceparent(tp); err == nil {
			parent = tc
		}
	}
	dec := h.srv.RequestTraced(phl.UserID(req.User), geo.STPoint{
		P: geo.Point{X: req.X, Y: req.Y}, T: req.T,
	}, req.Service, req.Data, parent)
	if tp := dec.Traceparent(); tp != "" {
		w.Header().Set("traceparent", tp)
	}
	writeJSON(w, http.StatusOK, decisionJSON(dec))
}

func (h *Handler) handleLBQID(w http.ResponseWriter, r *http.Request) {
	var req LBQIDRequest
	if !h.decode(w, r, &req) {
		return
	}
	if err := h.srv.AddLBQIDSpec(phl.UserID(req.User), req.Spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "registered"})
}

func (h *Handler) handlePolicy(w http.ResponseWriter, r *http.Request) {
	var req PolicyRequest
	if !h.decode(w, r, &req) {
		return
	}
	var pol ts.Policy
	switch req.Level {
	case "low":
		pol = ts.PolicyForLevel(ts.Low)
	case "medium":
		pol = ts.PolicyForLevel(ts.Medium)
	case "high":
		pol = ts.PolicyForLevel(ts.High)
	case "":
		if req.K < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "level or k required"})
			return
		}
		pol = ts.Policy{K: req.K, Theta: req.Theta, SuppressAtRisk: req.Suppress}
	default:
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("unknown level %q", req.Level)})
		return
	}
	h.srv.RegisterUser(phl.UserID(req.User), pol)
	writeJSON(w, http.StatusOK, map[string]string{"status": "registered"})
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	counters := map[string]int64{}
	for _, name := range h.srv.Counters.Names() {
		counters[name] = h.srv.Counters.Get(name)
	}
	resp := StatsResponse{
		Counters:     counters,
		GenSamples:   h.srv.AreaM2.N(),
		TrackedUsers: h.srv.Store().NumUsers(),
	}
	if resp.GenSamples > 0 {
		resp.GenAreaMean = h.srv.AreaM2.Mean()
		resp.GenAreaP95 = h.srv.AreaM2.Quantile(0.95)
		resp.GenWindow = h.srv.IntervalS.Mean()
	}
	writeJSON(w, http.StatusOK, resp)
}

// decode parses a JSON body bounded by the handler's body limit.
// Overflowing bodies get 413 (and the connection closed, per
// http.MaxBytesReader); malformed ones get 400.
func (h *Handler) decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, h.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
				Error: "request body exceeds " + strconv.FormatInt(tooBig.Limit, 10) + " bytes"})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header cannot be reported to the client;
	// they surface as truncated bodies, which clients treat as errors.
	_ = json.NewEncoder(w).Encode(v)
}

// MineRequest is the body of POST /v1/mine.
type MineRequest struct {
	// WeekdaysOnly restricts mining to business days.
	WeekdaysOnly bool `json:"weekdaysOnly,omitempty"`
	// MinDays and MaxSharers tune the miner (zero = defaults).
	MinDays    int `json:"minDays,omitempty"`
	MaxSharers int `json:"maxSharers,omitempty"`
}

// MinedCandidateJSON is one mined pattern on the wire.
type MinedCandidateJSON struct {
	User        int64  `json:"user"`
	Name        string `json:"name"`
	Elements    int    `json:"elements"`
	SupportDays int    `json:"supportDays"`
	Sharers     int    `json:"sharers"`
	Spec        string `json:"spec"`
}

// DeployRequest is the body of POST /v1/deploy.
type DeployRequest struct {
	K           int     `json:"k"`
	MaxWidth    float64 `json:"maxWidth,omitempty"`
	MaxHeight   float64 `json:"maxHeight,omitempty"`
	MaxDuration int64   `json:"maxDuration,omitempty"`
}

// DeployReportJSON is the feasibility verdict on the wire.
type DeployReportJSON struct {
	Samples      int     `json:"samples"`
	FeasibleRate float64 `json:"feasibleRate"`
	CoveredRate  float64 `json:"coveredRate"`
	OnDemandRate float64 `json:"onDemandRate"`
	Verdict      string  `json:"verdict"`
}

func (h *Handler) handleMine(w http.ResponseWriter, r *http.Request) {
	var req MineRequest
	if !h.decode(w, r, &req) {
		return
	}
	cands := mine.Mine(h.srv.Store(), mine.Config{
		WeekdaysOnly: req.WeekdaysOnly,
		MinDays:      req.MinDays,
		MaxSharers:   req.MaxSharers,
	})
	out := make([]MinedCandidateJSON, 0, len(cands))
	for _, c := range cands {
		out = append(out, MinedCandidateJSON{
			User:        int64(c.User),
			Name:        c.Pattern.Name,
			Elements:    len(c.Pattern.Elements),
			SupportDays: c.SupportDays,
			Sharers:     c.Sharers,
			Spec:        c.Pattern.Spec(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *Handler) handleDeploy(w http.ResponseWriter, r *http.Request) {
	var req DeployRequest
	if !h.decode(w, r, &req) {
		return
	}
	rep, err := deploy.Analyze(deploy.Input{
		Store: h.srv.Store(),
		K:     req.K,
		Tolerance: generalize.Tolerance{
			MaxWidth: req.MaxWidth, MaxHeight: req.MaxHeight, MaxDuration: req.MaxDuration,
		},
	})
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, DeployReportJSON{
		Samples:      rep.Samples,
		FeasibleRate: rep.FeasibleRate,
		CoveredRate:  rep.CoveredRate,
		OnDemandRate: rep.OnDemandRate,
		Verdict:      rep.Verdict.String(),
	})
}
