package httpapi

import (
	"bytes"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"histanon/internal/tgran"
	"histanon/internal/wire"
)

// buildLocationBatch encodes location updates for users [2..n+1] into
// one batch frame, mirroring the crowd TestEndToEndFlow records over
// JSON.
func buildCrowdBatch(t *testing.T, n int) []byte {
	t.Helper()
	var frames []byte
	for u := int64(2); u < int64(2+n); u++ {
		frames = wire.AppendLocation(frames, wire.LocationUpdate{
			User: u, X: float64(u * 20), Y: float64(u * 15), T: 7*tgran.Hour + u*30,
		})
	}
	batch, err := wire.AppendBatch(nil, n, frames)
	if err != nil {
		t.Fatal(err)
	}
	return batch
}

func postBatch(t *testing.T, url string, body []byte, accept string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", WireContentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestBatchEndToEnd drives the binary channel through the same flow as
// the JSON TestEndToEndFlow: crowd via a location batch, then a
// service-call batch whose decision must match a JSON /v1/request for
// the same op.
func TestBatchEndToEnd(t *testing.T) {
	hts, srv, provider := newTestServer(t)
	c := NewClient(hts.URL)
	if err := c.SetPolicyLevel(1, "medium"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLBQID(1, commuteSpec); err != nil {
		t.Fatal(err)
	}

	resp := postBatch(t, hts.URL, buildCrowdBatch(t, 8), "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("location batch: status %d: %s", resp.StatusCode, body)
	}

	// A service call through the binary channel...
	call := wire.ServiceCall{
		User: 1, X: 100, Y: 100, T: 7*tgran.Hour + 600,
		Service: "navigation", Data: map[string]string{"dest": "office"},
	}
	frames, err := wire.AppendServiceCall(nil, call)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := wire.AppendBatch(nil, 1, frames)
	if err != nil {
		t.Fatal(err)
	}
	resp = postBatch(t, hts.URL, batch, WireContentType)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("call batch: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != WireContentType {
		t.Fatalf("response content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := wire.NewBatchDecoder(body)
	if err != nil {
		t.Fatal(err)
	}
	var decisions []wire.DecisionFrame
	for dec.Next() {
		if dec.Type() != wire.FrameDecision {
			t.Fatalf("unexpected response frame %s", dec.Type())
		}
		d, err := wire.ParseDecisionPayload(dec.Flags(), dec.Payload())
		if err != nil {
			t.Fatal(err)
		}
		decisions = append(decisions, d)
	}
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 1 {
		t.Fatalf("got %d decisions, want 1", len(decisions))
	}
	d := decisions[0]
	if !d.Forwarded || !d.Generalized || d.MatchedLBQID != "commute" || !d.HKAnonymity {
		t.Fatalf("decision: %+v", d)
	}
	if !d.HasContext || d.Context.Area.MaxX <= d.Context.Area.MinX || d.Pseudonym == "" {
		t.Fatalf("decision context: %+v", d)
	}

	// The SP saw the same generalized request shape as over JSON.
	reqs := provider.Requests()
	if len(reqs) != 1 || reqs[0].Service != "navigation" {
		t.Fatalf("provider requests: %+v", reqs)
	}
	if !reflect.DeepEqual(reqs[0].Context, d.Context) {
		t.Fatalf("decision context %+v != forwarded context %+v", d.Context, reqs[0].Context)
	}

	// Wire metrics moved.
	ws := srv.Wire
	if ws.Batches.Load() != 2 || ws.Locations.Load() != 8 || ws.ServiceCalls.Load() != 1 {
		t.Fatalf("wire stats: batches=%d locations=%d calls=%d",
			ws.Batches.Load(), ws.Locations.Load(), ws.ServiceCalls.Load())
	}
	if ws.Bytes.Load() == 0 || ws.BatchFrames.Count() != 2 {
		t.Fatalf("wire stats: bytes=%d batch_frames_count=%d", ws.Bytes.Load(), ws.BatchFrames.Count())
	}

	// And they show up in the exposition.
	mresp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`histanon_wire_batches_total 2`,
		`histanon_wire_frames_total{type="location"} 8`,
		`histanon_wire_frames_total{type="service_call"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}

// TestBatchJSONResponse checks the non-binary Accept path.
func TestBatchJSONResponse(t *testing.T) {
	hts, _, _ := newTestServer(t)
	resp := postBatch(t, hts.URL, buildCrowdBatch(t, 3), "application/json")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{`"frames":3`, `"locations":3`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("JSON response %s missing %q", body, want)
		}
	}
}

// TestBatchContentNegotiation pins the rejection paths: wrong
// Content-Type gets 415, garbage and wrong frame types get 400 and
// count decode errors.
func TestBatchContentNegotiation(t *testing.T) {
	hts, srv, _ := newTestServer(t)

	req, _ := http.NewRequest(http.MethodPost, hts.URL+"/v1/batch", strings.NewReader(`{"user":1}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("JSON body on batch endpoint: status %d, want 415", resp.StatusCode)
	}

	resp = postBatch(t, hts.URL, []byte("not a batch"), "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage batch: status %d, want 400", resp.StatusCode)
	}

	// A request frame is TS→SP traffic; the ingest endpoint rejects it.
	r := &wire.Request{ID: 1, Pseudonym: "p", Service: "s"}
	r.Context.Area.MaxX, r.Context.Area.MaxY = 1, 1
	r.Context.Time.End = 1
	frames, err := wire.EncodeBinaryRequest(r)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := wire.AppendBatch(nil, 1, frames)
	if err != nil {
		t.Fatal(err)
	}
	resp = postBatch(t, hts.URL, batch, "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("request frame on ingest: status %d, want 400", resp.StatusCode)
	}

	if got := srv.Wire.DecodeErrors.Load(); got != 2 {
		t.Fatalf("decode errors %d, want 2", got)
	}
	if got := srv.Wire.Requests.Load(); got != 1 {
		t.Fatalf("rejected request frames %d, want 1", got)
	}
}

// TestBatchSenderEndToEnd exercises the client-side Batcher → HTTP →
// batch decode → pipeline loop, decisions coming back through the
// callback.
func TestBatchSenderEndToEnd(t *testing.T) {
	hts, _, _ := newTestServer(t)
	c := NewClient(hts.URL)
	if err := c.SetPolicyLevel(1, "medium"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLBQID(1, commuteSpec); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var decisions []wire.DecisionFrame
	s, err := c.NewBatchSender(BatchSenderConfig{
		MaxDelay: 5 * time.Millisecond,
		OnDecision: func(d wire.DecisionFrame) {
			mu.Lock()
			decisions = append(decisions, d)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for u := int64(2); u <= 9; u++ {
		if err := s.RecordLocation(u, float64(u*20), float64(u*15), 7*tgran.Hour+u*30); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Request(wire.ServiceCall{
		User: 1, X: 100, Y: 100, T: 7*tgran.Hour + 600,
		Service: "navigation", Data: map[string]string{"dest": "office"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Added != 9 || st.Flushed != 9 || st.Dropped != 0 || st.Pending != 0 {
		t.Fatalf("sender stats: %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(decisions) != 1 {
		t.Fatalf("got %d decisions, want 1", len(decisions))
	}
	if !decisions[0].Forwarded || decisions[0].MatchedLBQID != "commute" {
		t.Fatalf("decision: %+v", decisions[0])
	}
}
