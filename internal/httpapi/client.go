package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
)

// Client is a Go client for the histanon HTTP API — what a mobile
// device (or its platform SDK) would embed.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:7408".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// RecordLocation reports a location update.
func (c *Client) RecordLocation(user int64, x, y float64, t int64) error {
	var out map[string]string
	return c.post("/v1/location", LocationRequest{User: user, X: x, Y: y, T: t}, &out)
}

// Request issues a service request and returns the TS decision.
func (c *Client) Request(req ServiceRequest) (DecisionResponse, error) {
	var out DecisionResponse
	err := c.post("/v1/request", req, &out)
	return out, err
}

// RequestTraced issues a service request under an existing trace: the
// traceparent header value (e.g. from obs.TraceContext.Traceparent)
// rides along, so the server's request span joins the caller's trace.
// An empty traceparent behaves like Request.
func (c *Client) RequestTraced(req ServiceRequest, traceparent string) (DecisionResponse, error) {
	var out DecisionResponse
	buf, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	hreq, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/request", bytes.NewReader(buf))
	if err != nil {
		return out, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		hreq.Header.Set("traceparent", traceparent)
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, decodeError(resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// AddLBQID registers a quasi-identifier specification.
func (c *Client) AddLBQID(user int64, spec string) error {
	var out map[string]string
	return c.post("/v1/lbqid", LBQIDRequest{User: user, Spec: spec}, &out)
}

// SetPolicyLevel registers a qualitative privacy level for the user.
func (c *Client) SetPolicyLevel(user int64, level string) error {
	var out map[string]string
	return c.post("/v1/policy", PolicyRequest{User: user, Level: level}, &out)
}

// SetPolicy registers explicit privacy parameters.
func (c *Client) SetPolicy(user int64, k int, theta float64, suppress bool) error {
	var out map[string]string
	return c.post("/v1/policy", PolicyRequest{User: user, K: k, Theta: theta, Suppress: suppress}, &out)
}

// Stats fetches the server's counters and summaries.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	resp, err := c.httpClient().Get(c.BaseURL + "/v1/stats")
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, decodeError(resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

func (c *Client) post(path string, body, out interface{}) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Post(c.BaseURL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("httpapi: %s (%s)", e.Error, resp.Status)
	}
	return fmt.Errorf("httpapi: unexpected status %s", resp.Status)
}
