// End-to-end privacy-burn smoke: real HTTP traffic seeds a below-k
// breach, and the resulting warning → page escalation must be visible on
// every operator surface at once — /v1/slo, the /healthz SLO section,
// the histanon_slo_* metric families, and the KindSLO audit records.

package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"histanon/internal/obs"
	"histanon/internal/slo"
	"histanon/internal/sp"
	"histanon/internal/tgran"
	"histanon/internal/ts"
)

// newSLOTestServer builds a server with short SLO windows, an aggressive
// below_k objective (10% budget, warn 2x, page 10x, min 5), a live audit
// log, and the engine enabled — the same shape lbserve wires, scaled for
// a test.
func newSLOTestServer(t *testing.T) (*httptest.Server, *ts.Server, *bytes.Buffer) {
	t.Helper()
	srv := ts.New(ts.Config{
		DefaultPolicy: ts.Policy{K: 3},
		SLO: slo.Options{
			Windows: []slo.WindowSpec{
				{Name: "5s", Seconds: 5}, {Name: "15s", Seconds: 15}, {Name: "60s", Seconds: 60},
			},
			Objectives: []slo.Objective{{
				Signal: slo.SignalBelowK, Budget: 0.10,
				WarnBurn: 2, PageBurn: 10, MinDecisions: 5,
			}},
			MinEvalGap: -1,
		},
	}, sp.NewProvider())
	var audit bytes.Buffer
	srv.Obs.SetAudit(obs.NewAuditLog(&audit))
	srv.SLO.SetEnabled(true)
	hts := httptest.NewServer(New(srv))
	t.Cleanup(hts.Close)
	return hts, srv, &audit
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestSLOBreachEndToEnd(t *testing.T) {
	hts, srv, audit := newSLOTestServer(t)
	c := NewClient(hts.URL)

	// User 1 commutes through a crowded area: requests achieve k.
	// User 20 demands k=50 from a store holding ~10 users: generalization
	// cannot find enough peers anywhere, so every request lands at
	// achieved k=1 — the seeded privacy burn.
	if err := c.AddLBQID(1, commuteSpec); err != nil {
		t.Fatal(err)
	}
	if err := c.SetPolicy(20, 50, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLBQID(20, `
lbqid "lonely" {
    element area [1000,1400]x[1000,1400] time [06:00,10:00]
    recurrence 1.Days
}`); err != nil {
		t.Fatal(err)
	}
	for u := int64(2); u <= 9; u++ {
		if err := c.RecordLocation(u, float64(u*20), float64(u*15), 7*tgran.Hour+u*30); err != nil {
			t.Fatal(err)
		}
	}

	base := int64(7 * tgran.Hour)
	// Phase 1: 60s of healthy traffic fills every window at 0% below-k.
	for i := int64(0); i < 60; i++ {
		dec, err := c.Request(ServiceRequest{
			User: 1, X: 100, Y: 100, T: base + i, Service: "navigation",
		})
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Generalized || !dec.HKAnonymity {
			t.Fatalf("healthy request %d: %+v", i, dec)
		}
	}
	var healthy SLOResponse
	getJSON(t, hts.URL+"/v1/slo", &healthy)
	if !healthy.Enabled || healthy.Objectives[0].State != "ok" {
		t.Fatalf("healthy /v1/slo: %+v", healthy)
	}

	// Phase 2: 20s of below-k traffic — 100% burn in the short and mid
	// windows, 10x the 10% budget.
	for i := int64(60); i < 80; i++ {
		dec, err := c.Request(ServiceRequest{
			User: 20, X: 1200, Y: 1200, T: base + i, Service: "navigation",
		})
		if err != nil {
			t.Fatal(err)
		}
		if dec.HKAnonymity {
			t.Fatalf("breach request %d unexpectedly achieved k: %+v", i, dec)
		}
	}

	// /v1/slo: the objective must have escalated to page, and the short
	// window must read a 100% below-k ratio.
	var burned SLOResponse
	getJSON(t, hts.URL+"/v1/slo", &burned)
	if burned.Objectives[0].State != "page" {
		t.Fatalf("breached /v1/slo state = %q: %+v", burned.Objectives[0].State, burned)
	}
	if burned.Windows[0].BelowKRatio != 1 {
		t.Fatalf("short window ratio = %g: %+v", burned.Windows[0].BelowKRatio, burned.Windows[0])
	}
	var pageBurn float64
	for _, b := range burned.Objectives[0].Burns {
		if b.Window == "5s" {
			pageBurn = b.Burn
		}
	}
	if pageBurn < 10 {
		t.Fatalf("short-window burn = %g, want >= 10", pageBurn)
	}
	if burned.BelowKTotal != 20 || burned.DecisionsTotal != 80 {
		t.Fatalf("totals: %+v", burned)
	}

	// /healthz: the SLO section reports the page and names the objective
	// in the degraded reasons.
	var health HealthResponse
	getJSON(t, hts.URL+"/healthz", &health)
	if health.SLO == nil || health.SLO.State != "page" {
		t.Fatalf("/healthz SLO section: %+v", health.SLO)
	}
	if health.SLO.Objectives[slo.SignalBelowK] != "page" {
		t.Fatalf("/healthz objective states: %+v", health.SLO.Objectives)
	}
	found := false
	for _, d := range health.Degraded {
		if d == "slo_page:"+slo.SignalBelowK {
			found = true
		}
	}
	if !found {
		t.Fatalf("degraded reasons lack the page: %v", health.Degraded)
	}

	// /metrics: state gauge at 2 (page), transition counters present.
	resp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metricsOut := string(body)
	for _, want := range []string{
		obs.MetricSLOState + `{objective="below_k"} 2`,
		obs.MetricSLOTransitions + `{objective="below_k",to="page"} 1`,
		obs.MetricSLOBelowK + " 20",
		obs.MetricSLODecisions + " 80",
	} {
		if !strings.Contains(metricsOut, want) {
			t.Fatalf("/metrics lacks %q", want)
		}
	}

	// Audit log: the escalation left KindSLO records, ending in the page
	// transition with a burn rate at or above the page threshold.
	if err := srv.Obs.AuditSink().Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(bytes.NewReader(audit.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var sloEvents []obs.Event
	for _, e := range events {
		if e.Kind == obs.KindSLO {
			sloEvents = append(sloEvents, e)
		}
	}
	if len(sloEvents) == 0 {
		t.Fatal("no KindSLO audit records")
	}
	last := sloEvents[len(sloEvents)-1]
	if last.Objective != slo.SignalBelowK || last.SLOState != "page" || last.BurnRate < 10 {
		t.Fatalf("last KindSLO record: %+v", last)
	}

	// The engine's own state agrees with every surface.
	if st, _ := srv.SLO.State(slo.SignalBelowK); st != slo.StatePage {
		t.Fatalf("engine state = %v", st)
	}
}

func TestSLOEndpointDisabledEngine(t *testing.T) {
	srv := ts.New(ts.Config{DefaultPolicy: ts.Policy{K: 3}}, sp.NewProvider())
	hts := httptest.NewServer(New(srv))
	t.Cleanup(hts.Close)

	var resp SLOResponse
	if code := getJSON(t, hts.URL+"/v1/slo", &resp); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.Enabled || resp.T != -1 || resp.DecisionsTotal != 0 {
		t.Fatalf("disabled response: %+v", resp)
	}
	// No SLO section in /healthz while the engine is off.
	var health HealthResponse
	getJSON(t, hts.URL+"/healthz", &health)
	if health.SLO != nil {
		t.Fatalf("/healthz has an SLO section with the engine off: %+v", health.SLO)
	}
}

func TestSLOEndpointMethodNotAllowed(t *testing.T) {
	hts, _, _ := newSLOTestServer(t)
	resp, err := http.Post(hts.URL+"/v1/slo", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/slo status = %d", resp.StatusCode)
	}
}

func TestSLOCanaryOverHTTP(t *testing.T) {
	hts, srv, _ := newSLOTestServer(t)
	c := NewClient(hts.URL)

	store, ok := srv.Store().(slo.AttackStore)
	if !ok {
		t.Fatal("store does not expose the attack read")
	}
	canary := slo.NewCanary(slo.CanaryOptions{Store: store, Pressure: nil})
	srv.SLO.AttachCanary(canary)

	if err := c.AddLBQID(1, commuteSpec); err != nil {
		t.Fatal(err)
	}
	for u := int64(2); u <= 9; u++ {
		if err := c.RecordLocation(u, float64(u*20), float64(u*15), 7*tgran.Hour+u*30); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 10; i++ {
		if _, err := c.Request(ServiceRequest{
			User: 1, X: 100, Y: 100, T: 7*tgran.Hour + i, Service: "navigation",
		}); err != nil {
			t.Fatal(err)
		}
	}
	if canary.Captured() == 0 {
		t.Fatal("the canary captured nothing")
	}
	if _, ok := canary.Probe(); !ok {
		t.Fatal("probe skipped")
	}

	var resp SLOResponse
	getJSON(t, hts.URL+"/v1/slo", &resp)
	if resp.Canary == nil {
		t.Fatal("/v1/slo lacks the canary section")
	}
	if resp.Canary.Probes != 1 || resp.Canary.Captured == 0 || resp.Canary.Last == nil {
		t.Fatalf("canary section: %+v", resp.Canary)
	}
	if resp.Canary.Last.Identified != 0 {
		t.Fatalf("canary re-identified under k-anonymity: %+v", resp.Canary.Last)
	}
	var health HealthResponse
	getJSON(t, hts.URL+"/healthz", &health)
	if health.SLO == nil || health.SLO.CanaryAgeSeconds == nil {
		t.Fatalf("/healthz lacks canary staleness: %+v", health.SLO)
	}
	if health.SLO.CanaryStale {
		t.Fatal("fresh canary reads stale")
	}
}
