package httpapi

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"histanon/internal/tgran"
	"histanon/internal/ts"
	"histanon/internal/wire"
)

// newHTTPServer exposes an existing ts.Server (with a custom outbox)
// over httptest, unlike newTestServer which builds its own.
func newHTTPServer(t *testing.T, srv *ts.Server) *httptest.Server {
	t.Helper()
	hts := httptest.NewServer(New(srv))
	t.Cleanup(hts.Close)
	return hts
}

// TestConcurrentRequestStress race-stresses the HTTP layer the way
// internal/ts/concurrency_test.go stresses the server directly: several
// clients issue matching and non-matching requests over real HTTP while
// recording locations and polling stats. The outbox captures every
// forwarded wire.Request server-side (DecisionResponse does not carry
// the msgid), so msgid uniqueness and counter balance are checked
// end to end through the JSON encode/decode path. Run under -race.
func TestConcurrentRequestStress(t *testing.T) {
	const (
		clients   = 8
		perClient = 30
	)

	var forwardedIDs sync.Map
	var outboxCount int64
	var outboxMu sync.Mutex
	srv := ts.New(ts.Config{
		DefaultPolicy: ts.Policy{K: 5},
		RandomizeSeed: 11,
	}, ts.OutboxFunc(func(r *wire.Request) {
		if _, dup := forwardedIDs.LoadOrStore(r.ID, true); dup {
			t.Errorf("duplicate msgid %d forwarded", r.ID)
		}
		outboxMu.Lock()
		outboxCount++
		outboxMu.Unlock()
	}))
	hts := newHTTPServer(t, srv)

	setup := NewClient(hts.URL)
	for c := 0; c < clients; c++ {
		spec := fmt.Sprintf(`
lbqid "commute%d" {
    element area [0,400]x[0,400] time [06:00,10:00]
    recurrence 1.Days
}`, c)
		if err := setup.AddLBQID(int64(c), spec); err != nil {
			t.Fatal(err)
		}
	}
	// Crowd population so the generalization path can reach k=5.
	rng := rand.New(rand.NewSource(23))
	for u := int64(1000); u < 1060; u++ {
		for d := int64(0); d < 5; d++ {
			tm := d*tgran.Day + 7*tgran.Hour + int64(rng.Intn(7200))
			if err := setup.RecordLocation(u, rng.Float64()*400, rng.Float64()*400, tm); err != nil {
				t.Fatal(err)
			}
		}
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := NewClient(hts.URL)
			rng := rand.New(rand.NewSource(int64(300 + c)))
			for i := 0; i < perClient; i++ {
				req := ServiceRequest{User: int64(c), Service: "navigation"}
				if i%2 == 0 {
					// Inside the LBQID window and area: generalization path.
					req.X, req.Y = 200, 200
					req.T = int64(i%5)*tgran.Day + 7*tgran.Hour + int64(rng.Intn(3600))
				} else {
					req.X, req.Y = 5000, 5000
					req.T = int64(i%5)*tgran.Day + 14*tgran.Hour + int64(rng.Intn(3600))
				}
				dec, err := client.Request(req)
				if err != nil {
					t.Errorf("client %d request %d: %v", c, i, err)
					return
				}
				if dec.Forwarded && dec.Context == nil {
					t.Errorf("client %d: forwarded decision without context", c)
					return
				}
				if dec.Forwarded && dec.Pseudonym == "" {
					t.Errorf("client %d: forwarded decision without pseudonym", c)
					return
				}
				if err := client.RecordLocation(int64(c), req.X, req.Y, req.T); err != nil {
					t.Errorf("client %d location: %v", c, err)
					return
				}
			}
		}(c)
	}
	// A stats poller racing the writers through the same HTTP handler.
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := NewClient(hts.URL)
		for i := 0; i < 20; i++ {
			if _, err := client.Stats(); err != nil {
				t.Errorf("stats poll: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	stats, err := setup.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stats.Counters["requests"], int64(clients*perClient); got != want {
		t.Fatalf("requests counter = %d, want %d", got, want)
	}
	var unique int64
	forwardedIDs.Range(func(_, _ interface{}) bool { unique++; return true })
	if got := stats.Counters["forwarded"]; got != unique {
		t.Fatalf("forwarded counter = %d, but outbox saw %d unique msgids", got, unique)
	}
	outboxMu.Lock()
	sent := outboxCount
	outboxMu.Unlock()
	if sent != unique {
		t.Fatalf("outbox delivered %d requests but only %d unique msgids", sent, unique)
	}
	if stats.Counters["generalized"] == 0 {
		t.Fatal("no request took the generalization path; test lost its teeth")
	}
}
