// Package pseudonym manages the UserPseudonym field of service requests
// (paper §3): the trusted server assigns each user a pseudonym, uses it
// toward service providers, and rotates it during an Unlinking action
// (§6.3) so that future requests cannot be bound to past ones.
package pseudonym

import (
	"fmt"
	"sync"

	"histanon/internal/phl"
	"histanon/internal/wire"
)

// Manager assigns and rotates pseudonyms. It is safe for concurrent use.
type Manager struct {
	mu        sync.Mutex
	seq       int64
	rotations int64
	current   map[phl.UserID]wire.Pseudonym
	owner     map[wire.Pseudonym]phl.UserID
	past      map[phl.UserID][]wire.Pseudonym
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{
		current: make(map[phl.UserID]wire.Pseudonym),
		owner:   make(map[wire.Pseudonym]phl.UserID),
		past:    make(map[phl.UserID][]wire.Pseudonym),
	}
}

// Current returns the user's pseudonym, assigning a fresh one on first
// use.
func (m *Manager) Current(u phl.UserID) wire.Pseudonym {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.current[u]; ok {
		return p
	}
	p := m.fresh()
	m.current[u] = p
	m.owner[p] = u
	return p
}

// Rotate replaces the user's pseudonym, returning the old and the new
// one. The old pseudonym is never reused, and the manager remembers it
// belonged to u (only the TS holds this mapping; SPs never see it).
func (m *Manager) Rotate(u phl.UserID) (old, fresh wire.Pseudonym) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old, had := m.current[u]
	if had {
		m.past[u] = append(m.past[u], old)
	}
	fresh = m.fresh()
	m.current[u] = fresh
	m.owner[fresh] = u
	m.rotations++
	return old, fresh
}

// TotalRotations returns the rotation count across all users — the
// fleet-wide unlinking activity the observability layer exposes as the
// histanon_pseudonym_rotations_total counter.
func (m *Manager) TotalRotations() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rotations
}

// Owner resolves a pseudonym (current or retired) to its user.
func (m *Manager) Owner(p wire.Pseudonym) (phl.UserID, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	u, ok := m.owner[p]
	return u, ok
}

// Rotations returns how many times the user's pseudonym has been
// rotated — a measure of unlinking (and hence service-continuity
// disruption) frequency.
func (m *Manager) Rotations(u phl.UserID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.past[u])
}

// fresh mints an unused pseudonym. Callers hold m.mu.
func (m *Manager) fresh() wire.Pseudonym {
	m.seq++
	return wire.Pseudonym(fmt.Sprintf("p%06d", m.seq))
}
