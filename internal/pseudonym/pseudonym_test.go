package pseudonym

import (
	"sync"
	"testing"

	"histanon/internal/phl"
)

func TestCurrentStable(t *testing.T) {
	m := NewManager()
	p1 := m.Current(1)
	if p1 == "" {
		t.Fatal("empty pseudonym")
	}
	if m.Current(1) != p1 {
		t.Fatal("Current must be stable between rotations")
	}
	if m.Current(2) == p1 {
		t.Fatal("distinct users must get distinct pseudonyms")
	}
}

func TestRotate(t *testing.T) {
	m := NewManager()
	p1 := m.Current(1)
	old, fresh := m.Rotate(1)
	if old != p1 {
		t.Fatalf("old=%q want %q", old, p1)
	}
	if fresh == p1 || fresh == "" {
		t.Fatalf("fresh=%q", fresh)
	}
	if m.Current(1) != fresh {
		t.Fatal("Current must return the rotated pseudonym")
	}
	if m.Rotations(1) != 1 || m.Rotations(2) != 0 {
		t.Fatalf("Rotations: %d,%d", m.Rotations(1), m.Rotations(2))
	}
}

func TestRotateWithoutPrior(t *testing.T) {
	m := NewManager()
	old, fresh := m.Rotate(7)
	if old != "" || fresh == "" {
		t.Fatalf("old=%q fresh=%q", old, fresh)
	}
	if m.Rotations(7) != 0 {
		t.Fatal("rotation without a prior pseudonym is an assignment")
	}
}

func TestOwnerResolvesRetired(t *testing.T) {
	m := NewManager()
	p := m.Current(3)
	m.Rotate(3)
	if u, ok := m.Owner(p); !ok || u != 3 {
		t.Fatalf("Owner(%q)=%v,%v", p, u, ok)
	}
	if _, ok := m.Owner("nope"); ok {
		t.Fatal("unknown pseudonym must not resolve")
	}
}

func TestUniquenessAcrossRotations(t *testing.T) {
	m := NewManager()
	seen := map[string]bool{}
	for u := phl.UserID(0); u < 20; u++ {
		p := string(m.Current(u))
		if seen[p] {
			t.Fatalf("pseudonym %q reused", p)
		}
		seen[p] = true
		for i := 0; i < 5; i++ {
			_, fresh := m.Rotate(u)
			if seen[string(fresh)] {
				t.Fatalf("pseudonym %q reused after rotation", fresh)
			}
			seen[string(fresh)] = true
		}
	}
}

func TestConcurrent(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				u := phl.UserID(i % 5)
				m.Current(u)
				if i%10 == 0 {
					m.Rotate(u)
				}
				m.Owner(m.Current(u))
			}
		}(g)
	}
	wg.Wait()
	// All current pseudonyms must still resolve to their users.
	for u := phl.UserID(0); u < 5; u++ {
		if got, ok := m.Owner(m.Current(u)); !ok || got != u {
			t.Fatalf("owner of current pseudonym of %v = %v,%v", u, got, ok)
		}
	}
}
