package geo

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{1.5, 2.5}, Point{1.5, 2.5}, 0},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v,%v)=%g want %g", c.p, c.q, got, c.want)
		}
		if got := c.q.Dist(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist not symmetric for %v,%v", c.p, c.q)
		}
	}
}

func TestPointVectorOps(t *testing.T) {
	p := Point{3, 4}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm=%g want 5", got)
	}
	if got := p.Add(Point{1, -1}); got != (Point{4, 3}) {
		t.Errorf("Add=%v", got)
	}
	if got := p.Sub(Point{1, 1}); got != (Point{2, 3}) {
		t.Errorf("Sub=%v", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale=%v", got)
	}
}

func TestHeading(t *testing.T) {
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{1, 0}, 0},
		{Point{0, 1}, math.Pi / 2},
		{Point{-1, 0}, math.Pi},
		{Point{0, -1}, -math.Pi / 2},
		{Point{0, 0}, 0},
	}
	for _, c := range cases {
		if got := c.p.Heading(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Heading(%v)=%g want %g", c.p, got, c.want)
		}
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Point{5, -2}, Point{1, 7})
	want := Rect{MinX: 1, MinY: -2, MaxX: 5, MaxY: 7}
	if r != want {
		t.Fatalf("NewRect=%v want %v", r, want)
	}
	if !r.Valid() {
		t.Fatal("normalized rect must be valid")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 5}
	for _, p := range []Point{{0, 0}, {10, 5}, {5, 2.5}, {0, 5}, {10, 0}} {
		if !r.Contains(p) {
			t.Errorf("expected %v inside %v", p, r)
		}
	}
	for _, p := range []Point{{-0.01, 0}, {10.01, 5}, {5, 5.01}, {5, -0.01}} {
		if r.Contains(p) {
			t.Errorf("expected %v outside %v", p, r)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	got, ok := a.Intersect(b)
	if !ok || got != (Rect{5, 5, 10, 10}) {
		t.Fatalf("Intersect=%v ok=%v", got, ok)
	}
	c := Rect{11, 11, 12, 12}
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint rects must not intersect")
	}
	// Touching edges intersect (closed rectangles).
	d := Rect{10, 0, 20, 10}
	if got, ok := a.Intersect(d); !ok || got.Area() != 0 {
		t.Fatalf("touching rects: got %v ok=%v", got, ok)
	}
}

func TestRectExpandShrink(t *testing.T) {
	r := Rect{0, 0, 10, 4}
	e := r.Expand(2)
	if e != (Rect{-2, -2, 12, 6}) {
		t.Fatalf("Expand=%v", e)
	}
	// Negative expansion collapses to the center rather than inverting.
	s := r.Expand(-3)
	if !s.Valid() {
		t.Fatalf("over-shrunk rect invalid: %v", s)
	}
	if s.Height() != 0 {
		t.Fatalf("expected height collapse, got %v", s)
	}
}

func TestShrinkToward(t *testing.T) {
	r := Rect{0, 0, 100, 100}
	anchor := Point{20, 80}
	s := r.ShrinkToward(anchor, 50, 25)
	if s.Width() > 50+1e-9 || s.Height() > 25+1e-9 {
		t.Fatalf("shrunk rect %v exceeds bounds", s)
	}
	if !s.Contains(anchor) {
		t.Fatalf("shrunk rect %v must contain anchor %v", s, anchor)
	}
	if !r.ContainsRect(s) {
		t.Fatalf("shrunk rect %v must stay within original %v", s, r)
	}
	// No-op when already within bounds.
	if got := r.ShrinkToward(anchor, 200, 200); got != r {
		t.Fatalf("expected unchanged rect, got %v", got)
	}
}

func TestShrinkTowardProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		r := NewRect(
			Point{rng.Float64() * 1000, rng.Float64() * 1000},
			Point{rng.Float64() * 1000, rng.Float64() * 1000},
		)
		// Anchor strictly inside.
		a := Point{
			r.MinX + rng.Float64()*r.Width(),
			r.MinY + rng.Float64()*r.Height(),
		}
		maxW := rng.Float64() * 500
		maxH := rng.Float64() * 500
		s := r.ShrinkToward(a, maxW, maxH)
		if !s.Valid() {
			t.Fatalf("invalid shrink result %v", s)
		}
		if s.Width() > math.Max(maxW, 0)+1e-6 && s.Width() > r.Width() {
			t.Fatalf("width grew: %v from %v", s, r)
		}
		if !s.Contains(a) {
			t.Fatalf("anchor %v escaped %v", a, s)
		}
		if !r.ContainsRect(s) {
			t.Fatalf("shrink escaped original: %v not in %v", s, r)
		}
	}
}

func TestRectDistToPoint(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{5, 5}, 0},
		{Point{0, 0}, 0},
		{Point{13, 14}, 5},
		{Point{-3, 5}, 3},
		{Point{5, 12}, 2},
	}
	for _, c := range cases {
		if got := r.DistToPoint(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("DistToPoint(%v)=%g want %g", c.p, got, c.want)
		}
	}
}

func TestIntervalBasics(t *testing.T) {
	i := Interval{10, 20}
	if !i.Valid() || i.Duration() != 10 {
		t.Fatal("interval basics broken")
	}
	if !i.Contains(10) || !i.Contains(20) || i.Contains(21) || i.Contains(9) {
		t.Fatal("Contains broken")
	}
	if !i.Intersects(Interval{20, 30}) || i.Intersects(Interval{21, 30}) {
		t.Fatal("Intersects broken")
	}
	if got := i.Union(Interval{5, 12}); got != (Interval{5, 20}) {
		t.Fatalf("Union=%v", got)
	}
	if got := i.Extend(25); got != (Interval{10, 25}) {
		t.Fatalf("Extend=%v", got)
	}
}

func TestIntervalShrinkToward(t *testing.T) {
	i := Interval{0, 100}
	s := i.ShrinkToward(80, 20)
	if s.Duration() > 20 {
		t.Fatalf("duration %d exceeds max", s.Duration())
	}
	if !s.Contains(80) {
		t.Fatalf("anchor escaped: %v", s)
	}
	if !i.ContainsInterval(s) {
		t.Fatalf("shrink escaped original: %v", s)
	}
	if got := i.ShrinkToward(50, 200); got != i {
		t.Fatalf("expected unchanged interval, got %v", got)
	}
	// Degenerate: anchor at the edge.
	s = i.ShrinkToward(0, 10)
	if !s.Contains(0) || s.Duration() > 10 {
		t.Fatalf("edge anchor shrink wrong: %v", s)
	}
	// Zero-length source interval.
	z := Interval{5, 5}
	if got := z.ShrinkToward(5, 0); got != z {
		t.Fatalf("zero interval shrink: %v", got)
	}
}

func TestIntervalShrinkTowardProperty(t *testing.T) {
	f := func(start int16, dur uint16, frac uint8, max uint16) bool {
		i := Interval{int64(start), int64(start) + int64(dur)}
		anchor := i.Start + int64(dur)*int64(frac)/256
		s := i.ShrinkToward(anchor, int64(max))
		return s.Valid() && s.Contains(anchor) && i.ContainsInterval(s) &&
			(s.Duration() <= int64(max) || s.Duration() <= i.Duration())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestSTBox(t *testing.T) {
	p := STPoint{Point{5, 5}, 100}
	b := STBoxAround(p)
	if !b.Contains(p) || !b.Valid() {
		t.Fatal("degenerate box must contain its point")
	}
	b = b.Extend(STPoint{Point{10, 0}, 50})
	want := STBox{Area: Rect{5, 0, 10, 5}, Time: Interval{50, 100}}
	if b != want {
		t.Fatalf("Extend=%v want %v", b, want)
	}
	if !b.Contains(STPoint{Point{7, 3}, 75}) {
		t.Fatal("extended box must contain interior point")
	}
	c := STBox{Area: Rect{9, 4, 20, 20}, Time: Interval{90, 200}}
	if !b.Intersects(c) {
		t.Fatal("boxes must intersect")
	}
	u := b.Union(c)
	if !u.ContainsBox(b) || !u.ContainsBox(c) {
		t.Fatal("union must contain operands")
	}
}

func TestEnclosingSTBox(t *testing.T) {
	pts := []STPoint{
		{Point{1, 2}, 10},
		{Point{-3, 8}, 5},
		{Point{4, 0}, 20},
	}
	b := EnclosingSTBox(pts)
	for _, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("enclosing box %v misses %v", b, p)
		}
	}
	want := STBox{Area: Rect{-3, 0, 4, 8}, Time: Interval{5, 20}}
	if b != want {
		t.Fatalf("box=%v want %v", b, want)
	}
}

func TestEnclosingSTBoxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty point set")
		}
	}()
	EnclosingSTBox(nil)
}

// Property: union is commutative, associative-enough, and monotone.
func TestRectUnionProperties(t *testing.T) {
	type rectPair struct{ A, B Rect }
	gen := func(vals []reflect.Value, rng *rand.Rand) {
		mk := func() Rect {
			return NewRect(
				Point{rng.Float64()*200 - 100, rng.Float64()*200 - 100},
				Point{rng.Float64()*200 - 100, rng.Float64()*200 - 100},
			)
		}
		vals[0] = reflect.ValueOf(rectPair{mk(), mk()})
	}
	f := func(p rectPair) bool {
		u := p.A.Union(p.B)
		return u == p.B.Union(p.A) && u.ContainsRect(p.A) && u.ContainsRect(p.B) &&
			u.Area() >= p.A.Area() && u.Area() >= p.B.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Values: gen}); err != nil {
		t.Fatal(err)
	}
}
