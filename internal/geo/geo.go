// Package geo provides the planar spatio-temporal primitives used across
// the library: points, axis-aligned rectangles, anchored and unanchored
// time intervals, and 3D (2D-space + time) boxes.
//
// Coordinates are float64 meters in an arbitrary planar frame (the paper
// assumes two-dimensional positions; city-scale distances make geodesy
// unnecessary). Time is int64 seconds since an arbitrary epoch so that
// granularity arithmetic stays exact.
package geo

import (
	"fmt"
	"math"
)

// Point is a position in the planar frame.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Heading returns the angle of p viewed as a direction vector, in
// radians in (-pi, pi]. The zero vector has heading 0.
func (p Point) Heading() float64 {
	if p.X == 0 && p.Y == 0 {
		return 0
	}
	return math.Atan2(p.Y, p.X)
}

func (p Point) String() string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }

// Rect is a closed axis-aligned rectangle [MinX,MaxX]×[MinY,MaxY].
// A Rect is valid when MinX<=MaxX and MinY<=MaxY; a degenerate rectangle
// (a point or segment) is valid and has zero area.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// RectAround returns the degenerate rectangle containing only p.
func RectAround(p Point) Rect { return Rect{p.X, p.Y, p.X, p.Y} }

// NewRect returns the rectangle spanned by two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		MinX: math.Min(a.X, b.X), MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X), MaxY: math.Max(a.Y, b.Y),
	}
}

// Valid reports whether r is a well-formed (possibly degenerate) rectangle.
func (r Rect) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Width returns the X extent.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the Y extent.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r; zero for degenerate rectangles.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the centroid of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies in the closed rectangle r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersect returns the intersection of r and s. The second result is
// false when the rectangles are disjoint.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX), MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX), MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if !out.Valid() {
		return Rect{}, false
	}
	return out, true
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX), MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX), MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Extend returns the smallest rectangle containing r and p.
func (r Rect) Extend(p Point) Rect {
	return Rect{
		MinX: math.Min(r.MinX, p.X), MinY: math.Min(r.MinY, p.Y),
		MaxX: math.Max(r.MaxX, p.X), MaxY: math.Max(r.MaxY, p.Y),
	}
}

// Expand returns r grown by d on every side. A negative d shrinks r; the
// result collapses to the center line/point rather than inverting.
func (r Rect) Expand(d float64) Rect {
	out := Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
	if out.MinX > out.MaxX {
		c := (r.MinX + r.MaxX) / 2
		out.MinX, out.MaxX = c, c
	}
	if out.MinY > out.MaxY {
		c := (r.MinY + r.MaxY) / 2
		out.MinY, out.MaxY = c, c
	}
	return out
}

// ShrinkToward uniformly scales r about the anchor point p (which should
// lie inside r) so that the result has width<=maxW and height<=maxH while
// still containing p. This implements the "uniformly reduced to satisfy
// the tolerance constraints" step of Algorithm 1 (line 12).
func (r Rect) ShrinkToward(p Point, maxW, maxH float64) Rect {
	f := 1.0
	if w := r.Width(); w > maxW && w > 0 {
		f = math.Min(f, maxW/w)
	}
	if h := r.Height(); h > maxH && h > 0 {
		f = math.Min(f, maxH/h)
	}
	if f >= 1 {
		return r
	}
	out := Rect{
		MinX: p.X - (p.X-r.MinX)*f, MinY: p.Y - (p.Y-r.MinY)*f,
		MaxX: p.X + (r.MaxX-p.X)*f, MaxY: p.Y + (r.MaxY-p.Y)*f,
	}
	return out
}

// DistToPoint returns the minimum distance from p to the rectangle
// (zero when p is inside).
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f]x[%.1f,%.1f]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Interval is a closed anchored time interval [Start,End] in seconds
// since the epoch. It is valid when Start<=End; an instant is valid.
type Interval struct {
	Start, End int64
}

// IntervalAround returns the degenerate interval containing only t.
func IntervalAround(t int64) Interval { return Interval{t, t} }

// Valid reports whether i is well formed.
func (i Interval) Valid() bool { return i.Start <= i.End }

// Duration returns End-Start in seconds.
func (i Interval) Duration() int64 { return i.End - i.Start }

// Contains reports whether t lies in the closed interval.
func (i Interval) Contains(t int64) bool { return t >= i.Start && t <= i.End }

// ContainsInterval reports whether j lies entirely inside i.
func (i Interval) ContainsInterval(j Interval) bool {
	return j.Start >= i.Start && j.End <= i.End
}

// Intersects reports whether i and j share at least one instant.
func (i Interval) Intersects(j Interval) bool {
	return i.Start <= j.End && j.Start <= i.End
}

// Union returns the smallest interval containing both i and j.
func (i Interval) Union(j Interval) Interval {
	return Interval{Start: min64(i.Start, j.Start), End: max64(i.End, j.End)}
}

// Extend returns the smallest interval containing i and the instant t.
func (i Interval) Extend(t int64) Interval {
	return Interval{Start: min64(i.Start, t), End: max64(i.End, t)}
}

// ShrinkToward reduces the interval symmetrically about the anchor t
// (which should lie inside it) so that its duration does not exceed max.
func (i Interval) ShrinkToward(t, max int64) Interval {
	if i.Duration() <= max {
		return i
	}
	// Distribute the allowed duration proportionally to the two sides so
	// that the anchor keeps its relative position, mirroring the uniform
	// spatial shrink.
	left := t - i.Start
	right := i.End - t
	total := left + right
	if total == 0 {
		return Interval{t, t}
	}
	nl := left * max / total
	nr := max - nl
	return Interval{Start: t - nl, End: t + nr}
}

func (i Interval) String() string { return fmt.Sprintf("[%d,%d]", i.Start, i.End) }

// STPoint is a spatio-temporal point: a position at an instant. It is the
// element type of a Personal History of Locations (paper Def. 6).
type STPoint struct {
	P Point
	T int64
}

func (p STPoint) String() string { return fmt.Sprintf("<%s@%d>", p.P, p.T) }

// STBox is a spatio-temporal box: the generalized context
// ⟨Area, TimeInterval⟩ attached to every request forwarded to a service
// provider (paper §3).
type STBox struct {
	Area Rect
	Time Interval
}

// STBoxAround returns the degenerate box containing only p.
func STBoxAround(p STPoint) STBox {
	return STBox{Area: RectAround(p.P), Time: IntervalAround(p.T)}
}

// Valid reports whether both components are well formed.
func (b STBox) Valid() bool { return b.Area.Valid() && b.Time.Valid() }

// Contains reports whether the spatio-temporal point p lies in b.
func (b STBox) Contains(p STPoint) bool {
	return b.Area.Contains(p.P) && b.Time.Contains(p.T)
}

// ContainsBox reports whether c lies entirely inside b.
func (b STBox) ContainsBox(c STBox) bool {
	return b.Area.ContainsRect(c.Area) && b.Time.ContainsInterval(c.Time)
}

// Intersects reports whether b and c overlap in space and time.
func (b STBox) Intersects(c STBox) bool {
	return b.Area.Intersects(c.Area) && b.Time.Intersects(c.Time)
}

// Union returns the smallest box containing both b and c.
func (b STBox) Union(c STBox) STBox {
	return STBox{Area: b.Area.Union(c.Area), Time: b.Time.Union(c.Time)}
}

// Extend returns the smallest box containing b and p.
func (b STBox) Extend(p STPoint) STBox {
	return STBox{Area: b.Area.Extend(p.P), Time: b.Time.Extend(p.T)}
}

// EnclosingSTBox returns the smallest box containing all the given
// points. It panics when pts is empty.
func EnclosingSTBox(pts []STPoint) STBox {
	if len(pts) == 0 {
		panic("geo: EnclosingSTBox of empty point set")
	}
	b := STBoxAround(pts[0])
	for _, p := range pts[1:] {
		b = b.Extend(p)
	}
	return b
}

func (b STBox) String() string { return fmt.Sprintf("{%s %s}", b.Area, b.Time) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
