package geo

import "math"

// STMetric measures distances between spatio-temporal points by mapping
// the time axis onto the spatial ones: one second counts as TimeScale
// meters. Algorithm 1 of the paper needs "the 3D point closest to
// ⟨x,y,t⟩"; the paper leaves the 3D metric open, so the scale is a
// tunable of the generalization algorithm.
type STMetric struct {
	// TimeScale converts seconds to meters. Zero means DefaultTimeScale.
	TimeScale float64
}

// DefaultTimeScale equates one second with one meter — roughly walking
// speed, a sensible default for urban location traces.
const DefaultTimeScale = 1.0

// Scale returns the effective seconds→meters conversion factor,
// resolving the zero value to DefaultTimeScale. Index implementations
// use it to scale temporal pruning bounds consistently with Dist.
func (m STMetric) Scale() float64 {
	if m.TimeScale == 0 {
		return DefaultTimeScale
	}
	return m.TimeScale
}

// Dist returns the scaled Euclidean distance between a and b in the
// three-dimensional (x, y, scaled t) space.
func (m STMetric) Dist(a, b STPoint) float64 {
	dt := float64(a.T-b.T) * m.Scale()
	dx := a.P.X - b.P.X
	dy := a.P.Y - b.P.Y
	return math.Sqrt(dx*dx + dy*dy + dt*dt)
}

// DistToBox returns the minimum scaled distance from p to the box b
// (zero when p lies inside b).
func (m STMetric) DistToBox(p STPoint, b STBox) float64 {
	ds := b.Area.DistToPoint(p.P)
	var dt float64
	switch {
	case p.T < b.Time.Start:
		dt = float64(b.Time.Start-p.T) * m.Scale()
	case p.T > b.Time.End:
		dt = float64(p.T-b.Time.End) * m.Scale()
	}
	return math.Hypot(ds, dt)
}
