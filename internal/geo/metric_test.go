package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSTMetricDist(t *testing.T) {
	m := STMetric{TimeScale: 2}
	a := STPoint{P: Point{X: 0, Y: 0}, T: 0}
	b := STPoint{P: Point{X: 3, Y: 4}, T: 0}
	if got := m.Dist(a, b); got != 5 {
		t.Fatalf("pure spatial: %g", got)
	}
	c := STPoint{P: Point{X: 0, Y: 0}, T: 5}
	if got := m.Dist(a, c); got != 10 { // 5 s × scale 2
		t.Fatalf("pure temporal: %g", got)
	}
	d := STPoint{P: Point{X: 3, Y: 0}, T: 2}
	if got := m.Dist(a, d); got != 5 { // sqrt(9+16)
		t.Fatalf("mixed: %g", got)
	}
}

func TestSTMetricDefaultScale(t *testing.T) {
	var m STMetric // zero value
	a := STPoint{T: 0}
	b := STPoint{T: 7}
	if got := m.Dist(a, b); got != 7*DefaultTimeScale {
		t.Fatalf("default scale: %g", got)
	}
}

func TestSTMetricDistToBox(t *testing.T) {
	m := STMetric{TimeScale: 1}
	box := STBox{
		Area: Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
		Time: Interval{Start: 100, End: 200},
	}
	// Inside: zero.
	if got := m.DistToBox(STPoint{P: Point{X: 5, Y: 5}, T: 150}, box); got != 0 {
		t.Fatalf("inside: %g", got)
	}
	// Spatially outside, temporally inside.
	if got := m.DistToBox(STPoint{P: Point{X: 13, Y: 14}, T: 150}, box); got != 5 {
		t.Fatalf("spatial: %g", got)
	}
	// Temporally outside only.
	if got := m.DistToBox(STPoint{P: Point{X: 5, Y: 5}, T: 90}, box); got != 10 {
		t.Fatalf("temporal before: %g", got)
	}
	if got := m.DistToBox(STPoint{P: Point{X: 5, Y: 5}, T: 203}, box); got != 3 {
		t.Fatalf("temporal after: %g", got)
	}
	// Both: hypot.
	if got := m.DistToBox(STPoint{P: Point{X: 13, Y: 14}, T: 210}, box); math.Abs(got-math.Hypot(5, 10)) > 1e-12 {
		t.Fatalf("both: %g", got)
	}
}

// Metric axioms: symmetry, identity, triangle inequality.
func TestSTMetricAxioms(t *testing.T) {
	m := STMetric{TimeScale: 0.5}
	gen := func(rng *rand.Rand) STPoint {
		return STPoint{
			P: Point{X: rng.Float64()*2000 - 1000, Y: rng.Float64()*2000 - 1000},
			T: int64(rng.Intn(100000)),
		}
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		a, b, c := gen(rng), gen(rng), gen(rng)
		if m.Dist(a, a) != 0 {
			t.Fatal("identity")
		}
		if m.Dist(a, b) != m.Dist(b, a) {
			t.Fatal("symmetry")
		}
		if m.Dist(a, c) > m.Dist(a, b)+m.Dist(b, c)+1e-9 {
			t.Fatalf("triangle inequality: %v %v %v", a, b, c)
		}
	}
}

// DistToBox lower-bounds the distance to every point inside the box.
func TestDistToBoxLowerBoundProperty(t *testing.T) {
	m := STMetric{TimeScale: 1.5}
	f := func(px, py int16, pt int32, bx, by int16, bw, bh uint8, bt int32, bd uint16) bool {
		box := STBox{
			Area: Rect{
				MinX: float64(bx), MinY: float64(by),
				MaxX: float64(bx) + float64(bw), MaxY: float64(by) + float64(bh),
			},
			Time: Interval{Start: int64(bt), End: int64(bt) + int64(bd)},
		}
		q := STPoint{P: Point{X: float64(px), Y: float64(py)}, T: int64(pt)}
		lower := m.DistToBox(q, box)
		// Sample points inside the box; none may be closer than the bound.
		rng := rand.New(rand.NewSource(int64(px) + int64(py)))
		for i := 0; i < 10; i++ {
			inside := STPoint{
				P: Point{
					X: box.Area.MinX + rng.Float64()*box.Area.Width(),
					Y: box.Area.MinY + rng.Float64()*box.Area.Height(),
				},
				T: box.Time.Start + rng.Int63n(box.Time.Duration()+1),
			}
			if m.Dist(q, inside) < lower-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}
