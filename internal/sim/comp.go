// E-comp: the comparative privacy-approach benchmark (the evaluation
// Biswas–Sairam call for, PAPERS.md). One seeded workload per scenario
// shape (mobility.Scenarios: rush-hour, stadium, federation, rural) is
// run through four approaches over identical requests:
//
//   - generalize: the paper's Algorithm 1 via per-trace Sessions —
//     historical k-anonymity with tolerance constraints;
//   - mixzone: exact coordinates outside zones, silence inside, a
//     pseudonym rotation on every zone traversal (internal/mixzone
//     geometry, idealized rotation policy);
//   - cliquecloak: the Gedik–Liu engine — defer until k users'
//     requests share a vicinity, drop at the deadline;
//   - suppress-only: forward the exact location iff its vicinity
//     already holds k users, otherwise suppress.
//
// Privacy is measured against the recording-SP threat model of §5: the
// attacker holds the full PHL and intersects LT-consistent candidates
// across each pseudonym's forwarded boxes (the internal/sp attack
// primitive); cross-rotation linkability uses internal/link's Tracking
// attacker. QoS is suppression, cloak area and deferral latency.
//
// RunCompBench also measures the million-agent streaming rows (the
// tentpole: StreamDriver generate + ingest). cmd/lbbench -compbench
// writes BENCH_comp.json; the E-comp-stream / E-comp-frontier
// experiments re-render the checked-in record so `lbbench -md`
// regenerates EXPERIMENTS.md §E-comp byte-for-byte without re-running
// minutes of benchmark.

package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"histanon/internal/baseline"
	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/httpapi"
	"histanon/internal/link"
	"histanon/internal/mixzone"
	"histanon/internal/mobility"
	"histanon/internal/phl"
	"histanon/internal/stindex"
	"histanon/internal/tgran"
	"histanon/internal/ts"
	"histanon/internal/wire"
)

// CompBenchRecord is the checked-in record's filename.
const CompBenchRecord = "BENCH_comp.json"

// StreamRow is one million-agent streaming measurement.
type StreamRow struct {
	Scenario     string  `json:"scenario"`
	Mode         string  `json:"mode"` // "generate" or "ingest"
	Agents       int     `json:"agents"`
	Events       int64   `json:"events"`
	Requests     int64   `json:"requests"`
	Workers      int     `json:"workers"`
	EventsPerSec float64 `json:"events_per_sec"`
	PeakHeapMB   float64 `json:"peak_heap_mb"`
	Seconds      float64 `json:"seconds"`
}

// CompRow is one (scenario, approach) cell of the privacy-vs-QoS
// frontier.
type CompRow struct {
	Scenario string `json:"scenario"`
	Approach string `json:"approach"`
	Requests int    `json:"requests"`
	// QoS side.
	ForwardedPct  float64 `json:"forwarded_pct"`
	SuppressedPct float64 `json:"suppressed_pct"`
	MeanAreaKm2   float64 `json:"mean_area_km2"`
	MeanDeferS    float64 `json:"mean_defer_s"`
	// Privacy side.
	KP5         float64 `json:"achieved_k_p5"`
	KP50        float64 `json:"achieved_k_p50"`
	BelowKPct   float64 `json:"below_k_pct"`
	ReidPct     float64 `json:"reid_pct"`
	MeanAnonSet float64 `json:"mean_anonymity_set"`
	// LinkP95 is the cross-rotation tracking linkability (internal/link)
	// at the 95th percentile; -1 for approaches without rotations.
	LinkP95 float64 `json:"link_p95"`
}

// CompBenchReport is the machine-readable E-comp record. The JSON keys
// "stream_rows"/"comp_rows" let benchdiff tell the shape apart.
type CompBenchReport struct {
	GOMAXPROCS   int         `json:"gomaxprocs"`
	K            int         `json:"k"`
	CompAgents   int         `json:"comp_agents"`
	CompDays     int         `json:"comp_days"`
	StreamAgents int         `json:"stream_agents"`
	AttackUsers  int         `json:"attack_users"`
	AttackBoxes  int         `json:"attack_boxes"`
	MeasureReqs  int         `json:"measure_requests"`
	StreamRows   []StreamRow `json:"stream_rows"`
	CompRows     []CompRow   `json:"comp_rows"`
}

// WriteJSON emits the report for BENCH-style records.
func (r CompBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadCompBench reads a checked-in BENCH_comp.json record.
func LoadCompBench(path string) (CompBenchReport, error) {
	var rep CompBenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(data, &rep)
	return rep, err
}

// CompBenchOptions sizes a RunCompBench run. The zero value is not
// usable; start from DefaultCompBenchOptions.
type CompBenchOptions struct {
	// Seed drives every workload.
	Seed int64
	// K is the anonymity target shared by all approaches.
	K int
	// CompAgents and CompDays size the comparison workloads (these are
	// materialized: the attacks need the full PHL).
	CompAgents, CompDays int
	// StreamAgents sizes the streaming rows (never materialized).
	StreamAgents int
	// Workers is the driver pool size (0: the driver default).
	Workers int
	// IngestScenario names the scenario whose 1M-agent stream is also
	// pushed through the binary batch ingest path.
	IngestScenario string
	// AttackUsers caps how many pseudonym series the re-identification
	// attack runs per cell; AttackBoxes caps boxes per series (the
	// LT-consistency scan is O(users × boxes)). MeasureRequests caps the
	// achieved-k sample per cell (deterministic every-Nth stride). The
	// caps are recorded in the report and stated in the table notes —
	// no silent truncation.
	AttackUsers, AttackBoxes, MeasureRequests int
}

// DefaultCompBenchOptions is the checked-in record's configuration:
// four 1M-agent streaming rows plus one ingest row, and an
// 800-agent × 2-day comparison grid (4 scenarios × 4 approaches).
func DefaultCompBenchOptions() CompBenchOptions {
	return CompBenchOptions{
		Seed:            1,
		K:               5,
		CompAgents:      800,
		CompDays:        2,
		StreamAgents:    1_000_000,
		Workers:         4,
		IngestScenario:  "rural",
		AttackUsers:     250,
		AttackBoxes:     8,
		MeasureRequests: 1200,
	}
}

// RunCompBench measures the streaming rows and the comparison frontier.
// Progress goes to stderr; the run takes a few minutes at the default
// sizes.
func RunCompBench(o CompBenchOptions) CompBenchReport {
	rep := CompBenchReport{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		K:            o.K,
		CompAgents:   o.CompAgents,
		CompDays:     o.CompDays,
		StreamAgents: o.StreamAgents,
		AttackUsers:  o.AttackUsers,
		AttackBoxes:  o.AttackBoxes,
		MeasureReqs:  o.MeasureRequests,
	}
	for _, sc := range mobility.Scenarios() {
		fmt.Fprintf(os.Stderr, "compbench: streaming %s x%d (generate)\n", sc.Name, o.StreamAgents)
		rep.StreamRows = append(rep.StreamRows,
			runStreamRow(sc, "generate", o.StreamAgents, o.Seed, o.Workers, nil))
	}
	if sc, ok := mobility.ScenarioByName(o.IngestScenario); ok {
		fmt.Fprintf(os.Stderr, "compbench: streaming %s x%d (ingest)\n", sc.Name, o.StreamAgents)
		h := httpapi.New(newIngestServer(o.K))
		rep.StreamRows = append(rep.StreamRows,
			runStreamRow(sc, "ingest", o.StreamAgents, o.Seed, o.Workers, h))
	}
	caps := attackCaps{users: o.AttackUsers, boxes: o.AttackBoxes, measure: o.MeasureRequests}
	for _, sc := range mobility.Scenarios() {
		fmt.Fprintf(os.Stderr, "compbench: comparing approaches on %s x%d\n", sc.Name, o.CompAgents)
		w := buildCompWorkload(sc, o.CompAgents, o.CompDays, o.Seed)
		for _, ap := range compApproaches() {
			outs := ap.run(w, o.K)
			rep.CompRows = append(rep.CompRows, evalApproach(w, ap.name, outs, o.K, caps))
		}
	}
	return rep
}

// newIngestServer is a TS with no services: the ingest rows measure the
// location-update pipeline (decode → PHL → index), not request serving.
func newIngestServer(k int) *ts.Server {
	return ts.New(ts.Config{DefaultPolicy: ts.Policy{K: k}},
		ts.OutboxFunc(func(*wire.Request) {}))
}

// runStreamRow drives one scenario at full scale and snapshots
// throughput and peak heap.
func runStreamRow(sc mobility.Scenario, mode string, agents int, seed int64, workers int, h *httpapi.Handler) StreamRow {
	cfg := sc.Config(agents, seed)
	s := mobility.NewStream(cfg)
	d := &StreamDriver{Workers: workers}
	runtime.GC()
	hw := watchHeap()
	start := time.Now()
	if mode == "ingest" {
		d.Ingest(s, h)
	} else {
		d.Generate(s)
	}
	secs := time.Since(start).Seconds()
	peak := hw.Close()
	events := d.Stats.Events.Load()
	return StreamRow{
		Scenario:     sc.Name,
		Mode:         mode,
		Agents:       agents,
		Events:       events,
		Requests:     d.Stats.Requests.Load(),
		Workers:      d.workers(),
		EventsPerSec: float64(events) / secs,
		PeakHeapMB:   peak,
		Seconds:      secs,
	}
}

// heapWatch samples HeapAlloc on a ticker; Close returns the peak MB.
type heapWatch struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func watchHeap() *heapWatch {
	w := &heapWatch{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		var ms runtime.MemStats
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > w.peak {
					w.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return w
}

func (w *heapWatch) Close() float64 {
	close(w.stop)
	<-w.done
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > w.peak {
		w.peak = ms.HeapAlloc
	}
	return float64(w.peak) / (1 << 20)
}

// compWorkload is one materialized comparison workload: the identical
// request stream every approach sees, plus the ground-truth PHL the
// attacker holds.
type compWorkload struct {
	scenario string
	stream   *mobility.Stream
	events   []mobility.Event
	reqs     []mobility.Event
	store    *phl.Store
	index    stindex.Index
}

func buildCompWorkload(sc mobility.Scenario, agents, days int, seed int64) *compWorkload {
	cfg := sc.Config(agents, seed)
	cfg.Days = days
	s := mobility.NewStream(cfg)
	w := &compWorkload{
		scenario: sc.Name,
		stream:   s,
		store:    phl.NewStore(),
		index:    stindex.NewGrid(500, 1800),
	}
	for id := 0; id < agents; id++ {
		s.AgentEvents(id, func(ev mobility.Event) { w.events = append(w.events, ev) })
	}
	sort.SliceStable(w.events, func(i, j int) bool { return w.events[i].Point.T < w.events[j].Point.T })
	for _, ev := range w.events {
		w.store.Record(ev.User, ev.Point)
		w.index.Insert(ev.User, ev.Point)
		if ev.Request {
			w.reqs = append(w.reqs, ev)
		}
	}
	return w
}

// compOutcome is one request's fate under an approach, aligned with
// compWorkload.reqs.
type compOutcome struct {
	fwd    bool
	box    geo.STBox
	deferS float64
	// seg is the pseudonym segment (increments on mix-zone rotation).
	seg int
}

type compApproach struct {
	name string
	run  func(w *compWorkload, k int) []compOutcome
}

// compApproaches returns the four contenders in report order. The names
// are part of the BENCH_comp.json schema (checkexpdocs.sh greps them
// out of EXPERIMENTS.md via the record).
func compApproaches() []compApproach {
	return []compApproach{
		{"generalize", runGeneralizeApproach},
		{"mixzone", func(w *compWorkload, _ int) []compOutcome { return runMixzoneApproach(w) }},
		{"cliquecloak", runCliqueCloakApproach},
		{"suppress-only", runSuppressOnlyApproach},
	}
}

// compTolerance is the service-quality bound all generalization shares:
// a 2×2 km, 30-minute cloak is the coarsest useful resolution.
var compTolerance = generalize.Tolerance{MaxWidth: 2000, MaxHeight: 2000, MaxDuration: 1800}

// runGeneralizeApproach runs Algorithm 1 with one Session per (user,
// day) trace. A request is suppressed when generalization fails or the
// tolerance forced the box below the anonymity-preserving size
// (fail-closed, like the TS pipeline).
func runGeneralizeApproach(w *compWorkload, k int) []compOutcome {
	g := &generalize.Generalizer{Index: w.index, Store: w.store, Metric: geo.STMetric{TimeScale: 1}}
	out := make([]compOutcome, len(w.reqs))
	sessions := map[phl.UserID]*generalize.Session{}
	sessionDay := map[phl.UserID]int64{}
	for i, r := range w.reqs {
		day := r.Point.T / tgran.Day
		sess := sessions[r.User]
		if sess == nil || sessionDay[r.User] != day {
			sess = generalize.NewSession(g, r.User, generalize.DecaySchedule{Target: k})
			sessions[r.User] = sess
			sessionDay[r.User] = day
		}
		res, ok := sess.Generalize(r.Point, compTolerance)
		if ok && res.HKAnonymity {
			out[i] = compOutcome{fwd: true, box: res.Box}
		}
	}
	return out
}

// runMixzoneApproach forwards exact coordinates outside mix zones, is
// silent inside them, and rotates the pseudonym on every zone
// traversal — an idealized version of the §5.2/§6.3 unlinking defense
// with static zones on high-traffic places.
func runMixzoneApproach(w *compWorkload) []compOutcome {
	reg := mixzone.NewRegistry(compZones(w)...)
	out := make([]compOutcome, len(w.reqs))
	seg := map[phl.UserID]int{}
	inZone := map[phl.UserID]bool{}
	for i, r := range w.reqs {
		if _, inside := reg.ZoneAt(r.Point.P); inside {
			inZone[r.User] = true // silent period inside the zone
			continue
		}
		if inZone[r.User] {
			seg[r.User]++ // exited a zone: new pseudonym
			inZone[r.User] = false
		}
		out[i] = compOutcome{fwd: true, box: exactBox(r.Point), seg: seg[r.User]}
	}
	return out
}

// compZones places static mix zones on the busiest layout features: the
// stadium venue when present, plus a spread of POIs.
func compZones(w *compWorkload) []mixzone.Zone {
	var zs []mixzone.Zone
	if v, ok := w.stream.Venue(); ok {
		zs = append(zs, mixzone.Zone{Name: v.Name, Area: v.Area.Expand(150)})
	}
	pois := w.stream.POIs()
	stride := len(pois) / 4
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(pois) && len(zs) < 5; i += stride {
		zs = append(zs, mixzone.Zone{Name: pois[i].Name, Area: pois[i].Area.Expand(150)})
	}
	return zs
}

// runCliqueCloakApproach drives the Gedik–Liu engine over the
// time-ordered request stream: cloaked cliques forward with their joint
// box and a deferral, deadline misses are drops (suppression).
func runCliqueCloakApproach(w *compWorkload, k int) []compOutcome {
	eng := baseline.NewGedikLiuEngine(k, 1500, 900)
	out := make([]compOutcome, len(w.reqs))
	// Outcomes echo the Request value; map it back to stream indexes
	// FIFO (duplicate (user, point) keys are theoretically possible but
	// jittered float coordinates make them vanishingly rare).
	pending := map[baseline.Request][]int{}
	resolve := func(outcomes []baseline.Outcome) {
		for _, o := range outcomes {
			q := pending[o.Request]
			if len(q) == 0 {
				continue
			}
			i := q[0]
			pending[o.Request] = q[1:]
			if o.Cloaked {
				out[i] = compOutcome{fwd: true, box: o.Box, deferS: float64(o.Deferral)}
			}
		}
	}
	for i, r := range w.reqs {
		br := baseline.Request{User: r.User, Point: r.Point}
		pending[br] = append(pending[br], i)
		resolve(eng.Submit(br))
	}
	resolve(eng.Flush())
	return out
}

// runSuppressOnlyApproach forwards the exact location iff its
// spatio-temporal vicinity (±250 m, ±15 min) already holds k users in
// the PHL — the crudest k-anonymity: no cloaking, only refusal.
func runSuppressOnlyApproach(w *compWorkload, k int) []compOutcome {
	out := make([]compOutcome, len(w.reqs))
	for i, r := range w.reqs {
		vicinity := geo.STBox{
			Area: geo.RectAround(r.Point.P).Expand(250),
			Time: geo.Interval{Start: r.Point.T - 900, End: r.Point.T + 900},
		}
		if w.store.CountUsersIn(vicinity) >= k {
			out[i] = compOutcome{fwd: true, box: exactBox(r.Point)}
		}
	}
	return out
}

// exactBox pads an exact report to the resolution an SP actually
// receives (≈10 m GPS, ±30 s timestamping).
func exactBox(p geo.STPoint) geo.STBox {
	return geo.STBox{
		Area: geo.RectAround(p.P).Expand(10),
		Time: geo.Interval{Start: p.T - 30, End: p.T + 30},
	}
}

type attackCaps struct {
	users, boxes, measure int
}

// evalApproach computes one frontier cell: QoS over the forwarded set,
// achieved-k over a deterministic stride sample, re-identification by
// LT-consistency intersection per pseudonym series, and cross-rotation
// linkability where the approach rotates.
func evalApproach(w *compWorkload, approach string, outs []compOutcome, k int, caps attackCaps) CompRow {
	row := CompRow{Scenario: w.scenario, Approach: approach, Requests: len(w.reqs), LinkP95: -1}
	if len(w.reqs) == 0 {
		return row
	}
	var fwdIdx []int
	var areaSum, deferSum float64
	for i, o := range outs {
		if !o.fwd {
			continue
		}
		fwdIdx = append(fwdIdx, i)
		areaSum += o.box.Area.Area() / 1e6
		deferSum += o.deferS
	}
	fwd := len(fwdIdx)
	row.ForwardedPct = 100 * float64(fwd) / float64(len(w.reqs))
	row.SuppressedPct = 100 - row.ForwardedPct
	if fwd > 0 {
		row.MeanAreaKm2 = areaSum / float64(fwd)
		row.MeanDeferS = deferSum / float64(fwd)
	}

	// Achieved-k distribution: how many users the PHL actually places in
	// each forwarded box (paper Def. 3 applied per request).
	stride := 1
	if caps.measure > 0 && fwd > caps.measure {
		stride = (fwd + caps.measure - 1) / caps.measure
	}
	var ks []int
	for j := 0; j < fwd; j += stride {
		ks = append(ks, w.store.CountUsersIn(outs[fwdIdx[j]].box))
	}
	sort.Ints(ks)
	if len(ks) > 0 {
		row.KP5 = float64(ks[len(ks)*5/100])
		row.KP50 = float64(ks[len(ks)/2])
		below := 0
		for _, kk := range ks {
			if kk < k {
				below++
			}
		}
		row.BelowKPct = 100 * float64(below) / float64(len(ks))
	}

	// Re-identification: the §5 recording SP intersects LT-consistent
	// candidates across each pseudonym's forwarded boxes. A series is
	// re-identified when the intersection is exactly its issuer.
	type seriesKey struct {
		u   phl.UserID
		seg int
	}
	series := map[seriesKey][]geo.STBox{}
	var order []seriesKey
	for _, i := range fwdIdx {
		key := seriesKey{w.reqs[i].User, outs[i].seg}
		if _, seen := series[key]; !seen {
			order = append(order, key)
		}
		if len(series[key]) < caps.boxes {
			series[key] = append(series[key], outs[i].box)
		}
	}
	attacked, identified := 0, 0
	var anonSum float64
	for _, key := range order {
		if attacked >= caps.users {
			break
		}
		cands := w.store.LTConsistentUsers(series[key])
		attacked++
		anonSum += float64(len(cands))
		if len(cands) == 1 && cands[0] == key.u {
			identified++
		}
	}
	if attacked > 0 {
		row.ReidPct = 100 * float64(identified) / float64(attacked)
		row.MeanAnonSet = anonSum / float64(attacked)
	}

	// Cross-rotation linkability: can the Tracking attacker stitch
	// consecutive segments back together across the zone silence?
	if vals := crossSegmentLink(w, outs, fwdIdx); len(vals) > 0 {
		sort.Float64s(vals)
		idx := len(vals) * 95 / 100
		if idx >= len(vals) {
			idx = len(vals) - 1
		}
		row.LinkP95 = vals[idx]
	}
	return row
}

// crossSegmentLink computes, for every pseudonym rotation boundary, the
// internal/link Tracking likelihood between the old segment's last
// forwarded requests and the new segment's first ones.
func crossSegmentLink(w *compWorkload, outs []compOutcome, fwdIdx []int) []float64 {
	perUser := map[phl.UserID][]int{}
	var users []phl.UserID
	rotated := false
	for _, i := range fwdIdx {
		u := w.reqs[i].User
		if _, seen := perUser[u]; !seen {
			users = append(users, u)
		}
		perUser[u] = append(perUser[u], i)
		if outs[i].seg > 0 {
			rotated = true
		}
	}
	if !rotated {
		return nil
	}
	tracker := link.Tracking{MaxSpeed: 17, HalfLife: 900}
	toWire := func(idxs []int) []*wire.Request {
		out := make([]*wire.Request, len(idxs))
		for j, i := range idxs {
			out[j] = &wire.Request{Context: outs[i].box}
		}
		return out
	}
	var vals []float64
	const maxBoundaries = 400 // stated in the table notes
	for _, u := range users {
		idxs := perUser[u]
		for j := 1; j < len(idxs) && len(vals) < maxBoundaries; j++ {
			if outs[idxs[j]].seg == outs[idxs[j-1]].seg {
				continue
			}
			tail := idxs[:j]
			if len(tail) > 3 {
				tail = tail[len(tail)-3:]
			}
			head := idxs[j:]
			// Keep only the new segment's first requests.
			if len(head) > 3 {
				head = head[:3]
			}
			vals = append(vals, link.MaxPairLikelihood(toWire(tail), toWire(head), tracker))
		}
		if len(vals) >= maxBoundaries {
			break
		}
	}
	return vals
}

// CompStreamTable renders the streaming rows.
func CompStreamTable(rep CompBenchReport) *Table {
	t := &Table{
		ID:    "E-comp-stream",
		Title: "million-agent streaming workloads (recorded in BENCH_comp.json)",
		Columns: []string{"scenario", "mode", "agents", "events", "requests",
			"workers", "events/s", "peak heap MB", "seconds"},
		Notes: fmt.Sprintf("agents are materialized on demand from (seed, id) — "+
			"resident state is the city layout plus O(workers) scratch, so peak heap "+
			"stays flat in population for generate rows; the ingest row additionally "+
			"pays the server-side PHL+index, which is O(events) by design. "+
			"Measured at GOMAXPROCS=%d; ingest uses the binary /v1/batch channel "+
			"in-process (the E-wire measurement boundary).", rep.GOMAXPROCS),
	}
	for _, r := range rep.StreamRows {
		t.AddRow(r.Scenario, r.Mode, r.Agents, r.Events, r.Requests, r.Workers,
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprintf("%.1f", r.PeakHeapMB),
			fmt.Sprintf("%.1f", r.Seconds))
	}
	return t
}

// CompFrontierTable renders the privacy-vs-QoS frontier.
func CompFrontierTable(rep CompBenchReport) *Table {
	t := &Table{
		ID:    "E-comp-frontier",
		Title: "privacy vs QoS across four approaches (recorded in BENCH_comp.json)",
		Columns: []string{"scenario", "approach", "requests", "fwd %", "area km²",
			"defer s", "k p5", "k p50", "<k %", "re-id %", "anon set", "link p95"},
		Notes: fmt.Sprintf("identical seeded workloads (%d agents, %d days) per scenario; "+
			"k=%d for every approach. \"fwd %%\" is forwarded requests (the rest are "+
			"suppressed or dropped); \"area\"/\"defer\" are QoS costs over forwarded "+
			"requests. achieved-k is measured on an every-Nth sample of ≤%d forwarded "+
			"requests per cell; re-identification attacks the first %d pseudonym series "+
			"per cell with ≤%d boxes each (LT-consistency intersection against the full "+
			"PHL); \"link p95\" is the Tracking attacker's cross-rotation linkability "+
			"over ≤400 rotation boundaries, \"-\" where the approach never rotates.",
			rep.CompAgents, rep.CompDays, rep.K, rep.MeasureReqs, rep.AttackUsers, rep.AttackBoxes),
	}
	for _, r := range rep.CompRows {
		linkCell := "-"
		if r.LinkP95 >= 0 {
			linkCell = fmt.Sprintf("%.2f", r.LinkP95)
		}
		t.AddRow(r.Scenario, r.Approach, r.Requests,
			fmt.Sprintf("%.1f", r.ForwardedPct),
			fmt.Sprintf("%.4g", r.MeanAreaKm2),
			fmt.Sprintf("%.0f", r.MeanDeferS),
			fmt.Sprintf("%.0f", r.KP5),
			fmt.Sprintf("%.0f", r.KP50),
			fmt.Sprintf("%.1f", r.BelowKPct),
			fmt.Sprintf("%.1f", r.ReidPct),
			fmt.Sprintf("%.1f", r.MeanAnonSet),
			linkCell)
	}
	return t
}

// compRecordTable loads the checked-in record and renders one of its
// tables, so `lbbench -md` regenerates §E-comp byte-for-byte without
// re-measuring. A missing record renders an instruction note instead.
func compRecordTable(render func(CompBenchReport) *Table, id, title string) *Table {
	rep, err := LoadCompBench(CompBenchRecord)
	if err != nil {
		return &Table{ID: id, Title: title,
			Notes: "BENCH_comp.json not found — regenerate it with " +
				"`go run ./cmd/lbbench -compbench BENCH_comp.json` from the repo root."}
	}
	return render(rep)
}

// ECompStream is the E-comp-stream experiment (reads BENCH_comp.json).
func ECompStream() *Table {
	return compRecordTable(CompStreamTable, "E-comp-stream",
		"million-agent streaming workloads (recorded in BENCH_comp.json)")
}

// ECompFrontier is the E-comp-frontier experiment (reads BENCH_comp.json).
func ECompFrontier() *Table {
	return compRecordTable(CompFrontierTable, "E-comp-frontier",
		"privacy vs QoS across four approaches (recorded in BENCH_comp.json)")
}
