// Package sim is the experiment harness: it assembles the full pipeline
// (synthetic city → trusted server → adversarial service provider),
// runs the parameter sweeps of DESIGN.md's experiment index (E1–E10)
// and renders the result tables that EXPERIMENTS.md records.
package sim

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	// ID is the experiment identifier, e.g. "E2".
	ID string
	// Title describes the sweep.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the pre-formatted cells.
	Rows [][]string
	// Notes comments on how to read the numbers.
	Notes string
}

// AddRow appends a row of values formatted with %v (floats with %.3g).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case float32:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned plain-text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	fmt.Fprintln(w, line(t.Columns))
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, line(rule))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Markdown renders the table as GitHub-flavored markdown (used to
// refresh EXPERIMENTS.md).
func (t *Table) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "\n*%s*\n", t.Notes)
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
