package sim

import (
	"fmt"

	"histanon/internal/baseline"

	"histanon/internal/deploy"
	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/metrics"
	"histanon/internal/mixzone"
	"histanon/internal/mobility"
	"histanon/internal/phl"
	"histanon/internal/sp"
	"histanon/internal/ts"
)

// E11 runs the deployment-area analysis of §7 direction (b): for one
// city's movement patterns, which (service tolerance, k) combinations
// are deployable, which need unlinking support, and which are hopeless.
func E11() *Table {
	t := &Table{
		ID:      "E11",
		Title:   "deployment-area feasibility (120 users, 7 days)",
		Columns: []string{"tolerance", "k", "feasible %", "covered %", "verdict"},
		Notes:   "covered = feasible or an unlinking opportunity exists; target 90%",
	}
	cfg := mobility.DefaultConfig()
	cfg.Users = 120
	cfg.Days = 7
	world := mobility.Generate(cfg)
	store := phl.NewStore()
	for _, ev := range world.Events {
		store.Record(ev.User, ev.Point)
	}
	idx := deploy.BuildIndex(store)

	for _, tc := range []struct {
		label string
		tol   generalize.Tolerance
	}{
		{"0.25 km^2 / 5 min", generalize.Tolerance{MaxWidth: 500, MaxHeight: 500, MaxDuration: 300}},
		{"1 km^2 / 15 min", generalize.Tolerance{MaxWidth: 1000, MaxHeight: 1000, MaxDuration: 900}},
		{"4 km^2 / 30 min", generalize.Tolerance{MaxWidth: 2000, MaxHeight: 2000, MaxDuration: 1800}},
	} {
		for _, k := range []int{2, 5, 10} {
			rep, err := deploy.Analyze(deploy.Input{
				Store:      store,
				Index:      idx,
				Metric:     geo.STMetric{TimeScale: 1},
				K:          k,
				Tolerance:  tc.tol,
				Divergence: mixzone.Divergence{MinAngle: 0.3},
			})
			if err != nil {
				panic(fmt.Sprintf("E11: %v", err))
			}
			t.AddRow(tc.label, k,
				100*rep.FeasibleRate, 100*rep.CoveredRate, rep.Verdict.String())
		}
	}
	return t
}

// E12 is the randomization ablation for the §7 inference-attack
// defense: without padding, the issuer's exact position frequently lies
// on the forwarded box's boundary (an attacker learns a coordinate
// exactly); with padding the leak disappears at a bounded area cost.
func E12() *Table {
	t := &Table{
		ID:      "E12",
		Title:   "randomization vs boundary-inference leakage (k=5)",
		Columns: []string{"randomization", "boundary hits %", "mean area (km^2)", "hk failures"},
		Notes:   "boundary hit = the exact request coordinate equals a box edge",
	}
	for _, mode := range []struct {
		name string
		seed int64
	}{
		{"off", 0},
		{"on (seed 7)", 7},
	} {
		cfg := DefaultScenario()
		cfg.Mobility.Days = 7
		cfg.Policy = ts.Policy{K: 5}
		cfg.RandomizeSeed = mode.seed
		res := Run(cfg)

		hits, total := 0, 0
		for i, d := range res.Decisions {
			if !d.Generalized || d.Request == nil {
				continue
			}
			total++
			p := res.Requests[i].Point
			b := d.Request.Context
			if b.Area.MinX == p.P.X || b.Area.MaxX == p.P.X ||
				b.Area.MinY == p.P.Y || b.Area.MaxY == p.P.Y ||
				b.Time.Start == p.T || b.Time.End == p.T {
				hits++
			}
		}
		area, _ := res.GeneralizedStats()
		t.AddRow(mode.name,
			100*float64(hits)/float64(total),
			area.Mean()/1e6,
			res.Server.Counters.Get("hk_failures"))
	}
	return t
}

// E13 measures the service-latency dimension the per-message model
// hides: the online Gedik–Liu engine defers requests until k actual
// senders co-occur, so QoS degrades with k — while Algorithm 1 answers
// immediately at any k because it only needs k *potential* senders
// (the paper's §2 distinction between the two requirements).
func E13() *Table {
	t := &Table{
		ID:      "E13",
		Title:   "online Gedik-Liu engine: deferral and drops vs k (80 users, 2 days)",
		Columns: []string{"anonymizer", "k", "cloaked %", "dropped %", "mean deferral (s)"},
		Notes:   "radius 1.5 km, deadline 900 s; histanon generalizes immediately (potential senders suffice)",
	}
	cfg := mobility.DefaultConfig()
	cfg.Users = 80
	cfg.Days = 2
	world := mobility.Generate(cfg)
	stream := world.Requests()

	for _, k := range []int{2, 5, 10} {
		e := baseline.NewGedikLiuEngine(k, 1500, 900)
		var outs []baseline.Outcome
		for _, ev := range stream {
			outs = append(outs, e.Submit(baseline.Request{User: ev.User, Point: ev.Point})...)
		}
		outs = append(outs, e.Flush()...)
		cloaked, dropped := 0, 0
		deferS := &metrics.Summary{}
		for _, o := range outs {
			if o.Cloaked {
				cloaked++
				deferS.Add(float64(o.Deferral))
			} else {
				dropped++
			}
		}
		total := float64(len(outs))
		t.AddRow("gedik-liu (online)", k, 100*float64(cloaked)/total, 100*float64(dropped)/total, deferS.Mean())
	}
	t.AddRow("histanon", "any", 100.0, 0.0, 0.0)
	return t
}

// E14 tests the paper's §5.1 assumption with a sharper adversary: a
// naive-Bayes attacker that weights candidates by how densely their
// histories populate the forwarded boxes, instead of treating the
// anonymity set as uniform. If Algorithm 1's boxes admit skewed
// posteriors, the *effective* anonymity (2^entropy) is lower than the
// nominal k.
func E14() *Table {
	t := &Table{
		ID:      "E14",
		Title:   "effective anonymity under a Bayesian attacker",
		Columns: []string{"k", "hardening", "mean effective k", "min effective k", "mean top confidence", "confident IDs %"},
		Notes:   "effective k = 2^entropy of the issuer posterior; confident ID = top posterior > 0.5; witness-samples balances in-box densities",
	}
	for _, mode := range []struct {
		k        int
		seed     int64
		wsamples int
		name     string
	}{
		{2, 0, 0, "none"},
		{5, 0, 0, "none"},
		{10, 0, 0, "none"},
		{5, 7, 0, "randomize"},
		{5, 0, 5, "witness-samples=5"},
		{5, 7, 5, "both"},
	} {
		k := mode.k
		cfg := DefaultScenario()
		cfg.Policy = ts.Policy{K: k}
		cfg.RandomizeSeed = mode.seed
		cfg.WitnessSamples = mode.wsamples
		res := Run(cfg)
		attacker := &sp.Attacker{Knowledge: res.Server.Store()}
		effK := &metrics.Summary{}
		conf := &metrics.Summary{}
		confident := 0
		series := res.ExposedSeries()
		for _, reqs := range series {
			rep := attacker.WeightedAttack(reqs)
			effK.Add(rep.EffectiveK)
			conf.Add(rep.TopConfidence)
			if rep.TopConfidence > 0.5 {
				confident++
			}
		}
		pct := 0.0
		if len(series) > 0 {
			pct = 100 * float64(confident) / float64(len(series))
		}
		t.AddRow(k, mode.name, effK.Mean(), effK.Min(), conf.Mean(), pct)
	}
	return t
}
