//go:build !race

package sim

// raceEnabled reports whether the race detector is compiled in; the
// allocation-budget guard skips under it, since instrumentation skews
// testing.AllocsPerRun.
const raceEnabled = false
