// E-obs: instrumentation-overhead benchmark. Measures the whole-server
// request pipeline (the BENCH_e11 single-goroutine workload) under the
// observability layer's settings: span sampling off, tail sampling at
// 1/1000 head rate, at 100%, at 100% with metric exemplars, and at
// 100% with the audit log on. cmd/lbbench -obsbench regenerates the
// EXPERIMENTS.md E-obs table from this.

package sim

import (
	"encoding/json"
	"io"
	"runtime"
	"testing"
	"time"

	"histanon/internal/obs"
	"histanon/internal/phl"
)

// ObsBenchRow is one overhead measurement of the instrumented pipeline.
type ObsBenchRow struct {
	// Mode names the observability setting ("sampling off", …).
	Mode        string  `json:"mode"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// BytesPerOp is heap bytes allocated per request (omitted by records
	// predating the allocation-free span collection work).
	BytesPerOp int64 `json:"bytes_per_op,omitempty"`
	// VsOff is this row's throughput relative to the sampling-off row.
	VsOff float64 `json:"vs_off"`
}

// ObsBenchReport is the machine-readable E-obs record.
type ObsBenchReport struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	Rows       []ObsBenchRow `json:"rows"`
}

// WriteJSON emits the report for BENCH-style records.
func (r ObsBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// obsBenchCase configures one RunObsBench row.
type obsBenchCase struct {
	mode      string
	sample    float64
	tailSlow  time.Duration
	exemplars bool
	audit     bool
}

// obsBenchRounds is how many times each mode is measured; the fastest
// round is reported. Best-of-N damps scheduler noise, which on shared
// machines easily exceeds the few-percent differences being measured.
const obsBenchRounds = 3

// RunObsBench measures the single-goroutine request pipeline under each
// observability setting. The workload is identical to the BENCH_e11
// goroutines=1 row, so "sampling off" here is directly comparable to
// that record.
func RunObsBench() ObsBenchReport {
	rep := ObsBenchReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	cases := []obsBenchCase{
		{mode: "sampling off", sample: 0},
		// The production configuration: 1/1000 head retention with the
		// slow-request tail rule armed. Every request collects a span;
		// almost none are kept.
		{mode: "tail 1/1000", sample: 0.001, tailSlow: time.Millisecond},
		{mode: "sampling 100%", sample: 1},
		{mode: "sampling 100% + exemplars", sample: 1, exemplars: true},
		{mode: "sampling 100% + audit", sample: 1, audit: true},
	}
	for _, c := range cases {
		c := c
		best := ObsBenchRow{Mode: c.mode}
		for round := 0; round < obsBenchRounds; round++ {
			r := testing.Benchmark(func(b *testing.B) {
				server := NewThroughputServer(ThroughputClients)
				server.Obs.Tracer.SetSampleRate(c.sample)
				if c.tailSlow > 0 {
					server.Obs.Tracer.SetTailSlow(c.tailSlow)
				}
				if c.exemplars {
					server.Obs.SetExemplars(true)
				}
				if c.audit {
					server.Obs.SetAudit(obs.NewAuditLog(io.Discard))
				}
				b.ReportAllocs()
				b.ResetTimer()
				u := phl.UserID(0)
				for i := 0; i < b.N; i++ {
					ThroughputRequest(server, u, i)
				}
			})
			nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
			if ops := 1e9 / nsPerOp; ops > best.OpsPerSec {
				best.OpsPerSec = ops
				best.NsPerOp = nsPerOp
				best.AllocsPerOp = r.AllocsPerOp()
				best.BytesPerOp = r.AllocedBytesPerOp()
			}
		}
		rep.Rows = append(rep.Rows, best)
	}
	base := rep.Rows[0].OpsPerSec
	for i := range rep.Rows {
		rep.Rows[i].VsOff = rep.Rows[i].OpsPerSec / base
	}
	return rep
}

// BenchObsSample exposes the overhead workload to `go test -bench`:
// the one-goroutine pipeline at the given sampling rate.
func BenchObsSample(b *testing.B, sample float64) {
	server := NewThroughputServer(ThroughputClients)
	server.Obs.Tracer.SetSampleRate(sample)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ThroughputRequest(server, phl.UserID(0), i)
	}
}
