package sim

import (
	"bytes"
	"strings"
	"testing"

	"histanon/internal/sp"
	"histanon/internal/ts"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "EX",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Notes:   "hello",
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("xx", 0.333333)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EX — demo", "long-column", "0.333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render misses %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| a | long-column |") {
		t.Fatalf("markdown header wrong:\n%s", buf.String())
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"E1", "E5", "E10"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	if _, ok := ByID("E99"); ok {
		t.Error("unknown experiment must not resolve")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if len(seen) != 16 {
		t.Errorf("expected 16 experiments, got %d", len(seen))
	}
}

func smallScenario() ScenarioConfig {
	cfg := DefaultScenario()
	cfg.Mobility.Users = 40
	cfg.Mobility.Days = 7
	cfg.Mobility.Homes = 12
	cfg.Mobility.Offices = 5
	return cfg
}

func TestRunScenarioSmoke(t *testing.T) {
	cfg := smallScenario()
	res := Run(cfg)
	if len(res.Decisions) == 0 || len(res.Decisions) != len(res.Requests) {
		t.Fatalf("decisions=%d requests=%d", len(res.Decisions), len(res.Requests))
	}
	reqCount := res.Server.Counters.Get("requests")
	if reqCount != int64(len(res.Requests)) {
		t.Fatalf("counter requests=%d events=%d", reqCount, len(res.Requests))
	}
	fwd := res.Server.Counters.Get("forwarded")
	if int64(len(res.Provider.Requests())) != fwd {
		t.Fatalf("provider recorded %d, counter says %d", len(res.Provider.Requests()), fwd)
	}
	if res.Server.Counters.Get("generalized") == 0 {
		t.Fatal("commuters with LBQIDs must trigger generalization")
	}
	// Unlimited tolerance: no failures, no unlinkings.
	if res.Server.Counters.Get("hk_failures") != 0 {
		t.Fatalf("unexpected failures: %s", res.Server.Counters)
	}
}

func TestTheoremOneOnPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full 14-day pipeline")
	}
	const k = 3
	cfg := smallScenario()
	cfg.Mobility.Users = 60
	cfg.Mobility.Days = 14
	cfg.Policy = ts.Policy{K: k}
	res := Run(cfg)

	series := res.ExposedSeries()
	if len(series) == 0 {
		t.Fatal("two weeks of commuting must expose some LBQIDs")
	}
	attacker := &sp.Attacker{Knowledge: res.Server.Store()}
	for u, reqs := range series {
		rep := attacker.AttackSeries(reqs)
		if len(rep.Candidates) < k {
			t.Fatalf("user %v: anonymity set %d < k=%d over %d requests",
				u, len(rep.Candidates), k, len(reqs))
		}
		if rep.Identified {
			t.Fatalf("user %v identified despite historical %d-anonymity", u, k)
		}
	}
}

func TestFailureAndUnlinkRates(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline sweep")
	}
	// A very tight tolerance must produce failures and unlinkings.
	cfg := smallScenario()
	cfg.Policy = ts.Policy{K: 8}
	cfg.Tolerance = tightTolerance()
	res := Run(cfg)
	if res.Server.Counters.Get("hk_failures") == 0 {
		t.Fatalf("tight tolerance must cause failures: %s", res.Server.Counters)
	}
	if res.FailureRate() <= 0 {
		t.Fatal("failure rate must be positive")
	}
}

// TestFastExperimentsProduceTables smoke-runs the cheap experiments so
// the harness itself stays covered by `go test`.
func TestFastExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	for _, id := range []string{"E3", "E9"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		tab := e.Run()
		if tab.ID != id || len(tab.Rows) == 0 || len(tab.Columns) == 0 {
			t.Fatalf("%s produced a malformed table: %+v", id, tab)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Fatalf("%s row width %d != %d columns", id, len(row), len(tab.Columns))
			}
		}
	}
}
