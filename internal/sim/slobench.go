// E-slo: SLO-engine overhead benchmark. Measures the whole-server
// request pipeline (the BENCH_e11 single-goroutine workload) with the
// privacy SLO engine off, on (default windows and the below-k
// objective), and on with a canary capturing from the decision path.
// The acceptance target is ≤2% throughput cost for "slo on" vs off:
// the engine is meant to run always-on in production. cmd/lbbench
// -slobench emits the record as BENCH_slo.json.

package sim

import (
	"encoding/json"
	"io"
	"runtime"
	"testing"

	"histanon/internal/phl"
	"histanon/internal/slo"
)

// SLOBenchRow is one overhead measurement of the SLO-instrumented
// pipeline.
type SLOBenchRow struct {
	// Mode names the engine setting ("slo off", "slo on", …).
	Mode        string  `json:"mode"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// VsOff is this row's throughput relative to the engine-off row.
	VsOff float64 `json:"vs_off"`
}

// SLOBenchReport is the machine-readable E-slo record. The JSON key
// "slo_rows" is the shape discriminator benchdiff keys on.
type SLOBenchReport struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	SLORows    []SLOBenchRow `json:"slo_rows"`
}

// WriteJSON emits the report for BENCH-style records.
func (r SLOBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// sloBenchRounds is how many times each mode is measured; the fastest
// round is reported, damping scheduler noise below the few-percent
// differences being measured.
const sloBenchRounds = 3

// RunSLOBench measures the single-goroutine request pipeline with the
// SLO engine off, on, and on with an attached canary. The workload is
// identical to the BENCH_e11 goroutines=1 row.
func RunSLOBench() SLOBenchReport {
	rep := SLOBenchReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	// The E11 workload advances logical time one full second — one ring
	// bucket — per request, so every observation pays a bucket rotation:
	// the engine's worst case. The "amortized clock" pair holds the
	// timestamp for 100 consecutive requests, the shape of production
	// traffic (many requests per bucket), where rotation amortizes away.
	// Each "on" row is compared against the "off" row with the same
	// clock; the ≤2% always-on target applies to the amortized pair.
	cases := []struct {
		mode   string
		on     bool
		canary bool
		coarse bool
		base   int // index of this row's off baseline
	}{
		{mode: "slo off"},
		{mode: "slo on", on: true},
		{mode: "slo on + canary capture", on: true, canary: true},
		{mode: "slo off, amortized clock", coarse: true, base: 3},
		{mode: "slo on, amortized clock", on: true, coarse: true, base: 3},
	}
	for _, c := range cases {
		c := c
		best := SLOBenchRow{Mode: c.mode}
		for round := 0; round < sloBenchRounds; round++ {
			r := testing.Benchmark(func(b *testing.B) {
				server := NewThroughputServer(ThroughputClients)
				if c.on {
					server.SLO.SetEnabled(true)
				}
				if c.canary {
					store, ok := server.Store().(slo.AttackStore)
					if !ok {
						b.Fatal("server store does not expose the attack read")
					}
					server.SLO.AttachCanary(slo.NewCanary(slo.CanaryOptions{Store: store}))
				}
				b.ReportAllocs()
				b.ResetTimer()
				u := phl.UserID(0)
				for i := 0; i < b.N; i++ {
					if c.coarse {
						ThroughputRequest(server, u, (i/100)*100)
					} else {
						ThroughputRequest(server, u, i)
					}
				}
			})
			nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
			if ops := 1e9 / nsPerOp; ops > best.OpsPerSec {
				best.OpsPerSec = ops
				best.NsPerOp = nsPerOp
				best.AllocsPerOp = r.AllocsPerOp()
				best.BytesPerOp = r.AllocedBytesPerOp()
			}
		}
		rep.SLORows = append(rep.SLORows, best)
	}
	for i := range rep.SLORows {
		rep.SLORows[i].VsOff = rep.SLORows[i].OpsPerSec / rep.SLORows[cases[i].base].OpsPerSec
	}
	return rep
}
