// E-wire: binary wire-protocol benchmark. Two row groups, one record:
//
//   - codec rows compare one TS→SP request round-trip (encode + parse)
//     through the text codec, the binary codec, and the pooled
//     zero-copy binary parser (which must report 0 allocs/op);
//   - ingest rows compare position-update ingestion into the full
//     server pipeline through POST /v1/location JSON bodies against
//     pre-encoded binary batches on POST /v1/batch, single-goroutine
//     and at GOMAXPROCS.
//
// Each group's first row is its text-protocol baseline; VsText is the
// row's throughput relative to that baseline. cmd/lbbench -wirebench
// writes the BENCH_wire.json record benchdiff aggregates.

package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"testing"

	"histanon/internal/geo"
	"histanon/internal/httpapi"
	"histanon/internal/wire"
)

// WireBenchRow is one wire-protocol measurement.
type WireBenchRow struct {
	// Mode names the row ("codec: …" or "ingest: …"); ops are request
	// round-trips for codec rows and position updates for ingest rows.
	Mode        string  `json:"mode"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// VsText is throughput relative to the row group's text baseline
	// (1.0 for the baselines themselves).
	VsText float64 `json:"vs_text"`
}

// WireBenchReport is the machine-readable E-wire record. The JSON key
// is "wire_rows" so benchdiff can tell the shape apart from E-obs.
type WireBenchReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	BatchSize  int            `json:"batch_size"`
	Rows       []WireBenchRow `json:"wire_rows"`
}

// WriteJSON emits the report for BENCH-style records.
func (r WireBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// wireBenchRounds: best-of-N per row, same rationale as obsBenchRounds.
const wireBenchRounds = 3

// wireBatchSize is how many location updates one benchmark batch
// carries — a device flushing a few seconds of 100 Hz samples.
const wireBatchSize = 512

// wireBenchRequest is the representative TS→SP request the codec rows
// round-trip: a generalized commute request with a small data map.
func wireBenchRequest() *wire.Request {
	r := &wire.Request{ID: 12345, Pseudonym: "p-8842", Service: "navigation",
		Data: map[string]string{"dest": "office", "lang": "en"}}
	r.Context.Area = geo.Rect{MinX: 100.25, MinY: -50.5, MaxX: 200.75, MaxY: 50.5}
	r.Context.Time.Start, r.Context.Time.End = 25200, 25800
	return r
}

// wireBenchBatches pre-encodes n distinct location batches of
// wireBatchSize updates each, spread across users and a day of
// timestamps.
func wireBenchBatches(n int) [][]byte {
	out := make([][]byte, n)
	t := int64(6 * 3600)
	for i := range out {
		var frames []byte
		for j := 0; j < wireBatchSize; j++ {
			t++
			frames = wire.AppendLocation(frames, wire.LocationUpdate{
				User: int64(2000 + (i*wireBatchSize+j)%4096),
				X:    float64((i*31+j)%400) + 0.25,
				Y:    float64((j*17+i)%400) + 0.5,
				T:    t,
			})
		}
		batch, err := wire.AppendBatch(nil, wireBatchSize, frames)
		if err != nil {
			panic(err)
		}
		out[i] = batch
	}
	return out
}

// nullResponseWriter discards the handler's response; the benchmark
// measures ingest, not response rendering I/O.
type nullResponseWriter struct {
	h http.Header
}

func (w *nullResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 4)
	}
	return w.h
}
func (w *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullResponseWriter) WriteHeader(int)             {}

// ingestRequest builds a reusable POST with a resettable body.
func ingestRequest(path, contentType, accept string) (*http.Request, *bytes.Reader) {
	body := bytes.NewReader(nil)
	req, err := http.NewRequest(http.MethodPost, path, io.NopCloser(body))
	if err != nil {
		panic(err)
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	return req, body
}

// RunWireBench measures every row and derives the VsText columns.
func RunWireBench() WireBenchReport {
	rep := WireBenchReport{GOMAXPROCS: runtime.GOMAXPROCS(0), BatchSize: wireBatchSize}

	type benchCase struct {
		mode string
		// opsPerIter scales b.N iterations to reported ops.
		opsPerIter int
		run        func(b *testing.B)
	}

	req := wireBenchRequest()
	binFrame, err := wire.EncodeBinaryRequest(req)
	if err != nil {
		panic(err)
	}

	cases := []benchCase{
		{mode: "codec: text encode+parse", opsPerIter: 1, run: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := wire.EncodeRequest(req)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := wire.ParseRequest(s); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{mode: "codec: binary encode+parse", opsPerIter: 1, run: func(b *testing.B) {
			b.ReportAllocs()
			var buf []byte
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = wire.AppendBinaryRequest(buf[:0], req)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := wire.ParseBinaryRequest(buf); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{mode: "codec: binary pooled parse", opsPerIter: 1, run: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				br := wire.AcquireBinaryRequest()
				if err := br.ParseFrame(binFrame); err != nil {
					b.Fatal(err)
				}
				br.Release()
			}
		}},
		{mode: "ingest: json /v1/location", opsPerIter: 1, run: func(b *testing.B) {
			h := httpapi.New(NewThroughputServer(ThroughputClients))
			hreq, body := ingestRequest("/v1/location", "application/json", "")
			var w nullResponseWriter
			jsonBodies := make([][]byte, 64)
			for i := range jsonBodies {
				jsonBodies[i] = []byte(fmt.Sprintf(
					`{"user":%d,"x":%d.25,"y":%d.5,"t":%d}`,
					2000+i, (i*31)%400, (i*17)%400, 21600+i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				body.Reset(jsonBodies[i%len(jsonBodies)])
				// The JSON handlers wrap and replace r.Body per request;
				// restore the raw reader so wrappers don't accumulate.
				hreq.Body = io.NopCloser(body)
				h.ServeHTTP(&w, hreq)
			}
		}},
		{mode: "ingest: binary batch x1", opsPerIter: wireBatchSize, run: func(b *testing.B) {
			h := httpapi.New(NewThroughputServer(ThroughputClients))
			batches := wireBenchBatches(64)
			hreq, body := ingestRequest("/v1/batch", httpapi.WireContentType, httpapi.WireContentType)
			var w nullResponseWriter
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				body.Reset(batches[i%len(batches)])
				h.ServeHTTP(&w, hreq)
			}
		}},
		{mode: fmt.Sprintf("ingest: binary batch, parallel x%d", runtime.GOMAXPROCS(0)),
			opsPerIter: wireBatchSize, run: func(b *testing.B) {
				h := httpapi.New(NewThroughputServer(ThroughputClients))
				batches := wireBenchBatches(64)
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					hreq, body := ingestRequest("/v1/batch", httpapi.WireContentType, httpapi.WireContentType)
					var w nullResponseWriter
					i := 0
					for pb.Next() {
						body.Reset(batches[i%len(batches)])
						h.ServeHTTP(&w, hreq)
						i++
					}
				})
			}},
	}

	for _, c := range cases {
		best := WireBenchRow{Mode: c.mode}
		for round := 0; round < wireBenchRounds; round++ {
			r := testing.Benchmark(c.run)
			nsPerIter := float64(r.T.Nanoseconds()) / float64(r.N)
			nsPerOp := nsPerIter / float64(c.opsPerIter)
			if ops := 1e9 / nsPerOp; ops > best.OpsPerSec {
				best.OpsPerSec = ops
				best.NsPerOp = nsPerOp
				best.AllocsPerOp = r.AllocsPerOp() / int64(c.opsPerIter)
				best.BytesPerOp = r.AllocedBytesPerOp() / int64(c.opsPerIter)
			}
		}
		rep.Rows = append(rep.Rows, best)
	}

	// VsText: each group is normalized by its own text baseline.
	codecBase, ingestBase := rep.Rows[0].OpsPerSec, rep.Rows[3].OpsPerSec
	for i := range rep.Rows {
		base := codecBase
		if i >= 3 {
			base = ingestBase
		}
		rep.Rows[i].VsText = rep.Rows[i].OpsPerSec / base
	}
	return rep
}
