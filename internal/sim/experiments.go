package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"histanon/internal/anon"
	"histanon/internal/baseline"
	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/lbqid"
	"histanon/internal/link"
	"histanon/internal/metrics"
	"histanon/internal/mixzone"
	"histanon/internal/mobility"
	"histanon/internal/phl"
	"histanon/internal/sp"
	"histanon/internal/stindex"
	"histanon/internal/ts"
	"histanon/internal/wire"
)

// Experiment pairs an identifier with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() *Table
}

// All returns the experiment suite in order. IDs follow DESIGN.md's
// experiment index.
func All() []Experiment {
	return []Experiment{
		{"E1", "Algorithm 1 first-element query latency vs n and k (index ablation)", E1},
		{"E2", "anonymity level k vs cloaked resolution, by user density", E2},
		{"E3", "trace length vs HK preservation: fixed-k vs k'-decay (§6.2)", E3},
		{"E4", "tolerance constraints vs generalization failure rate", E4},
		{"E5", "k vs unlinking frequency and service disruption", E5},
		{"E6", "Theorem 1: SP re-identification under historical k-anonymity", E6},
		{"E7", "baseline comparison: per-request vs historical anonymity", E7},
		{"E8", "tracking attacker vs unlinking: linked groups and identification", E8},
		{"E9", "LBQID monitoring throughput vs patterns per user", E9},
		{"E10", "spatio-temporal index ablation: box and kNN queries", E10},
		{"E11", "deployment-area feasibility analysis (§7 direction b)", E11},
		{"E12", "randomization vs boundary-inference leakage (§7)", E12},
		{"E13", "online Gedik-Liu deferral dynamics vs immediate generalization", E13},
		{"E14", "effective anonymity under a Bayesian (density-weighted) attacker", E14},
		{"E-comp-stream", "million-agent streaming workloads (from BENCH_comp.json)", ECompStream},
		{"E-comp-frontier", "privacy vs QoS frontier across four approaches (from BENCH_comp.json)", ECompFrontier},
	}
}

// ByID returns the experiment with the given identifier
// (case-insensitive, so `-e e-comp-stream` works from the CLI).
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// randomIndex fills an index with n samples of `users` distinct users
// spread over an 8×8 km, 14-day extent.
func randomIndex(idx stindex.Index, n, users int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		idx.Insert(phl.UserID(rng.Intn(users)), geo.STPoint{
			P: geo.Point{X: rng.Float64() * 8000, Y: rng.Float64() * 8000},
			T: int64(rng.Intn(14 * 24 * 3600)),
		})
	}
}

// E1 measures the first-element query (smallest box crossed by k
// trajectories) on the three index structures, over growing databases —
// the paper's O(k·n) brute force against moving-object-index-inspired
// alternatives (§6.2).
func E1() *Table {
	t := &Table{
		ID:      "E1",
		Title:   "Algorithm 1 line-5 query latency (µs/op)",
		Columns: []string{"n", "k", "brute", "grid", "kdtree", "rtree", "speedup(grid)"},
		Notes:   "brute is the paper's O(k·n) method; grid/kd answer the same query",
	}
	m := geo.STMetric{TimeScale: 1}
	for _, n := range []int{2000, 10000, 50000} {
		brute := stindex.NewBrute()
		grid := stindex.NewGrid(500, 1800)
		kd := stindex.NewKDTree()
		rt := stindex.NewRTree()
		for _, idx := range []stindex.Index{brute, grid, kd, rt} {
			randomIndex(idx, n, n/50, 42)
		}
		for _, k := range []int{2, 10} {
			times := map[string]float64{}
			for name, idx := range map[string]stindex.Index{"brute": brute, "grid": grid, "kd": kd, "rtree": rt} {
				rng := rand.New(rand.NewSource(7))
				iters := 50
				start := time.Now()
				for i := 0; i < iters; i++ {
					q := geo.STPoint{
						P: geo.Point{X: rng.Float64() * 8000, Y: rng.Float64() * 8000},
						T: int64(rng.Intn(14 * 24 * 3600)),
					}
					stindex.SmallestEnclosingBox(idx, q, k, m, nil)
				}
				times[name] = float64(time.Since(start).Microseconds()) / float64(iters)
			}
			t.AddRow(n, k, times["brute"], times["grid"], times["kd"], times["rtree"], times["brute"]/times["grid"])
		}
	}
	return t
}

// E2 sweeps user density and k, reporting the spatial and temporal
// resolution cost of historical k-anonymity (the anonymity–QoS
// trade-off of §6.2).
func E2() *Table {
	t := &Table{
		ID:      "E2",
		Title:   "cloaked resolution vs k and density",
		Columns: []string{"users", "k", "mean area (km^2)", "p95 area (km^2)", "mean interval (s)"},
		Notes:   "generalized requests only; unlimited tolerance",
	}
	for _, users := range []int{60, 120, 240} {
		for _, k := range []int{2, 5, 10, 20} {
			cfg := DefaultScenario()
			cfg.Mobility.Users = users
			cfg.Mobility.Days = 7
			cfg.Policy = ts.Policy{K: k}
			res := Run(cfg)
			area, interval := res.GeneralizedStats()
			t.AddRow(users, k, area.Mean()/1e6, area.Quantile(0.95)/1e6, interval.Mean())
		}
	}
	return t
}

// E3 compares the fixed-k strategy against the §6.2 k'-decay refinement
// on traces of growing length: the paper argues over-provisioning
// witnesses keeps historical k-anonymity sustainable on long traces.
func E3() *Table {
	t := &Table{
		ID:      "E3",
		Title:   "trace length vs HK preservation: fixed-k vs k'-decay (k=5)",
		Columns: []string{"trace len", "strategy", "all-steps-HK %", "late-steps-HK %", "final-step area (km^2)"},
		Notes:   "tolerance 2x2 km, 30 min; decay starts at k'=2k; late steps exclude the first element",
	}
	const k = 5
	cfg := mobility.DefaultConfig()
	cfg.Users = 150
	cfg.Days = 5
	world := mobility.Generate(cfg)
	store := phl.NewStore()
	idx := stindex.NewGrid(500, 1800)
	for _, ev := range world.Events {
		store.Record(ev.User, ev.Point)
		idx.Insert(ev.User, ev.Point)
	}
	g := &generalize.Generalizer{Index: idx, Store: store, Metric: geo.STMetric{TimeScale: 1}}
	tol := generalize.Tolerance{MaxWidth: 2000, MaxHeight: 2000, MaxDuration: 1800}

	// Trace points: each commuter's request events.
	traces := map[phl.UserID][]geo.STPoint{}
	commuter := map[phl.UserID]bool{}
	for _, a := range world.Agents {
		commuter[a.User] = a.Commuter
	}
	for _, ev := range world.Requests() {
		if commuter[ev.User] {
			traces[ev.User] = append(traces[ev.User], ev.Point)
		}
	}
	users := make([]phl.UserID, 0, len(traces))
	for u := range traces {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })

	for _, length := range []int{2, 4, 6, 8} {
		for _, strat := range []struct {
			name  string
			sched generalize.DecaySchedule
		}{
			{"fixed-k", generalize.DecaySchedule{Target: k}},
			{"k'-decay", generalize.DecaySchedule{Target: k, Initial: 2 * k, Step: 1}},
		} {
			ok, total := 0, 0
			lateOK, lateTotal := 0, 0
			finalArea := &metrics.Summary{}
			for _, u := range users {
				tr := traces[u]
				if len(tr) < length {
					continue
				}
				total++
				sess := generalize.NewSession(g, u, strat.sched)
				allHK := true
				var last generalize.Result
				for step, q := range tr[:length] {
					res, found := sess.Generalize(q, tol)
					if !found {
						allHK = false
						break
					}
					allHK = allHK && res.HKAnonymity
					if step > 0 {
						lateTotal++
						if res.HKAnonymity {
							lateOK++
						}
					}
					last = res
				}
				if allHK {
					ok++
				}
				finalArea.Add(last.Box.Area.Area())
			}
			t.AddRow(length, strat.name,
				100*float64(ok)/float64(total),
				100*float64(lateOK)/float64(lateTotal),
				finalArea.Mean()/1e6)
		}
	}
	return t
}

// E4 sweeps the tolerance constraints of §6.1: the stricter the service,
// the more often Algorithm 1 must report HK-anonymity = false.
func E4() *Table {
	t := &Table{
		ID:      "E4",
		Title:   "tolerance constraints vs generalization failure rate (k=5)",
		Columns: []string{"max area", "max window", "failure %", "mean fwd area (km^2)"},
		Notes:   "failure = Algorithm 1 returned HK-anonymity false",
	}
	for _, tc := range []struct {
		label string
		tol   generalize.Tolerance
	}{
		{"0.25 km^2", generalize.Tolerance{MaxWidth: 500, MaxHeight: 500, MaxDuration: 300}},
		{"1 km^2", generalize.Tolerance{MaxWidth: 1000, MaxHeight: 1000, MaxDuration: 900}},
		{"4 km^2", generalize.Tolerance{MaxWidth: 2000, MaxHeight: 2000, MaxDuration: 1800}},
		{"16 km^2", generalize.Tolerance{MaxWidth: 4000, MaxHeight: 4000, MaxDuration: 3600}},
		{"unlimited", generalize.Unlimited},
	} {
		cfg := DefaultScenario()
		cfg.Mobility.Days = 7
		cfg.Policy = ts.Policy{K: 5}
		cfg.Tolerance = tc.tol
		res := Run(cfg)
		area, _ := res.GeneralizedStats()
		window := "inf"
		if tc.tol.MaxDuration > 0 {
			window = fmt.Sprintf("%d s", tc.tol.MaxDuration)
		}
		t.AddRow(tc.label, window, 100*res.FailureRate(), area.Mean()/1e6)
	}
	return t
}

// E5 sweeps k under a fixed service tolerance and reports the unlinking
// (pseudonym rotation) frequency — the QoS-vs-anonymity-vs-unlinking
// triangle of §6.2.
func E5() *Table {
	t := &Table{
		ID:      "E5",
		Title:   "k vs unlinking frequency (tolerance 1 km^2, 15 min)",
		Columns: []string{"k", "unlinkings/user/day", "suppressed", "at-risk events"},
	}
	for _, k := range []int{2, 5, 10, 20} {
		cfg := DefaultScenario()
		cfg.Mobility.Days = 7
		cfg.Policy = ts.Policy{K: k}
		cfg.Tolerance = generalize.Tolerance{MaxWidth: 1000, MaxHeight: 1000, MaxDuration: 900}
		res := Run(cfg)
		t.AddRow(k,
			res.UnlinkingsPerUserDay(),
			res.Server.Counters.Get("suppressed"),
			res.Server.Counters.Get("at_risk"))
	}
	return t
}

// E6 validates Theorem 1 end to end: after full LBQID exposures, the
// adversarial SP's candidate set for every exposed series must hold at
// least k users, and nobody is uniquely identified.
func E6() *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Theorem 1: adversary anonymity sets after full LBQID exposure",
		Columns: []string{"k", "exposed users", "min AS", "mean AS", "identified"},
		Notes:   "|AS| = LT-consistent candidate set of the exposing pseudonym's series",
	}
	for _, k := range []int{2, 5, 10} {
		cfg := DefaultScenario()
		cfg.Policy = ts.Policy{K: k}
		res := Run(cfg)
		attacker := &sp.Attacker{Knowledge: res.Server.Store()}
		series := res.ExposedSeries()
		minAS, sumAS, identified := -1, 0, 0
		for _, reqs := range series {
			rep := attacker.AttackSeries(reqs)
			n := len(rep.Candidates)
			if minAS < 0 || n < minAS {
				minAS = n
			}
			sumAS += n
			if rep.Identified {
				identified++
			}
		}
		mean := 0.0
		if len(series) > 0 {
			mean = float64(sumAS) / float64(len(series))
		}
		if minAS < 0 {
			minAS = 0
		}
		t.AddRow(k, len(series), minAS, mean, identified)
	}
	return t
}

// E7 runs the same workload through the baseline anonymizers and
// through the full historical pipeline: every baseline achieves
// per-request k-anonymity yet exposes the request *series*, which the
// attacker collapses to one candidate.
func E7() *Table {
	t := &Table{
		ID:      "E7",
		Title:   "per-request vs historical anonymity across anonymizers (k=5)",
		Columns: []string{"anonymizer", "cloaked %", "mean area (km^2)", "series identified %", "mean series AS"},
		Notes:   "series = all of one user's cloaked requests under one pseudonym",
	}
	const k = 5
	cfg := mobility.DefaultConfig()
	cfg.Users = 120
	cfg.Days = 7
	world := mobility.Generate(cfg)
	store := phl.NewStore()
	for _, ev := range world.Events {
		store.Record(ev.User, ev.Point)
	}
	// The compared workload is the recurring commute requests — the ones
	// an LBQID-style quasi-identifier feeds on. Random background
	// requests would dominate the series metric identically for every
	// scheme without adding signal.
	commuteServices := map[string]bool{"navigation": true, "news": true, "weather": true}
	var reqs []baseline.Request
	byUser := map[phl.UserID][]int{}
	for _, ev := range world.Requests() {
		if !commuteServices[ev.Service] {
			continue
		}
		byUser[ev.User] = append(byUser[ev.User], len(reqs))
		reqs = append(reqs, baseline.Request{User: ev.User, Point: ev.Point})
	}
	city := geo.Rect{MinX: 0, MinY: 0, MaxX: cfg.Width, MaxY: cfg.Height}

	for _, a := range []baseline.Anonymizer{
		baseline.NoOp{},
		baseline.FixedGrid{Cell: 1000, Window: 900},
		baseline.GruteserGrunwald{Store: store, City: city, Window: 450},
		baseline.GedikLiu{MaxRadius: 1500, MaxDefer: 900},
	} {
		cloaked := a.CloakAll(reqs, k)
		okCount := 0
		areas := &metrics.Summary{}
		for _, c := range cloaked {
			if c.OK {
				okCount++
				areas.Add(c.Box.Area.Area())
			}
		}
		identified, asSum, users := 0, 0, 0
		for _, idxs := range byUser {
			var boxes []geo.STBox
			for _, i := range idxs {
				if cloaked[i].OK {
					boxes = append(boxes, cloaked[i].Box)
				}
			}
			if len(boxes) == 0 {
				continue
			}
			users++
			as := anon.HistoricalAnonymitySet(store, boxes)
			asSum += len(as)
			if len(as) == 1 {
				identified++
			}
		}
		t.AddRow(a.Name(),
			100*float64(okCount)/float64(len(reqs)),
			areas.Mean()/1e6,
			100*float64(identified)/float64(users),
			float64(asSum)/float64(users))
	}

	// The historical pipeline on the same city parameters: the series
	// metric runs over the LBQID-matching request series (Theorem 1's
	// scope; see ScenarioResult.ExposedSeries).
	scfg := DefaultScenario()
	scfg.Mobility = cfg
	scfg.Mobility.Days = 14 // two weeks so LBQIDs actually expose
	scfg.Policy = ts.Policy{K: k}
	res := Run(scfg)
	attacker := &sp.Attacker{Knowledge: res.Server.Store()}
	identified, asSum, users := 0, 0, 0
	for _, series := range res.ExposedSeries() {
		rep := attacker.AttackSeries(series)
		users++
		asSum += len(rep.Candidates)
		if rep.Identified {
			identified++
		}
	}
	area, _ := res.GeneralizedStats()
	meanAS := 0.0
	if users > 0 {
		meanAS = float64(asSum) / float64(users)
	}
	t.AddRow("histanon",
		100.0,
		area.Mean()/1e6,
		100*float64(identified)/float64(users),
		meanAS)
	return t
}

// E8 measures the Unlinking action of §6.3 directly: after each
// pseudonym rotation, how strongly can a multi-target-tracking attacker
// still bind the new pseudonym's first requests to the old pseudonym's
// last ones? A bare rotation (no quiet window) leaves the trajectory
// continuous and trackable; an on-demand mix zone inserts a service
// blackout that decays tracking confidence below Θ.
func E8() *Table {
	t := &Table{
		ID:      "E8",
		Title:   "cross-rotation linkability (k=5, tolerance 1 km^2)",
		Columns: []string{"mixing", "rotations", "tracking mean", "tracking p95", "unlinked@0.5 %", "+haunt p95"},
		Notes:   "likelihood = max Link() between old- and new-pseudonym requests of the same user; +haunt adds the recurring-trace profiler of §5.2",
	}
	tracker := link.Tracking{MaxSpeed: 17, HalfLife: 900}
	for _, mode := range []struct {
		name     string
		onDemand mixzone.OnDemand
	}{
		{"bare rotation", mixzone.OnDemand{Quiet: 1, FallbackRadius: 1,
			Divergence: mixzone.Divergence{MinAngle: 1e-9}}},
		{"on-demand zone (15 min quiet)", mixzone.OnDemand{Quiet: 900, FallbackRadius: 800,
			Divergence: mixzone.Divergence{MinAngle: 0.3}}},
	} {
		cfg := DefaultScenario()
		cfg.Mobility.Days = 7
		cfg.Policy = ts.Policy{K: 5}
		cfg.Tolerance = generalize.Tolerance{MaxWidth: 1000, MaxHeight: 1000, MaxDuration: 900}
		cfg.OnDemand = mode.onDemand
		res := Run(cfg)

		// Forwarded requests per user in time order; consecutive
		// pseudonyms delimit rotations.
		byUser := map[phl.UserID][]*ts.Decision{}
		for i := range res.Decisions {
			d := &res.Decisions[i]
			if d.Forwarded && d.Request != nil {
				byUser[res.Requests[i].User] = append(byUser[res.Requests[i].User], d)
			}
		}
		// The haunt profiler sees the whole SP log.
		haunt := link.NewHaunt(res.Provider.Requests(), 750, 7200, 2)
		combined := link.Max{tracker, haunt}

		likelihoods := &metrics.Summary{}
		hauntLikelihoods := &metrics.Summary{}
		unlinked := 0
		for _, decs := range byUser {
			for i := 1; i < len(decs); i++ {
				if decs[i].Request.Pseudonym == decs[i-1].Request.Pseudonym {
					continue
				}
				// Rotation boundary: compare up to 4 requests on each side.
				lo := i - 4
				if lo < 0 {
					lo = 0
				}
				hi := i + 4
				if hi > len(decs) {
					hi = len(decs)
				}
				var b, a []*ts.Decision
				for _, d := range decs[lo:i] {
					if d.Request.Pseudonym == decs[i-1].Request.Pseudonym {
						b = append(b, d)
					}
				}
				for _, d := range decs[i:hi] {
					if d.Request.Pseudonym == decs[i].Request.Pseudonym {
						a = append(a, d)
					}
				}
				l := link.MaxPairLikelihood(requestsOf(b), requestsOf(a), tracker)
				likelihoods.Add(l)
				hauntLikelihoods.Add(link.MaxPairLikelihood(requestsOf(b), requestsOf(a), combined))
				if l < 0.5 {
					unlinked++
				}
			}
		}
		pct := 0.0
		if likelihoods.N() > 0 {
			pct = 100 * float64(unlinked) / float64(likelihoods.N())
		}
		t.AddRow(mode.name,
			res.Server.Counters.Get("unlinkings"),
			likelihoods.Mean(),
			likelihoods.Quantile(0.95),
			pct,
			hauntLikelihoods.Quantile(0.95))
	}
	return t
}

func requestsOf(decs []*ts.Decision) []*wire.Request {
	out := make([]*wire.Request, len(decs))
	for i, d := range decs {
		out[i] = d.Request
	}
	return out
}

// E9 measures the continuous LBQID monitoring cost: offers per second
// through matchers as the number of patterns per user grows.
func E9() *Table {
	t := &Table{
		ID:      "E9",
		Title:   "LBQID monitoring throughput",
		Columns: []string{"patterns/user", "offers/sec (millions)"},
	}
	def := `
lbqid "p%d" {
    element area [%d,%d]x[0,200] time [06:30,09:00]
    element area [%d,%d]x[0,200] time [15:30,19:00]
    recurrence 3.Weekdays * 2.Weeks
}`
	for _, n := range []int{1, 4, 16, 32} {
		var matchers []*lbqid.Matcher
		for i := 0; i < n; i++ {
			q, err := lbqid.ParseOne(fmt.Sprintf(def, i, i*300, i*300+200, i*300+2000, i*300+2200))
			if err != nil {
				panic(err)
			}
			matchers = append(matchers, lbqid.NewMatcher(q))
		}
		rng := rand.New(rand.NewSource(3))
		const offers = 20000
		start := time.Now()
		for i := 0; i < offers; i++ {
			p := geo.STPoint{
				P: geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 200},
				T: int64(i) * 60,
			}
			for _, m := range matchers {
				m.Offer(lbqid.RequestID(i), p)
			}
		}
		elapsed := time.Since(start).Seconds()
		t.AddRow(n, float64(offers*n)/elapsed/1e6)
	}
	return t
}

// E10 is the index ablation on both query primitives.
func E10() *Table {
	t := &Table{
		ID:      "E10",
		Title:   "index ablation at n=50k samples (µs/op)",
		Columns: []string{"index", "UsersInBox", "KNearestUsers(k=5)"},
	}
	const n = 50000
	m := geo.STMetric{TimeScale: 1}
	for _, entry := range []struct {
		name string
		idx  stindex.Index
	}{
		{"brute", stindex.NewBrute()},
		{"grid", stindex.NewGrid(500, 1800)},
		{"kdtree", stindex.NewKDTree()},
		{"rtree", stindex.NewRTree()},
	} {
		randomIndex(entry.idx, n, 1000, 11)
		rng := rand.New(rand.NewSource(5))
		const iters = 50
		boxStart := time.Now()
		for i := 0; i < iters; i++ {
			c := geo.Point{X: rng.Float64() * 8000, Y: rng.Float64() * 8000}
			ct := int64(rng.Intn(14 * 24 * 3600))
			entry.idx.UsersInBox(geo.STBox{
				Area: geo.Rect{MinX: c.X - 500, MinY: c.Y - 500, MaxX: c.X + 500, MaxY: c.Y + 500},
				Time: geo.Interval{Start: ct - 1800, End: ct + 1800},
			})
		}
		boxT := float64(time.Since(boxStart).Microseconds()) / iters
		knnStart := time.Now()
		for i := 0; i < iters; i++ {
			q := geo.STPoint{
				P: geo.Point{X: rng.Float64() * 8000, Y: rng.Float64() * 8000},
				T: int64(rng.Intn(14 * 24 * 3600)),
			}
			entry.idx.KNearestUsers(q, 5, m, nil)
		}
		knnT := float64(time.Since(knnStart).Microseconds()) / iters
		t.AddRow(entry.name, boxT, knnT)
	}
	return t
}
