// Concurrent-throughput benchmark (E11 bench family): a whole-server
// request pipeline measurement at several client-goroutine counts, plus
// allocation profiles of the two hot query primitives (the E1/E2
// benchmark subjects). cmd/lbbench emits the result as BENCH_e11.json
// so successive PRs can track the performance trajectory; bench_test.go
// exposes the same workload as BenchmarkE11_ConcurrentThroughput.

package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/stindex"
	"histanon/internal/tgran"
	"histanon/internal/ts"
	"histanon/internal/wire"
)

// ThroughputClients is the number of distinct client users (each with
// its own LBQID) the throughput workload draws from; worker goroutine
// counts beyond this share users.
const ThroughputClients = 8

// NewThroughputServer builds a TS preloaded with a 60-user crowd and
// one matching commute LBQID per client user, so every benchmark
// request runs the full monitor → generalize → forward pipeline.
func NewThroughputServer(clients int) *ts.Server {
	server := ts.New(ts.Config{
		DefaultPolicy: ts.Policy{K: 5},
		Services: map[string]ts.ServiceSpec{
			"navigation": {Name: "navigation", Tolerance: generalize.Unlimited},
		},
	}, ts.OutboxFunc(func(*wire.Request) {}))
	for c := 0; c < clients; c++ {
		err := server.AddLBQIDSpec(phl.UserID(c), fmt.Sprintf(`
lbqid "commute%d" {
    element area [0,400]x[0,400] time [06:00,10:00]
    recurrence 1.Days
}`, c))
		if err != nil {
			panic(err)
		}
	}
	rng := rand.New(rand.NewSource(9))
	for u := phl.UserID(1000); u < 1060; u++ {
		for d := int64(0); d < 5; d++ {
			server.RecordLocation(u, geo.STPoint{
				P: geo.Point{X: rng.Float64() * 400, Y: rng.Float64() * 400},
				T: d*tgran.Day + 7*tgran.Hour + int64(rng.Intn(7200)),
			})
		}
	}
	return server
}

// ThroughputRequest issues the i-th benchmark request for user u: a
// point inside the user's LBQID window, so the request is monitored,
// generalized and forwarded. The timestamp is monotone in i (the day
// advances every 3600 requests) so the user's history grows by
// amortized-O(1) appends rather than O(n) mid-slice inserts.
func ThroughputRequest(s *ts.Server, u phl.UserID, i int) {
	t := int64(i/3600)*tgran.Day + 7*tgran.Hour + int64(i%3600)
	s.Request(u, geo.STPoint{P: geo.Point{X: 200, Y: 200}, T: t}, "navigation", nil)
}

// RunThroughput drives n requests through a fresh server from the given
// number of goroutines (each on its own user) and reports the wall
// time.
func RunThroughput(goroutines, n int) time.Duration {
	server := NewThroughputServer(ThroughputClients)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			per := n / goroutines
			if w < n%goroutines {
				per++
			}
			u := phl.UserID(w % ThroughputClients)
			for i := 0; i < per; i++ {
				ThroughputRequest(server, u, i)
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

// E11Throughput is one goroutine-count measurement of the whole-server
// request pipeline.
type E11Throughput struct {
	Goroutines  int     `json:"goroutines"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Speedup     float64 `json:"speedup_vs_1"`
}

// E11Alloc is the allocation profile of one hot-path primitive.
type E11Alloc struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// E11Report is the machine-readable benchmark record emitted as
// BENCH_e11.json.
type E11Report struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	Throughput []E11Throughput `json:"throughput"`
	HotPaths   []E11Alloc      `json:"hot_paths"`
}

// RunE11Bench measures server throughput at 1/4/8 goroutines and the
// allocation profile of the E1 (index KNN box query) and E2 (Algorithm 1
// first element) hot paths.
func RunE11Bench() E11Report {
	rep := E11Report{GOMAXPROCS: runtime.GOMAXPROCS(0)}

	for _, workers := range []int{1, 4, 8} {
		workers := workers
		r := testing.Benchmark(func(b *testing.B) {
			server := NewThroughputServer(ThroughputClients)
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					per := b.N / workers
					if w < b.N%workers {
						per++
					}
					u := phl.UserID(w % ThroughputClients)
					for i := 0; i < per; i++ {
						ThroughputRequest(server, u, i)
					}
				}(w)
			}
			wg.Wait()
		})
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		rep.Throughput = append(rep.Throughput, E11Throughput{
			Goroutines:  workers,
			OpsPerSec:   1e9 / nsPerOp,
			NsPerOp:     nsPerOp,
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	base := rep.Throughput[0].OpsPerSec
	for i := range rep.Throughput {
		rep.Throughput[i].Speedup = rep.Throughput[i].OpsPerSec / base
	}

	// E1 hot path: Algorithm 1 line-5 query against the grid.
	grid := stindex.NewGrid(500, 1800)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		grid.Insert(phl.UserID(rng.Intn(200)), geo.STPoint{
			P: geo.Point{X: rng.Float64() * 8000, Y: rng.Float64() * 8000},
			T: int64(rng.Intn(14 * 24 * 3600)),
		})
	}
	m := geo.STMetric{TimeScale: 1}
	e1 := testing.Benchmark(func(b *testing.B) {
		qrng := rand.New(rand.NewSource(7))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := geo.STPoint{
				P: geo.Point{X: qrng.Float64() * 8000, Y: qrng.Float64() * 8000},
				T: int64(qrng.Intn(14 * 24 * 3600)),
			}
			stindex.SmallestEnclosingBox(grid, q, 10, m, nil)
		}
	})
	rep.HotPaths = append(rep.HotPaths, allocStats("E1/grid-knn-box/n=10000/k=10", e1))

	// E2 hot path: the generalizer's first-element branch over the same
	// grid plus a matching store.
	gen, trace := throughputGeneralizer()
	e2 := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := trace[i%len(trace)]
			if _, ok := gen.FirstElement(q, 0, 5, generalize.Unlimited); !ok {
				b.Fatal("generalization failed")
			}
		}
	})
	rep.HotPaths = append(rep.HotPaths, allocStats("E2/first-element/k=5", e2))
	return rep
}

func allocStats(name string, r testing.BenchmarkResult) E11Alloc {
	return E11Alloc{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// throughputGeneralizer builds a generalizer over a random crowd and a
// query trace inside it.
func throughputGeneralizer() (*generalize.Generalizer, []geo.STPoint) {
	store := phl.NewStore()
	idx := stindex.NewGrid(500, 1800)
	rng := rand.New(rand.NewSource(31))
	for u := phl.UserID(1); u <= 150; u++ {
		for i := 0; i < 40; i++ {
			p := geo.STPoint{
				P: geo.Point{X: rng.Float64() * 4000, Y: rng.Float64() * 4000},
				T: int64(rng.Intn(5 * 24 * 3600)),
			}
			store.Record(u, p)
			idx.Insert(u, p)
		}
	}
	var trace []geo.STPoint
	for i := 0; i < 64; i++ {
		trace = append(trace, geo.STPoint{
			P: geo.Point{X: rng.Float64() * 4000, Y: rng.Float64() * 4000},
			T: int64(rng.Intn(5 * 24 * 3600)),
		})
	}
	return &generalize.Generalizer{Index: idx, Store: store, Metric: geo.STMetric{TimeScale: 1}}, trace
}

// WriteJSON writes the report, indented, to w.
func (r E11Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
