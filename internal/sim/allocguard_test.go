// Allocation-budget guard for the request hot path under always-on
// tracing: the production observability configuration (1/1000 head
// sampling with the slow-request tail rule armed) must not add a single
// allocation over the tracing-off pipeline. The CI allocation-budget
// step runs this test without the race detector, where the counts are
// exact.

package sim

import (
	"testing"
	"time"

	"histanon/internal/phl"
)

// tailTracingAllocBudget is the per-request allocation ceiling with
// tail tracing on. The untraced pipeline itself allocates ~10 per
// request (history append, witness sets, delivery fan-out); the span
// collect-and-discard cycle must stay inside the slack.
const tailTracingAllocBudget = 12

func TestTailTracingAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	server := NewThroughputServer(ThroughputClients)
	server.Obs.Tracer.SetSampleRate(0.001)
	server.Obs.Tracer.SetTailSlow(time.Millisecond)

	// Warm the span/timings pools, the per-user history slabs and the
	// matcher state before counting.
	i := 0
	for ; i < 5000; i++ {
		ThroughputRequest(server, phl.UserID(0), i)
	}
	allocs := testing.AllocsPerRun(3000, func() {
		ThroughputRequest(server, phl.UserID(0), i)
		i++
	})
	if allocs > tailTracingAllocBudget {
		t.Fatalf("request with tail tracing allocates %.1f/op, budget %d",
			allocs, tailTracingAllocBudget)
	}
}
