package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"histanon/internal/httpapi"
	"histanon/internal/mobility"
)

// TestCompSmoke runs the whole -compbench pipeline at toy sizes: every
// scenario × every approach must produce a frontier cell with sane
// invariants, the streaming rows must cover all scenarios plus one
// ingest row, and the JSON record must round-trip losslessly (the
// byte-identical-regeneration guarantee rides on that).
func TestCompSmoke(t *testing.T) {
	o := CompBenchOptions{
		Seed: 1, K: 3,
		CompAgents: 120, CompDays: 1,
		StreamAgents: 400, Workers: 3,
		IngestScenario:  "rural",
		AttackUsers:     60,
		AttackBoxes:     4,
		MeasureRequests: 300,
	}
	rep := RunCompBench(o)

	if want := len(mobility.Scenarios()) + 1; len(rep.StreamRows) != want {
		t.Fatalf("stream rows: got %d, want %d", len(rep.StreamRows), want)
	}
	ingest := 0
	for _, r := range rep.StreamRows {
		if r.Events <= 0 || r.EventsPerSec <= 0 || r.Agents != o.StreamAgents {
			t.Fatalf("degenerate stream row %+v", r)
		}
		if _, ok := mobility.ScenarioByName(r.Scenario); !ok {
			t.Fatalf("stream row names unknown scenario %q", r.Scenario)
		}
		if r.Mode == "ingest" {
			ingest++
		}
	}
	if ingest != 1 {
		t.Fatalf("got %d ingest rows, want 1", ingest)
	}

	cells := map[string]bool{}
	for _, r := range rep.CompRows {
		cells[r.Scenario+"/"+r.Approach] = true
		if r.Requests <= 0 {
			t.Fatalf("%s/%s: no requests in workload", r.Scenario, r.Approach)
		}
		if sum := r.ForwardedPct + r.SuppressedPct; sum < 99.9 || sum > 100.1 {
			t.Fatalf("%s/%s: fwd+suppressed = %g", r.Scenario, r.Approach, sum)
		}
		if r.ForwardedPct > 0 && r.KP50 < 1 {
			t.Fatalf("%s/%s: forwarded requests but achieved-k p50 %g < 1",
				r.Scenario, r.Approach, r.KP50)
		}
		if r.Approach != "mixzone" && r.LinkP95 >= 0 {
			t.Fatalf("%s/%s: link p95 set for a non-rotating approach", r.Scenario, r.Approach)
		}
	}
	for _, sc := range mobility.Scenarios() {
		for _, ap := range compApproaches() {
			if !cells[sc.Name+"/"+ap.name] {
				t.Fatalf("missing frontier cell %s/%s", sc.Name, ap.name)
			}
		}
	}
	rotating := false
	for _, r := range rep.CompRows {
		if r.Approach == "mixzone" && r.LinkP95 >= 0 {
			rotating = true
		}
	}
	if !rotating {
		t.Fatal("no mixzone cell measured cross-rotation linkability")
	}

	// Round-trip: the E-comp tables are rendered from the checked-in
	// record, so Write→Load must be lossless and the rendering pure.
	path := filepath.Join(t.TempDir(), "BENCH_comp.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := LoadCompBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatal("BENCH_comp.json round-trip changed the report")
	}
	var md1, md2 bytes.Buffer
	CompFrontierTable(back).Render(&md1)
	CompFrontierTable(back).Render(&md2)
	if md1.Len() == 0 || md1.String() != md2.String() {
		t.Fatal("frontier table rendering is empty or non-deterministic")
	}
	if !strings.Contains(md1.String(), "E-comp-frontier") {
		t.Fatal("frontier table lost its experiment id")
	}
}

// TestCompFalsifiability proves the harness can tell approaches apart:
// generalization weakened to k-1 must show a measurably worse
// achieved-k distribution and a higher re-identification rate than the
// honest configuration. The attack uses a single box per series so the
// re-id rate isolates per-request anonymity: a k-anonymous box can
// never shrink to one candidate, a (k-1=1)-anonymous box almost always
// does.
func TestCompFalsifiability(t *testing.T) {
	sc, ok := mobility.ScenarioByName("rush-hour")
	if !ok {
		t.Fatal("rush-hour scenario missing")
	}
	w := buildCompWorkload(sc, 300, 1, 7)
	caps := attackCaps{users: 150, boxes: 1, measure: 600}
	const k = 2
	strong := evalApproach(w, "generalize", runGeneralizeApproach(w, k), k, caps)
	weak := evalApproach(w, "generalize-weak", runGeneralizeApproach(w, k-1), k, caps)
	if strong.ForwardedPct == 0 || weak.ForwardedPct == 0 {
		t.Fatalf("degenerate run: fwd%% strong=%g weak=%g", strong.ForwardedPct, weak.ForwardedPct)
	}
	if weak.KP50 >= strong.KP50 {
		t.Errorf("achieved-k p50: weak %g !< strong %g", weak.KP50, strong.KP50)
	}
	if weak.BelowKPct <= strong.BelowKPct {
		t.Errorf("below-k%%: weak %g !> strong %g", weak.BelowKPct, strong.BelowKPct)
	}
	if weak.ReidPct <= strong.ReidPct {
		t.Errorf("re-id%%: weak %g !> strong %g", weak.ReidPct, strong.ReidPct)
	}
}

// TestStreamingAgentsBoundedMemory pins the tentpole memory guarantee:
// streaming a million-agent scenario keeps the live heap O(workers +
// layout), not O(population). A materialized run at this scale would
// hold gigabytes of events; the bound here is two orders of magnitude
// below that.
func TestStreamingAgentsBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-agent stream in -short mode")
	}
	if raceEnabled {
		t.Skip("1M-agent stream under the race detector")
	}
	sc, ok := mobility.ScenarioByName("rural")
	if !ok {
		t.Fatal("rural scenario missing")
	}
	s := mobility.NewStream(sc.Config(1_000_000, 1))
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	d := &StreamDriver{Workers: 4}
	hw := watchHeap()
	d.Generate(s)
	peakMB := hw.Close()
	if got := d.Stats.Agents.Load(); got != 1_000_000 {
		t.Fatalf("streamed %d agents, want 1000000", got)
	}
	if d.Stats.Events.Load() < 1_000_000 {
		t.Fatalf("implausibly few events: %d", d.Stats.Events.Load())
	}
	growth := peakMB - float64(before.HeapAlloc)/(1<<20)
	if growth > 128 {
		t.Fatalf("peak heap grew %.1f MB over baseline — not O(workers)", growth)
	}
	t.Logf("1M agents, %d events, peak heap growth %.1f MB",
		d.Stats.Events.Load(), growth)
}

// TestStreamDriverDeterministicAcrossWorkers: the dynamic partition
// must not change what is generated or ingested — only who does it.
func TestStreamDriverDeterministicAcrossWorkers(t *testing.T) {
	sc, _ := mobility.ScenarioByName("stadium")
	s := mobility.NewStream(sc.Config(1500, 5))
	var counts [2][2]int64
	for i, workers := range []int{1, 7} {
		d := &StreamDriver{Workers: workers}
		d.Generate(s)
		counts[i] = [2]int64{d.Stats.Events.Load(), d.Stats.Requests.Load()}
	}
	if counts[0] != counts[1] {
		t.Fatalf("generate counts differ across worker counts: %v vs %v", counts[0], counts[1])
	}

	var samples [2]int
	for i, workers := range []int{1, 3} {
		srv := newIngestServer(3)
		d := &StreamDriver{Workers: workers, BatchFrames: 64}
		d.Ingest(s, httpapi.New(srv))
		samples[i] = srv.Store().NumSamples()
		if d.Stats.Batches.Load() == 0 || d.Stats.Bytes.Load() == 0 {
			t.Fatalf("workers=%d: ingest moved no batches", workers)
		}
		if int64(samples[i]) != d.Stats.Events.Load() {
			t.Fatalf("workers=%d: server recorded %d samples for %d events",
				workers, samples[i], d.Stats.Events.Load())
		}
	}
	if samples[0] != samples[1] {
		t.Fatalf("ingested samples differ across worker counts: %d vs %d", samples[0], samples[1])
	}
}
