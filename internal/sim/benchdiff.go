// Bench-record aggregation: every BENCH_*.json file the repo checks in
// (the E11 concurrency record, the E-obs overhead record, and whatever
// later PRs add) collapses into one trajectory table, so a reviewer
// sees in one place whether a change moved the numbers. The records
// have different shapes; the parser distinguishes them by their
// distinctive top-level key rather than by filename, so renamed or new
// records keep working as long as they reuse a known shape.

package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// benchDiffRow is one line of the trajectory table, normalized across
// record shapes. Cells that a shape does not measure stay "-".
type benchDiffRow struct {
	record string
	config string
	reqs   string // req/s
	ns     string // ns/op
	allocs string // allocs/op
	bytes  string // B/op; "-" for shapes or records that predate it
	rel    string // the record's own relative column
}

// parseBenchRecord normalizes one BENCH_*.json payload. A record is an
// E11-style throughput record (key "throughput", with optional
// "hot_paths"), or an E-obs overhead record (key "rows").
func parseBenchRecord(name string, data []byte) ([]benchDiffRow, error) {
	var probe struct {
		Throughput []struct {
			Goroutines  int     `json:"goroutines"`
			OpsPerSec   float64 `json:"ops_per_sec"`
			NsPerOp     float64 `json:"ns_per_op"`
			AllocsPerOp int64   `json:"allocs_per_op"`
			Speedup     float64 `json:"speedup_vs_1"`
		} `json:"throughput"`
		HotPaths []struct {
			Name        string  `json:"name"`
			NsPerOp     float64 `json:"ns_per_op"`
			AllocsPerOp int64   `json:"allocs_per_op"`
		} `json:"hot_paths"`
		Rows        []ObsBenchRow     `json:"rows"`
		WireRows    []WireBenchRow    `json:"wire_rows"`
		StreamRows  []StreamRow       `json:"stream_rows"`
		StorageRows []StorageBenchRow `json:"storage_rows"`
		SLORows     []SLOBenchRow     `json:"slo_rows"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, err
	}
	if probe.Throughput == nil && probe.Rows == nil && probe.WireRows == nil &&
		probe.StreamRows == nil && probe.StorageRows == nil && probe.SLORows == nil {
		return nil, fmt.Errorf("unrecognized bench record shape (no %q, %q, %q, %q, %q or %q key)",
			"throughput", "rows", "wire_rows", "stream_rows", "storage_rows", "slo_rows")
	}
	var out []benchDiffRow
	for _, tp := range probe.Throughput {
		out = append(out, benchDiffRow{
			record: name,
			config: fmt.Sprintf("goroutines=%d", tp.Goroutines),
			reqs:   fmt.Sprintf("%.0f", tp.OpsPerSec),
			ns:     fmt.Sprintf("%.0f", tp.NsPerOp),
			allocs: fmt.Sprintf("%d", tp.AllocsPerOp),
			bytes:  "-",
			rel:    fmt.Sprintf("%.3fx", tp.Speedup),
		})
	}
	for _, hp := range probe.HotPaths {
		out = append(out, benchDiffRow{
			record: name,
			config: hp.Name,
			reqs:   "-",
			ns:     fmt.Sprintf("%.0f", hp.NsPerOp),
			allocs: fmt.Sprintf("%d", hp.AllocsPerOp),
			bytes:  "-",
			rel:    "-",
		})
	}
	for _, r := range probe.Rows {
		bytes := "-"
		if r.BytesPerOp > 0 {
			bytes = fmt.Sprintf("%d", r.BytesPerOp)
		}
		out = append(out, benchDiffRow{
			record: name,
			config: r.Mode,
			reqs:   fmt.Sprintf("%.0f", r.OpsPerSec),
			ns:     fmt.Sprintf("%.0f", r.NsPerOp),
			allocs: fmt.Sprintf("%d", r.AllocsPerOp),
			bytes:  bytes,
			rel:    fmt.Sprintf("%.3fx", r.VsOff),
		})
	}
	for _, r := range probe.WireRows {
		bytes := "-"
		if r.BytesPerOp > 0 {
			bytes = fmt.Sprintf("%d", r.BytesPerOp)
		}
		out = append(out, benchDiffRow{
			record: name,
			config: r.Mode,
			reqs:   fmt.Sprintf("%.0f", r.OpsPerSec),
			ns:     fmt.Sprintf("%.0f", r.NsPerOp),
			allocs: fmt.Sprintf("%d", r.AllocsPerOp),
			bytes:  bytes,
			rel:    fmt.Sprintf("%.3fx", r.VsText),
		})
	}
	// E-comp streaming rows measure whole-workload events/s, not
	// per-op costs: req/s carries the event rate, the per-op cells
	// stay "-", and "relative" carries the peak heap (the row's own
	// bounded-memory claim).
	for _, r := range probe.StreamRows {
		out = append(out, benchDiffRow{
			record: name,
			config: fmt.Sprintf("%s/%s agents=%d", r.Scenario, r.Mode, r.Agents),
			reqs:   fmt.Sprintf("%.0f", r.EventsPerSec),
			ns:     "-",
			allocs: "-",
			bytes:  "-",
			rel:    fmt.Sprintf("%.0fMB peak", r.PeakHeapMB),
		})
	}
	// E-slo rows share the overhead-record shape: "relative" carries
	// the throughput ratio against the engine-off baseline.
	for _, r := range probe.SLORows {
		bytes := "-"
		if r.BytesPerOp > 0 {
			bytes = fmt.Sprintf("%d", r.BytesPerOp)
		}
		out = append(out, benchDiffRow{
			record: name,
			config: r.Mode,
			reqs:   fmt.Sprintf("%.0f", r.OpsPerSec),
			ns:     fmt.Sprintf("%.0f", r.NsPerOp),
			allocs: fmt.Sprintf("%d", r.AllocsPerOp),
			bytes:  bytes,
			rel:    fmt.Sprintf("%.3fx", r.VsOff),
		})
	}

	// E-storage rows: ingestion modes carry per-record costs and the
	// durability price in "relative"; the recovery and cold-read rows
	// carry their own headline number there instead.
	for _, r := range probe.StorageRows {
		row := benchDiffRow{
			record: name,
			config: fmt.Sprintf("storage %s n=%d", r.Mode, r.Records),
			reqs:   "-", ns: "-", allocs: "-", bytes: "-", rel: "-",
		}
		if r.OpsPerSec > 0 {
			row.reqs = fmt.Sprintf("%.0f", r.OpsPerSec)
			row.ns = fmt.Sprintf("%.0f", r.NsPerOp)
		}
		switch {
		case r.RecoveryMs > 0:
			row.rel = fmt.Sprintf("%.0fms recovery, %.0fMB heap", r.RecoveryMs, r.HeapMB)
		case r.ColdP99Us > 0:
			row.rel = fmt.Sprintf("p99 %.0fµs", r.ColdP99Us)
		case r.VsMemory > 0:
			row.rel = fmt.Sprintf("%.3fx", r.VsMemory)
		}
		out = append(out, row)
	}
	return out, nil
}

// WriteBenchDiff reads each bench record and renders the aggregated
// trajectory table. Paths are rendered in the order given; callers
// sort for a stable table.
func WriteBenchDiff(paths []string, w io.Writer) error {
	if len(paths) == 0 {
		return fmt.Errorf("benchdiff: no bench records given")
	}
	t := &Table{
		ID:      "BENCH",
		Title:   "performance trajectory across checked-in records",
		Columns: []string{"record", "config", "req/s", "ns/op", "allocs/op", "B/op", "relative"},
		Notes: `"relative" is each record's own baseline column: ` +
			`speedup_vs_1 for throughput records, vs_off for overhead records. ` +
			`"B/op" is heap bytes per request; "-" marks shapes or records ` +
			`that predate the measurement.`,
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rows, err := parseBenchRecord(filepath.Base(path), data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, r := range rows {
			t.AddRow(r.record, r.config, r.reqs, r.ns, r.allocs, r.bytes, r.rel)
		}
	}
	return t.Render(w)
}
