package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/storage"
)

// StorageBenchRow is one measurement of the E-storage record: an
// ingestion mode (in-memory baseline, WAL off/batched/always), the
// crash-recovery row, or the cold-read latency row.
type StorageBenchRow struct {
	// Mode names the measurement ("memory", "wal=none", "wal=batch",
	// "wal=always", "recovery", "cold-read").
	Mode string `json:"mode"`
	// Records is the workload size this row was measured at (fsync-heavy
	// modes run a smaller slice of the 10⁶-update workload).
	Records int `json:"records"`
	// OpsPerSec / NsPerOp are per-record ingestion (or per-query read)
	// costs; zero for the recovery row.
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	NsPerOp   float64 `json:"ns_per_op,omitempty"`
	// VsMemory is this mode's throughput relative to the in-memory
	// baseline — the price of durability.
	VsMemory float64 `json:"vs_memory,omitempty"`
	// Fsyncs actually issued during the row (group commit amortizes).
	Fsyncs int64 `json:"fsyncs,omitempty"`
	// RecoveryMs / Replayed describe the recovery row: wall time to
	// reopen the store and WAL records replayed past the snapshot chain.
	RecoveryMs float64 `json:"recovery_ms,omitempty"`
	Replayed   int     `json:"replayed,omitempty"`
	// HeapMB is the live heap after the row (recovery row only): the
	// bounded-memory evidence for a demoted 10⁶-update PHL.
	HeapMB float64 `json:"heap_mb,omitempty"`
	// ColdP99Us is the cold-read row's p99 whole-history read latency.
	ColdP99Us float64 `json:"cold_p99_us,omitempty"`
}

// StorageBenchReport is the machine-readable E-storage record; the
// top-level "storage_rows" key is what benchdiff recognizes.
type StorageBenchReport struct {
	GOMAXPROCS  int               `json:"gomaxprocs"`
	StorageRows []StorageBenchRow `json:"storage_rows"`
}

// WriteJSON emits the report for BENCH-style records.
func (r StorageBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// storageBenchUsers sizes the synthetic population.
const storageBenchUsers = 1000

// storageBenchRecord derives record i of the deterministic workload.
func storageBenchRecord(rng *rand.Rand, t int64) (phl.UserID, geo.STPoint) {
	return phl.UserID(rng.Intn(storageBenchUsers)), geo.STPoint{
		P: geo.Point{X: rng.Float64() * 20e3, Y: rng.Float64() * 20e3},
		T: t,
	}
}

// ingestTiered drives n records into a fresh tiered store under dir
// with the given fsync policy, using workers concurrent writers (group
// commit only amortizes under concurrency, which is also the deployed
// shape). It returns the store still open — dirty, for the recovery
// row — plus the elapsed wall time.
func ingestTiered(dir string, policy storage.SyncPolicy, n, workers int, span int64) (*storage.TieredStore, time.Duration, error) {
	st, _, err := storage.Open(storage.Options{
		Dir:       dir,
		Sync:      policy,
		HotWindow: span / 20,
	})
	if err != nil {
		return nil, 0, err
	}
	var clock atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	per := n / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < per; i++ {
				t := clock.Add(1) * span / int64(n)
				u, p := storageBenchRecord(rng, t)
				st.Record(u, p)
			}
		}(w)
	}
	wg.Wait()
	return st, time.Since(start), nil
}

// RunStorageBench measures the durable tiered store against the
// in-memory baseline on a real filesystem under dir (callers pass a
// temp dir): ingestion throughput per fsync policy, crash-recovery
// time for the full n-update workload, live heap after recovery with
// most of the PHL demoted, and cold-read tail latency.
func RunStorageBench(dir string, n int) (StorageBenchReport, error) {
	rep := StorageBenchReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	if n <= 0 {
		n = 1_000_000
	}
	span := int64(n) // ~1 time unit per record

	// Baseline: the in-memory store the seed repo shipped with.
	mem := phl.NewStore()
	rng := rand.New(rand.NewSource(1))
	start := time.Now()
	for i := 0; i < n; i++ {
		u, p := storageBenchRecord(rng, int64(i)*span/int64(n))
		mem.Record(u, p)
	}
	memElapsed := time.Since(start)
	memRate := float64(n) / memElapsed.Seconds()
	rep.StorageRows = append(rep.StorageRows, StorageBenchRow{
		Mode: "memory", Records: n,
		OpsPerSec: memRate,
		NsPerOp:   float64(memElapsed.Nanoseconds()) / float64(n),
		VsMemory:  1,
	})

	// Durable ingestion. Fsync-free modes run the full workload; the
	// fsync-per-batch and fsync-per-record modes run enough of it to
	// measure steadily without minutes of wall clock on slow disks.
	ingest := []struct {
		mode    string
		policy  storage.SyncPolicy
		n       int
		workers int
	}{
		{"wal=none", storage.SyncNone, n, 1},
		{"wal=batch", storage.SyncBatch, n / 10, 16},
		{"wal=always", storage.SyncAlways, n / 100, 16},
	}
	var dirty *storage.TieredStore // the wal=none store, kept dirty for recovery
	for _, c := range ingest {
		sub := filepath.Join(dir, c.mode)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return rep, err
		}
		st, elapsed, err := ingestTiered(sub, c.policy, c.n, c.workers, span)
		if err != nil {
			return rep, err
		}
		rate := float64(c.n) / elapsed.Seconds()
		rep.StorageRows = append(rep.StorageRows, StorageBenchRow{
			Mode: c.mode, Records: c.n,
			OpsPerSec: rate,
			NsPerOp:   float64(elapsed.Nanoseconds()) / float64(c.n),
			VsMemory:  rate / memRate,
			Fsyncs:    st.Stats().WALFsyncs,
		})
		if c.mode == "wal=none" {
			dirty = st // no Close: recovery below starts from a dirty dir
		} else if err := st.Close(); err != nil {
			return rep, err
		}
	}

	// Crash recovery: reopen the full-workload store without a clean
	// shutdown — snapshot chain plus WAL tail replay.
	_ = dirty // released unclosed on purpose; the OS reclaims its fds at exit
	start = time.Now()
	st, info, err := storage.Open(storage.Options{
		Dir:       filepath.Join(dir, "wal=none"),
		HotWindow: span / 20,
	})
	if err != nil {
		return rep, err
	}
	recoverMs := float64(time.Since(start).Microseconds()) / 1e3
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep.StorageRows = append(rep.StorageRows, StorageBenchRow{
		Mode: "recovery", Records: st.NumSamples(),
		RecoveryMs: recoverMs,
		Replayed:   info.Replayed,
		HeapMB:     float64(ms.HeapAlloc) / (1 << 20),
	})

	// Cold reads: whole-history reads of random users on the recovered
	// store, where almost every sample lives in on-disk runs.
	const queries = 2000
	lat := make([]float64, 0, queries)
	qrng := rand.New(rand.NewSource(2))
	for i := 0; i < queries; i++ {
		u := phl.UserID(qrng.Intn(storageBenchUsers))
		q := time.Now()
		h := st.History(u)
		lat = append(lat, float64(time.Since(q).Nanoseconds())/1e3)
		if h.Len() == 0 {
			return rep, fmt.Errorf("storagebench: recovered store lost user %v", u)
		}
	}
	sort.Float64s(lat)
	var sum float64
	for _, v := range lat {
		sum += v
	}
	meanUs := sum / float64(len(lat))
	rep.StorageRows = append(rep.StorageRows, StorageBenchRow{
		Mode: "cold-read", Records: queries,
		OpsPerSec: 1e6 / meanUs,
		NsPerOp:   meanUs * 1e3,
		ColdP99Us: lat[len(lat)*99/100],
	})
	return rep, st.Close()
}
