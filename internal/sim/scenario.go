package sim

import (
	"histanon/internal/generalize"
	"histanon/internal/lbqid"
	"histanon/internal/metrics"
	"histanon/internal/mixzone"
	"histanon/internal/mobility"
	"histanon/internal/phl"
	"histanon/internal/sp"
	"histanon/internal/ts"
	"histanon/internal/wire"
)

// ScenarioConfig describes one end-to-end pipeline run.
type ScenarioConfig struct {
	// Mobility configures the synthetic city (zero value: a scaled-down
	// DefaultConfig suitable for experiments).
	Mobility mobility.Config
	// Policy is applied to every user.
	Policy ts.Policy
	// Tolerance constrains every service in the run.
	Tolerance generalize.Tolerance
	// TrackLBQIDs attaches the commute LBQID to every commuter agent
	// (3 weekdays × 2 weeks, the paper's Example 2).
	TrackLBQIDs bool
	// OnDemand enables on-demand mix zones during unlinking.
	OnDemand mixzone.OnDemand
	// StaticZones places static mix zones.
	StaticZones *mixzone.Registry
	// RandomizeSeed enables the §7 randomization defense in the TS.
	RandomizeSeed int64
	// WitnessSamples enables density-balanced boxes (E14 hardening).
	WitnessSamples int
}

// DefaultScenario returns a mid-size configuration used across the
// experiment suite.
func DefaultScenario() ScenarioConfig {
	mob := mobility.DefaultConfig()
	mob.Users = 120
	mob.Days = 14
	return ScenarioConfig{
		Mobility:    mob,
		Policy:      ts.Policy{K: 5},
		TrackLBQIDs: true,
		OnDemand: mixzone.OnDemand{
			Quiet:          600,
			Divergence:     mixzone.Divergence{MinAngle: 0.3},
			FallbackRadius: 800,
		},
	}
}

// ScenarioResult carries everything the experiments measure.
type ScenarioResult struct {
	World    *mobility.World
	Server   *ts.Server
	Provider *sp.Provider
	// Decisions are the per-request TS outcomes, aligned with Requests.
	Decisions []ts.Decision
	// Requests are the exact (pre-generalization) request events.
	Requests []mobility.Event
}

// Run executes the pipeline: every mobility event becomes either a
// location update or a service request to the trusted server, which
// forwards to a recording provider.
func Run(cfg ScenarioConfig) *ScenarioResult {
	if cfg.Mobility.Users == 0 {
		cfg = applyDefaults(cfg)
	}
	world := mobility.Generate(cfg.Mobility)
	provider := sp.NewProvider()
	services := map[string]ts.ServiceSpec{}
	for _, name := range []string{"navigation", "news", "weather", "poi-finder", "localized-news"} {
		services[name] = ts.ServiceSpec{Name: name, Tolerance: cfg.Tolerance}
	}
	server := ts.New(ts.Config{
		Services:       services,
		OnDemand:       cfg.OnDemand,
		StaticZones:    cfg.StaticZones,
		DefaultPolicy:  cfg.Policy,
		RandomizeSeed:  cfg.RandomizeSeed,
		WitnessSamples: cfg.WitnessSamples,
	}, provider)

	if cfg.TrackLBQIDs {
		for _, a := range world.Agents {
			if def, ok := world.CommuterLBQID(a, 3, 2); ok {
				q, err := lbqid.ParseOne(def)
				if err != nil {
					panic("sim: generated LBQID failed to parse: " + err.Error())
				}
				if err := server.AddLBQID(a.User, q); err != nil {
					panic("sim: " + err.Error())
				}
			}
		}
	}

	res := &ScenarioResult{World: world, Server: server, Provider: provider}
	for _, ev := range world.Events {
		if ev.Request {
			dec := server.Request(ev.User, ev.Point, ev.Service, nil)
			res.Decisions = append(res.Decisions, dec)
			res.Requests = append(res.Requests, ev)
		} else {
			server.RecordLocation(ev.User, ev.Point)
		}
	}
	return res
}

func applyDefaults(cfg ScenarioConfig) ScenarioConfig {
	def := DefaultScenario()
	def.Policy = cfg.Policy
	def.Tolerance = cfg.Tolerance
	def.OnDemand = cfg.OnDemand
	def.StaticZones = cfg.StaticZones
	def.TrackLBQIDs = cfg.TrackLBQIDs
	def.RandomizeSeed = cfg.RandomizeSeed
	def.WitnessSamples = cfg.WitnessSamples
	return def
}

// GeneralizedStats summarizes the resolution of the generalized,
// forwarded requests.
func (r *ScenarioResult) GeneralizedStats() (area, interval *metrics.Summary) {
	return r.Server.AreaM2, r.Server.IntervalS
}

// ExposedSeries returns, for each user whose LBQID was fully exposed,
// the request series Theorem 1 speaks about: the generalized (LBQID
// matching) requests forwarded under the exposing pseudonym. Background
// requests outside any LBQID are excluded — the paper's framework treats
// location as identifying only through the declared quasi-identifiers
// (§4), so exact contexts outside them are out of the theorem's scope.
func (r *ScenarioResult) ExposedSeries() map[phl.UserID][]*wire.Request {
	exposePseudo := map[phl.UserID]wire.Pseudonym{}
	for i, d := range r.Decisions {
		if d.QIDExposed && d.Request != nil {
			exposePseudo[r.Requests[i].User] = d.Request.Pseudonym
		}
	}
	out := map[phl.UserID][]*wire.Request{}
	for i, d := range r.Decisions {
		if !d.Generalized || d.Request == nil {
			continue
		}
		u := r.Requests[i].User
		if ps, ok := exposePseudo[u]; ok && d.Request.Pseudonym == ps {
			out[u] = append(out[u], d.Request)
		}
	}
	return out
}

// FailureRate returns hk_failures / generalized.
func (r *ScenarioResult) FailureRate() float64 {
	return metrics.Ratio(r.Server.Counters.Get("hk_failures"), r.Server.Counters.Get("generalized"))
}

// UnlinkingsPerUserDay returns pseudonym rotations normalized by user
// days.
func (r *ScenarioResult) UnlinkingsPerUserDay() float64 {
	days := int64(r.World.Config.Users) * int64(r.World.Config.Days)
	return metrics.Ratio(r.Server.Counters.Get("unlinkings"), days)
}

// tightTolerance is a deliberately service-hostile constraint used by
// tests and experiments to force generalization failures.
func tightTolerance() generalize.Tolerance {
	return generalize.Tolerance{MaxWidth: 50, MaxHeight: 50, MaxDuration: 30}
}
