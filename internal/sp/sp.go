// Package sp implements the service-provider side of the model (§3) and
// the adversary the framework defends against: an SP that records every
// request it receives and tries to re-identify users from the
// generalized location contexts.
//
// The threat model follows the paper: the SP can (a) trivially link
// requests sharing a pseudonym, (b) run multi-target tracking to link
// across pseudonyms (§5.2), and (c) consult an external observation
// source to learn who was where — modeled, worst case, as access to the
// true Personal-History-of-Locations database. Re-identification then
// means intersecting, over a linked request set, the users whose
// histories are LT-consistent with every request context (Def. 7): if a
// single user remains, the pseudonym is broken.
package sp

import (
	"sort"
	"sync"

	"histanon/internal/anon"
	"histanon/internal/geo"
	"histanon/internal/link"
	"histanon/internal/phl"
	"histanon/internal/wire"
)

// Provider is a recording service provider. It is safe for concurrent
// use and implements the trusted server's Outbox.
type Provider struct {
	mu    sync.Mutex
	reqs  []*wire.Request
	logic map[string]Logic
	ret   func(*wire.Response)
}

// NewProvider returns an empty provider.
func NewProvider() *Provider { return &Provider{} }

// Deliver records a request (Outbox implementation) and, when response
// logic is configured for the service, computes and returns the answer
// through the trusted server.
func (p *Provider) Deliver(req *wire.Request) {
	p.mu.Lock()
	p.reqs = append(p.reqs, req)
	logic := p.logic[req.Service]
	ret := p.ret
	p.mu.Unlock()
	if logic == nil || ret == nil {
		return
	}
	ret(&wire.Response{ID: req.ID, Service: req.Service, Payload: logic.Answer(req)})
}

// Requests returns all recorded requests in arrival order.
func (p *Provider) Requests() []*wire.Request {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*wire.Request, len(p.reqs))
	copy(out, p.reqs)
	return out
}

// ByPseudonym groups the recorded requests by pseudonym.
func (p *Provider) ByPseudonym() map[wire.Pseudonym][]*wire.Request {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[wire.Pseudonym][]*wire.Request)
	for _, r := range p.reqs {
		out[r.Pseudonym] = append(out[r.Pseudonym], r)
	}
	return out
}

// Attacker runs re-identification over a provider's log.
type Attacker struct {
	// Knowledge is the external observation source (worst case: the full
	// PHL database).
	Knowledge phl.Storer
	// Linker links requests across pseudonyms; nil means
	// pseudonym-equality only.
	Linker link.Func
	// Theta is the linkability threshold used to form linked groups.
	Theta float64
}

// GroupReport is the attack outcome for one linked request group.
type GroupReport struct {
	// Pseudonyms seen in the group (more than one when tracking linked
	// across a pseudonym change).
	Pseudonyms []wire.Pseudonym
	// Requests is the group size.
	Requests int
	// Candidates are the users whose histories are LT-consistent with
	// every request context in the group — the attacker's anonymity set.
	Candidates []phl.UserID
	// Identified is true when exactly one candidate remains.
	Identified bool
}

// Report aggregates an attack over all groups.
type Report struct {
	Groups []GroupReport
}

// IdentifiedGroups counts the groups pinned to a single candidate.
func (r Report) IdentifiedGroups() int {
	n := 0
	for _, g := range r.Groups {
		if g.Identified {
			n++
		}
	}
	return n
}

// MinAnonymity returns the smallest candidate-set size over all groups
// (0 when a group has no candidates, which signals an inconsistent log).
func (r Report) MinAnonymity() int {
	min := -1
	for _, g := range r.Groups {
		if min < 0 || len(g.Candidates) < min {
			min = len(g.Candidates)
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// MeanAnonymity returns the mean candidate-set size over groups.
func (r Report) MeanAnonymity() float64 {
	if len(r.Groups) == 0 {
		return 0
	}
	sum := 0
	for _, g := range r.Groups {
		sum += len(g.Candidates)
	}
	return float64(sum) / float64(len(r.Groups))
}

// CandidateUsers returns the users LT-consistent with every request in
// the set — the attacker's anonymity set for that linked series.
func (a *Attacker) CandidateUsers(reqs []*wire.Request) []phl.UserID {
	boxes := contexts(reqs)
	return anon.HistoricalAnonymitySet(a.Knowledge, boxes)
}

// Attack groups the provider's log and attacks each group. Grouping uses
// the configured linker at threshold Theta; with a nil linker, groups
// are exactly the pseudonyms.
func (a *Attacker) Attack(p *Provider) Report {
	reqs := p.Requests()
	var groups [][]*wire.Request
	if a.Linker == nil {
		by := map[wire.Pseudonym][]*wire.Request{}
		var order []wire.Pseudonym
		for _, r := range reqs {
			if _, ok := by[r.Pseudonym]; !ok {
				order = append(order, r.Pseudonym)
			}
			by[r.Pseudonym] = append(by[r.Pseudonym], r)
		}
		for _, ps := range order {
			groups = append(groups, by[ps])
		}
	} else {
		groups = link.Components(reqs, a.Linker, a.Theta)
	}

	var rep Report
	for _, g := range groups {
		cands := a.CandidateUsers(g)
		rep.Groups = append(rep.Groups, GroupReport{
			Pseudonyms: pseudonymsOf(g),
			Requests:   len(g),
			Candidates: cands,
			Identified: len(cands) == 1,
		})
	}
	return rep
}

// AttackSeries attacks one already-linked request series and returns its
// report.
func (a *Attacker) AttackSeries(reqs []*wire.Request) GroupReport {
	cands := a.CandidateUsers(reqs)
	return GroupReport{
		Pseudonyms: pseudonymsOf(reqs),
		Requests:   len(reqs),
		Candidates: cands,
		Identified: len(cands) == 1,
	}
}

func contexts(reqs []*wire.Request) []geo.STBox {
	boxes := make([]geo.STBox, 0, len(reqs))
	for _, r := range reqs {
		boxes = append(boxes, r.Context)
	}
	return boxes
}

func pseudonymsOf(reqs []*wire.Request) []wire.Pseudonym {
	seen := map[wire.Pseudonym]bool{}
	var out []wire.Pseudonym
	for _, r := range reqs {
		if !seen[r.Pseudonym] {
			seen[r.Pseudonym] = true
			out = append(out, r.Pseudonym)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Logic computes a service's answer from the generalized request it
// received — the only view of the user's position an SP ever has.
type Logic interface {
	Answer(req *wire.Request) map[string]string
}

// LogicFunc adapts a function to the Logic interface.
type LogicFunc func(req *wire.Request) map[string]string

// Answer implements Logic.
func (f LogicFunc) Answer(req *wire.Request) map[string]string { return f(req) }

// Respond configures the provider to answer requests: logic per service
// name, and the return channel to the trusted server (normally
// (*ts.Server).DeliverResponse). Requests for services without logic
// are recorded but not answered.
func (p *Provider) Respond(logic map[string]Logic, ret func(*wire.Response)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.logic = logic
	p.ret = ret
}
