package sp

import (
	"math"
	"sort"

	"histanon/internal/phl"
	"histanon/internal/wire"
)

// WeightedReport refines the binary candidate set with a posterior: the
// paper's §5.1 assumes "a very low probability that all the individuals
// in the anonymity set will actually make exactly the same request",
// i.e. that membership of the set is what matters. A sharper attacker
// weights candidates — a user with many samples inside every context is
// a likelier issuer than one who barely grazes each box. The weighted
// attack quantifies how much that sharpening buys: if the posterior is
// near uniform, nominal k is honest; if it is skewed, the *effective*
// anonymity (entropy) is lower than k suggests.
type WeightedReport struct {
	// Candidates and Posterior are aligned: Posterior[i] is the
	// normalized weight of Candidates[i]. Sorted by descending weight.
	Candidates []phl.UserID
	Posterior  []float64
	// Entropy is the Shannon entropy (bits) of the posterior.
	Entropy float64
	// EffectiveK is 2^Entropy — the size of a uniform set with the same
	// uncertainty ("effective anonymity set size").
	EffectiveK float64
	// TopConfidence is the largest posterior mass: the attacker's best
	// single guess.
	TopConfidence float64
}

// WeightedAttack computes the per-candidate posterior over a linked
// request series. Each candidate's weight is the product over contexts
// of its in-box sample count normalized by total in-box samples
// (Laplace-smoothed), i.e. a naive-Bayes issuer model with the true
// location database as likelihood source.
func (a *Attacker) WeightedAttack(reqs []*wire.Request) WeightedReport {
	boxes := contexts(reqs)
	cands := a.CandidateUsers(reqs)
	if len(cands) == 0 {
		return WeightedReport{}
	}
	logw := make([]float64, len(cands))
	for _, b := range boxes {
		counts := make([]float64, len(cands))
		total := 0.0
		for i, u := range cands {
			c := float64(len(a.Knowledge.History(u).In(b))) + 1 // smoothing
			counts[i] = c
			total += c
		}
		for i := range cands {
			logw[i] += math.Log(counts[i] / total)
		}
	}
	// Normalize in log space.
	maxLog := math.Inf(-1)
	for _, lw := range logw {
		if lw > maxLog {
			maxLog = lw
		}
	}
	weights := make([]float64, len(cands))
	sum := 0.0
	for i, lw := range logw {
		weights[i] = math.Exp(lw - maxLog)
		sum += weights[i]
	}
	rep := WeightedReport{
		Candidates: append([]phl.UserID(nil), cands...),
		Posterior:  weights,
	}
	for i := range rep.Posterior {
		rep.Posterior[i] /= sum
	}
	sort.Sort(&byPosterior{rep.Candidates, rep.Posterior})
	for _, p := range rep.Posterior {
		if p > 0 {
			rep.Entropy -= p * math.Log2(p)
		}
	}
	rep.EffectiveK = math.Exp2(rep.Entropy)
	rep.TopConfidence = rep.Posterior[0]
	return rep
}

type byPosterior struct {
	users []phl.UserID
	post  []float64
}

func (b *byPosterior) Len() int           { return len(b.users) }
func (b *byPosterior) Less(i, j int) bool { return b.post[i] > b.post[j] }
func (b *byPosterior) Swap(i, j int) {
	b.users[i], b.users[j] = b.users[j], b.users[i]
	b.post[i], b.post[j] = b.post[j], b.post[i]
}
