package sp

import (
	"sync"
	"testing"

	"histanon/internal/geo"
	"histanon/internal/link"
	"histanon/internal/phl"
	"histanon/internal/wire"
)

func pt(x, y float64, t int64) geo.STPoint {
	return geo.STPoint{P: geo.Point{X: x, Y: y}, T: t}
}

func reqAt(id int64, pseudo string, box geo.STBox) *wire.Request {
	return &wire.Request{ID: wire.MsgID(id), Pseudonym: wire.Pseudonym(pseudo), Context: box}
}

func box(x1, y1, x2, y2 float64, t1, t2 int64) geo.STBox {
	return geo.STBox{
		Area: geo.Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2},
		Time: geo.Interval{Start: t1, End: t2},
	}
}

func TestProviderRecords(t *testing.T) {
	p := NewProvider()
	p.Deliver(reqAt(1, "a", box(0, 0, 1, 1, 0, 1)))
	p.Deliver(reqAt(2, "b", box(0, 0, 1, 1, 0, 1)))
	p.Deliver(reqAt(3, "a", box(0, 0, 1, 1, 0, 1)))
	if got := p.Requests(); len(got) != 3 || got[0].ID != 1 {
		t.Fatalf("Requests=%v", got)
	}
	by := p.ByPseudonym()
	if len(by["a"]) != 2 || len(by["b"]) != 1 {
		t.Fatalf("ByPseudonym=%v", by)
	}
}

func TestProviderConcurrent(t *testing.T) {
	p := NewProvider()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.Deliver(reqAt(int64(g*1000+i), "x", box(0, 0, 1, 1, 0, 1)))
			}
		}(g)
	}
	wg.Wait()
	if len(p.Requests()) != 4000 {
		t.Fatalf("recorded %d", len(p.Requests()))
	}
}

// knowledge builds a PHL store: user 1 commutes home→office, user 2
// shares only the home area, user 3 is elsewhere.
func knowledge() *phl.Store {
	s := phl.NewStore()
	s.Record(1, pt(10, 10, 100))
	s.Record(1, pt(500, 500, 200))
	s.Record(2, pt(12, 12, 100))
	s.Record(3, pt(900, 900, 100))
	return s
}

func TestCandidateUsers(t *testing.T) {
	a := &Attacker{Knowledge: knowledge()}
	home := reqAt(1, "p", box(0, 0, 20, 20, 90, 110))
	office := reqAt(2, "p", box(490, 490, 510, 510, 190, 210))
	got := a.CandidateUsers([]*wire.Request{home})
	if len(got) != 2 {
		t.Fatalf("home candidates=%v", got)
	}
	got = a.CandidateUsers([]*wire.Request{home, office})
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("series candidates=%v", got)
	}
}

func TestAttackByPseudonym(t *testing.T) {
	p := NewProvider()
	// Pseudonym "x": the full commute — identifies user 1.
	p.Deliver(reqAt(1, "x", box(0, 0, 20, 20, 90, 110)))
	p.Deliver(reqAt(2, "x", box(490, 490, 510, 510, 190, 210)))
	// Pseudonym "y": home only — ambiguous between users 1 and 2.
	p.Deliver(reqAt(3, "y", box(0, 0, 20, 20, 90, 110)))

	a := &Attacker{Knowledge: knowledge()}
	rep := a.Attack(p)
	if len(rep.Groups) != 2 {
		t.Fatalf("groups=%d", len(rep.Groups))
	}
	if rep.IdentifiedGroups() != 1 {
		t.Fatalf("identified=%d", rep.IdentifiedGroups())
	}
	if rep.MinAnonymity() != 1 {
		t.Fatalf("min anonymity=%d", rep.MinAnonymity())
	}
	if got := rep.MeanAnonymity(); got != 1.5 {
		t.Fatalf("mean anonymity=%g", got)
	}
	for _, g := range rep.Groups {
		if g.Identified && (len(g.Candidates) != 1 || g.Candidates[0] != 1) {
			t.Fatalf("wrong identification: %+v", g)
		}
	}
}

func TestAttackWithTrackingLinker(t *testing.T) {
	// A pseudonym change without spatial mixing: tracking re-links the
	// two pseudonyms into one group, and the joint series identifies the
	// user even though each half alone would not.
	store := phl.NewStore()
	store.Record(1, pt(0, 0, 0))
	store.Record(1, pt(100, 0, 50))
	store.Record(2, pt(5, 5, 0)) // shares the first area only
	store.Record(2, pt(900, 900, 50))

	p := NewProvider()
	p.Deliver(reqAt(1, "old", box(-10, -10, 10, 10, 0, 5)))
	p.Deliver(reqAt(2, "new", box(90, -10, 110, 10, 45, 55)))

	pseudoOnly := &Attacker{Knowledge: store}
	rep := pseudoOnly.Attack(p)
	if rep.IdentifiedGroups() != 1 {
		// The second box alone pins user 1 too; the point is the linker
		// below must not do worse.
		t.Logf("pseudonym-only identified=%d", rep.IdentifiedGroups())
	}

	tracker := &Attacker{
		Knowledge: store,
		Linker:    link.Max{link.Pseudonym{}, link.Tracking{MaxSpeed: 10, HalfLife: 1e6}},
		Theta:     0.8,
	}
	rep = tracker.Attack(p)
	if len(rep.Groups) != 1 {
		t.Fatalf("tracking must join the pseudonyms: %d groups", len(rep.Groups))
	}
	g := rep.Groups[0]
	if len(g.Pseudonyms) != 2 {
		t.Fatalf("group pseudonyms=%v", g.Pseudonyms)
	}
	if !g.Identified || g.Candidates[0] != 1 {
		t.Fatalf("joint series must identify user 1: %+v", g)
	}
}

func TestAttackSeries(t *testing.T) {
	a := &Attacker{Knowledge: knowledge()}
	g := a.AttackSeries([]*wire.Request{
		reqAt(1, "p", box(0, 0, 20, 20, 90, 110)),
	})
	if g.Identified || len(g.Candidates) != 2 || g.Requests != 1 {
		t.Fatalf("series report: %+v", g)
	}
}

func TestEmptyAttack(t *testing.T) {
	a := &Attacker{Knowledge: phl.NewStore()}
	rep := a.Attack(NewProvider())
	if len(rep.Groups) != 0 || rep.IdentifiedGroups() != 0 || rep.MinAnonymity() != 0 {
		t.Fatalf("empty report wrong: %+v", rep)
	}
	if rep.MeanAnonymity() != 0 {
		t.Fatal("mean of empty report must be 0")
	}
}

func TestProviderRespond(t *testing.T) {
	p := NewProvider()
	var returned []*wire.Response
	p.Respond(map[string]Logic{
		"echo": LogicFunc(func(r *wire.Request) map[string]string {
			return map[string]string{"id": string(r.Pseudonym)}
		}),
	}, func(r *wire.Response) { returned = append(returned, r) })

	r1 := reqAt(1, "alpha", box(0, 0, 1, 1, 0, 1))
	r1.Service = "echo"
	p.Deliver(r1)
	p.Deliver(&wire.Request{ID: 2, Pseudonym: "beta", Service: "other"})
	if len(returned) != 1 {
		t.Fatalf("returned %d responses", len(returned))
	}
	if returned[0].ID != 1 || returned[0].Payload["id"] != "alpha" {
		t.Fatalf("response: %+v", returned[0])
	}
	// Both requests were still recorded for the attack log.
	if len(p.Requests()) != 2 {
		t.Fatalf("recorded %d", len(p.Requests()))
	}
}

func TestWeightedAttackSkewedPosterior(t *testing.T) {
	// User 1 has many samples inside the box; user 2 barely grazes it:
	// the posterior must favor user 1.
	store := phl.NewStore()
	for i := 0; i < 20; i++ {
		store.Record(1, pt(10, 10, int64(100+i)))
	}
	store.Record(2, pt(10, 10, 105))
	a := &Attacker{Knowledge: store}
	rep := a.WeightedAttack([]*wire.Request{reqAt(1, "p", box(0, 0, 20, 20, 90, 130))})
	if len(rep.Candidates) != 2 {
		t.Fatalf("candidates: %v", rep.Candidates)
	}
	if rep.Candidates[0] != 1 || rep.TopConfidence < 0.8 {
		t.Fatalf("skew not detected: %+v", rep)
	}
	if rep.EffectiveK >= 2 {
		t.Fatalf("effective k must be < nominal 2: %g", rep.EffectiveK)
	}
}

func TestWeightedAttackUniformPosterior(t *testing.T) {
	// Symmetric candidates: posterior uniform, effective k = nominal k.
	store := phl.NewStore()
	for u := phl.UserID(1); u <= 4; u++ {
		for i := 0; i < 5; i++ {
			store.Record(u, pt(10, 10, int64(100+i)))
		}
	}
	a := &Attacker{Knowledge: store}
	rep := a.WeightedAttack([]*wire.Request{reqAt(1, "p", box(0, 0, 20, 20, 90, 130))})
	if len(rep.Candidates) != 4 {
		t.Fatalf("candidates: %v", rep.Candidates)
	}
	if rep.EffectiveK < 3.9 || rep.EffectiveK > 4.01 {
		t.Fatalf("uniform effective k: %g", rep.EffectiveK)
	}
	if rep.TopConfidence > 0.26 {
		t.Fatalf("top confidence: %g", rep.TopConfidence)
	}
	// Posterior sums to 1.
	sum := 0.0
	for _, p := range rep.Posterior {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("posterior sum: %g", sum)
	}
}

func TestWeightedAttackEmpty(t *testing.T) {
	a := &Attacker{Knowledge: phl.NewStore()}
	rep := a.WeightedAttack([]*wire.Request{reqAt(1, "p", box(0, 0, 1, 1, 0, 1))})
	if len(rep.Candidates) != 0 || rep.EffectiveK != 0 {
		t.Fatalf("empty report: %+v", rep)
	}
}

func TestWeightedAttackMultiBoxSeries(t *testing.T) {
	// Two boxes: user 1 dense in both; user 2 dense in the first only.
	store := phl.NewStore()
	for i := 0; i < 10; i++ {
		store.Record(1, pt(10, 10, int64(100+i)))
		store.Record(1, pt(500, 500, int64(200+i)))
		store.Record(2, pt(10, 10, int64(100+i)))
	}
	store.Record(2, pt(500, 500, 205))
	a := &Attacker{Knowledge: store}
	rep := a.WeightedAttack([]*wire.Request{
		reqAt(1, "p", box(0, 0, 20, 20, 90, 130)),
		reqAt(2, "p", box(490, 490, 510, 510, 190, 230)),
	})
	if rep.Candidates[0] != 1 {
		t.Fatalf("user 1 must lead: %+v", rep)
	}
	if rep.TopConfidence < 0.7 {
		t.Fatalf("series evidence must accumulate: %g", rep.TopConfidence)
	}
}
