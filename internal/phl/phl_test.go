package phl

import (
	"math/rand"
	"testing"

	"histanon/internal/geo"
)

func rect(a, b, c, d float64) geo.Rect {
	return geo.Rect{MinX: a, MinY: b, MaxX: c, MaxY: d}
}

func iv(a, b int64) geo.Interval { return geo.Interval{Start: a, End: b} }

func pt(x, y float64, t int64) geo.STPoint {
	return geo.STPoint{P: geo.Point{X: x, Y: y}, T: t}
}

func TestHistoryAppendKeepsOrder(t *testing.T) {
	var h History
	h.Append(pt(0, 0, 10))
	h.Append(pt(1, 1, 30))
	h.Append(pt(2, 2, 20)) // out of order
	h.Append(pt(3, 3, 5))  // out of order, front
	if h.Len() != 4 {
		t.Fatalf("Len=%d", h.Len())
	}
	want := []int64{5, 10, 20, 30}
	for i, w := range want {
		if got := h.At(i).T; got != w {
			t.Fatalf("At(%d).T=%d want %d", i, got, w)
		}
	}
}

func TestHistoryAppendOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h History
	for i := 0; i < 500; i++ {
		h.Append(pt(0, 0, int64(rng.Intn(1000))))
	}
	pts := h.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].T < pts[i-1].T {
			t.Fatalf("history out of order at %d: %d < %d", i, pts[i].T, pts[i-1].T)
		}
	}
}

func TestHistoryIn(t *testing.T) {
	var h History
	h.Append(pt(0, 0, 0))
	h.Append(pt(5, 5, 10))
	h.Append(pt(10, 10, 20))
	h.Append(pt(50, 50, 15)) // inside the time window but outside the area
	box := geo.STBox{Area: rect(0, 0, 20, 20), Time: iv(5, 20)}
	got := h.In(box)
	if len(got) != 2 {
		t.Fatalf("In returned %d points: %v", len(got), got)
	}
	if !h.AnyIn(box) {
		t.Fatal("AnyIn must be true")
	}
	empty := geo.STBox{Area: rect(0, 0, 1, 1), Time: iv(100, 200)}
	if h.AnyIn(empty) {
		t.Fatal("AnyIn must be false for an empty region")
	}
}

func TestHistoryClosest(t *testing.T) {
	var h History
	h.Append(pt(0, 0, 0))
	h.Append(pt(100, 0, 100))
	h.Append(pt(200, 0, 200))
	m := geo.STMetric{TimeScale: 1}
	best, d, ok := h.Closest(pt(95, 0, 95), m)
	if !ok || best.T != 100 {
		t.Fatalf("Closest=%v d=%g ok=%v", best, d, ok)
	}
	// A spatially distant but temporally near point must lose to a
	// temporally distant but spatially near one when scales say so.
	var h2 History
	h2.Append(pt(0, 0, 1000)) // far in time
	h2.Append(pt(5000, 0, 0)) // far in space
	best, _, _ = h2.Closest(pt(0, 0, 0), m)
	if best.T != 1000 {
		t.Fatalf("expected the 1000s-away point, got %v", best)
	}
}

func TestHistoryClosestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := geo.STMetric{TimeScale: 2.5}
	var h History
	for i := 0; i < 400; i++ {
		h.Append(pt(rng.Float64()*1000, rng.Float64()*1000, int64(rng.Intn(5000))))
	}
	for trial := 0; trial < 200; trial++ {
		q := pt(rng.Float64()*1000, rng.Float64()*1000, int64(rng.Intn(5000)))
		got, gd, ok := h.Closest(q, m)
		if !ok {
			t.Fatal("unexpected empty history")
		}
		bestD := -1.0
		for _, p := range h.Points() {
			if d := m.Dist(p, q); bestD < 0 || d < bestD {
				bestD = d
			}
		}
		if gd != bestD {
			t.Fatalf("Closest distance %g != brute force %g (point %v)", gd, bestD, got)
		}
	}
}

func TestHistoryClosestEmpty(t *testing.T) {
	var h History
	if _, _, ok := h.Closest(pt(0, 0, 0), geo.STMetric{}); ok {
		t.Fatal("empty history must report ok=false")
	}
}

func TestLTConsistent(t *testing.T) {
	var h History
	h.Append(pt(10, 10, 100))
	h.Append(pt(20, 20, 200))
	boxes := []geo.STBox{
		{Area: rect(0, 0, 15, 15), Time: iv(90, 110)},
		{Area: rect(15, 15, 25, 25), Time: iv(190, 210)},
	}
	if !h.LTConsistent(boxes) {
		t.Fatal("history must be LT-consistent")
	}
	boxes = append(boxes, geo.STBox{Area: rect(0, 0, 100, 100), Time: iv(300, 400)})
	if h.LTConsistent(boxes) {
		t.Fatal("missing the third box: must be inconsistent")
	}
	if !h.LTConsistent(nil) {
		t.Fatal("every history is consistent with no requests")
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	s.Record(1, pt(0, 0, 0))
	s.Record(2, pt(10, 10, 0))
	s.Record(1, pt(1, 1, 10))
	if s.NumUsers() != 2 || s.NumSamples() != 3 {
		t.Fatalf("NumUsers=%d NumSamples=%d", s.NumUsers(), s.NumSamples())
	}
	if got := s.Users(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Users=%v", got)
	}
	if h := s.History(1); h == nil || h.Len() != 2 {
		t.Fatal("History(1) wrong")
	}
	if s.History(99) != nil {
		t.Fatal("unknown user must have nil history")
	}
}

func TestStoreUsersIn(t *testing.T) {
	s := NewStore()
	s.Record(1, pt(0, 0, 0))
	s.Record(2, pt(100, 100, 0))
	s.Record(3, pt(5, 5, 50))
	box := geo.STBox{Area: rect(-10, -10, 10, 10), Time: iv(0, 100)}
	got := s.UsersIn(box)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("UsersIn=%v", got)
	}
	if s.CountUsersIn(box) != 2 {
		t.Fatalf("CountUsersIn=%d", s.CountUsersIn(box))
	}
}

func TestStoreLTConsistentUsers(t *testing.T) {
	s := NewStore()
	// Users 1 and 2 share a morning area; only 1 visits the office.
	s.Record(1, pt(0, 0, 100))
	s.Record(1, pt(500, 500, 200))
	s.Record(2, pt(2, 2, 105))
	s.Record(3, pt(900, 900, 100))
	morning := geo.STBox{Area: rect(-5, -5, 5, 5), Time: iv(90, 110)}
	office := geo.STBox{Area: rect(495, 495, 505, 505), Time: iv(190, 210)}

	got := s.LTConsistentUsers([]geo.STBox{morning})
	if len(got) != 2 {
		t.Fatalf("morning set=%v", got)
	}
	got = s.LTConsistentUsers([]geo.STBox{morning, office})
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("morning+office set=%v", got)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			s.Record(UserID(i%7), pt(float64(i), 0, int64(i)))
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		s.NumUsers()
		s.CountUsersIn(geo.STBox{Area: rect(0, 0, 10, 10), Time: iv(0, 10)})
	}
	<-done
	if s.NumSamples() != 1000 {
		t.Fatalf("NumSamples=%d", s.NumSamples())
	}
}

func TestUserIDString(t *testing.T) {
	if got := UserID(42).String(); got != "u42" {
		t.Fatalf("String=%q", got)
	}
}

func TestClosestNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := geo.STMetric{TimeScale: 1.7}
	var h History
	for i := 0; i < 300; i++ {
		h.Append(pt(rng.Float64()*1000, rng.Float64()*1000, int64(rng.Intn(4000))))
	}
	for trial := 0; trial < 100; trial++ {
		q := pt(rng.Float64()*1000, rng.Float64()*1000, int64(rng.Intn(4000)))
		n := 1 + rng.Intn(8)
		got := h.ClosestN(q, n, m)
		if len(got) != n {
			t.Fatalf("got %d want %d", len(got), n)
		}
		// Brute force distances.
		var dists []float64
		for _, p := range h.Points() {
			dists = append(dists, m.Dist(p, q))
		}
		sortFloats(dists)
		for i, p := range got {
			if d := m.Dist(p, q); d != dists[i] {
				t.Fatalf("rank %d: %g want %g", i, d, dists[i])
			}
			if i > 0 && m.Dist(got[i-1], q) > m.Dist(p, q) {
				t.Fatal("result not ordered")
			}
		}
	}
}

func TestClosestNEdgeCases(t *testing.T) {
	var h History
	if got := h.ClosestN(pt(0, 0, 0), 3, geo.STMetric{}); got != nil {
		t.Fatal("empty history must return nil")
	}
	h.Append(pt(1, 1, 1))
	if got := h.ClosestN(pt(0, 0, 0), 0, geo.STMetric{}); got != nil {
		t.Fatal("n=0 must return nil")
	}
	if got := h.ClosestN(pt(0, 0, 0), 5, geo.STMetric{}); len(got) != 1 {
		t.Fatalf("n beyond size: %d", len(got))
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
