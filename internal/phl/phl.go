// Package phl implements the Personal History of Locations (paper
// Def. 6): the per-user sequence of location updates stored by the
// trusted server, together with the location-time consistency relation
// (Def. 7) that historical k-anonymity is defined on.
package phl

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"histanon/internal/geo"
)

// UserID identifies a real user inside the trusted server. Pseudonyms,
// which identify users toward service providers, live in the pseudonym
// package.
type UserID int64

// History is one user's Personal History of Locations: location samples
// ordered by time. A History is not safe for concurrent mutation; the
// Store serializes access.
type History struct {
	pts []geo.STPoint // sorted by T, ties kept in insertion order
}

// Len returns the number of samples.
func (h *History) Len() int { return len(h.pts) }

// Append adds a sample. Samples usually arrive in time order; an
// out-of-order sample is inserted at its sorted position.
func (h *History) Append(p geo.STPoint) {
	n := len(h.pts)
	if n == 0 || h.pts[n-1].T <= p.T {
		h.pts = append(h.pts, p)
		return
	}
	i := sort.Search(n, func(i int) bool { return h.pts[i].T > p.T })
	h.pts = append(h.pts, geo.STPoint{})
	copy(h.pts[i+1:], h.pts[i:])
	h.pts[i] = p
}

// At returns the i-th sample in time order.
func (h *History) At(i int) geo.STPoint { return h.pts[i] }

// Points returns the samples in time order. The slice is shared; callers
// must not modify it.
func (h *History) Points() []geo.STPoint { return h.pts }

// timeRange returns the index range [lo,hi) of samples with
// T in [start, end].
func (h *History) timeRange(start, end int64) (int, int) {
	lo := sort.Search(len(h.pts), func(i int) bool { return h.pts[i].T >= start })
	hi := sort.Search(len(h.pts), func(i int) bool { return h.pts[i].T > end })
	return lo, hi
}

// AnyIn reports whether some sample lies in the spatio-temporal box.
func (h *History) AnyIn(b geo.STBox) bool {
	lo, hi := h.timeRange(b.Time.Start, b.Time.End)
	for i := lo; i < hi; i++ {
		if b.Area.Contains(h.pts[i].P) {
			return true
		}
	}
	return false
}

// In returns the samples lying in the spatio-temporal box.
func (h *History) In(b geo.STBox) []geo.STPoint {
	var out []geo.STPoint
	lo, hi := h.timeRange(b.Time.Start, b.Time.End)
	for i := lo; i < hi; i++ {
		if b.Area.Contains(h.pts[i].P) {
			out = append(out, h.pts[i])
		}
	}
	return out
}

// Closest returns the sample closest to q under the metric m, and its
// distance. ok is false for an empty history.
//
// The search prunes by time: samples are time-sorted, and the time
// component alone lower-bounds the metric, so scanning outward from q.T
// can stop once the time distance exceeds the best found.
func (h *History) Closest(q geo.STPoint, m geo.STMetric) (best geo.STPoint, dist float64, ok bool) {
	n := len(h.pts)
	if n == 0 {
		return geo.STPoint{}, 0, false
	}
	mid := sort.Search(n, func(i int) bool { return h.pts[i].T >= q.T })
	dist = -1
	consider := func(p geo.STPoint) {
		if d := m.Dist(p, q); dist < 0 || d < dist {
			best, dist = p, d
		}
	}
	lo, hi := mid-1, mid
	for lo >= 0 || hi < n {
		if lo >= 0 {
			if dist >= 0 && m.Dist(geo.STPoint{P: q.P, T: h.pts[lo].T}, geo.STPoint{P: q.P, T: q.T}) > dist {
				lo = -1
			} else {
				consider(h.pts[lo])
				lo--
			}
		}
		if hi < n {
			if dist >= 0 && m.Dist(geo.STPoint{P: q.P, T: h.pts[hi].T}, geo.STPoint{P: q.P, T: q.T}) > dist {
				hi = n
			} else {
				consider(h.pts[hi])
				hi++
			}
		}
	}
	return best, dist, true
}

// LTConsistent reports whether the history is location-time-consistent
// with the given request contexts (paper Def. 7): for every box there is
// a sample whose position the area contains and whose instant the time
// interval contains.
func (h *History) LTConsistent(boxes []geo.STBox) bool {
	for _, b := range boxes {
		if !h.AnyIn(b) {
			return false
		}
	}
	return true
}

// HistoryFromPoints builds a History directly from samples that are
// already in time order (ties in arrival order). The slice is adopted,
// not copied; callers hand over ownership. It exists for storage layers
// that materialize histories from durable tiers and must reproduce the
// exact sample order an in-memory History would hold.
func HistoryFromPoints(pts []geo.STPoint) *History { return &History{pts: pts} }

// Storer is the PHL database interface the privacy layers compute over.
// *Store is the canonical in-memory implementation; the storage package
// provides a durable hot/cold tiered one. Implementations must be safe
// for concurrent use and must preserve Store's semantics exactly:
// History returns samples in time order with arrival-order ties, and the
// user-iteration methods enumerate users in first-seen order.
type Storer interface {
	// Record appends a location sample for the user.
	Record(u UserID, p geo.STPoint)
	// History returns the user's history (read-only), or nil when the
	// user is unknown.
	History(u UserID) *History
	// Users returns all known users in first-seen order.
	Users() []UserID
	// NumUsers returns the number of users with at least one sample.
	NumUsers() int
	// NumSamples returns the total number of samples across all users.
	NumSamples() int
	// UsersIn returns the users having at least one sample in the box,
	// in first-seen order.
	UsersIn(b geo.STBox) []UserID
	// CountUsersIn returns how many users have a sample in the box.
	CountUsersIn(b geo.STBox) int
	// LTConsistentUsers returns the users whose history is LT-consistent
	// with every one of the given boxes, in first-seen order.
	LTConsistentUsers(boxes []geo.STBox) []UserID
}

// Store is the trusted server's PHL database: one History per user.
// It is safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	users map[UserID]*History
	order []UserID // deterministic iteration order (insertion order)
	count int      // total samples across users
}

// NewStore returns an empty PHL store.
func NewStore() *Store {
	return &Store{users: make(map[UserID]*History)}
}

// Record appends a location sample for the user, creating the history on
// first use.
func (s *Store) Record(u UserID, p geo.STPoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.users[u]
	if !ok {
		h = &History{}
		s.users[u] = h
		s.order = append(s.order, u)
	}
	h.Append(p)
	s.count++
}

// History returns the user's history, or nil when the user is unknown.
// The returned History must be treated as read-only.
func (s *Store) History(u UserID) *History {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.users[u]
}

// Users returns all known users in first-seen order.
func (s *Store) Users() []UserID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]UserID, len(s.order))
	copy(out, s.order)
	return out
}

// NumUsers returns the number of users with at least one sample.
func (s *Store) NumUsers() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.order)
}

// NumSamples returns the total number of samples across all users.
func (s *Store) NumSamples() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// UsersIn returns the users having at least one sample in the box, in
// first-seen order.
func (s *Store) UsersIn(b geo.STBox) []UserID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []UserID
	for _, u := range s.order {
		if s.users[u].AnyIn(b) {
			out = append(out, u)
		}
	}
	return out
}

// CountUsersIn returns how many users have a sample in the box.
func (s *Store) CountUsersIn(b geo.STBox) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, u := range s.order {
		if s.users[u].AnyIn(b) {
			n++
		}
	}
	return n
}

// LTConsistentUsers returns the users whose history is LT-consistent
// with every one of the given boxes (paper Def. 7 applied store-wide).
// This is the anonymity-set computation behind historical k-anonymity.
func (s *Store) LTConsistentUsers(boxes []geo.STBox) []UserID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []UserID
	for _, u := range s.order {
		if s.users[u].LTConsistent(boxes) {
			out = append(out, u)
		}
	}
	return out
}

func (u UserID) String() string { return fmt.Sprintf("u%d", int64(u)) }

// ClosestN returns up to n samples closest to q under the metric m,
// ordered by increasing distance. It generalizes Closest with the same
// time-window pruning: once the pure time distance of the scan frontier
// exceeds the current n-th best, no better sample can follow.
func (h *History) ClosestN(q geo.STPoint, n int, m geo.STMetric) []geo.STPoint {
	if n <= 0 || len(h.pts) == 0 {
		return nil
	}
	mid := sort.Search(len(h.pts), func(i int) bool { return h.pts[i].T >= q.T })

	type cand struct {
		p geo.STPoint
		d float64
	}
	// Small max-heap by distance, kept as a sorted slice (n is small).
	var best []cand
	worst := func() float64 {
		if len(best) < n {
			return math.Inf(1)
		}
		return best[len(best)-1].d
	}
	consider := func(p geo.STPoint) {
		d := m.Dist(p, q)
		if d >= worst() {
			return
		}
		i := sort.Search(len(best), func(i int) bool { return best[i].d > d })
		best = append(best, cand{})
		copy(best[i+1:], best[i:])
		best[i] = cand{p, d}
		if len(best) > n {
			best = best[:n]
		}
	}
	timeDist := func(t int64) float64 {
		return m.Dist(geo.STPoint{P: q.P, T: t}, geo.STPoint{P: q.P, T: q.T})
	}
	lo, hi := mid-1, mid
	for lo >= 0 || hi < len(h.pts) {
		if lo >= 0 {
			if timeDist(h.pts[lo].T) > worst() {
				lo = -1
			} else {
				consider(h.pts[lo])
				lo--
			}
		}
		if hi < len(h.pts) {
			if timeDist(h.pts[hi].T) > worst() {
				hi = len(h.pts)
			} else {
				consider(h.pts[hi])
				hi++
			}
		}
	}
	out := make([]geo.STPoint, len(best))
	for i, c := range best {
		out[i] = c.p
	}
	return out
}
