package phl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"histanon/internal/geo"
)

// Snapshot format: a little-endian binary stream
//
//	magic "PHL1" | userCount u64
//	per user: id i64 | sampleCount u64 | samples (x f64, y f64, t i64)...
//	crc32 (IEEE) of everything before it
//
// The format is self-delimiting and checksummed so a truncated or
// corrupted snapshot is detected on restore rather than silently
// loading partial histories.
var snapshotMagic = [4]byte{'P', 'H', 'L', '1'}

// WriteSnapshot serializes the store. The store may keep serving reads
// and writes concurrently; the snapshot reflects some consistent point
// between the start and the end of the call for each user.
func (s *Store) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)

	if _, err := out.Write(snapshotMagic[:]); err != nil {
		return err
	}
	users := s.Users()
	if err := binary.Write(out, binary.LittleEndian, uint64(len(users))); err != nil {
		return err
	}
	for _, u := range users {
		h := s.History(u)
		pts := h.Points()
		if err := binary.Write(out, binary.LittleEndian, int64(u)); err != nil {
			return err
		}
		if err := binary.Write(out, binary.LittleEndian, uint64(len(pts))); err != nil {
			return err
		}
		for _, p := range pts {
			if err := binary.Write(out, binary.LittleEndian, p.P.X); err != nil {
				return err
			}
			if err := binary.Write(out, binary.LittleEndian, p.P.Y); err != nil {
				return err
			}
			if err := binary.Write(out, binary.LittleEndian, p.T); err != nil {
				return err
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSnapshot loads a snapshot written by WriteSnapshot into a fresh
// store.
func ReadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	in := io.TeeReader(br, crc)

	var magic [4]byte
	if _, err := io.ReadFull(in, magic[:]); err != nil {
		return nil, fmt.Errorf("phl: reading snapshot header: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("phl: not a PHL snapshot (magic %q)", magic[:])
	}
	var userCount uint64
	if err := binary.Read(in, binary.LittleEndian, &userCount); err != nil {
		return nil, fmt.Errorf("phl: reading user count: %w", err)
	}
	store := NewStore()
	for i := uint64(0); i < userCount; i++ {
		var id int64
		if err := binary.Read(in, binary.LittleEndian, &id); err != nil {
			return nil, fmt.Errorf("phl: reading user %d id: %w", i, err)
		}
		var n uint64
		if err := binary.Read(in, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("phl: reading user %d sample count: %w", i, err)
		}
		for j := uint64(0); j < n; j++ {
			var x, y float64
			var t int64
			if err := binary.Read(in, binary.LittleEndian, &x); err != nil {
				return nil, fmt.Errorf("phl: reading sample: %w", err)
			}
			if err := binary.Read(in, binary.LittleEndian, &y); err != nil {
				return nil, fmt.Errorf("phl: reading sample: %w", err)
			}
			if err := binary.Read(in, binary.LittleEndian, &t); err != nil {
				return nil, fmt.Errorf("phl: reading sample: %w", err)
			}
			store.Record(UserID(id), geo.STPoint{P: geo.Point{X: x, Y: y}, T: t})
		}
	}
	want := crc.Sum32() // checksum of all payload bytes read so far
	var got uint32
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("phl: reading checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("phl: snapshot checksum mismatch (want %08x, got %08x)", want, got)
	}
	return store, nil
}
