package phl

import (
	"bytes"
	"math/rand"
	"testing"
)

func snapshotStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	rng := rand.New(rand.NewSource(8))
	for u := UserID(0); u < 15; u++ {
		for i := 0; i < 40; i++ {
			s.Record(u, pt(rng.Float64()*1e4, rng.Float64()*1e4, int64(rng.Intn(1e6))))
		}
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := snapshotStore(t)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumUsers() != s.NumUsers() || got.NumSamples() != s.NumSamples() {
		t.Fatalf("restored %d users / %d samples, want %d / %d",
			got.NumUsers(), got.NumSamples(), s.NumUsers(), s.NumSamples())
	}
	for _, u := range s.Users() {
		a := s.History(u).Points()
		b := got.History(u).Points()
		if len(a) != len(b) {
			t.Fatalf("user %v: %d vs %d samples", u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("user %v sample %d: %v vs %v", u, i, a[i], b[i])
			}
		}
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := NewStore().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumUsers() != 0 {
		t.Fatalf("expected empty store, got %d users", got.NumUsers())
	}
}

func TestSnapshotDetectsTruncation(t *testing.T) {
	s := snapshotStore(t)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) / 2, len(data) - 1, 3, 10} {
		if _, err := ReadSnapshot(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	s := snapshotStore(t)
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)/2] ^= 0xff
	if _, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
		t.Error("corruption not detected")
	}
}

func TestSnapshotRejectsWrongMagic(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Fatal("wrong magic accepted")
	}
}
