package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"histanon/internal/geo"
)

// FuzzParseBinaryFrame throws arbitrary bytes at the frame splitter and
// every payload parser: header abuse, varint abuse, truncation and flag
// games must never panic or read past the declared payload, and
// anything accepted must satisfy the codec closure — re-encoding an
// accepted message reproduces a frame that parses back to the same
// message.
func FuzzParseBinaryFrame(f *testing.F) {
	req, _ := EncodeBinaryRequest(mkReq())
	f.Add(req)
	resp, _ := EncodeBinaryResponse(&Response{ID: 9, Service: "s", Payload: map[string]string{"a": "b"}})
	f.Add(resp)
	f.Add(AppendLocation(nil, LocationUpdate{User: 3, X: 1.25, Y: -2.5, T: 77}))
	call, _ := AppendServiceCall(nil, ServiceCall{User: 1, X: math.Pi, Y: 0, T: 5, Service: "svc", Traceparent: "00-x-y-01"})
	f.Add(call)
	f.Add(AppendDecision(nil, DecisionFrame{Forwarded: true, Pseudonym: "p", TraceID: "t"}))
	f.Add([]byte{Magic[0], Magic[1], BinaryVersion, byte(FrameLocation), 0xff, 0, 0, 0, 0})
	f.Add([]byte{Magic[0], Magic[1], BinaryVersion, byte(FrameRequest), 0, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, flags, payload, _, err := SplitFrame(data)
		if err != nil {
			return
		}
		switch typ {
		case FrameRequest:
			r := new(Request)
			if err := parseRequestPayload(flags, payload, requestDst{r: r, copy: true}); err != nil {
				return
			}
			frame, err := EncodeBinaryRequest(r)
			if err != nil {
				t.Fatalf("accepted request does not re-encode: %+v: %v", r, err)
			}
			again, err := ParseBinaryRequest(frame)
			if err != nil {
				t.Fatalf("re-encoded request does not parse: %v", err)
			}
			if !reflect.DeepEqual(again, r) {
				t.Fatalf("closure violated:\n got %+v\nwant %+v", again, r)
			}
			// The pooled zero-copy parse agrees with the allocating one.
			br := AcquireBinaryRequest()
			defer br.Release()
			if err := br.parsePayload(flags, payload); err != nil {
				t.Fatalf("pooled parse rejects what allocating parse accepts: %v", err)
			}
			if !reflect.DeepEqual(&br.Request, r) {
				t.Fatalf("pooled parse disagrees:\n got %+v\nwant %+v", &br.Request, r)
			}
		case FrameResponse:
			r, err := parseResponsePayload(payload)
			if err != nil {
				return
			}
			frame, err := EncodeBinaryResponse(r)
			if err != nil {
				t.Fatalf("accepted response does not re-encode: %v", err)
			}
			again, err := ParseBinaryResponse(frame)
			if err != nil || !reflect.DeepEqual(again, r) {
				t.Fatalf("response closure violated: %v", err)
			}
		case FrameLocation:
			l, err := ParseLocationPayload(flags, payload)
			if err != nil {
				return
			}
			again, err := ParseLocation(AppendLocation(nil, l))
			if err != nil || again != l {
				t.Fatalf("location closure violated: %v", err)
			}
		case FrameServiceCall:
			c, err := ParseServiceCallPayload(flags, payload)
			if err != nil {
				return
			}
			frame, err := AppendServiceCall(nil, c)
			if err != nil {
				t.Fatalf("accepted call does not re-encode: %v", err)
			}
			again, err := ParseServiceCall(frame)
			if err != nil || !reflect.DeepEqual(again, c) {
				t.Fatalf("service-call closure violated: %v", err)
			}
		case FrameDecision:
			d, err := ParseDecisionPayload(flags, payload)
			if err != nil {
				return
			}
			again, err := ParseDecision(AppendDecision(nil, d))
			if err != nil || again != d {
				t.Fatalf("decision closure violated: %v", err)
			}
		case FrameBatch:
			dec, err := NewBatchDecoder(data)
			if err != nil {
				return
			}
			for dec.Next() {
			}
			_ = dec.Err()
		}
	})
}

// FuzzBatchRoundTrip drives batching from both directions. The fuzz
// input is first read as a value script building a batch of location
// updates and service calls — decode(encode(batch)) must reproduce the
// batch exactly, and every request frame must survive
// binary→text→binary byte-identically. The raw input is then also
// decoded directly as a batch, so mutated batch framing exercises the
// decoder's bounds checks.
func FuzzBatchRoundTrip(f *testing.F) {
	var frames []byte
	frames = AppendLocation(frames, LocationUpdate{User: 1, X: 2.25, Y: -3, T: 4})
	frames, _ = AppendBinaryRequest(frames, mkReq())
	seed, _ := AppendBatch(nil, 2, frames)
	f.Add(seed)
	f.Add([]byte("HW\x01\x06\x00\x00\x00\x00\x00"))
	f.Add(bytes.Repeat([]byte{0x80}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: build a batch from the input's values.
		vals := valueReader{p: data}
		var built []byte
		var want []any
		for len(want) < 64 {
			kind, ok := vals.byte()
			if !ok {
				break
			}
			switch kind % 3 {
			case 0:
				l := LocationUpdate{User: vals.int64(), X: vals.coord(), Y: vals.coord(), T: vals.int64()}
				if math.IsNaN(l.X) || math.IsInf(l.X, 0) || math.IsNaN(l.Y) || math.IsInf(l.Y, 0) {
					continue
				}
				built = AppendLocation(built, l)
				want = append(want, l)
			case 1:
				c := ServiceCall{
					User: vals.int64(), X: vals.coord(), Y: vals.coord(), T: vals.int64(),
					Service: "s" + vals.str(), Traceparent: vals.str(),
				}
				if math.IsNaN(c.X) || math.IsInf(c.X, 0) || math.IsNaN(c.Y) || math.IsInf(c.Y, 0) {
					continue
				}
				var err error
				if built, err = AppendServiceCall(built, c); err != nil {
					t.Fatalf("encode %+v: %v", c, err)
				}
				want = append(want, c)
			case 2:
				r := &Request{
					ID: MsgID(vals.int64()), Pseudonym: Pseudonym("p" + vals.str()), Service: "s" + vals.str(),
				}
				minx, miny := vals.coord(), vals.coord()
				w, h := math.Abs(vals.coord()), math.Abs(vals.coord())
				r.Context.Area = geo.Rect{MinX: minx, MinY: miny, MaxX: minx + w, MaxY: miny + h}
				start := vals.int64()
				r.Context.Time.Start = start
				r.Context.Time.End = start + int64(vals.uint16())
				if r.Validate() != nil {
					continue
				}
				var err error
				if built, err = AppendBinaryRequest(built, r); err != nil {
					t.Fatalf("encode %+v: %v", r, err)
				}
				want = append(want, r)
			}
		}
		if len(want) > 0 {
			batch, err := AppendBatch(nil, len(want), built)
			if err != nil {
				t.Fatalf("encode batch: %v", err)
			}
			checkBatchEquals(t, batch, want)
		}

		// Direction 2: the raw input as a batch. Whatever decodes must
		// re-encode to a batch that decodes identically.
		dec, err := NewBatchDecoder(data)
		if err != nil {
			return
		}
		var rebuilt []byte
		var got []any
		for dec.Next() {
			switch dec.Type() {
			case FrameLocation:
				l, err := ParseLocationPayload(dec.Flags(), dec.Payload())
				if err != nil {
					return
				}
				rebuilt = AppendLocation(rebuilt, l)
				got = append(got, l)
			case FrameServiceCall:
				c, err := ParseServiceCallPayload(dec.Flags(), dec.Payload())
				if err != nil {
					return
				}
				rebuilt, err = AppendServiceCall(rebuilt, c)
				if err != nil {
					t.Fatalf("accepted call does not re-encode: %v", err)
				}
				got = append(got, c)
			case FrameRequest:
				r := new(Request)
				if err := parseRequestPayload(dec.Flags(), dec.Payload(), requestDst{r: r, copy: true}); err != nil {
					return
				}
				// Cross-codec: binary→text→binary is the identity on
				// canonical frames.
				line, err := EncodeRequest(r)
				if err != nil {
					t.Fatalf("accepted request does not text-encode: %v", err)
				}
				viaText, err := ParseRequest(line)
				if err != nil {
					t.Fatalf("text round-trip failed: %v", err)
				}
				rebuilt, err = AppendBinaryRequest(rebuilt, viaText)
				if err != nil {
					t.Fatalf("text round-trip does not binary-encode: %v", err)
				}
				got = append(got, r)
			default:
				return
			}
		}
		if dec.Err() != nil || len(got) == 0 {
			return
		}
		batch, err := AppendBatch(nil, len(got), rebuilt)
		if err != nil {
			t.Fatalf("re-encode batch: %v", err)
		}
		checkBatchEquals(t, batch, got)
	})
}

// checkBatchEquals decodes batch and asserts it carries exactly want.
func checkBatchEquals(t *testing.T, batch []byte, want []any) {
	t.Helper()
	dec, err := NewBatchDecoder(batch)
	if err != nil {
		t.Fatalf("decode batch: %v", err)
	}
	i := 0
	for dec.Next() {
		if i >= len(want) {
			t.Fatalf("batch yields more than %d frames", len(want))
		}
		var got any
		var err error
		switch dec.Type() {
		case FrameLocation:
			got, err = ParseLocationPayload(dec.Flags(), dec.Payload())
		case FrameServiceCall:
			got, err = ParseServiceCallPayload(dec.Flags(), dec.Payload())
		case FrameRequest:
			r := new(Request)
			err = parseRequestPayload(dec.Flags(), dec.Payload(), requestDst{r: r, copy: true})
			got = r
		default:
			t.Fatalf("frame %d: unexpected type %s", i, dec.Type())
		}
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("frame %d:\n got %+v\nwant %+v", i, got, want[i])
		}
		i++
	}
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("decoded %d frames, want %d", i, len(want))
	}
}

// valueReader consumes fuzz bytes as typed values, zero-padding at the
// end so every read succeeds deterministically.
type valueReader struct {
	p   []byte
	off int
}

func (v *valueReader) byte() (byte, bool) {
	if v.off >= len(v.p) {
		return 0, false
	}
	b := v.p[v.off]
	v.off++
	return b, true
}

func (v *valueReader) chunk(n int) []byte {
	out := make([]byte, n)
	c := copy(out, v.p[min(v.off, len(v.p)):])
	v.off += c
	return out
}

func (v *valueReader) int64() int64 {
	return int64(binary.LittleEndian.Uint64(v.chunk(8)))
}

func (v *valueReader) uint16() uint16 {
	return binary.LittleEndian.Uint16(v.chunk(2))
}

// coord yields either an arbitrary float64 or a fixed-point lattice
// value, so both coordinate paths get exercised.
func (v *valueReader) coord() float64 {
	b, _ := v.byte()
	if b%2 == 0 {
		return float64(int32(binary.LittleEndian.Uint32(v.chunk(4)))) / 4
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(v.chunk(8)))
}

func (v *valueReader) str() string {
	b, _ := v.byte()
	return string(v.chunk(int(b % 8)))
}
