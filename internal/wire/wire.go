// Package wire defines the request format that travels from the trusted
// server to service providers (paper §3):
//
//	(msgid, UserPseudonym, Area, TimeInterval, Data)
//
// The trusted server knows the exact position and instant behind each
// request; a service provider sees only this generalized form. The
// package sits at the bottom of the dependency graph so that the TS, the
// SP/attacker, and the linkability tooling can all share the type.
package wire

import (
	"fmt"

	"histanon/internal/geo"
)

// MsgID identifies a request on the TS↔SP channel; the TS uses it to
// route the answer back to the user's device without revealing the
// network address.
type MsgID int64

// Pseudonym hides the user identity toward a service provider while
// still letting the SP authenticate, correlate, and charge the user.
type Pseudonym string

// Request is one service request as seen by a service provider.
type Request struct {
	// ID is the message identifier (msgid).
	ID MsgID
	// Pseudonym stands in for the user identity.
	Pseudonym Pseudonym
	// Context is the possibly generalized ⟨Area, TimeInterval⟩ in which
	// the request was issued.
	Context geo.STBox
	// Service names the destination service.
	Service string
	// Data carries the service-specific attribute-value pairs.
	Data map[string]string
}

func (r *Request) String() string {
	return fmt.Sprintf("req %d pseudo=%s svc=%s ctx=%s", r.ID, r.Pseudonym, r.Service, r.Context)
}

// Response is a service provider's answer to a request, routed back to
// the user's device by the trusted server via the msgid (the SP never
// learns a network address).
type Response struct {
	// ID echoes the request's msgid.
	ID MsgID
	// Service names the answering service.
	Service string
	// Payload carries the service output.
	Payload map[string]string
}

func (r *Response) String() string {
	return fmt.Sprintf("resp %d svc=%s", r.ID, r.Service)
}
