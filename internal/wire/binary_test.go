package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"histanon/internal/geo"
)

func mkReq() *Request {
	return &Request{
		ID:        42,
		Pseudonym: "p-1337",
		Service:   "weather",
		Context: geo.STBox{
			Area: geo.Rect{MinX: 100.25, MinY: -50.5, MaxX: 200.75, MaxY: 50.5},
			Time: geo.Interval{Start: 1000, End: 2000},
		},
		Data: map[string]string{"q": "forecast", "units": "si"},
	}
}

func binaryRequestCases() map[string]*Request {
	return map[string]*Request{
		"basic": mkReq(),
		"empty data": {
			ID: -7, Pseudonym: "p", Service: "s",
			Context: geo.STBox{Area: geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, Time: geo.Interval{Start: -5, End: 5}},
		},
		"unicode strings": {
			ID: 1 << 60, Pseudonym: "αβ γ=δ&ε", Service: "täxi service",
			Context: geo.STBox{Area: geo.Rect{MinX: -1, MinY: -1, MaxX: 1, MaxY: 1}, Time: geo.Interval{Start: 0, End: 0}},
			Data:    map[string]string{"a b": "c&d", "ключ": "значение", "~": "="},
		},
		"irrational coords": {
			ID: 0, Pseudonym: "p", Service: "s",
			Context: geo.STBox{
				Area: geo.Rect{MinX: math.Pi, MinY: math.E, MaxX: 4, MaxY: 3},
				Time: geo.Interval{Start: math.MinInt64, End: math.MaxInt64},
			},
		},
		"huge coords": {
			ID: math.MaxInt64, Pseudonym: "p", Service: "s",
			Context: geo.STBox{
				Area: geo.Rect{MinX: -1e300, MinY: -math.MaxFloat64, MaxX: 1e300, MaxY: math.MaxFloat64},
				Time: geo.Interval{Start: 0, End: 1},
			},
		},
		"denormal coords": {
			ID: 1, Pseudonym: "p", Service: "s",
			Context: geo.STBox{
				Area: geo.Rect{MinX: -5e-324, MinY: 0, MaxX: 5e-324, MaxY: 1e-300},
				Time: geo.Interval{Start: 0, End: 1},
			},
		},
		"negative zero": {
			ID: 1, Pseudonym: "p", Service: "s",
			Context: geo.STBox{
				Area: geo.Rect{MinX: math.Copysign(0, -1), MinY: math.Copysign(0, -1), MaxX: 0, MaxY: 1},
				Time: geo.Interval{Start: 0, End: 1},
			},
		},
	}
}

func TestBinaryRequestRoundTrip(t *testing.T) {
	for name, r := range binaryRequestCases() {
		t.Run(name, func(t *testing.T) {
			frame, err := EncodeBinaryRequest(r)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := ParseBinaryRequest(frame)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if !reflect.DeepEqual(got, r) {
				t.Fatalf("round trip:\n got %+v\nwant %+v", got, r)
			}
			// Canonical: re-encoding the parse reproduces the frame
			// byte for byte (this is what catches a lost −0 sign bit,
			// which DeepEqual's −0 == +0 cannot).
			again, err := EncodeBinaryRequest(got)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(frame, again) {
				t.Fatalf("re-encode differs:\n got %x\nwant %x", again, frame)
			}

			// Pooled zero-copy parse sees the same request.
			br := AcquireBinaryRequest()
			defer br.Release()
			if err := br.ParseFrame(frame); err != nil {
				t.Fatalf("pooled parse: %v", err)
			}
			if !reflect.DeepEqual(&br.Request, r) {
				t.Fatalf("pooled parse:\n got %+v\nwant %+v", &br.Request, r)
			}
		})
	}
}

// TestCrossCodecIdentity pushes every case binary→text→binary and
// asserts the final frame is byte-identical to the first: the two
// codecs agree on every value either can carry.
func TestCrossCodecIdentity(t *testing.T) {
	for name, r := range binaryRequestCases() {
		t.Run(name, func(t *testing.T) {
			frame, err := EncodeBinaryRequest(r)
			if err != nil {
				t.Fatalf("encode binary: %v", err)
			}
			viaBinary, err := ParseBinaryRequest(frame)
			if err != nil {
				t.Fatalf("parse binary: %v", err)
			}
			line, err := EncodeRequest(viaBinary)
			if err != nil {
				t.Fatalf("encode text: %v", err)
			}
			viaText, err := ParseRequest(line)
			if err != nil {
				t.Fatalf("parse text: %v", err)
			}
			again, err := EncodeBinaryRequest(viaText)
			if err != nil {
				t.Fatalf("re-encode binary: %v", err)
			}
			if !bytes.Equal(frame, again) {
				t.Fatalf("binary→text→binary not identity:\n got %x\nwant %x", again, frame)
			}
		})
	}
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	cases := []*Response{
		{ID: 42, Service: "weather", Payload: map[string]string{"temp": "21", "sky": "clear"}},
		{ID: -1, Service: "s"},
		{ID: 0, Service: "täxi", Payload: map[string]string{"a&b": "c=d"}},
	}
	for _, r := range cases {
		frame, err := EncodeBinaryResponse(r)
		if err != nil {
			t.Fatalf("encode %v: %v", r, err)
		}
		got, err := ParseBinaryResponse(frame)
		if err != nil {
			t.Fatalf("parse %v: %v", r, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, r)
		}
	}
	if _, err := EncodeBinaryResponse(&Response{ID: 1}); err == nil {
		t.Fatal("empty service encoded")
	}
}

func TestLocationRoundTrip(t *testing.T) {
	cases := []LocationUpdate{
		{User: 7, X: 100.25, Y: -50.5, T: 1234},
		{User: -1, X: 0, Y: 0, T: 0},
		{User: math.MaxInt64, X: math.Pi, Y: -math.E, T: math.MinInt64},
		{User: 0, X: 5e-324, Y: -1e300, T: 99},
	}
	for _, l := range cases {
		frame := AppendLocation(nil, l)
		got, err := ParseLocation(frame)
		if err != nil {
			t.Fatalf("parse %+v: %v", l, err)
		}
		if got != l {
			t.Fatalf("round trip: got %+v want %+v", got, l)
		}
	}
	// Non-finite coordinates encode (IEEE path) but the parser rejects
	// them, mirroring Request.Validate.
	for _, bad := range []LocationUpdate{{X: math.NaN()}, {Y: math.Inf(1)}} {
		if _, err := ParseLocation(AppendLocation(nil, bad)); err == nil {
			t.Fatalf("non-finite location %+v parsed", bad)
		}
	}
}

func TestServiceCallRoundTrip(t *testing.T) {
	cases := []ServiceCall{
		{User: 7, X: 100.25, Y: -50.5, T: 1234, Service: "weather", Data: map[string]string{"q": "now"}},
		{User: 0, X: 0, Y: 0, T: 0, Service: "s", Traceparent: "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"},
		{User: -3, X: math.Pi, Y: 2, T: -7, Service: "täxi"},
	}
	for _, c := range cases {
		frame, err := AppendServiceCall(nil, c)
		if err != nil {
			t.Fatalf("encode %+v: %v", c, err)
		}
		got, err := ParseServiceCall(frame)
		if err != nil {
			t.Fatalf("parse %+v: %v", c, err)
		}
		if !reflect.DeepEqual(got, c) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, c)
		}
	}
	if _, err := AppendServiceCall(nil, ServiceCall{User: 1}); err == nil {
		t.Fatal("empty service encoded")
	}
}

func TestDecisionRoundTrip(t *testing.T) {
	cases := []DecisionFrame{
		{},
		{Forwarded: true, Generalized: true, HKAnonymity: true, Unlinked: true,
			MatchedLBQID: "home", TraceID: "0123456789abcdef0123456789abcdef", Pseudonym: "p-9",
			HasContext: true,
			Context: geo.STBox{
				Area: geo.Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4},
				Time: geo.Interval{Start: 5, End: 6},
			}},
		{Suppressed: true, AtRisk: true, QIDExposed: true, DegradedReason: "outbox saturated"},
		{Degraded: true, HasContext: true,
			Context: geo.STBox{
				Area: geo.Rect{MinX: math.Pi, MinY: 0, MaxX: 4, MaxY: 1},
				Time: geo.Interval{Start: -1, End: 1},
			}},
	}
	for _, d := range cases {
		frame := AppendDecision(nil, d)
		got, err := ParseDecision(frame)
		if err != nil {
			t.Fatalf("parse %+v: %v", d, err)
		}
		if got != d {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, d)
		}
	}
}

// TestFixedCoordSelection pins the flag policy: exact fixed-point
// representables use the compact path, everything else (including
// negative zero, whose sign only IEEE bits preserve) escapes to IEEE.
func TestFixedCoordSelection(t *testing.T) {
	fixed := []float64{0, 1, -1, 100.25, -0.5, 1 << 30, math.Ldexp(1, -20)}
	for _, v := range fixed {
		if _, ok := fixedCoord(v); !ok {
			t.Errorf("fixedCoord(%g) = not fixed, want fixed", v)
		}
	}
	ieee := []float64{math.Copysign(0, -1), math.Pi, 1e300, 5e-324, math.NaN(), math.Inf(1), math.Ldexp(1, -21)}
	for _, v := range ieee {
		if _, ok := fixedCoord(v); ok {
			t.Errorf("fixedCoord(%g) = fixed, want IEEE escape", v)
		}
	}

	frame := AppendLocation(nil, LocationUpdate{User: 1, X: 100.25, Y: -50.5, T: 1})
	if frame[4]&FlagFixedCoords == 0 {
		t.Error("lattice location did not take the fixed-point path")
	}
	frame = AppendLocation(nil, LocationUpdate{User: 1, X: math.Pi, Y: 0, T: 1})
	if frame[4]&FlagFixedCoords != 0 {
		t.Error("irrational location took the fixed-point path")
	}
}

// TestBinaryParseRejectsMalformed feeds the parser a gauntlet of
// header, varint, length and canonicality abuse; every case must fail
// cleanly.
func TestBinaryParseRejectsMalformed(t *testing.T) {
	good, err := EncodeBinaryRequest(mkReq())
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return mutate(b)
	}
	cases := map[string][]byte{
		"empty":           {},
		"short header":    good[:5],
		"bad magic":       corrupt(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version":     corrupt(func(b []byte) []byte { b[2] = 9; return b }),
		"unknown flags":   corrupt(func(b []byte) []byte { b[4] |= 0x80; return b }),
		"truncated body":  good[:len(good)-3],
		"trailing bytes":  append(append([]byte(nil), good...), 0xff),
		"length too big":  corrupt(func(b []byte) []byte { binary.LittleEndian.PutUint32(b[5:9], 1<<28); return b }),
		"length over max": corrupt(func(b []byte) []byte { binary.LittleEndian.PutUint32(b[5:9], MaxFrameBytes+1); return b }),
		"length lies short": corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[5:9], binary.LittleEndian.Uint32(b[5:9])-1)
			return b
		}),
		"wrong type": corrupt(func(b []byte) []byte { b[3] = byte(FrameResponse); return b }),
	}
	for name, frame := range cases {
		if _, err := ParseBinaryRequest(frame); err == nil {
			t.Errorf("%s: parsed", name)
		}
	}

	// Payload-level abuse, rebuilt by hand around the real header.
	payload := func(build func() []byte) []byte {
		p := build()
		f, lenAt := appendHeader(nil, FrameRequest, 0)
		f = append(f, p...)
		return patchLength(f, lenAt)
	}
	body := func(tail []byte) []byte {
		// id, pseudonym "p", service "s", 4 IEEE coords, start, end
		p := appendVarint(nil, 1)
		p = appendString(p, "p")
		p = appendString(p, "s")
		for _, v := range []float64{0, 0, 1, 1} {
			p = binary.LittleEndian.AppendUint64(p, math.Float64bits(v))
		}
		p = appendVarint(p, 0)
		p = appendVarint(p, 1)
		return append(p, tail...)
	}
	payloadCases := map[string][]byte{
		"non-minimal varint": payload(func() []byte {
			return body([]byte{0x80, 0x00}) // data count 0 in two bytes
		}),
		"varint too long": payload(func() []byte {
			return body([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
		}),
		"string over-read": payload(func() []byte {
			p := appendVarint(nil, 1)
			p = appendUvarint(p, 1000) // pseudonym claims 1000 bytes
			return append(p, 'p')
		}),
		"data count lies": payload(func() []byte {
			return body(appendUvarint(nil, 100))
		}),
		"empty data key": payload(func() []byte {
			p := body(appendUvarint(nil, 1))
			p = appendString(p, "")
			return appendString(p, "v")
		}),
		"unsorted data keys": payload(func() []byte {
			p := body(appendUvarint(nil, 2))
			p = appendString(p, "b")
			p = appendString(p, "1")
			p = appendString(p, "a")
			return appendString(p, "2")
		}),
		"duplicate data keys": payload(func() []byte {
			p := body(appendUvarint(nil, 2))
			p = appendString(p, "a")
			p = appendString(p, "1")
			p = appendString(p, "a")
			return appendString(p, "2")
		}),
		"trailing payload": payload(func() []byte {
			return body(append(appendUvarint(nil, 0), 0xde, 0xad))
		}),
		"empty pseudonym": payload(func() []byte {
			p := appendVarint(nil, 1)
			p = appendString(p, "")
			p = appendString(p, "s")
			for _, v := range []float64{0, 0, 1, 1} {
				p = binary.LittleEndian.AppendUint64(p, math.Float64bits(v))
			}
			p = appendVarint(p, 0)
			p = appendVarint(p, 1)
			return appendUvarint(p, 0)
		}),
		"nan coordinate": payload(func() []byte {
			p := appendVarint(nil, 1)
			p = appendString(p, "p")
			p = appendString(p, "s")
			for _, v := range []float64{math.NaN(), 0, 1, 1} {
				p = binary.LittleEndian.AppendUint64(p, math.Float64bits(v))
			}
			p = appendVarint(p, 0)
			p = appendVarint(p, 1)
			return appendUvarint(p, 0)
		}),
	}
	for name, frame := range payloadCases {
		if _, err := ParseBinaryRequest(frame); err == nil {
			t.Errorf("%s: parsed", name)
		}
	}

	// Fixed-point coordinate out of the exact-integer range.
	f, lenAt := appendHeader(nil, FrameLocation, FlagFixedCoords)
	f = appendVarint(f, 1)
	f = appendVarint(f, coordMaxAbs+1)
	f = appendVarint(f, 0)
	f = appendVarint(f, 0)
	f = patchLength(f, lenAt)
	if _, err := ParseLocation(f); err == nil {
		t.Error("out-of-range fixed-point coordinate parsed")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	var frames []byte
	var want []any
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		switch i % 4 {
		case 0:
			l := LocationUpdate{User: int64(i), X: float64(rng.Intn(1000)) / 4, Y: -float64(i), T: int64(i * 10)}
			frames = AppendLocation(frames, l)
			want = append(want, l)
		case 1:
			c := ServiceCall{User: int64(i), X: rng.Float64(), Y: rng.Float64(), T: int64(i), Service: "svc", Data: map[string]string{"i": "x"}}
			var err error
			frames, err = AppendServiceCall(frames, c)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, c)
		case 2:
			r := mkReq()
			r.ID = MsgID(i)
			var err error
			frames, err = AppendBinaryRequest(frames, r)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, r)
		case 3:
			d := DecisionFrame{Forwarded: i%8 == 3, Pseudonym: "p", TraceID: "t"}
			frames = AppendDecision(frames, d)
			want = append(want, d)
		}
	}
	batch, err := AppendBatch(nil, len(want), frames)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewBatchDecoder(batch)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Count() != len(want) {
		t.Fatalf("count %d want %d", dec.Count(), len(want))
	}
	i := 0
	for dec.Next() {
		var got any
		var err error
		switch dec.Type() {
		case FrameLocation:
			got, err = ParseLocationPayload(dec.Flags(), dec.Payload())
		case FrameServiceCall:
			got, err = ParseServiceCallPayload(dec.Flags(), dec.Payload())
		case FrameRequest:
			r := new(Request)
			err = parseRequestPayload(dec.Flags(), dec.Payload(), requestDst{r: r, copy: true})
			got = r
		case FrameDecision:
			got, err = ParseDecisionPayload(dec.Flags(), dec.Payload())
		default:
			t.Fatalf("frame %d: unexpected type %s", i, dec.Type())
		}
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("frame %d:\n got %+v\nwant %+v", i, got, want[i])
		}
		i++
	}
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("decoded %d frames, want %d", i, len(want))
	}

	// Nested batches are rejected.
	nested, err := AppendBatch(nil, 1, batch)
	if err != nil {
		t.Fatal(err)
	}
	dec, err = NewBatchDecoder(nested)
	if err != nil {
		t.Fatal(err)
	}
	for dec.Next() {
	}
	if dec.Err() == nil {
		t.Fatal("nested batch decoded")
	}

	// A declared count the payload cannot hold is rejected up front.
	lie, err := AppendBatch(nil, 1000, frames[:20])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatchDecoder(lie); err == nil {
		t.Fatal("lying batch count accepted")
	}
}

// TestBinaryParseZeroAlloc is the tentpole's allocation guard: the
// pooled zero-copy request parse must not allocate at all.
func TestBinaryParseZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	frame, err := EncodeBinaryRequest(mkReq())
	if err != nil {
		t.Fatal(err)
	}
	br := AcquireBinaryRequest()
	defer br.Release()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := br.ParseFrame(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("pooled binary parse allocates %.1f/op, want 0", allocs)
	}
}

// TestBatchDecodeAllocBudget guards the server-side batch ingest path:
// walking a batch and parsing every location payload allocates nothing.
func TestBatchDecodeAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	var frames []byte
	const n = 256
	for i := 0; i < n; i++ {
		frames = AppendLocation(frames, LocationUpdate{User: int64(i % 16), X: float64(i) / 4, Y: float64(i) / 2, T: int64(i)})
	}
	batch, err := AppendBatch(nil, n, frames)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		dec, err := NewBatchDecoder(batch)
		if err != nil {
			t.Fatal(err)
		}
		for dec.Next() {
			if _, err := ParseLocationPayload(dec.Flags(), dec.Payload()); err != nil {
				t.Fatal(err)
			}
		}
		if err := dec.Err(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batch location decode allocates %.1f/op, want 0", allocs)
	}
}

// TestBinaryVsTextRandomized cross-checks the codecs over seeded random
// requests: both must round-trip to the same struct.
func TestBinaryVsTextRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		r := &Request{
			ID:        MsgID(rng.Int63() - rng.Int63()),
			Pseudonym: Pseudonym(randString(rng)),
			Service:   randString(rng),
		}
		minx, miny := randCoord(rng), randCoord(rng)
		r.Context.Area = geo.Rect{MinX: minx, MinY: miny, MaxX: minx + math.Abs(randCoord(rng)), MaxY: miny + math.Abs(randCoord(rng))}
		start := rng.Int63n(1 << 40)
		r.Context.Time = geo.Interval{Start: start, End: start + rng.Int63n(10000)}
		if rng.Intn(2) == 0 {
			r.Data = map[string]string{randString(rng): randString(rng), "z" + randString(rng): ""}
		}
		line, err := EncodeRequest(r)
		if err != nil {
			t.Fatalf("case %d: text encode: %v", i, err)
		}
		fromText, err := ParseRequest(line)
		if err != nil {
			t.Fatalf("case %d: text parse: %v", i, err)
		}
		frame, err := EncodeBinaryRequest(r)
		if err != nil {
			t.Fatalf("case %d: binary encode: %v", i, err)
		}
		fromBinary, err := ParseBinaryRequest(frame)
		if err != nil {
			t.Fatalf("case %d: binary parse: %v", i, err)
		}
		if !reflect.DeepEqual(fromText, fromBinary) {
			t.Fatalf("case %d: codecs disagree:\ntext   %+v\nbinary %+v", i, fromText, fromBinary)
		}
	}
}

func randString(rng *rand.Rand) string {
	alphabet := "abc =&%αβ"
	n := 1 + rng.Intn(8)
	out := make([]rune, n)
	for i := range out {
		out[i] = []rune(alphabet)[rng.Intn(len([]rune(alphabet)))]
	}
	return string(out)
}

func randCoord(rng *rand.Rand) float64 {
	switch rng.Intn(3) {
	case 0: // lattice point, fixed-point representable
		return float64(rng.Intn(1<<20)) / 4
	case 1: // arbitrary double
		return (rng.Float64() - 0.5) * 2000
	default: // extreme magnitude
		return math.Ldexp(rng.Float64(), rng.Intn(600)-300)
	}
}
