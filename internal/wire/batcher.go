package wire

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Batcher coalesces encoded frames into batch frames under a
// size/deadline flush policy: a batch ships when the pending bytes
// reach MaxBytes (or the frame count reaches MaxBatchFrames), when
// MaxDelay has passed since the first pending frame, on an explicit
// Flush, or on Close. Many producers may Add concurrently; flushes are
// serialized, so the flush callback never runs reentrantly and batches
// leave in drain order. Buffers are recycled across flushes, so the
// steady state allocates nothing beyond what the callback does.
//
// Accounting obeys a conservation law the stress tests assert:
//
//	Added == Flushed + Dropped + Pending
//
// where Added counts every Add attempt, Dropped counts frames rejected
// at Add (closed batcher, oversized frame) or lost to a failed flush
// callback, and Pending counts frames currently buffered.

// ErrBatcherClosed is returned by Add after Close.
var ErrBatcherClosed = errors.New("wire: batcher closed")

// FlushFunc ships one encoded batch frame holding n inner frames. The
// batch buffer is recycled: it is valid only until the callback
// returns. A non-nil error drops the batch (the frames are counted
// Dropped, not retried — retry policy belongs to the caller's
// transport).
type FlushFunc func(batch []byte, n int) error

// BatcherConfig configures a Batcher.
type BatcherConfig struct {
	// MaxBytes triggers a size flush when the pending encoded frames
	// reach this many bytes. Defaults to 64 KiB; clamped so a batch can
	// never exceed MaxFrameBytes.
	MaxBytes int
	// MaxDelay bounds how long the first frame of a batch waits before
	// a deadline flush. Zero disables the deadline (size/manual flushes
	// only).
	MaxDelay time.Duration
	// Flush ships each batch. Required.
	Flush FlushFunc
}

// BatcherStats is a snapshot of the batcher's conservation-law
// counters and per-trigger flush counts.
type BatcherStats struct {
	Added   uint64 // frames offered via Add
	Flushed uint64 // frames shipped in successful batches
	Dropped uint64 // frames rejected at Add or lost to failed flushes
	Pending uint64 // frames currently buffered
	Batches uint64 // successful flush callbacks

	SizeFlushes     uint64 // flushes triggered by MaxBytes/MaxBatchFrames
	DeadlineFlushes uint64 // flushes triggered by MaxDelay
	ManualFlushes   uint64 // explicit Flush calls that shipped frames
	CloseFlushes    uint64 // Close calls that shipped frames
}

// flush triggers, indexing BatcherStats' per-trigger counters.
type flushTrigger int

const (
	flushSize flushTrigger = iota
	flushDeadline
	flushManual
	flushClose
)

// Batcher implements the client-side batching policy. See the package
// comment on this file for semantics.
type Batcher struct {
	maxBytes int
	maxFrame int
	delay    time.Duration
	cb       FlushFunc

	// flushMu serializes flushes: batch construction and the callback
	// happen under it (but outside mu), so Add never blocks on the
	// callback and batches ship in drain order.
	flushMu sync.Mutex
	// scratch is the batch-encode buffer, owned by the flush holder.
	scratch []byte

	mu    sync.Mutex
	buf   []byte // pending encoded frames
	spare []byte // recycled buffer for the next swap
	count int    // frames in buf
	// inflight counts frames drained from buf whose flush callback has
	// not yet returned; Stats reports them as Pending so the
	// conservation law holds at every instant, not just at quiescence.
	inflight int
	timer    *time.Timer
	closed   bool
	added    uint64
	flushed  uint64
	dropped  uint64
	batches  uint64
	trigs    [4]uint64
}

// NewBatcher returns a Batcher shipping batches through cfg.Flush.
func NewBatcher(cfg BatcherConfig) (*Batcher, error) {
	if cfg.Flush == nil {
		return nil, fmt.Errorf("wire: batcher needs a Flush callback")
	}
	maxBytes := cfg.MaxBytes
	if maxBytes <= 0 {
		maxBytes = 64 << 10
	}
	// A size trigger fires at maxBytes-1 pending plus one more frame of
	// up to maxFrame bytes; the clamp keeps the worst case inside the
	// frame limit (with headroom for the header and count varint).
	if lim := (MaxFrameBytes - 16) / 2; maxBytes > lim {
		maxBytes = lim
	}
	return &Batcher{
		maxBytes: maxBytes,
		maxFrame: maxBytes,
		delay:    cfg.MaxDelay,
		cb:       cfg.Flush,
	}, nil
}

// Add buffers one encoded frame, flushing when the size policy
// triggers. The frame bytes are copied; the caller may reuse them.
func (b *Batcher) Add(frame []byte) error {
	if len(frame) > b.maxFrame {
		b.mu.Lock()
		b.added++
		b.dropped++
		b.mu.Unlock()
		return fmt.Errorf("wire: frame of %d bytes exceeds batcher limit %d", len(frame), b.maxFrame)
	}
	b.mu.Lock()
	b.added++
	if b.closed {
		b.dropped++
		b.mu.Unlock()
		return ErrBatcherClosed
	}
	wasEmpty := b.count == 0
	b.buf = append(b.buf, frame...)
	b.count++
	trigger := len(b.buf) >= b.maxBytes || b.count >= MaxBatchFrames
	if wasEmpty && b.delay > 0 && !trigger {
		b.timer = time.AfterFunc(b.delay, b.deadlineFlush)
	}
	b.mu.Unlock()
	if trigger {
		return b.flush(flushSize)
	}
	return nil
}

// Flush ships the pending frames now, regardless of the size/deadline
// policy.
func (b *Batcher) Flush() error { return b.flush(flushManual) }

// Close flushes the pending frames and rejects further Adds. It is
// idempotent; concurrent Adds that lose the race are counted Dropped.
func (b *Batcher) Close() error {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	return b.flush(flushClose)
}

// deadlineFlush is the timer target.
func (b *Batcher) deadlineFlush() { _ = b.flush(flushDeadline) }

// flush drains the pending frames into one batch frame and ships it.
// No-op when nothing is pending (a deadline firing after a size flush
// already drained, say).
func (b *Batcher) flush(trig flushTrigger) error {
	b.flushMu.Lock()
	defer b.flushMu.Unlock()

	b.mu.Lock()
	if b.count == 0 {
		b.mu.Unlock()
		return nil
	}
	frames, n := b.buf, b.count
	b.buf = b.spare
	b.spare = nil
	b.count = 0
	b.inflight += n
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()

	batch, err := AppendBatch(b.scratch[:0], n, frames)
	if err == nil {
		b.scratch = batch[:0]
		err = b.cb(batch, n)
	}

	b.mu.Lock()
	if b.spare == nil || cap(frames) > cap(b.spare) {
		b.spare = frames[:0]
	}
	b.inflight -= n
	if err != nil {
		b.dropped += uint64(n)
	} else {
		b.flushed += uint64(n)
		b.batches++
		b.trigs[trig]++
	}
	b.mu.Unlock()
	return err
}

// Stats snapshots the conservation-law counters.
func (b *Batcher) Stats() BatcherStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BatcherStats{
		Added:           b.added,
		Flushed:         b.flushed,
		Dropped:         b.dropped,
		Pending:         uint64(b.count + b.inflight),
		Batches:         b.batches,
		SizeFlushes:     b.trigs[flushSize],
		DeadlineFlushes: b.trigs[flushDeadline],
		ManualFlushes:   b.trigs[flushManual],
		CloseFlushes:    b.trigs[flushClose],
	}
}
