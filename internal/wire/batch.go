package wire

import (
	"fmt"
)

// Batch framing: one FrameBatch frame wrapping a varint frame count and
// that many complete inner frames (each with its own header). The
// decoder is a value type that walks the inner frames in place without
// allocating, so server-side batch decode stays on the zero-alloc
// ingest path.

// MaxBatchFrames bounds the declared frame count of one batch; combined
// with MaxFrameBytes it keeps a hostile header from promising work the
// payload cannot hold.
const MaxBatchFrames = 1 << 16

// AppendBatch appends a batch frame wrapping the given complete frames.
// The frames are trusted to be well-formed (they come from this
// package's encoders); the decoder re-validates everything anyway.
func AppendBatch(dst []byte, count int, frames []byte) ([]byte, error) {
	if count < 0 || count > MaxBatchFrames {
		return dst, fmt.Errorf("wire: batch frame count %d out of range", count)
	}
	if len(frames) > MaxFrameBytes-10 {
		return dst, fmt.Errorf("wire: batch payload %d bytes exceeds frame limit", len(frames))
	}
	dst, lenAt := appendHeader(dst, FrameBatch, 0)
	dst = appendUvarint(dst, uint64(count))
	dst = append(dst, frames...)
	return patchLength(dst, lenAt), nil
}

// BatchDecoder iterates the inner frames of one batch frame. It is a
// value type holding only slices into the batch buffer, so decoding a
// batch allocates nothing. Use:
//
//	dec, err := wire.NewBatchDecoder(body)
//	for dec.Next() {
//		switch dec.Type() { ... dec.Payload() ... }
//	}
//	if err := dec.Err(); err != nil { ... }
type BatchDecoder struct {
	rest  []byte
	count int
	seen  int
	typ   FrameType
	flags byte
	pay   []byte
	err   error
}

// NewBatchDecoder validates the outer batch header and positions the
// decoder before the first inner frame.
func NewBatchDecoder(batch []byte) (BatchDecoder, error) {
	typ, flags, payload, rest, err := SplitFrame(batch)
	if err != nil {
		return BatchDecoder{}, err
	}
	if typ != FrameBatch {
		return BatchDecoder{}, fmt.Errorf("wire: frame type %s, want batch", typ)
	}
	if flags != 0 {
		return BatchDecoder{}, fmt.Errorf("wire: batch frame has flags %#x", flags)
	}
	if len(rest) != 0 {
		return BatchDecoder{}, fmt.Errorf("wire: %d trailing bytes after batch frame", len(rest))
	}
	fr := frameReader{p: payload}
	n, err := fr.uvarint()
	if err != nil {
		return BatchDecoder{}, err
	}
	if n > MaxBatchFrames {
		return BatchDecoder{}, fmt.Errorf("wire: batch declares %d frames, limit %d", n, MaxBatchFrames)
	}
	// Every inner frame costs at least a header; reject counts the
	// payload cannot possibly hold.
	if n > uint64(fr.remaining()/headerSize) {
		return BatchDecoder{}, fmt.Errorf("wire: batch declares %d frames, payload fits at most %d", n, fr.remaining()/headerSize)
	}
	return BatchDecoder{rest: payload[fr.off:], count: int(n)}, nil
}

// Count is the batch's declared inner-frame count.
func (d *BatchDecoder) Count() int { return d.count }

// Next advances to the next inner frame. It returns false at the end of
// the batch or on a malformed frame; check Err afterwards.
func (d *BatchDecoder) Next() bool {
	if d.err != nil {
		return false
	}
	if d.seen == d.count {
		if len(d.rest) != 0 {
			d.err = fmt.Errorf("wire: %d bytes after final batch frame", len(d.rest))
		}
		return false
	}
	typ, flags, payload, rest, err := SplitFrame(d.rest)
	if err != nil {
		d.err = fmt.Errorf("wire: batch frame %d: %w", d.seen, err)
		return false
	}
	if typ == FrameBatch {
		d.err = fmt.Errorf("wire: batch frame %d: batches do not nest", d.seen)
		return false
	}
	d.typ, d.flags, d.pay, d.rest = typ, flags, payload, rest
	d.seen++
	return true
}

// Type is the current inner frame's type.
func (d *BatchDecoder) Type() FrameType { return d.typ }

// Flags is the current inner frame's flag byte.
func (d *BatchDecoder) Flags() byte { return d.flags }

// Payload is the current inner frame's payload, aliasing the batch
// buffer.
func (d *BatchDecoder) Payload() []byte { return d.pay }

// Err reports the first malformed-frame error, or nil when the batch
// decoded cleanly.
func (d *BatchDecoder) Err() error { return d.err }
