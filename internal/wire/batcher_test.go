package wire

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// collectBatches is a FlushFunc that decodes every batch into location
// updates, for tests that tally delivery.
type collectBatches struct {
	mu      sync.Mutex
	updates []LocationUpdate
	batches int
	fail    bool
}

func (c *collectBatches) flush(batch []byte, n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail {
		return errors.New("transport down")
	}
	dec, err := NewBatchDecoder(batch)
	if err != nil {
		return err
	}
	got := 0
	for dec.Next() {
		if dec.Type() != FrameLocation {
			return fmt.Errorf("unexpected frame type %s", dec.Type())
		}
		l, err := ParseLocationPayload(dec.Flags(), dec.Payload())
		if err != nil {
			return err
		}
		c.updates = append(c.updates, l)
		got++
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if got != n {
		return fmt.Errorf("batch declared %d frames, decoded %d", n, got)
	}
	c.batches++
	return nil
}

func TestBatcherSizeFlush(t *testing.T) {
	sink := &collectBatches{}
	frame := AppendLocation(nil, LocationUpdate{User: 1, X: 1, Y: 2, T: 3})
	b, err := NewBatcher(BatcherConfig{MaxBytes: 4 * len(frame), Flush: sink.flush})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := b.Add(frame); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.SizeFlushes != 2 || st.Flushed != 8 || st.Pending != 2 {
		t.Fatalf("after 10 adds at 4-frame trigger: %+v", st)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	st = b.Stats()
	if st.Added != 10 || st.Flushed != 10 || st.Pending != 0 || st.Dropped != 0 || st.CloseFlushes != 1 {
		t.Fatalf("after close: %+v", st)
	}
	if len(sink.updates) != 10 {
		t.Fatalf("delivered %d updates, want 10", len(sink.updates))
	}
	if err := b.Add(frame); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("add after close: %v", err)
	}
	if st := b.Stats(); st.Dropped != 1 {
		t.Fatalf("add after close not counted dropped: %+v", st)
	}
}

func TestBatcherDeadlineFlush(t *testing.T) {
	sink := &collectBatches{}
	b, err := NewBatcher(BatcherConfig{MaxBytes: 1 << 20, MaxDelay: 10 * time.Millisecond, Flush: sink.flush})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b.Add(AppendLocation(nil, LocationUpdate{User: int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := b.Stats()
		if st.Flushed == 3 {
			if st.DeadlineFlushes != 1 {
				t.Fatalf("want one deadline flush: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deadline flush never fired: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBatcherFlushFailureCountsDropped(t *testing.T) {
	sink := &collectBatches{fail: true}
	b, err := NewBatcher(BatcherConfig{Flush: sink.flush})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := b.Add(AppendLocation(nil, LocationUpdate{User: int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err == nil {
		t.Fatal("failed flush returned nil")
	}
	st := b.Stats()
	if st.Dropped != 5 || st.Flushed != 0 || st.Pending != 0 || st.Batches != 0 {
		t.Fatalf("after failed flush: %+v", st)
	}
	// Conservation still holds.
	if st.Added != st.Flushed+st.Dropped+st.Pending {
		t.Fatalf("conservation violated: %+v", st)
	}
}

func TestBatcherRejectsOversizedFrame(t *testing.T) {
	sink := &collectBatches{}
	b, err := NewBatcher(BatcherConfig{MaxBytes: 64, Flush: sink.flush})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(make([]byte, 1000)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	st := b.Stats()
	if st.Added != 1 || st.Dropped != 1 {
		t.Fatalf("oversized frame accounting: %+v", st)
	}
}

// TestBatcherStress runs concurrent producers against size- and
// deadline-triggered flushes and asserts the conservation law, no frame
// loss, no duplication, and per-producer order preservation. Run under
// -race in CI.
func TestBatcherStress(t *testing.T) {
	const producers = 8
	const perProducer = 2000
	sink := &collectBatches{}
	b, err := NewBatcher(BatcherConfig{
		MaxBytes: 256, // tiny, so size flushes race with everything
		MaxDelay: 100 * time.Microsecond,
		Flush:    sink.flush,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var frame []byte
			for i := 0; i < perProducer; i++ {
				frame = AppendLocation(frame[:0], LocationUpdate{User: int64(p), X: float64(i), Y: 0, T: int64(i)})
				if err := b.Add(frame); err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				if i%512 == 0 {
					_ = b.Flush() // manual flushes race with the policy
				}
			}
		}(p)
	}
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	st := b.Stats()
	const total = producers * perProducer
	if st.Added != total {
		t.Fatalf("added %d, want %d", st.Added, total)
	}
	if st.Added != st.Flushed+st.Dropped+st.Pending {
		t.Fatalf("conservation violated: %+v", st)
	}
	if st.Dropped != 0 || st.Pending != 0 || st.Flushed != total {
		t.Fatalf("frames lost: %+v", st)
	}
	if st.SizeFlushes == 0 {
		t.Fatalf("stress never triggered a size flush: %+v", st)
	}

	// Every frame delivered exactly once, in per-producer order.
	next := make([]int64, producers)
	for _, l := range sink.updates {
		if l.T != next[l.User] {
			t.Fatalf("producer %d: got seq %d, want %d (reorder or dup/loss)", l.User, l.T, next[l.User])
		}
		next[l.User]++
	}
	for p, n := range next {
		if n != perProducer {
			t.Fatalf("producer %d: delivered %d frames, want %d", p, n, perProducer)
		}
	}
	if int(st.Batches) != sink.batches {
		t.Fatalf("batch count mismatch: stats %d sink %d", st.Batches, sink.batches)
	}
}

// TestBatcherSteadyStateAllocs checks the recycled-buffer claim: after
// warmup, Add+flush cycles stay allocation-free apart from the timer.
func TestBatcherSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	sink := func(batch []byte, n int) error { return nil }
	frame := AppendLocation(nil, LocationUpdate{User: 1, X: 1, Y: 2, T: 3})
	b, err := NewBatcher(BatcherConfig{MaxBytes: 8 * len(frame), Flush: sink})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the buffer swap.
	for i := 0; i < 64; i++ {
		_ = b.Add(frame)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			if err := b.Add(frame); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state batching allocates %.1f per 16 adds, want 0", allocs)
	}
}
