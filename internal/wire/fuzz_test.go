package wire

import (
	"reflect"
	"testing"
)

// FuzzParseRequest asserts that the parser never panics, and that every
// frame it accepts re-encodes to a frame that parses to the same
// request — accepted inputs land inside the codec's round-trip closure.
func FuzzParseRequest(f *testing.F) {
	seeds := []string{
		"REQ v1 1 p s 0 0 1 1 0 1 -",
		"REQ v1 -9 p+2 traffic+info -5.25 -1e+09 5.25 1e+09 -100 100 lang=it&q=nearest+fuel",
		"REQ v1 3 p s 0 0 1 1 0 1 a=1",
		"RESP v1 1 s -",
		"REQ v1 3 p s NaN 0 1 1 0 1 -",
		"REQ v1 3 p s 0 0 1 1 0 1 a=1&a=2",
		"REQ v1 9223372036854775807 %CF%80 svc 0.1 0.2 0.30000000000000004 1e+300 -42 42 k%26%3D=v+%2B%25",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, frame string) {
		r, err := ParseRequest(frame)
		if err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("ParseRequest(%q) returned invalid request: %v", frame, err)
		}
		enc, err := EncodeRequest(r)
		if err != nil {
			t.Fatalf("accepted frame %q failed to re-encode: %v", frame, err)
		}
		r2, err := ParseRequest(enc)
		if err != nil {
			t.Fatalf("re-encoded frame %q failed to parse: %v", enc, err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("round trip drift:\n first %+v\nsecond %+v", r, r2)
		}
	})
}

// FuzzParseResponse mirrors FuzzParseRequest for the answer channel.
func FuzzParseResponse(f *testing.F) {
	f.Add("RESP v1 1 s -")
	f.Add("RESP v1 -1 traffic+info eta=12+min&route=A4%26A8")
	f.Add("REQ v1 1 p s 0 0 1 1 0 1 -")
	f.Fuzz(func(t *testing.T, frame string) {
		r, err := ParseResponse(frame)
		if err != nil {
			return
		}
		enc, err := EncodeResponse(r)
		if err != nil {
			t.Fatalf("accepted frame %q failed to re-encode: %v", frame, err)
		}
		r2, err := ParseResponse(enc)
		if err != nil {
			t.Fatalf("re-encoded frame %q failed to parse: %v", enc, err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("round trip drift:\n first %+v\nsecond %+v", r, r2)
		}
	})
}
