package wire

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"histanon/internal/geo"
)

func box(minx, miny, maxx, maxy float64, start, end int64) geo.STBox {
	return geo.STBox{
		Area: geo.Rect{MinX: minx, MinY: miny, MaxX: maxx, MaxY: maxy},
		Time: geo.Interval{Start: start, End: end},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 1, Pseudonym: "p1", Service: "poi", Context: box(0, 0, 100, 100, 0, 60)},
		{ID: -9, Pseudonym: "p 2", Service: "traffic info",
			Context: box(-5.25, -1e9, 5.25, 1e9, -100, 100),
			Data:    map[string]string{"q": "nearest fuel", "lang": "it"}},
		{ID: math.MaxInt64, Pseudonym: "π=%&+", Service: "a&b=c",
			Context: box(0.1, 0.2, 0.30000000000000004, 1e300, -1<<62, 1<<62),
			Data:    map[string]string{"k&=": "v +%", "újratöltés": "igen"}},
		// Degenerate but valid: point box, instant interval.
		{ID: 0, Pseudonym: "x", Service: "s", Context: box(7.5, -7.5, 7.5, -7.5, 42, 42)},
	}
	for i, in := range cases {
		enc, err := EncodeRequest(&in)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		if strings.ContainsAny(enc, "\n") {
			t.Fatalf("case %d: frame contains newline: %q", i, enc)
		}
		got, err := ParseRequest(enc)
		if err != nil {
			t.Fatalf("case %d: parse %q: %v", i, enc, err)
		}
		want := in
		if len(want.Data) == 0 {
			want.Data = nil // "-" decodes to nil, not an empty map
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("case %d: round trip:\n got %+v\nwant %+v", i, *got, want)
		}
		// Canonical: re-encoding the parse must reproduce the frame.
		re, err := EncodeRequest(got)
		if err != nil {
			t.Fatalf("case %d: re-encode: %v", i, err)
		}
		if re != enc {
			t.Fatalf("case %d: non-canonical encoding:\n first %q\nsecond %q", i, enc, re)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 5, Service: "poi"},
		{ID: -1, Service: "traffic info", Payload: map[string]string{"eta": "12 min", "route": "A4&A8"}},
	}
	for i, in := range cases {
		enc, err := EncodeResponse(&in)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, err := ParseResponse(enc)
		if err != nil {
			t.Fatalf("case %d: parse %q: %v", i, enc, err)
		}
		want := in
		if len(want.Payload) == 0 {
			want.Payload = nil
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("case %d: round trip:\n got %+v\nwant %+v", i, *got, want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	valid := Request{ID: 1, Pseudonym: "p", Service: "s", Context: box(0, 0, 1, 1, 0, 1)}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	mutate := []struct {
		name string
		fn   func(r *Request)
	}{
		{"empty pseudonym", func(r *Request) { r.Pseudonym = "" }},
		{"empty service", func(r *Request) { r.Service = "" }},
		{"inverted rect", func(r *Request) { r.Context.Area.MinX = 2 }},
		{"inverted interval", func(r *Request) { r.Context.Time.End = -1 }},
		{"NaN coordinate", func(r *Request) { r.Context.Area.MaxY = math.NaN() }},
		{"infinite coordinate", func(r *Request) { r.Context.Area.MinY = math.Inf(-1) }},
	}
	for _, m := range mutate {
		r := valid
		m.fn(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", m.name, r)
		}
		if _, err := EncodeRequest(&r); err == nil {
			t.Errorf("%s: EncodeRequest accepted %+v", m.name, r)
		}
	}
}

func TestParseRequestRejects(t *testing.T) {
	good, err := EncodeRequest(&Request{ID: 3, Pseudonym: "p", Service: "s",
		Context: box(0, 0, 1, 1, 0, 1), Data: map[string]string{"a": "1"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseRequest(good); err != nil {
		t.Fatalf("control frame rejected: %v", err)
	}
	bad := []struct {
		name  string
		frame string
	}{
		{"empty", ""},
		{"truncated", strings.Join(strings.Split(good, " ")[:8], " ")},
		{"extra field", good + " extra"},
		{"wrong tag", strings.Replace(good, "REQ", "QER", 1)},
		{"wrong version", strings.Replace(good, " v1 ", " v2 ", 1)},
		{"bad msgid", "REQ v1 zzz p s 0 0 1 1 0 1 -"},
		{"bad float", "REQ v1 3 p s 0 zero 1 1 0 1 -"},
		{"nan smuggled", "REQ v1 3 p s NaN 0 1 1 0 1 -"},
		{"inf smuggled", "REQ v1 3 p s 0 0 +Inf 1 0 1 -"},
		{"inverted box", "REQ v1 3 p s 5 0 1 1 0 1 -"},
		{"inverted time", "REQ v1 3 p s 0 0 1 1 9 1 -"},
		{"bad escape", "REQ v1 3 p%ZZ s 0 0 1 1 0 1 -"},
		{"empty data field", "REQ v1 3 p s 0 0 1 1 0 1 "},
		{"data without equals", "REQ v1 3 p s 0 0 1 1 0 1 novalue"},
		{"empty data key", "REQ v1 3 p s 0 0 1 1 0 1 =v"},
		{"duplicate data key", "REQ v1 3 p s 0 0 1 1 0 1 a=1&a=2"},
	}
	for _, b := range bad {
		if r, err := ParseRequest(b.frame); err == nil {
			t.Errorf("%s: ParseRequest accepted %q as %+v", b.name, b.frame, r)
		}
	}
}

func TestParseResponseRejects(t *testing.T) {
	for _, frame := range []string{
		"",
		"RESP v1 1 s",
		"RESP v2 1 s -",
		"REQ v1 1 s -",
		"RESP v1 x s -",
		"RESP v1 1 %ZZ -",
		"RESP v1 1 s a=1&a=2",
		"RESP v1 1 %20 -", // service decodes to " " but empty check is on ""
	} {
		_, err := ParseResponse(frame)
		if frame == "RESP v1 1 %20 -" {
			if err != nil {
				t.Errorf("space service should parse (escaped): %v", err)
			}
			continue
		}
		if err == nil {
			t.Errorf("ParseResponse accepted %q", frame)
		}
	}
}

func TestStringFormats(t *testing.T) {
	r := Request{ID: 7, Pseudonym: "p7", Service: "poi", Context: box(0, 0, 10, 10, 5, 25)}
	s := r.String()
	for _, want := range []string{"7", "p7", "poi"} {
		if !strings.Contains(s, want) {
			t.Errorf("Request.String() = %q, missing %q", s, want)
		}
	}
	resp := Response{ID: 7, Service: "poi"}
	if got := resp.String(); !strings.Contains(got, "7") || !strings.Contains(got, "poi") {
		t.Errorf("Response.String() = %q", got)
	}
}
