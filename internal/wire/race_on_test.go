//go:build race

package wire

// raceEnabled reports whether the race detector is compiled in; the
// allocation-count guards skip under it, since instrumentation skews
// testing.AllocsPerRun.
const raceEnabled = true
