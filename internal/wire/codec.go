package wire

import (
	"fmt"
	"math"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"histanon/internal/geo"
)

// Text codec for the TS↔SP channel. One request or response per line:
//
//	REQ v1 <id> <pseudonym> <service> <minx> <miny> <maxx> <maxy> <start> <end> <data>
//	RESP v1 <id> <service> <data>
//
// Pseudonym, service and data are percent-encoded so the frame splits
// unambiguously on single spaces. Data is url.Values-encoded with keys
// sorted, or "-" when empty, making encoding canonical: equal messages
// encode to equal strings. Floats use strconv 'g' with full precision,
// so Encode/Parse round-trips contexts exactly.

const codecVersion = "v1"

// Validate reports whether r is a well-formed request: non-empty
// pseudonym and service, and a valid, finite context box.
func (r *Request) Validate() error {
	if r.Pseudonym == "" {
		return fmt.Errorf("wire: empty pseudonym")
	}
	if r.Service == "" {
		return fmt.Errorf("wire: empty service")
	}
	if !r.Context.Area.Valid() || !r.Context.Time.Valid() {
		return fmt.Errorf("wire: invalid context %v", r.Context)
	}
	for _, v := range []float64{r.Context.Area.MinX, r.Context.Area.MinY, r.Context.Area.MaxX, r.Context.Area.MaxY} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("wire: non-finite context coordinate %v", v)
		}
	}
	return nil
}

// EncodeRequest renders r in the canonical text framing. It fails when
// r does not Validate, so malformed requests cannot leave the TS.
func EncodeRequest(r *Request) (string, error) {
	if err := r.Validate(); err != nil {
		return "", err
	}
	a := r.Context.Area
	return strings.Join([]string{
		"REQ", codecVersion,
		strconv.FormatInt(int64(r.ID), 10),
		url.QueryEscape(string(r.Pseudonym)),
		url.QueryEscape(r.Service),
		formatFloat(a.MinX), formatFloat(a.MinY), formatFloat(a.MaxX), formatFloat(a.MaxY),
		strconv.FormatInt(r.Context.Time.Start, 10),
		strconv.FormatInt(r.Context.Time.End, 10),
		encodeData(r.Data),
	}, " "), nil
}

// ParseRequest is the inverse of EncodeRequest. It rejects anything
// EncodeRequest cannot produce, including non-canonical data encodings
// and contexts that fail Validate.
func ParseRequest(s string) (*Request, error) {
	f := strings.Split(s, " ")
	if len(f) != 12 {
		return nil, fmt.Errorf("wire: request has %d fields, want 12", len(f))
	}
	if f[0] != "REQ" {
		return nil, fmt.Errorf("wire: bad frame tag %q", f[0])
	}
	if f[1] != codecVersion {
		return nil, fmt.Errorf("wire: unsupported version %q", f[1])
	}
	id, err := strconv.ParseInt(f[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("wire: bad msgid %q: %v", f[2], err)
	}
	pseudo, err := unescape(f[3])
	if err != nil {
		return nil, err
	}
	svc, err := unescape(f[4])
	if err != nil {
		return nil, err
	}
	var coords [4]float64
	for i, field := range f[5:9] {
		coords[i], err = parseFloat(field)
		if err != nil {
			return nil, err
		}
	}
	start, err := strconv.ParseInt(f[9], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("wire: bad interval start %q: %v", f[9], err)
	}
	end, err := strconv.ParseInt(f[10], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("wire: bad interval end %q: %v", f[10], err)
	}
	data, err := parseData(f[11])
	if err != nil {
		return nil, err
	}
	r := &Request{
		ID:        MsgID(id),
		Pseudonym: Pseudonym(pseudo),
		Service:   svc,
		Context: geo.STBox{
			Area: geo.Rect{MinX: coords[0], MinY: coords[1], MaxX: coords[2], MaxY: coords[3]},
			Time: geo.Interval{Start: start, End: end},
		},
		Data: data,
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// EncodeResponse renders a response frame.
func EncodeResponse(r *Response) (string, error) {
	if r.Service == "" {
		return "", fmt.Errorf("wire: empty service")
	}
	return strings.Join([]string{
		"RESP", codecVersion,
		strconv.FormatInt(int64(r.ID), 10),
		url.QueryEscape(r.Service),
		encodeData(r.Payload),
	}, " "), nil
}

// ParseResponse is the inverse of EncodeResponse.
func ParseResponse(s string) (*Response, error) {
	f := strings.Split(s, " ")
	if len(f) != 5 {
		return nil, fmt.Errorf("wire: response has %d fields, want 5", len(f))
	}
	if f[0] != "RESP" {
		return nil, fmt.Errorf("wire: bad frame tag %q", f[0])
	}
	if f[1] != codecVersion {
		return nil, fmt.Errorf("wire: unsupported version %q", f[1])
	}
	id, err := strconv.ParseInt(f[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("wire: bad msgid %q: %v", f[2], err)
	}
	svc, err := unescape(f[3])
	if err != nil {
		return nil, err
	}
	if svc == "" {
		return nil, fmt.Errorf("wire: empty service")
	}
	payload, err := parseData(f[4])
	if err != nil {
		return nil, err
	}
	return &Response{ID: MsgID(id), Service: svc, Payload: payload}, nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func parseFloat(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("wire: bad coordinate %q: %v", s, err)
	}
	return v, nil
}

func unescape(s string) (string, error) {
	out, err := url.QueryUnescape(s)
	if err != nil {
		return "", fmt.Errorf("wire: bad escaping in %q: %v", s, err)
	}
	return out, nil
}

// encodeData renders a data map canonically: keys sorted, url-escaped,
// "-" for an empty or nil map.
func encodeData(m map[string]string) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = url.QueryEscape(k) + "=" + url.QueryEscape(m[k])
	}
	return strings.Join(parts, "&")
}

// parseData is the inverse of encodeData. It rejects empty keys and
// duplicate keys (which encodeData cannot produce).
func parseData(s string) (map[string]string, error) {
	if s == "-" {
		return nil, nil
	}
	if s == "" {
		return nil, fmt.Errorf("wire: empty data field (want \"-\")")
	}
	m := map[string]string{}
	for _, pair := range strings.Split(s, "&") {
		k, v, found := strings.Cut(pair, "=")
		if !found {
			return nil, fmt.Errorf("wire: data pair %q has no '='", pair)
		}
		key, err := unescape(k)
		if err != nil {
			return nil, err
		}
		if key == "" {
			return nil, fmt.Errorf("wire: empty data key in %q", pair)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("wire: duplicate data key %q", key)
		}
		val, err := unescape(v)
		if err != nil {
			return nil, err
		}
		m[key] = val
	}
	return m, nil
}
