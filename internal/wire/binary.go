package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"unsafe"

	"histanon/internal/geo"
)

// Binary codec for the wire channel. The text codec (codec.go) stays
// the canonical debug surface; this framing is its byte-exact twin for
// the hot path: one fixed little-endian header per frame, varint ids
// and timestamps, fixed-point coordinates with an IEEE escape hatch so
// every float64 the text codec round-trips, the binary codec
// round-trips too, and a batch frame that coalesces many frames into
// one write. internal/check differential-tests the two codecs against
// each other over the seeded workloads.
//
// Frame layout (all multi-byte integers little-endian):
//
//	offset  size  field
//	0       2     magic 0x48 0x57 ("HW")
//	2       1     version (1)
//	3       1     frame type (FrameType)
//	4       1     flags (bit 0: FlagFixedCoords)
//	5       4     payload length (uint32)
//	9       n     payload
//
// Payload fields are varints (unsigned LEB128, minimal encoding
// enforced; signed values zigzag), length-prefixed strings, and
// coordinates. When FlagFixedCoords is set, every coordinate of the
// frame is a zigzag varint of the value scaled by 2^20 (sub-millimeter
// fixed point); the encoder sets the flag exactly when all coordinates
// of the frame are representable that way without rounding (scaling by
// a power of two is exact), and falls back to 8-byte IEEE-754 bits
// otherwise — so encoding is canonical and parse∘encode is the
// identity on every value, including negative zero, which only the
// IEEE path preserves.
//
// Data maps encode as a varint pair count followed by key/value strings
// with keys in strictly increasing byte order; the parser rejects
// unsorted, duplicate and empty keys, mirroring the text codec's
// canonical "-"/sorted-query encoding.

// Magic are the two bytes opening every binary frame.
var Magic = [2]byte{0x48, 0x57}

// BinaryVersion is the framing version this package encodes and the
// only one it accepts.
const BinaryVersion = 1

// FrameType discriminates the payload of a binary frame.
type FrameType byte

// The binary frame types.
const (
	// FrameRequest carries a Request — the TS→SP channel, the binary
	// twin of the text codec's "REQ" line.
	FrameRequest FrameType = 1
	// FrameResponse carries a Response — the SP→TS answer channel, the
	// binary twin of the text codec's "RESP" line.
	FrameResponse FrameType = 2
	// FrameLocation carries a LocationUpdate — a device position sample
	// on the client→TS ingest channel.
	FrameLocation FrameType = 3
	// FrameServiceCall carries a ServiceCall — a device service request
	// on the client→TS ingest channel.
	FrameServiceCall FrameType = 4
	// FrameDecision carries a DecisionFrame — the TS's audit-relevant
	// verdict on one ServiceCall, returned on the batch channel.
	FrameDecision FrameType = 5
	// FrameBatch wraps a varint frame count and that many complete
	// frames; batches do not nest.
	FrameBatch FrameType = 6
)

// String names the frame type for metrics labels and errors.
func (t FrameType) String() string {
	switch t {
	case FrameRequest:
		return "request"
	case FrameResponse:
		return "response"
	case FrameLocation:
		return "location"
	case FrameServiceCall:
		return "service_call"
	case FrameDecision:
		return "decision"
	case FrameBatch:
		return "batch"
	default:
		return fmt.Sprintf("type_%d", byte(t))
	}
}

// FlagFixedCoords marks a frame whose coordinates are all fixed-point
// varints instead of raw IEEE-754 bits.
const FlagFixedCoords byte = 0x01

// headerSize is the fixed frame header length.
const headerSize = 9

// MaxFrameBytes bounds a single frame's payload; the parser rejects
// larger declared lengths before touching the body, so a hostile
// header cannot force a large read or allocation.
const MaxFrameBytes = 1 << 20

// coordScale is the fixed-point coordinate scale: 2^20 units per meter
// (sub-micrometer resolution), chosen as a power of two so scaling is
// exact for every representable value.
const coordScale = 1 << 20

// coordMaxAbs bounds fixed-point magnitudes to the float64 exact-integer
// range, so int64→float64 on the decode side cannot round.
const coordMaxAbs = 1 << 53

// LocationUpdate is one device position sample on the client→TS ingest
// channel: the binary protocol's equivalent of POST /v1/location.
type LocationUpdate struct {
	User int64
	X, Y float64
	T    int64
}

// Point returns the update's spatio-temporal point.
func (l LocationUpdate) Point() geo.STPoint {
	return geo.STPoint{P: geo.Point{X: l.X, Y: l.Y}, T: l.T}
}

// ServiceCall is one device service request on the client→TS ingest
// channel: the binary protocol's equivalent of POST /v1/request.
// Traceparent optionally carries the W3C trace context the HTTP path
// carries as a header; empty means untraced.
type ServiceCall struct {
	User        int64
	X, Y        float64
	T           int64
	Service     string
	Traceparent string
	Data        map[string]string
}

// DecisionFrame is the audit-relevant subset of a ts.Decision on the
// wire: what the TS did with one ServiceCall. It mirrors the JSON
// DecisionResponse of internal/httpapi field for field.
type DecisionFrame struct {
	Forwarded      bool
	Generalized    bool
	HKAnonymity    bool
	Unlinked       bool
	AtRisk         bool
	Suppressed     bool
	Degraded       bool
	QIDExposed     bool
	MatchedLBQID   string
	DegradedReason string
	TraceID        string
	Pseudonym      string
	// HasContext reports whether Context carries the forwarded
	// generalized ⟨Area, TimeInterval⟩.
	HasContext bool
	Context    geo.STBox
}

// Decision bit positions (varint bitmask, low to high).
const (
	decForwarded = 1 << iota
	decGeneralized
	decHKAnonymity
	decUnlinked
	decAtRisk
	decSuppressed
	decDegraded
	decQIDExposed
	decHasContext
)

// fixedCoord reports whether v is exactly representable in fixed point
// and, if so, its scaled integer value. Negative zero is excluded (the
// integer 0 decodes to +0), as are NaN, infinities and magnitudes whose
// scaled value leaves the float64 exact-integer range.
func fixedCoord(v float64) (int64, bool) {
	if v == 0 {
		return 0, !math.Signbit(v)
	}
	f := v * coordScale
	if math.IsInf(f, 0) || f != math.Trunc(f) || math.Abs(f) > coordMaxAbs {
		return 0, false
	}
	return int64(f), true
}

// fixedCoords reports whether every value is fixed-point representable.
func fixedCoords(vs ...float64) bool {
	for _, v := range vs {
		if _, ok := fixedCoord(v); !ok {
			return false
		}
	}
	return true
}

// zigzag maps signed to unsigned so small magnitudes stay short.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendHeader writes a frame header with a length placeholder and
// returns the buffer plus the offset of the length field.
func appendHeader(dst []byte, typ FrameType, flags byte) ([]byte, int) {
	dst = append(dst, Magic[0], Magic[1], BinaryVersion, byte(typ), flags)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	return dst, lenAt
}

// patchLength fills the header's payload-length field once the payload
// is written.
func patchLength(dst []byte, lenAt int) []byte {
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

// appendUvarint appends v in minimal LEB128.
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// appendVarint appends v zigzagged.
func appendVarint(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, zigzag(v))
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendCoord appends one coordinate under the frame's flag regime.
func appendCoord(dst []byte, v float64, fixed bool) []byte {
	if fixed {
		i, _ := fixedCoord(v)
		return appendVarint(dst, i)
	}
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// appendData appends a data map canonically: varint count, then pairs
// in strictly increasing key order. The sort allocates only when the
// map is non-empty; hot-path frames (location updates) carry none.
func appendData(dst []byte, m map[string]string) []byte {
	dst = appendUvarint(dst, uint64(len(m)))
	if len(m) == 0 {
		return dst
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = appendString(dst, m[k])
	}
	return dst
}

// AppendBinaryRequest appends r as one binary frame. Like the text
// codec's EncodeRequest it fails when r does not Validate, so malformed
// requests cannot leave the TS.
func AppendBinaryRequest(dst []byte, r *Request) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return dst, err
	}
	a := r.Context.Area
	var flags byte
	fixed := fixedCoords(a.MinX, a.MinY, a.MaxX, a.MaxY)
	if fixed {
		flags = FlagFixedCoords
	}
	dst, lenAt := appendHeader(dst, FrameRequest, flags)
	dst = appendVarint(dst, int64(r.ID))
	dst = appendString(dst, string(r.Pseudonym))
	dst = appendString(dst, r.Service)
	dst = appendCoord(dst, a.MinX, fixed)
	dst = appendCoord(dst, a.MinY, fixed)
	dst = appendCoord(dst, a.MaxX, fixed)
	dst = appendCoord(dst, a.MaxY, fixed)
	dst = appendVarint(dst, r.Context.Time.Start)
	dst = appendVarint(dst, r.Context.Time.End)
	dst = appendData(dst, r.Data)
	return patchLength(dst, lenAt), nil
}

// EncodeBinaryRequest renders r as a fresh binary frame.
func EncodeBinaryRequest(r *Request) ([]byte, error) {
	return AppendBinaryRequest(nil, r)
}

// AppendBinaryResponse appends r as one binary frame.
func AppendBinaryResponse(dst []byte, r *Response) ([]byte, error) {
	if r.Service == "" {
		return dst, fmt.Errorf("wire: empty service")
	}
	dst, lenAt := appendHeader(dst, FrameResponse, 0)
	dst = appendVarint(dst, int64(r.ID))
	dst = appendString(dst, r.Service)
	dst = appendData(dst, r.Payload)
	return patchLength(dst, lenAt), nil
}

// EncodeBinaryResponse renders r as a fresh binary frame.
func EncodeBinaryResponse(r *Response) ([]byte, error) {
	return AppendBinaryResponse(nil, r)
}

// AppendLocation appends a position update as one binary frame. It
// never fails: any finite coordinates are encodable, and non-finite
// ones take the IEEE path and are rejected by the parser instead.
func AppendLocation(dst []byte, l LocationUpdate) []byte {
	var flags byte
	fixed := fixedCoords(l.X, l.Y)
	if fixed {
		flags = FlagFixedCoords
	}
	dst, lenAt := appendHeader(dst, FrameLocation, flags)
	dst = appendVarint(dst, l.User)
	dst = appendCoord(dst, l.X, fixed)
	dst = appendCoord(dst, l.Y, fixed)
	dst = appendVarint(dst, l.T)
	return patchLength(dst, lenAt)
}

// AppendServiceCall appends a device service request as one binary
// frame. The service name must be non-empty.
func AppendServiceCall(dst []byte, c ServiceCall) ([]byte, error) {
	if c.Service == "" {
		return dst, fmt.Errorf("wire: empty service")
	}
	var flags byte
	fixed := fixedCoords(c.X, c.Y)
	if fixed {
		flags = FlagFixedCoords
	}
	dst, lenAt := appendHeader(dst, FrameServiceCall, flags)
	dst = appendVarint(dst, c.User)
	dst = appendCoord(dst, c.X, fixed)
	dst = appendCoord(dst, c.Y, fixed)
	dst = appendVarint(dst, c.T)
	dst = appendString(dst, c.Service)
	dst = appendString(dst, c.Traceparent)
	dst = appendData(dst, c.Data)
	return patchLength(dst, lenAt), nil
}

// AppendDecision appends a decision frame.
func AppendDecision(dst []byte, d DecisionFrame) []byte {
	bits := uint64(0)
	set := func(on bool, bit uint64) {
		if on {
			bits |= bit
		}
	}
	set(d.Forwarded, decForwarded)
	set(d.Generalized, decGeneralized)
	set(d.HKAnonymity, decHKAnonymity)
	set(d.Unlinked, decUnlinked)
	set(d.AtRisk, decAtRisk)
	set(d.Suppressed, decSuppressed)
	set(d.Degraded, decDegraded)
	set(d.QIDExposed, decQIDExposed)
	set(d.HasContext, decHasContext)
	var flags byte
	fixed := true
	if d.HasContext {
		a := d.Context.Area
		fixed = fixedCoords(a.MinX, a.MinY, a.MaxX, a.MaxY)
	}
	if fixed {
		flags = FlagFixedCoords
	}
	dst, lenAt := appendHeader(dst, FrameDecision, flags)
	dst = appendUvarint(dst, bits)
	dst = appendString(dst, d.MatchedLBQID)
	dst = appendString(dst, d.DegradedReason)
	dst = appendString(dst, d.TraceID)
	dst = appendString(dst, d.Pseudonym)
	if d.HasContext {
		a := d.Context.Area
		dst = appendCoord(dst, a.MinX, fixed)
		dst = appendCoord(dst, a.MinY, fixed)
		dst = appendCoord(dst, a.MaxX, fixed)
		dst = appendCoord(dst, a.MaxY, fixed)
		dst = appendVarint(dst, d.Context.Time.Start)
		dst = appendVarint(dst, d.Context.Time.End)
	}
	return patchLength(dst, lenAt)
}

// frameReader walks a frame payload with explicit bounds: every read
// checks the remaining length, so a hostile frame can truncate or lie
// about lengths without ever inducing a panic or an over-read past the
// declared payload.
type frameReader struct {
	p   []byte
	off int
}

func (r *frameReader) remaining() int { return len(r.p) - r.off }

// uvarint reads a minimal LEB128 varint.
func (r *frameReader) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	start := r.off
	for {
		if r.off >= len(r.p) {
			return 0, fmt.Errorf("wire: truncated varint")
		}
		b := r.p[r.off]
		r.off++
		if shift == 63 && b > 1 {
			return 0, fmt.Errorf("wire: varint overflows 64 bits")
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			// Minimal encoding: a multi-byte varint may not end in a
			// zero continuation byte (it encodes nothing).
			if b == 0 && r.off-start > 1 {
				return 0, fmt.Errorf("wire: non-minimal varint")
			}
			return v, nil
		}
		shift += 7
		if shift > 63 {
			return 0, fmt.Errorf("wire: varint too long")
		}
	}
}

// varint reads a zigzagged signed varint.
func (r *frameReader) varint() (int64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return unzigzag(u), nil
}

// bytes reads a length-prefixed byte string without copying.
func (r *frameReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, fmt.Errorf("wire: string length %d exceeds remaining payload %d", n, r.remaining())
	}
	b := r.p[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// coord reads one coordinate under the frame's flag regime.
func (r *frameReader) coord(fixed bool) (float64, error) {
	if fixed {
		i, err := r.varint()
		if err != nil {
			return 0, err
		}
		if i > coordMaxAbs || i < -coordMaxAbs {
			return 0, fmt.Errorf("wire: fixed-point coordinate %d out of range", i)
		}
		return float64(i) / coordScale, nil
	}
	if r.remaining() < 8 {
		return 0, fmt.Errorf("wire: truncated coordinate")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.p[r.off:]))
	r.off += 8
	return v, nil
}

// done errors unless the payload was consumed exactly.
func (r *frameReader) done() error {
	if r.off != len(r.p) {
		return fmt.Errorf("wire: %d trailing payload bytes", len(r.p)-r.off)
	}
	return nil
}

// unsafeString views b as a string without copying. The result aliases
// b: it is valid only while the caller keeps b alive and unmodified —
// the contract of the pooled zero-copy parse path.
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// SplitFrame validates one frame header at the front of b and returns
// its type, flags and payload, plus the remainder of b after the
// frame. It never reads past the declared payload.
func SplitFrame(b []byte) (typ FrameType, flags byte, payload, rest []byte, err error) {
	if len(b) < headerSize {
		return 0, 0, nil, nil, fmt.Errorf("wire: frame header needs %d bytes, have %d", headerSize, len(b))
	}
	if b[0] != Magic[0] || b[1] != Magic[1] {
		return 0, 0, nil, nil, fmt.Errorf("wire: bad magic %#x %#x", b[0], b[1])
	}
	if b[2] != BinaryVersion {
		return 0, 0, nil, nil, fmt.Errorf("wire: unsupported binary version %d", b[2])
	}
	typ = FrameType(b[3])
	flags = b[4]
	if flags&^FlagFixedCoords != 0 {
		return 0, 0, nil, nil, fmt.Errorf("wire: unknown flag bits %#x", flags&^FlagFixedCoords)
	}
	n := binary.LittleEndian.Uint32(b[5:9])
	if n > MaxFrameBytes {
		return 0, 0, nil, nil, fmt.Errorf("wire: payload length %d exceeds limit %d", n, MaxFrameBytes)
	}
	if uint64(n) > uint64(len(b)-headerSize) {
		return 0, 0, nil, nil, fmt.Errorf("wire: payload length %d exceeds buffer %d", n, len(b)-headerSize)
	}
	return typ, flags, b[headerSize : headerSize+int(n)], b[headerSize+int(n):], nil
}

// requestDst tells parseRequestPayload where to put the parsed request
// and whether strings must be copied off the input buffer (the
// allocating path) or may alias it (the pooled zero-copy path).
type requestDst struct {
	r       *Request
	scratch map[string]string
	copy    bool
}

func (d requestDst) str(b []byte) string {
	if d.copy {
		return string(b)
	}
	return unsafeString(b)
}

// parseRequestPayload decodes a FrameRequest payload into dst and
// validates the result exactly like the text codec's ParseRequest.
func parseRequestPayload(flags byte, p []byte, dst requestDst) error {
	fixed := flags&FlagFixedCoords != 0
	fr := frameReader{p: p}
	id, err := fr.varint()
	if err != nil {
		return err
	}
	pseudo, err := fr.bytes()
	if err != nil {
		return err
	}
	svc, err := fr.bytes()
	if err != nil {
		return err
	}
	var coords [4]float64
	for i := range coords {
		if coords[i], err = fr.coord(fixed); err != nil {
			return err
		}
	}
	start, err := fr.varint()
	if err != nil {
		return err
	}
	end, err := fr.varint()
	if err != nil {
		return err
	}
	data, err := parseDataInto(&fr, dst)
	if err != nil {
		return err
	}
	if err := fr.done(); err != nil {
		return err
	}
	*dst.r = Request{
		ID:        MsgID(id),
		Pseudonym: Pseudonym(dst.str(pseudo)),
		Service:   dst.str(svc),
		Context: geo.STBox{
			Area: geo.Rect{MinX: coords[0], MinY: coords[1], MaxX: coords[2], MaxY: coords[3]},
			Time: geo.Interval{Start: start, End: end},
		},
		Data: data,
	}
	return dst.r.Validate()
}

// parseDataInto decodes a canonical data map. The allocating path
// builds a fresh map; the pooled path refills dst.scratch. Empty maps
// decode to nil, matching the text codec.
func parseDataInto(fr *frameReader, dst requestDst) (map[string]string, error) {
	n, err := fr.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	// Each pair needs at least two length bytes; reject counts the
	// remaining payload cannot possibly hold before allocating.
	if n > uint64(fr.remaining())/2 {
		return nil, fmt.Errorf("wire: data pair count %d exceeds payload", n)
	}
	var m map[string]string
	if dst.copy {
		m = make(map[string]string, n)
	} else {
		m = dst.scratch
		clear(m)
	}
	var prev []byte
	for i := uint64(0); i < n; i++ {
		k, err := fr.bytes()
		if err != nil {
			return nil, err
		}
		if len(k) == 0 {
			return nil, fmt.Errorf("wire: empty data key")
		}
		if prev != nil && string(prev) >= string(k) {
			return nil, fmt.Errorf("wire: data keys not in strictly increasing order")
		}
		prev = k
		v, err := fr.bytes()
		if err != nil {
			return nil, err
		}
		m[dst.str(k)] = dst.str(v)
	}
	return m, nil
}

// ParseBinaryRequest decodes one complete FrameRequest frame into a
// fresh Request with copied strings. It is the allocating counterpart
// of BinaryRequest.ParseFrame and the exact inverse of
// AppendBinaryRequest.
func ParseBinaryRequest(frame []byte) (*Request, error) {
	typ, flags, payload, rest, err := SplitFrame(frame)
	if err != nil {
		return nil, err
	}
	if typ != FrameRequest {
		return nil, fmt.Errorf("wire: frame type %s, want request", typ)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after frame", len(rest))
	}
	r := new(Request)
	if err := parseRequestPayload(flags, payload, requestDst{r: r, copy: true}); err != nil {
		return nil, err
	}
	return r, nil
}

// ParseBinaryResponse decodes one complete FrameResponse frame.
func ParseBinaryResponse(frame []byte) (*Response, error) {
	typ, _, payload, rest, err := SplitFrame(frame)
	if err != nil {
		return nil, err
	}
	if typ != FrameResponse {
		return nil, fmt.Errorf("wire: frame type %s, want response", typ)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after frame", len(rest))
	}
	return parseResponsePayload(payload)
}

func parseResponsePayload(p []byte) (*Response, error) {
	fr := frameReader{p: p}
	id, err := fr.varint()
	if err != nil {
		return nil, err
	}
	svc, err := fr.bytes()
	if err != nil {
		return nil, err
	}
	if len(svc) == 0 {
		return nil, fmt.Errorf("wire: empty service")
	}
	payload, err := parseDataInto(&fr, requestDst{copy: true})
	if err != nil {
		return nil, err
	}
	if err := fr.done(); err != nil {
		return nil, err
	}
	return &Response{ID: MsgID(id), Service: string(svc), Payload: payload}, nil
}

// ParseLocationPayload decodes a FrameLocation payload. The update is
// returned by value and carries no references into the payload, so the
// parse allocates nothing.
func ParseLocationPayload(flags byte, p []byte) (LocationUpdate, error) {
	fixed := flags&FlagFixedCoords != 0
	fr := frameReader{p: p}
	var l LocationUpdate
	var err error
	if l.User, err = fr.varint(); err != nil {
		return l, err
	}
	if l.X, err = fr.coord(fixed); err != nil {
		return l, err
	}
	if l.Y, err = fr.coord(fixed); err != nil {
		return l, err
	}
	if l.T, err = fr.varint(); err != nil {
		return l, err
	}
	if err := fr.done(); err != nil {
		return l, err
	}
	if math.IsNaN(l.X) || math.IsInf(l.X, 0) || math.IsNaN(l.Y) || math.IsInf(l.Y, 0) {
		return l, fmt.Errorf("wire: non-finite location coordinate")
	}
	return l, nil
}

// ParseLocation decodes one complete FrameLocation frame.
func ParseLocation(frame []byte) (LocationUpdate, error) {
	typ, flags, payload, rest, err := SplitFrame(frame)
	if err != nil {
		return LocationUpdate{}, err
	}
	if typ != FrameLocation {
		return LocationUpdate{}, fmt.Errorf("wire: frame type %s, want location", typ)
	}
	if len(rest) != 0 {
		return LocationUpdate{}, fmt.Errorf("wire: %d trailing bytes after frame", len(rest))
	}
	return ParseLocationPayload(flags, payload)
}

// ParseServiceCallPayload decodes a FrameServiceCall payload into a
// fresh ServiceCall with copied strings — the ingest path hands the
// result to the TS pipeline, which may retain it beyond the buffer's
// lifetime, so aliasing is not an option here.
func ParseServiceCallPayload(flags byte, p []byte) (ServiceCall, error) {
	fixed := flags&FlagFixedCoords != 0
	fr := frameReader{p: p}
	var c ServiceCall
	var err error
	if c.User, err = fr.varint(); err != nil {
		return c, err
	}
	if c.X, err = fr.coord(fixed); err != nil {
		return c, err
	}
	if c.Y, err = fr.coord(fixed); err != nil {
		return c, err
	}
	if c.T, err = fr.varint(); err != nil {
		return c, err
	}
	svc, err := fr.bytes()
	if err != nil {
		return c, err
	}
	if len(svc) == 0 {
		return c, fmt.Errorf("wire: empty service")
	}
	tp, err := fr.bytes()
	if err != nil {
		return c, err
	}
	c.Data, err = parseDataInto(&fr, requestDst{copy: true})
	if err != nil {
		return c, err
	}
	if err := fr.done(); err != nil {
		return c, err
	}
	if math.IsNaN(c.X) || math.IsInf(c.X, 0) || math.IsNaN(c.Y) || math.IsInf(c.Y, 0) {
		return c, fmt.Errorf("wire: non-finite service-call coordinate")
	}
	c.Service = string(svc)
	c.Traceparent = string(tp)
	return c, nil
}

// ParseServiceCall decodes one complete FrameServiceCall frame.
func ParseServiceCall(frame []byte) (ServiceCall, error) {
	typ, flags, payload, rest, err := SplitFrame(frame)
	if err != nil {
		return ServiceCall{}, err
	}
	if typ != FrameServiceCall {
		return ServiceCall{}, fmt.Errorf("wire: frame type %s, want service_call", typ)
	}
	if len(rest) != 0 {
		return ServiceCall{}, fmt.Errorf("wire: %d trailing bytes after frame", len(rest))
	}
	return ParseServiceCallPayload(flags, payload)
}

// ParseDecisionPayload decodes a FrameDecision payload.
func ParseDecisionPayload(flags byte, p []byte) (DecisionFrame, error) {
	fixed := flags&FlagFixedCoords != 0
	fr := frameReader{p: p}
	var d DecisionFrame
	bits, err := fr.uvarint()
	if err != nil {
		return d, err
	}
	if bits >= decHasContext<<1 {
		return d, fmt.Errorf("wire: unknown decision bits %#x", bits)
	}
	d.Forwarded = bits&decForwarded != 0
	d.Generalized = bits&decGeneralized != 0
	d.HKAnonymity = bits&decHKAnonymity != 0
	d.Unlinked = bits&decUnlinked != 0
	d.AtRisk = bits&decAtRisk != 0
	d.Suppressed = bits&decSuppressed != 0
	d.Degraded = bits&decDegraded != 0
	d.QIDExposed = bits&decQIDExposed != 0
	d.HasContext = bits&decHasContext != 0
	read := func() (string, error) {
		b, err := fr.bytes()
		return string(b), err
	}
	if d.MatchedLBQID, err = read(); err != nil {
		return d, err
	}
	if d.DegradedReason, err = read(); err != nil {
		return d, err
	}
	if d.TraceID, err = read(); err != nil {
		return d, err
	}
	if d.Pseudonym, err = read(); err != nil {
		return d, err
	}
	if d.HasContext {
		var coords [4]float64
		for i := range coords {
			if coords[i], err = fr.coord(fixed); err != nil {
				return d, err
			}
		}
		start, err := fr.varint()
		if err != nil {
			return d, err
		}
		end, err := fr.varint()
		if err != nil {
			return d, err
		}
		d.Context = geo.STBox{
			Area: geo.Rect{MinX: coords[0], MinY: coords[1], MaxX: coords[2], MaxY: coords[3]},
			Time: geo.Interval{Start: start, End: end},
		}
	}
	if err := fr.done(); err != nil {
		return d, err
	}
	return d, nil
}

// ParseDecision decodes one complete FrameDecision frame.
func ParseDecision(frame []byte) (DecisionFrame, error) {
	typ, flags, payload, rest, err := SplitFrame(frame)
	if err != nil {
		return DecisionFrame{}, err
	}
	if typ != FrameDecision {
		return DecisionFrame{}, fmt.Errorf("wire: frame type %s, want decision", typ)
	}
	if len(rest) != 0 {
		return DecisionFrame{}, fmt.Errorf("wire: %d trailing bytes after frame", len(rest))
	}
	return ParseDecisionPayload(flags, payload)
}

// BinaryRequest is a pooled, zero-copy parsed request: ParseFrame fills
// the embedded Request with strings that alias the input frame and a
// data map recycled across uses, so the parse path allocates nothing.
// The parsed Request is valid only until Release or the next ParseFrame,
// and only while the caller keeps the frame buffer alive and unmodified.
// Callers that need the request beyond that window must deep-copy it.
type BinaryRequest struct {
	Request
	// scratch is the recycled data map; Request.Data points at it when
	// the frame carries data and is nil otherwise (matching the text
	// codec's nil-for-empty convention).
	scratch map[string]string
}

// binaryRequestPool recycles BinaryRequests for the zero-alloc parse
// path.
var binaryRequestPool = sync.Pool{
	New: func() any { return &BinaryRequest{scratch: make(map[string]string, 8)} },
}

// AcquireBinaryRequest returns a pooled request for ParseFrame; pair it
// with Release.
func AcquireBinaryRequest() *BinaryRequest {
	return binaryRequestPool.Get().(*BinaryRequest)
}

// Release clears the request (dropping every reference into the last
// frame) and returns it to the pool. The request must not be used
// afterwards.
func (b *BinaryRequest) Release() {
	clear(b.scratch)
	b.Request = Request{}
	binaryRequestPool.Put(b)
}

// ParseFrame decodes one complete FrameRequest frame into b without
// allocating: strings alias the frame and the data map is recycled.
// See the type comment for the aliasing contract.
func (b *BinaryRequest) ParseFrame(frame []byte) error {
	typ, flags, payload, rest, err := SplitFrame(frame)
	if err != nil {
		return err
	}
	if typ != FrameRequest {
		return fmt.Errorf("wire: frame type %s, want request", typ)
	}
	if len(rest) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after frame", len(rest))
	}
	return b.parsePayload(flags, payload)
}

// parsePayload is ParseFrame below the header, for batch decoders that
// already split the frame.
func (b *BinaryRequest) parsePayload(flags byte, payload []byte) error {
	return parseRequestPayload(flags, payload, requestDst{r: &b.Request, scratch: b.scratch})
}
