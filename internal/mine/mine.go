// Package mine derives candidate LBQIDs from historical movement data.
//
// The paper leaves derivation as an open problem but sketches the
// method (§4): "the derivation process will have to be based on
// statistical analysis of the data about users movement history: If a
// certain pattern turns out to be very common for many users, it is
// unlikely to be useful for identifying any one of them", and suggests
// the trusted server "is probably a good candidate to offer tools for
// LBQID definition".
//
// The miner implements that sketch in three stages:
//
//  1. Haunt extraction: per user, bucket location samples into
//     (spatial cell × time-of-day slot) bins and keep the bins the user
//     occupies on many distinct days — their recurring haunts.
//  2. Sequencing: order a user's haunts by slot and chain the ones that
//     recur on the same days into a candidate element sequence, with a
//     recurrence formula fitted from the observed day counts.
//  3. Distinctiveness filtering: drop candidates whose haunt sets are
//     shared by many other users (a pattern common to the crowd cannot
//     identify anyone).
package mine

import (
	"fmt"
	"sort"

	"histanon/internal/geo"
	"histanon/internal/lbqid"
	"histanon/internal/phl"
	"histanon/internal/tgran"
)

// Config tunes the miner.
type Config struct {
	// CellSize is the spatial bin side in meters. Zero means 500.
	CellSize float64
	// SlotLen is the time-of-day bin length in seconds. Zero means one
	// hour.
	SlotLen int64
	// MinDays is the minimum number of distinct days a bin must recur on
	// to count as a haunt. Zero means 3.
	MinDays int
	// MaxSharers is the maximum number of *other* users allowed to share
	// a candidate's full haunt sequence before it is discarded as
	// non-identifying. Zero means 2.
	MaxSharers int
	// MinElements is the minimum sequence length of a reported
	// candidate. Zero means 2.
	MinElements int
	// MaxElements caps the sequence length (real LBQIDs are short:
	// the paper's Example 2 has four elements). Zero means 6.
	MaxElements int
	// WeekdaysOnly restricts mining to business days, matching the
	// commute patterns of the paper's examples.
	WeekdaysOnly bool
}

func (c Config) cellSize() float64 {
	if c.CellSize == 0 {
		return 500
	}
	return c.CellSize
}

func (c Config) slotLen() int64 {
	if c.SlotLen == 0 {
		return tgran.Hour
	}
	return c.SlotLen
}

func (c Config) minDays() int {
	if c.MinDays == 0 {
		return 3
	}
	return c.MinDays
}

func (c Config) maxSharers() int {
	if c.MaxSharers == 0 {
		return 2
	}
	return c.MaxSharers
}

func (c Config) minElements() int {
	if c.MinElements == 0 {
		return 2
	}
	return c.MinElements
}

func (c Config) maxElements() int {
	if c.MaxElements == 0 {
		return 6
	}
	return c.MaxElements
}

// Candidate is a mined quasi-identifier with its supporting statistics.
type Candidate struct {
	// User the pattern belongs to.
	User phl.UserID
	// Pattern is the derived LBQID (validated).
	Pattern *lbqid.LBQID
	// SupportDays is how many distinct days exhibit the full sequence.
	SupportDays int
	// Sharers counts the other users whose histories also contain every
	// haunt of the sequence — the pattern's commonality.
	Sharers int
}

// haunt is one recurring (cell, slot) bin of a user.
type haunt struct {
	cellX, cellY int64
	slot         int64
	days         map[int64]bool // distinct day indexes observed
}

func (h *haunt) key() hauntKey { return hauntKey{h.cellX, h.cellY, h.slot} }

type hauntKey struct {
	cellX, cellY int64
	slot         int64
}

// Mine analyzes every user's history in the store and returns the
// distinctive recurring patterns, ordered by user then support.
func Mine(store phl.Storer, cfg Config) []Candidate {
	users := store.Users()
	// Stage 1: haunts per user.
	haunts := make(map[phl.UserID]map[hauntKey]*haunt, len(users))
	for _, u := range users {
		haunts[u] = extractHaunts(store.History(u), cfg)
	}

	// Occupancy index for stage 3: which users ever visit each bin (on
	// enough days to count as *their* haunt).
	occupants := map[hauntKey]map[phl.UserID]bool{}
	for u, hs := range haunts {
		for k := range hs {
			if occupants[k] == nil {
				occupants[k] = map[phl.UserID]bool{}
			}
			occupants[k][u] = true
		}
	}

	var out []Candidate
	for _, u := range users {
		cand, ok := sequence(u, haunts[u], cfg)
		if !ok {
			continue
		}
		// Stage 3: distinctiveness. A different user shares the pattern
		// when every bin of the sequence is also one of their haunts.
		sharers := 0
		for _, other := range users {
			if other == u {
				continue
			}
			shared := true
			for _, k := range cand.keys {
				if !occupants[k][other] {
					shared = false
					break
				}
			}
			if shared {
				sharers++
			}
		}
		if sharers > cfg.maxSharers() {
			continue
		}
		cand.c.Sharers = sharers
		out = append(out, cand.c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].SupportDays > out[j].SupportDays
	})
	return out
}

// extractHaunts bins one history and keeps the recurring bins.
func extractHaunts(h *phl.History, cfg Config) map[hauntKey]*haunt {
	out := map[hauntKey]*haunt{}
	if h == nil {
		return out
	}
	cell := cfg.cellSize()
	slotLen := cfg.slotLen()
	for _, p := range h.Points() {
		day := floorDiv(p.T, tgran.Day)
		if cfg.WeekdaysOnly && mod64(day, 7) >= 5 {
			continue
		}
		k := hauntKey{
			cellX: int64(p.P.X / cell),
			cellY: int64(p.P.Y / cell),
			slot:  mod64(p.T, tgran.Day) / slotLen,
		}
		hh, ok := out[k]
		if !ok {
			hh = &haunt{cellX: k.cellX, cellY: k.cellY, slot: k.slot, days: map[int64]bool{}}
			out[k] = hh
		}
		hh.days[day] = true
	}
	for k, hh := range out {
		if len(hh.days) < cfg.minDays() {
			delete(out, k)
		}
	}
	return out
}

type sequenced struct {
	c    Candidate
	keys []hauntKey
}

// sequence chains a user's haunts into an LBQID candidate: haunts are
// ordered by slot, only those sharing enough common days are kept, and
// the recurrence is fitted from the common-day distribution.
func sequence(u phl.UserID, hs map[hauntKey]*haunt, cfg Config) (sequenced, bool) {
	if len(hs) == 0 {
		return sequenced{}, false
	}
	ordered := make([]*haunt, 0, len(hs))
	for _, h := range hs {
		ordered = append(ordered, h)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].slot != ordered[j].slot {
			return ordered[i].slot < ordered[j].slot
		}
		if ordered[i].cellX != ordered[j].cellX {
			return ordered[i].cellX < ordered[j].cellX
		}
		return ordered[i].cellY < ordered[j].cellY
	})

	// Greedy chain: start from the most-recurring haunt, then extend
	// with later-slot haunts that share most of its days.
	best := ordered[0]
	for _, h := range ordered {
		if len(h.days) > len(best.days) {
			best = h
		}
	}
	chain := []*haunt{best}
	common := copyDays(best.days)
	for _, h := range ordered {
		if len(chain) >= cfg.maxElements() {
			break
		}
		if h == best || h.slot <= chain[len(chain)-1].slot {
			continue
		}
		// Staying put is not movement: consecutive haunts in the same
		// cell add no identifying structure, only length.
		last := chain[len(chain)-1]
		if h.cellX == last.cellX && h.cellY == last.cellY {
			continue
		}
		inter := intersectDays(common, h.days)
		if len(inter) >= cfg.minDays() {
			chain = append(chain, h)
			common = inter
		}
	}
	if len(chain) < cfg.minElements() {
		return sequenced{}, false
	}

	// Fit the recurrence: observations must fall on one day, recur on
	// daysPerWeek distinct weekdays, over weeks weeks.
	weeks := map[int64]int{}
	for d := range common {
		weeks[floorDiv(d, 7)]++
	}
	daysPerWeek := len(common)
	numWeeks := 0
	for _, n := range weeks {
		if n < daysPerWeek {
			daysPerWeek = n
		}
	}
	for _, n := range weeks {
		if n >= daysPerWeek {
			numWeeks++
		}
	}
	if daysPerWeek < 1 {
		daysPerWeek = 1
	}
	if numWeeks < 1 {
		numWeeks = 1
	}

	granName := "Days"
	if cfg.WeekdaysOnly {
		granName = "Weekdays"
	}
	rec, err := tgran.ParseRecurrence(
		fmt.Sprintf("%d.%s * %d.Weeks", daysPerWeek, granName, numWeeks))
	if err != nil {
		return sequenced{}, false
	}

	q := &lbqid.LBQID{
		Name:       fmt.Sprintf("mined-u%d", int64(u)),
		Recurrence: rec,
	}
	cell := cfg.cellSize()
	slotLen := cfg.slotLen()
	var keys []hauntKey
	for i, h := range chain {
		q.Elements = append(q.Elements, lbqid.Element{
			Name: fmt.Sprintf("haunt%d", i),
			Area: geo.Rect{
				MinX: float64(h.cellX) * cell, MinY: float64(h.cellY) * cell,
				MaxX: float64(h.cellX+1) * cell, MaxY: float64(h.cellY+1) * cell,
			},
			Window: tgran.NewUInterval(h.slot*slotLen, (h.slot+1)*slotLen-1),
		})
		keys = append(keys, h.key())
	}
	if err := q.Validate(); err != nil {
		return sequenced{}, false
	}
	return sequenced{
		c:    Candidate{User: u, Pattern: q, SupportDays: len(common)},
		keys: keys,
	}, true
}

func copyDays(m map[int64]bool) map[int64]bool {
	out := make(map[int64]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func intersectDays(a, b map[int64]bool) map[int64]bool {
	out := map[int64]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func mod64(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}
