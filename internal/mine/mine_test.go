package mine

import (
	"testing"

	"histanon/internal/geo"
	"histanon/internal/lbqid"
	"histanon/internal/mobility"
	"histanon/internal/phl"
	"histanon/internal/tgran"
)

func pt(x, y float64, t int64) geo.STPoint {
	return geo.STPoint{P: geo.Point{X: x, Y: y}, T: t}
}

// commuteStore builds: user 0 commutes home(100,100)@8h → office(3100,100)@9h
// on weekdays for `weeks` weeks; `mirrors` other users do the identical
// commute; remaining users wander elsewhere.
func commuteStore(weeks int, mirrors, wanderers int) *phl.Store {
	s := phl.NewStore()
	record := func(u phl.UserID, days int64) {
		for d := int64(0); d < days; d++ {
			if d%7 >= 5 {
				continue
			}
			s.Record(u, pt(100, 100, d*tgran.Day+8*tgran.Hour+600))
			s.Record(u, pt(3100, 100, d*tgran.Day+9*tgran.Hour+600))
		}
	}
	days := int64(weeks) * 7
	record(0, days)
	for m := 1; m <= mirrors; m++ {
		record(phl.UserID(m), days)
	}
	for w := 0; w < wanderers; w++ {
		u := phl.UserID(100 + w)
		for d := int64(0); d < days; d++ {
			s.Record(u, pt(6000+float64(w)*600, 6000, d*tgran.Day+14*tgran.Hour))
		}
	}
	return s
}

func TestMineFindsCommute(t *testing.T) {
	s := commuteStore(2, 0, 3)
	cands := Mine(s, Config{WeekdaysOnly: true})
	var mine *Candidate
	for i := range cands {
		if cands[i].User == 0 {
			mine = &cands[i]
			break
		}
	}
	if mine == nil {
		t.Fatalf("no candidate for user 0: %+v", cands)
	}
	q := mine.Pattern
	if len(q.Elements) < 2 {
		t.Fatalf("expected a 2+ element sequence, got %d", len(q.Elements))
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("mined pattern invalid: %v", err)
	}
	// The mined pattern must actually match the user's own history.
	m := lbqid.NewMatcher(q)
	var id lbqid.RequestID
	for _, p := range s.History(0).Points() {
		id++
		m.Offer(id, p)
	}
	if !m.Satisfied() {
		t.Fatalf("mined pattern does not match its own history: %s (obs=%d progress=%d)",
			q, m.Observations(), m.Progress())
	}
	if mine.SupportDays < 10 {
		t.Fatalf("support=%d want 10 weekdays", mine.SupportDays)
	}
	if mine.Sharers != 0 {
		t.Fatalf("sharers=%d want 0", mine.Sharers)
	}
}

func TestMineDropsCommonPatterns(t *testing.T) {
	// User 0's commute is shared by five mirrors: with MaxSharers 2 the
	// pattern is non-identifying and must be dropped for everyone who
	// shares it.
	s := commuteStore(2, 5, 0)
	cands := Mine(s, Config{WeekdaysOnly: true, MaxSharers: 2})
	for _, c := range cands {
		if c.User <= 5 {
			t.Fatalf("shared commute must be dropped, got candidate for %v (sharers=%d)",
				c.User, c.Sharers)
		}
	}
	// Raising the tolerance re-admits it.
	cands = Mine(s, Config{WeekdaysOnly: true, MaxSharers: 10})
	found := false
	for _, c := range cands {
		if c.User == 0 {
			found = true
			if c.Sharers != 5 {
				t.Fatalf("sharers=%d want 5", c.Sharers)
			}
		}
	}
	if !found {
		t.Fatal("candidate missing at MaxSharers=10")
	}
}

func TestMineRequiresRecurrence(t *testing.T) {
	// A single visit never forms a haunt.
	s := phl.NewStore()
	s.Record(0, pt(100, 100, 8*tgran.Hour))
	s.Record(0, pt(3100, 100, 9*tgran.Hour))
	if cands := Mine(s, Config{}); len(cands) != 0 {
		t.Fatalf("one day of data must not produce candidates: %+v", cands)
	}
}

func TestMineWeekendFilter(t *testing.T) {
	// Weekend-only visits disappear under WeekdaysOnly.
	s := phl.NewStore()
	for wk := int64(0); wk < 4; wk++ {
		s.Record(0, pt(100, 100, (wk*7+5)*tgran.Day+10*tgran.Hour)) // Saturdays
		s.Record(0, pt(600, 100, (wk*7+5)*tgran.Day+12*tgran.Hour))
	}
	if cands := Mine(s, Config{WeekdaysOnly: true}); len(cands) != 0 {
		t.Fatalf("weekend pattern must be filtered: %+v", cands)
	}
	if cands := Mine(s, Config{}); len(cands) == 0 {
		t.Fatal("without the filter the Saturday pattern must be found")
	}
}

func TestMineOnSyntheticCity(t *testing.T) {
	// End-to-end: the miner must rediscover commute-like patterns in the
	// mobility generator's output, and each mined pattern must match its
	// owner's history.
	cfg := mobility.DefaultConfig()
	cfg.Users = 40
	cfg.Days = 14
	world := mobility.Generate(cfg)
	store := phl.NewStore()
	for _, ev := range world.Events {
		store.Record(ev.User, ev.Point)
	}
	cands := Mine(store, Config{WeekdaysOnly: true, MinDays: 4, MaxSharers: 3})
	if len(cands) == 0 {
		t.Fatal("expected mined candidates from the synthetic city")
	}
	for _, c := range cands {
		m := lbqid.NewMatcher(c.Pattern)
		var id lbqid.RequestID
		for _, p := range store.History(c.User).Points() {
			id++
			m.Offer(id, p)
		}
		if m.Observations() == 0 {
			t.Fatalf("pattern %q never observed in its own history", c.Pattern.Name)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.cellSize() != 500 || c.slotLen() != tgran.Hour || c.minDays() != 3 ||
		c.maxSharers() != 2 || c.minElements() != 2 {
		t.Fatal("defaults wrong")
	}
}

func TestMineMaxElementsCap(t *testing.T) {
	// A user visiting a different cell every hour would chain dozens of
	// elements without the cap.
	s := phl.NewStore()
	for d := int64(0); d < 5; d++ {
		for h := int64(6); h < 20; h++ {
			s.Record(0, pt(float64(h)*600, 100, d*tgran.Day+h*tgran.Hour+60))
		}
	}
	cands := Mine(s, Config{MaxElements: 4})
	if len(cands) != 1 {
		t.Fatalf("candidates: %d", len(cands))
	}
	if got := len(cands[0].Pattern.Elements); got > 4 {
		t.Fatalf("elements=%d exceeds cap", got)
	}
	// Default cap is 6.
	cands = Mine(s, Config{})
	if got := len(cands[0].Pattern.Elements); got > 6 {
		t.Fatalf("elements=%d exceeds default cap", got)
	}
}

func TestMineConsecutiveSameCellDeduped(t *testing.T) {
	// Idling in one cell across many hours must not chain into a long
	// same-cell sequence.
	s := phl.NewStore()
	for d := int64(0); d < 5; d++ {
		for h := int64(8); h < 18; h++ {
			s.Record(0, pt(100, 100, d*tgran.Day+h*tgran.Hour))
		}
		s.Record(0, pt(3000, 100, d*tgran.Day+19*tgran.Hour))
	}
	cands := Mine(s, Config{})
	if len(cands) != 1 {
		t.Fatalf("candidates: %d", len(cands))
	}
	q := cands[0].Pattern
	if len(q.Elements) != 2 {
		t.Fatalf("same-cell idling not deduped: %d elements\n%s", len(q.Elements), q.Spec())
	}
}
