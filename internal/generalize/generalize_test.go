package generalize

import (
	"math/rand"
	"testing"

	"histanon/internal/anon"
	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/stindex"
)

func pt(x, y float64, t int64) geo.STPoint {
	return geo.STPoint{P: geo.Point{X: x, Y: y}, T: t}
}

// buildDB returns a store+index pair filled by fn.
func buildDB(fn func(add func(u phl.UserID, p geo.STPoint))) *Generalizer {
	store := phl.NewStore()
	idx := stindex.NewGrid(200, 600)
	fn(func(u phl.UserID, p geo.STPoint) {
		store.Record(u, p)
		idx.Insert(u, p)
	})
	return &Generalizer{Index: idx, Store: store, Metric: geo.STMetric{TimeScale: 1}}
}

// clusterDB places the issuer (user 0) at the origin with n neighbors at
// increasing distances, all near t=0.
func clusterDB(n int) *Generalizer {
	return buildDB(func(add func(phl.UserID, geo.STPoint)) {
		add(0, pt(0, 0, 0))
		for i := 1; i <= n; i++ {
			add(phl.UserID(i), pt(float64(10*i), 0, int64(i)))
		}
	})
}

func TestFirstElementBasics(t *testing.T) {
	g := clusterDB(6)
	q := pt(0, 0, 0)
	res, ok := g.FirstElement(q, 0, 4, Unlimited)
	if !ok {
		t.Fatal("expected success")
	}
	if !res.HKAnonymity {
		t.Fatal("unlimited tolerance must preserve anonymity")
	}
	if len(res.Users) != 3 || len(res.Points) != 3 {
		t.Fatalf("selected %d users, want k-1=3", len(res.Users))
	}
	if !res.Box.Contains(q) {
		t.Fatalf("box %v must contain the request point", res.Box)
	}
	for i, p := range res.Points {
		if !res.Box.Contains(p) {
			t.Fatalf("box misses witness point %d: %v", i, p)
		}
		if res.Users[i] == 0 {
			t.Fatal("issuer selected as its own witness")
		}
	}
	// Nearest-first selection: users 1,2,3.
	want := map[phl.UserID]bool{1: true, 2: true, 3: true}
	for _, u := range res.Users {
		if !want[u] {
			t.Fatalf("unexpected witness %v", u)
		}
	}
	// The box certifies historical k-anonymity for the single request.
	if !anon.SatisfiesHistoricalK(g.Store, 0, []geo.STBox{res.Box}, 4) {
		t.Fatal("box must satisfy historical 4-anonymity")
	}
}

func TestFirstElementInsufficientUsers(t *testing.T) {
	g := clusterDB(2)
	if _, ok := g.FirstElement(pt(0, 0, 0), 0, 5, Unlimited); ok {
		t.Fatal("only 2 other users exist; k=5 must fail")
	}
	if _, ok := g.FirstElement(pt(0, 0, 0), 0, 0, Unlimited); ok {
		t.Fatal("k=0 is invalid")
	}
	// k=1 means no witnesses needed: the degenerate box around q.
	res, ok := g.FirstElement(pt(0, 0, 0), 0, 1, Unlimited)
	if !ok || len(res.Users) != 0 || res.Box.Area.Area() != 0 {
		t.Fatalf("k=1: %+v ok=%v", res, ok)
	}
}

func TestFirstElementToleranceClamp(t *testing.T) {
	g := clusterDB(6)
	q := pt(0, 0, 0)
	tol := Tolerance{MaxWidth: 15, MaxHeight: 15, MaxDuration: 1}
	res, ok := g.FirstElement(q, 0, 4, tol)
	if !ok {
		t.Fatal("expected a (clamped) result")
	}
	if res.HKAnonymity {
		t.Fatal("witnesses span 30m; 15m tolerance must fail anonymity")
	}
	if !tol.Allows(res.Box) {
		t.Fatalf("clamped box %v exceeds tolerance", res.Box)
	}
	if !res.Box.Contains(q) {
		t.Fatalf("clamped box %v lost the request point", res.Box)
	}
}

func TestNextElement(t *testing.T) {
	g := buildDB(func(add func(phl.UserID, geo.STPoint)) {
		// Two witnesses with samples near the evening location.
		add(1, pt(0, 0, 0))
		add(1, pt(1000, 0, 3600))
		add(2, pt(5, 5, 10))
		add(2, pt(1010, 5, 3650))
	})
	q := pt(1005, 0, 3620)
	res := g.NextElement(q, []phl.UserID{1, 2}, Unlimited)
	if !res.HKAnonymity || len(res.Users) != 2 {
		t.Fatalf("result: %+v", res)
	}
	if !res.Box.Contains(q) {
		t.Fatal("box must contain the request point")
	}
	// The evening samples, not the morning ones, must be selected.
	for _, p := range res.Points {
		if p.T < 3000 {
			t.Fatalf("selected a morning sample %v", p)
		}
	}
}

func TestNextElementDropsUnknownUsers(t *testing.T) {
	g := buildDB(func(add func(phl.UserID, geo.STPoint)) {
		add(1, pt(0, 0, 0))
	})
	res := g.NextElement(pt(0, 0, 0), []phl.UserID{1, 99}, Unlimited)
	if len(res.Users) != 1 || res.Users[0] != 1 {
		t.Fatalf("users: %v", res.Users)
	}
}

func TestToleranceAllows(t *testing.T) {
	b := geo.STBox{
		Area: geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 50},
		Time: geo.Interval{Start: 0, End: 60},
	}
	cases := []struct {
		tol  Tolerance
		want bool
	}{
		{Unlimited, true},
		{Tolerance{MaxWidth: 100, MaxHeight: 50, MaxDuration: 60}, true},
		{Tolerance{MaxWidth: 99}, false},
		{Tolerance{MaxHeight: 49}, false},
		{Tolerance{MaxDuration: 59}, false},
		{Tolerance{MaxWidth: 1000, MaxHeight: 1000, MaxDuration: 1000}, true},
	}
	for i, c := range cases {
		if got := c.tol.Allows(b); got != c.want {
			t.Errorf("case %d: Allows=%v want %v", i, got, c.want)
		}
	}
}

func TestDecayScheduleKAt(t *testing.T) {
	d := DecaySchedule{Target: 5, Initial: 10, Step: 2}
	want := []int{10, 8, 6, 5, 5, 5}
	for i, w := range want {
		if got := d.kAt(i); got != w {
			t.Errorf("kAt(%d)=%d want %d", i, got, w)
		}
	}
	// Defaults: Initial<Target is lifted, Step 0 means 1.
	d = DecaySchedule{Target: 5}
	if d.kAt(0) != 5 || d.kAt(3) != 5 {
		t.Error("default schedule must stay at Target")
	}
	d = DecaySchedule{Target: 3, Initial: 6}
	if d.kAt(1) != 5 || d.kAt(2) != 4 || d.kAt(9) != 3 {
		t.Errorf("unit-step decay wrong: %d %d %d", d.kAt(1), d.kAt(2), d.kAt(9))
	}
}

// traceDB builds commuters: users 0..n-1 all move from a home cluster to
// an office cluster; users n..2n-1 stay home. The issuer is user 0.
func traceDB(n int) *Generalizer {
	return buildDB(func(add func(phl.UserID, geo.STPoint)) {
		for i := 0; i < n; i++ {
			u := phl.UserID(i)
			add(u, pt(float64(5*i), 0, int64(i)))           // home, ~t0
			add(u, pt(2000+float64(5*i), 0, 3600+int64(i))) // office, ~t1
			add(u, pt(float64(5*i), 0, 2*3600+int64(i)))    // home, ~t2
		}
		for i := n; i < 2*n; i++ {
			add(phl.UserID(i), pt(float64(5*i), 0, int64(i))) // home only
		}
	})
}

func TestSessionPreservesHistoricalK(t *testing.T) {
	g := traceDB(8)
	const k = 4
	s := NewSession(g, 0, DecaySchedule{Target: k})
	trace := []geo.STPoint{pt(0, 0, 0), pt(2000, 0, 3600), pt(0, 0, 7200)}
	var boxes []geo.STBox
	for i, q := range trace {
		res, ok := s.Generalize(q, Unlimited)
		if !ok {
			t.Fatalf("step %d failed", i)
		}
		if !res.HKAnonymity {
			t.Fatalf("step %d lost anonymity: %+v", i, res)
		}
		boxes = append(boxes, res.Box)
	}
	if !anon.SatisfiesHistoricalK(g.Store, 0, boxes, k) {
		t.Fatal("all-green session must certify historical k-anonymity")
	}
	if got := anon.HistoricalLevel(g.Store, 0, boxes); got < k {
		t.Fatalf("historical level %d < k=%d", got, k)
	}
}

func TestSessionDecayNarrowsWitnesses(t *testing.T) {
	g := traceDB(12)
	s := NewSession(g, 0, DecaySchedule{Target: 3, Initial: 8, Step: 2})
	trace := []geo.STPoint{pt(0, 0, 0), pt(2000, 0, 3600), pt(0, 0, 7200), pt(2000, 0, 3605)}
	sizes := []int{}
	prev := map[phl.UserID]bool{}
	for i, q := range trace {
		res, ok := s.Generalize(q, Unlimited)
		if !ok {
			t.Fatalf("step %d failed", i)
		}
		sizes = append(sizes, len(res.Users))
		// Witness sets must only shrink (never introduce a new user).
		if i > 0 {
			for _, u := range res.Users {
				if !prev[u] {
					t.Fatalf("step %d introduced new witness %v", i, u)
				}
			}
		}
		prev = map[phl.UserID]bool{}
		for _, u := range res.Users {
			prev[u] = true
		}
	}
	// k'−1 = 7, then 5, then 3, floor at Target−1 = 2.
	want := []int{7, 5, 3, 2}
	for i, w := range want {
		if sizes[i] != w {
			t.Fatalf("witness sizes = %v, want %v", sizes, want)
		}
	}
}

func TestSessionFailsBelowTarget(t *testing.T) {
	// Only 2 other users exist; target 4 must fail at the first step.
	g := clusterDB(2)
	s := NewSession(g, 0, DecaySchedule{Target: 4})
	if _, ok := s.Generalize(pt(0, 0, 0), Unlimited); ok {
		t.Fatal("expected first-step failure")
	}
}

func TestSessionRandomizedInvariant(t *testing.T) {
	// Whatever the geometry, an all-HK-true session over recorded request
	// points must yield boxes for which Def. 8 holds.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		users := 6 + rng.Intn(10)
		steps := 2 + rng.Intn(4)
		store := phl.NewStore()
		idx := stindex.NewGrid(300, 900)
		add := func(u phl.UserID, p geo.STPoint) {
			store.Record(u, p)
			idx.Insert(u, p)
		}
		var trace []geo.STPoint
		for s := 0; s < steps; s++ {
			cx, cy := rng.Float64()*5000, rng.Float64()*5000
			ct := int64(s) * 3600
			for u := 0; u < users; u++ {
				p := pt(cx+rng.Float64()*200, cy+rng.Float64()*200, ct+int64(rng.Intn(300)))
				add(phl.UserID(u), p)
				if u == 0 {
					trace = append(trace, p)
				}
			}
		}
		g := &Generalizer{Index: idx, Store: store, Metric: geo.STMetric{TimeScale: 1}}
		k := 2 + rng.Intn(4)
		sess := NewSession(g, 0, DecaySchedule{Target: k, Initial: k + rng.Intn(3)})
		var boxes []geo.STBox
		allOK := true
		for _, q := range trace {
			res, ok := sess.Generalize(q, Unlimited)
			if !ok {
				t.Fatalf("trial %d: unexpected failure", trial)
			}
			allOK = allOK && res.HKAnonymity
			boxes = append(boxes, res.Box)
		}
		if allOK && !anon.SatisfiesHistoricalK(store, 0, boxes, k) {
			t.Fatalf("trial %d: invariant violated (k=%d)", trial, k)
		}
	}
}

func TestToleranceString(t *testing.T) {
	got := Tolerance{MaxWidth: 100, MaxHeight: 200, MaxDuration: 60}.String()
	if got == "" {
		t.Fatal("empty tolerance string")
	}
}

func TestSessionStepAndUsersAccessors(t *testing.T) {
	g := clusterDB(5)
	s := NewSession(g, 0, DecaySchedule{Target: 3})
	if s.Step() != 0 || len(s.Users()) != 0 {
		t.Fatal("fresh session state wrong")
	}
	if _, ok := s.Generalize(pt(0, 0, 0), Unlimited); !ok {
		t.Fatal("generalize failed")
	}
	if s.Step() != 1 || len(s.Users()) != 2 {
		t.Fatalf("after one step: step=%d users=%d", s.Step(), len(s.Users()))
	}
}

func TestSessionZeroTargetLifted(t *testing.T) {
	g := clusterDB(5)
	s := NewSession(g, 0, DecaySchedule{}) // Target 0 -> lifted to 1
	res, ok := s.Generalize(pt(0, 0, 0), Unlimited)
	if !ok || !res.HKAnonymity {
		t.Fatalf("k=1 session must trivially succeed: %+v ok=%v", res, ok)
	}
}

func TestWitnessSamplesBalancesDensity(t *testing.T) {
	// Each witness has a burst of samples near the request; with
	// WitnessSamples on, the box must cover several samples of each
	// witness, not only the single closest.
	g := buildDB(func(add func(phl.UserID, geo.STPoint)) {
		for u := 1; u <= 3; u++ {
			for i := 0; i < 6; i++ {
				add(phl.UserID(u), pt(float64(100*u)+float64(i)*10, float64(i)*8, int64(i*30)))
			}
		}
	})
	q := pt(0, 0, 0)
	plain := g.FirstElementMust(t, q, 0, 4)
	g.WitnessSamples = 4
	balanced := g.FirstElementMust(t, q, 0, 4)
	if !balanced.Box.ContainsBox(plain.Box) {
		t.Fatalf("balanced box must contain the minimal one: %v vs %v", balanced.Box, plain.Box)
	}
	for _, u := range balanced.Users {
		n := len(g.Store.History(u).In(balanced.Box))
		if n < 4 {
			t.Fatalf("witness %v has only %d samples in the balanced box", u, n)
		}
	}
}

// FirstElementMust is a test helper.
func (g *Generalizer) FirstElementMust(t *testing.T, q geo.STPoint, issuer phl.UserID, k int) Result {
	t.Helper()
	res, ok := g.FirstElement(q, issuer, k, Unlimited)
	if !ok {
		t.Fatal("FirstElement failed")
	}
	return res
}
