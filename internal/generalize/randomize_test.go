package generalize

import (
	"math/rand"
	"testing"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

func stbox(x1, y1, x2, y2 float64, t1, t2 int64) geo.STBox {
	return geo.STBox{
		Area: geo.Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2},
		Time: geo.Interval{Start: t1, End: t2},
	}
}

func TestPerturbContainsOriginal(t *testing.T) {
	r := NewRandomizer(1)
	box := stbox(0, 0, 100, 50, 1000, 1600)
	for i := 0; i < 500; i++ {
		out := r.Perturb(box, Unlimited)
		if !out.ContainsBox(box) {
			t.Fatalf("perturbed box %v lost the original %v", out, box)
		}
	}
}

func TestPerturbRespectsTolerance(t *testing.T) {
	r := NewRandomizer(2)
	tol := Tolerance{MaxWidth: 150, MaxHeight: 80, MaxDuration: 900}
	box := stbox(0, 0, 100, 50, 1000, 1600)
	for i := 0; i < 500; i++ {
		out := r.Perturb(box, tol)
		if !tol.Allows(out) {
			t.Fatalf("perturbed box %v violates tolerance", out)
		}
		if !out.ContainsBox(box) {
			t.Fatalf("perturbed box lost the original")
		}
	}
}

func TestPerturbNoSlackNoGrowth(t *testing.T) {
	r := NewRandomizer(3)
	// The box already sits exactly at the tolerance: padding must be 0.
	tol := Tolerance{MaxWidth: 100, MaxHeight: 50, MaxDuration: 600}
	box := stbox(0, 0, 100, 50, 1000, 1600)
	for i := 0; i < 100; i++ {
		if out := r.Perturb(box, tol); out != box {
			t.Fatalf("no-slack box changed: %v", out)
		}
	}
}

func TestPerturbDeterministic(t *testing.T) {
	box := stbox(0, 0, 100, 50, 1000, 1600)
	a := NewRandomizer(42).Perturb(box, Unlimited)
	b := NewRandomizer(42).Perturb(box, Unlimited)
	if a != b {
		t.Fatalf("same seed, different boxes: %v vs %v", a, b)
	}
	c := NewRandomizer(43).Perturb(box, Unlimited)
	if a == c {
		t.Fatal("different seeds produced identical boxes (unlikely)")
	}
}

func TestPerturbActuallyPads(t *testing.T) {
	r := NewRandomizer(4)
	box := stbox(0, 0, 100, 50, 1000, 1600)
	grew := 0
	for i := 0; i < 200; i++ {
		if out := r.Perturb(box, Unlimited); out != box {
			grew++
		}
	}
	if grew < 150 {
		t.Fatalf("padding almost never applied: %d/200", grew)
	}
}

func TestPerturbDegenerateBox(t *testing.T) {
	r := NewRandomizer(5)
	box := geo.STBoxAround(geo.STPoint{P: geo.Point{X: 10, Y: 10}, T: 100})
	out := r.Perturb(box, Unlimited)
	if !out.ContainsBox(box) || !out.Valid() {
		t.Fatalf("degenerate box perturbation broken: %v", out)
	}
}

func TestNilRandomizerIsIdentity(t *testing.T) {
	var r *Randomizer
	box := stbox(0, 0, 10, 10, 0, 10)
	if out := r.Perturb(box, Unlimited); out != box {
		t.Fatal("nil randomizer must be the identity")
	}
}

// TestRandomizationBluntsBoundaryInference reproduces the inference
// attack the §7 recommendation targets: with deterministic minimal
// boxes the issuer's exact position frequently lies on the box
// boundary; randomized padding pushes it inside.
func TestRandomizationBluntsBoundaryInference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	onBoundary := func(g *Generalizer) int {
		count := 0
		for trial := 0; trial < 200; trial++ {
			// Witnesses all north-east of the issuer: the issuer's exact
			// point is the box's south-west corner.
			q := geo.STPoint{
				P: geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
				T: int64(rng.Intn(3600)),
			}
			res := g.NextElement(q, g.Store.Users(), Unlimited)
			b := res.Box
			if b.Area.MinX == q.P.X || b.Area.MinY == q.P.Y ||
				b.Area.MaxX == q.P.X || b.Area.MaxY == q.P.Y {
				count++
			}
		}
		return count
	}

	mk := func(r *Randomizer) *Generalizer {
		g := buildDB(func(add func(u phl.UserID, p geo.STPoint)) {
			for u := 1; u <= 4; u++ {
				add(phl.UserID(u), geo.STPoint{
					P: geo.Point{X: 1500 + float64(u)*50, Y: 1500 + float64(u)*50},
					T: int64(1800 + u),
				})
			}
		})
		g.Randomize = r
		return g
	}

	bare := onBoundary(mk(nil))
	padded := onBoundary(mk(NewRandomizer(7)))
	if bare < 190 {
		t.Fatalf("deterministic boxes should pin the issuer to the boundary: %d/200", bare)
	}
	if padded > 10 {
		t.Fatalf("randomized boxes should hide the issuer: %d/200 on boundary", padded)
	}
}

// TestSessionWithRandomizerKeepsInvariant: padding only grows boxes, so
// the historical-k invariant is untouched.
func TestSessionWithRandomizerKeepsInvariant(t *testing.T) {
	g := traceDB(8)
	g.Randomize = NewRandomizer(11)
	const k = 4
	s := NewSession(g, 0, DecaySchedule{Target: k})
	trace := []geo.STPoint{
		{P: geo.Point{X: 0, Y: 0}, T: 0},
		{P: geo.Point{X: 2000, Y: 0}, T: 3600},
		{P: geo.Point{X: 0, Y: 0}, T: 7200},
	}
	var boxes []geo.STBox
	for _, q := range trace {
		res, ok := s.Generalize(q, Unlimited)
		if !ok || !res.HKAnonymity {
			t.Fatalf("generalization failed: %+v ok=%v", res, ok)
		}
		boxes = append(boxes, res.Box)
	}
	users := g.Store.LTConsistentUsers(boxes)
	if len(users) < k {
		t.Fatalf("only %d LT-consistent users, want >= %d", len(users), k)
	}
}
