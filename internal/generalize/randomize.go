package generalize

import (
	"math/rand"
	"sync"

	"histanon/internal/geo"
)

// Randomizer perturbs generalized boxes to blunt inference attacks, the
// §7 recommendation ("randomization should be used as part of the TS
// strategy to prevent inference attacks"). Algorithm 1's output is the
// *minimal* box enclosing the request point and the witness samples, so
// its edges betray exact sample coordinates — in the worst case the
// issuer's own position sits on the boundary. The randomizer pads each
// side by an independent random amount, bounded so that
//
//   - the original (anonymity-certifying) box stays contained, and
//   - the service's tolerance constraints are never violated: a padded
//     box never changes Algorithm 1's HK-anonymity verdict.
//
// A Randomizer is safe for concurrent use: the underlying random
// stream is guarded by its own mutex, so one Generalizer (and its
// sessions) can serve many goroutines.
type Randomizer struct {
	mu  sync.Mutex
	rng *rand.Rand
	// MaxFrac bounds each side's padding to MaxFrac×(box dimension).
	MaxFrac float64
	// MinPad is an absolute floor (meters / seconds) so that degenerate
	// boxes also receive padding.
	MinPad     float64
	MinPadTime int64
}

// NewRandomizer returns a deterministic randomizer. With MaxFrac 0 a
// default of 0.25 applies; MinPad defaults to 50 m and MinPadTime to
// 60 s.
func NewRandomizer(seed int64) *Randomizer {
	return &Randomizer{
		rng:        rand.New(rand.NewSource(seed)),
		MaxFrac:    0.25,
		MinPad:     50,
		MinPadTime: 60,
	}
}

func (r *Randomizer) maxFrac() float64 {
	if r.MaxFrac == 0 {
		return 0.25
	}
	return r.MaxFrac
}

func (r *Randomizer) minPad() float64 {
	if r.MinPad == 0 {
		return 50
	}
	return r.MinPad
}

func (r *Randomizer) minPadTime() int64 {
	if r.MinPadTime == 0 {
		return 60
	}
	return r.MinPadTime
}

// Perturb pads the box within the tolerance's remaining slack. The
// result always contains box.
func (r *Randomizer) Perturb(box geo.STBox, tol Tolerance) geo.STBox {
	if r == nil {
		return box
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := box

	// Spatial padding budget per axis: tolerance slack (or unlimited),
	// capped by MaxFrac×dimension with the MinPad floor.
	padX := r.budget(box.Area.Width(), tol.MaxWidth)
	padY := r.budget(box.Area.Height(), tol.MaxHeight)
	lx := r.rng.Float64() * padX
	rx := r.rng.Float64() * (padX - lx)
	ly := r.rng.Float64() * padY
	ry := r.rng.Float64() * (padY - ly)
	out.Area.MinX -= lx
	out.Area.MaxX += rx
	out.Area.MinY -= ly
	out.Area.MaxY += ry

	// Temporal padding.
	padT := r.budgetTime(box.Time.Duration(), tol.MaxDuration)
	lt := r.rng.Int63n(padT + 1)
	rt := r.rng.Int63n(padT - lt + 1)
	out.Time.Start -= lt
	out.Time.End += rt
	return out
}

// budget returns the total spatial padding available for one axis.
func (r *Randomizer) budget(dim, max float64) float64 {
	pad := r.maxFrac() * dim
	if pad < r.minPad() {
		pad = r.minPad()
	}
	if max > 0 {
		slack := max - dim
		if slack < 0 {
			slack = 0
		}
		if pad > slack {
			pad = slack
		}
	}
	return pad
}

// budgetTime returns the total temporal padding available.
func (r *Randomizer) budgetTime(dur, max int64) int64 {
	pad := int64(r.maxFrac() * float64(dur))
	if pad < r.minPadTime() {
		pad = r.minPadTime()
	}
	if max > 0 {
		slack := max - dur
		if slack < 0 {
			slack = 0
		}
		if pad > slack {
			pad = slack
		}
	}
	return pad
}
