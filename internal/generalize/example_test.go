package generalize_test

import (
	"fmt"

	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/stindex"
)

// Algorithm 1, first element: the request point is enclosed in the
// smallest box crossed by k−1 other users' trajectories.
func Example() {
	store := phl.NewStore()
	idx := stindex.NewGrid(500, 900)
	add := func(u phl.UserID, x, y float64, t int64) {
		p := geo.STPoint{P: geo.Point{X: x, Y: y}, T: t}
		store.Record(u, p)
		idx.Insert(u, p)
	}
	// Issuer 0 at the origin; neighbors at growing distances.
	add(0, 0, 0, 0)
	add(1, 40, 0, 10)
	add(2, 0, 60, 20)
	add(3, 90, 90, 30)
	add(4, 2000, 2000, 40)

	g := &generalize.Generalizer{Index: idx, Store: store, Metric: geo.STMetric{TimeScale: 1}}
	res, ok := g.FirstElement(geo.STPoint{P: geo.Point{X: 0, Y: 0}, T: 0}, 0, 4, generalize.Unlimited)
	fmt.Println("ok:", ok, "hk-anonymity:", res.HKAnonymity)
	fmt.Println("witnesses:", len(res.Users), "box:", res.Box.Area)
	fmt.Println("users covered by the box:", store.CountUsersIn(res.Box))
	// Output:
	// ok: true hk-anonymity: true
	// witnesses: 3 box: [0.0,90.0]x[0.0,90.0]
	// users covered by the box: 4
}

// Tolerance constraints force the HK-anonymity=false branch: the box is
// uniformly shrunk to the service's coarsest useful resolution.
func ExampleTolerance() {
	store := phl.NewStore()
	idx := stindex.NewGrid(500, 900)
	for u := phl.UserID(1); u <= 3; u++ {
		p := geo.STPoint{P: geo.Point{X: float64(u) * 400, Y: 0}, T: int64(u)}
		store.Record(u, p)
		idx.Insert(u, p)
	}
	g := &generalize.Generalizer{Index: idx, Store: store, Metric: geo.STMetric{TimeScale: 1}}
	tol := generalize.Tolerance{MaxWidth: 100, MaxHeight: 100, MaxDuration: 60}
	res, _ := g.FirstElement(geo.STPoint{}, 0, 4, tol)
	fmt.Println("hk-anonymity:", res.HKAnonymity)
	fmt.Println("clamped width:", res.Box.Area.Width())
	// Output:
	// hk-anonymity: false
	// clamped width: 100
}
