// Package generalize implements the paper's Algorithm 1: spatio-temporal
// generalization of a request so that the forwarded ⟨Area, TimeInterval⟩
// covers enough other users' trajectories to preserve Historical
// k-anonymity, subject to the service's tolerance constraints (§6.1–6.2).
//
// Two entry points mirror the two branches of Algorithm 1:
//
//   - FirstElement (lines 5–6): the request matches the initial element
//     of an LBQID; find the smallest 3D space around the exact request
//     point crossed by the trajectories of k−1 other users, and remember
//     those users.
//   - NextElement (lines 2–3): the request matches a later element; for
//     each remembered user take the PHL point closest to the request
//     point and enclose them all.
//
// Both branches then apply the tolerance check of lines 8–13: when the
// computed box exceeds the service's coarsest useful resolution it is
// uniformly reduced to fit and the HKAnonymity flag comes back false.
//
// Session layers the §6.2 refinement on top: start with k′ ≥ k candidate
// users and shrink the candidate set toward k along the trace ("the
// longer the trace, the less are the probabilities that the same k
// individuals will move along the same trace").
//
// Reading of "k trajectories": Definition 8 requires k−1 personal
// histories of users other than the issuer, so the issuer's own
// trajectory counts as one of Algorithm 1's k; the selection therefore
// picks k−1 other users.
package generalize

import (
	"fmt"
	"sort"
	"time"

	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/stindex"
)

// Timings splits one generalization step's wall time (nanoseconds)
// across Algorithm 1's three phases, for request tracing: the index
// query for witness trajectories (lines 2–6), the construction of the
// enclosing box (lines 7 and the density balancing), and the tolerance
// check with its clamp and randomization (lines 8–13). Timing is
// opt-in per call — see Session.Trace — so the untraced hot path pays
// only a nil check.
type Timings struct {
	KNNNanos       int64
	BoxNanos       int64
	ToleranceNanos int64

	// The lap timer: one wall-clock read arms base (first start call);
	// every later lap point is a monotonic offset from it via
	// time.Since, which skips the wall-clock half of a time.Now read.
	base   time.Time
	lastNs int64
}

// The Timings phases, for lap.
const (
	phaseKNN = iota
	phaseBox
	phaseTolerance
)

// lap adds the time since the previous lap point to the given phase and
// re-arms the timer, when tm is non-nil.
func (tm *Timings) lap(phase int) {
	if tm == nil {
		return
	}
	now := time.Since(tm.base).Nanoseconds()
	d := now - tm.lastNs
	switch phase {
	case phaseKNN:
		tm.KNNNanos += d
	case phaseBox:
		tm.BoxNanos += d
	default:
		tm.ToleranceNanos += d
	}
	tm.lastNs = now
}

// start re-arms the lap timer when tm is non-nil, so the code between
// two timed sections is attributed to no phase.
func (tm *Timings) start() {
	if tm == nil {
		return
	}
	if tm.base.IsZero() {
		tm.base = time.Now()
		tm.lastNs = 0
		return
	}
	tm.lastNs = time.Since(tm.base).Nanoseconds()
}

// Tolerance is a service's coarsest acceptable spatial and temporal
// resolution (§6.1): "the coarsest spatial and temporal granularity for
// the service to still be useful". Zero fields mean unconstrained.
type Tolerance struct {
	// MaxWidth and MaxHeight bound the forwarded area in meters.
	MaxWidth, MaxHeight float64
	// MaxDuration bounds the forwarded time interval in seconds.
	MaxDuration int64
}

// Unlimited is the tolerance of a service that accepts any resolution.
var Unlimited = Tolerance{}

// Allows reports whether the box satisfies the tolerance constraints.
func (t Tolerance) Allows(b geo.STBox) bool {
	if t.MaxWidth > 0 && b.Area.Width() > t.MaxWidth {
		return false
	}
	if t.MaxHeight > 0 && b.Area.Height() > t.MaxHeight {
		return false
	}
	if t.MaxDuration > 0 && b.Time.Duration() > t.MaxDuration {
		return false
	}
	return true
}

// clamp uniformly reduces the box about the anchor until it satisfies
// the constraints (Algorithm 1 line 12).
func (t Tolerance) clamp(b geo.STBox, anchor geo.STPoint) geo.STBox {
	maxW, maxH := b.Area.Width(), b.Area.Height()
	if t.MaxWidth > 0 {
		maxW = t.MaxWidth
	}
	if t.MaxHeight > 0 {
		maxH = t.MaxHeight
	}
	out := geo.STBox{Area: b.Area.ShrinkToward(anchor.P, maxW, maxH), Time: b.Time}
	if t.MaxDuration > 0 {
		out.Time = b.Time.ShrinkToward(anchor.T, t.MaxDuration)
	}
	return out
}

func (t Tolerance) String() string {
	return fmt.Sprintf("tol{%gx%gm, %ds}", t.MaxWidth, t.MaxHeight, t.MaxDuration)
}

// Result is the output of one generalization step (Algorithm 1's
// Output).
type Result struct {
	// Box is the ⟨Area, TimeInterval⟩ to forward to the service provider.
	Box geo.STBox
	// HKAnonymity is Algorithm 1's boolean: false when the tolerance
	// constraints forced the box below the anonymity-preserving size.
	HKAnonymity bool
	// Users are the selected witness users (set by FirstElement, echoed
	// and possibly narrowed by later steps).
	Users []phl.UserID
	// Points are the witness trajectory samples enclosed by the
	// pre-clamp box, aligned with Users.
	Points []geo.STPoint
}

// Generalizer runs Algorithm 1 against a PHL database. Index and Store
// must describe the same data: the index answers the k-nearest
// trajectory query, the store the per-user closest-point query.
type Generalizer struct {
	Index  stindex.Index
	Store  phl.Storer
	Metric geo.STMetric
	// Randomize, when non-nil, pads every produced box by bounded random
	// amounts to blunt inference attacks (§7); see Randomizer.
	Randomize *Randomizer
	// WitnessSamples, when > 1, hardens the boxes against
	// density-weighted (Bayesian) attackers: each witness contributes up
	// to this many of their nearest samples to the enclosing box instead
	// of one, so the issuer's own samples no longer dominate the box's
	// occupancy (see experiment E14). Costs resolution.
	WitnessSamples int
}

// FirstElement handles a request matching the initial element of an
// LBQID (Algorithm 1 lines 5–6 and 8–13): it selects the k−1 users,
// other than the issuer, whose trajectories pass closest to the exact
// request point q, and returns the smallest box containing q and one
// sample from each.
//
// ok is false when fewer than k−1 other users exist at all; no box is
// produced in that case.
func (g *Generalizer) FirstElement(q geo.STPoint, issuer phl.UserID, k int, tol Tolerance) (Result, bool) {
	return g.firstElement(q, issuer, k, tol, nil)
}

// firstElement is FirstElement with optional phase timing.
func (g *Generalizer) firstElement(q geo.STPoint, issuer phl.UserID, k int, tol Tolerance, tm *Timings) (Result, bool) {
	if k < 1 {
		return Result{}, false
	}
	tm.start()
	exclude := map[phl.UserID]bool{issuer: true}
	box, members, found := stindex.SmallestEnclosingBox(g.Index, q, k-1, g.Metric, exclude)
	tm.lap(phaseKNN)
	if !found {
		return Result{}, false
	}
	res := Result{
		Box:         box,
		HKAnonymity: true,
		Users:       make([]phl.UserID, len(members)),
		Points:      make([]geo.STPoint, len(members)),
	}
	for i, m := range members {
		res.Users[i] = m.User
		res.Points[i] = m.Point
	}
	res.Box = g.balanceDensity(res.Box, q, res.Users)
	tm.lap(phaseBox)
	if !tol.Allows(res.Box) {
		res.HKAnonymity = false
		res.Box = tol.clamp(res.Box, q)
	}
	if g.Randomize != nil {
		res.Box = g.Randomize.Perturb(res.Box, tol)
	}
	tm.lap(phaseTolerance)
	return res, true
}

// NextElement handles a request matching a non-initial element
// (Algorithm 1 lines 2–3 and 8–13): for each previously selected user it
// finds the PHL point closest to the exact request point q and encloses
// all of them together with q. Users with an empty history are dropped.
func (g *Generalizer) NextElement(q geo.STPoint, users []phl.UserID, tol Tolerance) Result {
	return g.nextElement(q, users, tol, nil)
}

// nextElement is NextElement with optional phase timing. The per-witness
// closest-point lookups count as the KNN phase; box assembly and density
// balancing as the box phase.
func (g *Generalizer) nextElement(q geo.STPoint, users []phl.UserID, tol Tolerance, tm *Timings) Result {
	tm.start()
	res := Result{Box: geo.STBoxAround(q), HKAnonymity: true}
	for _, u := range users {
		h := g.Store.History(u)
		if h == nil {
			continue
		}
		p, _, ok := h.Closest(q, g.Metric)
		if !ok {
			continue
		}
		res.Users = append(res.Users, u)
		res.Points = append(res.Points, p)
		res.Box = res.Box.Extend(p)
	}
	tm.lap(phaseKNN)
	res.Box = g.balanceDensity(res.Box, q, res.Users)
	tm.lap(phaseBox)
	if !tol.Allows(res.Box) {
		res.HKAnonymity = false
		res.Box = tol.clamp(res.Box, q)
	}
	if g.Randomize != nil {
		res.Box = g.Randomize.Perturb(res.Box, tol)
	}
	tm.lap(phaseTolerance)
	return res
}

// DecaySchedule parameterizes the §6.2 refinement: the first element is
// generalized over Initial−1 other users and the candidate set shrinks
// by Step users per subsequent element, never below Target.
type DecaySchedule struct {
	// Target is the anonymity value k the user asked for.
	Target int
	// Initial is k′ ≥ Target used at the first element. Zero means
	// Target (no over-provisioning).
	Initial int
	// Step is how many candidates are shed per element. Zero means 1
	// when Initial > Target.
	Step int
}

// kAt returns the candidate-set size to use at trace step i (0-based).
func (d DecaySchedule) kAt(i int) int {
	initial := d.Initial
	if initial < d.Target {
		initial = d.Target
	}
	step := d.Step
	if step == 0 {
		step = 1
	}
	k := initial - i*step
	if k < d.Target {
		k = d.Target
	}
	return k
}

// Session generalizes the successive requests of one partially matched
// LBQID trace. It owns the witness-set bookkeeping: the users selected
// at the first element are the only candidates at later elements (a user
// added mid-trace would not be LT-consistent with the earlier boxes), and
// the set may shrink along the decay schedule, keeping the candidates
// whose trajectories stay closest to the trace.
type Session struct {
	g      *Generalizer
	sched  DecaySchedule
	issuer phl.UserID
	step   int
	users  []phl.UserID

	// Trace, when non-nil, accumulates per-phase wall time for the next
	// Generalize call (request tracing; see internal/obs). The caller
	// owns the pointer and may set it per request — typically non-nil
	// only for sampled requests.
	Trace *Timings
}

// NewSession starts a trace-generalization session for one user and one
// LBQID match attempt.
func NewSession(g *Generalizer, issuer phl.UserID, sched DecaySchedule) *Session {
	if sched.Target < 1 {
		sched.Target = 1
	}
	return &Session{g: g, sched: sched, issuer: issuer}
}

// Step returns how many requests the session has generalized.
func (s *Session) Step() int { return s.step }

// Users returns the current witness candidate set.
func (s *Session) Users() []phl.UserID { return s.users }

// Generalize handles the next request of the trace. ok is false only on
// the first step, when the database does not hold enough other users.
func (s *Session) Generalize(q geo.STPoint, tol Tolerance) (Result, bool) {
	defer func() { s.step++ }()
	if s.step == 0 {
		res, ok := s.g.firstElement(q, s.issuer, s.sched.kAt(0), tol, s.Trace)
		if !ok {
			return Result{}, false
		}
		s.users = res.Users
		return res, true
	}

	// Narrow the candidate set along the decay schedule, preferring the
	// users whose closest sample is nearest to the current point.
	want := s.sched.kAt(s.step) - 1 // −1: the issuer is one of the k
	if want < len(s.users) {
		s.users = s.nearestSubset(q, want)
	}
	res := s.g.nextElement(q, s.users, tol, s.Trace)
	s.users = res.Users
	if len(s.users)+1 < s.sched.Target {
		// Witnesses fell below k (dropped empty histories): the box can
		// no longer certify historical k-anonymity.
		res.HKAnonymity = false
	}
	return res, true
}

// nearestSubset keeps the want candidates whose closest PHL sample to q
// is nearest under the metric.
func (s *Session) nearestSubset(q geo.STPoint, want int) []phl.UserID {
	type cand struct {
		u phl.UserID
		d float64
	}
	cands := make([]cand, 0, len(s.users))
	for _, u := range s.users {
		h := s.g.Store.History(u)
		if h == nil {
			continue
		}
		if _, d, ok := h.Closest(q, s.g.Metric); ok {
			cands = append(cands, cand{u, d})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	if want < len(cands) {
		cands = cands[:want]
	}
	out := make([]phl.UserID, len(cands))
	for i, c := range cands {
		out[i] = c.u
	}
	return out
}

// balanceDensity grows the box to cover up to WitnessSamples nearest
// samples of every witness (see Generalizer.WitnessSamples). With the
// option off it is the identity.
func (g *Generalizer) balanceDensity(box geo.STBox, q geo.STPoint, users []phl.UserID) geo.STBox {
	if g.WitnessSamples <= 1 {
		return box
	}
	for _, u := range users {
		h := g.Store.History(u)
		if h == nil {
			continue
		}
		for _, p := range h.ClosestN(q, g.WitnessSamples, g.Metric) {
			box = box.Extend(p)
		}
	}
	return box
}
