package lbqid

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"histanon/internal/geo"
	"histanon/internal/tgran"
)

// Parse reads LBQID definitions in the library's block format:
//
//	lbqid "HomeOfficeCommute" {
//	    element "AreaCondominium" area [0,100]x[0,100]     time [7am,8am]
//	    element "AreaOfficeBldg"  area [500,600]x[0,100]   time [8am,9am]
//	    element "AreaOfficeBldg"  area [500,600]x[0,100]   time [4pm,6pm]
//	    element "AreaCondominium" area [0,100]x[0,100]     time [5pm,7pm]
//	    recurrence 3.Weekdays * 2.Weeks
//	}
//
// which is the paper's Example 2 verbatim. Blank lines and lines
// starting with '#' are ignored. Several blocks may follow one another.
func Parse(r io.Reader) ([]*LBQID, error) {
	var out []*LBQID
	var cur *LBQID
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "lbqid"):
			if cur != nil {
				return nil, fmt.Errorf("line %d: nested lbqid block", lineNo)
			}
			name, err := parseHeader(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			cur = &LBQID{Name: name}
		case line == "}":
			if cur == nil {
				return nil, fmt.Errorf("line %d: '}' outside a block", lineNo)
			}
			if err := cur.Validate(); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			out = append(out, cur)
			cur = nil
		case strings.HasPrefix(line, "element"):
			if cur == nil {
				return nil, fmt.Errorf("line %d: element outside a block", lineNo)
			}
			e, err := parseElement(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			cur.Elements = append(cur.Elements, e)
		case strings.HasPrefix(line, "recurrence"):
			if cur == nil {
				return nil, fmt.Errorf("line %d: recurrence outside a block", lineNo)
			}
			rec, err := tgran.ParseRecurrence(strings.TrimSpace(strings.TrimPrefix(line, "recurrence")))
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			cur.Recurrence = rec
		default:
			return nil, fmt.Errorf("line %d: unrecognized directive %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("unterminated lbqid block %q", cur.Name)
	}
	return out, nil
}

// ParseString is Parse over an in-memory definition.
func ParseString(s string) ([]*LBQID, error) {
	return Parse(strings.NewReader(s))
}

// ParseOne parses a definition expected to hold exactly one LBQID.
func ParseOne(s string) (*LBQID, error) {
	qs, err := ParseString(s)
	if err != nil {
		return nil, err
	}
	if len(qs) != 1 {
		return nil, fmt.Errorf("expected exactly one lbqid, found %d", len(qs))
	}
	return qs[0], nil
}

func parseHeader(line string) (string, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "lbqid"))
	if !strings.HasSuffix(rest, "{") {
		return "", fmt.Errorf("lbqid header must end with '{'")
	}
	rest = strings.TrimSpace(strings.TrimSuffix(rest, "{"))
	name, err := unquote(rest)
	if err != nil {
		return "", fmt.Errorf("bad lbqid name: %v", err)
	}
	return name, nil
}

func parseElement(line string) (Element, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "element"))
	var e Element
	// Optional quoted name first.
	if strings.HasPrefix(rest, `"`) {
		end := strings.Index(rest[1:], `"`)
		if end < 0 {
			return e, fmt.Errorf("unterminated element name")
		}
		e.Name = rest[1 : 1+end]
		rest = strings.TrimSpace(rest[end+2:])
	}
	areaKw := strings.Index(rest, "area")
	timeKw := strings.Index(rest, "time")
	if areaKw != 0 || timeKw < 0 {
		return e, fmt.Errorf("element needs 'area ... time ...'")
	}
	areaStr := strings.TrimSpace(rest[len("area"):timeKw])
	timeStr := strings.TrimSpace(rest[timeKw+len("time"):])
	area, err := ParseRect(areaStr)
	if err != nil {
		return e, err
	}
	w, err := tgran.ParseUInterval(timeStr)
	if err != nil {
		return e, err
	}
	e.Area = area
	e.Window = w
	return e, nil
}

// ParseRect parses "[x1,x2]x[y1,y2]" into a rectangle.
func ParseRect(s string) (geo.Rect, error) {
	parts := strings.Split(s, "]x[")
	if len(parts) != 2 {
		return geo.Rect{}, fmt.Errorf("malformed area %q (want [x1,x2]x[y1,y2])", s)
	}
	xs := strings.TrimPrefix(strings.TrimSpace(parts[0]), "[")
	ys := strings.TrimSuffix(strings.TrimSpace(parts[1]), "]")
	x1, x2, err := parsePair(xs)
	if err != nil {
		return geo.Rect{}, fmt.Errorf("malformed area %q: %v", s, err)
	}
	y1, y2, err := parsePair(ys)
	if err != nil {
		return geo.Rect{}, fmt.Errorf("malformed area %q: %v", s, err)
	}
	r := geo.NewRect(geo.Point{X: x1, Y: y1}, geo.Point{X: x2, Y: y2})
	return r, nil
}

func parsePair(s string) (float64, float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want two comma-separated numbers in %q", s)
	}
	a, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func unquote(s string) (string, error) {
	if len(s) < 2 || !strings.HasPrefix(s, `"`) || !strings.HasSuffix(s, `"`) {
		return "", fmt.Errorf("expected a quoted string, got %q", s)
	}
	return s[1 : len(s)-1], nil
}
