package lbqid_test

import (
	"fmt"

	"histanon/internal/geo"
	"histanon/internal/lbqid"
	"histanon/internal/tgran"
)

// The paper's Example 2: a home↔office commute observed three weekdays
// a week for two weeks.
func Example() {
	q, err := lbqid.ParseOne(`
lbqid "HomeOfficeCommute" {
    element "AreaCondominium" area [0,100]x[0,100]    time [7am,8am]
    element "AreaOfficeBldg"  area [500,600]x[0,100]  time [8am,9am]
    element "AreaOfficeBldg"  area [500,600]x[0,100]  time [4pm,6pm]
    element "AreaCondominium" area [0,100]x[0,100]    time [5pm,7pm]
    recurrence 3.Weekdays * 2.Weeks
}`)
	if err != nil {
		panic(err)
	}
	fmt.Println(q.Name, "with", len(q.Elements), "elements, recurrence", q.Recurrence)

	m := lbqid.NewMatcher(q)
	var id lbqid.RequestID
	commute := func(week, dow int64) {
		day := week*tgran.Week + dow*tgran.Day
		for _, visit := range []struct {
			x float64
			t int64
		}{
			{50, day + 7*tgran.Hour + 1800},  // condo, 7:30
			{550, day + 8*tgran.Hour + 1800}, // office, 8:30
			{550, day + 17*tgran.Hour},       // office, 17:00
			{50, day + 18*tgran.Hour},        // condo, 18:00
		} {
			id++
			m.Offer(id, geo.STPoint{P: geo.Point{X: visit.x, Y: 50}, T: visit.t})
		}
	}
	// Three weekdays in each of two weeks.
	for week := int64(0); week < 2; week++ {
		for _, dow := range []int64{0, 2, 4} { // Mon, Wed, Fri
			commute(week, dow)
		}
	}
	fmt.Println("observations:", m.Observations(), "satisfied:", m.Satisfied())
	// Output:
	// HomeOfficeCommute with 4 elements, recurrence 3.Weekdays * 2.Weeks
	// observations: 6 satisfied: true
}
