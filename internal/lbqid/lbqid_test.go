package lbqid

import (
	"math/rand"
	"strings"
	"testing"

	"histanon/internal/geo"
	"histanon/internal/tgran"
)

// Paper Example 2: home->office in the morning, office->home in the
// evening, observed 3 weekdays a week for 2 weeks.
const example2 = `
# Example 2 of the paper.
lbqid "HomeOfficeCommute" {
    element "AreaCondominium" area [0,100]x[0,100]    time [7am,8am]
    element "AreaOfficeBldg"  area [500,600]x[0,100]  time [8am,9am]
    element "AreaOfficeBldg"  area [500,600]x[0,100]  time [4pm,6pm]
    element "AreaCondominium" area [0,100]x[0,100]    time [5pm,7pm]
    recurrence 3.Weekdays * 2.Weeks
}
`

func mustExample2(t *testing.T) *LBQID {
	t.Helper()
	q, err := ParseOne(example2)
	if err != nil {
		t.Fatalf("ParseOne: %v", err)
	}
	return q
}

func pt(x, y float64, t int64) geo.STPoint {
	return geo.STPoint{P: geo.Point{X: x, Y: y}, T: t}
}

// at builds an engine instant from week, day-of-week (0=Mon) and
// seconds-of-day.
func at(week, dow, sod int64) int64 {
	return week*tgran.Week + dow*tgran.Day + sod
}

const (
	h7  = 7 * tgran.Hour
	h8  = 8 * tgran.Hour
	h9  = 9 * tgran.Hour
	h16 = 16 * tgran.Hour
	h17 = 17 * tgran.Hour
	h18 = 18 * tgran.Hour
)

// commutePoints returns the four request points of one full commute
// observation on the given week/day.
func commutePoints(week, dow int64) []geo.STPoint {
	return []geo.STPoint{
		pt(50, 50, at(week, dow, h7+30*tgran.Minute)),   // condo, 7:30am
		pt(550, 50, at(week, dow, h8+30*tgran.Minute)),  // office, 8:30am
		pt(550, 50, at(week, dow, h16+30*tgran.Minute)), // office, 4:30pm
		pt(50, 50, at(week, dow, h18)),                  // condo, 6pm
	}
}

func TestParseExample2(t *testing.T) {
	q := mustExample2(t)
	if q.Name != "HomeOfficeCommute" || len(q.Elements) != 4 {
		t.Fatalf("parsed %q with %d elements", q.Name, len(q.Elements))
	}
	if q.Elements[0].Name != "AreaCondominium" {
		t.Fatalf("element 0 name = %q", q.Elements[0].Name)
	}
	if q.Elements[1].Area != (geo.Rect{MinX: 500, MinY: 0, MaxX: 600, MaxY: 100}) {
		t.Fatalf("element 1 area = %v", q.Elements[1].Area)
	}
	if q.Elements[2].Window.Start != h16 || q.Elements[2].Window.End != h18 {
		t.Fatalf("element 2 window = %v", q.Elements[2].Window)
	}
	if got := q.Recurrence.String(); got != "3.Weekdays * 2.Weeks" {
		t.Fatalf("recurrence = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`element "x" area [0,1]x[0,1] time [7am,8am]`,          // outside block
		"lbqid \"a\" {\n}",                                     // no elements
		"lbqid \"a\" {\n element area [0,1] time [7am,8am]\n}", // malformed area
		"lbqid \"a\" {\n element area [0,1]x[0,1] time [7am]\n}",
		"lbqid \"a\" {\n element area [0,1]x[0,1] time [7am,8am]\n recurrence 0.Days\n}",
		"lbqid \"a\" {\n bogus\n}",
		"lbqid \"a\" {\n lbqid \"b\" {\n}",
		"lbqid noquotes {\n}",
		"lbqid \"a\" {",
		"}",
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("expected error for %q", s)
		}
	}
}

func TestParseMultipleBlocks(t *testing.T) {
	qs, err := ParseString(example2 + "\n" + strings.ReplaceAll(example2, "HomeOfficeCommute", "Second"))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[1].Name != "Second" {
		t.Fatalf("got %d blocks", len(qs))
	}
}

func TestParseRect(t *testing.T) {
	r, err := ParseRect("[0,100]x[-50,50]")
	if err != nil || r != (geo.Rect{MinX: 0, MinY: -50, MaxX: 100, MaxY: 50}) {
		t.Fatalf("ParseRect: %v %v", r, err)
	}
	// Reversed coordinates are normalized.
	r, err = ParseRect("[100,0]x[50,-50]")
	if err != nil || r != (geo.Rect{MinX: 0, MinY: -50, MaxX: 100, MaxY: 50}) {
		t.Fatalf("ParseRect reversed: %v %v", r, err)
	}
	for _, bad := range []string{"", "[0,1]", "[a,b]x[0,1]", "[0]x[1,2]"} {
		if _, err := ParseRect(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestElementMatchesPoint(t *testing.T) {
	q := mustExample2(t)
	condoMorning := q.Elements[0]
	if !condoMorning.MatchesPoint(pt(50, 50, at(0, 0, h7+1))) {
		t.Fatal("point inside condo at 7:00:01 must match")
	}
	if condoMorning.MatchesPoint(pt(50, 50, at(0, 0, h9))) {
		t.Fatal("9am is outside [7am,8am]")
	}
	if condoMorning.MatchesPoint(pt(500, 50, at(0, 0, h7+1))) {
		t.Fatal("office position must not match condo area")
	}
}

func TestElementIndexMatching(t *testing.T) {
	q := mustExample2(t)
	// 5:30pm at the condo matches only element 3.
	got := q.ElementIndexMatching(pt(50, 50, at(0, 0, h17+30*tgran.Minute)))
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("ElementIndexMatching = %v", got)
	}
}

func TestMatcherFullMatch(t *testing.T) {
	q := mustExample2(t)
	m := NewMatcher(q)
	var id RequestID
	offer := func(p geo.STPoint) Outcome {
		id++
		return m.Offer(id, p)
	}

	days := [][2]int64{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 3}}
	var last Outcome
	for i, d := range days {
		for j, p := range commutePoints(d[0], d[1]) {
			last = offer(p)
			if !last.Matched {
				t.Fatalf("day %d point %d not matched", i, j)
			}
			if j < 3 && last.CompletedObservation {
				t.Fatalf("day %d point %d completed too early", i, j)
			}
		}
		if !last.CompletedObservation {
			t.Fatalf("day %d final point did not complete the observation", i)
		}
		// Satisfied exactly at the end of the 3rd day of week 1.
		wantSat := i >= 5
		if last.Satisfied != wantSat {
			t.Fatalf("day %d: Satisfied=%v want %v", i, last.Satisfied, wantSat)
		}
	}
	if m.Observations() != 6 {
		t.Fatalf("Observations=%d", m.Observations())
	}
	if got := len(m.ExposedRequests()); got != 24 {
		t.Fatalf("ExposedRequests=%d want 24", got)
	}
}

func TestMatcherIncompleteDayDoesNotCount(t *testing.T) {
	q := mustExample2(t)
	m := NewMatcher(q)
	var id RequestID
	// Week 0: three days but the third day misses the evening return.
	for _, d := range [][2]int64{{0, 0}, {0, 1}} {
		for _, p := range commutePoints(d[0], d[1]) {
			id++
			m.Offer(id, p)
		}
	}
	for _, p := range commutePoints(0, 2)[:3] {
		id++
		m.Offer(id, p)
	}
	// Week 1: three full days.
	for _, d := range [][2]int64{{1, 0}, {1, 1}, {1, 2}} {
		for _, p := range commutePoints(d[0], d[1]) {
			id++
			m.Offer(id, p)
		}
	}
	if m.Satisfied() {
		t.Fatal("one incomplete week must not satisfy 3.Weekdays * 2.Weeks")
	}
	if m.Observations() != 5 {
		t.Fatalf("Observations=%d want 5", m.Observations())
	}
}

func TestMatcherPartialExpires(t *testing.T) {
	q := mustExample2(t)
	m := NewMatcher(q)
	// Morning trip on Monday, then nothing until Tuesday: the Monday
	// partial can never complete (observation must stay within one
	// weekday granule).
	m.Offer(1, commutePoints(0, 0)[0])
	m.Offer(2, commutePoints(0, 0)[1])
	if got := len(m.ExposedRequests()); got != 2 {
		t.Fatalf("exposed=%d want 2", got)
	}
	out := m.Offer(3, commutePoints(0, 1)[2]) // Tuesday 4:30pm: matches element 2 of nothing
	if out.Matched {
		t.Fatal("Tuesday afternoon point must not extend Monday's partial")
	}
	if got := len(m.ExposedRequests()); got != 0 {
		t.Fatalf("stale partial not expired: exposed=%d", got)
	}
}

func TestMatcherWeekendRequestIgnored(t *testing.T) {
	q := mustExample2(t)
	m := NewMatcher(q)
	// Saturday commute: position and time-of-day match, but Weekdays has
	// no granule on Saturday, so no observation may start.
	for _, p := range commutePoints(0, 5) {
		if out := m.Offer(1, p); out.Matched {
			t.Fatalf("weekend point %v must not match", p)
		}
	}
}

func TestMatcherReset(t *testing.T) {
	q := mustExample2(t)
	m := NewMatcher(q)
	var id RequestID
	for _, d := range [][2]int64{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}} {
		for _, p := range commutePoints(d[0], d[1]) {
			id++
			m.Offer(id, p)
		}
	}
	if !m.Satisfied() {
		t.Fatal("precondition: satisfied")
	}
	m.Reset()
	if m.Satisfied() || m.Observations() != 0 || len(m.ExposedRequests()) != 0 {
		t.Fatal("Reset must clear all state")
	}
}

func TestMatcherSingleElementPattern(t *testing.T) {
	q, err := ParseOne(`
lbqid "NightClub" {
    element "Club" area [0,10]x[0,10] time [10pm,11pm]
    recurrence 2.Days
}`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(q)
	out := m.Offer(1, pt(5, 5, at(0, 0, 22*tgran.Hour+600)))
	if !out.Matched || !out.CompletedObservation || out.Satisfied {
		t.Fatalf("first visit outcome: %+v", out)
	}
	// Second visit the same night: same day granule, still one day.
	out = m.Offer(2, pt(5, 5, at(0, 0, 22*tgran.Hour+1200)))
	if out.Satisfied {
		t.Fatal("two visits the same day are one day granule")
	}
	out = m.Offer(3, pt(5, 5, at(0, 1, 22*tgran.Hour+600)))
	if !out.Satisfied {
		t.Fatal("visits on two distinct days must satisfy 2.Days")
	}
}

func TestMatcherEmptyRecurrence(t *testing.T) {
	q, err := ParseOne(`
lbqid "OneShot" {
    element area [0,10]x[0,10] time [9am,10am]
    element area [20,30]x[0,10] time [9am,11am]
}`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(q)
	out := m.Offer(1, pt(5, 5, at(0, 0, 9*tgran.Hour+60)))
	if !out.Matched || out.Satisfied {
		t.Fatalf("outcome: %+v", out)
	}
	// With no recurrence the partial survives across days.
	out = m.Offer(2, pt(25, 5, at(0, 3, 10*tgran.Hour)))
	if !out.Matched || !out.Satisfied {
		t.Fatalf("empty recurrence cross-day match failed: %+v", out)
	}
}

func TestMatcherRestartWithinDay(t *testing.T) {
	// Pattern A->B. Stream: A(9:00) A(9:10) B(9:20).
	// The second A both extends nothing and starts a fresh partial; B
	// completes one observation.
	q, err := ParseOne(`
lbqid "AB" {
    element "A" area [0,10]x[0,10] time [9am,10am]
    element "B" area [20,30]x[0,10] time [9am,10am]
    recurrence 1.Days
}`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(q)
	m.Offer(1, pt(5, 5, at(0, 0, 9*tgran.Hour)))
	m.Offer(2, pt(5, 5, at(0, 0, 9*tgran.Hour+600)))
	out := m.Offer(3, pt(25, 5, at(0, 0, 9*tgran.Hour+1200)))
	if !out.CompletedObservation || !out.Satisfied {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestMatcherOverlappingElements(t *testing.T) {
	// A request matching both "continue" and "restart" must keep both
	// possibilities alive: A at 9:00, A at 9:10 (pattern A->A->B).
	q, err := ParseOne(`
lbqid "AAB" {
    element "A1" area [0,10]x[0,10] time [9am,10am]
    element "A2" area [0,10]x[0,10] time [9am,10am]
    element "B"  area [20,30]x[0,10] time [9am,10am]
    recurrence 1.Days
}`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(q)
	m.Offer(1, pt(5, 5, at(0, 0, 9*tgran.Hour)))
	out := m.Offer(2, pt(5, 5, at(0, 0, 9*tgran.Hour+600)))
	if !out.Matched || out.ElementIndex != 1 {
		t.Fatalf("second A should advance to element 1: %+v", out)
	}
	out = m.Offer(3, pt(25, 5, at(0, 0, 9*tgran.Hour+1200)))
	if !out.CompletedObservation || !out.Satisfied {
		t.Fatalf("B should complete: %+v", out)
	}
}

func TestMatchSetOracle(t *testing.T) {
	q := mustExample2(t)
	good := [][]geo.STPoint{
		commutePoints(0, 0), commutePoints(0, 1), commutePoints(0, 2),
		commutePoints(1, 0), commutePoints(1, 1), commutePoints(1, 2),
	}
	if !q.MatchSet(good) {
		t.Fatal("six full commutes over two weeks must match")
	}
	if q.MatchSet(good[:5]) {
		t.Fatal("only two days in week 1 must not match")
	}
	// Wrong order inside an observation.
	bad := commutePoints(0, 3)
	bad[0], bad[3] = bad[3], bad[0]
	if q.MatchSet(append(good[:5], bad)) {
		t.Fatal("time-reversed observation must not match")
	}
	// Wrong length observation.
	if q.MatchSet([][]geo.STPoint{commutePoints(0, 0)[:2]}) {
		t.Fatal("truncated observation must not match")
	}
}

// TestMatcherAgainstOracle replays randomized day schedules through the
// matcher and cross-checks the final verdict against the declarative
// MatchSet oracle built from the days that had complete commutes.
func TestMatcherAgainstOracle(t *testing.T) {
	q := mustExample2(t)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		m := NewMatcher(q)
		var complete [][]geo.STPoint
		var id RequestID
		var lastSat bool
		for week := int64(0); week < 3; week++ {
			for dow := int64(0); dow < 5; dow++ {
				switch rng.Intn(3) {
				case 0: // no activity
				case 1: // partial commute (morning only)
					for _, p := range commutePoints(week, dow)[:2] {
						id++
						lastSat = m.Offer(id, p).Satisfied
					}
				case 2: // full commute
					pts := commutePoints(week, dow)
					for _, p := range pts {
						id++
						lastSat = m.Offer(id, p).Satisfied
					}
					complete = append(complete, pts)
				}
			}
		}
		want := len(complete) > 0 && q.MatchSet(complete)
		if lastSat != m.Satisfied() {
			t.Fatalf("trial %d: outcome/state disagree", trial)
		}
		if m.Satisfied() != want {
			t.Fatalf("trial %d: matcher=%v oracle=%v (%d complete days)",
				trial, m.Satisfied(), want, len(complete))
		}
	}
}

func TestValidateDirect(t *testing.T) {
	q := &LBQID{Name: "x"}
	if q.Validate() == nil {
		t.Fatal("no elements must fail")
	}
	q.Elements = []Element{{Area: geo.Rect{MinX: 1, MaxX: 0}, Window: tgran.NewUInterval(0, 1)}}
	if q.Validate() == nil {
		t.Fatal("invalid area must fail")
	}
}

func TestLBQIDString(t *testing.T) {
	q := mustExample2(t)
	s := q.String()
	for _, want := range []string{"HomeOfficeCommute", "AreaCondominium", "3.Weekdays * 2.Weeks"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() misses %q: %s", want, s)
		}
	}
}

func TestWrappingWindowElement(t *testing.T) {
	// A night-shift pattern whose window wraps midnight.
	q, err := ParseOne(`
lbqid "nightshift" {
    element "Plant" area [0,100]x[0,100] time [23:00,01:00]
    recurrence 2.Days
}`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(q)
	// 23:30 on day 0 and 00:30 on day 2 (belonging to day-1's night).
	out := m.Offer(1, pt(50, 50, at(0, 0, 23*tgran.Hour+1800)))
	if !out.Matched || !out.CompletedObservation {
		t.Fatalf("23:30 must match: %+v", out)
	}
	out = m.Offer(2, pt(50, 50, at(0, 2, 30*tgran.Minute)))
	if !out.Matched {
		t.Fatalf("00:30 must match the wrapped window: %+v", out)
	}
	if !m.Satisfied() {
		t.Fatal("two distinct days must satisfy 2.Days")
	}
	// Noon never matches.
	if out := m.Offer(3, pt(50, 50, at(0, 3, 12*tgran.Hour))); out.Matched {
		t.Fatal("noon must not match a [23:00,01:00] window")
	}
}

func TestMatcherManyPartialsBounded(t *testing.T) {
	// A pattern whose element 0 matches every offer: the partial frontier
	// must stay bounded (maxPartials), not grow with the stream.
	q, err := ParseOne(`
lbqid "greedy" {
    element area [0,1000]x[0,1000] time [00:00,23:59]
    element area [2000,3000]x[0,1000] time [00:00,23:59]
    recurrence 1.Days
}`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(q)
	for i := 0; i < 10*maxPartials; i++ {
		m.Offer(RequestID(i), pt(500, 500, at(0, 0, int64(i))))
	}
	if got := len(m.partials); got > maxPartials {
		t.Fatalf("partials grew unbounded: %d", got)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	q := mustExample2(t)
	q2, err := ParseOne(q.Spec())
	if err != nil {
		t.Fatalf("Spec did not round-trip: %v\n%s", err, q.Spec())
	}
	if q2.Name != q.Name || len(q2.Elements) != len(q.Elements) {
		t.Fatalf("round trip changed the pattern: %s", q2)
	}
	for i := range q.Elements {
		if q.Elements[i].Area != q2.Elements[i].Area {
			t.Fatalf("element %d area changed", i)
		}
		if q.Elements[i].Window.Start != q2.Elements[i].Window.Start ||
			q.Elements[i].Window.End != q2.Elements[i].Window.End {
			t.Fatalf("element %d window changed", i)
		}
	}
	if q2.Recurrence.String() != q.Recurrence.String() {
		t.Fatal("recurrence changed")
	}
	// Empty recurrence also round-trips.
	one, err := ParseOne("lbqid \"x\" {\n element area [0,1]x[0,1] time [09:00,10:00]\n}")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseOne(one.Spec()); err != nil {
		t.Fatalf("empty-recurrence spec: %v\n%s", err, one.Spec())
	}
}
