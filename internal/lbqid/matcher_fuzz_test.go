package lbqid

import (
	"math/rand"
	"testing"

	"histanon/internal/geo"
	"histanon/internal/tgran"
)

// TestMatcherRandomStreamInvariants throws chaotic request streams at
// matchers over randomized patterns and checks structural invariants:
// no panics, monotone satisfaction (once satisfied, stays satisfied
// until Reset), exposed requests are a subset of offered ids, and
// Satisfied implies at least one complete observation.
func TestMatcherRandomStreamInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		// Random pattern: 1-4 elements over a small area grid, random
		// daily windows, random recurrence.
		nElems := 1 + rng.Intn(4)
		q := &LBQID{Name: "fuzz"}
		for e := 0; e < nElems; e++ {
			x := float64(rng.Intn(5)) * 100
			startH := int64(rng.Intn(22))
			q.Elements = append(q.Elements, Element{
				Area:   geo.Rect{MinX: x, MinY: 0, MaxX: x + 150, MaxY: 200},
				Window: tgran.NewUInterval(startH*tgran.Hour, (startH+2)*tgran.Hour-1),
			})
		}
		switch rng.Intn(3) {
		case 0:
			// empty recurrence
		case 1:
			q.Recurrence, _ = tgran.ParseRecurrence("2.Days")
		default:
			q.Recurrence, _ = tgran.ParseRecurrence("2.Weekdays * 2.Weeks")
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("trial %d: invalid pattern: %v", trial, err)
		}

		m := NewMatcher(q)
		offered := map[RequestID]bool{}
		sat := false
		var id RequestID
		for step := 0; step < 400; step++ {
			id++
			offered[id] = true
			p := geo.STPoint{
				P: geo.Point{X: rng.Float64() * 600, Y: rng.Float64() * 250},
				T: int64(rng.Intn(21 * 24 * 3600)),
			}
			// Mostly forward in time, sometimes jumps.
			out := m.Offer(id, p)
			if sat && !out.Satisfied {
				t.Fatalf("trial %d: satisfaction regressed", trial)
			}
			sat = out.Satisfied
			if out.Satisfied && m.Observations() == 0 {
				t.Fatalf("trial %d: satisfied without observations", trial)
			}
			if step%37 == 0 {
				for _, rid := range m.ExposedRequests() {
					if !offered[rid] {
						t.Fatalf("trial %d: exposed unknown request %d", trial, rid)
					}
				}
			}
			if !out.Matched && out.ElementIndex != -1 {
				t.Fatalf("trial %d: unmatched outcome has element index", trial)
			}
			if step%97 == 0 {
				m.Reset()
				sat = false
			}
		}
	}
}
