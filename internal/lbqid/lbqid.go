// Package lbqid implements Location-Based Quasi-Identifiers (paper §4):
// spatio-temporal patterns that, when matched by a user's request
// stream, risk re-identifying the user through external knowledge.
//
// An LBQID is a sequence of ⟨Area, U-TimeInterval⟩ elements plus a
// recurrence formula over time granularities (Def. 1). A set of requests
// matches the LBQID when every element is matched in order and the
// observation times satisfy the recurrence (Defs. 2 and 3). Matching is
// performed continuously with a timed-automaton style matcher
// (the paper points to timed state automata, ref. [4]).
package lbqid

import (
	"fmt"
	"strings"

	"histanon/internal/geo"
	"histanon/internal/tgran"
)

// Element is one step of the pattern: an area and the unanchored daily
// window during which the user is expected there.
type Element struct {
	// Name is an optional label such as "AreaCondominium".
	Name string
	// Area is the spatial extent of the element.
	Area geo.Rect
	// Window is the unanchored time interval, e.g. [7am,9am].
	Window tgran.UInterval
}

// MatchesPoint reports whether an exact request location/time matches
// the element (paper Def. 2).
func (e Element) MatchesPoint(p geo.STPoint) bool {
	return e.Area.Contains(p.P) && e.Window.Contains(p.T)
}

func (e Element) String() string {
	name := e.Name
	if name == "" {
		name = "area"
	}
	return fmt.Sprintf("%s %s @ %s", name, e.Area, e.Window)
}

// LBQID is a location-based quasi-identifier (paper Def. 1).
type LBQID struct {
	// Name labels the pattern, e.g. "HomeOfficeCommute".
	Name string
	// Elements is the spatio-temporal sequence, in order.
	Elements []Element
	// Recurrence is the temporal formula, e.g. 3.Weekdays * 2.Weeks.
	Recurrence tgran.Recurrence
}

// Validate reports structural problems: no elements, invalid areas or
// windows, or an invalid recurrence.
func (q *LBQID) Validate() error {
	if len(q.Elements) == 0 {
		return fmt.Errorf("lbqid %q: no elements", q.Name)
	}
	for i, e := range q.Elements {
		if !e.Area.Valid() {
			return fmt.Errorf("lbqid %q: element %d has invalid area", q.Name, i)
		}
		if err := e.Window.Validate(); err != nil {
			return fmt.Errorf("lbqid %q: element %d: %v", q.Name, i, err)
		}
	}
	if err := q.Recurrence.Validate(); err != nil {
		return fmt.Errorf("lbqid %q: %v", q.Name, err)
	}
	return nil
}

func (q *LBQID) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lbqid %q: ", q.Name)
	for i, e := range q.Elements {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(e.String())
	}
	fmt.Fprintf(&b, " ; recurrence %s", q.Recurrence)
	return b.String()
}

// ElementIndexMatching returns the indexes of the elements the exact
// point matches (an area/window pair can repeat inside a pattern, as in
// the paper's Example 2 where AreaCondominium appears twice).
func (q *LBQID) ElementIndexMatching(p geo.STPoint) []int {
	var out []int
	for i, e := range q.Elements {
		if e.MatchesPoint(p) {
			out = append(out, i)
		}
	}
	return out
}

// MatchSet decides Def. 3 directly: whether the given request points,
// one per element in order (len(points) must be a multiple of
// len(q.Elements)), form complete observations satisfying the
// recurrence. It is the reference oracle the incremental matcher is
// tested against.
func (q *LBQID) MatchSet(observations [][]geo.STPoint) bool {
	var obs []tgran.Observation
	for _, seq := range observations {
		if len(seq) != len(q.Elements) {
			return false
		}
		times := make([]int64, len(seq))
		for i, p := range seq {
			if !q.Elements[i].MatchesPoint(p) {
				return false
			}
			if i > 0 && p.T < seq[i-1].T {
				return false
			}
			times[i] = p.T
		}
		if !q.Recurrence.CompatibleWithSequence(times) {
			return false
		}
		obs = append(obs, times)
	}
	return q.Recurrence.Satisfied(obs)
}

// Spec renders the LBQID in the parseable block format accepted by
// Parse — the round-trippable counterpart of String.
func (q *LBQID) Spec() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lbqid %q {\n", q.Name)
	for _, e := range q.Elements {
		if e.Name != "" {
			fmt.Fprintf(&b, "    element %q area [%g,%g]x[%g,%g] time %s\n",
				e.Name, e.Area.MinX, e.Area.MaxX, e.Area.MinY, e.Area.MaxY, e.Window)
		} else {
			fmt.Fprintf(&b, "    element area [%g,%g]x[%g,%g] time %s\n",
				e.Area.MinX, e.Area.MaxX, e.Area.MinY, e.Area.MaxY, e.Window)
		}
	}
	if len(q.Recurrence.Terms) > 0 {
		fmt.Fprintf(&b, "    recurrence %s\n", q.Recurrence)
	}
	b.WriteString("}\n")
	return b.String()
}
