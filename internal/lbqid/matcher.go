package lbqid

import (
	"histanon/internal/geo"
	"histanon/internal/tgran"
)

// RequestID identifies a request inside the trusted server; the matcher
// reports which requests are part of a (partial or complete) pattern
// exposure.
type RequestID int64

// Outcome describes what a single offered request did to a matcher.
type Outcome struct {
	// Matched reports whether the request matched the first element of
	// the pattern or extended an in-progress observation — exactly the
	// condition under which the TS strategy (paper §6.1) generalizes the
	// request.
	Matched bool
	// ElementIndex is the pattern element the request was consumed as
	// (the furthest-advanced active partial); -1 when Matched is false.
	ElementIndex int
	// CompletedObservation reports that the request finished a full pass
	// through the element sequence.
	CompletedObservation bool
	// Satisfied reports that, counting the finished observations under
	// the current pseudonym, the whole LBQID (including its recurrence)
	// is now matched: the quasi-identifier has been released.
	Satisfied bool
}

// maxPartials bounds the nondeterministic-state frontier of a matcher.
// Patterns whose elements overlap heavily can in principle spawn one
// partial per request; beyond this bound the oldest partial is dropped.
// 64 simultaneous in-flight observations of a single pattern is far past
// anything a daily-recurrence pattern produces.
const maxPartials = 64

// partial is one in-progress observation: the prefix of elements matched
// so far.
type partial struct {
	next  int // index of the next element to match
	times []int64
	reqs  []RequestID
}

// Matcher incrementally matches one user's request stream against one
// LBQID, in the style of a timed state automaton. It tracks several
// partial observations at once (the pattern is nondeterministic when a
// request matches both "restart" and "continue"), the completed
// observations, and whether the recurrence formula is satisfied.
//
// A Matcher is not safe for concurrent use.
type Matcher struct {
	q *LBQID
	// completed observations under the current pseudonym.
	obs     []tgran.Observation
	obsReqs [][]RequestID
	// active partial observations, oldest first.
	partials []partial
	// satisfied latches once the recurrence is met.
	satisfied bool
}

// NewMatcher returns a matcher for q, which must be valid.
func NewMatcher(q *LBQID) *Matcher {
	return &Matcher{q: q}
}

// Pattern returns the LBQID being matched.
func (m *Matcher) Pattern() *LBQID { return m.q }

// Observations returns how many complete observations have accumulated
// under the current pseudonym.
func (m *Matcher) Observations() int { return len(m.obs) }

// Satisfied reports whether the full LBQID (sequence and recurrence) has
// been matched under the current pseudonym.
func (m *Matcher) Satisfied() bool { return m.satisfied }

// Progress returns how many leading recurrence terms are already met.
func (m *Matcher) Progress() int { return m.q.Recurrence.Progress(m.obs) }

// Reset clears all partial and completed state. The TS calls it when the
// user's pseudonym changes: requests under the old pseudonym can no
// longer be linked to new ones, so the old exposure evidence dies with
// it (paper §6.1, step 2).
func (m *Matcher) Reset() {
	m.obs = nil
	m.obsReqs = nil
	m.partials = nil
	m.satisfied = false
}

// Offer feeds one exact request point through the automaton and reports
// what happened.
func (m *Matcher) Offer(id RequestID, p geo.STPoint) Outcome {
	m.expireStale(p.T)

	out := Outcome{ElementIndex: -1}

	// Try to extend existing partials, preferring the most advanced.
	bestIdx := -1
	for i := len(m.partials) - 1; i >= 0; i-- {
		pa := &m.partials[i]
		if m.canExtend(pa, p) {
			if bestIdx == -1 || m.partials[i].next > m.partials[bestIdx].next {
				bestIdx = i
			}
		}
	}

	extended := false
	if bestIdx >= 0 {
		pa := m.partials[bestIdx]
		pa.times = append(append([]int64(nil), pa.times...), p.T)
		pa.reqs = append(append([]RequestID(nil), pa.reqs...), id)
		pa.next++
		out.Matched = true
		out.ElementIndex = pa.next - 1
		extended = true
		if pa.next == len(m.q.Elements) {
			// Completed a full pass through the sequence.
			m.obs = append(m.obs, tgran.Observation(pa.times))
			m.obsReqs = append(m.obsReqs, pa.reqs)
			m.removePartial(bestIdx)
			out.CompletedObservation = true
		} else {
			m.partials[bestIdx] = pa
		}
	}

	// A request matching element 0 also starts a fresh observation,
	// unless it was just consumed as element 0 of an extension (which is
	// the same state).
	if m.q.Elements[0].MatchesPoint(p) && m.q.Recurrence.CompatibleWithSequence([]int64{p.T}) {
		startsFresh := !extended || out.ElementIndex != 0
		if startsFresh && !m.hasEquivalentStart(p.T) {
			if len(m.q.Elements) == 1 {
				m.obs = append(m.obs, tgran.Observation{p.T})
				m.obsReqs = append(m.obsReqs, []RequestID{id})
				out.CompletedObservation = true
			} else {
				m.partials = append(m.partials, partial{
					next:  1,
					times: []int64{p.T},
					reqs:  []RequestID{id},
				})
				if len(m.partials) > maxPartials {
					m.partials = m.partials[1:]
				}
			}
			if !out.Matched {
				out.Matched = true
				out.ElementIndex = 0
			}
		}
	}

	if out.CompletedObservation && !m.satisfied {
		m.satisfied = m.q.Recurrence.Satisfied(m.obs)
	}
	out.Satisfied = m.satisfied
	return out
}

// canExtend reports whether the partial can consume p as its next
// element: the point matches the element, time does not go backwards,
// and the grown observation still fits a single innermost granule.
func (m *Matcher) canExtend(pa *partial, p geo.STPoint) bool {
	if pa.next >= len(m.q.Elements) {
		return false
	}
	if !m.q.Elements[pa.next].MatchesPoint(p) {
		return false
	}
	if len(pa.times) > 0 && p.T < pa.times[len(pa.times)-1] {
		return false
	}
	times := append(append([]int64(nil), pa.times...), p.T)
	return m.q.Recurrence.CompatibleWithSequence(times)
}

// hasEquivalentStart reports whether a partial at state "element 0
// consumed at an instant equivalent to t" already exists; spawning a
// second is redundant because extension eligibility depends only on the
// last time and the granule.
func (m *Matcher) hasEquivalentStart(t int64) bool {
	for _, pa := range m.partials {
		if pa.next == 1 && pa.times[0] == t {
			return true
		}
	}
	return false
}

// expireStale drops partials that can no longer complete: once the clock
// leaves the innermost granule an unfinished observation started in, no
// future request can extend it. With an empty recurrence a partial never
// expires from time alone.
func (m *Matcher) expireStale(now int64) {
	if len(m.q.Recurrence.Terms) == 0 {
		return
	}
	g := m.q.Recurrence.Terms[0].G
	keep := m.partials[:0]
	for _, pa := range m.partials {
		if tgran.SameGranule(g, pa.times[len(pa.times)-1], now) {
			keep = append(keep, pa)
		}
	}
	m.partials = keep
}

func (m *Matcher) removePartial(i int) {
	m.partials = append(m.partials[:i], m.partials[i+1:]...)
}

// ExposedRequests returns the request IDs that constitute the current
// exposure evidence: all completed observations plus all active
// partials. It is computed on demand — an exposure accumulates hundreds
// of requests over weeks, and materializing the list on every Offer
// would make stream processing quadratic.
func (m *Matcher) ExposedRequests() []RequestID {
	var out []RequestID
	for _, reqs := range m.obsReqs {
		out = append(out, reqs...)
	}
	for _, pa := range m.partials {
		out = append(out, pa.reqs...)
	}
	return out
}
