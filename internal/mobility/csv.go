package mobility

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// csvHeader is the column layout of trace files.
var csvHeader = []string{"user", "t", "x", "y", "request", "service"}

// WriteCSV serializes events as a trace file:
//
//	user,t,x,y,request,service
func WriteCSV(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, e := range events {
		rec := []string{
			strconv.FormatInt(int64(e.User), 10),
			strconv.FormatInt(e.Point.T, 10),
			strconv.FormatFloat(e.Point.P.X, 'f', 2, 64),
			strconv.FormatFloat(e.Point.P.Y, 'f', 2, 64),
			strconv.FormatBool(e.Request),
			e.Service,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace file written by WriteCSV.
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("mobility: reading header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("mobility: column %d is %q, want %q", i, header[i], want)
		}
	}
	var out []Event
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		user, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("mobility: line %d: bad user: %v", line, err)
		}
		t, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("mobility: line %d: bad t: %v", line, err)
		}
		x, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("mobility: line %d: bad x: %v", line, err)
		}
		y, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("mobility: line %d: bad y: %v", line, err)
		}
		req, err := strconv.ParseBool(rec[4])
		if err != nil {
			return nil, fmt.Errorf("mobility: line %d: bad request flag: %v", line, err)
		}
		out = append(out, Event{
			User:    phl.UserID(user),
			Point:   geo.STPoint{P: geo.Point{X: x, Y: y}, T: t},
			Request: req,
			Service: rec[5],
		})
	}
}
