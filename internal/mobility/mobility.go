// Package mobility generates synthetic location workloads. The paper has
// no public dataset — carrier traces are proprietary — so experiments
// run on a deterministic, seedable city simulator instead: a rectangular
// city with homes, offices and points of interest; commuter agents that
// reproduce the paper's Example-1 pattern (home→office every weekday
// morning, office→home in the afternoon); and wanderer agents that run
// errands. The generator emits time-ordered location updates, a subset
// of which carry service requests.
//
// The substitution preserves the behaviour the paper's experiments need:
// recurring spatio-temporal patterns (so LBQIDs match), spatial and
// temporal locality (so anonymity sets are non-trivial), and tunable
// user density (the deployment-area analysis of §7).
//
// Two generators share one trajectory engine (the walker type):
// Generate materializes a whole World — agents, events, sorted stream —
// for the experiment suite, and Stream (stream.go) materializes agents
// one at a time from (seed, agent id) for million-agent workloads where
// O(population) resident state is not an option.
package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/tgran"
)

// Config parameterizes a synthetic city scenario. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Seed drives all randomness; equal configs generate equal worlds.
	Seed int64
	// Users is the city population.
	Users int
	// Days is the number of simulated days, starting at engine day 0
	// (a Monday).
	Days int
	// Width and Height are the city extent in meters.
	Width, Height float64
	// Homes, Offices and POIs are the number of candidate buildings of
	// each kind.
	Homes, Offices, POIs int
	// CommuterFrac is the fraction of users on a weekday home↔office
	// schedule; the rest are wanderers visiting POIs.
	CommuterFrac float64
	// Speed is the travel speed in m/s.
	Speed float64
	// SampleEvery is the interval (seconds) between location updates
	// while traveling; idle users emit sparse keep-alive updates.
	SampleEvery int64
	// IdleEvery is the interval between location updates while parked.
	IdleEvery int64
	// RequestProb is the probability that any given location update also
	// carries a service request (commute waypoints always do).
	RequestProb float64
	// ManhattanRoutes makes agents travel along axis-aligned (street
	// grid) paths instead of straight lines: first along x, then along y
	// (or the reverse, chosen per trip). More realistic for urban
	// tracking attacks.
	ManhattanRoutes bool
}

// DefaultConfig is a mid-sized city: 1 km² would be cramped for
// anonymity experiments, so it spans 8×8 km.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		Users:        200,
		Days:         14,
		Width:        8000,
		Height:       8000,
		Homes:        60,
		Offices:      20,
		POIs:         30,
		CommuterFrac: 0.6,
		Speed:        12,
		SampleEvery:  120,
		IdleEvery:    1800,
		RequestProb:  0.05,
	}
}

// Event is one location update; Request marks the updates on which the
// user also invokes a location-based service.
type Event struct {
	User    phl.UserID
	Point   geo.STPoint
	Request bool
	// Service names the invoked service for request events.
	Service string
}

// Place is a named building with a small footprint.
type Place struct {
	Name   string
	Center geo.Point
	Area   geo.Rect
}

// World is a generated scenario: the city layout, the agent roster and
// the time-ordered event stream.
type World struct {
	Config  Config
	Homes   []Place
	Offices []Place
	POIs    []Place
	Agents  []Agent
	Events  []Event
}

// Agent describes one simulated user.
type Agent struct {
	User     phl.UserID
	Commuter bool
	// Home and Office index into the layout's Homes / Offices (Office is
	// -1 for wanderers).
	Home, Office int
	// LeaveHome and LeaveOffice are second-of-day departure times
	// (commuters only).
	LeaveHome, LeaveOffice int64
}

// Generate builds the world for the configuration.
func Generate(cfg Config) *World {
	if cfg.Users <= 0 || cfg.Days <= 0 {
		panic("mobility: Users and Days must be positive")
	}
	if cfg.Homes <= 0 || cfg.Offices <= 0 {
		panic("mobility: need at least one home and one office")
	}
	if cfg.Speed <= 0 || cfg.SampleEvery <= 0 || cfg.IdleEvery <= 0 {
		panic("mobility: Speed, SampleEvery and IdleEvery must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{Config: cfg}
	w.Homes = makePlaces(rng, "home", cfg.Homes, cfg.Width, cfg.Height, 60)
	w.Offices = makePlaces(rng, "office", cfg.Offices, cfg.Width, cfg.Height, 120)
	w.POIs = makePlaces(rng, "poi", cfg.POIs, cfg.Width, cfg.Height, 40)

	for i := 0; i < cfg.Users; i++ {
		a := Agent{
			User:     phl.UserID(i),
			Commuter: rng.Float64() < cfg.CommuterFrac,
			Home:     rng.Intn(cfg.Homes),
			Office:   -1,
		}
		if a.Commuter {
			a.Office = rng.Intn(cfg.Offices)
			// Departures jittered per user but stable across days, in the
			// spirit of Example 1's [7am,8am] / [4pm,6pm] windows.
			a.LeaveHome = 7*tgran.Hour + int64(rng.Intn(int(tgran.Hour)))
			a.LeaveOffice = 16*tgran.Hour + int64(rng.Intn(int(2*tgran.Hour)))
		}
		w.Agents = append(w.Agents, a)
	}

	wk := &walker{
		homes:       w.Homes,
		offices:     w.Offices,
		pois:        w.POIs,
		speed:       cfg.Speed,
		sampleEvery: cfg.SampleEvery,
		idleEvery:   cfg.IdleEvery,
		requestProb: cfg.RequestProb,
		manhattan:   cfg.ManhattanRoutes,
		sink:        func(ev Event) { w.Events = append(w.Events, ev) },
	}
	// Each agent gets an independent generator derived from the master
	// seed so that per-agent streams are stable.
	for i := range w.Agents {
		agentRng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)))
		wk.commuteDays(&w.Agents[i], agentRng, cfg.Days)
	}
	sort.SliceStable(w.Events, func(i, j int) bool { return w.Events[i].Point.T < w.Events[j].Point.T })
	return w
}

func makePlaces(rng randSrc, kind string, n int, width, height, size float64) []Place {
	return placesAt(rng, kind, n, 0, geo.Point{}, width, height, size)
}

// placesAt is makePlaces with a coordinate origin (federation city
// blocks) and a naming offset (so names stay unique across cities).
func placesAt(rng randSrc, kind string, n, nameFrom int, origin geo.Point, width, height, size float64) []Place {
	out := make([]Place, n)
	for i := range out {
		c := geo.Point{
			X: origin.X + size + rng.Float64()*(width-2*size),
			Y: origin.Y + size + rng.Float64()*(height-2*size),
		}
		out[i] = Place{
			Name:   fmt.Sprintf("%s%d", kind, nameFrom+i),
			Center: c,
			Area:   geo.RectAround(c).Expand(size / 2),
		}
	}
	return out
}

// walker is the trajectory engine shared by Generate and Stream: the
// city layout, the movement parameters, and the sink that receives the
// agent's events. It holds no per-agent state — every day function
// takes the agent and its rng as arguments — which is what lets the
// streaming generator run millions of agents through one walker.
type walker struct {
	homes, offices, pois []Place
	speed                float64
	sampleEvery          int64
	idleEvery            int64
	requestProb          float64
	manhattan            bool
	sink                 func(Event)
}

// commuteDays runs the default day structure: weekday commutes for
// commuter agents, errand days for everyone else and on weekends.
func (wk *walker) commuteDays(a *Agent, rng randSrc, days int) {
	for day := 0; day < days; day++ {
		dayStart := int64(day) * tgran.Day
		weekday := day%7 < 5
		if a.Commuter && weekday {
			wk.commuterDay(a, rng, dayStart)
		} else {
			wk.wandererDay(a, rng, dayStart)
		}
	}
}

// commuterDay reproduces the Example-1 pattern: idle at home, travel to
// the office in the morning window, idle there, travel back in the
// afternoon window, idle at home. The four travel endpoints always carry
// service requests — they are the events an LBQID like Example 2 feeds
// on.
func (wk *walker) commuterDay(a *Agent, rng randSrc, dayStart int64) {
	home := wk.homes[a.Home]
	office := wk.offices[a.Office]
	jitter := func() int64 { return int64(rng.Intn(600)) - 300 }

	leaveHome := dayStart + a.LeaveHome + jitter()
	wk.idle(a, rng, home, dayStart, leaveHome)
	wk.request(a, jitterPos(rng, home.Center, 30), leaveHome, "navigation")
	arriveOffice := wk.travel(a, rng, home.Center, office.Center, leaveHome)
	wk.request(a, jitterPos(rng, office.Center, 30), arriveOffice, "news")

	leaveOffice := dayStart + a.LeaveOffice + jitter()
	if leaveOffice <= arriveOffice {
		leaveOffice = arriveOffice + tgran.Hour
	}
	wk.idle(a, rng, office, arriveOffice, leaveOffice)
	wk.request(a, jitterPos(rng, office.Center, 30), leaveOffice, "navigation")
	arriveHome := wk.travel(a, rng, office.Center, home.Center, leaveOffice)
	wk.request(a, jitterPos(rng, home.Center, 30), arriveHome, "weather")
	wk.idle(a, rng, home, arriveHome, dayStart+tgran.Day)
}

// wandererDay strings together one to three errands to random POIs with
// idle periods at home in between.
func (wk *walker) wandererDay(a *Agent, rng randSrc, dayStart int64) {
	wk.errandDay(a, rng, dayStart, 1+rng.Intn(3))
}

// errandDay is wandererDay with the errand count chosen by the caller
// (the rural scenario shape runs zero-or-one-errand days).
func (wk *walker) errandDay(a *Agent, rng randSrc, dayStart int64, errands int) {
	home := wk.homes[a.Home]
	now := dayStart
	for e := 0; e < errands && len(wk.pois) > 0; e++ {
		leave := dayStart + (9+int64(e)*4)*tgran.Hour + int64(rng.Intn(int(tgran.Hour)))
		if leave <= now {
			leave = now + tgran.Hour
		}
		if leave >= dayStart+tgran.Day-tgran.Hour {
			break
		}
		poi := wk.pois[rng.Intn(len(wk.pois))]
		wk.idle(a, rng, home, now, leave)
		arrive := wk.travel(a, rng, home.Center, poi.Center, leave)
		wk.request(a, jitterPos(rng, poi.Center, 30), arrive, "poi-finder")
		dwell := arrive + 900 + int64(rng.Intn(1800))
		wk.idle(a, rng, poi, arrive, dwell)
		now = wk.travel(a, rng, poi.Center, home.Center, dwell)
	}
	wk.idle(a, rng, home, now, dayStart+tgran.Day)
}

// idle emits sparse keep-alive samples while the agent stays at a place.
func (wk *walker) idle(a *Agent, rng randSrc, at Place, from, to int64) {
	for t := from; t < to; t += wk.idleEvery {
		wk.emit(a, rng, jitterPos(rng, at.Center, 20), t, "")
	}
}

// travel emits samples along the path and returns the arrival time.
// Paths are straight lines, or two axis-aligned legs with
// ManhattanRoutes.
func (wk *walker) travel(a *Agent, rng randSrc, from, to geo.Point, depart int64) int64 {
	if wk.manhattan {
		corner := geo.Point{X: to.X, Y: from.Y}
		if rng.Intn(2) == 0 {
			corner = geo.Point{X: from.X, Y: to.Y}
		}
		mid := wk.travelLeg(a, rng, from, corner, depart)
		return wk.travelLeg(a, rng, corner, to, mid)
	}
	return wk.travelLeg(a, rng, from, to, depart)
}

// travelLeg emits samples along one straight segment.
func (wk *walker) travelLeg(a *Agent, rng randSrc, from, to geo.Point, depart int64) int64 {
	dist := from.Dist(to)
	duration := int64(math.Ceil(dist / wk.speed))
	if duration < 1 {
		duration = 1
	}
	for t := int64(0); t < duration; t += wk.sampleEvery {
		frac := float64(t) / float64(duration)
		pos := geo.Point{
			X: from.X + (to.X-from.X)*frac,
			Y: from.Y + (to.Y-from.Y)*frac,
		}
		wk.emit(a, rng, jitterPos(rng, pos, 15), depart+t, "")
	}
	return depart + duration
}

// request emits a location update that carries a service request.
func (wk *walker) request(a *Agent, pos geo.Point, t int64, service string) {
	wk.sink(Event{
		User:    a.User,
		Point:   geo.STPoint{P: pos, T: t},
		Request: true,
		Service: service,
	})
}

// emit records a location update, possibly upgrading it to a background
// request.
func (wk *walker) emit(a *Agent, rng randSrc, pos geo.Point, t int64, service string) {
	ev := Event{User: a.User, Point: geo.STPoint{P: pos, T: t}}
	if rng.Float64() < wk.requestProb {
		ev.Request = true
		ev.Service = "localized-news"
		if service != "" {
			ev.Service = service
		}
	}
	wk.sink(ev)
}

func jitterPos(rng randSrc, c geo.Point, r float64) geo.Point {
	return geo.Point{
		X: c.X + (rng.Float64()*2-1)*r,
		Y: c.Y + (rng.Float64()*2-1)*r,
	}
}

// Requests returns only the events that carry service requests, in time
// order.
func (w *World) Requests() []Event {
	var out []Event
	for _, e := range w.Events {
		if e.Request {
			out = append(out, e)
		}
	}
	return out
}

// CommuterLBQID builds the Example-2 style quasi-identifier for an
// agent: home in the morning, office after arrival, office again in the
// afternoon, home in the evening, observed obsDays weekdays a week for
// weeks weeks. ok is false for non-commuters.
func (w *World) CommuterLBQID(a Agent, obsDays, weeks int64) (string, bool) {
	if !a.Commuter {
		return "", false
	}
	home := w.Homes[a.Home].Area.Expand(60)
	office := w.Offices[a.Office].Area.Expand(60)
	def := fmt.Sprintf(`lbqid "commute-u%d" {
    element "Home"   area [%g,%g]x[%g,%g] time [06:30,09:00]
    element "Office" area [%g,%g]x[%g,%g] time [07:00,11:00]
    element "Office" area [%g,%g]x[%g,%g] time [15:30,19:00]
    element "Home"   area [%g,%g]x[%g,%g] time [16:00,21:00]
    recurrence %d.Weekdays * %d.Weeks
}`,
		int64(a.User),
		home.MinX, home.MaxX, home.MinY, home.MaxY,
		office.MinX, office.MaxX, office.MinY, office.MaxY,
		office.MinX, office.MaxX, office.MinY, office.MaxY,
		home.MinX, home.MaxX, home.MinY, home.MaxY,
		obsDays, weeks)
	return def, true
}
