// Scenario registry: the named workload shapes the comparison harness
// (internal/sim, EXPERIMENTS.md §E-comp) runs the four privacy
// approaches against. scripts/checkexpdocs.sh greps the Name fields
// below and cross-checks them against BENCH_comp.json and
// EXPERIMENTS.md, so the registry is the single source of truth for
// scenario names; DESIGN.md §11 is the prose catalog.

package mobility

import "histanon/internal/tgran"

// Scenario is one named workload shape at any population scale.
type Scenario struct {
	// Name is the registry key ("rush-hour", "stadium", ...).
	Name string
	// Title is the one-line description used in table notes.
	Title string
	// Stresses says what the shape is hard on.
	Stresses string
	// AdversarialFor names the privacy approach the shape is designed
	// to break (DESIGN.md §11).
	AdversarialFor string
	// Config builds the stream configuration for a population; place
	// counts scale with agents so density stays in a realistic band.
	Config func(agents int, seed int64) StreamConfig
}

// Scenarios returns the §E-comp scenario catalog in report order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:           "rush-hour",
			Title:          "rush-hour flash crowd",
			Stresses:       "synchronized departures: 90% of the city starts moving inside one 20-minute window",
			AdversarialFor: "cliquecloak (deferral deadlines) and the ingest path",
			Config:         rushHourConfig,
		},
		{
			Name:           "stadium",
			Title:          "stadium-event convergence",
			Stresses:       "most of the population converges on one venue each evening",
			AdversarialFor: "mixzone (one giant mixing crowd, trivial zone placement elsewhere)",
			Config:         stadiumConfig,
		},
		{
			Name:           "federation",
			Title:          "multi-city federation",
			Stresses:       "four city blocks with 10% cross-city commuters whose long trips are unique",
			AdversarialFor: "generalize (witness sets split along city boundaries)",
			Config:         federationConfig,
		},
		{
			Name:           "rural",
			Title:          "sparse rural traces",
			Stresses:       "30×30 km, sparse sampling, rarely k users nearby",
			AdversarialFor: "every k-anonymity approach; suppress-only degenerates to near-total suppression",
			Config:         ruralConfig,
		},
	}
}

// ScenarioByName looks a scenario up in the registry.
func ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// scalePlaces keeps building density proportional to population with a
// floor, so small smoke runs and million-agent runs share geometry.
func scalePlaces(agents, per, min int) int {
	n := agents / per
	if n < min {
		n = min
	}
	return n
}

func rushHourConfig(agents int, seed int64) StreamConfig {
	return StreamConfig{
		Seed: seed, Agents: agents, Days: 1, Shape: ShapeRushHour,
		Width: 12000, Height: 12000,
		Homes:        scalePlaces(agents, 40, 40),
		Offices:      scalePlaces(agents, 200, 12),
		POIs:         scalePlaces(agents, 250, 20),
		CommuterFrac: 0.9, DepartureWindow: 1200,
		Speed: 12, SampleEvery: 120, IdleEvery: 3600, RequestProb: 0.02,
	}
}

func stadiumConfig(agents int, seed int64) StreamConfig {
	return StreamConfig{
		Seed: seed, Agents: agents, Days: 1, Shape: ShapeStadium,
		Width: 10000, Height: 10000,
		Homes:        scalePlaces(agents, 40, 40),
		Offices:      scalePlaces(agents, 400, 8),
		POIs:         scalePlaces(agents, 250, 16),
		CommuterFrac: 0,
		EventStart:   19 * tgran.Hour, EventDwell: 2*tgran.Hour + 1800, AttendFrac: 0.7,
		Speed: 12, SampleEvery: 120, IdleEvery: 3600, RequestProb: 0.02,
	}
}

func federationConfig(agents int, seed int64) StreamConfig {
	return StreamConfig{
		Seed: seed, Agents: agents, Days: 1, Shape: ShapeFederation,
		Width: 6000, Height: 6000, Cities: 4,
		Homes:        scalePlaces(agents, 160, 30),
		Offices:      scalePlaces(agents, 800, 8),
		POIs:         scalePlaces(agents, 800, 10),
		CommuterFrac: 0.7, CrossCityFrac: 0.1,
		Speed: 14, SampleEvery: 120, IdleEvery: 3600, RequestProb: 0.02,
	}
}

func ruralConfig(agents int, seed int64) StreamConfig {
	return StreamConfig{
		Seed: seed, Agents: agents, Days: 1, Shape: ShapeRural,
		Width: 30000, Height: 30000,
		Homes:        scalePlaces(agents, 100, 30),
		Offices:      scalePlaces(agents, 600, 6),
		POIs:         scalePlaces(agents, 400, 8),
		CommuterFrac: 0.15,
		Speed:        16, SampleEvery: 300, IdleEvery: 7200, RequestProb: 0.02,
	}
}
