package mobility

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"histanon/internal/lbqid"
	"histanon/internal/tgran"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Users = 30
	cfg.Days = 7
	cfg.Homes = 10
	cfg.Offices = 5
	cfg.POIs = 8
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	if !reflect.DeepEqual(a.Events[:100], b.Events[:100]) {
		t.Fatal("same seed must generate identical streams")
	}
	cfg := smallConfig()
	cfg.Seed = 99
	c := Generate(cfg)
	if len(a.Events) == len(c.Events) && reflect.DeepEqual(a.Events[:50], c.Events[:50]) {
		t.Fatal("different seeds generated identical streams")
	}
}

func TestEventsTimeOrdered(t *testing.T) {
	w := Generate(smallConfig())
	for i := 1; i < len(w.Events); i++ {
		if w.Events[i].Point.T < w.Events[i-1].Point.T {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestEventsWithinCityAndHorizon(t *testing.T) {
	cfg := smallConfig()
	w := Generate(cfg)
	horizon := int64(cfg.Days) * tgran.Day
	margin := 100.0 // request jitter can step slightly outside a building
	for _, e := range w.Events {
		p := e.Point
		if p.P.X < -margin || p.P.X > cfg.Width+margin || p.P.Y < -margin || p.P.Y > cfg.Height+margin {
			t.Fatalf("event outside city: %v", p)
		}
		if p.T < 0 || p.T > horizon+tgran.Day {
			t.Fatalf("event outside horizon: %v", p)
		}
	}
}

func TestEveryUserEmits(t *testing.T) {
	cfg := smallConfig()
	w := Generate(cfg)
	seen := map[int64]bool{}
	reqs := map[int64]int{}
	for _, e := range w.Events {
		seen[int64(e.User)] = true
		if e.Request {
			reqs[int64(e.User)]++
		}
	}
	if len(seen) != cfg.Users {
		t.Fatalf("only %d of %d users emitted events", len(seen), cfg.Users)
	}
	for u := 0; u < cfg.Users; u++ {
		if reqs[int64(u)] == 0 {
			t.Fatalf("user %d issued no requests", u)
		}
	}
}

func TestCommuterPattern(t *testing.T) {
	cfg := smallConfig()
	w := Generate(cfg)
	var commuter *Agent
	for i := range w.Agents {
		if w.Agents[i].Commuter {
			commuter = &w.Agents[i]
			break
		}
	}
	if commuter == nil {
		t.Fatal("no commuters generated")
	}
	office := w.Offices[commuter.Office].Area.Expand(60)
	// On each of the first five days (Mon-Fri) the commuter must appear
	// at the office during working hours.
	for day := int64(0); day < 5; day++ {
		found := false
		for _, e := range w.Events {
			if e.User != commuter.User {
				continue
			}
			sod := e.Point.T - day*tgran.Day
			if sod < 0 || sod >= tgran.Day {
				continue
			}
			if office.Contains(e.Point.P) && sod > 8*tgran.Hour && sod < 19*tgran.Hour {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("commuter %v never at office on day %d", commuter.User, day)
		}
	}
}

func TestWeekendNoCommute(t *testing.T) {
	cfg := smallConfig()
	w := Generate(cfg)
	for _, a := range w.Agents {
		if !a.Commuter {
			continue
		}
		office := w.Offices[a.Office].Area
		for _, e := range w.Events {
			if e.User != a.User {
				continue
			}
			day := e.Point.T / tgran.Day
			if day%7 >= 5 && office.Contains(e.Point.P) {
				t.Fatalf("commuter %v at the office on weekend day %d", a.User, day)
			}
		}
		break // one commuter suffices
	}
}

func TestRequestsSubset(t *testing.T) {
	w := Generate(smallConfig())
	reqs := w.Requests()
	if len(reqs) == 0 || len(reqs) >= len(w.Events) {
		t.Fatalf("requests=%d events=%d", len(reqs), len(w.Events))
	}
	for _, r := range reqs {
		if !r.Request || r.Service == "" {
			t.Fatalf("request event malformed: %+v", r)
		}
	}
}

func TestCommuterLBQIDParsesAndMatches(t *testing.T) {
	cfg := smallConfig()
	cfg.Days = 14
	w := Generate(cfg)
	var commuter *Agent
	for i := range w.Agents {
		if w.Agents[i].Commuter {
			commuter = &w.Agents[i]
			break
		}
	}
	def, ok := w.CommuterLBQID(*commuter, 3, 2)
	if !ok {
		t.Fatal("commuter must have an LBQID")
	}
	q, err := lbqid.ParseOne(def)
	if err != nil {
		t.Fatalf("generated LBQID does not parse: %v\n%s", err, def)
	}
	// Feeding the commuter's own full location stream (not only the
	// requests) through the matcher must satisfy the pattern: the agent
	// commutes five days a week for two weeks.
	m := lbqid.NewMatcher(q)
	var id lbqid.RequestID
	for _, e := range w.Events {
		if e.User != commuter.User {
			continue
		}
		id++
		m.Offer(id, e.Point)
	}
	if !m.Satisfied() {
		t.Fatalf("two weeks of commuting must match %q (observations=%d, progress=%d)",
			q.Name, m.Observations(), m.Progress())
	}

	if _, ok := w.CommuterLBQID(Agent{Commuter: false}, 3, 2); ok {
		t.Fatal("wanderers have no commute LBQID")
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"users":  func(c *Config) { c.Users = 0 },
		"days":   func(c *Config) { c.Days = 0 },
		"homes":  func(c *Config) { c.Homes = 0 },
		"speed":  func(c *Config) { c.Speed = 0 },
		"sample": func(c *Config) { c.SampleEvery = 0 },
	} {
		cfg := smallConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			Generate(cfg)
		}()
	}
}

func TestCSVRoundTrip(t *testing.T) {
	w := Generate(smallConfig())
	events := w.Events[:500]
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip length %d want %d", len(got), len(events))
	}
	for i := range got {
		if got[i].User != events[i].User || got[i].Point.T != events[i].Point.T ||
			got[i].Request != events[i].Request || got[i].Service != events[i].Service {
			t.Fatalf("row %d differs: %+v vs %+v", i, got[i], events[i])
		}
		// Coordinates go through 2-decimal formatting.
		if d := got[i].Point.P.Dist(events[i].Point.P); d > 0.02 {
			t.Fatalf("row %d position off by %g", i, d)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"nope,t,x,y,request,service\n",
		"user,t,x,y,request,service\nx,0,0,0,true,s\n",
		"user,t,x,y,request,service\n1,z,0,0,true,s\n",
		"user,t,x,y,request,service\n1,0,z,0,true,s\n",
		"user,t,x,y,request,service\n1,0,0,z,true,s\n",
		"user,t,x,y,request,service\n1,0,0,0,maybe,s\n",
	} {
		if _, err := ReadCSV(bytes.NewBufferString(in)); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestManhattanRoutes(t *testing.T) {
	cfg := smallConfig()
	cfg.ManhattanRoutes = true
	w := Generate(cfg)
	// Sanity: determinism and ordering hold in Manhattan mode too.
	w2 := Generate(cfg)
	if len(w.Events) != len(w2.Events) {
		t.Fatal("manhattan mode broke determinism")
	}
	for i := 1; i < len(w.Events); i++ {
		if w.Events[i].Point.T < w.Events[i-1].Point.T {
			t.Fatalf("events out of order at %d", i)
		}
	}
	// Travel samples move along one axis at a time: for consecutive
	// samples of the same user within a short gap, at least 80% of moves
	// should be axis-dominated (jitter blurs exact alignment).
	byUser := map[int64][]Event{}
	for _, e := range w.Events {
		byUser[int64(e.User)] = append(byUser[int64(e.User)], e)
	}
	axis, total := 0, 0
	for _, evs := range byUser {
		for i := 1; i < len(evs); i++ {
			dt := evs[i].Point.T - evs[i-1].Point.T
			if dt <= 0 || dt > cfg.SampleEvery {
				continue // idle gap or teleport between segments
			}
			dx := evs[i].Point.P.X - evs[i-1].Point.P.X
			dy := evs[i].Point.P.Y - evs[i-1].Point.P.Y
			ax, ay := math.Abs(dx), math.Abs(dy)
			if ax < 1 && ay < 1 {
				continue // stationary
			}
			total++
			if ax > 4*ay || ay > 4*ax {
				axis++
			}
		}
	}
	if total == 0 {
		t.Fatal("no travel samples found")
	}
	if frac := float64(axis) / float64(total); frac < 0.8 {
		t.Fatalf("only %.0f%% of moves are axis-aligned", 100*frac)
	}
}
