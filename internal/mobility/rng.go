// Streaming randomness: the materialized Generate path keeps using
// math/rand (its output is pinned by checked-in experiment tables), but
// a *rand.Rand costs ~5 KB of heap per source — fatal at a million
// agents. The streaming generator instead derives an inline splitmix64
// state from (seed, agent id), so materializing an agent allocates
// nothing and any agent's trajectory can be regenerated independently
// of every other agent.

package mobility

// randSrc is the randomness a trajectory consumes. *math/rand.Rand (the
// materialized Generate path) and *smRand (the streaming path) both
// satisfy it.
type randSrc interface {
	Float64() float64
	Intn(n int) int
}

// smRand is a splitmix64 generator held inline (no allocation, no
// shared state). Distinct (seed, stream) pairs yield statistically
// independent sequences, which is what makes agent trajectories a pure
// function of (seed, agent id).
type smRand struct{ state uint64 }

// newSMRand derives the generator for one (seed, stream) pair.
func newSMRand(seed int64, stream uint64) smRand {
	r := smRand{state: uint64(seed)*0x9e3779b97f4a7c15 ^ (stream+1)*0xbf58476d1ce4e5b9}
	r.next() // burn one output to decorrelate adjacent streams
	return r
}

func (r *smRand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *smRand) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). The modulo bias is < n/2^64 —
// irrelevant at the simulator's small n.
func (r *smRand) Intn(n int) int {
	if n <= 0 {
		panic("mobility: Intn n <= 0")
	}
	return int(r.next() % uint64(n))
}
