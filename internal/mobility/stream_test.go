package mobility

import (
	"reflect"
	"testing"

	"histanon/internal/geo"
)

func testStreamConfig(shape Shape, agents int) StreamConfig {
	sc, ok := ScenarioByName(string(shape))
	if !ok {
		// The commute shape has no scenario entry; use rush-hour geometry
		// without the compressed window.
		cfg := rushHourConfig(agents, 7)
		cfg.Shape = shape
		cfg.DepartureWindow = 0
		return cfg
	}
	return sc.Config(agents, 7)
}

func collectAgent(s *Stream, id int) []Event {
	var out []Event
	s.AgentEvents(id, func(ev Event) { out = append(out, ev) })
	return out
}

// TestStreamDeterministic pins the tentpole guarantee: an agent's
// trajectory is a pure function of (seed, agent id) — identical across
// runs, across Stream instances, and independent of which other agents
// were generated before it.
func TestStreamDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		cfg := sc.Config(200, 11)
		a := NewStream(cfg)
		b := NewStream(cfg)
		// Generate unrelated agents first on b only: id 5 must not care.
		collectAgent(b, 0)
		collectAgent(b, 199)
		for _, id := range []int{0, 5, 42, 199} {
			ea, eb := collectAgent(a, id), collectAgent(b, id)
			if len(ea) == 0 {
				t.Fatalf("%s: agent %d emitted no events", sc.Name, id)
			}
			if !reflect.DeepEqual(ea, eb) {
				t.Errorf("%s: agent %d trajectories differ across streams", sc.Name, id)
			}
		}
	}
}

func TestStreamAgentMatchesEvents(t *testing.T) {
	s := NewStream(testStreamConfig(ShapeRushHour, 100))
	for id := 0; id < 100; id += 7 {
		got := s.AgentEvents(id, func(Event) {})
		if want := s.Agent(id); !reflect.DeepEqual(got, want) {
			t.Fatalf("agent %d: AgentEvents roster %+v != Agent %+v", id, got, want)
		}
	}
}

// TestStreamEventsOrdered: per-agent streams must be monotone in time —
// the PHL append fast path and the batch ingest channel both depend on
// it — and every agent must emit at least one request over a day.
func TestStreamEventsOrdered(t *testing.T) {
	for _, sc := range Scenarios() {
		cfg := sc.Config(150, 3)
		s := NewStream(cfg)
		requests := 0
		for id := 0; id < cfg.Agents; id++ {
			last := int64(-1)
			n := 0
			s.AgentEvents(id, func(ev Event) {
				if ev.Point.T < last {
					t.Fatalf("%s: agent %d time went backwards (%d < %d)", sc.Name, id, ev.Point.T, last)
				}
				last = ev.Point.T
				n++
				if ev.Request {
					requests++
				}
			})
			if n == 0 {
				t.Fatalf("%s: agent %d emitted nothing", sc.Name, id)
			}
		}
		if requests == 0 {
			t.Fatalf("%s: no service requests in the whole workload", sc.Name)
		}
	}
}

// TestStadiumConvergence: the stadium shape must actually converge —
// a majority of agents requesting service at the venue in the event
// window is what makes it the mix-zone stress case.
func TestStadiumConvergence(t *testing.T) {
	cfg := testStreamConfig(ShapeStadium, 200)
	s := NewStream(cfg)
	venue, ok := s.Venue()
	if !ok {
		t.Fatal("stadium stream has no venue")
	}
	zone := venue.Area.Expand(200)
	window := geo.Interval{Start: cfg.EventStart - 3600, End: cfg.EventStart + cfg.EventDwell + 3600}
	attendees := 0
	for id := 0; id < cfg.Agents; id++ {
		seen := false
		s.AgentEvents(id, func(ev Event) {
			if ev.Request && zone.Contains(ev.Point.P) && window.Contains(ev.Point.T) {
				seen = true
			}
		})
		if seen {
			attendees++
		}
	}
	if frac := float64(attendees) / float64(cfg.Agents); frac < 0.4 {
		t.Fatalf("only %.0f%% of agents converge on the venue, want ≥40%%", 100*frac)
	}
}

// TestFederationCrossCity: the federation shape must produce cross-city
// commuters and agents spread over every city block.
func TestFederationCrossCity(t *testing.T) {
	cfg := testStreamConfig(ShapeFederation, 400)
	s := NewStream(cfg)
	cities := cfg.Cities
	homeCities := map[int]bool{}
	crossCity := 0
	for id := 0; id < cfg.Agents; id++ {
		a := s.Agent(id)
		hc := a.Home / cfg.Homes
		homeCities[hc] = true
		if a.Commuter && a.Office/cfg.Offices != hc {
			crossCity++
		}
	}
	if len(homeCities) != cities {
		t.Fatalf("agents live in %d cities, want %d", len(homeCities), cities)
	}
	if crossCity == 0 {
		t.Fatal("no cross-city commuters in the federation shape")
	}
}

// TestStreamLayoutBounded: resident state is the layout only, and the
// layout scales with places, not population.
func TestStreamLayoutBounded(t *testing.T) {
	small := NewStream(testStreamConfig(ShapeRural, 1000))
	big := NewStream(testStreamConfig(ShapeRural, 100000))
	if len(big.Homes()) >= 100000/10 {
		t.Fatalf("layout grows too fast: %d homes for 100k agents", len(big.Homes()))
	}
	if len(small.Homes()) == 0 || len(small.POIs()) == 0 {
		t.Fatal("empty layout")
	}
}

func TestStreamPanicsOnBadConfig(t *testing.T) {
	bad := []StreamConfig{
		{},
		{Agents: 10, Days: 1, Homes: 1, Offices: 1}, // zero speed
		{Agents: 10, Days: 1, Homes: 0, Offices: 1, Speed: 1, SampleEvery: 1, IdleEvery: 1},
		{Agents: 10, Days: 1, Homes: 1, Offices: 1, Speed: 1, SampleEvery: 1,
			IdleEvery: 1, Shape: ShapeStadium}, // stadium without event times
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: expected panic", i)
				}
			}()
			NewStream(cfg)
		}()
	}
}

// TestCommuteShapeMirrorsGenerate: the shared walker must give the
// streaming commute shape the same day structure Generate uses (idle →
// travel with endpoint requests → idle), visible as four service
// requests per weekday for a commuter.
func TestCommuteShapeMirrorsGenerate(t *testing.T) {
	cfg := testStreamConfig(ShapeCommute, 50)
	cfg.CommuterFrac = 1
	cfg.RequestProb = 0
	cfg.Days = 1 // day 0 is a Monday
	s := NewStream(cfg)
	reqs := 0
	s.AgentEvents(3, func(ev Event) {
		if ev.Request {
			reqs++
		}
	})
	if reqs != 4 {
		t.Fatalf("commuter weekday carried %d requests, want 4", reqs)
	}
}
