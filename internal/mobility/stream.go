// Streaming agent generation: Stream materializes agents purely from
// (seed, agent id), holding only the city layout resident — O(places),
// never O(population) — so workloads scale to millions of agents on one
// node. On top of the walker's commute/errand days it adds the scenario
// shapes of EXPERIMENTS.md §E-comp (see scenarios.go for the registry
// and DESIGN.md §11 for the catalog):
//
//   - rush-hour: a flash crowd — departures compressed into a short
//     window so the whole city moves at once;
//   - stadium: evening convergence of most of the population on one
//     venue, the mix-zone stress case;
//   - federation: several city blocks with a minority of cross-city
//     commuters, splitting anonymity sets along city boundaries;
//   - rural: a sparse 30×30 km area where k users are rarely nearby
//     and k-anonymity is hardest.

package mobility

import (
	"math"

	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/tgran"
)

// Shape selects a scenario's day structure.
type Shape string

// The scenario shapes. ShapeCommute is the Generate-equivalent default;
// the other four are the §E-comp workloads.
const (
	ShapeCommute    Shape = "commute"
	ShapeRushHour   Shape = "rush-hour"
	ShapeStadium    Shape = "stadium"
	ShapeFederation Shape = "federation"
	ShapeRural      Shape = "rural"
)

// StreamConfig parameterizes a streaming workload. Width/Height and the
// place counts are per city; Cities > 1 lays city blocks out on a grid
// separated by half a city width (the federation shape).
type StreamConfig struct {
	// Seed drives all randomness; agent id selects the per-agent stream.
	Seed int64
	// Agents is the population; agents are materialized on demand, so
	// this bounds id range, not memory.
	Agents int
	// Days is the number of simulated days starting at day 0 (a Monday).
	Days int
	// Shape selects the day structure.
	Shape Shape
	// Width and Height are the extent of one city in meters.
	Width, Height float64
	// Homes, Offices and POIs are per-city building counts.
	Homes, Offices, POIs int
	// Cities is the number of city blocks (0 and 1 mean a single city).
	Cities int
	// CommuterFrac is the fraction of agents on a commuter schedule.
	CommuterFrac float64
	// CrossCityFrac is the fraction of commuters whose office is in a
	// different city than their home (federation only).
	CrossCityFrac float64
	// DepartureWindow, when positive, compresses commuter departures
	// into [08:00, 08:00+window] and [17:00, 17:00+window] (the
	// rush-hour flash crowd); zero keeps the Example-1 windows.
	DepartureWindow int64
	// EventStart and EventDwell place the stadium event: start is the
	// second-of-day the event begins, dwell how long attendees stay.
	EventStart, EventDwell int64
	// AttendFrac is the per-day probability an agent attends the event.
	AttendFrac float64
	// Speed, SampleEvery, IdleEvery and RequestProb are as in Config.
	Speed       float64
	SampleEvery int64
	IdleEvery   int64
	RequestProb float64
	// ManhattanRoutes is as in Config.
	ManhattanRoutes bool
}

// Stream streams per-agent trajectories without resident agent state.
// It is immutable after NewStream and safe for concurrent AgentEvents
// calls — the worker-pool driver in internal/sim relies on both.
type Stream struct {
	cfg    StreamConfig
	cities int
	homes  []Place
	office []Place
	pois   []Place
	venue  Place
}

// agentStreamBase keeps agent rng streams clear of the layout stream.
const (
	layoutStream    uint64 = 1 << 40
	agentStreamBase uint64 = 0
)

// NewStream validates the configuration and builds the city layout —
// the only resident state.
func NewStream(cfg StreamConfig) *Stream {
	if cfg.Agents <= 0 || cfg.Days <= 0 {
		panic("mobility: Agents and Days must be positive")
	}
	if cfg.Homes <= 0 || cfg.Offices <= 0 {
		panic("mobility: need at least one home and one office per city")
	}
	if cfg.Speed <= 0 || cfg.SampleEvery <= 0 || cfg.IdleEvery <= 0 {
		panic("mobility: Speed, SampleEvery and IdleEvery must be positive")
	}
	if cfg.Shape == ShapeStadium && (cfg.EventStart <= 0 || cfg.EventDwell <= 0) {
		panic("mobility: stadium shape needs EventStart and EventDwell")
	}
	cities := cfg.Cities
	if cities < 1 {
		cities = 1
	}
	s := &Stream{cfg: cfg, cities: cities}
	rng := newSMRand(cfg.Seed, layoutStream)
	for c := 0; c < cities; c++ {
		origin := s.cityOrigin(c)
		s.homes = append(s.homes, placesAt(&rng, "home", cfg.Homes, c*cfg.Homes, origin, cfg.Width, cfg.Height, 60)...)
		s.office = append(s.office, placesAt(&rng, "office", cfg.Offices, c*cfg.Offices, origin, cfg.Width, cfg.Height, 120)...)
		s.pois = append(s.pois, placesAt(&rng, "poi", cfg.POIs, c*cfg.POIs, origin, cfg.Width, cfg.Height, 40)...)
	}
	if cfg.Shape == ShapeStadium {
		center := geo.Point{X: cfg.Width / 2, Y: cfg.Height / 2}
		s.venue = Place{Name: "venue", Center: center, Area: geo.RectAround(center).Expand(150)}
	}
	return s
}

// cityOrigin lays city blocks on a square grid separated by half a city
// width, so inter-city trips are long and cross a visible gap.
func (s *Stream) cityOrigin(c int) geo.Point {
	cols := int(math.Ceil(math.Sqrt(float64(s.cities))))
	return geo.Point{
		X: float64(c%cols) * (s.cfg.Width + s.cfg.Width/2),
		Y: float64(c/cols) * (s.cfg.Height + s.cfg.Height/2),
	}
}

// Config returns the stream's configuration.
func (s *Stream) Config() StreamConfig { return s.cfg }

// Homes returns the layout's homes across all cities.
func (s *Stream) Homes() []Place { return s.homes }

// Offices returns the layout's offices across all cities.
func (s *Stream) Offices() []Place { return s.office }

// POIs returns the layout's points of interest across all cities.
func (s *Stream) POIs() []Place { return s.pois }

// Venue returns the stadium venue; ok is false for other shapes.
func (s *Stream) Venue() (Place, bool) {
	return s.venue, s.cfg.Shape == ShapeStadium
}

// Agent materializes agent id's roster entry. The result is a pure
// function of (Seed, id) — same across runs and worker partitions.
func (s *Stream) Agent(id int) Agent {
	rng := newSMRand(s.cfg.Seed, agentStreamBase+uint64(id))
	return s.deriveAgent(id, &rng)
}

func (s *Stream) deriveAgent(id int, rng *smRand) Agent {
	a := Agent{User: phl.UserID(id), Office: -1}
	city := 0
	if s.cities > 1 {
		city = rng.Intn(s.cities)
	}
	a.Commuter = rng.Float64() < s.cfg.CommuterFrac
	a.Home = city*s.cfg.Homes + rng.Intn(s.cfg.Homes)
	if a.Commuter {
		officeCity := city
		if s.cities > 1 && rng.Float64() < s.cfg.CrossCityFrac {
			// A cross-city commuter: pick any other city.
			officeCity = rng.Intn(s.cities - 1)
			if officeCity >= city {
				officeCity++
			}
		}
		a.Office = officeCity*s.cfg.Offices + rng.Intn(s.cfg.Offices)
		if s.cfg.DepartureWindow > 0 {
			a.LeaveHome = 8*tgran.Hour + int64(rng.Intn(int(s.cfg.DepartureWindow)))
			a.LeaveOffice = 17*tgran.Hour + int64(rng.Intn(int(s.cfg.DepartureWindow)))
		} else {
			a.LeaveHome = 7*tgran.Hour + int64(rng.Intn(int(tgran.Hour)))
			a.LeaveOffice = 16*tgran.Hour + int64(rng.Intn(int(2*tgran.Hour)))
		}
	}
	return a
}

// AgentEvents generates agent id's full trajectory, calling yield for
// every event in non-decreasing time order, and returns the roster
// entry. It allocates no per-agent state beyond one inline rng, so
// callers can stream any number of agents with bounded memory.
func (s *Stream) AgentEvents(id int, yield func(Event)) Agent {
	rng := newSMRand(s.cfg.Seed, agentStreamBase+uint64(id))
	a := s.deriveAgent(id, &rng)
	// A day's last trip can spill a few samples past midnight; lift the
	// next day's first events onto the spill so the per-agent stream
	// stays monotone (the PHL and the wire batch path both prefer it).
	last := int64(0)
	wk := s.walker(func(ev Event) {
		if ev.Point.T < last {
			ev.Point.T = last
		}
		last = ev.Point.T
		yield(ev)
	})
	for day := 0; day < s.cfg.Days; day++ {
		s.agentDay(wk, &a, &rng, day)
	}
	return a
}

func (s *Stream) walker(sink func(Event)) *walker {
	return &walker{
		homes:       s.homes,
		offices:     s.office,
		pois:        s.pois,
		speed:       s.cfg.Speed,
		sampleEvery: s.cfg.SampleEvery,
		idleEvery:   s.cfg.IdleEvery,
		requestProb: s.cfg.RequestProb,
		manhattan:   s.cfg.ManhattanRoutes,
		sink:        sink,
	}
}

// agentDay dispatches one simulated day through the shape's structure.
func (s *Stream) agentDay(wk *walker, a *Agent, rng *smRand, day int) {
	dayStart := int64(day) * tgran.Day
	weekday := day%7 < 5
	switch s.cfg.Shape {
	case ShapeStadium:
		if rng.Float64() < s.cfg.AttendFrac {
			wk.stadiumDay(a, rng, dayStart, s.venue, s.cfg.EventStart, s.cfg.EventDwell)
		} else {
			wk.errandDay(a, rng, dayStart, rng.Intn(2))
		}
	case ShapeRural:
		// Sparse days: most agents stay home or run at most one errand.
		if a.Commuter && weekday {
			wk.commuterDay(a, rng, dayStart)
		} else {
			wk.errandDay(a, rng, dayStart, rng.Intn(2))
		}
	default: // commute, rush-hour, federation: the classic day structure
		if a.Commuter && weekday {
			wk.commuterDay(a, rng, dayStart)
		} else {
			wk.wandererDay(a, rng, dayStart)
		}
	}
}

// stadiumDay converges the agent on the venue so that arrival lands in
// a ±15-minute window around the event start — the synchronized crowd
// that stresses mix-zone placement and floods the ingest path.
func (wk *walker) stadiumDay(a *Agent, rng randSrc, dayStart int64, venue Place, eventStart, dwell int64) {
	home := wk.homes[a.Home]
	target := dayStart + eventStart + int64(rng.Intn(1800)) - 900
	dist := home.Center.Dist(venue.Center)
	if wk.manhattan {
		dist = math.Abs(venue.Center.X-home.Center.X) + math.Abs(venue.Center.Y-home.Center.Y)
	}
	depart := target - int64(math.Ceil(dist/wk.speed))
	if depart < dayStart {
		depart = dayStart
	}
	wk.idle(a, rng, home, dayStart, depart)
	wk.request(a, jitterPos(rng, home.Center, 30), depart, "navigation")
	arrive := wk.travel(a, rng, home.Center, venue.Center, depart)
	wk.request(a, jitterPos(rng, venue.Center, 60), arrive, "poi-finder")
	leave := arrive + dwell + int64(rng.Intn(900))
	wk.idle(a, rng, venue, arrive, leave)
	wk.request(a, jitterPos(rng, venue.Center, 60), leave, "navigation")
	back := wk.travel(a, rng, venue.Center, home.Center, leave)
	wk.idle(a, rng, home, back, dayStart+tgran.Day)
}
