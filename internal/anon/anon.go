// Package anon implements the anonymity notions of the paper's §5: the
// anonymity set of a single generalized request and Historical
// k-anonymity over a linked set of requests (Def. 8).
package anon

import (
	"histanon/internal/geo"
	"histanon/internal/phl"
)

// AnonymitySet returns the users who could have issued a request with
// the given generalized context: those with a location sample inside the
// box. This is the single-request notion of location k-anonymity used by
// Gruteser–Grunwald (paper ref. [11]) — the set of *potential* senders,
// the paper's deliberately weaker requirement compared to ref. [9].
func AnonymitySet(store phl.Storer, box geo.STBox) []phl.UserID {
	return store.UsersIn(box)
}

// IsKAnonymous reports whether a single generalized context covers at
// least k potential senders.
func IsKAnonymous(store phl.Storer, box geo.STBox, k int) bool {
	return store.CountUsersIn(box) >= k
}

// HistoricalAnonymitySet returns the users whose Personal History of
// Locations is LT-consistent with every one of the generalized contexts
// (paper Def. 7): every user in the set could have issued the whole
// linked request series.
func HistoricalAnonymitySet(store phl.Storer, boxes []geo.STBox) []phl.UserID {
	return store.LTConsistentUsers(boxes)
}

// HistoricalLevel returns the achieved historical anonymity level of a
// request series issued by issuer: 1 (the issuer alone) plus the number
// of other users LT-consistent with the series. The issuer's own history
// is not required to be consistent (it trivially should be, since the
// contexts generalize the issuer's true positions) and is never counted
// twice.
func HistoricalLevel(store phl.Storer, issuer phl.UserID, boxes []geo.STBox) int {
	level := 1
	for _, u := range store.LTConsistentUsers(boxes) {
		if u != issuer {
			level++
		}
	}
	return level
}

// SatisfiesHistoricalK decides Def. 8: the request series of issuer
// satisfies historical k-anonymity when there exist k−1 personal
// histories of other users, each LT-consistent with the series.
func SatisfiesHistoricalK(store phl.Storer, issuer phl.UserID, boxes []geo.STBox, k int) bool {
	if k <= 1 {
		return true
	}
	need := k - 1
	for _, u := range store.LTConsistentUsers(boxes) {
		if u == issuer {
			continue
		}
		need--
		if need == 0 {
			return true
		}
	}
	return false
}

// Witnesses returns up to k−1 users, other than the issuer, whose
// histories are LT-consistent with the series — the explicit witnesses
// of Def. 8. ok is false when fewer than k−1 exist.
func Witnesses(store phl.Storer, issuer phl.UserID, boxes []geo.STBox, k int) ([]phl.UserID, bool) {
	if k <= 1 {
		return nil, true
	}
	var out []phl.UserID
	for _, u := range store.LTConsistentUsers(boxes) {
		if u == issuer {
			continue
		}
		out = append(out, u)
		if len(out) == k-1 {
			return out, true
		}
	}
	return out, k <= 1
}
