package anon

import (
	"testing"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

func pt(x, y float64, t int64) geo.STPoint {
	return geo.STPoint{P: geo.Point{X: x, Y: y}, T: t}
}

func box(x1, y1, x2, y2 float64, t1, t2 int64) geo.STBox {
	return geo.STBox{
		Area: geo.Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2},
		Time: geo.Interval{Start: t1, End: t2},
	}
}

// commuteStore builds a store where users 1,2,3 share a home area at
// t≈100 but only 1,2 reach the office at t≈200, and user 4 is elsewhere.
func commuteStore() *phl.Store {
	s := phl.NewStore()
	s.Record(1, pt(10, 10, 100))
	s.Record(1, pt(500, 500, 200))
	s.Record(2, pt(12, 12, 105))
	s.Record(2, pt(505, 505, 205))
	s.Record(3, pt(8, 8, 95))
	s.Record(3, pt(900, 0, 200))
	s.Record(4, pt(700, 700, 100))
	return s
}

var (
	homeBox   = box(0, 0, 20, 20, 90, 110)
	officeBox = box(490, 490, 510, 510, 190, 210)
)

func TestAnonymitySet(t *testing.T) {
	s := commuteStore()
	set := AnonymitySet(s, homeBox)
	if len(set) != 3 {
		t.Fatalf("home anonymity set = %v", set)
	}
	if !IsKAnonymous(s, homeBox, 3) || IsKAnonymous(s, homeBox, 4) {
		t.Fatal("home box must be exactly 3-anonymous")
	}
}

func TestHistoricalAnonymitySet(t *testing.T) {
	s := commuteStore()
	series := []geo.STBox{homeBox, officeBox}
	set := HistoricalAnonymitySet(s, series)
	if len(set) != 2 || set[0] != 1 || set[1] != 2 {
		t.Fatalf("historical set = %v", set)
	}
}

func TestHistoricalLevel(t *testing.T) {
	s := commuteStore()
	series := []geo.STBox{homeBox, officeBox}
	// Issuer 1: itself plus witness 2.
	if got := HistoricalLevel(s, 1, series); got != 2 {
		t.Fatalf("level for issuer 1 = %d", got)
	}
	// A hypothetical issuer not in the store: both consistent users are
	// witnesses.
	if got := HistoricalLevel(s, 99, series); got != 3 {
		t.Fatalf("level for external issuer = %d", got)
	}
	// Single home request: issuer 1 plus witnesses 2 and 3.
	if got := HistoricalLevel(s, 1, []geo.STBox{homeBox}); got != 3 {
		t.Fatalf("single-request level = %d", got)
	}
}

func TestSatisfiesHistoricalK(t *testing.T) {
	s := commuteStore()
	series := []geo.STBox{homeBox, officeBox}
	if !SatisfiesHistoricalK(s, 1, series, 2) {
		t.Fatal("k=2 must hold: user 2 is a witness")
	}
	if SatisfiesHistoricalK(s, 1, series, 3) {
		t.Fatal("k=3 must fail: only one witness")
	}
	if !SatisfiesHistoricalK(s, 1, series, 1) || !SatisfiesHistoricalK(s, 1, nil, 1) {
		t.Fatal("k<=1 always holds")
	}
	if !SatisfiesHistoricalK(s, 1, nil, 4) {
		t.Fatal("empty series: every user is consistent")
	}
}

func TestLongerSeriesShrinksAnonymity(t *testing.T) {
	// The paper's core observation: each added context can only shrink
	// the historical anonymity set.
	s := commuteStore()
	lvl1 := HistoricalLevel(s, 1, []geo.STBox{homeBox})
	lvl2 := HistoricalLevel(s, 1, []geo.STBox{homeBox, officeBox})
	if lvl2 > lvl1 {
		t.Fatalf("anonymity grew with trace length: %d -> %d", lvl1, lvl2)
	}
}

func TestWitnesses(t *testing.T) {
	s := commuteStore()
	series := []geo.STBox{homeBox, officeBox}
	w, ok := Witnesses(s, 1, series, 2)
	if !ok || len(w) != 1 || w[0] != 2 {
		t.Fatalf("witnesses = %v ok=%v", w, ok)
	}
	if _, ok := Witnesses(s, 1, series, 3); ok {
		t.Fatal("expected not enough witnesses for k=3")
	}
	if w, ok := Witnesses(s, 1, series, 1); !ok || len(w) != 0 {
		t.Fatalf("k=1 needs no witnesses: %v %v", w, ok)
	}
}
