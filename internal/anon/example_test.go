package anon_test

import (
	"fmt"

	"histanon/internal/anon"
	"histanon/internal/geo"
	"histanon/internal/phl"
)

// Historical k-anonymity (paper Def. 8): a series of generalized
// contexts is safe while at least k−1 other users' histories remain
// consistent with every one of them. Here users 1 and 2 share the whole
// home→office pattern; user 3 shares only the home area, so the second
// context drops it from the anonymity set.
func ExampleSatisfiesHistoricalK() {
	store := phl.NewStore()
	record := func(u phl.UserID, x, y float64, t int64) {
		store.Record(u, geo.STPoint{P: geo.Point{X: x, Y: y}, T: t})
	}
	record(1, 10, 10, 100)
	record(1, 500, 500, 200)
	record(2, 12, 8, 105)
	record(2, 505, 498, 210)
	record(3, 9, 11, 95) // home only

	home := geo.STBox{
		Area: geo.Rect{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20},
		Time: geo.Interval{Start: 90, End: 110},
	}
	office := geo.STBox{
		Area: geo.Rect{MinX: 490, MinY: 490, MaxX: 510, MaxY: 510},
		Time: geo.Interval{Start: 190, End: 215},
	}

	fmt.Println("home only, k=3:", anon.SatisfiesHistoricalK(store, 1, []geo.STBox{home}, 3))
	fmt.Println("home+office, k=3:", anon.SatisfiesHistoricalK(store, 1, []geo.STBox{home, office}, 3))
	fmt.Println("home+office, k=2:", anon.SatisfiesHistoricalK(store, 1, []geo.STBox{home, office}, 2))
	// Output:
	// home only, k=3: true
	// home+office, k=3: false
	// home+office, k=2: true
}
