// Tests pinning the pooled span lifecycle: a NewSpan reset clears every
// field, the collect-and-discard hot path allocates nothing, and spans
// recycled under concurrent load never leak pooled memory into the
// retained ring snapshots.

package obs

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// fillValue sets v (which must be settable) to an arbitrary non-zero
// value, recursing into structs, arrays and slices. The test fails on a
// kind it cannot fill, so a future Span field of a new shape extends
// this instead of silently escaping the reset check.
func fillValue(t *testing.T, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.String:
		v.SetString("dirty")
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(1)
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Slice:
		elem := reflect.New(v.Type().Elem()).Elem()
		fillValue(t, elem)
		v.Set(reflect.Append(v, elem))
	case reflect.Array:
		fillValue(t, v.Index(0))
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if f := v.Field(i); f.CanSet() {
				fillValue(t, f)
			}
		}
	default:
		t.Fatalf("fillValue: unhandled kind %s — extend the filler", v.Kind())
	}
}

// TestNewSpanResetsEveryField dirties a pooled span (every exported
// field by reflection, the unexported timing and identity state through
// the span's own methods), releases it, and verifies the next NewSpan
// returns it fully reset. The inline buffers are exempt on purpose:
// their stale contents are unreachable past the slice lengths.
func TestNewSpanResetsEveryField(t *testing.T) {
	sp := NewSpan()
	for i := 0; i < reflect.TypeOf(*sp).NumField(); i++ {
		if f := reflect.ValueOf(sp).Elem().Field(i); f.CanSet() {
			fillValue(t, f)
		}
	}
	sp.SetIdentity(MintTraceContext(true), MintTraceContext(false))
	sp.Begin()
	sp.Mark(StageMatch)
	sp.Release()

	got := NewSpan()
	if got != sp {
		// The pool's per-P private slot makes Put-then-Get on one
		// goroutine return the same object; if the runtime ever changes
		// that, this test loses its subject rather than its validity.
		t.Skipf("pool returned a different span; cannot observe the reset")
	}
	typ := reflect.TypeOf(*got)
	val := reflect.ValueOf(got).Elem()
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		switch name {
		case "eventBuf", "attemptBuf":
			// Stale by design; unreachable through Events/AttemptNs.
		case "pooled":
			if !got.pooled {
				t.Fatalf("pooled = false on a NewSpan span")
			}
		case "Events":
			if len(got.Events) != 0 {
				t.Fatalf("Events not reset: len %d", len(got.Events))
			}
		case "AttemptNs":
			if len(got.AttemptNs) != 0 {
				t.Fatalf("AttemptNs not reset: len %d", len(got.AttemptNs))
			}
		default:
			if !val.Field(i).IsZero() {
				t.Fatalf("field %s not reset by NewSpan — add it to the reset list", name)
			}
		}
	}
}

// TestCollectDiscardZeroAlloc pins the tentpole property: the
// collect-and-discard span cycle — the fate of the 99.9%% of requests
// under tail sampling — performs zero heap allocations.
func TestCollectDiscardZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	o := New()
	var kept bool
	allocs := testing.AllocsPerRun(1000, func() {
		sp := NewSpan()
		sp.SetIdentity(MintTraceContext(false), TraceContext{})
		sp.Kind = SpanKindRequest
		sp.MsgID = 7
		sp.User = 7
		sp.Begin()
		sp.Mark(StageMatch)
		sp.Event("probe")
		sp.Outcome = OutcomeForwarded
		kept = kept || o.RecordSpan(sp, false)
	})
	if kept {
		t.Fatalf("a boring span was retained; the discard path was not measured")
	}
	if allocs != 0 {
		t.Fatalf("collect-and-discard cycle allocates %.1f times per span, want 0", allocs)
	}
}

// TestRecycledSpansNeverLeakIntoRetained hammers the pool from many
// writers while readers walk the retained ring, and fails if any
// snapshot shows another span's (or a recycled span's) data: every
// retained span must carry the exact stamp its writer gave it. Run
// under -race this also proves the recycle/snapshot handoff is free of
// data races.
func TestRecycledSpansNeverLeakIntoRetained(t *testing.T) {
	o := New()
	o.Tracer = NewTracer(64) // small ring so retained spans churn

	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, writers+1)

	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				stamp := int64(w)<<32 | int64(i) | 1<<62
				sp := NewSpan()
				sp.SetIdentity(MintTraceContext(true), TraceContext{})
				sp.Kind = SpanKindRequest
				sp.MsgID = stamp
				sp.User = stamp
				sp.Begin()
				sp.Mark(StageMatch)
				sp.AddEvent("stamp", stamp)
				sp.Outcome = OutcomeForwarded
				o.RecordSpan(sp, true) // head-kept: snapshot, then recycle
			}
		}(w)
	}

	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sp := range o.Tracer.Spans() {
				if sp.User != sp.MsgID {
					errc <- fmt.Errorf("torn snapshot: User %d != MsgID %d", sp.User, sp.MsgID)
					return
				}
				if len(sp.Events) != 1 || sp.Events[0].Name != "stamp" || sp.Events[0].AtNs != sp.MsgID {
					errc <- fmt.Errorf("leaked event data on span %d: %+v", sp.MsgID, sp.Events)
					return
				}
				if len(sp.TraceID) != 32 || len(sp.SpanID) != 16 {
					errc <- fmt.Errorf("unmaterialized identity on retained span: %q/%q", sp.TraceID, sp.SpanID)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	rg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Post-churn: every surviving snapshot is still self-consistent.
	for _, sp := range o.Tracer.Spans() {
		if sp.User != sp.MsgID || len(sp.Events) != 1 || sp.Events[0].AtNs != sp.MsgID {
			t.Fatalf("inconsistent ring snapshot after churn: %+v", sp)
		}
	}
}
