package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestStageStrings(t *testing.T) {
	want := []string{"lbqid_match", "knn_lookup", "box_construct",
		"tolerance_check", "unlink", "forward"}
	stages := Stages()
	if len(stages) != len(want) || len(stages) != int(NumStages) {
		t.Fatalf("Stages() = %v", stages)
	}
	seen := map[string]bool{}
	for i, s := range stages {
		name := s.String()
		if name != want[i] {
			t.Fatalf("stage %d = %q, want %q", i, name, want[i])
		}
		if seen[name] {
			t.Fatalf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
	if Stage(99).String() != "unknown" {
		t.Fatal("out-of-range stage must stringify as unknown")
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(8)
	if collect, head := tr.Sample(); collect || head {
		t.Fatal("a fresh tracer must not sample")
	}
	tr.SetSampleRate(1)
	for i := 0; i < 5; i++ {
		if collect, head := tr.Sample(); !collect || !head {
			t.Fatal("rate 1 must head-sample everything")
		}
	}
	tr.SetSampleRate(0.25) // deterministic: every 4th request
	heads := 0
	for i := 0; i < 100; i++ {
		collect, head := tr.Sample()
		if !collect {
			t.Fatal("with tracing on, every request must collect")
		}
		if head {
			heads++
		}
	}
	if heads != 25 {
		t.Fatalf("rate 0.25 head-sampled %d/100", heads)
	}
	tr.SetSampleRate(0)
	if collect, head := tr.Sample(); collect || head {
		t.Fatal("rate 0 must sample nothing")
	}
	if tr.SampleEvery() != 0 {
		t.Fatalf("SampleEvery = %d", tr.SampleEvery())
	}
	// An upstream sampled parent forces collection and retention even
	// with local tracing off.
	if collect, head := tr.SampleWithParent(true); !collect || !head {
		t.Fatal("a sampled parent must force collect+head")
	}
	if collect, head := tr.SampleWithParent(false); collect || head {
		t.Fatal("an unsampled parent must not force anything at rate 0")
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 6; i++ {
		sp := Span{MsgID: int64(i)}
		tr.Record(&sp)
	}
	if tr.Sampled() != 6 {
		t.Fatalf("Sampled = %d", tr.Sampled())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	// Oldest first: 3, 4, 5, 6.
	for i, want := range []int64{3, 4, 5, 6} {
		if spans[i].MsgID != want {
			t.Fatalf("spans[%d].MsgID = %d, want %d", i, spans[i].MsgID, want)
		}
	}
}

func TestSpanTiming(t *testing.T) {
	var sp Span
	sp.Begin()
	sp.Mark(StageMatch)
	sp.Sync()
	sp.Mark(StageForward)
	sp.AddStage(StageKNN, 1234)
	tr := NewTracer(2)
	tr.Record(&sp)
	if sp.TotalNs <= 0 {
		t.Fatalf("TotalNs = %d", sp.TotalNs)
	}
	if sp.StageNs[StageKNN] != 1234 {
		t.Fatalf("StageNs[KNN] = %d", sp.StageNs[StageKNN])
	}
	if sp.StageNs[StageMatch] < 0 || sp.StageNs[StageForward] < 0 {
		t.Fatalf("negative stage time: %v", sp.StageNs)
	}
}

func TestAuditEventRoundTrip(t *testing.T) {
	in := Event{
		T:            25500,
		Kind:         KindRequest,
		TraceID:      "4bf92f3577b34da6a3ce929d0e0e4736",
		User:         42,
		MsgID:        7,
		Service:      "navigation",
		Matched:      "commute,lunch",
		RequestedK:   5,
		AchievedK:    6,
		AreaM2:       12345.5,
		IntervalS:    600,
		AreaTolFrac:  0.75,
		TimeTolFrac:  0.5,
		HKAnonymity:  true,
		Outcome:      OutcomeForwarded,
		Unlinked:     true,
		AtRisk:       true,
		Zone:         "plaza",
		OldPseudonym: "p-old",
		NewPseudonym: "p-new",
	}
	var buf bytes.Buffer
	a := NewAuditLog(&buf)
	a.Log(in)
	a.Log(Event{T: 25600, Kind: KindRotation, User: 42, Zone: "ondemand"})
	if err := a.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if a.Events() != 2 || a.Errors() != 0 {
		t.Fatalf("events=%d errors=%d", a.Events(), a.Errors())
	}

	events, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("read %d events", len(events))
	}
	if !reflect.DeepEqual(events[0], in) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", events[0], in)
	}
	if events[1].Kind != KindRotation || events[1].Zone != "ondemand" {
		t.Fatalf("second event = %+v", events[1])
	}

	// The wire field names are part of the audit format contract.
	var raw map[string]any
	line, _, _ := bytes.Cut(buf.Bytes(), []byte("\n"))
	if err := json.Unmarshal(line, &raw); err != nil {
		t.Fatalf("line is not JSON: %v", err)
	}
	for _, field := range []string{
		"t", "kind", "trace_id", "user", "msgid", "service", "matched", "requested_k",
		"achieved_k", "area_m2", "interval_s", "area_tol_frac",
		"time_tol_frac", "hk", "outcome", "unlinked", "at_risk", "zone",
		"old_pseudonym", "new_pseudonym",
	} {
		if _, ok := raw[field]; !ok {
			t.Fatalf("wire field %q missing from %s", field, line)
		}
	}
}

func TestReadEventsBadLine(t *testing.T) {
	in := "{\"t\":1,\"kind\":\"request\",\"user\":1,\"hk\":true}\nnot json\n"
	events, err := ReadEvents(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("read %d events before the bad line", len(events))
	}
}

func TestNilAuditLogIsNoop(t *testing.T) {
	var a *AuditLog
	a.Log(Event{})
	if a.Events() != 0 || a.Errors() != 0 {
		t.Fatal("nil audit log must count nothing")
	}
	if err := a.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestReplayAchievedK(t *testing.T) {
	var buf bytes.Buffer
	a := NewAuditLog(&buf)
	for _, k := range []int{2, 2, 5, 21} {
		a.Log(Event{Kind: KindRequest, AchievedK: k})
	}
	a.Log(Event{Kind: KindRotation})              // ignored
	a.Log(Event{Kind: KindRequest, AchievedK: 0}) // suppressed-before-generalize: ignored
	a.Flush()

	h, err := ReplayAchievedK(&buf)
	if err != nil {
		t.Fatalf("ReplayAchievedK: %v", err)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	counts := h.BucketCounts()
	if counts[1] != 2 { // k=2 bucket
		t.Fatalf("k=2 bucket = %d (all: %v)", counts[1], counts)
	}
	if counts[len(counts)-1] != 1 { // k=21 overflows the 20-bucket range
		t.Fatalf("overflow bucket = %d", counts[len(counts)-1])
	}
}

func TestReplayAchievedKIgnoresUnknownFields(t *testing.T) {
	// Forward compatibility: audit logs written by a NEWER server (with
	// record fields this build does not know) must still replay. A
	// consumer pinned to an old build keeps working across log-format
	// growth — the property that let trace_id be added without a
	// migration.
	in := `{"t":1,"kind":"request","achieved_k":3,"hk":true,"trace_id":"4bf92f3577b34da6a3ce929d0e0e4736","future_field":"x","future_obj":{"a":1},"future_arr":[1,2]}
{"t":2,"kind":"request","achieved_k":5,"hk":true,"another_unknown":42}
`
	h, err := ReplayAchievedK(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReplayAchievedK: %v", err)
	}
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	counts := h.BucketCounts()
	if counts[2] != 1 || counts[4] != 1 { // k=3 and k=5 buckets
		t.Fatalf("bucket counts = %v", counts)
	}
}

func TestObserverDefaults(t *testing.T) {
	o := New()
	if o.Tracer.SampleEvery() != 0 {
		t.Fatal("a new observer must have sampling off")
	}
	if o.AuditSink() != nil {
		t.Fatal("a new observer must have no audit sink")
	}
	o.Audit(Event{Kind: KindRequest}) // must be a safe no-op

	var sp Span
	sp.AddStage(StageKNN, 2_000_000) // 2 ms
	o.RecordSpan(&sp, true)
	if got := o.StageSeconds[StageKNN].Count(); got != 1 {
		t.Fatalf("KNN stage histogram count = %d", got)
	}
	if got := o.StageSeconds[StageKNN].Sum(); math.Abs(got-0.002) > 1e-12 {
		t.Fatalf("KNN stage histogram sum = %g", got)
	}
	if got := o.StageSeconds[StageMatch].Count(); got != 0 {
		t.Fatalf("untouched stage histogram count = %d", got)
	}
}

func TestMetricNamesUniqueAndValid(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range MetricNames() {
		if !strings.HasPrefix(name, "histanon_") {
			t.Fatalf("metric %q lacks the histanon_ prefix", name)
		}
		if seen[name] {
			t.Fatalf("duplicate metric name %q", name)
		}
		seen[name] = true
	}
	if len(seen) != 57 {
		t.Fatalf("MetricNames lists %d families, want 57", len(seen))
	}
}
