package obs

import (
	"strings"
	"testing"
)

func TestMintTraceContext(t *testing.T) {
	a := MintTraceContext(true)
	b := MintTraceContext(false)
	if !a.Valid() || !b.Valid() {
		t.Fatal("minted contexts must be valid")
	}
	if !a.Sampled() || b.Sampled() {
		t.Fatal("sampled flag must reflect the mint argument")
	}
	if a.TraceID == b.TraceID {
		t.Fatal("two mints must not share a trace id")
	}
	if len(a.TraceIDString()) != 32 || len(a.SpanIDString()) != 16 {
		t.Fatalf("hex lengths: trace %q span %q", a.TraceIDString(), a.SpanIDString())
	}
}

func TestChildKeepsTraceChangesSpan(t *testing.T) {
	parent := MintTraceContext(true)
	child := parent.Child()
	if child.TraceID != parent.TraceID {
		t.Fatal("child must stay in the parent's trace")
	}
	if child.SpanID == parent.SpanID {
		t.Fatal("child must mint a fresh span id")
	}
	if !child.Sampled() {
		t.Fatal("child must inherit the flags")
	}
}

func TestWithSampled(t *testing.T) {
	tc := MintTraceContext(false)
	if got := tc.WithSampled(true); !got.Sampled() {
		t.Fatal("WithSampled(true) must set the bit")
	}
	tc.Flags = 0xff
	got := tc.WithSampled(false)
	if got.Sampled() {
		t.Fatal("WithSampled(false) must clear the bit")
	}
	if got.Flags != 0xfe {
		t.Fatalf("other flag bits must survive: %02x", got.Flags)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	in := MintTraceContext(true)
	hdr := in.Traceparent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") {
		t.Fatalf("traceparent = %q", hdr)
	}
	out, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", hdr, err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
}

func TestParseTraceparentValid(t *testing.T) {
	const hdr = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent: %v", err)
	}
	if tc.TraceIDString() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %s", tc.TraceIDString())
	}
	if tc.SpanIDString() != "00f067aa0ba902b7" {
		t.Fatalf("span id = %s", tc.SpanIDString())
	}
	if !tc.Sampled() {
		t.Fatal("flags 01 must read as sampled")
	}
	// A future version with extra content after a dash is accepted (the
	// level-1 spec's forward-compatibility rule).
	if _, err := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); err != nil {
		t.Fatalf("future version with dashed extra content must parse: %v", err)
	}
}

func TestParseTraceparentInvalid(t *testing.T) {
	cases := map[string]string{
		"too short":           "00-abc",
		"empty":               "",
		"bad separators":      "00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"version ff":          "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"uppercase trace id":  "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
		"uppercase span id":   "00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01",
		"zero trace id":       "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span id":        "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"v00 with extra":      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"future no dash":      "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01extra",
		"non-hex version":     "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"non-hex flags":       "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",
		"non-hex in trace id": "00-4bf92g3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	}
	for name, hdr := range cases {
		if tc, err := ParseTraceparent(hdr); err == nil {
			t.Fatalf("%s: %q parsed as %+v, want error", name, hdr, tc)
		}
	}
}
