// Request tracing: per-request spans that record where the TS pipeline
// spent its time and what it decided, sampled into a fixed-size ring
// buffer. The unsampled fast path is a single atomic load, so tracing
// can stay compiled into the hot path at zero practical cost.

package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"histanon/internal/metrics"
)

// Stage identifies one instrumented phase of the TS request pipeline,
// in execution order.
type Stage int

// The pipeline stages. StageMatch is LBQID monitoring; StageKNN,
// StageBox and StageTolerance split Algorithm 1 into its index query,
// box construction and tolerance-check parts; StageUnlink covers the
// §6.1 step-2 mix-zone/rotation decision; StageForward is delivery to
// the service provider.
const (
	StageMatch Stage = iota
	StageKNN
	StageBox
	StageTolerance
	StageUnlink
	StageForward
	NumStages // not a stage: the count, for arrays indexed by Stage
)

// String returns the snake_case stage name used as the "stage" label of
// the latency histograms.
func (s Stage) String() string {
	switch s {
	case StageMatch:
		return "lbqid_match"
	case StageKNN:
		return "knn_lookup"
	case StageBox:
		return "box_construct"
	case StageTolerance:
		return "tolerance_check"
	case StageUnlink:
		return "unlink"
	case StageForward:
		return "forward"
	default:
		return "unknown"
	}
}

// Stages lists every real stage (excluding NumStages) in order.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Span outcomes. OutcomeDegraded is the fail-closed resilience outcome:
// the pipeline decided to forward but the delivery layer refused
// admission (queue full or breaker open), so the request was withheld.
// OutcomeDropped marks an asynchronous delivery failure (KindDelivery
// audit records only): the request was admitted but never reached the
// service provider.
const (
	OutcomeForwarded  = "forwarded"
	OutcomeSuppressed = "suppressed"
	OutcomeDegraded   = "degraded"
	OutcomeDelivered  = "delivered"
	OutcomeDropped    = "dropped"
)

// Span kinds: the synchronous TS pipeline span, and the asynchronous
// delivery span the resilience layer records under it.
const (
	SpanKindRequest  = "request"
	SpanKindDelivery = "delivery"
)

// Tail-sampling keep reasons: the "reason" label of
// histanon_trace_tail_kept_total and the span's keepReason field.
// KeepHead marks spans the every-Nth head sampler retained
// unconditionally; all others are post-completion tail decisions that
// rescue interesting spans the head sampler missed.
const (
	KeepHead     = "head"
	KeepDegraded = "degraded"
	KeepDenied   = "denied"
	KeepSlow     = "slow"
	KeepBreaker  = "breaker"
	KeepDropped  = "dropped"
)

// SpanEvent is a named point-in-time annotation inside a span —
// breaker openings, shed decisions, delivery retries.
type SpanEvent struct {
	// Name identifies the event (e.g. "shed_queue_full", "retry",
	// "breaker_open").
	Name string `json:"name"`
	// AtNs is the event's offset from the span start, in nanoseconds.
	AtNs int64 `json:"atNs"`
}

// Span is one collected request's timing and outcome record.
type Span struct {
	// TraceID, SpanID and ParentSpanID are the span's W3C trace-context
	// identifiers (lowercase hex; empty on spans collected before
	// tracing carried identities). Spans sharing a TraceID form one
	// request's tree: the request span is the root (or a child of an
	// upstream caller), delivery spans hang off it.
	TraceID      string `json:"traceId,omitempty"`
	SpanID       string `json:"spanId,omitempty"`
	ParentSpanID string `json:"parentSpanId,omitempty"`
	// Kind is SpanKindRequest or SpanKindDelivery ("" reads as request).
	Kind string `json:"kind,omitempty"`
	// Start is the wall-clock start of the request, in Unix nanoseconds.
	Start int64 `json:"start"`
	// MsgID is the TS↔SP message id assigned to the request (0 when the
	// request was suppressed before an id was assigned).
	MsgID int64 `json:"msgid"`
	// User is the issuing user.
	User int64 `json:"user"`
	// Service names the requested service.
	Service string `json:"service"`
	// StageNs holds per-stage wall time in nanoseconds, indexed by Stage.
	// Stages the request never reached stay zero.
	StageNs [NumStages]int64 `json:"stageNs"`
	// TotalNs is the whole-request wall time in nanoseconds.
	TotalNs int64 `json:"totalNs"`
	// QueueNs is the enqueue→dequeue wait of a delivery span.
	QueueNs int64 `json:"queueNs,omitempty"`
	// AttemptNs holds the per-attempt wall time of a delivery span, one
	// entry per delivery attempt actually made.
	AttemptNs []int64 `json:"attemptNs,omitempty"`
	// Outcome is OutcomeForwarded, OutcomeSuppressed or OutcomeDegraded
	// for request spans; OutcomeDelivered or OutcomeDropped for delivery
	// spans.
	Outcome string `json:"outcome"`
	// Reason qualifies a degraded or dropped outcome (the audit reason
	// label, e.g. "queue_full", "deadline_exceeded").
	Reason string `json:"reason,omitempty"`
	// KeepReason records why the tail sampler retained the span.
	KeepReason string `json:"keepReason,omitempty"`
	// Events are the span's point-in-time annotations.
	Events []SpanEvent `json:"events,omitempty"`
	// Generalized, Unlinked and AtRisk mirror the ts.Decision flags.
	Generalized bool `json:"generalized"`
	Unlinked    bool `json:"unlinked"`
	AtRisk      bool `json:"atRisk"`

	began time.Time // set by Begin; zero for unsampled spans
	mark  time.Time
}

// Begin stamps the span's start; subsequent Mark calls attribute
// elapsed time to stages.
func (sp *Span) Begin() {
	now := time.Now()
	sp.Start = now.UnixNano()
	sp.began = now
	sp.mark = now
}

// Mark attributes the time since the previous Mark (or Begin) to the
// given stage.
func (sp *Span) Mark(s Stage) {
	now := time.Now()
	sp.StageNs[s] += now.Sub(sp.mark).Nanoseconds()
	sp.mark = now
}

// AddStage attributes externally measured nanoseconds to a stage (used
// for the Algorithm 1 sub-stages timed inside package generalize).
func (sp *Span) AddStage(s Stage, ns int64) {
	sp.StageNs[s] += ns
}

// Sync re-arms the lap timer without attributing the elapsed time to
// any stage — for skipping bookkeeping code between stages.
func (sp *Span) Sync() { sp.mark = time.Now() }

// Event appends a named annotation at the span's current elapsed time.
func (sp *Span) Event(name string) {
	var at int64
	if !sp.began.IsZero() {
		at = time.Since(sp.began).Nanoseconds()
	}
	sp.Events = append(sp.Events, SpanEvent{Name: name, AtNs: at})
}

// AddEvent appends a named annotation at an externally measured offset
// (delivery spans are timed on the resilience layer's clock, not this
// process's monotonic one).
func (sp *Span) AddEvent(name string, atNs int64) {
	sp.Events = append(sp.Events, SpanEvent{Name: name, AtNs: atNs})
}

// finish stamps the total duration.
func (sp *Span) finish() {
	if !sp.began.IsZero() {
		sp.TotalNs = time.Since(sp.began).Nanoseconds()
	}
}

// Tracer decides which requests get a span and keeps the retained
// spans in a ring buffer. Sampling is two-tier:
//
//   - The head sampler (SetSampleRate) keeps every Nth request
//     unconditionally — the predictable baseline. When tracing is off
//     entirely (rate 0) the per-request cost is one atomic load.
//   - The tail sampler (RecordTail) re-examines every completed span
//     and retains the interesting ones the head sampler missed:
//     degraded, denied (suppressed), breaker-affected, dropped, or
//     slower than the SetTailSlow threshold. At 1/1000 head sampling
//     the boring 99.9% is discarded after completion, but the
//     interesting 0.1% is never lost.
//
// The cost model follows: with tracing enabled, every request collects
// a span (timestamps and ids) so the tail decision has something to
// keep; only retained spans pay the ring's mutex.
type Tracer struct {
	every    atomic.Int64 // head-sample every Nth request; 0 = tracing off
	seq      atomic.Int64
	sampled  atomic.Int64 // total spans retained
	tailSlow atomic.Int64 // tail-keep latency threshold in ns; 0 = off

	// kept counts retained spans by keep reason; exposed as
	// histanon_trace_tail_kept_total.
	kept *metrics.CounterVec

	mu   sync.Mutex
	ring []Span
	next int
	full bool
}

// DefaultRingSize is the span capacity of a NewTracer ring.
const DefaultRingSize = 1024

// NewTracer returns a tracer with the given ring capacity (≤ 0 means
// DefaultRingSize) and sampling off.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Tracer{ring: make([]Span, capacity), kept: metrics.NewCounterVec("reason")}
}

// SetSampleRate sets the sampled fraction of requests: 0 disables
// tracing, 1 traces everything, and an intermediate f traces every
// round(1/f)-th request (deterministic, not probabilistic, so overhead
// is stable and tests are reproducible).
func (t *Tracer) SetSampleRate(f float64) {
	switch {
	case f <= 0:
		t.every.Store(0)
	case f >= 1:
		t.every.Store(1)
	default:
		n := int64(1/f + 0.5)
		if n < 1 {
			n = 1
		}
		t.every.Store(n)
	}
}

// SampleEvery returns the current every-Nth setting (0 = off).
func (t *Tracer) SampleEvery() int64 { return t.every.Load() }

// SetTailSlow sets the latency above which a completed span is retained
// by the tail sampler even when the head sampler missed it (0 disables
// the slow-keep rule). Safe to change while requests are in flight.
func (t *Tracer) SetTailSlow(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.tailSlow.Store(d.Nanoseconds())
}

// TailSlow returns the current slow-keep threshold (0 = off).
func (t *Tracer) TailSlow() time.Duration {
	return time.Duration(t.tailSlow.Load())
}

// Sample decides the current request's tracing fate. collect reports
// whether the request should gather a span at all; head reports whether
// the every-Nth head sampler retains it unconditionally. With tracing
// off both are false and the cost is one atomic load; with tracing on,
// every request collects (so the tail decision can rescue interesting
// spans) and every Nth is head-retained.
func (t *Tracer) Sample() (collect, head bool) {
	every := t.every.Load()
	if every == 0 {
		return false, false
	}
	return true, t.seq.Add(1)%every == 0
}

// SampleWithParent is Sample honoring an upstream W3C sampled flag: a
// parent that already decided to keep the trace forces collection and
// head retention, even when local tracing is off.
func (t *Tracer) SampleWithParent(parentSampled bool) (collect, head bool) {
	collect, head = t.Sample()
	if parentSampled {
		return true, true
	}
	return collect, head
}

// Sampled returns how many spans have been retained in total (including
// ones the ring has since overwritten).
func (t *Tracer) Sampled() int64 { return t.sampled.Load() }

// KeptCounters exposes the retained-span counters by keep reason.
func (t *Tracer) KeptCounters() *metrics.CounterVec { return t.kept }

// tailKeep returns the keep reason for a completed span the head
// sampler missed, or "" to discard it.
func (t *Tracer) tailKeep(sp *Span) string {
	switch sp.Outcome {
	case OutcomeDegraded:
		return KeepDegraded
	case OutcomeSuppressed:
		return KeepDenied
	case OutcomeDropped:
		return KeepDropped
	}
	for _, e := range sp.Events {
		if strings.Contains(e.Name, "breaker") {
			return KeepBreaker
		}
	}
	if slow := t.tailSlow.Load(); slow > 0 && sp.TotalNs >= slow {
		return KeepSlow
	}
	return ""
}

// RecordTail finishes the span and runs the keep decision: head-sampled
// spans are always retained; the rest are retained only when the tail
// sampler finds them interesting (degraded, denied, dropped,
// breaker-affected, or slow). It reports whether the span entered the
// ring.
func (t *Tracer) RecordTail(sp *Span, head bool) bool {
	sp.finish()
	reason := KeepHead
	if !head {
		if reason = t.tailKeep(sp); reason == "" {
			return false
		}
	}
	sp.KeepReason = reason
	t.kept.Inc(reason)
	t.sampled.Add(1)
	t.mu.Lock()
	t.ring[t.next] = *sp
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
	return true
}

// Record finishes the span and stores it unconditionally (a
// head-retained RecordTail), overwriting the oldest entry when full.
func (t *Tracer) Record(sp *Span) { t.RecordTail(sp, true) }

// Spans returns a copy of the buffered spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	if t.full {
		out = make([]Span, 0, len(t.ring))
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring[:t.next]...)
	}
	return out
}

// SpansByTrace returns the buffered spans of one trace id, oldest
// first — the /v1/spans?trace= lookup behind metric exemplars.
func (t *Tracer) SpansByTrace(traceID string) []Span {
	if traceID == "" {
		return nil
	}
	var out []Span
	for _, sp := range t.Spans() {
		if sp.TraceID == traceID {
			out = append(out, sp)
		}
	}
	return out
}
