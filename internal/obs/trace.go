// Request tracing: per-request spans that record where the TS pipeline
// spent its time and what it decided, sampled into a fixed-size ring
// buffer. The unsampled fast path is a single atomic load, so tracing
// can stay compiled into the hot path at zero practical cost.

package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one instrumented phase of the TS request pipeline,
// in execution order.
type Stage int

// The pipeline stages. StageMatch is LBQID monitoring; StageKNN,
// StageBox and StageTolerance split Algorithm 1 into its index query,
// box construction and tolerance-check parts; StageUnlink covers the
// §6.1 step-2 mix-zone/rotation decision; StageForward is delivery to
// the service provider.
const (
	StageMatch Stage = iota
	StageKNN
	StageBox
	StageTolerance
	StageUnlink
	StageForward
	NumStages // not a stage: the count, for arrays indexed by Stage
)

// String returns the snake_case stage name used as the "stage" label of
// the latency histograms.
func (s Stage) String() string {
	switch s {
	case StageMatch:
		return "lbqid_match"
	case StageKNN:
		return "knn_lookup"
	case StageBox:
		return "box_construct"
	case StageTolerance:
		return "tolerance_check"
	case StageUnlink:
		return "unlink"
	case StageForward:
		return "forward"
	default:
		return "unknown"
	}
}

// Stages lists every real stage (excluding NumStages) in order.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Span outcomes. OutcomeDegraded is the fail-closed resilience outcome:
// the pipeline decided to forward but the delivery layer refused
// admission (queue full or breaker open), so the request was withheld.
// OutcomeDropped marks an asynchronous delivery failure (KindDelivery
// audit records only): the request was admitted but never reached the
// service provider.
const (
	OutcomeForwarded  = "forwarded"
	OutcomeSuppressed = "suppressed"
	OutcomeDegraded   = "degraded"
	OutcomeDropped    = "dropped"
)

// Span is one sampled request's timing and outcome record.
type Span struct {
	// Start is the wall-clock start of the request, in Unix nanoseconds.
	Start int64 `json:"start"`
	// MsgID is the TS↔SP message id assigned to the request (0 when the
	// request was suppressed before an id was assigned).
	MsgID int64 `json:"msgid"`
	// User is the issuing user.
	User int64 `json:"user"`
	// Service names the requested service.
	Service string `json:"service"`
	// StageNs holds per-stage wall time in nanoseconds, indexed by Stage.
	// Stages the request never reached stay zero.
	StageNs [NumStages]int64 `json:"stageNs"`
	// TotalNs is the whole-request wall time in nanoseconds.
	TotalNs int64 `json:"totalNs"`
	// Outcome is OutcomeForwarded or OutcomeSuppressed.
	Outcome string `json:"outcome"`
	// Generalized, Unlinked and AtRisk mirror the ts.Decision flags.
	Generalized bool `json:"generalized"`
	Unlinked    bool `json:"unlinked"`
	AtRisk      bool `json:"atRisk"`

	began time.Time // set by Begin; zero for unsampled spans
	mark  time.Time
}

// Begin stamps the span's start; subsequent Mark calls attribute
// elapsed time to stages.
func (sp *Span) Begin() {
	now := time.Now()
	sp.Start = now.UnixNano()
	sp.began = now
	sp.mark = now
}

// Mark attributes the time since the previous Mark (or Begin) to the
// given stage.
func (sp *Span) Mark(s Stage) {
	now := time.Now()
	sp.StageNs[s] += now.Sub(sp.mark).Nanoseconds()
	sp.mark = now
}

// AddStage attributes externally measured nanoseconds to a stage (used
// for the Algorithm 1 sub-stages timed inside package generalize).
func (sp *Span) AddStage(s Stage, ns int64) {
	sp.StageNs[s] += ns
}

// Sync re-arms the lap timer without attributing the elapsed time to
// any stage — for skipping bookkeeping code between stages.
func (sp *Span) Sync() { sp.mark = time.Now() }

// finish stamps the total duration.
func (sp *Span) finish() {
	if !sp.began.IsZero() {
		sp.TotalNs = time.Since(sp.began).Nanoseconds()
	}
}

// Tracer decides which requests get a span and keeps the most recent
// spans in a ring buffer. The sampling knob is nanosecond-cheap when
// off: Sample is one atomic load. Sampled spans pay one short mutex
// acquisition to enter the ring — "lock-cheap" because only every Nth
// request takes it.
type Tracer struct {
	every   atomic.Int64 // sample every Nth request; 0 = off
	seq     atomic.Int64
	sampled atomic.Int64 // total spans recorded

	mu   sync.Mutex
	ring []Span
	next int
	full bool
}

// DefaultRingSize is the span capacity of a NewTracer ring.
const DefaultRingSize = 1024

// NewTracer returns a tracer with the given ring capacity (≤ 0 means
// DefaultRingSize) and sampling off.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// SetSampleRate sets the sampled fraction of requests: 0 disables
// tracing, 1 traces everything, and an intermediate f traces every
// round(1/f)-th request (deterministic, not probabilistic, so overhead
// is stable and tests are reproducible).
func (t *Tracer) SetSampleRate(f float64) {
	switch {
	case f <= 0:
		t.every.Store(0)
	case f >= 1:
		t.every.Store(1)
	default:
		n := int64(1/f + 0.5)
		if n < 1 {
			n = 1
		}
		t.every.Store(n)
	}
}

// SampleEvery returns the current every-Nth setting (0 = off).
func (t *Tracer) SampleEvery() int64 { return t.every.Load() }

// Sample reports whether the current request should carry a span.
func (t *Tracer) Sample() bool {
	every := t.every.Load()
	if every == 0 {
		return false
	}
	return t.seq.Add(1)%every == 0
}

// Sampled returns how many spans have been recorded in total (including
// ones the ring has since overwritten).
func (t *Tracer) Sampled() int64 { return t.sampled.Load() }

// Record finishes the span and stores it in the ring, overwriting the
// oldest entry when full.
func (t *Tracer) Record(sp *Span) {
	sp.finish()
	t.sampled.Add(1)
	t.mu.Lock()
	t.ring[t.next] = *sp
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Spans returns a copy of the buffered spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	if t.full {
		out = make([]Span, 0, len(t.ring))
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring[:t.next]...)
	}
	return out
}
