// Request tracing: per-request spans that record where the TS pipeline
// spent its time and what it decided, sampled into a fixed-size ring
// buffer. The unsampled fast path is a single atomic load, so tracing
// can stay compiled into the hot path at zero practical cost.

package obs

import (
	"encoding/hex"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"histanon/internal/metrics"
)

// Stage identifies one instrumented phase of the TS request pipeline,
// in execution order.
type Stage int

// The pipeline stages. StageMatch is LBQID monitoring; StageKNN,
// StageBox and StageTolerance split Algorithm 1 into its index query,
// box construction and tolerance-check parts; StageUnlink covers the
// §6.1 step-2 mix-zone/rotation decision; StageForward is delivery to
// the service provider.
const (
	StageMatch Stage = iota
	StageKNN
	StageBox
	StageTolerance
	StageUnlink
	StageForward
	NumStages // not a stage: the count, for arrays indexed by Stage
)

// String returns the snake_case stage name used as the "stage" label of
// the latency histograms.
func (s Stage) String() string {
	switch s {
	case StageMatch:
		return "lbqid_match"
	case StageKNN:
		return "knn_lookup"
	case StageBox:
		return "box_construct"
	case StageTolerance:
		return "tolerance_check"
	case StageUnlink:
		return "unlink"
	case StageForward:
		return "forward"
	default:
		return "unknown"
	}
}

// Stages lists every real stage (excluding NumStages) in order.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Span outcomes. OutcomeDegraded is the fail-closed resilience outcome:
// the pipeline decided to forward but the delivery layer refused
// admission (queue full or breaker open), so the request was withheld.
// OutcomeDropped marks an asynchronous delivery failure (KindDelivery
// audit records only): the request was admitted but never reached the
// service provider.
const (
	OutcomeForwarded  = "forwarded"
	OutcomeSuppressed = "suppressed"
	OutcomeDegraded   = "degraded"
	OutcomeDelivered  = "delivered"
	OutcomeDropped    = "dropped"
)

// Span kinds: the synchronous TS pipeline span, and the asynchronous
// delivery span the resilience layer records under it.
const (
	SpanKindRequest  = "request"
	SpanKindDelivery = "delivery"
)

// Tail-sampling keep reasons: the "reason" label of
// histanon_trace_tail_kept_total and the span's keepReason field.
// KeepHead marks spans the every-Nth head sampler retained
// unconditionally; all others are post-completion tail decisions that
// rescue interesting spans the head sampler missed.
const (
	KeepHead     = "head"
	KeepDegraded = "degraded"
	KeepDenied   = "denied"
	KeepSlow     = "slow"
	KeepBreaker  = "breaker"
	KeepDropped  = "dropped"
)

// SpanEvent is a named point-in-time annotation inside a span —
// breaker openings, shed decisions, delivery retries.
type SpanEvent struct {
	// Name identifies the event (e.g. "shed_queue_full", "retry",
	// "breaker_open").
	Name string `json:"name"`
	// AtNs is the event's offset from the span start, in nanoseconds.
	AtNs int64 `json:"atNs"`
}

// Span is one collected request's timing and outcome record.
type Span struct {
	// TraceID, SpanID and ParentSpanID are the span's W3C trace-context
	// identifiers (lowercase hex; empty on spans collected before
	// tracing carried identities). Spans sharing a TraceID form one
	// request's tree: the request span is the root (or a child of an
	// upstream caller), delivery spans hang off it.
	TraceID      string `json:"traceId,omitempty"`
	SpanID       string `json:"spanId,omitempty"`
	ParentSpanID string `json:"parentSpanId,omitempty"`
	// Kind is SpanKindRequest or SpanKindDelivery ("" reads as request).
	Kind string `json:"kind,omitempty"`
	// Start is the wall-clock start of the request, in Unix nanoseconds.
	Start int64 `json:"start"`
	// MsgID is the TS↔SP message id assigned to the request (0 when the
	// request was suppressed before an id was assigned).
	MsgID int64 `json:"msgid"`
	// User is the issuing user.
	User int64 `json:"user"`
	// Service names the requested service.
	Service string `json:"service"`
	// StageNs holds per-stage wall time in nanoseconds, indexed by Stage.
	// Stages the request never reached stay zero.
	StageNs [NumStages]int64 `json:"stageNs"`
	// TotalNs is the whole-request wall time in nanoseconds.
	TotalNs int64 `json:"totalNs"`
	// QueueNs is the enqueue→dequeue wait of a delivery span.
	QueueNs int64 `json:"queueNs,omitempty"`
	// AttemptNs holds the per-attempt wall time of a delivery span, one
	// entry per delivery attempt actually made.
	AttemptNs []int64 `json:"attemptNs,omitempty"`
	// Outcome is OutcomeForwarded, OutcomeSuppressed or OutcomeDegraded
	// for request spans; OutcomeDelivered or OutcomeDropped for delivery
	// spans.
	Outcome string `json:"outcome"`
	// Reason qualifies a degraded or dropped outcome (the audit reason
	// label, e.g. "queue_full", "deadline_exceeded").
	Reason string `json:"reason,omitempty"`
	// KeepReason records why the tail sampler retained the span.
	KeepReason string `json:"keepReason,omitempty"`
	// Events are the span's point-in-time annotations.
	Events []SpanEvent `json:"events,omitempty"`
	// Generalized, Unlinked and AtRisk mirror the ts.Decision flags.
	Generalized bool `json:"generalized"`
	Unlinked    bool `json:"unlinked"`
	AtRisk      bool `json:"atRisk"`

	beganNs int64 // Begin time as an offset from processBase; 0 = unbegun
	markNs  int64 // lap point as an offset from beganNs

	// tc and parentID hold the span's trace identity in binary form;
	// the hex string fields above are rendered from them only when the
	// span is actually retained (MaterializeIDs), so the collect-and-
	// discard hot path never pays for hex encoding.
	tc       TraceContext
	parentID [8]byte

	// eventBuf and attemptBuf are the inline backing arrays Events and
	// AttemptNs grow into on pooled spans: the common span (a handful of
	// events, a handful of delivery attempts) never touches the heap.
	eventBuf   [spanInlineEvents]SpanEvent
	attemptBuf [spanInlineAttempts]int64

	// pooled marks spans owned by the span pool (NewSpan); Release
	// recycles only those, so stack- or test-constructed spans are
	// unaffected.
	pooled bool
}

// Inline capacities of a pooled span's event and delivery-attempt
// buffers. Spans exceeding them spill to the heap (rare: a request span
// records at most one shed event, a delivery span one attempt lap per
// retry).
const (
	spanInlineEvents   = 8
	spanInlineAttempts = 8
)

// spanPool recycles Span objects across requests. A pooled span's
// lifecycle is collect → keep decision → (snapshot if kept) → Release;
// the ring only ever stores snapshots, never pooled memory.
var spanPool = sync.Pool{New: func() any { return new(Span) }}

// processBase is the monotonic timing base every span measures against:
// one wall-clock read at startup, after which Begin/Mark/Sync/finish
// are each a single monotonic-clock read (time.Since), roughly half the
// cost of a time.Now. Span Start values are processBaseUnixNano plus
// the monotonic offset, so they stay mutually consistent even if the
// wall clock steps while the process runs.
var (
	processBase         = time.Now()
	processBaseUnixNano = processBase.UnixNano()
)

// monoNow returns nanoseconds since processBase (always > 0, since
// processBase is captured at package init).
func monoNow() int64 { return int64(time.Since(processBase)) }

// NewSpan returns a reset pool-owned span whose Events and AttemptNs
// slices are anchored in its inline buffers. Callers hand the span to
// Observer.RecordSpan, which recycles it after the keep decision; a
// span not recorded must be Released explicitly.
//
// The reset clears every field EXCEPT the inline buffers: their stale
// contents are unreachable, because Events and AttemptNs are re-anchored
// at length zero and snapshot copies only the written prefix. A field
// added to Span must be reset here — TestNewSpanResetsEveryField
// enforces that by reflection.
func NewSpan() *Span {
	sp := spanPool.Get().(*Span)
	sp.TraceID, sp.SpanID, sp.ParentSpanID = "", "", ""
	sp.Kind, sp.Service = "", ""
	sp.Start, sp.MsgID, sp.User = 0, 0, 0
	sp.StageNs = [NumStages]int64{}
	sp.TotalNs, sp.QueueNs = 0, 0
	sp.Outcome, sp.Reason, sp.KeepReason = "", "", ""
	sp.Generalized, sp.Unlinked, sp.AtRisk = false, false, false
	sp.beganNs, sp.markNs = 0, 0
	sp.tc = TraceContext{}
	sp.parentID = [8]byte{}
	sp.pooled = true
	sp.Events = sp.eventBuf[:0]
	sp.AttemptNs = sp.attemptBuf[:0]
	return sp
}

// Release returns a pooled span to the pool. It is a no-op for nil and
// for spans not minted by NewSpan, so callers can release
// unconditionally. The caller must not touch the span afterwards.
func (sp *Span) Release() {
	if sp == nil || !sp.pooled {
		return
	}
	spanPool.Put(sp)
}

// SetIdentity stores the span's own trace context and its parent's span
// id in binary form. The hex string fields stay empty until
// MaterializeIDs renders them — at keep-decision time, or never, for
// the discarded majority.
func (sp *Span) SetIdentity(tc, parent TraceContext) {
	sp.tc = tc
	sp.parentID = parent.SpanID
}

// MaterializeIDs renders a binary identity (SetIdentity) into the
// TraceID/SpanID/ParentSpanID string fields. Spans whose strings were
// set directly, or that carry no identity at all, are left alone.
// RecordTail calls it for every retained span; only custom SpanRecorder
// implementations that bypass the tracer need to call it themselves.
func (sp *Span) MaterializeIDs() {
	if !sp.tc.Valid() || sp.TraceID != "" {
		return
	}
	sp.TraceID = sp.tc.TraceIDString()
	sp.SpanID = sp.tc.SpanIDString()
	if sp.parentID != ([8]byte{}) {
		sp.ParentSpanID = hex.EncodeToString(sp.parentID[:])
	}
}

// snapshot returns a self-contained copy safe to outlive the (possibly
// pooled) receiver: the Events and AttemptNs slices are re-cloned onto
// the heap so the copy never aliases the receiver's inline buffers.
func (sp *Span) snapshot() Span {
	snap := *sp
	snap.pooled = false
	snap.Events = nil
	snap.AttemptNs = nil
	if len(sp.Events) > 0 {
		snap.Events = append([]SpanEvent(nil), sp.Events...)
	}
	if len(sp.AttemptNs) > 0 {
		snap.AttemptNs = append([]int64(nil), sp.AttemptNs...)
	}
	return snap
}

// Begin stamps the span's start; subsequent Mark calls attribute
// elapsed time to stages. Begin and every later lap point (Mark, Sync,
// Event, finish) cost one monotonic-clock read each against the shared
// processBase — no per-span wall-clock read at all.
func (sp *Span) Begin() {
	sp.beganNs = monoNow()
	sp.Start = processBaseUnixNano + sp.beganNs
	sp.markNs = 0
}

// Mark attributes the time since the previous Mark (or Begin) to the
// given stage. A no-op before Begin.
func (sp *Span) Mark(s Stage) {
	if sp.beganNs == 0 {
		return
	}
	now := monoNow() - sp.beganNs
	sp.StageNs[s] += now - sp.markNs
	sp.markNs = now
}

// AddStage attributes externally measured nanoseconds to a stage (used
// for the Algorithm 1 sub-stages timed inside package generalize).
func (sp *Span) AddStage(s Stage, ns int64) {
	sp.StageNs[s] += ns
}

// Sync re-arms the lap timer without attributing the elapsed time to
// any stage — for skipping bookkeeping code between stages. A no-op
// before Begin.
func (sp *Span) Sync() {
	if sp.beganNs == 0 {
		return
	}
	sp.markNs = monoNow() - sp.beganNs
}

// Event appends a named annotation at the span's current elapsed time.
func (sp *Span) Event(name string) {
	var at int64
	if sp.beganNs != 0 {
		at = monoNow() - sp.beganNs
	}
	sp.Events = append(sp.Events, SpanEvent{Name: name, AtNs: at})
}

// AddEvent appends a named annotation at an externally measured offset
// (delivery spans are timed on the resilience layer's clock, not this
// process's monotonic one).
func (sp *Span) AddEvent(name string, atNs int64) {
	sp.Events = append(sp.Events, SpanEvent{Name: name, AtNs: atNs})
}

// finish stamps the total duration.
func (sp *Span) finish() {
	if sp.beganNs != 0 {
		sp.TotalNs = monoNow() - sp.beganNs
	}
}

// Tracer decides which requests get a span and keeps the retained
// spans in a ring buffer. Sampling is two-tier:
//
//   - The head sampler (SetSampleRate) keeps every Nth request
//     unconditionally — the predictable baseline. When tracing is off
//     entirely (rate 0) the per-request cost is one atomic load.
//   - The tail sampler (RecordTail) re-examines every completed span
//     and retains the interesting ones the head sampler missed:
//     degraded, denied (suppressed), breaker-affected, dropped, or
//     slower than the SetTailSlow threshold. At 1/1000 head sampling
//     the boring 99.9% is discarded after completion, but the
//     interesting 0.1% is never lost.
//
// The cost model follows: with tracing enabled, every request collects
// a span (timestamps and ids) so the tail decision has something to
// keep; only retained spans pay the ring's mutex.
type Tracer struct {
	every    atomic.Int64 // head-sample every Nth request; 0 = tracing off
	seq      atomic.Int64
	sampled  atomic.Int64 // total spans retained
	tailSlow atomic.Int64 // tail-keep latency threshold in ns; 0 = off

	// kept counts retained spans by keep reason; exposed as
	// histanon_trace_tail_kept_total.
	kept *metrics.CounterVec

	mu   sync.Mutex
	ring []Span
	next int
	full bool
}

// DefaultRingSize is the span capacity of a NewTracer ring.
const DefaultRingSize = 1024

// NewTracer returns a tracer with the given ring capacity (≤ 0 means
// DefaultRingSize) and sampling off.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Tracer{ring: make([]Span, capacity), kept: metrics.NewCounterVec("reason")}
}

// SetSampleRate sets the sampled fraction of requests: 0 disables
// tracing, 1 traces everything, and an intermediate f traces every
// round(1/f)-th request (deterministic, not probabilistic, so overhead
// is stable and tests are reproducible).
func (t *Tracer) SetSampleRate(f float64) {
	switch {
	case f <= 0:
		t.every.Store(0)
	case f >= 1:
		t.every.Store(1)
	default:
		n := int64(1/f + 0.5)
		if n < 1 {
			n = 1
		}
		t.every.Store(n)
	}
}

// SampleEvery returns the current every-Nth setting (0 = off).
func (t *Tracer) SampleEvery() int64 { return t.every.Load() }

// SetTailSlow sets the latency above which a completed span is retained
// by the tail sampler even when the head sampler missed it (0 disables
// the slow-keep rule). Safe to change while requests are in flight.
func (t *Tracer) SetTailSlow(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.tailSlow.Store(d.Nanoseconds())
}

// TailSlow returns the current slow-keep threshold (0 = off).
func (t *Tracer) TailSlow() time.Duration {
	return time.Duration(t.tailSlow.Load())
}

// Sample decides the current request's tracing fate. collect reports
// whether the request should gather a span at all; head reports whether
// the every-Nth head sampler retains it unconditionally. With tracing
// off both are false and the cost is one atomic load; with tracing on,
// every request collects (so the tail decision can rescue interesting
// spans) and every Nth is head-retained.
func (t *Tracer) Sample() (collect, head bool) {
	every := t.every.Load()
	if every == 0 {
		return false, false
	}
	return true, t.seq.Add(1)%every == 0
}

// SampleWithParent is Sample honoring an upstream W3C sampled flag: a
// parent that already decided to keep the trace forces collection and
// head retention, even when local tracing is off.
func (t *Tracer) SampleWithParent(parentSampled bool) (collect, head bool) {
	collect, head = t.Sample()
	if parentSampled {
		return true, true
	}
	return collect, head
}

// Sampled returns how many spans have been retained in total (including
// ones the ring has since overwritten).
func (t *Tracer) Sampled() int64 { return t.sampled.Load() }

// KeptCounters exposes the retained-span counters by keep reason.
func (t *Tracer) KeptCounters() *metrics.CounterVec { return t.kept }

// tailKeep returns the keep reason for a completed span the head
// sampler missed, or "" to discard it.
func (t *Tracer) tailKeep(sp *Span) string {
	switch sp.Outcome {
	case OutcomeDegraded:
		return KeepDegraded
	case OutcomeSuppressed:
		return KeepDenied
	case OutcomeDropped:
		return KeepDropped
	}
	for _, e := range sp.Events {
		if strings.Contains(e.Name, "breaker") {
			return KeepBreaker
		}
	}
	if slow := t.tailSlow.Load(); slow > 0 && sp.TotalNs >= slow {
		return KeepSlow
	}
	return ""
}

// RecordTail finishes the span and runs the keep decision: head-sampled
// spans are always retained; the rest are retained only when the tail
// sampler finds them interesting (degraded, denied, dropped,
// breaker-affected, or slow). Retained spans get their trace identity
// rendered (MaterializeIDs) and enter the ring as a deep-copied
// snapshot, so the ring never aliases a pooled span's memory; the
// discarded majority pays neither. It reports whether the span entered
// the ring.
func (t *Tracer) RecordTail(sp *Span, head bool) bool {
	sp.finish()
	reason := KeepHead
	if !head {
		if reason = t.tailKeep(sp); reason == "" {
			return false
		}
	}
	sp.KeepReason = reason
	sp.MaterializeIDs()
	t.kept.Inc(reason)
	t.sampled.Add(1)
	snap := sp.snapshot()
	t.mu.Lock()
	t.ring[t.next] = snap
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
	return true
}

// Record finishes the span and stores it unconditionally (a
// head-retained RecordTail), overwriting the oldest entry when full.
func (t *Tracer) Record(sp *Span) { t.RecordTail(sp, true) }

// Spans returns a copy of the buffered spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	if t.full {
		out = make([]Span, 0, len(t.ring))
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring[:t.next]...)
	}
	return out
}

// SpansByTrace returns the buffered spans of one trace id, oldest
// first — the /v1/spans?trace= lookup behind metric exemplars.
func (t *Tracer) SpansByTrace(traceID string) []Span {
	if traceID == "" {
		return nil
	}
	var out []Span
	for _, sp := range t.Spans() {
		if sp.TraceID == traceID {
			out = append(out, sp)
		}
	}
	return out
}
