// Package obs is the trusted server's observability layer: request
// tracing, privacy metrics, and the privacy audit log. It exists so an
// operator of a production TS can answer, from the outside, the three
// questions the paper's §6.1 loop raises continuously — where is
// request time going, why was a request generalized or suppressed, and
// how close is the population to anonymity failure.
//
// Three components, all wired through the Observer façade:
//
//   - Tracer (trace.go) — per-request spans recording wall time and
//     outcome for each pipeline stage (LBQID match, KNN lookup, box
//     construction, tolerance check, unlink decision, forward),
//     captured into a fixed-size ring buffer behind a sampling knob.
//     With sampling off the per-request cost is one atomic load.
//
//   - Privacy metrics — always-on counters and fixed-bucket histograms
//     (achieved-k distribution, generalized area/interval) built on
//     internal/metrics and exposed in Prometheus text format by
//     internal/httpapi at GET /metrics.
//
//   - AuditLog (audit.go) — a JSON-lines record of every
//     privacy-relevant decision: which LBQID matched, achieved k vs
//     requested k, generalization expansion factors, pseudonym
//     rotations. ReplayAchievedK rebuilds the live achieved-k histogram
//     from a log, so EXPERIMENTS-style tables can be recomputed from a
//     production deployment's audit trail.
//
// OBSERVABILITY.md at the repository root documents every metric name,
// span stage and audit field, plus the operator runbook.
package obs

import (
	"sync/atomic"

	"histanon/internal/metrics"
)

// Metric family names registered by the trusted server. Keeping them as
// constants gives the documentation checker a single source of truth.
const (
	MetricEvents       = "histanon_ts_events_total"
	MetricStageSeconds = "histanon_stage_duration_seconds"
	MetricAchievedK    = "histanon_achieved_k"
	MetricGenArea      = "histanon_generalization_area_m2"
	MetricGenInterval  = "histanon_generalization_interval_seconds"
	MetricRotations    = "histanon_pseudonym_rotations_total"
	MetricGenFailures  = "histanon_generalization_failures_total"
	MetricPHLUsers     = "histanon_phl_users"
	MetricPHLSamples   = "histanon_phl_samples"
	MetricSpansSampled = "histanon_trace_spans_sampled_total"
	MetricTailKept     = "histanon_trace_tail_kept_total"
	MetricAuditEvents  = "histanon_audit_events_total"
	MetricAuditErrors  = "histanon_audit_errors_total"

	// Resilience-layer families (internal/resilience): the async SP
	// delivery pipeline, its circuit breakers, HTTP admission control
	// and snapshot durability.
	MetricResilienceEvents      = "histanon_resilience_events_total"
	MetricResilienceQueueDepth  = "histanon_resilience_queue_depth"
	MetricResilienceBreakerOpen = "histanon_resilience_breaker_open"
	MetricHTTPShed              = "histanon_http_shed_total"
	MetricHTTPInFlight          = "histanon_http_inflight"
	MetricSnapshotAge           = "histanon_snapshot_age_seconds"
	MetricSnapshotErrors        = "histanon_snapshot_errors_total"

	// Binary wire-protocol families (internal/wire via internal/httpapi):
	// the /v1/batch ingest channel.
	MetricWireFrames       = "histanon_wire_frames_total"
	MetricWireBatches      = "histanon_wire_batches_total"
	MetricWireBytes        = "histanon_wire_bytes_total"
	MetricWireDecodeErrors = "histanon_wire_decode_errors_total"
	MetricWireBatchFrames  = "histanon_wire_batch_frames"

	// Streaming-workload driver families (internal/sim
	// StreamStats.RegisterMetrics): the million-agent scenario generator
	// feeding the batch ingest path during -compbench runs.
	MetricSimStreamAgents   = "histanon_sim_stream_agents_total"
	MetricSimStreamEvents   = "histanon_sim_stream_events_total"
	MetricSimStreamRequests = "histanon_sim_stream_requests_total"
	MetricSimStreamBatches  = "histanon_sim_stream_batches_total"
	MetricSimStreamBytes    = "histanon_sim_stream_bytes_total"

	// Durable tiered-storage families (internal/storage TieredStore):
	// WAL durability, snapshot chain maintenance, hot/cold demotion and
	// the cold read path.
	MetricStorageWALAppends      = "histanon_storage_wal_appends_total"
	MetricStorageWALFsyncs       = "histanon_storage_wal_fsyncs_total"
	MetricStorageWALBytes        = "histanon_storage_wal_bytes_total"
	MetricStorageWALErrors       = "histanon_storage_wal_errors_total"
	MetricStorageWALLag          = "histanon_storage_wal_lag_records"
	MetricStorageSnapshots       = "histanon_storage_snapshots_total"
	MetricStorageSnapshotErrors  = "histanon_storage_snapshot_errors_total"
	MetricStorageDemotions       = "histanon_storage_demotions_total"
	MetricStorageDemotedSamples  = "histanon_storage_demoted_samples_total"
	MetricStorageColdReads       = "histanon_storage_cold_reads_total"
	MetricStorageHotSamples      = "histanon_storage_hot_samples"
	MetricStorageColdSamples     = "histanon_storage_cold_samples"
	MetricStorageChainFiles      = "histanon_storage_snapshot_chain_files"
	MetricStorageRecoverySeconds = "histanon_storage_recovery_seconds"
	MetricStorageRecoveryRecords = "histanon_storage_recovery_records"
	MetricStorageFailed          = "histanon_storage_failed"

	// Privacy-SLO families (internal/slo): windowed privacy aggregates,
	// burn-rate alert states and the re-identification canary.
	MetricSLODecisions         = "histanon_slo_decisions_total"
	MetricSLOBelowK            = "histanon_slo_below_k_total"
	MetricSLODroppedLate       = "histanon_slo_dropped_late_total"
	MetricSLOBelowKRatio       = "histanon_slo_below_k_ratio"
	MetricSLOSuppressionRatio  = "histanon_slo_suppression_ratio"
	MetricSLODegradedRatio     = "histanon_slo_degraded_ratio"
	MetricSLOAchievedKQuantile = "histanon_slo_achieved_k_quantile"
	MetricSLOBurnRate          = "histanon_slo_burn_rate"
	MetricSLOState             = "histanon_slo_state"
	MetricSLOTransitions       = "histanon_slo_transitions_total"
	MetricSLOCanaryLinkProb    = "histanon_slo_canary_link_probability"
	MetricSLOCanaryReident     = "histanon_slo_canary_reidentified_ratio"
	MetricSLOCanaryAnonSet     = "histanon_slo_canary_anon_set_mean"
	MetricSLOCanaryProbes      = "histanon_slo_canary_probes_total"
	MetricSLOCanarySkipped     = "histanon_slo_canary_skipped_total"
	MetricSLOCanaryAge         = "histanon_slo_canary_age_seconds"
)

// MetricNames lists every metric family the server registers, for the
// documentation-coverage check.
func MetricNames() []string {
	return []string{
		MetricEvents, MetricStageSeconds, MetricAchievedK, MetricGenArea,
		MetricGenInterval, MetricRotations, MetricGenFailures, MetricPHLUsers,
		MetricPHLSamples, MetricSpansSampled, MetricTailKept,
		MetricAuditEvents, MetricAuditErrors,
		MetricResilienceEvents, MetricResilienceQueueDepth,
		MetricResilienceBreakerOpen, MetricHTTPShed, MetricHTTPInFlight,
		MetricSnapshotAge, MetricSnapshotErrors,
		MetricWireFrames, MetricWireBatches, MetricWireBytes,
		MetricWireDecodeErrors, MetricWireBatchFrames,
		MetricStorageWALAppends, MetricStorageWALFsyncs, MetricStorageWALBytes,
		MetricStorageWALErrors, MetricStorageWALLag,
		MetricStorageSnapshots, MetricStorageSnapshotErrors,
		MetricStorageDemotions, MetricStorageDemotedSamples,
		MetricStorageColdReads, MetricStorageHotSamples, MetricStorageColdSamples,
		MetricStorageChainFiles, MetricStorageRecoverySeconds,
		MetricStorageRecoveryRecords, MetricStorageFailed,
		MetricSLODecisions, MetricSLOBelowK, MetricSLODroppedLate,
		MetricSLOBelowKRatio, MetricSLOSuppressionRatio,
		MetricSLODegradedRatio, MetricSLOAchievedKQuantile,
		MetricSLOBurnRate, MetricSLOState, MetricSLOTransitions,
		MetricSLOCanaryLinkProb, MetricSLOCanaryReident,
		MetricSLOCanaryAnonSet, MetricSLOCanaryProbes,
		MetricSLOCanarySkipped, MetricSLOCanaryAge,
	}
}

// AchievedKBuckets returns the bucket bounds of the achieved-k
// histogram: one bucket per k in [1, 20]. Shared by the live Observer
// and ReplayAchievedK so the two always agree.
func AchievedKBuckets() []float64 { return metrics.LinearBuckets(1, 1, 20) }

// StageSecondsBuckets returns the latency buckets (seconds) of the
// per-stage histograms: 1 µs … ≈4.2 s, ×4 per bucket.
func StageSecondsBuckets() []float64 { return metrics.ExponentialBuckets(1e-6, 4, 12) }

// GenAreaBuckets returns the buckets (m²) of the generalized-area
// histogram: 1 m² … 10¹¹ m², ×10 per bucket.
func GenAreaBuckets() []float64 { return metrics.ExponentialBuckets(1, 10, 12) }

// GenIntervalBuckets returns the buckets (seconds) of the
// generalized-interval histogram: 1 s … ≈4.2 Ms, ×4 per bucket.
func GenIntervalBuckets() []float64 { return metrics.ExponentialBuckets(1, 4, 12) }

// Observer bundles the tracer, the privacy histograms and the audit
// sink into the single handle the trusted server threads through its
// request path. The zero value is not usable — construct with New.
type Observer struct {
	// Tracer samples request spans; never nil.
	Tracer *Tracer
	// StageSeconds holds one latency histogram per pipeline stage,
	// indexed by Stage, fed only for sampled requests.
	StageSeconds [NumStages]*metrics.Histogram
	// AchievedK is the always-on distribution of achieved anonymity
	// (witnesses+1) over generalized requests.
	AchievedK *metrics.Histogram
	// GenAreaM2 and GenIntervalS are the always-on distributions of the
	// forwarded generalized context's spatial and temporal extent.
	GenAreaM2    *metrics.Histogram
	GenIntervalS *metrics.Histogram

	audit     atomic.Pointer[AuditLog]
	exemplars atomic.Bool
}

// New returns an observer with sampling off and no audit sink: the
// configuration every server starts with, costing nothing until an
// operator turns a knob.
func New() *Observer {
	o := &Observer{
		Tracer:       NewTracer(DefaultRingSize),
		AchievedK:    metrics.NewHistogram(AchievedKBuckets()),
		GenAreaM2:    metrics.NewHistogram(GenAreaBuckets()),
		GenIntervalS: metrics.NewHistogram(GenIntervalBuckets()),
	}
	for i := range o.StageSeconds {
		o.StageSeconds[i] = metrics.NewHistogram(StageSecondsBuckets())
	}
	return o
}

// SetAudit installs (or, with nil, removes) the audit sink. Safe to
// call while requests are in flight.
func (o *Observer) SetAudit(a *AuditLog) { o.audit.Store(a) }

// AuditSink returns the current audit sink; nil when auditing is off
// (and a nil *AuditLog is itself a valid no-op sink).
func (o *Observer) AuditSink() *AuditLog { return o.audit.Load() }

// Audit logs one event if an audit sink is installed.
func (o *Observer) Audit(e Event) { o.audit.Load().Log(e) }

// SetExemplars enables (or disables) exemplar capture: retained spans
// leave their trace id on the latency histogram buckets they land in,
// so a /metrics scrape can point back to /v1/spans?trace=. Safe to
// toggle while requests are in flight.
func (o *Observer) SetExemplars(on bool) { o.exemplars.Store(on) }

// ExemplarsEnabled reports whether exemplar capture is on.
func (o *Observer) ExemplarsEnabled() bool { return o.exemplars.Load() }

// RecordSpan finishes a collected span, runs the tail keep decision
// (head marks an unconditional head-sampler retention) and feeds the
// per-stage latency histograms. Retained spans additionally stamp their
// trace id on the histogram buckets when exemplar capture is on. Spans
// minted by NewSpan are recycled to the pool before returning — the
// caller hands over ownership and must not touch the span afterwards.
// It reports whether the span was retained in the ring.
func (o *Observer) RecordSpan(sp *Span, head bool) bool {
	kept := o.Tracer.RecordTail(sp, head)
	// RecordTail materialized the trace id if the span was kept and
	// carries an identity, so this read sees the rendered string.
	withExemplar := kept && sp.TraceID != "" && o.exemplars.Load()
	for i, ns := range sp.StageNs {
		if ns > 0 {
			v := float64(ns) / 1e9
			if withExemplar {
				o.StageSeconds[i].ObserveExemplar(v, sp.TraceID)
			} else {
				o.StageSeconds[i].Observe(v)
			}
		}
	}
	sp.Release()
	return kept
}
