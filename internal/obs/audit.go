// The privacy audit log: one JSON-lines record per privacy-relevant
// decision the trusted server takes, so the privacy story of a
// production deployment can be reconstructed — and the EXPERIMENTS
// tables recomputed — from the log alone. OBSERVABILITY.md documents
// every field.

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"histanon/internal/metrics"
)

// Audit event kinds.
const (
	// KindRequest is a monitored request decision (only requests that
	// matched an LBQID, were suppressed, or found the user at risk are
	// privacy-relevant; plain pass-through requests are not logged).
	KindRequest = "request"
	// KindRotation is a pseudonym rotation (an Unlinking action).
	KindRotation = "rotation"
	// KindDelivery is an asynchronous SP delivery outcome from the
	// resilience layer: a request that was admitted for forwarding but
	// dropped before reaching the service provider (deadline expiry,
	// breaker opening mid-flight, or retries exhausted).
	KindDelivery = "delivery"
	// KindSLO is a privacy-SLO burn-rate state transition from
	// internal/slo: an objective moved between ok, warning and page.
	// These records make alert history replayable from the audit log
	// alone, next to the decisions that caused the burn.
	KindSLO = "slo"
)

// Event is one audit record. Numeric identity fields are int64 so logs
// survive a round trip through other tooling without float truncation.
type Event struct {
	// T is the logical timestamp of the triggering request (seconds, the
	// simulation/deployment clock the whole system runs on).
	T int64 `json:"t"`
	// Kind is KindRequest or KindRotation.
	Kind string `json:"kind"`
	// TraceID links the record to its request's span tree (the 32-char
	// hex W3C trace id; empty when the request was untraced). All kinds
	// carry it: a delivery drop, the rotation it may have triggered and
	// the request decision itself correlate through this field.
	TraceID string `json:"trace_id,omitempty"`
	// User is the issuing user's internal id (never shown to SPs).
	User int64 `json:"user"`
	// MsgID is the TS↔SP message id, when one was assigned.
	MsgID int64 `json:"msgid,omitempty"`
	// Service names the requested service.
	Service string `json:"service,omitempty"`
	// Matched lists the LBQID names the request matched, comma-joined.
	Matched string `json:"matched,omitempty"`
	// RequestedK is the policy's k for this request.
	RequestedK int `json:"requested_k,omitempty"`
	// AchievedK is the number of users (including the issuer) whose
	// histories remain consistent with the forwarded boxes: witnesses+1.
	// 1 means generalization found no witnesses at all.
	AchievedK int `json:"achieved_k,omitempty"`
	// AreaM2 and IntervalS are the forwarded context's spatial area (m²)
	// and temporal extent (seconds) — the generalization expansion over
	// the exact point the TS received.
	AreaM2    float64 `json:"area_m2,omitempty"`
	IntervalS int64   `json:"interval_s,omitempty"`
	// AreaTolFrac and TimeTolFrac are the expansion factors relative to
	// the service's tolerance constraint: forwarded extent divided by the
	// maximum the service accepts (0 when the tolerance is unlimited).
	// Values near 1 mean generalization is about to start failing.
	AreaTolFrac float64 `json:"area_tol_frac,omitempty"`
	TimeTolFrac float64 `json:"time_tol_frac,omitempty"`
	// HKAnonymity is Algorithm 1's verdict for the request.
	HKAnonymity bool `json:"hk"`
	// Outcome is OutcomeForwarded, OutcomeSuppressed, OutcomeDegraded
	// (fail-closed admission refusal) or OutcomeDropped (asynchronous
	// delivery failure, KindDelivery only).
	Outcome string `json:"outcome,omitempty"`
	// Reason qualifies a degraded or dropped outcome: "queue_full",
	// "breaker_open", "deadline_exceeded" or "retries_exhausted".
	Reason string `json:"reason,omitempty"`
	// Attempts counts the delivery attempts made before a KindDelivery
	// drop.
	Attempts int `json:"attempts,omitempty"`
	// Unlinked and AtRisk mirror the ts.Decision flags.
	Unlinked bool `json:"unlinked,omitempty"`
	AtRisk   bool `json:"at_risk,omitempty"`
	// Zone names the mix zone that enabled a rotation: a static zone's
	// name, "ondemand" for a planned trajectory-diverging zone, or
	// "ondemand_fallback" for a temporal-only fallback zone.
	Zone string `json:"zone,omitempty"`
	// OldPseudonym and NewPseudonym record a rotation's before/after
	// identifiers (KindRotation only).
	OldPseudonym string `json:"old_pseudonym,omitempty"`
	NewPseudonym string `json:"new_pseudonym,omitempty"`
	// Objective names the privacy objective whose burn-rate state changed
	// (KindSLO only), as written in the objective spec (e.g. "below_k").
	Objective string `json:"objective,omitempty"`
	// SLOState and SLOFrom record a KindSLO transition's new and previous
	// states ("ok", "warning", "page").
	SLOState string `json:"slo_state,omitempty"`
	SLOFrom  string `json:"slo_from,omitempty"`
	// BurnRate is the short-window burn rate (observed bad-decision ratio
	// divided by the objective's budget) at the moment of a KindSLO
	// transition.
	BurnRate float64 `json:"burn_rate,omitempty"`
}

// AuditLog writes events as JSON lines. It is safe for concurrent use;
// writes are buffered, so callers must Flush (or Close) before reading
// the destination. A nil *AuditLog is a valid no-op sink.
//
// The encode path reuses one bytes.Buffer, encoder and Event scratch
// slot per sink (all guarded by mu), so a steady stream of records
// performs no per-record buffer or interface-boxing allocation, and a
// record that fails to encode writes nothing to the destination — no
// torn lines.
type AuditLog struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	buf     bytes.Buffer
	enc     *json.Encoder // encodes into buf
	scratch Event         // stable address, so Encode boxes no copy
	events  atomic.Int64
	errs    atomic.Int64
	closer  io.Closer
}

// NewAuditLog returns an audit log writing to w. When w is also an
// io.Closer, Close closes it.
func NewAuditLog(w io.Writer) *AuditLog {
	a := &AuditLog{bw: bufio.NewWriter(w)}
	a.enc = json.NewEncoder(&a.buf)
	if c, ok := w.(io.Closer); ok {
		a.closer = c
	}
	return a
}

// Log appends one event. Encoding errors are counted, not returned: the
// audit log must never fail a request.
func (a *AuditLog) Log(e Event) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.scratch = e
	a.buf.Reset()
	err := a.enc.Encode(&a.scratch)
	if err == nil {
		_, err = a.bw.Write(a.buf.Bytes())
	}
	a.mu.Unlock()
	if err != nil {
		a.errs.Add(1)
		return
	}
	a.events.Add(1)
}

// Events returns how many events were logged successfully.
func (a *AuditLog) Events() int64 {
	if a == nil {
		return 0
	}
	return a.events.Load()
}

// Errors returns how many events failed to encode or flush.
func (a *AuditLog) Errors() int64 {
	if a == nil {
		return 0
	}
	return a.errs.Load()
}

// Flush forces buffered events to the underlying writer.
func (a *AuditLog) Flush() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.bw.Flush(); err != nil {
		a.errs.Add(1)
		return err
	}
	return nil
}

// Close flushes and, when the destination is closable, closes it.
func (a *AuditLog) Close() error {
	if a == nil {
		return nil
	}
	err := a.Flush()
	if a.closer != nil {
		if cerr := a.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadEvents parses a JSON-lines audit stream back into events. It
// stops at the first malformed line, returning the events read so far
// alongside the error.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return out, fmt.Errorf("obs: audit line %d: %w", line, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// ReplayAchievedK rebuilds the achieved-k histogram from an audit
// stream. The result uses the same buckets as Observer.AchievedK, so a
// production log replays into exactly the distribution the live
// /metrics endpoint reported — the property the correctness tests pin.
func ReplayAchievedK(r io.Reader) (*metrics.Histogram, error) {
	events, err := ReadEvents(r)
	if err != nil {
		return nil, err
	}
	h := metrics.NewHistogram(AchievedKBuckets())
	for _, e := range events {
		if e.Kind == KindRequest && e.AchievedK > 0 {
			h.Observe(float64(e.AchievedK))
		}
	}
	return h, nil
}
