package obs

import (
	"strings"
	"testing"
)

// FuzzParseTraceparent throws arbitrary header values at the W3C codec
// and checks the parser's contract: no panics, and every accepted value
// yields a valid context that re-renders into a header the parser
// accepts again with identical identity.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	f.Add("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01")
	f.Add("")
	f.Add(strings.Repeat("-", 64))
	f.Fuzz(func(t *testing.T, s string) {
		tc, err := ParseTraceparent(s)
		if err != nil {
			if tc.Valid() {
				t.Fatalf("rejected input %q still produced a valid context", s)
			}
			return
		}
		if !tc.Valid() {
			t.Fatalf("accepted input %q produced an invalid context", s)
		}
		// Accepted headers must survive a render→parse round trip with
		// the same identifiers and flags (the version normalizes to 00).
		again, err := ParseTraceparent(tc.Traceparent())
		if err != nil {
			t.Fatalf("re-rendered header %q rejected: %v", tc.Traceparent(), err)
		}
		if again != tc {
			t.Fatalf("round trip drift: %+v vs %+v", again, tc)
		}
	})
}
