// W3C Trace Context: the identity triplet (trace id, span id, sampled
// flag) that follows one request across its whole asynchronous lifetime
// — HTTP ingress, the TS pipeline, and the resilience layer's delivery
// queue — plus the `traceparent` header codec that carries it over the
// wire. Minting is allocation-free and lock-free (an atomic splitmix64
// stream), so attaching identities to every collected span costs
// nanoseconds.

package obs

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// FlagSampled is the traceparent trace-flags bit signalling that the
// caller kept (or wants kept) this trace.
const FlagSampled byte = 0x01

// TraceContext identifies one request's position in a distributed
// trace: which trace it belongs to, which span is the current parent,
// and whether an upstream sampler already decided to keep it. The zero
// value is "untraced" (Valid reports false).
type TraceContext struct {
	// TraceID identifies the whole end-to-end trace (16 bytes, non-zero
	// when valid).
	TraceID [16]byte
	// SpanID identifies the current span within the trace (8 bytes,
	// non-zero when valid).
	SpanID [8]byte
	// Flags is the W3C trace-flags octet; bit 0 is FlagSampled.
	Flags byte
}

// Valid reports whether the context carries real identifiers: the W3C
// format forbids all-zero trace and span ids.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// Sampled reports the sampled flag bit.
func (tc TraceContext) Sampled() bool { return tc.Flags&FlagSampled != 0 }

// WithSampled returns a copy with the sampled flag set or cleared.
func (tc TraceContext) WithSampled(on bool) TraceContext {
	if on {
		tc.Flags |= FlagSampled
	} else {
		tc.Flags &^= FlagSampled
	}
	return tc
}

// TraceIDString returns the 32-char lowercase hex trace id.
func (tc TraceContext) TraceIDString() string { return hex.EncodeToString(tc.TraceID[:]) }

// SpanIDString returns the 16-char lowercase hex span id.
func (tc TraceContext) SpanIDString() string { return hex.EncodeToString(tc.SpanID[:]) }

// Traceparent renders the context as a version-00 W3C traceparent
// header value: 00-<trace-id>-<span-id>-<flags>. The header is built in
// a stack buffer, so rendering costs exactly one allocation (the
// returned string).
func (tc TraceContext) Traceparent() string {
	const hexdigits = "0123456789abcdef"
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], tc.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], tc.SpanID[:])
	b[52] = '-'
	b[53] = hexdigits[tc.Flags>>4]
	b[54] = hexdigits[tc.Flags&0x0f]
	return string(b[:])
}

// Child returns a context in the same trace with a fresh span id and
// the same flags — the identity a child span (the TS request span under
// an upstream caller, or a delivery span under a request span) records
// as its own.
func (tc TraceContext) Child() TraceContext {
	c := tc
	for {
		binary.BigEndian.PutUint64(c.SpanID[:], nextID())
		if c.SpanID != [8]byte{} {
			return c
		}
	}
}

// MintTraceContext starts a new trace: fresh random trace and span ids,
// with the sampled flag reflecting the head sampler's decision.
func MintTraceContext(sampled bool) TraceContext {
	var tc TraceContext
	for tc.TraceID == [16]byte{} {
		binary.BigEndian.PutUint64(tc.TraceID[:8], nextID())
		binary.BigEndian.PutUint64(tc.TraceID[8:], nextID())
	}
	for tc.SpanID == [8]byte{} {
		binary.BigEndian.PutUint64(tc.SpanID[:], nextID())
	}
	return tc.WithSampled(sampled)
}

// idState is the splitmix64 stream behind MintTraceContext/Child: one
// atomic add plus the finalizer per id, shared by all goroutines, seeded
// once from the clock so separate processes mint disjoint ids.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano()) | 1) }

// nextID returns the next id from the shared splitmix64 stream (the
// same generator the resilience layer uses for retry jitter).
func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ParseTraceparent decodes a W3C traceparent header value. It enforces
// the level-1 spec: lowercase hex only, version ff invalid, version 00
// exactly 55 bytes, future versions at least 55 bytes with any extra
// content set off by a dash, and non-zero trace and span ids. The
// returned context preserves the sender's flags.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	if len(s) < 55 {
		return tc, fmt.Errorf("obs: traceparent too short: %d bytes", len(s))
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, fmt.Errorf("obs: traceparent separators misplaced")
	}
	ver, ok := hexOctet(s[0], s[1])
	if !ok {
		return tc, fmt.Errorf("obs: traceparent version is not lowercase hex")
	}
	if ver == 0xff {
		return tc, fmt.Errorf("obs: traceparent version ff is forbidden")
	}
	if ver == 0 && len(s) != 55 {
		return tc, fmt.Errorf("obs: version-00 traceparent must be 55 bytes, got %d", len(s))
	}
	if ver != 0 && len(s) > 55 && s[55] != '-' {
		return tc, fmt.Errorf("obs: traceparent extra content must follow a dash")
	}
	if !decodeLowerHex(tc.TraceID[:], s[3:35]) {
		return tc, fmt.Errorf("obs: traceparent trace-id is not lowercase hex")
	}
	if tc.TraceID == [16]byte{} {
		return TraceContext{}, fmt.Errorf("obs: traceparent trace-id is all zeros")
	}
	if !decodeLowerHex(tc.SpanID[:], s[36:52]) {
		return TraceContext{}, fmt.Errorf("obs: traceparent parent-id is not lowercase hex")
	}
	if tc.SpanID == [8]byte{} {
		return TraceContext{}, fmt.Errorf("obs: traceparent parent-id is all zeros")
	}
	flags, ok := hexOctet(s[53], s[54])
	if !ok {
		return TraceContext{}, fmt.Errorf("obs: traceparent flags are not lowercase hex")
	}
	tc.Flags = flags
	return tc, nil
}

// hexVal decodes one lowercase hex digit. The spec forbids uppercase,
// so 'A'..'F' are rejected here on purpose.
func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// hexOctet decodes two lowercase hex digits into one byte.
func hexOctet(hi, lo byte) (byte, bool) {
	h, ok1 := hexVal(hi)
	l, ok2 := hexVal(lo)
	return h<<4 | l, ok1 && ok2
}

// decodeLowerHex fills dst from exactly len(dst)*2 lowercase hex digits.
func decodeLowerHex(dst []byte, s string) bool {
	for i := range dst {
		b, ok := hexOctet(s[2*i], s[2*i+1])
		if !ok {
			return false
		}
		dst[i] = b
	}
	return true
}
