package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"histanon/internal/metrics"
)

func TestTailKeepReasons(t *testing.T) {
	tr := NewTracer(64)
	tr.SetTailSlow(time.Millisecond)

	cases := []struct {
		name string
		span Span
		want string // "" = discarded
	}{
		{"forwarded fast", Span{Outcome: OutcomeForwarded}, ""},
		{"degraded", Span{Outcome: OutcomeDegraded}, KeepDegraded},
		{"denied", Span{Outcome: OutcomeSuppressed}, KeepDenied},
		{"dropped delivery", Span{Kind: SpanKindDelivery, Outcome: OutcomeDropped}, KeepDropped},
		{"breaker event", Span{Outcome: OutcomeForwarded,
			Events: []SpanEvent{{Name: "shed_breaker_open"}}}, KeepBreaker},
		{"slow", Span{Outcome: OutcomeForwarded, TotalNs: 2e6}, KeepSlow},
		{"fast under threshold", Span{Outcome: OutcomeForwarded, TotalNs: 5e5}, ""},
	}
	for _, c := range cases {
		sp := c.span
		kept := tr.RecordTail(&sp, false)
		if kept != (c.want != "") {
			t.Fatalf("%s: kept = %v, want %v", c.name, kept, c.want != "")
		}
		if kept && sp.KeepReason != c.want {
			t.Fatalf("%s: KeepReason = %q, want %q", c.name, sp.KeepReason, c.want)
		}
	}

	// Head retention wins regardless of outcome, and is counted as such.
	sp := Span{Outcome: OutcomeForwarded}
	if !tr.RecordTail(&sp, true) {
		t.Fatal("head-sampled spans must always be retained")
	}
	if sp.KeepReason != KeepHead {
		t.Fatalf("KeepReason = %q, want %q", sp.KeepReason, KeepHead)
	}
	if got := tr.KeptCounters().Get(KeepHead); got != 1 {
		t.Fatalf("kept[head] = %d", got)
	}
	if got := tr.KeptCounters().Get(KeepDegraded); got != 1 {
		t.Fatalf("kept[degraded] = %d", got)
	}
}

func TestTailSlowKnob(t *testing.T) {
	tr := NewTracer(8)
	if tr.TailSlow() != 0 {
		t.Fatal("slow-keep must default to off")
	}
	sp := Span{Outcome: OutcomeForwarded, TotalNs: 1 << 40}
	if tr.RecordTail(&sp, false) {
		t.Fatal("with the slow rule off, slowness alone must not retain")
	}
	tr.SetTailSlow(-time.Second)
	if tr.TailSlow() != 0 {
		t.Fatal("negative thresholds must clamp to off")
	}
	tr.SetTailSlow(time.Second)
	if tr.TailSlow() != time.Second {
		t.Fatalf("TailSlow = %v", tr.TailSlow())
	}
}

func TestSpansByTrace(t *testing.T) {
	tr := NewTracer(16)
	tc := MintTraceContext(true)
	req := Span{TraceID: tc.TraceIDString(), SpanID: tc.SpanIDString(),
		Kind: SpanKindRequest, Outcome: OutcomeForwarded}
	child := tc.Child()
	del := Span{TraceID: child.TraceIDString(), SpanID: child.SpanIDString(),
		ParentSpanID: tc.SpanIDString(), Kind: SpanKindDelivery, Outcome: OutcomeDelivered}
	other := Span{TraceID: MintTraceContext(true).TraceIDString(), Outcome: OutcomeForwarded}
	tr.Record(&req)
	tr.Record(&del)
	tr.Record(&other)

	got := tr.SpansByTrace(tc.TraceIDString())
	if len(got) != 2 {
		t.Fatalf("SpansByTrace returned %d spans, want 2", len(got))
	}
	if got[0].Kind != SpanKindRequest || got[1].Kind != SpanKindDelivery {
		t.Fatalf("kinds = %q, %q", got[0].Kind, got[1].Kind)
	}
	if got[1].ParentSpanID != got[0].SpanID {
		t.Fatal("delivery span must hang off the request span")
	}
	if tr.SpansByTrace("") != nil {
		t.Fatal("empty trace id must match nothing")
	}
}

// TestSpanRingRaceStress hammers the ring from concurrent completers
// (mixed head and tail decisions) while readers drain Spans and
// SpansByTrace — the production shape of a busy server under a /v1/spans
// poller. Run with -race; correctness check is that every retained span
// is internally consistent.
func TestSpanRingRaceStress(t *testing.T) {
	tr := NewTracer(128)
	tr.SetTailSlow(time.Microsecond)
	const writers, perWriter = 8, 500

	var readers, writersWG sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sp := range tr.Spans() {
					if sp.KeepReason == "" {
						t.Error("retained span without a keep reason")
						return
					}
					if sp.TraceID != "" {
						tr.SpansByTrace(sp.TraceID)
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				tc := MintTraceContext(w%2 == 0)
				sp := Span{
					TraceID: tc.TraceIDString(),
					SpanID:  tc.SpanIDString(),
					Kind:    SpanKindRequest,
					MsgID:   int64(w*perWriter + i),
					Outcome: []string{OutcomeForwarded, OutcomeDegraded,
						OutcomeSuppressed}[i%3],
					TotalNs: int64(i%2) * 2000,
				}
				tr.RecordTail(&sp, tc.Sampled())
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	if tr.Sampled() == 0 {
		t.Fatal("stress run retained nothing")
	}
	spans := tr.Spans()
	if len(spans) == 0 || len(spans) > 128 {
		t.Fatalf("ring holds %d spans", len(spans))
	}
	for _, sp := range spans {
		if sp.KeepReason == "" {
			t.Fatalf("retained span without keep reason: %+v", sp)
		}
	}
}

func TestRecordSpanExemplarCapture(t *testing.T) {
	o := New()
	o.Tracer.SetSampleRate(1)
	o.SetExemplars(true)
	if !o.ExemplarsEnabled() {
		t.Fatal("SetExemplars(true) must stick")
	}
	tc := MintTraceContext(true)
	sp := Span{TraceID: tc.TraceIDString(), Outcome: OutcomeForwarded}
	sp.AddStage(StageKNN, 2_000_000)
	if !o.RecordSpan(&sp, true) {
		t.Fatal("head span must be retained")
	}
	counts := o.StageSeconds[StageKNN].BucketCounts()
	found := false
	for i := range counts {
		if e, ok := o.StageSeconds[StageKNN].Exemplar(i); ok {
			found = true
			if e.TraceID != tc.TraceIDString() {
				t.Fatalf("exemplar trace id = %q", e.TraceID)
			}
			if e.Value != 0.002 {
				t.Fatalf("exemplar value = %g", e.Value)
			}
		}
	}
	if !found {
		t.Fatal("no exemplar captured on the KNN histogram")
	}

	// Discarded spans must not leave exemplars.
	o2 := New()
	o2.Tracer.SetSampleRate(1)
	o2.SetExemplars(true)
	sp2 := Span{TraceID: MintTraceContext(false).TraceIDString(), Outcome: OutcomeForwarded}
	sp2.AddStage(StageBox, 3_000_000)
	if o2.RecordSpan(&sp2, false) {
		t.Fatal("boring non-head span must be discarded")
	}
	for i := 0; i < len(o2.StageSeconds[StageBox].BucketCounts()); i++ {
		if _, ok := o2.StageSeconds[StageBox].Exemplar(i); ok {
			t.Fatal("discarded span left an exemplar")
		}
	}
}

func TestExemplarsInPrometheusExposition(t *testing.T) {
	// End-to-end through the metrics registry: the bucket line carries
	// the OpenMetrics annotation only when the registry flag is on.
	o := New()
	o.Tracer.SetSampleRate(1)
	o.SetExemplars(true)
	tc := MintTraceContext(true)
	sp := Span{TraceID: tc.TraceIDString(), Outcome: OutcomeForwarded}
	sp.AddStage(StageKNN, 2_000_000)
	o.RecordSpan(&sp, true)

	reg := metrics.NewRegistry()
	reg.RegisterHistogram(MetricStageSeconds, "stage latency",
		metrics.Labels{"stage": StageKNN.String()}, o.StageSeconds[StageKNN])
	var off, on strings.Builder
	if err := reg.WritePrometheus(&off); err != nil {
		t.Fatal(err)
	}
	reg.SetExemplars(true)
	if err := reg.WritePrometheus(&on); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`# {trace_id="%s"} 0.002`, tc.TraceIDString())
	if strings.Contains(off.String(), want) {
		t.Fatal("exemplars emitted with the registry flag off")
	}
	if !strings.Contains(on.String(), want) {
		t.Fatalf("exposition lacks exemplar %q:\n%s", want, on.String())
	}
}
