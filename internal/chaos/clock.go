// The virtual clock: deterministic time for the resilience layer's
// deadlines, backoff sleeps and breaker timers. Sleeping advances
// virtual time instantly, so a retry schedule that would take seconds
// of wall time replays in microseconds — and a test can drive breaker
// open→half-open transitions by advancing the clock directly.

package chaos

import (
	"sync/atomic"
	"time"
)

// Clock is a virtual clock implementing resilience.Clock. The zero
// value starts at the Unix epoch; use NewClock to pick an origin. Safe
// for concurrent use.
type Clock struct {
	nanos atomic.Int64 // virtual nanoseconds since the Unix epoch
	skew  atomic.Int64 // observation skew added to Now, not to Sleep
}

// NewClock returns a clock whose Now starts at origin.
func NewClock(origin time.Time) *Clock {
	c := &Clock{}
	c.nanos.Store(origin.UnixNano())
	return c
}

// Now returns the current virtual time, including any skew.
func (c *Clock) Now() time.Time {
	return time.Unix(0, c.nanos.Load()+c.skew.Load())
}

// Sleep advances virtual time by d and returns immediately. Negative
// durations advance nothing.
func (c *Clock) Sleep(d time.Duration) {
	if d > 0 {
		c.nanos.Add(int64(d))
	}
}

// Advance moves virtual time forward by d without sleeping semantics —
// the test-side lever for expiring deadlines and breaker open windows.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.nanos.Add(int64(d))
	}
}

// SetSkew installs a fixed observation offset: Now reports virtual time
// plus skew (which may be negative). It models a reading clock that
// disagrees with the scheduling clock, the skew fault the deadline
// logic must tolerate without forwarding late requests.
func (c *Clock) SetSkew(d time.Duration) { c.skew.Store(int64(d)) }
