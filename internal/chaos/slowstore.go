// The slow-store fault: a wrapper delaying the spatio-temporal index
// queries on Algorithm 1's hot path (KNN witness search, box counting).
// A slow store must only make the trusted server slow — never change
// which contexts it forwards — and the invariant suite proves exactly
// that by running the same workload with and without the wrapper.

package chaos

import (
	"sync/atomic"
	"time"

	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/stindex"
)

// SlowIndex wraps a spatio-temporal index, stalling every query by
// Delay (real time — keep it small in tests). It implements
// stindex.Index and is injected through ts.Config.Index. Safe for
// concurrent use when the wrapped index is.
type SlowIndex struct {
	// Inner is the real index answering the queries.
	Inner stindex.Index
	// Delay is the injected per-query stall.
	Delay time.Duration

	queries atomic.Int64
}

// stall sleeps the injected delay and counts the query.
func (s *SlowIndex) stall() {
	s.queries.Add(1)
	if s.Delay > 0 {
		time.Sleep(s.Delay)
	}
}

// Insert implements stindex.Index (writes are not delayed: the fault
// under study is slow anonymity-set queries, not slow ingest).
func (s *SlowIndex) Insert(u phl.UserID, p geo.STPoint) { s.Inner.Insert(u, p) }

// Len implements stindex.Index.
func (s *SlowIndex) Len() int { return s.Inner.Len() }

// UsersInBox implements stindex.Index with the injected stall.
func (s *SlowIndex) UsersInBox(b geo.STBox) []phl.UserID {
	s.stall()
	return s.Inner.UsersInBox(b)
}

// CountUsersInBox implements stindex.Index with the injected stall.
func (s *SlowIndex) CountUsersInBox(b geo.STBox) int {
	s.stall()
	return s.Inner.CountUsersInBox(b)
}

// KNearestUsers implements stindex.Index with the injected stall.
func (s *SlowIndex) KNearestUsers(q geo.STPoint, k int, m geo.STMetric, exclude map[phl.UserID]bool) []stindex.UserPoint {
	s.stall()
	return s.Inner.KNearestUsers(q, k, m, exclude)
}

// Queries returns how many delayed queries the index has served.
func (s *SlowIndex) Queries() int64 { return s.queries.Load() }
