// The chaos invariant suite: the paper's privacy guarantees checked
// under injected failure across a large family of seeded fault
// schedules. Every schedule replays from its seed, so a failure
// reported here reproduces with `-run 'TestChaosSchedules/seed=N'`.
//
// The invariants, per run:
//
//  1. Box enclosure — every forwarded context contains the exact query
//     point the TS received.
//  2. Tolerance — every forwarded context respects the service's
//     coarseness constraint (within a 1e-6 relative epsilon).
//  3. Historical k-anonymity — the generalized contexts exposed under
//     one (user, pseudonym) keep anon.HistoricalLevel ≥ k.
//  4. Pseudonym hygiene — a retired pseudonym is never used again
//     within a server instance.
//  5. Delivery soundness — every request the SP received is one the TS
//     forwarded, with an identical context and pseudonym.
//  6. Fail-closed accounting — degraded suppressions and asynchronous
//     drops are conserved across counters, outbox events and the audit
//     log: nothing is lost silently.
//  7. Trace completeness — at 1/1000 head sampling the tail sampler
//     still retains a full trace for every anomalous request: degraded
//     and suppressed decisions have retained request spans (with the
//     shed event naming the degrade reason), and every audited
//     asynchronous drop has a retained delivery span carrying
//     queue-wait and per-attempt timings.
package chaos_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"histanon/internal/anon"
	"histanon/internal/chaos"
	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/obs"
	"histanon/internal/phl"
	"histanon/internal/resilience"
	"histanon/internal/stindex"
	"histanon/internal/tgran"
	"histanon/internal/ts"
	"histanon/internal/wire"
)

const tolEps = 1e-6

const commuteLBQID = `
lbqid "commute" {
    element "Home"   area [0,200]x[0,200]       time [06:30,09:00]
    element "Office" area [1800,2200]x[0,200]   time [07:00,11:00]
    element "Office" area [1800,2200]x[0,200]   time [15:30,19:00]
    element "Home"   area [0,200]x[0,200]       time [16:00,21:00]
    recurrence 3.Weekdays * 2.Weeks
}`

func pt(x, y float64, t int64) geo.STPoint {
	return geo.STPoint{P: geo.Point{X: x, Y: y}, T: t}
}

func at(day, sod int64) int64 { return day*tgran.Day + sod }

// schedule is one seeded fault configuration.
type schedule struct {
	seed       uint64
	faults     chaos.Faults
	queueSize  int
	workers    int
	deadline   time.Duration
	breaker    resilience.BreakerConfig
	slowIndex  bool
	concurrent bool
	restartMid bool
}

// mkSchedule derives a fault schedule from its seed — a pure function,
// so every run replays.
func mkSchedule(seed uint64) schedule {
	s := schedule{
		seed:      seed,
		queueSize: []int{4, 16, 64}[seed%3],
		workers:   1 + int(seed%3),
		deadline:  5 * time.Second,
		breaker: resilience.BreakerConfig{
			FailureThreshold: 3,
			OpenFor:          10 * time.Second,
		},
		slowIndex:  seed%7 == 0,
		concurrent: seed%2 == 0,
		restartMid: seed%4 == 1,
	}
	s.faults = chaos.Faults{
		Seed:   seed,
		PError: []float64{0, 0.1, 0.3, 0.6}[seed%4],
	}
	if seed%3 == 0 {
		s.faults.Outages = [][2]int64{{5, 25}}
	}
	if seed%5 == 0 {
		s.faults.PLatency = 0.5
		s.faults.Latency = 2 * time.Second
	}
	return s
}

// decisionRecord pairs a decision with the request that produced it.
type decisionRecord struct {
	user  phl.UserID
	point geo.STPoint
	dec   ts.Decision
}

// rotationRecord is one observed pseudonym rotation.
type rotationRecord struct {
	user     phl.UserID
	old, new wire.Pseudonym
}

// recorder implements ts.Notifier, collecting rotations.
type recorder struct {
	mu   sync.Mutex
	rots []rotationRecord
}

func (r *recorder) AtRisk(u phl.UserID, reason string) {}

func (r *recorder) Unlinked(u phl.UserID, old, new wire.Pseudonym) {
	r.mu.Lock()
	r.rots = append(r.rots, rotationRecord{u, old, new})
	r.mu.Unlock()
}

// run is one complete chaos run's observable state.
type run struct {
	srv       *ts.Server
	outbox    *resilience.Outbox
	spx       *chaos.SP
	clock     *chaos.Clock
	notes     *recorder
	auditBuf  *bytes.Buffer
	audit     *obs.AuditLog
	decisions []decisionRecord
	decMu     sync.Mutex
}

// newRun assembles a trusted server behind a chaos SP for the schedule.
// When restore is non-nil the PHL is rebuilt from that snapshot first —
// the crash-recovery path.
func newRun(t *testing.T, sc schedule, restore *bytes.Buffer) *run {
	t.Helper()
	r := &run{
		clock:    chaos.NewClock(time.Unix(0, 0)),
		notes:    &recorder{},
		auditBuf: &bytes.Buffer{},
	}
	r.audit = obs.NewAuditLog(r.auditBuf)
	r.spx = chaos.NewSP(sc.faults, r.clock)
	r.outbox = resilience.NewOutbox(r.spx, resilience.Options{
		QueueSize:   sc.queueSize,
		Workers:     sc.workers,
		Deadline:    sc.deadline,
		MaxAttempts: 3,
		Breaker:     sc.breaker,
		Seed:        int64(sc.seed) | 1,
		Clock:       r.clock,
		Audit:       r.audit.Log,
	})
	cfg := ts.Config{
		DefaultPolicy: ts.Policy{K: 3},
		Services: map[string]ts.ServiceSpec{
			"navigation": {Tolerance: generalize.Tolerance{
				MaxWidth: 4000, MaxHeight: 4000, MaxDuration: 4 * tgran.Hour,
			}},
		},
	}
	if sc.slowIndex {
		cfg.Index = &chaos.SlowIndex{
			Inner: stindex.NewGrid(500, 900),
			Delay: 50 * time.Microsecond,
		}
	}
	r.srv = ts.New(cfg, r.outbox)
	r.srv.SetNotifier(r.notes)
	r.srv.Obs.SetAudit(r.audit)
	// Tracing at 1/1000 head sampling: invariant 7 relies on the tail
	// sampler, not head luck, to retain every anomalous trace.
	r.srv.Obs.Tracer.SetSampleRate(0.001)
	r.outbox.SetSpanSink(r.srv.Obs)
	if restore != nil {
		if err := r.srv.RestorePHL(bytes.NewReader(restore.Bytes())); err != nil {
			t.Fatalf("RestorePHL: %v", err)
		}
	}
	if err := r.srv.AddLBQIDSpec(0, commuteLBQID); err != nil {
		t.Fatal(err)
	}
	return r
}

// record runs one request and collects the decision.
func (r *run) record(u phl.UserID, p geo.STPoint, service string) {
	dec := r.srv.Request(u, p, service, nil)
	r.decMu.Lock()
	r.decisions = append(r.decisions, decisionRecord{u, p, dec})
	r.decMu.Unlock()
}

// seedCrowd records commuting neighbors (users 1..n-1) so anonymity
// sets are non-trivial; the issuer is user 0.
func seedCrowd(s *ts.Server, n int, fromDay, toDay int64) {
	for day := fromDay; day < toDay; day++ {
		if day%7 >= 5 {
			continue
		}
		for u := 1; u < n; u++ {
			dx, dy := float64(u*7), float64(u*5)
			s.RecordLocation(phl.UserID(u), pt(50+dx, 50+dy, at(day, 7*tgran.Hour+int64(u)*30)))
			s.RecordLocation(phl.UserID(u), pt(2000+dx, 50+dy, at(day, 8*tgran.Hour+int64(u)*30)))
			s.RecordLocation(phl.UserID(u), pt(2000+dx, 50+dy, at(day, 17*tgran.Hour+int64(u)*30)))
			s.RecordLocation(phl.UserID(u), pt(50+dx, 50+dy, at(day, 18*tgran.Hour+int64(u)*30)))
		}
	}
}

// issuerDay issues user 0's four commute requests for one day.
func (r *run) issuerDay(day int64) {
	for _, p := range []geo.STPoint{
		pt(50, 50, at(day, 7*tgran.Hour+600)),
		pt(2000, 50, at(day, 8*tgran.Hour+600)),
		pt(2000, 50, at(day, 17*tgran.Hour)),
		pt(50, 50, at(day, 18*tgran.Hour)),
	} {
		r.record(0, p, "navigation")
	}
}

// workload drives days [fromDay,toDay) of traffic: the issuer's commute
// plus the crowd's plain weather requests (concurrently when the
// schedule says so).
func (r *run) workload(sc schedule, fromDay, toDay int64) {
	seedCrowd(r.srv, 8, fromDay, toDay)
	for day := fromDay; day < toDay; day++ {
		if day%7 >= 5 {
			continue
		}
		if sc.concurrent {
			var wg sync.WaitGroup
			wg.Add(4)
			for u := 1; u <= 4; u++ {
				u := u
				go func() {
					defer wg.Done()
					r.record(phl.UserID(u), pt(500+float64(u), 500, at(day, 12*tgran.Hour+int64(u))), "weather")
				}()
			}
			r.issuerDay(day)
			wg.Wait()
		} else {
			r.issuerDay(day)
			for u := 1; u <= 2; u++ {
				r.record(phl.UserID(u), pt(500+float64(u), 500, at(day, 12*tgran.Hour+int64(u))), "weather")
			}
		}
	}
}

// finish drains the outbox and flushes the audit log.
func (r *run) finish(t *testing.T) {
	t.Helper()
	r.outbox.Close()
	if err := r.audit.Flush(); err != nil {
		t.Fatalf("audit flush: %v", err)
	}
}

// checkInvariants asserts every privacy and accounting invariant over a
// finished run.
func checkInvariants(t *testing.T, r *run, k int) {
	t.Helper()
	store := r.srv.Store()
	tolByService := map[string]generalize.Tolerance{
		"navigation": {MaxWidth: 4000, MaxHeight: 4000, MaxDuration: 4 * tgran.Hour},
	}

	forwardedByID := map[wire.MsgID]*wire.Request{}
	groups := map[phl.UserID]map[wire.Pseudonym][]geo.STBox{}
	degraded := 0
	for _, d := range r.decisions {
		if d.dec.Degraded {
			degraded++
			if !d.dec.Suppressed {
				t.Fatalf("degraded decision not suppressed: %+v", d.dec)
			}
			if d.dec.Forwarded || d.dec.Request != nil {
				t.Fatalf("degraded decision carries a forward: %+v", d.dec)
			}
			if d.dec.DegradedReason == "" {
				t.Fatalf("degraded decision lacks a reason: %+v", d.dec)
			}
		}
		if !d.dec.Forwarded {
			continue
		}
		req := d.dec.Request
		if req == nil {
			t.Fatalf("forwarded decision without request: %+v", d.dec)
		}
		forwardedByID[req.ID] = req

		// Invariant 1: box enclosure.
		if !req.Context.Contains(d.point) {
			t.Fatalf("forwarded context %v excludes the query point %v", req.Context, d.point)
		}
		// Invariant 2: tolerance.
		if tol, ok := tolByService[req.Service]; ok {
			b := req.Context
			if tol.MaxWidth > 0 && b.Area.Width() > tol.MaxWidth*(1+tolEps) {
				t.Fatalf("context width %v exceeds tolerance %v", b.Area.Width(), tol.MaxWidth)
			}
			if tol.MaxHeight > 0 && b.Area.Height() > tol.MaxHeight*(1+tolEps) {
				t.Fatalf("context height %v exceeds tolerance %v", b.Area.Height(), tol.MaxHeight)
			}
			if tol.MaxDuration > 0 && float64(b.Time.Duration()) > float64(tol.MaxDuration)*(1+tolEps) {
				t.Fatalf("context duration %v exceeds tolerance %v", b.Time.Duration(), tol.MaxDuration)
			}
		}
		if d.dec.Generalized && d.dec.HKAnonymity {
			m := groups[d.user]
			if m == nil {
				m = map[wire.Pseudonym][]geo.STBox{}
				groups[d.user] = m
			}
			m[req.Pseudonym] = append(m[req.Pseudonym], req.Context)
		}
	}

	// Invariant 3: historical k-anonymity per (user, pseudonym).
	for u, byPseud := range groups {
		for pseud, boxes := range byPseud {
			if lvl := anon.HistoricalLevel(store, u, boxes); lvl < k {
				t.Fatalf("user %d pseudonym %s: HistoricalLevel = %d < %d over %d boxes",
					u, pseud, lvl, k, len(boxes))
			}
		}
	}

	// Invariant 4: pseudonym hygiene. A rotation retires its old
	// pseudonym; nothing may use or re-mint it afterwards. The
	// per-user pseudonym sequence over forwarded requests must never
	// revisit an abandoned value.
	seen := map[phl.UserID]map[wire.Pseudonym]bool{}
	current := map[phl.UserID]wire.Pseudonym{}
	for _, d := range r.decisions {
		if !d.dec.Forwarded {
			continue
		}
		p := d.dec.Request.Pseudonym
		if current[d.user] == p {
			continue
		}
		if seen[d.user] == nil {
			seen[d.user] = map[wire.Pseudonym]bool{}
		}
		if seen[d.user][p] {
			t.Fatalf("user %d reused retired pseudonym %s", d.user, p)
		}
		seen[d.user][p] = true
		current[d.user] = p
	}
	r.notes.mu.Lock()
	rots := append([]rotationRecord(nil), r.notes.rots...)
	r.notes.mu.Unlock()
	news := map[phl.UserID]map[wire.Pseudonym]bool{}
	for _, rot := range rots {
		if rot.old == rot.new {
			t.Fatalf("rotation kept the pseudonym: %+v", rot)
		}
		if news[rot.user] == nil {
			news[rot.user] = map[wire.Pseudonym]bool{}
		}
		if news[rot.user][rot.new] {
			t.Fatalf("user %d re-minted pseudonym %s", rot.user, rot.new)
		}
		news[rot.user][rot.new] = true
	}

	// Invariant 5: SP ⊆ TS with identical contexts.
	for _, got := range r.spx.Delivered() {
		want := forwardedByID[got.ID]
		if want == nil {
			t.Fatalf("SP received msgid %d the TS never forwarded", got.ID)
		}
		if got.Context != want.Context || got.Pseudonym != want.Pseudonym || got.Service != want.Service {
			t.Fatalf("SP copy diverges from the forwarded form:\n got %+v\nwant %+v", got, want)
		}
	}

	// Invariant 6: fail-closed accounting. Synchronous refusals match
	// the degraded decisions; admitted requests are conserved across
	// delivered + dropped; every asynchronous drop is audited.
	ev := r.outbox.Events
	refused := ev.Get(resilience.EventShedQueueFull) +
		ev.Get(resilience.EventShedBreakerOpen) +
		ev.Get(resilience.EventDroppedClosed)
	if int64(degraded) != refused {
		t.Fatalf("degraded decisions = %d, outbox refusals = %d", degraded, refused)
	}
	if got := r.srv.Counters.Get("degraded"); got != int64(degraded) {
		t.Fatalf("degraded counter = %d, decisions = %d", got, degraded)
	}
	enq := ev.Get(resilience.EventEnqueued)
	delivered := ev.Get(resilience.EventDelivered)
	dropped := ev.Get(resilience.EventDropped)
	if enq != delivered+dropped {
		t.Fatalf("conservation violated: enqueued=%d delivered=%d dropped=%d", enq, delivered, dropped)
	}
	if int64(len(r.spx.Delivered())) != delivered {
		t.Fatalf("SP recorded %d deliveries, outbox counted %d", len(r.spx.Delivered()), delivered)
	}
	events, err := obs.ReadEvents(bytes.NewReader(r.auditBuf.Bytes()))
	if err != nil {
		t.Fatalf("audit parse: %v", err)
	}
	var auditDrops, auditDegraded int64
	for _, e := range events {
		switch {
		case e.Kind == obs.KindDelivery:
			auditDrops++
			if e.Outcome != obs.OutcomeDropped || e.Reason == "" {
				t.Fatalf("malformed delivery audit event: %+v", e)
			}
		case e.Kind == obs.KindRequest && e.Outcome == obs.OutcomeDegraded:
			auditDegraded++
			if e.Reason == "" {
				t.Fatalf("degraded audit event lacks a reason: %+v", e)
			}
		}
	}
	if auditDrops != dropped {
		t.Fatalf("audit has %d delivery drops, outbox counted %d", auditDrops, dropped)
	}
	if auditDegraded != int64(degraded) {
		t.Fatalf("audit has %d degraded requests, decisions = %d", auditDegraded, degraded)
	}

	// Invariant 7: trace completeness. Every anomalous outcome must be
	// explorable after the fact via its trace id even at 1/1000 head
	// sampling — the tail sampler's whole point.
	reqSpans := map[string]obs.Span{}
	delSpans := map[string][]obs.Span{}
	for _, sp := range r.srv.Obs.Tracer.Spans() {
		switch sp.Kind {
		case obs.SpanKindRequest:
			reqSpans[sp.TraceID] = sp
		case obs.SpanKindDelivery:
			delSpans[sp.TraceID] = append(delSpans[sp.TraceID], sp)
		}
	}
	for _, d := range r.decisions {
		if !d.dec.Degraded && !d.dec.Suppressed {
			continue
		}
		tid := d.dec.TraceID()
		if tid == "" {
			t.Fatalf("anomalous decision lacks a trace id: %+v", d.dec)
		}
		sp, ok := reqSpans[tid]
		if !ok {
			t.Fatalf("no retained request span for anomalous trace %s (%+v)",
				tid, d.dec)
		}
		if sp.KeepReason == "" {
			t.Fatalf("retained span lacks a keep reason: %+v", sp)
		}
		if d.dec.Degraded {
			found := false
			for _, e := range sp.Events {
				if e.Name == "shed_"+d.dec.DegradedReason {
					found = true
				}
			}
			if !found {
				t.Fatalf("degraded trace %s lacks the shed_%s event: %+v",
					tid, d.dec.DegradedReason, sp.Events)
			}
		}
	}
	for _, e := range events {
		if e.Kind != obs.KindDelivery {
			continue
		}
		if e.TraceID == "" {
			t.Fatalf("delivery audit event lacks a trace id: %+v", e)
		}
		var del *obs.Span
		for i, sp := range delSpans[e.TraceID] {
			if sp.Outcome == obs.OutcomeDropped && sp.MsgID == int64(e.MsgID) {
				del = &delSpans[e.TraceID][i]
			}
		}
		if del == nil {
			t.Fatalf("no retained delivery span for dropped trace %s (%+v)", e.TraceID, e)
		}
		if del.Reason != e.Reason {
			t.Fatalf("delivery span reason %q diverges from audit reason %q", del.Reason, e.Reason)
		}
		if len(del.AttemptNs) != e.Attempts {
			t.Fatalf("delivery span recorded %d attempt timings, audit counted %d",
				len(del.AttemptNs), e.Attempts)
		}
		if del.QueueNs < 0 || del.TotalNs < del.QueueNs {
			t.Fatalf("delivery span timings inconsistent: queue=%d total=%d",
				del.QueueNs, del.TotalNs)
		}
		if del.ParentSpanID == "" {
			t.Fatalf("delivery span not linked to its request span: %+v", *del)
		}
	}
}

// TestChaosSchedules runs the invariant suite across 128 seeded fault
// schedules — SP error rates from 0 to 60%, hard outages, virtual-time
// latency spikes, tiny queues, slow stores, concurrent load, and
// mid-run snapshot/restore restarts.
func TestChaosSchedules(t *testing.T) {
	const seeds = 128
	for seed := uint64(0); seed < seeds; seed++ {
		sc := mkSchedule(seed)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			if !sc.restartMid {
				r := newRun(t, sc, nil)
				r.workload(sc, 0, 3)
				r.finish(t)
				checkInvariants(t, r, 3)
				return
			}
			// Crash-recovery path: run half the workload, snapshot,
			// "crash", restore into a fresh server, run the rest. Both
			// instances must satisfy every invariant on their own.
			r1 := newRun(t, sc, nil)
			r1.workload(sc, 0, 2)
			var snap bytes.Buffer
			if err := r1.srv.WritePHLSnapshot(&snap); err != nil {
				t.Fatalf("WritePHLSnapshot: %v", err)
			}
			r1.finish(t)
			checkInvariants(t, r1, 3)

			r2 := newRun(t, sc, &snap)
			if r2.srv.Store().NumSamples() != r1.srv.Store().NumSamples() {
				t.Fatalf("restore lost samples: %d != %d",
					r2.srv.Store().NumSamples(), r1.srv.Store().NumSamples())
			}
			r2.workload(sc, 2, 4)
			r2.finish(t)
			checkInvariants(t, r2, 3)
		})
	}
}

// TestChaosHardOutageTripsBreakerFailClosed pins the headline behavior:
// a dead SP opens the breaker, subsequent requests degrade to
// suppression (never a less-protected forward), and after the open
// window a recovered SP serves again.
func TestChaosHardOutageTripsBreakerFailClosed(t *testing.T) {
	clock := chaos.NewClock(time.Unix(0, 0))
	spx := chaos.NewSP(chaos.Faults{Seed: 7, Outages: [][2]int64{{0, 50}}}, clock)
	outbox := resilience.NewOutbox(spx, resilience.Options{
		QueueSize: 4, Workers: 1, MaxAttempts: 2,
		Deadline: 30 * time.Second,
		Breaker:  resilience.BreakerConfig{FailureThreshold: 2, OpenFor: 5 * time.Second},
		Clock:    clock, Seed: 7,
	})
	defer outbox.Close()
	srv := ts.New(ts.Config{DefaultPolicy: ts.Policy{K: 2}}, outbox)

	// Drive requests until the breaker opens; with every attempt failing
	// the threshold trips after the first queued request's retries.
	sawDegraded := false
	for i := 0; i < 40 && !sawDegraded; i++ {
		dec := srv.Request(1, pt(10, 10, int64(1000+i)), "weather", nil)
		if dec.Degraded {
			sawDegraded = true
			if dec.DegradedReason != "breaker_open" && dec.DegradedReason != "queue_full" {
				t.Fatalf("unexpected degrade reason %q", dec.DegradedReason)
			}
		}
	}
	if !sawDegraded {
		t.Fatal("a hard SP outage never degraded a request")
	}
	if r := srv.Counters.Get("degraded"); r == 0 {
		t.Fatal("degraded counter not visible")
	}

	// Outage ends at attempt 50; force it past and reopen the window.
	for spx.Attempts() < 50 {
		spx.Deliver(&wire.Request{ID: wire.MsgID(1000 + spx.Attempts()), Service: "drain"})
	}
	clock.Advance(6 * time.Second) // past OpenFor: breaker half-opens
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadline) && !recovered {
		dec := srv.Request(1, pt(10, 10, 5000), "weather", nil)
		if dec.Forwarded && !dec.Degraded {
			recovered = true
		}
		time.Sleep(time.Millisecond)
	}
	if !recovered {
		t.Fatal("breaker never recovered after the outage window")
	}
}

// TestChaosLatencyExpiresQueuedDeadlines pins the deadline logic: an SP
// stall that advances virtual time past the queued requests' budgets
// drops them (fail closed) instead of delivering them late, and the
// drops are conserved and visible.
func TestChaosLatencyExpiresQueuedDeadlines(t *testing.T) {
	clock := chaos.NewClock(time.Unix(0, 0))
	// Every attempt stalls 10 virtual seconds against a 2s budget: the
	// first queued request's attempt (begun in time) is allowed to
	// finish, but everything queued behind it expires unserved.
	spx := chaos.NewSP(chaos.Faults{Seed: 3, PLatency: 1, Latency: 10 * time.Second}, clock)
	outbox := resilience.NewOutbox(spx, resilience.Options{
		QueueSize: 8, Workers: 1, MaxAttempts: 1,
		Deadline: 2 * time.Second,
		Clock:    clock, Seed: 3,
	})
	srv := ts.New(ts.Config{DefaultPolicy: ts.Policy{K: 2}}, outbox)
	for i := 0; i < 6; i++ {
		srv.Request(1, pt(10, 10, int64(1000+i)), "weather", nil)
	}
	outbox.Close()
	ev := outbox.Events
	if ev.Get(resilience.EventDroppedDeadline) == 0 {
		t.Fatal("no queued request expired despite the 10s stall")
	}
	if ev.Get(resilience.EventEnqueued) !=
		ev.Get(resilience.EventDropped)+ev.Get(resilience.EventDelivered) {
		t.Fatal("conservation violated under latency")
	}
}

// TestChaosClockSkewAdvancesBreakerWindow pins the skew hook: a reading
// clock that jumps ahead moves an open breaker into its half-open
// probe window, exactly as real clock drift would.
func TestChaosClockSkewAdvancesBreakerWindow(t *testing.T) {
	clock := chaos.NewClock(time.Unix(0, 0))
	br := resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: 1, OpenFor: 5 * time.Second,
	}, clock.Now)
	br.Failure()
	if br.State() != resilience.BreakerOpen {
		t.Fatalf("state after failure = %v", br.State())
	}
	clock.SetSkew(4 * time.Second)
	if br.State() != resilience.BreakerOpen {
		t.Fatalf("state at +4s skew = %v, want still open", br.State())
	}
	clock.SetSkew(6 * time.Second)
	if br.State() != resilience.BreakerHalfOpen {
		t.Fatalf("state after +6s skew = %v, want half-open", br.State())
	}
}

// TestChaosSlowStorePreservesDecisions runs the same seeded workload
// with and without the slow-store fault and requires identical forward
// decisions: latency may slow Algorithm 1 but must never change it.
func TestChaosSlowStorePreservesDecisions(t *testing.T) {
	runOnce := func(slow bool) []decisionRecord {
		sc := mkSchedule(42)
		sc.faults = chaos.Faults{} // healthy SP: isolate the store fault
		sc.queueSize = 1024        // no shedding: decisions must be a pure function of the workload
		sc.concurrent = false
		sc.slowIndex = slow
		sc.restartMid = false
		r := newRun(t, sc, nil)
		r.workload(sc, 0, 2)
		r.finish(t)
		return r.decisions
	}
	fast := runOnce(false)
	slow := runOnce(true)
	if len(fast) != len(slow) {
		t.Fatalf("decision counts diverge: %d vs %d", len(fast), len(slow))
	}
	for i := range fast {
		f, s := fast[i], slow[i]
		if f.dec.Forwarded != s.dec.Forwarded || f.dec.Generalized != s.dec.Generalized ||
			f.dec.HKAnonymity != s.dec.HKAnonymity || f.dec.Suppressed != s.dec.Suppressed {
			t.Fatalf("decision %d diverges under slow store:\n fast %+v\n slow %+v", i, f.dec, s.dec)
		}
		if f.dec.Forwarded && f.dec.Request.Context != s.dec.Request.Context {
			t.Fatalf("context %d diverges under slow store: %v vs %v",
				i, f.dec.Request.Context, s.dec.Request.Context)
		}
	}
}

// TestChaosDeterministicReplay pins seeding: a fault schedule is a pure
// function of its seed, so the same sequence of delivery attempts sees
// the same sequence of outcomes on every run.
func TestChaosDeterministicReplay(t *testing.T) {
	outcomes := func(seed uint64) []bool {
		spx := chaos.NewSP(chaos.Faults{
			Seed: seed, PError: 0.3, Outages: [][2]int64{{40, 60}},
		}, nil)
		out := make([]bool, 200)
		for i := range out {
			out[i] = spx.Deliver(&wire.Request{ID: wire.MsgID(i), Service: "s"}) == nil
		}
		return out
	}
	a, b := outcomes(17), outcomes(17)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d outcome not deterministic", i)
		}
		if !a[i] {
			fails++
		}
	}
	// The outage window alone forces 20 failures; pError adds more.
	if fails < 20 {
		t.Fatalf("schedule injected only %d failures", fails)
	}
	// A different seed must produce a different schedule.
	c := outcomes(18)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 17 and 18 produced identical schedules")
	}
}
