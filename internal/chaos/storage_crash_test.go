// Crash-recovery chaos: seeded kill-at-any-record schedules for the
// durable tiered PHL store. Each schedule drives a trusted server on a
// TieredStore over a crash-simulating MemFS, kills the "machine" at a
// seed-chosen operation (tearing and corrupting the unsynced tail),
// recovers, and proves:
//
//  1. Zero acked-update loss — every location update whose Record call
//     returned with the store healthy is present after recovery, under
//     the batch and always fsync policies.
//  2. Recovery idempotence — recovering the same surviving state twice
//     yields byte-identical histories.
//  3. Historical k-anonymity across the crash — requests served by the
//     recovered instance still achieve HistoricalLevel ≥ k, verified
//     against the recovered PHL itself.
//  4. Pseudonym hygiene — within each server instance, no pseudonym
//     ever maps to two users.
//
// Every schedule is a pure function of its seed; a failure replays
// with -run 'TestStorageCrashSchedules/seed=N'.
package chaos_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"histanon/internal/anon"
	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/storage"
	"histanon/internal/ts"
	"histanon/internal/wire"
)

// crashSchedule is one seeded crash configuration.
type crashSchedule struct {
	seed       uint64
	sync       storage.SyncPolicy
	snapEvery  int
	hotWindow  int64
	segBytes   int64
	users      int
	ops        int
	killAt     int  // crash after this many operations
	concurrent bool // drive records from several goroutines
	corruptTip bool // the torn tail's last byte is corrupted
}

func mkCrashSchedule(seed uint64) crashSchedule {
	rng := rand.New(rand.NewSource(int64(seed)))
	s := crashSchedule{
		seed:       seed,
		sync:       []storage.SyncPolicy{storage.SyncBatch, storage.SyncBatch, storage.SyncAlways, storage.SyncNone}[seed%4],
		snapEvery:  []int{16, 48, 128}[seed%3],
		hotWindow:  []int64{30, 120, 1 << 40}[seed%3],
		segBytes:   []int64{512, 4096, 1 << 20}[(seed/3)%3],
		users:      5 + rng.Intn(20),
		ops:        200 + rng.Intn(800),
		concurrent: seed%5 == 3,
		corruptTip: seed%2 == 0,
	}
	s.killAt = 1 + rng.Intn(s.ops)
	return s
}

func (sc crashSchedule) options(fsys storage.FS) storage.Options {
	return storage.Options{
		Dir:              "store",
		FS:               fsys,
		Sync:             sc.sync,
		SegmentBytes:     sc.segBytes,
		SnapshotEvery:    sc.snapEvery,
		HotWindow:        sc.hotWindow,
		MaxDeltas:        3,
		ColdCacheEntries: 8,
	}
}

// ackedSet tracks acknowledged updates (Record returned, store healthy).
type ackedSet struct {
	mu      sync.Mutex
	samples map[phl.UserID][]geo.STPoint
	count   int
}

func newAckedSet() *ackedSet {
	return &ackedSet{samples: make(map[phl.UserID][]geo.STPoint)}
}

func (a *ackedSet) add(u phl.UserID, p geo.STPoint) {
	a.mu.Lock()
	a.samples[u] = append(a.samples[u], p)
	a.count++
	a.mu.Unlock()
}

// missingFrom returns the first acked sample the store lost, if any.
func (a *ackedSet) missingFrom(st phl.Storer) (phl.UserID, geo.STPoint, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for u, pts := range a.samples {
		h := st.History(u)
		have := make(map[geo.STPoint]int)
		if h != nil {
			for _, p := range h.Points() {
				have[p]++
			}
		}
		for _, p := range pts {
			if have[p] == 0 {
				return u, p, true
			}
			have[p]--
		}
	}
	return 0, geo.STPoint{}, false
}

// crashPoint generates the deterministic i-th sample of a schedule.
func crashPoint(rng *rand.Rand, t *int64) geo.STPoint {
	*t += int64(rng.Intn(5))
	return geo.STPoint{
		P: geo.Point{X: rng.Float64() * 2e3, Y: rng.Float64() * 2e3},
		T: *t,
	}
}

// fingerprintStore renders every user history into a comparable string.
func fingerprintStore(st phl.Storer) string {
	var out []byte
	for _, u := range st.Users() {
		out = fmt.Appendf(out, "u%d:", u)
		for _, p := range st.History(u).Points() {
			out = fmt.Appendf(out, "(%x,%x,%d)", p.P.X, p.P.Y, p.T)
		}
		out = append(out, '\n')
	}
	return string(out)
}

func TestStorageCrashSchedules(t *testing.T) {
	const seeds = 72
	for seed := uint64(0); seed < seeds; seed++ {
		sc := mkCrashSchedule(seed)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runCrashSchedule(t, sc)
		})
	}
}

func runCrashSchedule(t *testing.T, sc crashSchedule) {
	fsys := storage.NewMemFS()
	st, _, err := storage.Open(sc.options(fsys))
	if err != nil {
		t.Fatalf("initial open: %v", err)
	}
	srv := ts.New(ts.Config{DefaultPolicy: ts.Policy{K: 2}, Store: st},
		ts.OutboxFunc(func(*wire.Request) {}))

	acked := newAckedSet()
	pseudonyms := make(map[wire.Pseudonym]phl.UserID)
	var pseudoMu sync.Mutex
	checkPseudonym := func(dec ts.Decision, u phl.UserID) {
		if dec.Request == nil {
			return
		}
		pseudoMu.Lock()
		defer pseudoMu.Unlock()
		if owner, seen := pseudonyms[dec.Request.Pseudonym]; seen && owner != u {
			t.Errorf("pseudonym %v reused across users %d and %d", dec.Request.Pseudonym, owner, u)
		}
		pseudonyms[dec.Request.Pseudonym] = u
	}

	// Drive killAt operations; every fifth is a service request (which
	// also records the location), the rest are plain location updates.
	driveOne := func(rng *rand.Rand, tm *int64, i int) {
		u := phl.UserID(rng.Intn(sc.users))
		p := crashPoint(rng, tm)
		if i%5 == 4 {
			dec := srv.Request(u, p, "svc", nil)
			checkPseudonym(dec, u)
		} else {
			srv.RecordLocation(u, p)
		}
		if !st.StorageFailed() && sc.sync != storage.SyncNone {
			acked.add(u, p)
		}
	}
	if sc.concurrent {
		// Concurrent writers: each drives its own deterministic stream;
		// ack tracking happens after Record returns, so every tracked
		// sample was acknowledged before the crash.
		var wg sync.WaitGroup
		workers := 4
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(sc.seed)*100 + int64(w)))
				tm := int64(0)
				for i := 0; i < sc.killAt/workers; i++ {
					driveOne(rng, &tm, i)
				}
			}(w)
		}
		wg.Wait()
	} else {
		rng := rand.New(rand.NewSource(int64(sc.seed) * 100))
		tm := int64(0)
		for i := 0; i < sc.killAt; i++ {
			driveOne(rng, &tm, i)
		}
	}

	// Kill the machine: unsynced bytes tear (keeping a seeded prefix,
	// optionally corrupting the final surviving byte), undurable
	// directory entries vanish.
	tornRng := rand.New(rand.NewSource(int64(sc.seed) + 7))
	fsys.TornWriter = func(path string, unsynced int) (int, bool) {
		return tornRng.Intn(unsynced + 1), sc.corruptTip
	}
	fsys.Crash()
	fsys.TornWriter = nil

	// Recovery must succeed: a crash leaves torn tails, never the kind
	// of interior damage recovery refuses.
	st2, info, err := storage.Open(sc.options(fsys))
	if err != nil {
		t.Fatalf("recovery refused after crash: %v", err)
	}

	// Invariant 1: zero acked-update loss.
	if u, p, lost := acked.missingFrom(st2); lost {
		t.Fatalf("acked update lost: user %d sample %+v (recovery %+v)", u, p, info)
	}

	// Invariant 2: recovery idempotence. Close the first recovered
	// instance (its checkpoint may compact), then two further
	// recoveries from the resulting state must agree exactly.
	fp1 := fingerprintStore(st2)
	if err := st2.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
	st3, _, err := storage.Open(sc.options(fsys))
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if fp3 := fingerprintStore(st3); fp3 != fp1 {
		t.Fatalf("recovery not idempotent:\nfirst:\n%s\nsecond:\n%s", fp1, fp3)
	}

	// Invariant 3: historical k-anonymity on the recovered instance.
	// Serve requests from a fresh server on the recovered store; every
	// forwarded generalized context must achieve HistoricalLevel ≥ k
	// against the recovered PHL.
	const k = 2
	srv2 := ts.New(ts.Config{DefaultPolicy: ts.Policy{K: k}, Store: st3},
		ts.OutboxFunc(func(*wire.Request) {}))
	rng := rand.New(rand.NewSource(int64(sc.seed) + 13))
	tm := int64(1 << 20)
	pseudonyms2 := make(map[wire.Pseudonym]phl.UserID)
	for i := 0; i < 40; i++ {
		u := phl.UserID(rng.Intn(sc.users))
		p := crashPoint(rng, &tm)
		dec := srv2.Request(u, p, "svc", nil)
		if dec.Request != nil {
			if owner, seen := pseudonyms2[dec.Request.Pseudonym]; seen && owner != u {
				t.Fatalf("post-recovery pseudonym %v reused across users %d and %d",
					dec.Request.Pseudonym, owner, u)
			}
			pseudonyms2[dec.Request.Pseudonym] = u
		}
		if dec.Forwarded && dec.Generalized && dec.HKAnonymity {
			boxes := []geo.STBox{dec.Request.Context}
			if lvl := anon.HistoricalLevel(st3, u, boxes); lvl < k {
				t.Fatalf("forwarded context achieves HistoricalLevel %d < %d after recovery", lvl, k)
			}
		}
	}
	if err := st3.Close(); err != nil {
		t.Fatalf("final close: %v", err)
	}
}

// A crash immediately after Open (empty store) must recover to an
// empty, healthy store.
func TestStorageCrashAtBirth(t *testing.T) {
	fsys := storage.NewMemFS()
	st, _, err := storage.Open(storage.Options{Dir: "store", FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	fsys.Crash()
	st2, info, err := storage.Open(storage.Options{Dir: "store", FS: fsys})
	if err != nil {
		t.Fatalf("recovery of empty store: %v", err)
	}
	if st2.NumSamples() != 0 || st2.NumUsers() != 0 {
		t.Fatalf("empty store recovered %d samples", st2.NumSamples())
	}
	if info.Replayed != 0 {
		t.Fatalf("empty store replayed %d records", info.Replayed)
	}
	st2.Close()
}

// Repeated crash/recover cycles with work between them: acked updates
// accumulate across generations and none is ever lost.
func TestStorageCrashGenerations(t *testing.T) {
	fsys := storage.NewMemFS()
	acked := newAckedSet()
	tm := int64(0)
	rng := rand.New(rand.NewSource(99))
	opts := storage.Options{
		Dir: "store", FS: fsys,
		SnapshotEvery: 32, HotWindow: 60, MaxDeltas: 2, ColdCacheEntries: 8,
	}
	for gen := 0; gen < 6; gen++ {
		st, _, err := storage.Open(opts)
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		if u, p, lost := acked.missingFrom(st); lost {
			t.Fatalf("generation %d lost acked update: user %d %+v", gen, u, p)
		}
		for i := 0; i < 150; i++ {
			u := phl.UserID(rng.Intn(10))
			p := crashPoint(rng, &tm)
			st.Record(u, p)
			if !st.StorageFailed() {
				acked.add(u, p)
			}
		}
		fsys.TornWriter = func(path string, unsynced int) (int, bool) {
			return rng.Intn(unsynced + 1), gen%2 == 0
		}
		fsys.Crash()
		fsys.TornWriter = nil
	}
	st, _, err := storage.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if u, p, lost := acked.missingFrom(st); lost {
		t.Fatalf("final recovery lost acked update: user %d %+v", u, p)
	}
	if acked.count == 0 {
		t.Fatal("no updates were acked; test is vacuous")
	}
	st.Close()
}
