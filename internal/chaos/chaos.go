// Package chaos injects deterministic faults into the trusted server's
// dependencies so the privacy invariants can be proven to hold under
// failure, not just in the happy path. The paper's guarantee — an SP
// never sees a context weaker than Def. 8 allows — must survive SP
// outages, slow stores and overload; internal/resilience provides the
// fail-closed machinery and this package provides the adversarial
// environment that exercises it.
//
// Every fault source is seeded: a schedule is a pure function of its
// seed, so a failing run replays exactly. The package provides:
//
//   - SP — a fallible recording service provider (resilience.Delivery)
//     with per-attempt error probabilities, injected latency and
//     call-indexed outage windows.
//   - Clock — a virtual clock (resilience.Clock) whose Sleep advances
//     virtual time instantly, with skew and manual-advance hooks.
//   - SlowIndex — a spatio-temporal index wrapper (stindex.Index)
//     injecting latency into the KNN/box queries on Algorithm 1's path.
//
// The package's test suite runs the invariant checks across hundreds of
// seeded schedules; the CI chaos job runs it under the race detector.
package chaos

import (
	"sync"
	"time"

	"histanon/internal/wire"
)

// splitmix64 is the deterministic bit mixer behind every fault draw
// (same generator the resilience jitter uses).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// frac maps a seed to a uniform float in [0,1).
func frac(x uint64) float64 {
	return float64(splitmix64(x)>>11) / float64(1<<53)
}

// Faults configures an SP's failure behavior. The zero value is a
// perfectly healthy provider.
type Faults struct {
	// Seed drives every probabilistic draw; the same seed replays the
	// same fault schedule.
	Seed uint64
	// PError is the probability that one delivery attempt fails.
	PError float64
	// PLatency is the probability that one attempt stalls for Latency
	// (on the injected clock) before answering.
	PLatency float64
	// Latency is the injected stall duration.
	Latency time.Duration
	// Outages lists [from,to) windows of the per-SP attempt counter
	// during which every attempt fails — a hard outage, the scenario
	// that trips the circuit breaker.
	Outages [][2]int64
}

// spError is the failure an SP attempt returns.
type spError struct{ msg string }

func (e *spError) Error() string { return e.msg }

// errInjected is returned by every injected delivery failure.
var errInjected = &spError{"chaos: injected SP failure"}

// SP is a fallible, recording service provider: the chaos counterpart
// of sp.Provider. It implements resilience.Delivery; each attempt
// consults the fault schedule, and only successful attempts record the
// request. Safe for concurrent use.
type SP struct {
	faults Faults
	clock  *Clock

	mu        sync.Mutex
	attempts  int64
	failures  int64
	delivered []*wire.Request
}

// NewSP returns a provider with the given fault schedule. clock, when
// non-nil, receives the injected latency (via Sleep); a nil clock skips
// latency injection entirely.
func NewSP(faults Faults, clock *Clock) *SP {
	return &SP{faults: faults, clock: clock}
}

// Deliver implements resilience.Delivery: one delivery attempt against
// the fault schedule. The outcome of attempt i is a pure function of
// (Seed, i).
func (s *SP) Deliver(req *wire.Request) error {
	s.mu.Lock()
	i := s.attempts
	s.attempts++
	s.mu.Unlock()

	fail := false
	for _, w := range s.faults.Outages {
		if i >= w[0] && i < w[1] {
			fail = true
			break
		}
	}
	draw := s.faults.Seed + uint64(i)*2
	if !fail && s.faults.PError > 0 && frac(draw) < s.faults.PError {
		fail = true
	}
	if s.clock != nil && s.faults.PLatency > 0 && frac(draw+1) < s.faults.PLatency {
		s.clock.Sleep(s.faults.Latency)
	}
	if fail {
		s.mu.Lock()
		s.failures++
		s.mu.Unlock()
		return errInjected
	}
	s.mu.Lock()
	s.delivered = append(s.delivered, req)
	s.mu.Unlock()
	return nil
}

// Delivered returns the successfully delivered requests in arrival
// order.
func (s *SP) Delivered() []*wire.Request {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*wire.Request, len(s.delivered))
	copy(out, s.delivered)
	return out
}

// Attempts returns the total delivery attempts seen.
func (s *SP) Attempts() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attempts
}

// Failures returns how many attempts the schedule failed.
func (s *SP) Failures() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failures
}
