// Package stindex provides spatio-temporal indexes over location
// samples. The paper's Algorithm 1 needs two query primitives:
//
//   - the distinct users having a sample inside a spatio-temporal box
//     (anonymity-set counting), and
//   - the k distinct users whose trajectories pass nearest to a query
//     point ⟨x,y,t⟩ (line 5: "the smallest 3D space containing ⟨x,y,t⟩
//     and crossed by k trajectories").
//
// The paper sketches only the O(k·n) brute-force method and notes that
// "optimizations may be inspired by the work on indexing moving
// objects"; this package supplies that brute-force baseline plus a
// uniform grid, a 3D k-d tree and an R-tree, all behind the Index
// interface, so the ablation experiment (E10) can compare them.
//
// # Concurrency
//
// Every index constructed by this package is safe for concurrent use:
// Insert may run concurrently with other Inserts and with any number of
// queries. The Grid uses per-shard locking so readers proceed in
// parallel with writers; Brute, KDTree and RTree serialize writers
// against readers with an RWMutex (parallel readers, exclusive
// writers).
//
// A query that races an Insert may or may not observe the in-flight
// sample; it always observes every sample whose Insert returned before
// the query began (for Grid, see the best-effort caveat on
// Grid.KNearestUsers). For Algorithm 1 this raciness is conservative:
// missing a just-inserted nearby witness can only select a farther one,
// enlarging the anonymity box.
package stindex

import (
	"math"
	"sync"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// inf is the +Inf prune bound used while fewer than k users are known.
var inf = math.Inf(1)

// UserPoint pairs a user with one of their location samples.
type UserPoint struct {
	User  phl.UserID
	Point geo.STPoint
}

// Index answers spatio-temporal queries over a growing set of location
// samples. All implementations in this package are safe for concurrent
// use (see the package comment for the exact guarantees).
type Index interface {
	// Insert adds one sample for the user.
	Insert(u phl.UserID, p geo.STPoint)
	// Len returns the number of samples inserted.
	Len() int
	// UsersInBox returns the distinct users having at least one sample in
	// b. Order is implementation-defined.
	UsersInBox(b geo.STBox) []phl.UserID
	// CountUsersInBox returns the number of distinct users with a sample
	// in b.
	CountUsersInBox(b geo.STBox) int
	// KNearestUsers returns up to k entries, one per distinct user (the
	// user's closest sample to q under m), ordered by increasing
	// distance. Users listed in exclude are skipped.
	KNearestUsers(q geo.STPoint, k int, m geo.STMetric, exclude map[phl.UserID]bool) []UserPoint
}

// SmallestEnclosingBox returns the smallest spatio-temporal box
// containing the query point and one trajectory sample from each of k
// distinct users — the generalized context of Algorithm 1 line 5. The
// second result lists the chosen users' samples; ok is false when fewer
// than k distinct users exist.
func SmallestEnclosingBox(idx Index, q geo.STPoint, k int, m geo.STMetric, exclude map[phl.UserID]bool) (geo.STBox, []UserPoint, bool) {
	nearest := idx.KNearestUsers(q, k, m, exclude)
	if len(nearest) < k {
		return geo.STBox{}, nil, false
	}
	box := geo.STBoxAround(q)
	for _, up := range nearest {
		box = box.Extend(up.Point)
	}
	return box, nearest, true
}

// nearestCand is one candidate user point with its distance to the
// query.
type nearestCand struct {
	up   UserPoint
	dist float64
}

// knnAcc accumulates per-user nearest candidates during a KNearestUsers
// query. It maintains, incrementally, a max-heap of the k users whose
// current per-user best distance is smallest, so
//
//   - Bound (the running k-th smallest per-user distance — the prune
//     line of every index's search) is O(1) instead of a rebuild over
//     all users, and
//   - each Offer costs O(log k) only when it changes the top-k set.
//
// Invariant: heap holds exactly the min(k, distinct-users-seen) users
// with the smallest per-user best distances; pos maps each heap member
// to its slot. A user outside a full heap therefore has a best distance
// ≥ heap[0].dist, so any sample closer than heap[0].dist is
// automatically an improvement — no per-user best map is needed.
//
// Accumulators are pooled: queries are hot (one per Algorithm 1 call)
// and the maps/slices dominate the allocation profile otherwise.
type knnAcc struct {
	k    int
	heap []nearestCand      // max-heap over the k smallest per-user dists
	pos  map[phl.UserID]int // heap slot by user, heap members only
}

var knnAccPool = sync.Pool{New: func() interface{} {
	return &knnAcc{pos: make(map[phl.UserID]int)}
}}

// getKNNAcc returns a cleared accumulator for a k-nearest query.
func getKNNAcc(k int) *knnAcc {
	a := knnAccPool.Get().(*knnAcc)
	a.k = k
	return a
}

// release returns the accumulator to the pool.
func (a *knnAcc) release() {
	clear(a.pos)
	a.heap = a.heap[:0]
	knnAccPool.Put(a)
}

// Bound returns the current k-th smallest per-user distance, or +Inf
// while fewer than k distinct users have been offered.
func (a *knnAcc) bound() float64 {
	if len(a.heap) < a.k {
		return inf
	}
	return a.heap[0].dist
}

// offer considers one sample at distance d from the query.
func (a *knnAcc) offer(up UserPoint, d float64) {
	if i, ok := a.pos[up.User]; ok {
		// Already a top-k member: only an improvement matters, and it
		// keeps the user in the top-k (its best got smaller).
		if d < a.heap[i].dist {
			a.heap[i] = nearestCand{up: up, dist: d}
			a.siftDown(i)
		}
		return
	}
	if len(a.heap) < a.k {
		// Heap not full ⇒ every user seen so far is a member ⇒ up.User is
		// new: push it.
		a.heap = append(a.heap, nearestCand{up: up, dist: d})
		a.pos[up.User] = len(a.heap) - 1
		a.siftUp(len(a.heap) - 1)
		return
	}
	if d < a.heap[0].dist {
		// A non-member's best is ≥ heap[0].dist, so d improves it into the
		// top-k; the previous k-th best falls out.
		delete(a.pos, a.heap[0].up.User)
		a.heap[0] = nearestCand{up: up, dist: d}
		a.pos[up.User] = 0
		a.siftDown(0)
	}
}

func (a *knnAcc) swap(i, j int) {
	a.heap[i], a.heap[j] = a.heap[j], a.heap[i]
	a.pos[a.heap[i].up.User] = i
	a.pos[a.heap[j].up.User] = j
}

func (a *knnAcc) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if a.heap[parent].dist >= a.heap[i].dist {
			return
		}
		a.swap(i, parent)
		i = parent
	}
}

func (a *knnAcc) siftDown(i int) {
	n := len(a.heap)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && a.heap[l].dist > a.heap[big].dist {
			big = l
		}
		if r < n && a.heap[r].dist > a.heap[big].dist {
			big = r
		}
		if big == i {
			return
		}
		a.swap(i, big)
		i = big
	}
}

// result extracts the accumulated users ordered by increasing distance.
// It consumes the heap; release the accumulator afterwards.
func (a *knnAcc) result() []UserPoint {
	out := make([]UserPoint, len(a.heap))
	for i := len(a.heap) - 1; i >= 0; i-- {
		out[i] = a.heap[0].up
		last := len(a.heap) - 1
		a.swap(0, last)
		a.heap = a.heap[:last]
		a.siftDown(0)
	}
	return out
}

// seenPool recycles the distinct-user sets of UsersInBox and
// CountUsersInBox across queries.
var seenPool = sync.Pool{New: func() interface{} {
	return make(map[phl.UserID]bool)
}}

func getSeen() map[phl.UserID]bool { return seenPool.Get().(map[phl.UserID]bool) }

func putSeen(s map[phl.UserID]bool) {
	clear(s)
	seenPool.Put(s)
}
