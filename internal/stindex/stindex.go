// Package stindex provides spatio-temporal indexes over location
// samples. The paper's Algorithm 1 needs two query primitives:
//
//   - the distinct users having a sample inside a spatio-temporal box
//     (anonymity-set counting), and
//   - the k distinct users whose trajectories pass nearest to a query
//     point ⟨x,y,t⟩ (line 5: "the smallest 3D space containing ⟨x,y,t⟩
//     and crossed by k trajectories").
//
// The paper sketches only the O(k·n) brute-force method and notes that
// "optimizations may be inspired by the work on indexing moving
// objects"; this package supplies that brute-force baseline plus a
// uniform grid and a 3D k-d tree, all behind the Index interface, so the
// ablation experiment (E10) can compare them.
package stindex

import (
	"container/heap"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// UserPoint pairs a user with one of their location samples.
type UserPoint struct {
	User  phl.UserID
	Point geo.STPoint
}

// Index answers spatio-temporal queries over a growing set of location
// samples. Implementations are not safe for concurrent mutation.
type Index interface {
	// Insert adds one sample for the user.
	Insert(u phl.UserID, p geo.STPoint)
	// Len returns the number of samples inserted.
	Len() int
	// UsersInBox returns the distinct users having at least one sample in
	// b. Order is implementation-defined.
	UsersInBox(b geo.STBox) []phl.UserID
	// CountUsersInBox returns the number of distinct users with a sample
	// in b.
	CountUsersInBox(b geo.STBox) int
	// KNearestUsers returns up to k entries, one per distinct user (the
	// user's closest sample to q under m), ordered by increasing
	// distance. Users listed in exclude are skipped.
	KNearestUsers(q geo.STPoint, k int, m geo.STMetric, exclude map[phl.UserID]bool) []UserPoint
}

// SmallestEnclosingBox returns the smallest spatio-temporal box
// containing the query point and one trajectory sample from each of k
// distinct users — the generalized context of Algorithm 1 line 5. The
// second result lists the chosen users' samples; ok is false when fewer
// than k distinct users exist.
func SmallestEnclosingBox(idx Index, q geo.STPoint, k int, m geo.STMetric, exclude map[phl.UserID]bool) (geo.STBox, []UserPoint, bool) {
	nearest := idx.KNearestUsers(q, k, m, exclude)
	if len(nearest) < k {
		return geo.STBox{}, nil, false
	}
	box := geo.STBoxAround(q)
	for _, up := range nearest {
		box = box.Extend(up.Point)
	}
	return box, nearest, true
}

// nearestHeap is a max-heap over candidate user points by distance, used
// to keep the running k best candidates.
type nearestCand struct {
	up   UserPoint
	dist float64
}

type nearestHeap []nearestCand

func (h nearestHeap) Len() int            { return len(h) }
func (h nearestHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h nearestHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nearestHeap) Push(x interface{}) { *h = append(*h, x.(nearestCand)) }
func (h *nearestHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// collectKNearest turns per-user best distances into the sorted result
// slice shared by all index implementations.
func collectKNearest(best map[phl.UserID]nearestCand, k int) []UserPoint {
	h := make(nearestHeap, 0, k)
	for _, c := range best {
		if len(h) < k {
			heap.Push(&h, c)
		} else if c.dist < h[0].dist {
			h[0] = c
			heap.Fix(&h, 0)
		}
	}
	out := make([]UserPoint, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(nearestCand).up
	}
	return out
}
