package stindex

import (
	"math"
	"sort"
	"sync"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// RTree is a 3-dimensional R-tree over (x, y, t) with quadratic-split
// insertion — the classic moving-object index family the paper's §6.2
// points at. Unlike the k-d tree it stores spatio-temporal bounding
// boxes at internal nodes, so both the box query and the
// k-distinct-users nearest query prune on full 3D volumes.
//
// Like the metric queries of the other indexes, the time axis is scaled
// by the query metric at search time; node boxes store raw coordinates.
//
// Concurrency: an RWMutex serializes Insert (which rewrites node boxes
// and splits nodes in place) against queries; queries run in parallel
// with each other.
type RTree struct {
	mu   sync.RWMutex
	root *rtNode
	n    int
	// minFill/maxFill are the node occupancy bounds (R-tree "m"/"M").
	maxFill int
}

type rtBox struct {
	minX, minY, maxX, maxY float64
	minT, maxT             int64
}

type rtNode struct {
	box      rtBox
	leaf     bool
	entries  []UserPoint // leaf payload
	children []*rtNode   // internal children
}

// NewRTree returns an empty R-tree with the default fan-out (16).
func NewRTree() *RTree { return &RTree{maxFill: 16} }

func boxOf(p geo.STPoint) rtBox {
	return rtBox{minX: p.P.X, minY: p.P.Y, maxX: p.P.X, maxY: p.P.Y, minT: p.T, maxT: p.T}
}

func (b rtBox) extend(o rtBox) rtBox {
	return rtBox{
		minX: math.Min(b.minX, o.minX), minY: math.Min(b.minY, o.minY),
		maxX: math.Max(b.maxX, o.maxX), maxY: math.Max(b.maxY, o.maxY),
		minT: min64(b.minT, o.minT), maxT: max64(b.maxT, o.maxT),
	}
}

// volume uses the metric's time scale so enlargement decisions reflect
// query geometry; the scale only matters relatively, so inserts use
// scale 1.
func (b rtBox) volume(scale float64) float64 {
	return (b.maxX - b.minX + 1) * (b.maxY - b.minY + 1) * (float64(b.maxT-b.minT)*scale + 1)
}

func (b rtBox) intersects(q geo.STBox) bool {
	return b.minX <= q.Area.MaxX && q.Area.MinX <= b.maxX &&
		b.minY <= q.Area.MaxY && q.Area.MinY <= b.maxY &&
		b.minT <= q.Time.End && q.Time.Start <= b.maxT
}

// distTo returns the minimum metric distance from the query point to
// the box.
func (b rtBox) distTo(q geo.STPoint, scale float64) float64 {
	dx := math.Max(0, math.Max(b.minX-q.P.X, q.P.X-b.maxX))
	dy := math.Max(0, math.Max(b.minY-q.P.Y, q.P.Y-b.maxY))
	var dt float64
	switch {
	case q.T < b.minT:
		dt = float64(b.minT-q.T) * scale
	case q.T > b.maxT:
		dt = float64(q.T-b.maxT) * scale
	}
	return math.Sqrt(dx*dx + dy*dy + dt*dt)
}

// Insert implements Index.
func (t *RTree) Insert(u phl.UserID, p geo.STPoint) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n++
	e := UserPoint{User: u, Point: p}
	if t.root == nil {
		t.root = &rtNode{leaf: true, box: boxOf(p), entries: []UserPoint{e}}
		return
	}
	n2 := t.insert(t.root, e)
	if n2 != nil {
		// Root split: grow the tree.
		old := t.root
		t.root = &rtNode{
			box:      old.box.extend(n2.box),
			children: []*rtNode{old, n2},
		}
	}
}

// insert adds e under n and returns a new sibling when n split.
func (t *RTree) insert(n *rtNode, e UserPoint) *rtNode {
	eb := boxOf(e.Point)
	n.box = n.box.extend(eb)
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxFill {
			return t.splitLeaf(n)
		}
		return nil
	}
	// Choose the child needing least volume enlargement.
	best := -1
	bestGrow := math.Inf(1)
	bestVol := math.Inf(1)
	for i, c := range n.children {
		grown := c.box.extend(eb)
		grow := grown.volume(1) - c.box.volume(1)
		if grow < bestGrow || (grow == bestGrow && c.box.volume(1) < bestVol) {
			best, bestGrow, bestVol = i, grow, c.box.volume(1)
		}
	}
	if n2 := t.insert(n.children[best], e); n2 != nil {
		n.children = append(n.children, n2)
		if len(n.children) > t.maxFill {
			return t.splitInternal(n)
		}
	}
	return nil
}

// splitLeaf partitions an overfull leaf along its longest axis (a cheap
// linear split: sort by the axis midpoint and halve).
func (t *RTree) splitLeaf(n *rtNode) *rtNode {
	axis := longestAxis(n.box)
	sort.Slice(n.entries, func(i, j int) bool {
		return axisValue(n.entries[i].Point, axis) < axisValue(n.entries[j].Point, axis)
	})
	half := len(n.entries) / 2
	right := &rtNode{leaf: true, entries: append([]UserPoint(nil), n.entries[half:]...)}
	n.entries = n.entries[:half]
	n.box = recomputeLeafBox(n.entries)
	right.box = recomputeLeafBox(right.entries)
	return right
}

func (t *RTree) splitInternal(n *rtNode) *rtNode {
	axis := longestAxis(n.box)
	sort.Slice(n.children, func(i, j int) bool {
		return axisCenter(n.children[i].box, axis) < axisCenter(n.children[j].box, axis)
	})
	half := len(n.children) / 2
	right := &rtNode{children: append([]*rtNode(nil), n.children[half:]...)}
	n.children = n.children[:half]
	n.box = recomputeInternalBox(n.children)
	right.box = recomputeInternalBox(right.children)
	return right
}

func longestAxis(b rtBox) int {
	dx, dy := b.maxX-b.minX, b.maxY-b.minY
	dt := float64(b.maxT - b.minT)
	switch {
	case dx >= dy && dx >= dt:
		return 0
	case dy >= dt:
		return 1
	default:
		return 2
	}
}

func axisValue(p geo.STPoint, axis int) float64 {
	switch axis {
	case 0:
		return p.P.X
	case 1:
		return p.P.Y
	default:
		return float64(p.T)
	}
}

func axisCenter(b rtBox, axis int) float64 {
	switch axis {
	case 0:
		return (b.minX + b.maxX) / 2
	case 1:
		return (b.minY + b.maxY) / 2
	default:
		return float64(b.minT+b.maxT) / 2
	}
}

func recomputeLeafBox(entries []UserPoint) rtBox {
	b := boxOf(entries[0].Point)
	for _, e := range entries[1:] {
		b = b.extend(boxOf(e.Point))
	}
	return b
}

func recomputeInternalBox(children []*rtNode) rtBox {
	b := children[0].box
	for _, c := range children[1:] {
		b = b.extend(c.box)
	}
	return b
}

// Len implements Index.
func (t *RTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

// UsersInBox implements Index.
func (t *RTree) UsersInBox(box geo.STBox) []phl.UserID {
	seen := getSeen()
	defer putSeen(seen)
	var out []phl.UserID
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.walkBox(t.root, box, func(e UserPoint) {
		if !seen[e.User] {
			seen[e.User] = true
			out = append(out, e.User)
		}
	})
	return out
}

// CountUsersInBox implements Index.
func (t *RTree) CountUsersInBox(box geo.STBox) int {
	seen := getSeen()
	defer putSeen(seen)
	n := 0
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.walkBox(t.root, box, func(e UserPoint) {
		if !seen[e.User] {
			seen[e.User] = true
			n++
		}
	})
	return n
}

func (t *RTree) walkBox(n *rtNode, box geo.STBox, visit func(UserPoint)) {
	if n == nil || !n.box.intersects(box) {
		return
	}
	if n.leaf {
		for _, e := range n.entries {
			if box.Contains(e.Point) {
				visit(e)
			}
		}
		return
	}
	for _, c := range n.children {
		t.walkBox(c, box, visit)
	}
}

// rtQueued is one node on the best-first search frontier.
type rtQueued struct {
	node *rtNode
	dist float64
}

// KNearestUsers implements Index: best-first traversal ordered by
// box distance, with the per-user k-th best bound as the prune line
// (same correctness argument as the grid: a pruned subtree's points are
// farther than the running k-th best per-user distance, so they can
// neither improve a winner nor introduce one). The bound is maintained
// incrementally by the accumulator.
func (t *RTree) KNearestUsers(q geo.STPoint, k int, m geo.STMetric, exclude map[phl.UserID]bool) []UserPoint {
	if k <= 0 {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == nil {
		return nil
	}
	scale := m.Scale()
	acc := getKNNAcc(k)
	defer acc.release()

	// Best-first queue over nodes by distance to q.
	queue := []rtQueued{{t.root, t.root.box.distTo(q, scale)}}
	for len(queue) > 0 {
		// Pop the nearest node (linear pop keeps the code simple; queue
		// depth is O(height × fan-out)).
		bestIdx := 0
		for i := 1; i < len(queue); i++ {
			if queue[i].dist < queue[bestIdx].dist {
				bestIdx = i
			}
		}
		cur := queue[bestIdx]
		queue[bestIdx] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if cur.dist > acc.bound() {
			continue
		}
		if cur.node.leaf {
			for _, e := range cur.node.entries {
				if exclude[e.User] {
					continue
				}
				acc.offer(e, m.Dist(e.Point, q))
			}
			continue
		}
		bound := acc.bound()
		for _, c := range cur.node.children {
			if d := c.box.distTo(q, scale); d <= bound {
				queue = append(queue, rtQueued{c, d})
			}
		}
	}
	return acc.result()
}
