package stindex

import (
	"math"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// KDTree is a 3-dimensional k-d tree over (x, y, t). Nodes are inserted
// without rebalancing, which is adequate for the quasi-random insertion
// order of location streams; the ablation benchmarks quantify the
// difference against the grid.
//
// Coordinates are stored raw; the query metric's time scale is applied
// during search, so the same tree serves any STMetric.
type KDTree struct {
	root *kdNode
	n    int
}

type kdNode struct {
	entry       UserPoint
	left, right *kdNode
}

// NewKDTree returns an empty tree.
func NewKDTree() *KDTree { return &KDTree{} }

// Insert implements Index.
func (t *KDTree) Insert(u phl.UserID, p geo.STPoint) {
	node := &kdNode{entry: UserPoint{User: u, Point: p}}
	t.n++
	if t.root == nil {
		t.root = node
		return
	}
	cur := t.root
	for depth := 0; ; depth++ {
		if coord(p, depth%3) < coord(cur.entry.Point, depth%3) {
			if cur.left == nil {
				cur.left = node
				return
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				cur.right = node
				return
			}
			cur = cur.right
		}
	}
}

// Len implements Index.
func (t *KDTree) Len() int { return t.n }

func coord(p geo.STPoint, axis int) float64 {
	switch axis {
	case 0:
		return p.P.X
	case 1:
		return p.P.Y
	default:
		return float64(p.T)
	}
}

func boxMin(b geo.STBox, axis int) float64 {
	switch axis {
	case 0:
		return b.Area.MinX
	case 1:
		return b.Area.MinY
	default:
		return float64(b.Time.Start)
	}
}

func boxMax(b geo.STBox, axis int) float64 {
	switch axis {
	case 0:
		return b.Area.MaxX
	case 1:
		return b.Area.MaxY
	default:
		return float64(b.Time.End)
	}
}

// UsersInBox implements Index.
func (t *KDTree) UsersInBox(box geo.STBox) []phl.UserID {
	seen := map[phl.UserID]bool{}
	var out []phl.UserID
	t.walkBox(t.root, 0, box, func(e UserPoint) {
		if !seen[e.User] {
			seen[e.User] = true
			out = append(out, e.User)
		}
	})
	return out
}

// CountUsersInBox implements Index.
func (t *KDTree) CountUsersInBox(box geo.STBox) int {
	seen := map[phl.UserID]bool{}
	t.walkBox(t.root, 0, box, func(e UserPoint) { seen[e.User] = true })
	return len(seen)
}

func (t *KDTree) walkBox(n *kdNode, depth int, box geo.STBox, visit func(UserPoint)) {
	if n == nil {
		return
	}
	if box.Contains(n.entry.Point) {
		visit(n.entry)
	}
	axis := depth % 3
	c := coord(n.entry.Point, axis)
	if boxMin(box, axis) < c {
		t.walkBox(n.left, depth+1, box, visit)
	}
	if boxMax(box, axis) >= c {
		t.walkBox(n.right, depth+1, box, visit)
	}
}

// KNearestUsers implements Index. A branch is pruned when the distance
// from the query to the splitting plane already exceeds the current
// k-th best per-user distance.
func (t *KDTree) KNearestUsers(q geo.STPoint, k int, m geo.STMetric, exclude map[phl.UserID]bool) []UserPoint {
	if k <= 0 || t.root == nil {
		return nil
	}
	s := &kdSearch{
		q: q, k: k, m: m, exclude: exclude,
		scale: timeScaleOf(m),
		best:  map[phl.UserID]nearestCand{},
		bound: math.Inf(1),
	}
	s.visit(t.root, 0)
	return collectKNearest(s.best, k)
}

type kdSearch struct {
	q       geo.STPoint
	k       int
	m       geo.STMetric
	scale   float64
	exclude map[phl.UserID]bool
	best    map[phl.UserID]nearestCand
	bound   float64 // current k-th best per-user distance
}

func (s *kdSearch) visit(n *kdNode, depth int) {
	if n == nil {
		return
	}
	if !s.exclude[n.entry.User] {
		d := s.m.Dist(n.entry.Point, s.q)
		if cur, ok := s.best[n.entry.User]; !ok || d < cur.dist {
			s.best[n.entry.User] = nearestCand{up: n.entry, dist: d}
			s.refreshBound()
		}
	}
	axis := depth % 3
	qc := coord(s.q, axis)
	nc := coord(n.entry.Point, axis)
	planeDist := math.Abs(qc - nc)
	if axis == 2 {
		planeDist *= s.scale
	}
	near, far := n.left, n.right
	if qc >= nc {
		near, far = n.right, n.left
	}
	s.visit(near, depth+1)
	if planeDist <= s.bound {
		s.visit(far, depth+1)
	}
}

// refreshBound recomputes the k-th best per-user distance. Called only
// when a per-user best improves, which happens O(distinct users) times.
func (s *kdSearch) refreshBound() {
	if len(s.best) < s.k {
		s.bound = math.Inf(1)
		return
	}
	h := make(nearestHeap, 0, s.k)
	for _, c := range s.best {
		if len(h) < s.k {
			h = append(h, c)
			if len(h) == s.k {
				initHeap(h)
			}
		} else if c.dist < h[0].dist {
			h[0] = c
			siftDown(h, 0)
		}
	}
	s.bound = h[0].dist
}
