package stindex

import (
	"math"
	"sync"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// KDTree is a 3-dimensional k-d tree over (x, y, t). Nodes are inserted
// without rebalancing, which is adequate for the quasi-random insertion
// order of location streams; the ablation benchmarks quantify the
// difference against the grid.
//
// Coordinates are stored raw; the query metric's time scale is applied
// during search, so the same tree serves any STMetric.
//
// Concurrency: an RWMutex serializes Insert against queries; queries
// run in parallel with each other (a native lock-free design is not
// worth it for a pointer-linked tree).
type KDTree struct {
	mu   sync.RWMutex
	root *kdNode
	n    int
}

type kdNode struct {
	entry       UserPoint
	left, right *kdNode
}

// NewKDTree returns an empty tree.
func NewKDTree() *KDTree { return &KDTree{} }

// Insert implements Index.
func (t *KDTree) Insert(u phl.UserID, p geo.STPoint) {
	node := &kdNode{entry: UserPoint{User: u, Point: p}}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n++
	if t.root == nil {
		t.root = node
		return
	}
	cur := t.root
	for depth := 0; ; depth++ {
		if coord(p, depth%3) < coord(cur.entry.Point, depth%3) {
			if cur.left == nil {
				cur.left = node
				return
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				cur.right = node
				return
			}
			cur = cur.right
		}
	}
}

// Len implements Index.
func (t *KDTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

func coord(p geo.STPoint, axis int) float64 {
	switch axis {
	case 0:
		return p.P.X
	case 1:
		return p.P.Y
	default:
		return float64(p.T)
	}
}

func boxMin(b geo.STBox, axis int) float64 {
	switch axis {
	case 0:
		return b.Area.MinX
	case 1:
		return b.Area.MinY
	default:
		return float64(b.Time.Start)
	}
}

func boxMax(b geo.STBox, axis int) float64 {
	switch axis {
	case 0:
		return b.Area.MaxX
	case 1:
		return b.Area.MaxY
	default:
		return float64(b.Time.End)
	}
}

// UsersInBox implements Index.
func (t *KDTree) UsersInBox(box geo.STBox) []phl.UserID {
	seen := getSeen()
	defer putSeen(seen)
	var out []phl.UserID
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.walkBox(t.root, 0, box, func(e UserPoint) {
		if !seen[e.User] {
			seen[e.User] = true
			out = append(out, e.User)
		}
	})
	return out
}

// CountUsersInBox implements Index.
func (t *KDTree) CountUsersInBox(box geo.STBox) int {
	seen := getSeen()
	defer putSeen(seen)
	n := 0
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.walkBox(t.root, 0, box, func(e UserPoint) {
		if !seen[e.User] {
			seen[e.User] = true
			n++
		}
	})
	return n
}

func (t *KDTree) walkBox(n *kdNode, depth int, box geo.STBox, visit func(UserPoint)) {
	if n == nil {
		return
	}
	if box.Contains(n.entry.Point) {
		visit(n.entry)
	}
	axis := depth % 3
	c := coord(n.entry.Point, axis)
	if boxMin(box, axis) < c {
		t.walkBox(n.left, depth+1, box, visit)
	}
	if boxMax(box, axis) >= c {
		t.walkBox(n.right, depth+1, box, visit)
	}
}

// KNearestUsers implements Index. A branch is pruned when the distance
// from the query to the splitting plane already exceeds the current
// k-th best per-user distance (read in O(1) from the accumulator).
func (t *KDTree) KNearestUsers(q geo.STPoint, k int, m geo.STMetric, exclude map[phl.UserID]bool) []UserPoint {
	if k <= 0 {
		return nil
	}
	acc := getKNNAcc(k)
	defer acc.release()
	s := &kdSearch{q: q, m: m, scale: m.Scale(), exclude: exclude, acc: acc}
	t.mu.RLock()
	s.visit(t.root, 0)
	t.mu.RUnlock()
	return acc.result()
}

type kdSearch struct {
	q       geo.STPoint
	m       geo.STMetric
	scale   float64
	exclude map[phl.UserID]bool
	acc     *knnAcc
}

func (s *kdSearch) visit(n *kdNode, depth int) {
	if n == nil {
		return
	}
	if !s.exclude[n.entry.User] {
		s.acc.offer(n.entry, s.m.Dist(n.entry.Point, s.q))
	}
	axis := depth % 3
	qc := coord(s.q, axis)
	nc := coord(n.entry.Point, axis)
	planeDist := math.Abs(qc - nc)
	if axis == 2 {
		planeDist *= s.scale
	}
	near, far := n.left, n.right
	if qc >= nc {
		near, far = n.right, n.left
	}
	s.visit(near, depth+1)
	if planeDist <= s.acc.bound() {
		s.visit(far, depth+1)
	}
}
