package stindex

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// TestConcurrentInsertAndQuery race-stresses every index: writers
// insert while readers run all three query primitives. Run under
// `go test -race` this verifies the package's concurrency contract;
// after the writers join, a final pass verifies nothing was lost.
func TestConcurrentInsertAndQuery(t *testing.T) {
	const (
		writers       = 4
		readers       = 4
		perWriter     = 800
		users         = 50
		queriesPerRdr = 200
	)
	for name, mk := range allIndexes() {
		t.Run(name, func(t *testing.T) {
			idx := mk()
			// A seeded base population so early readers have data.
			base := rand.New(rand.NewSource(1))
			fillRandom(idx, base, users, 500)

			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < perWriter; i++ {
						u := phl.UserID(rng.Intn(users))
						idx.Insert(u, pt(rng.Float64()*2000, rng.Float64()*2000, int64(rng.Intn(7200))))
					}
				}(int64(100 + w))
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					m := geo.STMetric{TimeScale: 1}
					for i := 0; i < queriesPerRdr; i++ {
						q := pt(rng.Float64()*2000, rng.Float64()*2000, int64(rng.Intn(7200)))
						switch i % 3 {
						case 0:
							got := idx.KNearestUsers(q, 1+rng.Intn(8), m, nil)
							for j := 1; j < len(got); j++ {
								if m.Dist(got[j-1].Point, q) > m.Dist(got[j].Point, q)+1e-9 {
									t.Errorf("KNearestUsers result not sorted at %d", j)
									return
								}
							}
						case 1:
							box := geo.STBox{
								Area: rect(q.P.X-300, q.P.Y-300, q.P.X+300, q.P.Y+300),
								Time: iv(q.T-900, q.T+900),
							}
							idx.UsersInBox(box)
						default:
							box := geo.STBox{
								Area: rect(q.P.X-300, q.P.Y-300, q.P.X+300, q.P.Y+300),
								Time: iv(q.T-900, q.T+900),
							}
							idx.CountUsersInBox(box)
						}
					}
				}(int64(200 + r))
			}
			wg.Wait()

			want := 500 + writers*perWriter
			if got := idx.Len(); got != want {
				t.Fatalf("Len=%d after concurrent inserts, want %d", got, want)
			}
			// Quiescent correctness: the index must now agree with a brute
			// replay of the same inserts on the full-population query.
			all := idx.KNearestUsers(pt(1000, 1000, 3600), users+5, geo.STMetric{TimeScale: 1}, nil)
			if len(all) != users {
				t.Fatalf("distinct users after join = %d, want %d", len(all), users)
			}
		})
	}
}

// TestConcurrentQueriesShareScratch exercises the pooled KNN
// accumulators and seen-sets from many goroutines at once over a static
// index, cross-checking every result against a sequential baseline.
func TestConcurrentQueriesShareScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	idx := NewGrid(150, 450)
	ref := NewBrute()
	for i := 0; i < 4000; i++ {
		u := phl.UserID(rng.Intn(40))
		p := pt(rng.Float64()*2000, rng.Float64()*2000, int64(rng.Intn(7200)))
		idx.Insert(u, p)
		ref.Insert(u, p)
	}
	m := geo.STMetric{TimeScale: 0.5}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				q := pt(rng.Float64()*2000, rng.Float64()*2000, int64(rng.Intn(7200)))
				k := 1 + rng.Intn(10)
				got := idx.KNearestUsers(q, k, m, nil)
				want := ref.KNearestUsers(q, k, m, nil)
				if len(got) != len(want) {
					t.Errorf("len=%d want %d", len(got), len(want))
					return
				}
				for j := range got {
					if d1, d2 := m.Dist(got[j].Point, q), m.Dist(want[j].Point, q); d1-d2 > 1e-9 || d2-d1 > 1e-9 {
						t.Errorf("rank %d dist %g want %g", j, d1, d2)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// BenchmarkConcurrentGridMix measures grid throughput under a mixed
// insert/query load at GOMAXPROCS goroutines — the reader-safe sharding
// is the point, so ops here are whole query-or-insert operations.
func BenchmarkConcurrentGridMix(b *testing.B) {
	idx := NewGrid(500, 1800)
	seedRng := rand.New(rand.NewSource(17))
	for i := 0; i < 20000; i++ {
		idx.Insert(phl.UserID(seedRng.Intn(400)), pt(seedRng.Float64()*8000, seedRng.Float64()*8000, int64(seedRng.Intn(14*24*3600))))
	}
	m := geo.STMetric{TimeScale: 1}
	var seq atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seq.Add(1)))
		for pb.Next() {
			q := pt(rng.Float64()*8000, rng.Float64()*8000, int64(rng.Intn(14*24*3600)))
			if rng.Intn(4) == 0 {
				idx.Insert(phl.UserID(rng.Intn(400)), q)
			} else {
				idx.KNearestUsers(q, 5, m, nil)
			}
		}
	})
}
