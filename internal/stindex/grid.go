package stindex

import (
	"math"
	"sync"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// gridShardCount is the number of cell-map shards (power of two). With
// hash-sharded locking, concurrent inserts into different cells and
// concurrent readers contend only when they hash to the same shard.
const gridShardCount = 64

// gridShard holds one slice of the cell map under its own lock.
type gridShard struct {
	mu    sync.RWMutex
	cells map[gridKey][]UserPoint
}

// Grid is a sparse uniform grid over space and time: samples hash into
// cells of CellSize×CellSize meters and BucketLen seconds. Box queries
// touch only overlapping cells; nearest-user queries expand outward in
// shells until the running k-th best distance prunes the frontier.
//
// Concurrency: the cell map is split into gridShardCount shards, each
// guarded by its own RWMutex, so inserts and queries touching different
// shards proceed fully in parallel; global bookkeeping (sample count,
// user set, populated bounds) sits behind a separate narrow RWMutex.
// Cell payload slices are append-only: a reader that snapshot a slice
// header under the shard lock can keep scanning its elements after
// releasing the lock, because concurrent appends never mutate published
// elements.
//
// Queries racing Inserts are best-effort in one bounded way: a
// KNearestUsers sweep terminates once it has visited as many samples as
// existed when it started, so samples inserted mid-sweep can displace
// (not corrupt) its view of equally-old samples in yet-unvisited cells.
// Any missed nearby witness only makes Algorithm 1 pick a farther one —
// a conservative, privacy-preserving error direction.
type Grid struct {
	cellSize  float64
	bucketLen int64
	shards    [gridShardCount]gridShard

	// meta guards the cross-shard bookkeeping below.
	meta  sync.RWMutex
	n     int
	users map[phl.UserID]struct{}
	// Observed cell-coordinate bounds let shell expansion terminate when
	// the whole populated grid has been visited.
	min, max gridKey
}

type gridKey struct {
	cx, cy, ct int64
}

// NewGrid returns an empty grid index with the given spatial cell size
// (meters) and temporal bucket length (seconds). Both must be positive.
func NewGrid(cellSize float64, bucketLen int64) *Grid {
	if cellSize <= 0 || bucketLen <= 0 {
		panic("stindex: grid cell dimensions must be positive")
	}
	g := &Grid{
		cellSize:  cellSize,
		bucketLen: bucketLen,
		users:     make(map[phl.UserID]struct{}),
	}
	for i := range g.shards {
		g.shards[i].cells = make(map[gridKey][]UserPoint)
	}
	return g
}

func (g *Grid) key(p geo.STPoint) gridKey {
	return gridKey{
		cx: int64(math.Floor(p.P.X / g.cellSize)),
		cy: int64(math.Floor(p.P.Y / g.cellSize)),
		ct: floorDiv(p.T, g.bucketLen),
	}
}

// shardOf hashes a cell key onto its shard.
func (g *Grid) shardOf(k gridKey) *gridShard {
	h := uint64(k.cx)*0x9e3779b185ebca87 ^ uint64(k.cy)*0xc2b2ae3d27d4eb4f ^ uint64(k.ct)*0x165667b19e3779f9
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return &g.shards[h&(gridShardCount-1)]
}

// loadCell snapshots one cell's entries. The returned slice is safe to
// scan after the shard lock is released (payloads are append-only).
func (g *Grid) loadCell(k gridKey) []UserPoint {
	sh := g.shardOf(k)
	sh.mu.RLock()
	entries := sh.cells[k]
	sh.mu.RUnlock()
	return entries
}

// cellBox returns the spatio-temporal extent of a cell.
func (g *Grid) cellBox(k gridKey) geo.STBox {
	return geo.STBox{
		Area: geo.Rect{
			MinX: float64(k.cx) * g.cellSize, MinY: float64(k.cy) * g.cellSize,
			MaxX: float64(k.cx+1) * g.cellSize, MaxY: float64(k.cy+1) * g.cellSize,
		},
		Time: geo.Interval{Start: k.ct * g.bucketLen, End: (k.ct+1)*g.bucketLen - 1},
	}
}

// Insert implements Index.
func (g *Grid) Insert(u phl.UserID, p geo.STPoint) {
	k := g.key(p)
	sh := g.shardOf(k)
	sh.mu.Lock()
	sh.cells[k] = append(sh.cells[k], UserPoint{User: u, Point: p})
	sh.mu.Unlock()

	g.meta.Lock()
	g.users[u] = struct{}{}
	if g.n == 0 {
		g.min, g.max = k, k
	} else {
		g.min.cx = min64(g.min.cx, k.cx)
		g.min.cy = min64(g.min.cy, k.cy)
		g.min.ct = min64(g.min.ct, k.ct)
		g.max.cx = max64(g.max.cx, k.cx)
		g.max.cy = max64(g.max.cy, k.cy)
		g.max.ct = max64(g.max.ct, k.ct)
	}
	g.n++
	g.meta.Unlock()
}

// Len implements Index.
func (g *Grid) Len() int {
	g.meta.RLock()
	defer g.meta.RUnlock()
	return g.n
}

// snapshotMeta reads the cross-shard bookkeeping consistently.
func (g *Grid) snapshotMeta() (n, users int, min, max gridKey) {
	g.meta.RLock()
	defer g.meta.RUnlock()
	return g.n, len(g.users), g.min, g.max
}

// UsersInBox implements Index.
func (g *Grid) UsersInBox(box geo.STBox) []phl.UserID {
	seen := getSeen()
	defer putSeen(seen)
	var out []phl.UserID
	g.scanBox(box, func(e UserPoint) {
		if !seen[e.User] {
			seen[e.User] = true
			out = append(out, e.User)
		}
	})
	return out
}

// CountUsersInBox implements Index.
func (g *Grid) CountUsersInBox(box geo.STBox) int {
	seen := getSeen()
	defer putSeen(seen)
	n := 0
	g.scanBox(box, func(e UserPoint) {
		if !seen[e.User] {
			seen[e.User] = true
			n++
		}
	})
	return n
}

func (g *Grid) scanBox(box geo.STBox, visit func(UserPoint)) {
	n, _, gmin, gmax := g.snapshotMeta()
	if n == 0 {
		return
	}
	lo := g.key(geo.STPoint{P: geo.Point{X: box.Area.MinX, Y: box.Area.MinY}, T: box.Time.Start})
	hi := g.key(geo.STPoint{P: geo.Point{X: box.Area.MaxX, Y: box.Area.MaxY}, T: box.Time.End})
	// Clamp to the populated region so huge query boxes stay cheap.
	lo.cx, hi.cx = max64(lo.cx, gmin.cx), min64(hi.cx, gmax.cx)
	lo.cy, hi.cy = max64(lo.cy, gmin.cy), min64(hi.cy, gmax.cy)
	lo.ct, hi.ct = max64(lo.ct, gmin.ct), min64(hi.ct, gmax.ct)
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			for ct := lo.ct; ct <= hi.ct; ct++ {
				for _, e := range g.loadCell(gridKey{cx, cy, ct}) {
					if box.Contains(e.Point) {
						visit(e)
					}
				}
			}
		}
	}
}

// KNearestUsers implements Index. Cells are visited in expanding
// Chebyshev shells around the query cell; the search stops when the
// closest possible point in the next shell is farther than the current
// k-th best per-user distance. The k-th best distance is maintained
// incrementally by the accumulator, so each shell costs one O(1) bound
// read instead of a heap rebuild over all seen users.
func (g *Grid) KNearestUsers(q geo.STPoint, k int, m geo.STMetric, exclude map[phl.UserID]bool) []UserPoint {
	n, userCount, gmin, gmax := g.snapshotMeta()
	if k <= 0 || n == 0 {
		return nil
	}
	center := g.key(q)
	acc := getKNNAcc(k)
	defer acc.release()

	// When k reaches the whole population the shell search cannot prune
	// (the k-th best distance never materializes) and would sweep the
	// entire — mostly empty — cube. Scan the populated cells directly.
	if k >= userCount {
		for i := range g.shards {
			sh := &g.shards[i]
			sh.mu.RLock()
			for _, entries := range sh.cells {
				for _, e := range entries {
					if exclude[e.User] {
						continue
					}
					acc.offer(e, m.Dist(e.Point, q))
				}
			}
			sh.mu.RUnlock()
		}
		return acc.result()
	}

	maxShell := maxShellFrom(center, gmin, gmax)
	minGap := math.Min(g.cellSize, float64(g.bucketLen)*m.Scale())
	seen := 0 // entries encountered; all populated cells visited => stop
	for s := int64(0); s <= maxShell && seen < n; s++ {
		// One bound read serves both the shell early-exit check and the
		// per-cell prune below.
		bound := acc.bound()
		// Earliest possible distance of any point in shell s: the shell's
		// cells start (s-1) whole cells away in some axis.
		if s > 1 && float64(s-1)*minGap > bound {
			break
		}
		g.visitShell(center, s, func(key gridKey) {
			entries := g.loadCell(key)
			if len(entries) == 0 {
				return
			}
			seen += len(entries)
			if s > 1 && m.DistToBox(q, g.cellBox(key)) > bound {
				return
			}
			for _, e := range entries {
				if exclude[e.User] {
					continue
				}
				acc.offer(e, m.Dist(e.Point, q))
			}
		})
	}
	return acc.result()
}

// maxShellFrom returns the largest Chebyshev shell index that can still
// contain populated cells when centered at c.
func maxShellFrom(c, gmin, gmax gridKey) int64 {
	d := max64(absDiffRange(c.cx, gmin.cx, gmax.cx), absDiffRange(c.cy, gmin.cy, gmax.cy))
	return max64(d, absDiffRange(c.ct, gmin.ct, gmax.ct))
}

func absDiffRange(v, lo, hi int64) int64 {
	return max64(abs64(v-lo), abs64(v-hi))
}

// visitShell calls fn for every cell at Chebyshev distance exactly s
// from c.
func (g *Grid) visitShell(c gridKey, s int64, fn func(gridKey)) {
	if s == 0 {
		fn(c)
		return
	}
	for dx := -s; dx <= s; dx++ {
		for dy := -s; dy <= s; dy++ {
			onFaceXY := abs64(dx) == s || abs64(dy) == s
			if onFaceXY {
				for dt := -s; dt <= s; dt++ {
					fn(gridKey{c.cx + dx, c.cy + dy, c.ct + dt})
				}
			} else {
				fn(gridKey{c.cx + dx, c.cy + dy, c.ct - s})
				fn(gridKey{c.cx + dx, c.cy + dy, c.ct + s})
			}
		}
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
