package stindex

import (
	"math"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// Grid is a sparse uniform grid over space and time: samples hash into
// cells of CellSize×CellSize meters and BucketLen seconds. Box queries
// touch only overlapping cells; nearest-user queries expand outward in
// shells until the running k-th best distance prunes the frontier.
type Grid struct {
	cellSize  float64
	bucketLen int64
	cells     map[gridKey][]UserPoint
	n         int
	users     map[phl.UserID]struct{}
	// Observed cell-coordinate bounds let shell expansion terminate when
	// the whole populated grid has been visited.
	min, max gridKey
}

type gridKey struct {
	cx, cy, ct int64
}

// NewGrid returns an empty grid index with the given spatial cell size
// (meters) and temporal bucket length (seconds). Both must be positive.
func NewGrid(cellSize float64, bucketLen int64) *Grid {
	if cellSize <= 0 || bucketLen <= 0 {
		panic("stindex: grid cell dimensions must be positive")
	}
	return &Grid{
		cellSize:  cellSize,
		bucketLen: bucketLen,
		cells:     make(map[gridKey][]UserPoint),
		users:     make(map[phl.UserID]struct{}),
	}
}

func (g *Grid) key(p geo.STPoint) gridKey {
	return gridKey{
		cx: int64(math.Floor(p.P.X / g.cellSize)),
		cy: int64(math.Floor(p.P.Y / g.cellSize)),
		ct: floorDiv(p.T, g.bucketLen),
	}
}

// cellBox returns the spatio-temporal extent of a cell.
func (g *Grid) cellBox(k gridKey) geo.STBox {
	return geo.STBox{
		Area: geo.Rect{
			MinX: float64(k.cx) * g.cellSize, MinY: float64(k.cy) * g.cellSize,
			MaxX: float64(k.cx+1) * g.cellSize, MaxY: float64(k.cy+1) * g.cellSize,
		},
		Time: geo.Interval{Start: k.ct * g.bucketLen, End: (k.ct+1)*g.bucketLen - 1},
	}
}

// Insert implements Index.
func (g *Grid) Insert(u phl.UserID, p geo.STPoint) {
	k := g.key(p)
	g.cells[k] = append(g.cells[k], UserPoint{User: u, Point: p})
	g.users[u] = struct{}{}
	if g.n == 0 {
		g.min, g.max = k, k
	} else {
		g.min.cx = min64(g.min.cx, k.cx)
		g.min.cy = min64(g.min.cy, k.cy)
		g.min.ct = min64(g.min.ct, k.ct)
		g.max.cx = max64(g.max.cx, k.cx)
		g.max.cy = max64(g.max.cy, k.cy)
		g.max.ct = max64(g.max.ct, k.ct)
	}
	g.n++
}

// Len implements Index.
func (g *Grid) Len() int { return g.n }

// UsersInBox implements Index.
func (g *Grid) UsersInBox(box geo.STBox) []phl.UserID {
	seen := map[phl.UserID]bool{}
	var out []phl.UserID
	g.scanBox(box, func(e UserPoint) {
		if !seen[e.User] {
			seen[e.User] = true
			out = append(out, e.User)
		}
	})
	return out
}

// CountUsersInBox implements Index.
func (g *Grid) CountUsersInBox(box geo.STBox) int {
	seen := map[phl.UserID]bool{}
	g.scanBox(box, func(e UserPoint) { seen[e.User] = true })
	return len(seen)
}

func (g *Grid) scanBox(box geo.STBox, visit func(UserPoint)) {
	lo := g.key(geo.STPoint{P: geo.Point{X: box.Area.MinX, Y: box.Area.MinY}, T: box.Time.Start})
	hi := g.key(geo.STPoint{P: geo.Point{X: box.Area.MaxX, Y: box.Area.MaxY}, T: box.Time.End})
	// Clamp to the populated region so huge query boxes stay cheap.
	lo.cx, hi.cx = max64(lo.cx, g.min.cx), min64(hi.cx, g.max.cx)
	lo.cy, hi.cy = max64(lo.cy, g.min.cy), min64(hi.cy, g.max.cy)
	lo.ct, hi.ct = max64(lo.ct, g.min.ct), min64(hi.ct, g.max.ct)
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			for ct := lo.ct; ct <= hi.ct; ct++ {
				for _, e := range g.cells[gridKey{cx, cy, ct}] {
					if box.Contains(e.Point) {
						visit(e)
					}
				}
			}
		}
	}
}

// KNearestUsers implements Index. Cells are visited in expanding
// Chebyshev shells around the query cell; the search stops when the
// closest possible point in the next shell is farther than the current
// k-th best per-user distance.
func (g *Grid) KNearestUsers(q geo.STPoint, k int, m geo.STMetric, exclude map[phl.UserID]bool) []UserPoint {
	if k <= 0 || g.n == 0 {
		return nil
	}
	center := g.key(q)
	best := map[phl.UserID]nearestCand{}

	// When k reaches the whole population the shell search cannot prune
	// (the k-th best distance never materializes) and would sweep the
	// entire — mostly empty — cube. Scan the populated cells directly.
	if k >= len(g.users) {
		for _, entries := range g.cells {
			for _, e := range entries {
				if exclude[e.User] {
					continue
				}
				d := m.Dist(e.Point, q)
				if cur, ok := best[e.User]; !ok || d < cur.dist {
					best[e.User] = nearestCand{up: e, dist: d}
				}
			}
		}
		return collectKNearest(best, k)
	}

	// kthDist returns the current k-th smallest per-user distance, or
	// +Inf when fewer than k users have been found.
	kthDist := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		h := make(nearestHeap, 0, k)
		for _, c := range best {
			if len(h) < k {
				h = append(h, c)
				if len(h) == k {
					initHeap(h)
				}
			} else if c.dist < h[0].dist {
				h[0] = c
				siftDown(h, 0)
			}
		}
		return h[0].dist
	}

	maxShell := g.maxShellFrom(center)
	seen := 0 // entries encountered; all populated cells visited => stop
	for s := int64(0); s <= maxShell && seen < g.n; s++ {
		// Earliest possible distance of any point in shell s: the shell's
		// cells start (s-1) whole cells away in some axis.
		if s > 1 {
			minGap := math.Min(g.cellSize, float64(g.bucketLen)*timeScaleOf(m))
			if float64(s-1)*minGap > kthDist() {
				break
			}
		}
		bound := kthDist()
		g.visitShell(center, s, func(key gridKey) {
			entries := g.cells[key]
			if len(entries) == 0 {
				return
			}
			seen += len(entries)
			if s > 1 && m.DistToBox(q, g.cellBox(key)) > bound {
				return
			}
			for _, e := range entries {
				if exclude[e.User] {
					continue
				}
				d := m.Dist(e.Point, q)
				if cur, ok := best[e.User]; !ok || d < cur.dist {
					best[e.User] = nearestCand{up: e, dist: d}
				}
			}
		})
	}
	return collectKNearest(best, k)
}

// maxShellFrom returns the largest Chebyshev shell index that can still
// contain populated cells when centered at c.
func (g *Grid) maxShellFrom(c gridKey) int64 {
	d := max64(absDiffRange(c.cx, g.min.cx, g.max.cx), absDiffRange(c.cy, g.min.cy, g.max.cy))
	return max64(d, absDiffRange(c.ct, g.min.ct, g.max.ct))
}

func absDiffRange(v, lo, hi int64) int64 {
	return max64(abs64(v-lo), abs64(v-hi))
}

// visitShell calls fn for every cell at Chebyshev distance exactly s
// from c.
func (g *Grid) visitShell(c gridKey, s int64, fn func(gridKey)) {
	if s == 0 {
		fn(c)
		return
	}
	for dx := -s; dx <= s; dx++ {
		for dy := -s; dy <= s; dy++ {
			onFaceXY := abs64(dx) == s || abs64(dy) == s
			if onFaceXY {
				for dt := -s; dt <= s; dt++ {
					fn(gridKey{c.cx + dx, c.cy + dy, c.ct + dt})
				}
			} else {
				fn(gridKey{c.cx + dx, c.cy + dy, c.ct - s})
				fn(gridKey{c.cx + dx, c.cy + dy, c.ct + s})
			}
		}
	}
}

func timeScaleOf(m geo.STMetric) float64 {
	if m.TimeScale == 0 {
		return geo.DefaultTimeScale
	}
	return m.TimeScale
}

// Minimal heap helpers for kthDist (avoiding container/heap allocation
// in the hot path).
func initHeap(h nearestHeap) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

func siftDown(h nearestHeap, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h[l].dist > h[big].dist {
			big = l
		}
		if r < n && h[r].dist > h[big].dist {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
