package stindex

import (
	"sync"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// Brute is the paper's baseline: a flat list of samples scanned linearly
// for every query. KNearestUsers is the O(k·n)-flavored method of
// Algorithm 1 ("considering the nearest neighbor in the PHL of each user
// and then taking the closest k points" — a single scan computes the
// per-user nearest neighbors).
//
// Concurrency: an RWMutex serializes Insert against queries; queries
// run in parallel with each other.
type Brute struct {
	mu      sync.RWMutex
	entries []UserPoint
}

// NewBrute returns an empty brute-force index.
func NewBrute() *Brute { return &Brute{} }

// Insert implements Index.
func (b *Brute) Insert(u phl.UserID, p geo.STPoint) {
	b.mu.Lock()
	b.entries = append(b.entries, UserPoint{User: u, Point: p})
	b.mu.Unlock()
}

// Len implements Index.
func (b *Brute) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.entries)
}

// UsersInBox implements Index.
func (b *Brute) UsersInBox(box geo.STBox) []phl.UserID {
	seen := getSeen()
	defer putSeen(seen)
	var out []phl.UserID
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, e := range b.entries {
		if !seen[e.User] && box.Contains(e.Point) {
			seen[e.User] = true
			out = append(out, e.User)
		}
	}
	return out
}

// CountUsersInBox implements Index.
func (b *Brute) CountUsersInBox(box geo.STBox) int {
	seen := getSeen()
	defer putSeen(seen)
	n := 0
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, e := range b.entries {
		if !seen[e.User] && box.Contains(e.Point) {
			seen[e.User] = true
			n++
		}
	}
	return n
}

// KNearestUsers implements Index.
func (b *Brute) KNearestUsers(q geo.STPoint, k int, m geo.STMetric, exclude map[phl.UserID]bool) []UserPoint {
	if k <= 0 {
		return nil
	}
	acc := getKNNAcc(k)
	defer acc.release()
	b.mu.RLock()
	for _, e := range b.entries {
		if exclude[e.User] {
			continue
		}
		acc.offer(e, m.Dist(e.Point, q))
	}
	b.mu.RUnlock()
	return acc.result()
}
