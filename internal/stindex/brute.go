package stindex

import (
	"histanon/internal/geo"
	"histanon/internal/phl"
)

// Brute is the paper's baseline: a flat list of samples scanned linearly
// for every query. KNearestUsers is the O(k·n)-flavored method of
// Algorithm 1 ("considering the nearest neighbor in the PHL of each user
// and then taking the closest k points" — a single scan computes the
// per-user nearest neighbors).
type Brute struct {
	entries []UserPoint
}

// NewBrute returns an empty brute-force index.
func NewBrute() *Brute { return &Brute{} }

// Insert implements Index.
func (b *Brute) Insert(u phl.UserID, p geo.STPoint) {
	b.entries = append(b.entries, UserPoint{User: u, Point: p})
}

// Len implements Index.
func (b *Brute) Len() int { return len(b.entries) }

// UsersInBox implements Index.
func (b *Brute) UsersInBox(box geo.STBox) []phl.UserID {
	seen := map[phl.UserID]bool{}
	var out []phl.UserID
	for _, e := range b.entries {
		if !seen[e.User] && box.Contains(e.Point) {
			seen[e.User] = true
			out = append(out, e.User)
		}
	}
	return out
}

// CountUsersInBox implements Index.
func (b *Brute) CountUsersInBox(box geo.STBox) int {
	seen := map[phl.UserID]bool{}
	n := 0
	for _, e := range b.entries {
		if !seen[e.User] && box.Contains(e.Point) {
			seen[e.User] = true
			n++
		}
	}
	return n
}

// KNearestUsers implements Index.
func (b *Brute) KNearestUsers(q geo.STPoint, k int, m geo.STMetric, exclude map[phl.UserID]bool) []UserPoint {
	if k <= 0 {
		return nil
	}
	best := map[phl.UserID]nearestCand{}
	for _, e := range b.entries {
		if exclude[e.User] {
			continue
		}
		d := m.Dist(e.Point, q)
		if cur, ok := best[e.User]; !ok || d < cur.dist {
			best[e.User] = nearestCand{up: e, dist: d}
		}
	}
	return collectKNearest(best, k)
}
